// Command ehdl-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ehdl-bench                 # everything
//	ehdl-bench -exp fig9a      # one experiment
//	ehdl-bench -packets 20000  # higher-fidelity measurement points
//
// Experiment identifiers: table1, fig8, fig9a, fig9b, fig9c, fig10,
// table2, table3, table4, table5, single-flow, pruning, power, hazard,
// framing, lb.
package main

import (
	"flag"
	"fmt"
	"os"

	"ehdl/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		packets = flag.Int("packets", 8000, "packets per measurement point")
		list    = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Packets: *packets}
	all := experiments.All()

	ids := experiments.IDs()
	if *exp != "all" {
		if _, ok := all[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		tab, err := all[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
	}
}
