// Command ehdl-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ehdl-bench                 # everything
//	ehdl-bench -exp fig9a      # one experiment
//	ehdl-bench -packets 20000  # higher-fidelity measurement points
//	ehdl-bench -runtime-trace bench.trace   # annotate experiments as trace tasks
//
// The benchmark-regression harness rides on the same binary:
//
//	ehdl-bench -baseline-out BENCH_baseline.json    # record a baseline
//	ehdl-bench -baseline-check BENCH_baseline.json  # fail on >5% Mpps regression
//
// Experiment identifiers: table1, fig8, fig9a, fig9b, fig9c, fig10,
// table2, table3, table4, table5, single-flow, pruning, power, hazard,
// framing, lb, resilience, protection, liveupdate, scaling.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ehdl/internal/benchreg"
	"ehdl/internal/experiments"
	"ehdl/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		packets  = flag.Int("packets", 8000, "packets per measurement point")
		fastPath = flag.Bool("fastpath", false, "serve eligible points from the compiled host fast path (hazard effects like flushes are not modelled there; ineligible points fall back to the interpreter)")
		list     = flag.Bool("list", false, "list experiment ids")

		baselineOut   = flag.String("baseline-out", "", "collect the regression baseline and write it to this JSON file")
		baselineCheck = flag.String("baseline-check", "", "re-collect and fail if Mpps regresses vs this baseline file")
		baselineTol   = flag.Float64("baseline-tol", benchreg.DefaultTolerancePct, "allowed Mpps regression, percent")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address for live profiling")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file when the run stops")
		rtTrace   = flag.String("runtime-trace", "", "write a runtime/trace execution trace to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}

	prof := obs.ProfileConfig{
		CPUFile:   *cpuProf,
		MemFile:   *memProf,
		TraceFile: *rtTrace,
		HTTPAddr:  *pprofAddr,
	}
	if prof.Enabled() {
		stop, addr, err := obs.StartProfiles(prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if addr != "" {
			fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *baselineOut != "" || *baselineCheck != "" {
		return runBaseline(*baselineOut, *baselineCheck, *baselineTol)
	}

	cfg := experiments.Config{Packets: *packets, FastPath: *fastPath}
	all := experiments.All()

	ids := experiments.IDs()
	if *exp != "all" {
		if _, ok := all[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			return 1
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		// Each experiment is one task in the execution trace, so a
		// -runtime-trace run breaks down cleanly per table/figure.
		_, end := obs.Task(context.Background(), "experiment:"+id)
		tab, err := all[id](cfg)
		end()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			return 1
		}
		fmt.Println(tab.String())
	}
	return 0
}

// runBaseline records or checks the benchmark-regression baseline. A
// check always re-measures at the baseline's own packet count so the
// drain-tail amortisation matches; the -packets flag does not apply.
func runBaseline(out, check string, tol float64) int {
	if check != "" {
		base, err := benchreg.Load(check)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cur, err := benchreg.Collect(base.Packets)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if regs := benchreg.Compare(base, cur, tol); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchmark regression vs %s (tolerance %.1f%%):\n", check, tol)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			return 1
		}
		fmt.Printf("benchmark check passed: every gated point within %.1f%% of %s\n", tol, check)
		printPoints(cur)
		return 0
	}
	b, err := benchreg.Collect(benchreg.DefaultPackets)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := benchreg.Save(out, b); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("baseline written to %s (%d points, %d packets/point, %d CPUs)\n",
		out, len(b.Points), b.Packets, b.NumCPU)
	printPoints(b)
	return 0
}

func printPoints(b *benchreg.Baseline) {
	keys := make([]string, 0, len(b.Points))
	for k := range b.Points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		gate := "  "
		switch {
		case strings.HasSuffix(k, "/mpps") && !strings.HasPrefix(k, "host/"):
			gate = "* " // gated against the baseline (5% tolerance)
		case k == benchreg.KeyFastpathToyMpps || k == benchreg.KeyFastpathSpeedup4Q:
			gate = "* " // gated: fast-path floor (see benchreg.Compare)
		}
		fmt.Printf("  %s%-32s %12.3f\n", gate, k, b.Points[k])
	}
}
