// Command ehdl-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ehdl-bench                 # everything
//	ehdl-bench -exp fig9a      # one experiment
//	ehdl-bench -packets 20000  # higher-fidelity measurement points
//	ehdl-bench -runtime-trace bench.trace   # annotate experiments as trace tasks
//
// Experiment identifiers: table1, fig8, fig9a, fig9b, fig9c, fig10,
// table2, table3, table4, table5, single-flow, pruning, power, hazard,
// framing, lb, resilience, protection, liveupdate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ehdl/internal/experiments"
	"ehdl/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		packets = flag.Int("packets", 8000, "packets per measurement point")
		list    = flag.Bool("list", false, "list experiment ids")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address for live profiling")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file when the run stops")
		rtTrace   = flag.String("runtime-trace", "", "write a runtime/trace execution trace to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}

	prof := obs.ProfileConfig{
		CPUFile:   *cpuProf,
		MemFile:   *memProf,
		TraceFile: *rtTrace,
		HTTPAddr:  *pprofAddr,
	}
	if prof.Enabled() {
		stop, addr, err := obs.StartProfiles(prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if addr != "" {
			fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := experiments.Config{Packets: *packets}
	all := experiments.All()

	ids := experiments.IDs()
	if *exp != "all" {
		if _, ok := all[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			return 1
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		// Each experiment is one task in the execution trace, so a
		// -runtime-trace run breaks down cleanly per table/figure.
		_, end := obs.Task(context.Background(), "experiment:"+id)
		tab, err := all[id](cfg)
		end()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			return 1
		}
		fmt.Println(tab.String())
	}
	return 0
}
