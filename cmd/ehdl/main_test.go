package main

import (
	"os"
	"path/filepath"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/ebpf"
	elfobj "ehdl/internal/elf"
)

func toyProgram(t *testing.T) *ebpf.Program {
	t.Helper()
	prog, err := apps.Toy().Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestLoadProgramSources(t *testing.T) {
	dir := t.TempDir()

	// Assembly source.
	asmPath := filepath.Join(dir, "p.asm")
	if err := os.WriteFile(asmPath, []byte("r0 = 2\nexit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := loadProgram("", asmPath, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Instructions) != 2 {
		t.Errorf("asm program has %d instructions", len(prog.Instructions))
	}

	// ELF object.
	objData, err := elfobj.Marshal(toyProgram(t), "xdp")
	if err != nil {
		t.Fatal(err)
	}
	objPath := filepath.Join(dir, "p.o")
	if err := os.WriteFile(objPath, objData, 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err = loadProgram("", "", objPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Maps) != 1 {
		t.Errorf("object program has %d maps", len(prog.Maps))
	}

	// Bundled application.
	if _, err := loadProgram("router", "", "", ""); err != nil {
		t.Error(err)
	}

	// Errors.
	if _, err := loadProgram("router", asmPath, "", ""); err == nil {
		t.Error("accepted both -app and -src")
	}
	if _, err := loadProgram("", "", "", ""); err == nil {
		t.Error("accepted no input")
	}
	if _, err := loadProgram("nope", "", "", ""); err == nil {
		t.Error("accepted an unknown app")
	}
}

func TestBuildStimuli(t *testing.T) {
	stimuli, err := buildStimuli(toyProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(stimuli) != 8 {
		t.Fatalf("stimuli = %d", len(stimuli))
	}
	for i, st := range stimuli {
		if len(st.Packet) == 0 {
			t.Errorf("stimulus %d has no packet", i)
		}
		if st.Verdict != 3 { // the toy transmits everything in bounds
			t.Errorf("stimulus %d verdict = %d", i, st.Verdict)
		}
	}
}
