// Command ehdl is the compiler front end: it takes an eBPF/XDP program
// (a bundled evaluation application or an assembly file) and produces
// the VHDL design plus a pipeline report.
//
// Usage:
//
//	ehdl -app router -o router.vhd
//	ehdl -src prog.asm -report
//	ehdl -app toy -report -no-pruning
package main

import (
	"flag"
	"fmt"
	"os"

	"ehdl/internal/apps"
	"ehdl/internal/asm"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	elfobj "ehdl/internal/elf"
	"ehdl/internal/hdl"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

func main() {
	var (
		appName    = flag.String("app", "", "bundled application (firewall|router|tunnel|dnat|suricata|toy|leakybucket)")
		srcPath    = flag.String("src", "", "assembly source file (alternative to -app)")
		objPath    = flag.String("obj", "", "eBPF ELF object file, e.g. clang -target bpf output")
		objSection = flag.String("section", "", "program section inside -obj (default: the only one)")
		outPath    = flag.String("o", "", "write the generated VHDL here (default: stdout summary only)")
		tbPath     = flag.String("tb", "", "also write a self-checking VHDL testbench here")
		report     = flag.Bool("report", false, "print the pipeline report")
		disasm     = flag.Bool("disasm", false, "print the transformed program's bytecode")
		frameBytes = flag.Int("frame", 64, "packet frame size in bytes")
		noPruning  = flag.Bool("no-pruning", false, "disable state pruning (Section 5.4 ablation)")
		noILP      = flag.Bool("no-ilp", false, "schedule one instruction per stage")
		noFusion   = flag.Bool("no-fusion", false, "disable instruction fusion")
		noElide    = flag.Bool("no-bounds-elision", false, "keep explicit packet bounds checks")
		noAtomics  = flag.Bool("no-atomics", false, "lower atomics to flush-protected accesses")
	)
	flag.Parse()

	prog, err := loadProgram(*appName, *srcPath, *objPath, *objSection)
	if err != nil {
		fatal(err)
	}

	opts := core.Options{
		FrameBytes:           *frameBytes,
		DisablePruning:       *noPruning,
		DisableILP:           *noILP,
		DisableFusion:        *noFusion,
		DisableBoundsElision: *noElide,
		DisableAtomics:       *noAtomics,
	}
	pl, err := core.Compile(prog, opts)
	if err != nil {
		fatal(err)
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(hdl.Generate(pl)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *tbPath != "" {
		stimuli, err := buildStimuli(prog)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*tbPath, []byte(hdl.GenerateTestbench(pl, stimuli)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d stimuli from the reference interpreter)\n", *tbPath, len(stimuli))
	}
	printSummary(pl)
	if *disasm {
		fmt.Println("\ntransformed bytecode:")
		fmt.Print(ebpf.Disassemble(pl.Transformed.Instructions))
	}
	if *report {
		printReport(pl)
	}
}

func loadProgram(appName, srcPath, objPath, objSection string) (*ebpf.Program, error) {
	count := 0
	for _, set := range []bool{appName != "", srcPath != "", objPath != ""} {
		if set {
			count++
		}
	}
	if count > 1 {
		return nil, fmt.Errorf("ehdl: use exactly one of -app, -src, -obj")
	}
	switch {
	case objPath != "":
		obj, err := elfobj.LoadFile(objPath)
		if err != nil {
			return nil, err
		}
		return obj.Program(objSection)
	case appName != "":
		app, ok := apps.ByName(appName)
		if !ok {
			return nil, fmt.Errorf("ehdl: unknown application %q", appName)
		}
		return app.Program()
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(srcPath, string(src))
	default:
		return nil, fmt.Errorf("ehdl: -app, -src or -obj is required (try -app toy)")
	}
}

// buildStimuli runs a handful of representative packets through the
// reference interpreter so the testbench asserts golden verdicts.
func buildStimuli(prog *ebpf.Program) ([]hdl.Stimulus, error) {
	env, err := vm.NewEnv(prog)
	if err != nil {
		return nil, err
	}
	env.Now = func() uint64 { return 0 }
	m, err := vm.New(prog, env)
	if err != nil {
		return nil, err
	}
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 1})
	var stimuli []hdl.Stimulus
	for i := 0; i < 8; i++ {
		data := gen.Next()
		res, err := m.Run(vm.NewPacket(data))
		if err != nil {
			return nil, err
		}
		stimuli = append(stimuli, hdl.Stimulus{Packet: data, Verdict: uint8(res.Action)})
	}
	return stimuli, nil
}

func printSummary(pl *core.Pipeline) {
	maxILP, avgILP := pl.ILP()
	fmt.Printf("program %q: %d instructions -> %d pipeline stages\n",
		pl.Prog.Name, len(pl.Prog.Instructions), pl.NumStages())
	fmt.Printf("  transformations: %d bounds checks elided, %d instructions removed, %d fused pairs\n",
		pl.ElidedBoundsChecks, pl.RemovedInstructions, pl.FusedPairs)
	fmt.Printf("  ILP: max %d, avg %.2f; framing NOPs: %d\n", maxILP, avgILP, pl.FramingNOPs)
	res := hdl.EstimateDesign(pl)
	pct := res.PercentOf(hdl.AlveoU50())
	fmt.Printf("  estimated resources (incl. Corundum shell): %d LUT (%.2f%%), %d FF (%.2f%%), %d BRAM36 (%.2f%%)\n",
		res.LUTs, pct.LUT, res.FFs, pct.FF, res.BRAM36, pct.BRAM)
}

func printReport(pl *core.Pipeline) {
	fmt.Println("\npipeline stages:")
	for s := range pl.Stages {
		st := &pl.Stages[s]
		fmt.Printf("  stage %3d [%-11s] regs=%d stack=%dB", s, st.Kind, st.CarryRegCount(), st.CarryStackBytes())
		for i := range st.Ops {
			fmt.Printf("  | %s", st.Ops[i].Ins)
			for _, f := range st.Ops[i].Fused {
				fmt.Printf(" + %s", f)
			}
		}
		fmt.Println()
	}
	if len(pl.Maps) > 0 {
		fmt.Println("\nmap blocks:")
		for i := range pl.Maps {
			mb := &pl.Maps[i]
			fmt.Printf("  %s (%v): reads@%v writes@%v atomics@%v",
				mb.Spec.Name, mb.Spec.Kind, mb.ReadStages, mb.WriteStages, mb.AtomicStages)
			if mb.NeedsFlush {
				fmt.Printf("  flush: L=%d K=%d from=%d", mb.L, mb.K, mb.FlushFromStage)
			}
			if mb.UsesAtomics {
				fmt.Printf("  atomic primitive")
			}
			if mb.WARDepth > 0 {
				fmt.Printf("  WAR depth=%d", mb.WARDepth)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
