// Command ehdl-fleet runs a cluster of simulated NIC shells behind the
// fleet control plane: flows consistent-hashed across devices, rolling
// canary live-updates, recovery-aware rebalancing and a seeded chaos
// campaign, with one aggregated report at the end.
//
// Usage:
//
//	ehdl-fleet -devices 8 -epochs 20
//	ehdl-fleet -devices 8 -update-prog toy -rollout-rate 2
//	ehdl-fleet -devices 8 -chaos 0.3 -seed 7 -verify
//	ehdl-fleet -app firewall -devices 4 -epochs 16 -json
//	ehdl-fleet -devices 4 -tenants firewall:0.5,toy:0.5 -band 50
//	ehdl-fleet -devices 8 -chaos 0.3 -journal /var/lib/ehdl/fleet
//	ehdl-fleet -devices 8 -chaos 0.3 -journal /var/lib/ehdl/fleet -resume
//
// Exit status: 0 on a clean run, 1 on a usage or configuration error
// (or a rollout that ran out of epochs), 2 when the rollout halted and
// rolled back, verification found a verdict divergence on a healthy
// device, or a -tenants spec list was rejected by the per-device
// admission budget gate, 3 on a durability failure — a corrupt journal
// record, a -resume whose configuration does not fingerprint-match the
// journaled run, a recovery replay that diverged from the journaled
// digests, or a journal directory reused without -resume.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ehdl/internal/apps"
	"ehdl/internal/faults"
	"ehdl/internal/fleet"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/tenant"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		appName   = flag.String("app", "toy", "application every device serves (time-free apps verify cleanly)")
		devices   = flag.Int("devices", 4, "device shards behind the cluster ring")
		epochs    = flag.Int("epochs", 16, "fleet epochs to run")
		packets   = flag.Int("epoch-packets", 256, "packets generated per epoch")
		rate      = flag.Float64("rate", 50, "per-device offered rate in Mpps")
		seed      = flag.Int64("seed", 1, "master seed: traffic, fault forks, jitter (same seed: same run, byte for byte)")
		verify    = flag.Bool("verify", true, "mirror every device with the reference interpreter and diff verdicts per epoch")
		chaos     = flag.Float64("chaos", 0, "chaos intensity in [0,1]: derives per-device fault campaigns and a seeded kill/corrupt schedule")
		updProg   = flag.String("update-prog", "", "roll this application across the fleet with canary gating")
		rollRate  = flag.Int("rollout-rate", 2, "epochs per device in the rollout (update epoch + soak epochs)")
		tolerance = flag.Float64("tolerance", 0, "soak-gate throughput floor in percent below baseline (0: benchreg default)")
		jsonOut   = flag.Bool("json", false, "print the fleet report as JSON instead of text")
		tracePath = flag.String("trace", "", "write fleet rollout/rebalance events to this file (JSONL)")

		journalDir = flag.String("journal", "", "directory for the crash-consistency write-ahead journal and state snapshots")
		resume     = flag.Bool("resume", false, "recover the run journaled in -journal: verified replay, then live execution from the journal tail")
		snapEvery  = flag.Int("snapshot-every", 0, "full-state snapshot cadence in epochs (0: fleet default)")

		tenantsSpec = flag.String("tenants", "", "multi-tenant devices: comma-separated app:share list admitted on every shard (replaces -app)")
		tenantBand  = flag.Float64("band", 0, "per-device tenant admission ceiling in percent of fabric utilisation (0: tenant default)")
	)
	flag.Parse()

	switch {
	case flag.NArg() > 0:
		return usage(fmt.Errorf("unexpected arguments %q", flag.Args()))
	case *devices < 1:
		return usage(fmt.Errorf("-devices must be >= 1, got %d", *devices))
	case *epochs < 1:
		return usage(fmt.Errorf("-epochs must be >= 1, got %d", *epochs))
	case *packets < 1:
		return usage(fmt.Errorf("-epoch-packets must be >= 1, got %d", *packets))
	case *rate <= 0:
		return usage(fmt.Errorf("-rate must be positive, got %g", *rate))
	case *chaos < 0 || *chaos > 1:
		return usage(fmt.Errorf("-chaos must be in [0,1], got %g", *chaos))
	case *rollRate < 2:
		return usage(fmt.Errorf("-rollout-rate must be >= 2 (update epoch + soak epoch), got %d", *rollRate))
	case *tenantsSpec != "" && *updProg != "":
		return usage(fmt.Errorf("fleet-wide rollouts are single-pipeline; tenant updates go through tenant.Device.ScheduleUpdate"))
	case *tenantsSpec == "" && *tenantBand != 0:
		return usage(fmt.Errorf("-band only applies with -tenants"))
	case *tenantBand < 0 || *tenantBand > 100:
		return usage(fmt.Errorf("-band must be in (0,100], got %g", *tenantBand))
	case *resume && *journalDir == "":
		return usage(fmt.Errorf("-resume requires -journal"))
	case *snapEvery != 0 && *journalDir == "":
		return usage(fmt.Errorf("-snapshot-every only applies with -journal"))
	case *snapEvery < 0:
		return usage(fmt.Errorf("-snapshot-every must be >= 0, got %d", *snapEvery))
	}

	cfg := fleet.Config{
		Devices:       *devices,
		Seed:          *seed,
		EpochPackets:  *packets,
		OfferedPps:    *rate * 1e6,
		Verify:        *verify,
		JournalDir:    *journalDir,
		Resume:        *resume,
		SnapshotEvery: *snapEvery,
	}
	workload := *appName
	if *tenantsSpec != "" {
		specs, err := tenant.ParseSpecList(*tenantsSpec, nic.ShellConfig{})
		if err != nil {
			return usage(err)
		}
		cfg.Tenants = specs
		cfg.TenantBandPct = *tenantBand
		cfg.Verify = false // tenant mode has no single-pipeline mirror
		workload = fmt.Sprintf("%d tenants (%s)", len(specs), *tenantsSpec)
	} else {
		app, ok := apps.ByName(*appName)
		if !ok {
			return fail(fmt.Errorf("unknown application %q", *appName))
		}
		cfg.App = app
	}

	if *chaos > 0 {
		// Per-device hardware fault campaigns fork off the master seed;
		// the kill/corrupt schedule is drawn up front from its own
		// seeded stream, so the whole campaign replays from -seed.
		cfg.Chaos = faults.Profile(*chaos, *seed)
		rng := rand.New(rand.NewSource(*seed*0x9e3779b9 + 0x7f4a7c15))
		cfg.KillAt = map[int][]int{}
		cfg.CorruptAt = map[int][]int{}
		for e := 1; e < *epochs; e++ {
			for d := 0; d < *devices; d++ {
				switch {
				case rng.Float64() < *chaos/float64(*epochs):
					cfg.KillAt[e] = append(cfg.KillAt[e], d)
				case rng.Float64() < *chaos/float64(*epochs):
					cfg.CorruptAt[e] = append(cfg.CorruptAt[e], d)
				}
			}
		}
	}

	if *updProg != "" {
		upd, ok := apps.ByName(*updProg)
		if !ok {
			return usage(fmt.Errorf("unknown -update-prog %q", *updProg))
		}
		uprog, err := upd.Program()
		if err != nil {
			return fail(err)
		}
		cfg.Update = &fleet.UpdateConfig{
			Prog:         uprog,
			Setup:        upd.SetupHost,
			RolloutRate:  *rollRate,
			TolerancePct: *tolerance,
		}
	}

	var tr *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		tr = obs.NewTracer(0, obs.NewJSONLSink(f))
		cfg.Trace = tr
		defer func() {
			if err := tr.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	ctrl, err := fleet.New(cfg)
	if err != nil {
		var ae *tenant.AdmissionError
		if errors.As(err, &ae) {
			// The per-device budget gate rejected the tenant set: a
			// distinct exit status for capacity-planning scripts.
			fmt.Fprintf(os.Stderr, "admission rejected: %v\n", ae)
			return 2
		}
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "fleet: %d devices serving %s, %d epochs x %d packets, seed %d\n",
		*devices, workload, *epochs, *packets, *seed)
	rep, err := ctrl.Run(*epochs)
	if err != nil {
		if fleet.DurabilityError(err) {
			fmt.Fprintf(os.Stderr, "durability failure: %v\n", err)
			return 3
		}
		return fail(err)
	}
	if ri := ctrl.RecoveryInfo(); ri.Resumed {
		fmt.Fprintf(os.Stderr, "recovered: %d epochs replayed and digest-verified", ri.ReplayedEpochs)
		if ri.SnapshotEpoch >= 0 {
			fmt.Fprintf(os.Stderr, ", snapshot @ epoch %d byte-verified", ri.SnapshotEpoch)
		}
		if ri.TornBytesTruncated > 0 {
			fmt.Fprintf(os.Stderr, ", %d torn bytes truncated", ri.TornBytesTruncated)
		}
		if ri.SnapshotsSkipped > 0 {
			fmt.Fprintf(os.Stderr, ", %d damaged snapshots skipped", ri.SnapshotsSkipped)
		}
		fmt.Fprintln(os.Stderr)
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fail(err)
		}
		fmt.Println(string(out))
	} else {
		printReport(rep)
	}

	if !rep.Accounted() {
		fmt.Fprintln(os.Stderr, "fleet: loss accounting does not balance")
		return 1
	}
	switch {
	case rep.Rollout == "rolled-back" || rep.Rollout == "halted":
		fmt.Fprintf(os.Stderr, "rollout rolled back: %s\n", rep.RolloutHalt)
		return 2
	case rep.VerdictDivergences > 0:
		fmt.Fprintf(os.Stderr, "%d verdict divergences on healthy devices\n", rep.VerdictDivergences)
		return 2
	case rep.Rollout == "rolling":
		fmt.Fprintln(os.Stderr, "rollout incomplete: ran out of epochs")
		return 1
	}
	return 0
}

func printReport(rep fleet.Report) {
	fmt.Printf("fleet report (%d devices, %d epochs, seed %d):\n", rep.Devices, rep.Epochs, rep.Seed)
	fmt.Printf("  traffic:   %d generated (+%d chaos extras), %d delivered\n",
		rep.Generated, rep.ExtraInjected, rep.Delivered)
	fmt.Printf("  loss:      queue %d, killed %d, mid-serve %d, unroutable %d (books balance: %v)\n",
		rep.QueueLost, rep.KilledLoss, rep.MidServeLoss, rep.UnroutableLoss, rep.Accounted())
	if rep.ThrottledLoss+rep.QuarantinedLoss+rep.TenantDownLoss > 0 {
		fmt.Printf("  tenancy:   throttled %d, quarantined %d, tenant-down %d\n",
			rep.ThrottledLoss, rep.QuarantinedLoss, rep.TenantDownLoss)
	}
	if len(rep.Device.PerTenant) > 0 {
		fmt.Printf("  tenants:\n")
		for _, sl := range rep.Device.PerTenant {
			fmt.Printf("    %-14s vlan %-4d steered %7d received %7d throttled %5d lost %4d down %4d\n",
				sl.Name, sl.VLAN, sl.Steered, sl.Received, sl.Throttled, sl.Lost, sl.DownLoss)
		}
	}
	fmt.Printf("  verify:    %d device-epochs diffed, %d divergences, %d quarantines\n",
		rep.VerifiedEpochs, rep.VerdictDivergences, rep.Quarantines)
	fmt.Printf("  health:    %d drains, %d readmits, %d kills, %d dead\n",
		rep.Drains, rep.Readmits, rep.Kills, rep.DeadDevices)
	if rep.Rollout != "" {
		fmt.Printf("  rollout:   %s (%d updates, %d rolled back)",
			rep.Rollout, rep.Device.UpdatesCompleted, rep.Device.UpdatesRolledBack)
		if rep.RolloutHalt != "" {
			fmt.Printf(" — %s", rep.RolloutHalt)
		}
		fmt.Println()
	}
	fmt.Printf("  devices:\n")
	for _, d := range rep.PerDevice {
		fmt.Printf("    d%-2d %-11s received %7d  lost %4d  drains %d",
			d.ID, d.State, d.Received, d.QueueLost, d.Drains)
		if d.Updated {
			fmt.Printf("  [updated]")
		}
		if d.Reverted {
			fmt.Printf("  [reverted]")
		}
		if d.DeathCause != "" {
			fmt.Printf("  (%s)", d.DeathCause)
		}
		if d.DeadTenants > 0 {
			fmt.Printf("  [%d dead tenants]", d.DeadTenants)
		}
		fmt.Println()
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}

func usage(err error) int {
	fmt.Fprintf(os.Stderr, "usage error: %v (see -h)\n", err)
	return 1
}
