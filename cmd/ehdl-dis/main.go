// Command ehdl-dis converts between the eBPF wire format and the
// assembler text: it disassembles raw bytecode files and assembles
// text programs back to bytecode.
//
// Usage:
//
//	ehdl-dis prog.bin              # disassemble
//	ehdl-dis -app tunnel           # show a bundled application
//	ehdl-dis -assemble prog.asm -o prog.bin
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"ehdl/internal/apps"
	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
	elfobj "ehdl/internal/elf"
)

// pickSection prefers the requested section when present, else defers to
// the object's single program.
func pickSection(obj *elfobj.Object, requested string) string {
	if _, ok := obj.Programs[requested]; ok {
		return requested
	}
	return ""
}

func main() {
	var (
		appName  = flag.String("app", "", "print a bundled application's bytecode")
		assemble = flag.String("assemble", "", "assemble this source file to raw bytecode")
		outPath  = flag.String("o", "", "output file for -assemble")
		emitELF  = flag.Bool("elf", false, "with -assemble: emit a clang-compatible ELF object instead of raw bytecode")
		section  = flag.String("section", "xdp", "program section name for -elf / ELF inputs")
	)
	flag.Parse()

	switch {
	case *appName != "":
		app, ok := apps.ByName(*appName)
		if !ok {
			fatal(fmt.Errorf("unknown application %q", *appName))
		}
		prog, err := app.Program()
		if err != nil {
			fatal(err)
		}
		for _, m := range prog.Maps {
			fmt.Printf("map %s %v key=%d value=%d entries=%d\n",
				m.Name, m.Kind, m.KeySize, m.ValueSize, m.MaxEntries)
		}
		fmt.Print(ebpf.Disassemble(prog.Instructions))

	case *assemble != "":
		src, err := os.ReadFile(*assemble)
		if err != nil {
			fatal(err)
		}
		prog, err := asm.Assemble(*assemble, string(src))
		if err != nil {
			fatal(err)
		}
		var data []byte
		if *emitELF {
			data, err = elfobj.Marshal(prog, *section)
			if err != nil {
				fatal(err)
			}
		} else {
			data = ebpf.MarshalInstructions(prog.Instructions)
		}
		if *outPath == "" {
			fmt.Printf("%d instructions, %d bytes\n", len(prog.Instructions), len(data))
			return
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *outPath, len(data))

	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if len(data) > 4 && string(data[:4]) == "\x7fELF" {
			obj, err := elfobj.Load(bytes.NewReader(data))
			if err != nil {
				fatal(err)
			}
			prog, err := obj.Program(pickSection(obj, *section))
			if err != nil {
				fatal(err)
			}
			for _, m := range prog.Maps {
				fmt.Printf("map %s %v key=%d value=%d entries=%d\n",
					m.Name, m.Kind, m.KeySize, m.ValueSize, m.MaxEntries)
			}
			fmt.Print(ebpf.Disassemble(prog.Instructions))
			return
		}
		insns, err := ebpf.UnmarshalInstructions(data)
		if err != nil {
			fatal(err)
		}
		fmt.Print(ebpf.Disassemble(insns))

	default:
		fatal(fmt.Errorf("usage: ehdl-dis <file.bin> | -app <name> | -assemble <file.asm> [-o out.bin]"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
