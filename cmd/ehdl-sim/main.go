// Command ehdl-sim runs a compiled pipeline inside the simulated NIC
// shell under generated traffic, printing the measurements a testbed
// traffic generator would report.
//
// Usage:
//
//	ehdl-sim -app firewall -packets 20000 -rate 148.8
//	ehdl-sim -app leakybucket -replay caida
//	ehdl-sim -app dnat -flows 8 -policy stall
//	ehdl-sim -app firewall -queues 4 -rate 600
//	ehdl-sim -app firewall -trace out.jsonl -metrics
//	ehdl-sim -app router -cpuprofile cpu.out -pprof localhost:6060
//	ehdl-sim -app firewall -update-prog leakybucket -update-after 5000
//	ehdl-sim -tenants firewall:0.5,toy:0.25,router:0.25 -packets 20000
//
// Exit status: 0 on a clean run, 1 on a usage or configuration error,
// 2 when the pipeline declared itself unrecoverable, a scheduled live
// update was rolled back, or a -tenants admission was rejected by the
// hdl resource-budget gate.
package main

import (
	"errors"
	flagpkg "flag"
	"fmt"
	"os"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
	"ehdl/internal/protect"
	"ehdl/internal/tenant"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	flag := flagpkg.NewFlagSet("ehdl-sim", flagpkg.ContinueOnError)
	var (
		appName   = flag.String("app", "firewall", "application to run")
		packets   = flag.Int("packets", 20000, "packets to offer")
		rate      = flag.Float64("rate", 0, "offered rate in Mpps (0: line rate for the packet size)")
		flows     = flag.Int("flows", 0, "flow count (0: application default)")
		pktLen    = flag.Int("pktlen", 0, "packet size (0: application default)")
		policy    = flag.String("policy", "flush", "RAW hazard policy: flush|stall")
		queues    = flag.Int("queues", 1, "pipeline replicas behind the RSS dispatcher (1: classic single queue)")
		fastPath  = flag.Bool("fastpath", false, "serve traffic from the compiled host fast path (the cycle-accurate interpreter remains the oracle)")
		batch     = flag.Int("batch", 0, "RSS dispatch batch size in packets (0: default 64; multi-queue only)")
		replay    = flag.String("replay", "", "replay a synthetic trace profile instead: caida|mawi")
		intensity = flag.Float64("faults", 0, "fault-injection intensity in (0,1]: SEUs, malformed frames, overflow bursts, flush storms")
		faultSeed = flag.Int64("fault-seed", 1, "seed of the fault campaign (same seed: same fault sites)")
		watchdog  = flag.Int("watchdog", 0, "livelock watchdog threshold in cycles (0: disabled)")
		protLevel = flag.String("protect", "none", "map-memory protection: none|parity|ecc (non-none also arms scrubbing and drain-and-restart recovery)")
		scrubEach = flag.Int("scrub-interval", 0, "scrubber budget in cycles per checked word (0: default 8)")
		maxRecov  = flag.Int("max-recoveries", 0, "drain-and-restart budget between clean scrub passes (0: default 8, negative: unbounded)")
		recJitter = flag.Int64("recovery-jitter", 0, "seed of the recovery-backoff jitter (0: exact deterministic schedule)")

		tenantsSpec = flag.String("tenants", "", "multi-tenant mode: comma-separated app:share list (e.g. firewall:0.5,toy:0.5); VLANs auto-assigned from 100")
		tenantBand  = flag.Float64("band", 0, "multi-tenant admission ceiling in percent of device utilisation (0: default 70)")

		updProg     = flag.String("update-prog", "", "hot-swap to this application mid-run (requires -update-after)")
		updAfter    = flag.Int("update-after", -1, "arm the live update after this many offered packets (requires -update-prog)")
		canaryFrac  = flag.Float64("canary-frac", 0, "fraction of live traffic mirrored to the update's shadow pipeline in (0,1] (0: default 0.25)")
		updDeadline = flag.Int("update-deadline", 0, "canary deadline of the live update in ticks (0: default)")

		tracePath = flag.String("trace", "", "write the cycle-level event trace to this file (JSONL)")
		traceText = flag.Bool("trace-text", false, "write the trace in compact text instead of JSONL")
		metrics   = flag.Bool("metrics", false, "collect the metrics registry and render it after the run")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address for live profiling")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file when the run stops")
		rtTrace   = flag.String("runtime-trace", "", "write a runtime/trace execution trace to this file")
	)
	if err := flag.Parse(args); err != nil {
		return 1
	}

	// Flag-combination validation: everything rejected here is a usage
	// error (exit 1) before any work starts.
	switch {
	case flag.NArg() > 0:
		return usage(fmt.Errorf("unexpected arguments %q", flag.Args()))
	case *packets <= 0:
		return usage(fmt.Errorf("-packets must be positive, got %d", *packets))
	case *rate < 0:
		return usage(fmt.Errorf("-rate must be >= 0, got %g", *rate))
	case *intensity < 0 || *intensity > 1:
		return usage(fmt.Errorf("-faults must be in [0,1], got %g", *intensity))
	case *queues < 1:
		return usage(fmt.Errorf("-queues must be >= 1, got %d", *queues))
	case *batch < 0:
		return usage(fmt.Errorf("-batch must be >= 0, got %d", *batch))
	case *batch > 0 && *queues == 1:
		return usage(fmt.Errorf("-batch only applies to multi-queue runs (-queues >= 2)"))
	case *queues > 1 && *canaryFrac != 0:
		return usage(fmt.Errorf("multi-queue updates quiesce and swap the whole fleet; -canary-frac is single-queue only"))
	case *replay != "" && (*flows > 0 || *pktLen > 0):
		return usage(fmt.Errorf("-replay fixes the traffic profile; -flows/-pktlen only apply to generated traffic"))
	case *updProg != "" && *updAfter < 0:
		return usage(fmt.Errorf("-update-prog requires -update-after"))
	case *updProg == "" && *updAfter >= 0:
		return usage(fmt.Errorf("-update-after requires -update-prog"))
	case *updProg == "" && (*canaryFrac != 0 || *updDeadline != 0):
		return usage(fmt.Errorf("-canary-frac/-update-deadline only apply with -update-prog"))
	case *canaryFrac < 0 || *canaryFrac > 1:
		return usage(fmt.Errorf("-canary-frac must be in (0,1], got %g", *canaryFrac))
	case *updDeadline < 0:
		return usage(fmt.Errorf("-update-deadline must be >= 0, got %d", *updDeadline))
	case *updProg != "" && *updAfter >= *packets:
		return usage(fmt.Errorf("-update-after %d never triggers within -packets %d", *updAfter, *packets))
	case *tenantsSpec != "" && *updProg != "":
		return usage(fmt.Errorf("-tenants runs per-tenant pipelines; -update-prog drives the single-pipeline shell"))
	case *tenantsSpec != "" && *queues > 1:
		return usage(fmt.Errorf("-tenants and -queues are different scale-out axes; pick one"))
	case *tenantsSpec != "" && *replay != "":
		return usage(fmt.Errorf("-tenants generates each tenant's own traffic; -replay is single-pipeline only"))
	case *tenantsSpec != "" && (*flows > 0 || *pktLen > 0):
		return usage(fmt.Errorf("-flows/-pktlen shape one app's traffic; tenant traffic comes from each tenant's app profile"))
	case *tenantsSpec == "" && *tenantBand != 0:
		return usage(fmt.Errorf("-band only applies with -tenants"))
	case *tenantBand < 0 || *tenantBand > 100:
		return usage(fmt.Errorf("-band must be in (0,100], got %g", *tenantBand))

	// The compiled fast path serves only configurations it can run
	// bit-identically; everything below keeps the cycle-accurate
	// interpreter (the fallback matrix in DESIGN.md). The library falls
	// back silently, but a user who asked for -fastpath explicitly gets
	// told why the request cannot be honoured instead.
	case *fastPath && *tenantsSpec != "":
		return usage(fmt.Errorf("-tenants runs per-tenant interpreter pipelines; -fastpath drives the single- or multi-queue shell"))
	case *fastPath && *intensity > 0:
		return usage(fmt.Errorf("-faults needs the cycle-accurate interpreter; drop -fastpath"))
	case *fastPath && *protLevel != "none":
		return usage(fmt.Errorf("-protect needs the cycle-accurate interpreter; drop -fastpath"))
	case *fastPath && *watchdog > 0:
		return usage(fmt.Errorf("-watchdog needs the cycle-accurate interpreter; drop -fastpath"))
	case *fastPath && *policy == "stall":
		return usage(fmt.Errorf("-policy stall models stalls the fast path elides; drop -fastpath"))
	case *fastPath && (*tracePath != "" || *traceText):
		return usage(fmt.Errorf("cycle-level tracing needs the interpreter; drop -fastpath"))
	case *fastPath && *metrics:
		return usage(fmt.Errorf("-metrics needs the interpreter; drop -fastpath"))
	case *fastPath && *updProg != "" && *queues == 1:
		return usage(fmt.Errorf("a single-queue live update serves from the interpreter for the whole run; drop -fastpath or use -queues >= 2"))
	}

	prof := obs.ProfileConfig{
		CPUFile:   *cpuProf,
		MemFile:   *memProf,
		TraceFile: *rtTrace,
		HTTPAddr:  *pprofAddr,
	}
	if prof.Enabled() {
		stop, addr, err := obs.StartProfiles(prof)
		if err != nil {
			return fail(err)
		}
		if addr != "" {
			fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tr *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		var sink obs.Sink
		if *traceText {
			sink = obs.NewTextSink(f)
		} else {
			sink = obs.NewJSONLSink(f)
		}
		tr = obs.NewTracer(0, sink)
		defer func() {
			if err := tr.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			fmt.Printf("\ntrace: %d events written to %s\n", tr.Emitted(), *tracePath)
		}()
	}

	level, err := protect.ParseLevel(*protLevel)
	if err != nil {
		return fail(err)
	}

	if *tenantsSpec != "" {
		return runTenants(tenantRun{
			spec:      *tenantsSpec,
			band:      *tenantBand,
			packets:   *packets,
			rate:      *rate,
			policy:    *policy,
			intensity: *intensity,
			faultSeed: *faultSeed,
			watchdog:  *watchdog,
			level:     level,
			scrubEach: *scrubEach,
			maxRecov:  *maxRecov,
			recJitter: *recJitter,
			trace:     tr,
			metrics:   reg,
		})
	}

	app, ok := apps.ByName(*appName)
	if !ok {
		return fail(fmt.Errorf("unknown application %q", *appName))
	}
	prog, err := app.Program()
	if err != nil {
		return fail(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		return fail(err)
	}

	cfg := nic.ShellConfig{Queues: *queues, Batch: *batch, FastPath: *fastPath}
	if *policy == "stall" {
		cfg.Sim.Policy = hwsim.PolicyStall
	}
	if *intensity > 0 {
		cfg.Faults = faults.Profile(*intensity, *faultSeed)
	}
	cfg.Sim.WatchdogCycles = *watchdog
	cfg.Sim.Protection = level
	cfg.Sim.ScrubCyclesPerWord = *scrubEach
	cfg.Sim.MaxRecoveries = *maxRecov
	cfg.Sim.RecoveryJitterSeed = *recJitter
	cfg.Sim.Metrics = reg
	cfg.Sim.Trace = tr

	sh, err := nic.New(pl, cfg)
	if err != nil {
		return fail(err)
	}
	if err := app.Setup(sh.Maps()); err != nil {
		return fail(err)
	}

	if *updProg != "" {
		upd, ok := apps.ByName(*updProg)
		if !ok {
			return usage(fmt.Errorf("unknown -update-prog %q", *updProg))
		}
		uprog, err := upd.Program()
		if err != nil {
			return fail(err)
		}
		ucfg := liveupdate.Config{
			Prog:                uprog,
			Setup:               upd.SetupHost,
			CanaryFrac:          *canaryFrac,
			CanaryDeadlineTicks: uint64(*updDeadline),
			Trace:               tr,
			Metrics:             reg,
		}
		if err := sh.ScheduleUpdate(*updAfter, ucfg); err != nil {
			return fail(err)
		}
	}

	var next func() []byte
	frameLen := 64
	switch *replay {
	case "":
		tcfg := app.Traffic
		if *flows > 0 {
			tcfg.Flows = *flows
		}
		if *pktLen > 0 {
			tcfg.PacketLen = *pktLen
		}
		frameLen = tcfg.PacketLen
		gen := pktgen.NewGenerator(tcfg)
		next = gen.Next
	case "caida":
		tr := pktgen.NewTrace(pktgen.CAIDAProfile())
		frameLen = pktgen.CAIDAProfile().MeanPacketLen
		next = tr.Next
	case "mawi":
		tr := pktgen.NewTrace(pktgen.MAWIProfile())
		frameLen = pktgen.MAWIProfile().MeanPacketLen
		next = tr.Next
	default:
		return fail(fmt.Errorf("unknown replay profile %q", *replay))
	}

	offered := *rate * 1e6
	if offered <= 0 {
		offered = sh.LineRateMpps(frameLen) * 1e6
	}

	mode := "cycle-accurate interpreter"
	if sh.FastPath() {
		mode = "compiled fast path"
	}
	fmt.Printf("running %s: %d stages, %d packets at %.1f Mpps offered (%s)\n",
		app.Name, pl.NumStages(), *packets, offered/1e6, mode)
	rep, err := sh.RunLoad(next, *packets, offered)
	if errors.Is(err, hwsim.ErrRecoveryExhausted) {
		// The typed give-up of the recovery subsystem: the store kept
		// corrupting faster than drain-and-restart could heal it. A
		// distinct exit status lets campaign scripts tell "pipeline
		// declared unrecoverable" from configuration errors.
		fmt.Fprintf(os.Stderr, "unrecoverable: %v\n", err)
		return 2
	}
	if err != nil {
		return fail(err)
	}

	fmt.Printf("\nresults:\n")
	fmt.Printf("  offered:   %8.2f Mpps (%.1f Gbps)\n", rep.OfferedMpps, rep.OfferedGbps)
	fmt.Printf("  achieved:  %8.2f Mpps (%.1f Gbps)\n", rep.AchievedMpps, rep.AchievedGbps)
	fmt.Printf("  received:  %d of %d (lost at input: %d)\n", rep.Received, rep.Sent, rep.Lost)
	fmt.Printf("  latency:   avg %.0f ns, max %.0f ns\n", rep.AvgLatencyNs, rep.MaxLatencyNs)
	fmt.Printf("  flushes:   %d (%.0f/s)\n", rep.Flushes, rep.FlushesPerS)
	if rep.QueueCount > 1 {
		fmt.Printf("  queues:    %d replicas, %d fallback steers, %d merge conflicts\n",
			rep.QueueCount, rep.SteerFallbacks, rep.MergeConflicts)
		for _, qr := range rep.PerQueue {
			fmt.Printf("    q%-2d steered %6d  received %6d  lost %4d  %8.2f Mpps\n",
				qr.Queue, qr.Steered, qr.Received, qr.Lost, qr.AchievedMpps)
		}
	}
	if inj := sh.Injector(); inj != nil {
		fmt.Printf("  faults:    %s\n", inj.Counters())
		fmt.Printf("             pipeline faults %d, malformed sent %d / hw-dropped %d\n",
			rep.FaultsInjected, rep.MalformedSent, rep.MalformedDropped)
		fmt.Printf("             overflow bursts %d (episodes %d), watchdog trips %d\n",
			rep.OverflowBursts, rep.QueueOverflows, rep.WatchdogTrips)
	}
	if *updProg != "" {
		fmt.Printf("  update:    %s -> %s after %d packets: stage %s\n",
			app.Name, *updProg, *updAfter, rep.UpdateStage)
		fmt.Printf("             migrated %d entries (+%d delta), canaried %d (%d diverged)\n",
			rep.MigratedEntries, rep.DeltaReplayed, rep.CanariedPackets, rep.CanaryDivergences)
		fmt.Printf("             held %d at cutover, post-verified %d (%d diverged)\n",
			rep.HeldPackets, rep.PostVerifyChecked, rep.PostVerifyDivergences)
	}
	if level != protect.LevelNone {
		fmt.Printf("  protect:   %s, %d words corrected, %d uncorrectable\n",
			level, rep.CorrectedWords, rep.UncorrectableWords)
		fmt.Printf("             scrub passes %d, checkpoints %d, recoveries %d (%d frames drained, %d backoff cycles)\n",
			rep.ScrubPasses, rep.CheckpointsTaken, rep.Recoveries, rep.RecoveryAborted, rep.RecoveryBackoffCycles)
	}
	fmt.Printf("  verdicts:\n")
	for action := ebpf.XDPAborted; action <= ebpf.XDPRedirect; action++ {
		if count := rep.Actions[action]; count > 0 {
			fmt.Printf("    %-12v %d\n", action, count)
		}
	}

	fmt.Printf("\nhost-visible map state:\n")
	for id := 0; id < sh.Maps().Len(); id++ {
		m, _ := sh.Maps().ByID(id)
		fmt.Printf("  %-10s %d entries\n", m.Spec().Name, m.Len())
	}

	if reg != nil {
		fmt.Printf("\nobservability:\n")
		fmt.Printf("  occupancy: %.2f frames/cycle mean\n", rep.MeanStageOccupancy)
		fmt.Printf("  latency:   p99 %d cycles\n", rep.P99LatencyCycles)
		fmt.Printf("  flushes:   %.1f penalty cycles mean\n", rep.FlushPenaltyMean)
		fmt.Printf("  map ports: %d ops\n", rep.MapPortOps)
		fmt.Printf("  backpress: %d cycles\n", rep.BackpressureCycles)
		fmt.Printf("\nmetrics registry:\n")
		if err := reg.Render(os.Stdout); err != nil {
			return fail(err)
		}
	}

	if rep.UpdatesRolledBack > 0 {
		// The old pipeline kept serving (the run above is valid), but the
		// requested swap did not happen: campaign scripts need to know.
		fmt.Fprintf(os.Stderr, "update rolled back: %s\n", rep.UpdateFailure)
		return 2
	}
	return 0
}

// tenantRun carries the flag values the multi-tenant mode consumes.
type tenantRun struct {
	spec      string
	band      float64
	packets   int
	rate      float64
	policy    string
	intensity float64
	faultSeed int64
	watchdog  int
	level     protect.Level
	scrubEach int
	maxRecov  int
	recJitter int64
	trace     *obs.Tracer
	metrics   *obs.Registry
}

// runTenants is the -tenants mode: one simulated device, M tenant
// pipelines behind the VLAN classifier, admission priced against the
// FPGA budget. An admission rejection is exit 2 — the device is fine,
// the requested tenant set just does not fit the fabric.
func runTenants(r tenantRun) int {
	shell := nic.ShellConfig{}
	if r.policy == "stall" {
		shell.Sim.Policy = hwsim.PolicyStall
	}
	shell.Sim.WatchdogCycles = r.watchdog
	shell.Sim.Protection = r.level
	shell.Sim.ScrubCyclesPerWord = r.scrubEach
	shell.Sim.MaxRecoveries = r.maxRecov
	shell.Sim.RecoveryJitterSeed = r.recJitter

	specs, err := tenant.ParseSpecList(r.spec, shell)
	if err != nil {
		return usage(err)
	}
	dcfg := tenant.DeviceConfig{
		UtilisationBandPct: r.band,
		Seed:               r.faultSeed,
		Trace:              r.trace,
		Metrics:            r.metrics,
	}
	if r.intensity > 0 {
		dcfg.Chaos = faults.Profile(r.intensity, r.faultSeed)
	}
	dev := tenant.NewDevice(dcfg)
	for _, sp := range specs {
		tn, err := dev.AdmitTenant(sp)
		if err != nil {
			var ae *tenant.AdmissionError
			if errors.As(err, &ae) {
				// The budget gate spoke: report the priced shortfall with a
				// distinct exit status so campaign scripts can tell "does
				// not fit" from configuration mistakes.
				fmt.Fprintf(os.Stderr, "admission rejected: %v\n", ae)
				return 2
			}
			return fail(err)
		}
		fmt.Printf("admitted %-16s share %.2f vlan %d  est %d LUTs %d BRAM  util %.2f%%\n",
			tn.Spec.Name, tn.Spec.Share, tn.Spec.VLAN, tn.Est.LUTs, tn.Est.BRAM36, dev.Utilisation())
	}

	offered := r.rate * 1e6
	if offered <= 0 {
		offered = 148.8e6 // 64B line rate at 100G
	}
	mux := tenant.NewTrafficMux(specs, r.faultSeed)
	fmt.Printf("running %d tenants: %d packets at %.1f Mpps offered, device at %.2f%% of the fabric\n",
		len(specs), r.packets, offered/1e6, dev.Utilisation())
	rep, err := dev.RunLoad(mux.Next, r.packets, offered)
	if err != nil {
		return fail(err)
	}

	fmt.Printf("\nresults:\n")
	fmt.Printf("  received:  %d of %d (lost %d, throttled %d, quarantined %d, tenant-down %d)\n",
		rep.Received, rep.Sent, rep.Lost, rep.Throttled, rep.Quarantined, rep.TenantDownLoss)
	fmt.Printf("  ledger:    accounted=%v\n", rep.Accounted())
	fmt.Printf("\nper-tenant:\n")
	for _, sl := range rep.PerTenant {
		fmt.Printf("  %-16s vlan %-4d steered %6d admitted %6d throttled %5d received %6d lost %4d down %4d  %7.2f Mpps\n",
			sl.Name, sl.VLAN, sl.Steered, sl.Admitted, sl.Throttled, sl.Received, sl.Lost, sl.DownLoss, sl.AchievedMpps)
		if sl.FaultsInjected > 0 || sl.Recoveries > 0 {
			fmt.Printf("  %-16s faults %d, recoveries %d, watchdog trips %d\n",
				"", sl.FaultsInjected, sl.Recoveries, sl.WatchdogTrips)
		}
	}
	for _, tn := range dev.Tenants() {
		if tn.Dead() {
			fmt.Printf("  %-16s DEAD: %s\n", tn.Spec.Name, tn.DeathCause())
		}
	}
	if r.metrics != nil {
		fmt.Printf("\nmetrics registry:\n")
		if err := r.metrics.Render(os.Stdout); err != nil {
			return fail(err)
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}

func usage(err error) int {
	fmt.Fprintf(os.Stderr, "usage error: %v (see -h)\n", err)
	return 1
}
