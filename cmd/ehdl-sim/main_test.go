package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// runCapture runs the CLI entry point with its stdout captured; stderr
// (usage errors) is left alone so failures stay visible in -v output.
func runCapture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run(args)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return code, buf.String()
}

// TestFlagValidation pins the usage gate: every conflicting flag
// combination is exit 1 before any simulation work starts.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"positional args", []string{"firewall"}},
		{"zero packets", []string{"-packets", "0"}},
		{"negative rate", []string{"-rate", "-1"}},
		{"batch single queue", []string{"-batch", "32"}},
		{"update without trigger", []string{"-update-prog", "toy"}},
		{"trigger without update", []string{"-update-after", "10"}},
		{"tenants with queues", []string{"-tenants", "toy:0.5", "-queues", "2"}},

		{"fastpath tenants", []string{"-fastpath", "-tenants", "toy:0.5"}},
		{"fastpath faults", []string{"-fastpath", "-faults", "0.1"}},
		{"fastpath protect", []string{"-fastpath", "-protect", "ecc"}},
		{"fastpath watchdog", []string{"-fastpath", "-watchdog", "100"}},
		{"fastpath stall", []string{"-fastpath", "-policy", "stall"}},
		{"fastpath trace", []string{"-fastpath", "-trace", "/tmp/t.jsonl"}},
		{"fastpath trace-text", []string{"-fastpath", "-trace-text"}},
		{"fastpath metrics", []string{"-fastpath", "-metrics"}},
		{"fastpath single-queue update", []string{"-fastpath", "-update-prog", "leakybucket", "-update-after", "100"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code, _ := runCapture(t, tc.args...); code != 1 {
				t.Errorf("args %v: exit %d, want usage error (1)", tc.args, code)
			}
		})
	}
}

// TestFastPathServes runs a short load in each engine mode and checks
// the banner reports which engine actually served the traffic.
func TestFastPathServes(t *testing.T) {
	code, out := runCapture(t, "-app", "toy", "-packets", "2000", "-fastpath")
	if code != 0 {
		t.Fatalf("fastpath run: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "(compiled fast path)") {
		t.Errorf("fastpath run did not report the compiled engine:\n%s", out)
	}
	if !strings.Contains(out, "received:  2000 of 2000") {
		t.Errorf("fastpath run lost packets:\n%s", out)
	}

	code, out = runCapture(t, "-app", "toy", "-packets", "2000")
	if code != 0 {
		t.Fatalf("interpreter run: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "(cycle-accurate interpreter)") {
		t.Errorf("default run did not report the interpreter:\n%s", out)
	}
}

// TestFastPathMultiQueue covers the RSS leg of the -fastpath switch.
func TestFastPathMultiQueue(t *testing.T) {
	code, out := runCapture(t, "-app", "toy", "-packets", "4000", "-queues", "2", "-fastpath")
	if code != 0 {
		t.Fatalf("multi-queue fastpath run: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "(compiled fast path)") {
		t.Errorf("multi-queue run did not report the compiled engine:\n%s", out)
	}
	if !strings.Contains(out, "2 replicas") {
		t.Errorf("multi-queue run did not report its replicas:\n%s", out)
	}
}
