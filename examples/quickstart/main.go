// Quickstart: the complete eHDL flow on the paper's running example
// (Listing 1): assemble the eBPF/XDP program, compile it to a hardware
// pipeline, inspect the generated design, run line-rate traffic through
// the cycle-accurate NIC simulation, and read the statistics map from
// the host side — the same workflow as loading the design on an FPGA
// NIC and using standard eBPF tooling.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hdl"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

func main() {
	// 1. The unmodified eBPF/XDP program (Listing 1 of the paper,
	//    already compiled to bytecode form).
	app := apps.Toy()
	prog, err := app.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %q, %d eBPF instructions, %d map(s)\n\n",
		prog.Name, len(prog.Instructions), len(prog.Maps))

	// 2. Compile to a hardware pipeline.
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	maxILP, avgILP := pl.ILP()
	fmt.Printf("compiled: %d stages (paper's Figure 8 shows 20)\n", pl.NumStages())
	fmt.Printf("  bounds checks elided: %d, instructions removed: %d\n",
		pl.ElidedBoundsChecks, pl.RemovedInstructions)
	fmt.Printf("  ILP max/avg: %d/%.2f\n", maxILP, avgILP)

	// 3. The design is ordinary VHDL, ready for an FPGA NIC shell.
	vhdl := hdl.Generate(pl)
	fmt.Printf("  VHDL: %d bytes; resources: %+v\n\n", len(vhdl), hdl.EstimateDesign(pl))

	// 4. Put the pipeline in the (simulated) Corundum shell and blast
	//    line-rate 64-byte traffic at it.
	shell, err := nic.New(pl, nic.ShellConfig{})
	if err != nil {
		log.Fatal(err)
	}
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 256, PacketLen: 64, Seed: 1})
	line := shell.LineRateMpps(64)
	rep, err := shell.RunLoad(gen.Next, 20000, line*1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic: offered %.1f Mpps (100 Gbps line rate at 64B)\n", rep.OfferedMpps)
	fmt.Printf("  achieved %.1f Mpps, lost %d, latency avg %.0f ns\n",
		rep.AchievedMpps, rep.Lost, rep.AvgLatencyNs)
	fmt.Printf("  verdicts: %v\n\n", rep.Actions)

	// 5. Read the stats map from "userspace", like bpftool would.
	stats, _ := shell.Maps().ByName("stats")
	labels := []string{"other", "IPv4", "IPv6", "ARP"}
	fmt.Println("host view of the stats map:")
	var key [4]byte
	for i, label := range labels {
		binary.LittleEndian.PutUint32(key[:], uint32(i))
		v, _ := stats.Lookup(key[:])
		fmt.Printf("  %-5s %d packets\n", label, binary.LittleEndian.Uint64(v))
	}
	_ = ebpf.XDPTx // the verdict the program returns for counted packets
}
