// HDL generation: compile every evaluation application and write its
// VHDL design to ./vhdl_out/, printing the per-design summary Vivado
// users would check before synthesis. This is the artifact the eHDL
// toolchain hands to the FPGA flow (Section 4.5).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/hdl"
)

func main() {
	outDir := "vhdl_out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	dev := hdl.AlveoU50()
	fmt.Printf("target: %s (%d LUTs, %d FFs, %d BRAM36)\n\n", dev.Name, dev.LUTs, dev.FFs, dev.BRAM36)
	fmt.Printf("%-12s %8s %8s %10s %10s %8s\n", "program", "stages", "VHDL kB", "LUT %", "FF %", "BRAM %")

	for _, app := range append(apps.All(), apps.Toy(), apps.LeakyBucket()) {
		prog, err := app.Program()
		if err != nil {
			log.Fatal(err)
		}
		pl, err := core.Compile(prog, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		src := hdl.Generate(pl)
		path := filepath.Join(outDir, "ehdl_"+app.Name+".vhd")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
		tb := hdl.GenerateTestbench(pl, nil)
		if err := os.WriteFile(filepath.Join(outDir, "ehdl_"+app.Name+"_tb.vhd"), []byte(tb), 0o644); err != nil {
			log.Fatal(err)
		}
		pct := hdl.EstimateDesign(pl).PercentOf(dev)
		fmt.Printf("%-12s %8d %8.1f %9.2f%% %9.2f%% %7.2f%%\n",
			app.Name, pl.NumStages(), float64(len(src))/1024, pct.LUT, pct.FF, pct.BRAM)
	}
	fmt.Printf("\ndesigns written to %s/\n", outDir)
}
