// Firewall offload: the simple UDP firewall of the paper's evaluation
// running entirely in the (simulated) NIC. Forward traffic establishes
// connection state in the eHDLmap block; return traffic matches the
// reverse key; unsolicited packets to privileged ports are dropped at
// line rate. The host reads the connection table afterwards, exactly as
// userspace eBPF tooling reads NIC-resident maps.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

func main() {
	app := apps.Firewall()
	prog, err := app.Program()
	if err != nil {
		log.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	shell, err := nic.New(pl, nic.ShellConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("firewall pipeline: %d stages\n", pl.NumStages())
	for i := range pl.Maps {
		mb := &pl.Maps[i]
		fmt.Printf("  map %q: reads@%v writes@%v flush=%v\n",
			mb.Spec.Name, mb.ReadStages, mb.WriteStages, mb.NeedsFlush)
	}

	// Traffic: a mix of forward flows, their return traffic, and
	// unsolicited probes to privileged ports.
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 64, PacketLen: 64, Proto: ebpf.IPProtoUDP, Seed: 2})
	i := 0
	next := func() []byte {
		defer func() { i++ }()
		switch i % 4 {
		case 0, 1: // forward direction
			return gen.Next()
		case 2: // return direction of an established flow
			f := gen.FlowAt(i % gen.FlowCount()).Reverse()
			return pktgen.Build(pktgen.PacketSpec{Flow: f, TotalLen: 64})
		default: // unsolicited scan of a privileged port
			f := pktgen.Flow{SrcIP: 0xdead0000 + uint32(i), DstIP: 0x0a000001,
				SrcPort: 40000, DstPort: 22, Proto: ebpf.IPProtoUDP}
			return pktgen.Build(pktgen.PacketSpec{Flow: f, TotalLen: 64})
		}
	}

	line := shell.LineRateMpps(64)
	rep, err := shell.RunLoad(next, 40000, line*1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffered %.1f Mpps at line rate; achieved %.1f Mpps, lost %d\n",
		rep.OfferedMpps, rep.AchievedMpps, rep.Lost)
	fmt.Printf("verdicts: forwarded=%d dropped=%d passed-to-kernel=%d\n",
		rep.Actions[ebpf.XDPTx], rep.Actions[ebpf.XDPDrop], rep.Actions[ebpf.XDPPass])
	fmt.Printf("pipeline flushes from connection-table inserts: %d\n\n", rep.Flushes)

	// Host-side view.
	conn, _ := shell.Maps().ByName("conn")
	fmt.Printf("connection table: %d established flows\n", conn.Len())
	shown := 0
	conn.Iterate(func(k, v []byte) bool {
		if shown >= 5 {
			return false
		}
		src := binary.BigEndian.Uint32(k[0:4])
		dst := binary.BigEndian.Uint32(k[4:8])
		fmt.Printf("  %s -> %s  %d packets\n", ip4(src), ip4(dst), binary.LittleEndian.Uint64(v))
		shown++
		return true
	})

	stats, _ := shell.Maps().ByName("fwstats")
	var key [4]byte
	total, _ := stats.Lookup(key[:])
	fmt.Printf("total UDP packets inspected: %d\n", binary.LittleEndian.Uint64(total))
}

func ip4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
