// Suricata offload: the IDS-bypass scenario of Section 6 ("accelerating
// Suricata took us about 1h"). The filter runs in the NIC; the host IDS
// sees only unclassified traffic. Mid-run, the "IDS" classifies the
// heaviest flows and installs bypass entries through the host map
// interface — after which the NIC drops and accounts those flows at
// line rate without host involvement.
package main

import (
	"fmt"
	"log"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

func main() {
	app := apps.Suricata()
	prog, err := app.Program()
	if err != nil {
		log.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	shell, err := nic.New(pl, nic.ShellConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suricata filter: %d stages, %d maps\n\n", pl.NumStages(), len(pl.Maps))

	cfg := pktgen.GeneratorConfig{Flows: 32, PacketLen: 128, Proto: ebpf.IPProtoTCP, Seed: 4}
	gen := pktgen.NewGenerator(cfg)
	line := shell.LineRateMpps(128)

	// Phase 1: nothing classified yet — everything goes to the host.
	rep1, err := shell.RunLoad(gen.Next, 10000, line*1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 (no bypass): to-host=%d dropped-in-nic=%d\n",
		rep1.Actions[ebpf.XDPPass], rep1.Actions[ebpf.XDPDrop])

	// The IDS classifies half the flows and offloads them.
	for i := 0; i < 16; i++ {
		if err := apps.BypassFlow(shell.Maps(), gen.FlowAt(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("host installs 16 bypass entries through the map interface")

	// Phase 2: bypassed flows drop in the NIC with accounting.
	rep2, err := shell.RunLoad(gen.Next, 10000, line*1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2 (bypass active): to-host=%d dropped-in-nic=%d\n\n",
		rep2.Actions[ebpf.XDPPass], rep2.Actions[ebpf.XDPDrop])

	fmt.Println("per-flow accounting of the bypassed flows:")
	for i := 0; i < 4; i++ {
		f := gen.FlowAt(i)
		pkts, bytes, ok := apps.BypassCounters(shell.Maps(), f)
		if !ok {
			continue
		}
		fmt.Printf("  flow %d: %d packets, %d bytes\n", i, pkts, bytes)
	}
	fmt.Printf("\nhost load reduction: %.0f%% of packets never reach the IDS\n",
		100*float64(rep2.Actions[ebpf.XDPDrop])/float64(rep2.Received))
}
