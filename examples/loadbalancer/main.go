// Load balancer offload: the Katran-style scenario that motivates the
// paper's introduction. A virtual IP is spread over a backend pool by a
// per-flow hash computed in the NIC; matched packets are
// IPIP-encapsulated towards their backend at line rate, and the host
// reads per-backend hit counters through the map interface.
package main

import (
	"fmt"
	"log"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

func main() {
	app := apps.LoadBalancer()
	prog, err := app.Program()
	if err != nil {
		log.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	shell, err := nic.New(pl, nic.ShellConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Setup(shell.Maps()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load balancer pipeline: %d stages, %d backends configured\n\n",
		pl.NumStages(), len(apps.LBBackends))

	gen := pktgen.NewGenerator(app.Traffic)
	line := shell.LineRateMpps(64)
	rep, err := shell.RunLoad(gen.Next, 40000, line*1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered %.1f Mpps at line rate; achieved %.1f Mpps, lost %d\n",
		rep.OfferedMpps, rep.AchievedMpps, rep.Lost)
	fmt.Printf("balanced to backends (XDP_TX): %d; passed to host: %d\n\n",
		rep.Actions[ebpf.XDPTx], rep.Actions[ebpf.XDPPass])

	hits := apps.LBBackendHits(shell.Maps())
	var total uint64
	for _, h := range hits {
		total += h
	}
	fmt.Println("per-backend distribution:")
	for i, h := range hits {
		bar := ""
		for b := 0; b < int(40*h/max(total, 1)); b++ {
			bar += "#"
		}
		be := apps.LBBackends[i]
		fmt.Printf("  %d.%d.%d.%d  %7d (%.1f%%) %s\n",
			be[0], be[1], be[2], be[3], h, 100*float64(h)/float64(total), bar)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
