// Dynamic NAT: the application the SDNet P4 baseline cannot express.
// The first packet of each flow selects a translated source port in the
// data plane and installs the binding into the eHDLmap block — a
// data-plane map update, which is exactly what triggers the RAW-hazard
// machinery (Flush Evaluation Block) when packets of one flow arrive
// back to back. The example shows both: the working NAT and the flush
// statistics, plus the SDNet rejection.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"ehdl/internal/apps"
	"ehdl/internal/baseline/sdnet"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

func main() {
	app := apps.DNAT()

	// The P4 baseline rejects this program.
	if _, err := sdnet.Compile(app); err != nil {
		fmt.Printf("SDNet P4 baseline: %v\n\n", err)
	}

	prog, err := app.Program()
	if err != nil {
		log.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i := range pl.Maps {
		mb := &pl.Maps[i]
		if mb.NeedsFlush {
			fmt.Printf("map %q needs the Flush Evaluation Block: read stage %v -> write stage %v (L=%d, K=%d)\n",
				mb.Spec.Name, mb.ReadStages, mb.WriteStages, mb.L, mb.K)
		}
	}

	shell, err := nic.New(pl, nic.ShellConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Few flows, packets back to back: every new flow's binding insert
	// races with the next packets of the same flow.
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 16, PacketLen: 64, Proto: ebpf.IPProtoUDP, Seed: 3})
	line := shell.LineRateMpps(64)
	rep, err := shell.RunLoad(gen.Next, 30000, line*1e6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noffered %.1f Mpps; achieved %.1f Mpps; lost %d\n",
		rep.OfferedMpps, rep.AchievedMpps, rep.Lost)
	fmt.Printf("translated (XDP_TX): %d packets; pipeline flushes: %d\n\n",
		rep.Actions[ebpf.XDPTx], rep.Flushes)

	// Host view of the bindings.
	nat, _ := shell.Maps().ByName("nat")
	fmt.Printf("NAT table: %d bindings\n", nat.Len())
	shown := 0
	nat.Iterate(func(k, v []byte) bool {
		if shown >= 8 {
			return false
		}
		src := binary.BigEndian.Uint32(k[0:4])
		sport := binary.BigEndian.Uint16(k[8:10])
		natport := binary.LittleEndian.Uint16(v[0:2])
		fmt.Printf("  %s:%d -> :%d\n", ip4(src), sport, natport)
		shown++
		return true
	})
}

func ip4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
