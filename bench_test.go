// Package ehdl's benchmark suite regenerates every table and figure of
// the paper's evaluation as a testing.B benchmark. Custom metrics carry
// the simulated quantities (Mpps, ns latency, FPGA resources); ns/op is
// the host-side simulation cost.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// One experiment:
//
//	go test -bench=BenchmarkFig9aThroughput -benchtime=10000x
package ehdl

import (
	"strconv"
	"testing"

	"ehdl/internal/analytic"
	"ehdl/internal/apps"
	"ehdl/internal/baseline/bluefield"
	"ehdl/internal/baseline/hxdp"
	"ehdl/internal/baseline/sdnet"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/fastpath"
	"ehdl/internal/hdl"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

func programFor(b *testing.B, app *apps.App) *ebpf.Program {
	b.Helper()
	prog, err := app.Program()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func compileFor(b *testing.B, app *apps.App, opts core.Options) *core.Pipeline {
	b.Helper()
	pl, err := core.Compile(programFor(b, app), opts)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

func shellFor(b *testing.B, app *apps.App, opts core.Options, cfg nic.ShellConfig) *nic.Shell {
	b.Helper()
	sh, err := nic.New(compileFor(b, app, opts), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Setup(sh.Maps()); err != nil {
		b.Fatal(err)
	}
	return sh
}

func packetsForRun(b *testing.B) int {
	n := b.N
	if n < 2000 {
		n = 2000
	}
	if n > 200000 {
		n = 200000
	}
	return n
}

// BenchmarkFig9aThroughput regenerates Figure 9a: line-rate forwarding
// for every application, with the processor baselines for comparison.
func BenchmarkFig9aThroughput(b *testing.B) {
	for _, app := range apps.All() {
		b.Run(app.Name+"/eHDL", func(b *testing.B) {
			sh := shellFor(b, app, core.Options{}, nic.ShellConfig{})
			gen := pktgen.NewGenerator(app.Traffic)
			n := packetsForRun(b)
			b.ResetTimer()
			rep, err := sh.RunLoad(gen.Next, n, sh.LineRateMpps(64)*1e6)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(rep.AchievedMpps, "Mpps")
			b.ReportMetric(float64(rep.Lost), "lost")
			if rep.Lost > 0 {
				b.Errorf("%s lost %d packets at line rate", app.Name, rep.Lost)
			}
		})
		b.Run(app.Name+"/hXDP", func(b *testing.B) {
			gen := pktgen.NewGenerator(app.Traffic)
			n := min(packetsForRun(b), 3000)
			b.ResetTimer()
			rep, err := hxdp.New().RunApp(programFor(b, app), app.SetupHost, gen, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.Mpps, "Mpps")
		})
		b.Run(app.Name+"/Bf2-4c", func(b *testing.B) {
			gen := pktgen.NewGenerator(app.Traffic)
			n := min(packetsForRun(b), 3000)
			b.ResetTimer()
			rep, err := bluefield.New(4).RunApp(programFor(b, app), app.SetupHost, gen, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.Mpps, "Mpps")
		})
	}
}

// BenchmarkFig9bLatency regenerates Figure 9b: per-application
// forwarding latency.
func BenchmarkFig9bLatency(b *testing.B) {
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) {
			sh := shellFor(b, app, core.Options{}, nic.ShellConfig{})
			gen := pktgen.NewGenerator(app.Traffic)
			n := min(packetsForRun(b), 5000)
			b.ResetTimer()
			rep, err := sh.RunLoad(gen.Next, n, 50e6)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(rep.AvgLatencyNs, "ns-latency")
		})
	}
}

// BenchmarkFig9cStages regenerates Figure 9c: stage and instruction
// counts per application.
func BenchmarkFig9cStages(b *testing.B) {
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) {
			var stages, bundles, orig int
			for i := 0; i < b.N; i++ {
				pl := compileFor(b, app, core.Options{})
				bu, err := hxdp.New().StaticBundles(programFor(b, app))
				if err != nil {
					b.Fatal(err)
				}
				stages, bundles, orig = pl.NumStages(), bu, len(pl.Prog.Instructions)
			}
			b.ReportMetric(float64(stages), "stages")
			b.ReportMetric(float64(bundles), "hXDP-instr")
			b.ReportMetric(float64(orig), "orig-instr")
		})
	}
}

// BenchmarkFig10Resources regenerates Figure 10: FPGA utilisation of the
// three systems.
func BenchmarkFig10Resources(b *testing.B) {
	dev := hdl.AlveoU50()
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) {
			var eh hdl.Percent
			for i := 0; i < b.N; i++ {
				eh = hdl.EstimateDesign(compileFor(b, app, core.Options{})).PercentOf(dev)
			}
			b.ReportMetric(eh.LUT, "LUT%")
			b.ReportMetric(eh.FF, "FF%")
			b.ReportMetric(eh.BRAM, "BRAM%")
			if !app.P4Expressible {
				return
			}
			d, err := sdnet.Compile(app)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(d.Resources().PercentOf(dev).LUT, "SDNet-LUT%")
		})
	}
}

// BenchmarkTable2Flushing regenerates Table 2: leaky-bucket flush rates
// under the CAIDA and MAWI trace profiles.
func BenchmarkTable2Flushing(b *testing.B) {
	for _, profile := range []pktgen.TraceProfile{pktgen.CAIDAProfile(), pktgen.MAWIProfile()} {
		name := "CAIDA"
		if profile.Seed == pktgen.MAWIProfile().Seed {
			name = "MAWI"
		}
		b.Run(name, func(b *testing.B) {
			sh := shellFor(b, apps.LeakyBucket(), core.Options{}, nic.ShellConfig{})
			trace := pktgen.NewTrace(profile)
			offered := pktgen.LineRatePPS(100e9, profile.MeanPacketLen)
			n := packetsForRun(b)
			b.ResetTimer()
			rep, err := sh.RunLoad(trace.Next, n, offered)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(rep.FlushesPerS, "flushes/s")
			b.ReportMetric(float64(rep.Lost), "lost")
		})
	}
}

// BenchmarkTable3Analytic regenerates Table 3 from the compiled hazard
// geometry.
func BenchmarkTable3Analytic(b *testing.B) {
	pl := compileFor(b, apps.LeakyBucket(), core.Options{})
	var mb *core.MapBlock
	for i := range pl.Maps {
		if pl.Maps[i].NeedsFlush {
			mb = &pl.Maps[i]
		}
	}
	if mb == nil {
		b.Fatal("leaky bucket has no flush-protected map")
	}
	var tp float64
	for i := 0; i < b.N; i++ {
		pf := analytic.FlushProbZipf(mb.L, 50000)
		tp = analytic.Throughput(250, mb.K+4, pf)
	}
	b.ReportMetric(float64(mb.K), "K")
	b.ReportMetric(float64(mb.L), "L")
	b.ReportMetric(tp, "Tp-Mpps")
}

// BenchmarkTable4Analytic regenerates Table 4.
func BenchmarkTable4Analytic(b *testing.B) {
	var rows []analytic.Table4Row
	for i := 0; i < b.N; i++ {
		rows = analytic.Table4()
	}
	for _, row := range rows {
		b.ReportMetric(row.KMax, "Kmax-L"+strconv.Itoa(row.L))
	}
}

// BenchmarkTable5ILP regenerates Table 5 / Appendix A.3.
func BenchmarkTable5ILP(b *testing.B) {
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) {
			var maxILP int
			var avgILP float64
			for i := 0; i < b.N; i++ {
				maxILP, avgILP = compileFor(b, app, core.Options{}).ILP()
			}
			b.ReportMetric(float64(maxILP), "max-ILP")
			b.ReportMetric(avgILP, "avg-ILP")
		})
	}
}

// BenchmarkStatePruning regenerates the Section 5.4 ablation.
func BenchmarkStatePruning(b *testing.B) {
	var dLUT, dFF, dBRAM float64
	for i := 0; i < b.N; i++ {
		pruned := hdl.EstimatePipeline(compileFor(b, apps.Toy(), core.Options{}))
		unpruned := hdl.EstimatePipeline(compileFor(b, apps.Toy(), core.Options{DisablePruning: true}))
		dLUT = 100 * float64(unpruned.LUTs-pruned.LUTs) / float64(pruned.LUTs)
		dFF = 100 * float64(unpruned.FFs-pruned.FFs) / float64(pruned.FFs)
		dBRAM = 100 * float64(unpruned.BRAM36-pruned.BRAM36) / float64(maxInt(pruned.BRAM36, 1))
	}
	b.ReportMetric(dLUT, "dLUT%")
	b.ReportMetric(dFF, "dFF%")
	b.ReportMetric(dBRAM, "dBRAM%")
}

// BenchmarkSingleFlowDegradation regenerates the Section 5.3 in-text
// result: all packets on one map key versus the atomic toy counter.
func BenchmarkSingleFlowDegradation(b *testing.B) {
	packets := make([][]byte, 0, 2000)
	for i := 0; i < 2000; i++ {
		packets = append(packets, pktgen.Build(pktgen.PacketSpec{TotalLen: 64}))
	}
	run := func(b *testing.B, opts core.Options) hwsim.Stats {
		sim, err := hwsim.New(compileFor(b, apps.Toy(), opts), hwsim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range packets {
			for !sim.InputFree() {
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
			sim.Inject(p)
			if err := sim.Step(); err != nil {
				b.Fatal(err)
			}
		}
		if err := sim.RunToCompletion(1 << 24); err != nil {
			b.Fatal(err)
		}
		return sim.Stats()
	}
	var atomicMpps, flushMpps float64
	for i := 0; i < b.N; i++ {
		atomicMpps = run(b, core.Options{}).Mpps(250e6)
		flushMpps = run(b, core.Options{DisableAtomics: true}).Mpps(250e6)
	}
	b.ReportMetric(atomicMpps, "atomic-Mpps")
	b.ReportMetric(flushMpps, "flush-lowered-Mpps")
	if flushMpps >= atomicMpps {
		b.Error("lowering atomics to flushes did not degrade single-key throughput")
	}
}

// BenchmarkHazardPolicy compares flush against conservative stalling
// (the Section 4.1.2 design decision).
func BenchmarkHazardPolicy(b *testing.B) {
	for _, policy := range []hwsim.HazardPolicy{hwsim.PolicyFlush, hwsim.PolicyStall} {
		name := "flush"
		if policy == hwsim.PolicyStall {
			name = "stall"
		}
		b.Run(name, func(b *testing.B) {
			app := apps.LeakyBucket()
			traffic := app.Traffic
			traffic.Flows = 100000
			gen := pktgen.NewGenerator(traffic)
			sim, err := hwsim.New(compileFor(b, app, core.Options{}), hwsim.Config{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			n := min(packetsForRun(b), 5000)
			b.ResetTimer()
			for _, p := range gen.Batch(n) {
				for !sim.InputFree() {
					if err := sim.Step(); err != nil {
						b.Fatal(err)
					}
				}
				sim.Inject(p)
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
			if err := sim.RunToCompletion(1 << 24); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(sim.Stats().Mpps(250e6), "Mpps")
		})
	}
}

// BenchmarkCompile measures the compiler itself — the paper notes eHDL
// generates designs "in few seconds".
func BenchmarkCompile(b *testing.B) {
	for _, app := range apps.All() {
		prog := programFor(b, app)
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(prog, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVHDLGeneration measures the backend.
func BenchmarkVHDLGeneration(b *testing.B) {
	pl := compileFor(b, apps.Tunnel(), core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hdl.Generate(pl)
	}
}

// BenchmarkSimulatorCycleRate measures the cycle-accurate simulator's
// host-side speed (cycles of simulated hardware per wall second).
func BenchmarkSimulatorCycleRate(b *testing.B) {
	sh := shellFor(b, apps.Firewall(), core.Options{}, nic.ShellConfig{})
	gen := pktgen.NewGenerator(apps.Firewall().Traffic)
	n := packetsForRun(b)
	b.ResetTimer()
	rep, err := sh.RunLoad(gen.Next, n, 148.8e6)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Cycles), "sim-cycles")
}

// BenchmarkVMInterpreter measures the golden-model interpreter. Every
// iteration mutates the firewall's connection map, so the measured
// state is restored to the post-setup snapshot periodically — a long
// -benchtime run must not time an ever-growing map.
func BenchmarkVMInterpreter(b *testing.B) {
	app := apps.Firewall()
	prog := programFor(b, app)
	env, err := vm.NewEnv(prog)
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Setup(env.Maps); err != nil {
		b.Fatal(err)
	}
	m, err := vm.New(prog, env)
	if err != nil {
		b.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	pkt := gen.Next()
	clean := env.Maps.Snapshot()
	const resetEvery = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%resetEvery == 0 {
			b.StopTimer()
			if err := env.Maps.Restore(clean); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := m.Run(vm.NewPacket(pkt)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastPath is BenchmarkVMInterpreter's sibling on the
// compiled engine: the same firewall program and traffic, executed by
// the fused per-stage closure chain in steady state (each Step retires
// one packet and promotes the next, so ns/op is the per-packet cost).
// The ratio of the two ns/op figures is the host speedup the benchreg
// host/fastpath points gate.
func BenchmarkFastPath(b *testing.B) {
	app := apps.Firewall()
	pl := compileFor(b, app, core.Options{})
	m, err := fastpath.New(pl, hwsim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Setup(m.Maps()); err != nil {
		b.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	pkt := gen.Next()
	// Warm up map and handle-table state so the timed loop is the
	// allocation-free happy path the zero-alloc test guards.
	m.Inject(pkt)
	if err := m.RunToCompletion(1 << 16); err != nil {
		b.Fatal(err)
	}
	clean := m.Maps().Snapshot()
	const resetEvery = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%resetEvery == 0 {
			b.StopTimer()
			if err := m.Maps().Restore(clean); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		m.Inject(pkt)
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := m.RunToCompletion(1 << 16); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRSSScaling sweeps the multi-queue shell at 85% of the
// replica fleet's aggregate capacity; the Mpps and speedup metrics are
// the simulated-time figures the regression baseline also guards.
func BenchmarkRSSScaling(b *testing.B) {
	var base float64
	for _, queues := range []int{1, 2, 4, 8} {
		b.Run("q"+strconv.Itoa(queues), func(b *testing.B) {
			cfg := nic.ShellConfig{Queues: queues, Sim: hwsim.Config{InputQueuePackets: 64}}
			sh := shellFor(b, apps.Toy(), core.Options{}, cfg)
			gen := pktgen.NewGenerator(apps.Toy().Traffic)
			n := packetsForRun(b)
			offered := 0.85 * 250e6 * float64(queues)
			b.ResetTimer()
			rep, err := sh.RunLoad(gen.Next, n, offered)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if rep.Lost > 0 {
				b.Errorf("%d queues lost %d packets at 85%% aggregate load", queues, rep.Lost)
			}
			if queues == 1 {
				base = rep.AchievedMpps
			}
			b.ReportMetric(rep.AchievedMpps, "Mpps")
			if base > 0 {
				b.ReportMetric(rep.AchievedMpps/base, "speedup")
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
