package maps

import (
	"encoding/binary"
	"testing"

	"ehdl/internal/ebpf"
	"ehdl/internal/protect"
)

// BenchmarkProtectedScrubPass measures one full background-scrub pass
// over a completely full hash map (the satellite-6 hot path: the
// scrubber's steady-state cost when the pipeline is otherwise idle).
func BenchmarkProtectedScrubPass(b *testing.B) {
	const entries = 1024
	m, err := New(ebpf.MapSpec{Name: "b", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 16, MaxEntries: entries})
	if err != nil {
		b.Fatal(err)
	}
	p := Protect(m, protect.SECDED{})
	key := make([]byte, 4)
	val := make([]byte, 16)
	for i := uint32(0); i < entries; i++ {
		binary.LittleEndian.PutUint32(key, i)
		binary.LittleEndian.PutUint64(val, uint64(i)*0x9e3779b97f4a7c15)
		if err := p.Update(key, val, UpdateAny); err != nil {
			b.Fatal(err)
		}
	}
	words := entries * protect.Words(len(val))
	b.SetBytes(int64(entries * len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < words; w++ {
			if _, wrapped := p.ScrubWord(); wrapped != (w == words-1) {
				b.Fatalf("pass wrapped at word %d of %d", w, words)
			}
		}
	}
}

// BenchmarkProtectedLookupECC is the per-packet read-port cost: one
// protected lookup of a clean 16-byte value.
func BenchmarkProtectedLookupECC(b *testing.B) {
	m, err := New(ebpf.MapSpec{Name: "b", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 16, MaxEntries: 8})
	if err != nil {
		b.Fatal(err)
	}
	p := Protect(m, protect.SECDED{})
	key := []byte{1, 0, 0, 0}
	if err := p.Update(key, make([]byte, 16), UpdateAny); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Lookup(key); !ok {
			b.Fatal("miss")
		}
	}
}
