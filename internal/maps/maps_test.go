package maps

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"ehdl/internal/ebpf"
)

// mustNew builds a map from a spec known to be valid; tests may panic
// on impossible construction errors, the library itself may not.
func mustNew(spec ebpf.MapSpec) Map {
	m, err := New(spec)
	if err != nil {
		panic(err)
	}
	return m
}

func u32key(v uint32) []byte {
	k := make([]byte, 4)
	binary.LittleEndian.PutUint32(k, v)
	return k
}

func u64val(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestArrayMap(t *testing.T) {
	m := mustNew(ebpf.MapSpec{Name: "a", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 4})

	v, ok := m.Lookup(u32key(0))
	if !ok || len(v) != 8 {
		t.Fatalf("Lookup(0) = %v, %v", v, ok)
	}
	if err := m.Update(u32key(2), u64val(99), UpdateAny); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Lookup(u32key(2))
	if binary.LittleEndian.Uint64(v) != 99 {
		t.Errorf("value = %d, want 99", binary.LittleEndian.Uint64(v))
	}
	if _, ok := m.Lookup(u32key(4)); ok {
		t.Error("Lookup past MaxEntries succeeded")
	}
	if err := m.Update(u32key(4), u64val(1), UpdateAny); err == nil {
		t.Error("Update past MaxEntries succeeded")
	}
	if err := m.Update(u32key(0), u64val(1), UpdateNoExist); err == nil {
		t.Error("UpdateNoExist on an array map succeeded")
	}
	if err := m.Delete(u32key(0)); err == nil {
		t.Error("Delete on an array map succeeded")
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}

func TestArrayPointerStability(t *testing.T) {
	m := mustNew(ebpf.MapSpec{Name: "a", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	v1, _ := m.Lookup(u32key(1))
	// Writing through the reference must be visible to later lookups —
	// this is the bpf_map_lookup_elem pointer semantics programs rely on.
	binary.LittleEndian.PutUint64(v1, 7)
	v2, _ := m.Lookup(u32key(1))
	if binary.LittleEndian.Uint64(v2) != 7 {
		t.Error("write through Lookup reference was lost")
	}
}

func TestHashMap(t *testing.T) {
	m := mustNew(ebpf.MapSpec{Name: "h", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	if _, ok := m.Lookup(u32key(1)); ok {
		t.Error("Lookup on empty hash succeeded")
	}
	if err := m.Update(u32key(1), u64val(11), UpdateAny); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(u32key(2), u64val(22), UpdateNoExist); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(u32key(3), u64val(33), UpdateAny); err != ErrMapFull {
		t.Errorf("Update on full map = %v, want ErrMapFull", err)
	}
	if err := m.Update(u32key(1), u64val(111), UpdateExist); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Lookup(u32key(1))
	if binary.LittleEndian.Uint64(v) != 111 {
		t.Error("UpdateExist did not overwrite")
	}
	if err := m.Update(u32key(1), u64val(5), UpdateNoExist); err != ErrKeyExist {
		t.Errorf("UpdateNoExist on present key = %v", err)
	}
	if err := m.Update(u32key(9), u64val(5), UpdateExist); err != ErrKeyNotExist {
		t.Errorf("UpdateExist on absent key = %v", err)
	}
	if err := m.Delete(u32key(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(u32key(1)); err != ErrKeyNotExist {
		t.Errorf("double delete = %v", err)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestHashPointerStability(t *testing.T) {
	m := mustNew(ebpf.MapSpec{Name: "h", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: 8})
	if err := m.Update(u32key(1), u64val(1), UpdateAny); err != nil {
		t.Fatal(err)
	}
	ref, _ := m.Lookup(u32key(1))
	// An in-place update must not reallocate the buffer.
	if err := m.Update(u32key(1), u64val(42), UpdateAny); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(ref) != 42 {
		t.Error("update reallocated the value buffer")
	}
}

func TestLRUEviction(t *testing.T) {
	m := mustNew(ebpf.MapSpec{Name: "lru", Kind: ebpf.MapLRUHash, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(m.Update(u32key(1), u64val(1), UpdateAny))
	check(m.Update(u32key(2), u64val(2), UpdateAny))
	// Touch key 1 so key 2 becomes the LRU victim.
	m.Lookup(u32key(1))
	check(m.Update(u32key(3), u64val(3), UpdateAny))
	if _, ok := m.Lookup(u32key(2)); ok {
		t.Error("LRU did not evict the least recently used key")
	}
	if _, ok := m.Lookup(u32key(1)); !ok {
		t.Error("LRU evicted a recently used key")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func lpmKey(prefixLen int, addr [4]byte) []byte {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint32(k[:4], uint32(prefixLen))
	copy(k[4:], addr[:])
	return k
}

func TestLPMTrie(t *testing.T) {
	m := mustNew(ebpf.MapSpec{Name: "r", Kind: ebpf.MapLPMTrie, KeySize: 8, ValueSize: 4, MaxEntries: 16})
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// 10.0.0.0/8 -> 1, 10.1.0.0/16 -> 2, default 0.0.0.0/0 -> 3.
	check(m.Update(lpmKey(8, [4]byte{10, 0, 0, 0}), u32key(1), UpdateAny))
	check(m.Update(lpmKey(16, [4]byte{10, 1, 0, 0}), u32key(2), UpdateAny))
	check(m.Update(lpmKey(0, [4]byte{}), u32key(3), UpdateAny))

	cases := []struct {
		addr [4]byte
		want uint32
	}{
		{[4]byte{10, 2, 3, 4}, 1}, // matches /8
		{[4]byte{10, 1, 3, 4}, 2}, // matches the longer /16
		{[4]byte{192, 168, 0, 1}, 3},
	}
	for _, c := range cases {
		v, ok := m.Lookup(lpmKey(32, c.addr))
		if !ok {
			t.Errorf("Lookup(%v) missed", c.addr)
			continue
		}
		if got := binary.LittleEndian.Uint32(v); got != c.want {
			t.Errorf("Lookup(%v) = %d, want %d", c.addr, got, c.want)
		}
	}
	// Delete the /16 and confirm fallback to the /8.
	check(m.Delete(lpmKey(16, [4]byte{10, 1, 0, 0})))
	v, _ := m.Lookup(lpmKey(32, [4]byte{10, 1, 3, 4}))
	if binary.LittleEndian.Uint32(v) != 1 {
		t.Error("delete did not restore the shorter prefix")
	}
	if err := m.Delete(lpmKey(16, [4]byte{10, 1, 0, 0})); err != ErrKeyNotExist {
		t.Errorf("double delete = %v", err)
	}
	// Excessive prefix length is rejected.
	if err := m.Update(lpmKey(33, [4]byte{1, 2, 3, 4}), u32key(0), UpdateAny); err == nil {
		t.Error("accepted a 33-bit prefix on a 32-bit key")
	}
}

func TestSet(t *testing.T) {
	prog := &ebpf.Program{
		Name: "p",
		Maps: []ebpf.MapSpec{
			{Name: "a", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 2},
			{Name: "h", Kind: ebpf.MapHash, KeySize: 8, ValueSize: 16, MaxEntries: 64},
		},
		Instructions: []ebpf.Instruction{ebpf.Exit()},
	}
	set, err := NewSet(prog)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("Len = %d", set.Len())
	}
	a, ok := set.ByName("a")
	if !ok || a.Spec().Name != "a" {
		t.Error("ByName(a) failed")
	}
	h, ok := set.ByID(1)
	if !ok || h.Spec().Name != "h" {
		t.Error("ByID(1) failed")
	}
	if _, ok := set.ByID(2); ok {
		t.Error("ByID(2) succeeded on a 2-map set")
	}
}

func TestSynchronized(t *testing.T) {
	m := Synchronize(mustNew(ebpf.MapSpec{Name: "s", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: 8}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = m.Update(u32key(uint32(i%8)), u64val(uint64(i)), UpdateAny)
		}
	}()
	for i := 0; i < 1000; i++ {
		m.LookupCopy(u32key(uint32(i % 8)))
		m.Len()
	}
	<-done
	snap, ok := m.LookupCopy(u32key(0))
	if !ok || len(snap) != 8 {
		t.Error("LookupCopy failed after concurrent updates")
	}
	count := 0
	m.Iterate(func(k, v []byte) bool { count++; return true })
	if count != m.Len() {
		t.Errorf("Iterate visited %d entries, Len = %d", count, m.Len())
	}
}

// TestPropertyHashAgainstModel drives the hash map and a plain Go map
// with the same random operations and compares the results.
func TestPropertyHashAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := mustNew(ebpf.MapSpec{Name: "h", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: 1 << 20})
		model := map[uint32][]byte{}
		for i := 0; i < 300; i++ {
			k := uint32(r.Intn(32))
			switch r.Intn(3) {
			case 0:
				v := u64val(r.Uint64())
				if err := m.Update(u32key(k), v, UpdateAny); err != nil {
					return false
				}
				model[k] = v
			case 1:
				err := m.Delete(u32key(k))
				_, had := model[k]
				if had != (err == nil) {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := m.Lookup(u32key(k))
				want, had := model[k]
				if ok != had {
					return false
				}
				if ok && !bytes.Equal(v, want) {
					return false
				}
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLPMAgainstLinearScan compares trie lookups with a
// brute-force longest-prefix scan.
func TestPropertyLPMAgainstLinearScan(t *testing.T) {
	type entry struct {
		plen int
		addr [4]byte
		val  uint32
	}
	match := func(e entry, addr [4]byte) bool {
		for i := 0; i < e.plen; i++ {
			if bitAt(e.addr[:], i) != bitAt(addr[:], i) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := mustNew(ebpf.MapSpec{Name: "t", Kind: ebpf.MapLPMTrie, KeySize: 8, ValueSize: 4, MaxEntries: 256})
		var entries []entry
		for i := 0; i < 24; i++ {
			e := entry{plen: r.Intn(33), val: uint32(i + 1)}
			r.Read(e.addr[:])
			// Normalise: clear host bits so duplicate prefixes dedupe the
			// same way in both implementations.
			for b := e.plen; b < 32; b++ {
				e.addr[b/8] &^= 1 << (7 - b%8)
			}
			dup := false
			for j, old := range entries {
				if old.plen == e.plen && old.addr == e.addr {
					entries[j].val = e.val
					dup = true
					break
				}
			}
			if !dup {
				entries = append(entries, e)
			}
			if err := m.Update(lpmKey(e.plen, e.addr), u32key(e.val), UpdateAny); err != nil {
				return false
			}
		}
		for i := 0; i < 100; i++ {
			var addr [4]byte
			r.Read(addr[:])
			var best *entry
			for j := range entries {
				e := &entries[j]
				if match(*e, addr) && (best == nil || e.plen > best.plen) {
					best = e
				}
			}
			v, ok := m.Lookup(lpmKey(32, addr))
			if (best != nil) != ok {
				return false
			}
			if ok && binary.LittleEndian.Uint32(v) != best.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
