package maps

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
)

// arrayMap is BPF_MAP_TYPE_ARRAY: all entries exist from creation, keys
// are u32 indices, and values are zero-initialised. DEVMAPs share the
// implementation.
type arrayMap struct {
	spec    ebpf.MapSpec
	storage []byte
}

func newArray(spec ebpf.MapSpec) *arrayMap {
	return &arrayMap{
		spec:    spec,
		storage: make([]byte, spec.MaxEntries*spec.ValueSize),
	}
}

func (a *arrayMap) Spec() ebpf.MapSpec { return a.spec }

func (a *arrayMap) index(key []byte) (int, error) {
	if err := checkKey(a.spec, key); err != nil {
		return 0, err
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx >= a.spec.MaxEntries {
		return 0, fmt.Errorf("maps: %s: index %d out of range (max %d): %w",
			a.spec.Name, idx, a.spec.MaxEntries, ErrKeyNotExist)
	}
	return idx, nil
}

// ValueAt returns the storage slice of entry idx without key checks;
// it is used by the simulators to give map values stable addresses.
func (a *arrayMap) ValueAt(idx int) []byte {
	off := idx * a.spec.ValueSize
	return a.storage[off : off+a.spec.ValueSize : off+a.spec.ValueSize]
}

func (a *arrayMap) Lookup(key []byte) ([]byte, bool) {
	idx, err := a.index(key)
	if err != nil {
		return nil, false
	}
	return a.ValueAt(idx), true
}

func (a *arrayMap) Update(key, value []byte, flag UpdateFlag) error {
	if flag == UpdateNoExist {
		// Array entries always exist.
		return ErrKeyExist
	}
	if err := checkValue(a.spec, value); err != nil {
		return err
	}
	idx, err := a.index(key)
	if err != nil {
		return err
	}
	copy(a.ValueAt(idx), value)
	return nil
}

func (a *arrayMap) Delete(key []byte) error {
	// The kernel rejects deletes on array maps.
	return fmt.Errorf("maps: %s: delete is not supported on array maps", a.spec.Name)
}

func (a *arrayMap) Iterate(fn func(key, value []byte) bool) {
	var key [4]byte
	for i := 0; i < a.spec.MaxEntries; i++ {
		binary.LittleEndian.PutUint32(key[:], uint32(i))
		if !fn(key[:], a.ValueAt(i)) {
			return
		}
	}
}

func (a *arrayMap) Len() int { return a.spec.MaxEntries }
