package maps

import (
	"encoding/binary"
	"testing"

	"ehdl/internal/ebpf"
	"ehdl/internal/protect"
)

func lpmSpec(name string, max int) ebpf.MapSpec {
	// 4-byte prefix length + 4 address bytes: an IPv4 routing trie.
	return ebpf.MapSpec{Name: name, Kind: ebpf.MapLPMTrie, KeySize: 8, ValueSize: 8, MaxEntries: max}
}

// TestSnapshotRestoreLPM pins the migration substrate for routing
// state: an LPM trie round-trips through Snapshot/Restore with its
// longest-prefix semantics intact, whatever diverged in between.
func TestSnapshotRestoreLPM(t *testing.T) {
	prog := &ebpf.Program{Name: "p", Maps: []ebpf.MapSpec{lpmSpec("routes", 16)}}
	set, err := NewSet(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := set.ByName("routes")
	// Nested prefixes: 10.0.0.0/8 under 10.1.0.0/16 under 10.1.2.0/24.
	mustUpdate(t, m, lpmKey(8, [4]byte{10, 0, 0, 0}), val64(8))
	mustUpdate(t, m, lpmKey(16, [4]byte{10, 1, 0, 0}), val64(16))
	mustUpdate(t, m, lpmKey(24, [4]byte{10, 1, 2, 0}), val64(24))

	snap := set.Snapshot()
	if snap.Entries() != 3 {
		t.Fatalf("snapshot captured %d entries, want 3", snap.Entries())
	}

	// Diverge in every way a data plane can: a more specific route, a
	// withdrawn route, a changed next hop.
	mustUpdate(t, m, lpmKey(32, [4]byte{10, 1, 2, 3}), val64(32))
	if err := m.Delete(lpmKey(16, [4]byte{10, 1, 0, 0})); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, m, lpmKey(24, [4]byte{10, 1, 2, 0}), val64(9999))

	if err := set.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("trie has %d entries after restore, want 3", m.Len())
	}
	// Longest-prefix matching over the restored trie: a /32 query walks
	// down to the most specific surviving covering prefix.
	for _, tc := range []struct {
		addr [4]byte
		want uint64
	}{
		{[4]byte{10, 1, 2, 3}, 24}, // the /24; the post-snapshot /32 is gone
		{[4]byte{10, 1, 9, 0}, 16}, // the restored /16
		{[4]byte{10, 7, 7, 7}, 8},  // the /8
	} {
		v, ok := m.Lookup(lpmKey(32, tc.addr))
		if !ok {
			t.Fatalf("addr %v unroutable after restore", tc.addr)
		}
		if got := binary.LittleEndian.Uint64(v); got != tc.want {
			t.Fatalf("addr %v routed by /%d, want /%d", tc.addr, got, tc.want)
		}
	}
	if !set.Snapshot().Equal(snap) {
		t.Fatal("re-snapshot after restore differs from the checkpoint")
	}
}

// TestSnapshotRestoreProtectedLPM drives the checkpoint path through a
// protected trie: restoring over a quarantined entry must rewrite it
// through the encoding write path, re-arming the check bits and
// lifting the quarantine.
func TestSnapshotRestoreProtectedLPM(t *testing.T) {
	prog := &ebpf.Program{Name: "p", Maps: []ebpf.MapSpec{lpmSpec("routes", 16)}}
	set, err := NewSet(prog)
	if err != nil {
		t.Fatal(err)
	}
	ProtectSet(set, protect.LevelECC)
	m, _ := set.ByName("routes")
	p, ok := AsProtected(m)
	if !ok {
		t.Fatal("trie not wrapped")
	}
	mustUpdate(t, m, lpmKey(24, [4]byte{10, 1, 2, 0}), val64(42))
	snap := set.Snapshot()

	// A double flip is uncorrectable under SECDED: the entry quarantines
	// and longest-prefix lookups must refuse to serve it.
	flipStoredBit(t, p, lpmKey(24, [4]byte{10, 1, 2, 0}), 3)
	flipStoredBit(t, p, lpmKey(24, [4]byte{10, 1, 2, 0}), 17)
	if _, ok := m.Lookup(lpmKey(24, [4]byte{10, 1, 2, 0})); ok {
		t.Fatal("poisoned route still served")
	}
	if p.Quarantined() != 1 {
		t.Fatalf("%d entries quarantined, want 1", p.Quarantined())
	}

	if err := set.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if p.Quarantined() != 0 {
		t.Fatal("restore did not lift the quarantine")
	}
	v, ok := m.Lookup(lpmKey(32, [4]byte{10, 1, 2, 3}))
	if !ok {
		t.Fatal("restored route unroutable")
	}
	if got := binary.LittleEndian.Uint64(v); got != 42 {
		t.Fatalf("restored next hop %d, want 42", got)
	}
	if !p.CheckKey(lpmKey(24, [4]byte{10, 1, 2, 0})) {
		t.Fatal("check bits not re-encoded by the restore")
	}
}

// TestSnapshotCapturesQuarantinedRaw pins the semantics of checkpoints
// taken while an entry is quarantined: Snapshot reads raw storage, so
// the poisoned bytes are captured as-is, and restoring re-encodes them
// as the new ground truth — the scrubber's job is to prevent such
// checkpoints, not the snapshotter's to filter them.
func TestSnapshotCapturesQuarantinedRaw(t *testing.T) {
	prog := &ebpf.Program{Name: "p", Maps: []ebpf.MapSpec{hashSpec("h", 8)}}
	set, err := NewSet(prog)
	if err != nil {
		t.Fatal(err)
	}
	ProtectSet(set, protect.LevelECC)
	m, _ := set.ByName("h")
	p, _ := AsProtected(m)
	mustUpdate(t, m, key32(1), val64(7))
	flipStoredBit(t, p, key32(1), 3)
	flipStoredBit(t, p, key32(1), 17)
	if _, ok := m.Lookup(key32(1)); ok {
		t.Fatal("entry not quarantined")
	}

	snap := set.Snapshot()
	if snap.Entries() != 1 {
		t.Fatalf("snapshot captured %d entries, want the raw quarantined one", snap.Entries())
	}
	if err := set.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if p.Quarantined() != 0 {
		t.Fatal("restore left the entry quarantined")
	}
	v, ok := m.Lookup(key32(1))
	if !ok {
		t.Fatal("re-encoded entry still refused")
	}
	if got := binary.LittleEndian.Uint64(v); got == 7 {
		t.Fatal("corrupted checkpoint read back the pre-fault value; the flips were lost")
	} else if got != 7^(1<<3)^(1<<17) {
		t.Fatalf("restored raw value %#x, want the captured double-flip pattern", got)
	}
}

// TestSnapshotCanonical pins the byte-stable encoding the fleet journal
// digests are built from: two sets holding the same entries but with
// different access histories (hash maps iterate in LRU recency order)
// must canonicalise identically, and the canonical order is the
// bytewise key sort.
func TestSnapshotCanonical(t *testing.T) {
	spec := ebpf.MapSpec{Name: "flows", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: 16}
	build := func(touch bool) *SetSnapshot {
		prog := &ebpf.Program{Name: "p", Maps: []ebpf.MapSpec{spec}}
		set, err := NewSet(prog)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := set.ByName("flows")
		for _, k := range []uint32{7, 3, 11, 1} {
			key := make([]byte, 4)
			binary.LittleEndian.PutUint32(key, k)
			mustUpdate(t, m, key, val64(uint64(k)*10))
		}
		if touch {
			// Different access history, same contents: recency order moves.
			for _, k := range []uint32{11, 1} {
				key := make([]byte, 4)
				binary.LittleEndian.PutUint32(key, k)
				if _, ok := m.Lookup(key); !ok {
					t.Fatalf("key %d vanished", k)
				}
			}
		}
		return set.Snapshot()
	}

	a, b := build(false).Canonical(), build(true).Canonical()
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("canonical forms cover %d/%d maps, want 1", len(a), len(b))
	}
	if len(a[0].Keys) != 4 {
		t.Fatalf("canonical form has %d entries, want 4", len(a[0].Keys))
	}
	for i := range a[0].Keys {
		if string(a[0].Keys[i]) != string(b[0].Keys[i]) || string(a[0].Values[i]) != string(b[0].Values[i]) {
			t.Fatalf("entry %d differs between access histories", i)
		}
		if i > 0 && string(a[0].Keys[i-1]) >= string(a[0].Keys[i]) {
			t.Errorf("canonical keys not strictly sorted at %d", i)
		}
	}

	// The raw snapshots themselves iterate in different orders — the
	// nondeterminism Canonical exists to remove.
	ra, rb := build(false), build(true)
	same := true
	for i := range ra.maps[0].keys {
		if string(ra.maps[0].keys[i]) != string(rb.maps[0].keys[i]) {
			same = false
		}
	}
	if same {
		t.Log("note: recency order happened to match; canonical form still required by contract")
	}
	if !ra.Equal(rb) {
		t.Error("same-content snapshots must compare Equal regardless of order")
	}
}
