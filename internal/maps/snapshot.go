package maps

import (
	"bytes"
	"fmt"
	"sort"

	"ehdl/internal/ebpf"
)

// SetSnapshot is a deep, point-in-time copy of every map in a Set: the
// known-good checkpoint the recovery machinery restores after an
// uncorrectable upset. On the FPGA this is the shadow BRAM copy the
// checkpoint controller maintains; here it is plain byte copies taken
// in each map's deterministic iteration order.
type SetSnapshot struct {
	maps []mapSnapshot
}

type mapSnapshot struct {
	keys   [][]byte
	values [][]byte
}

// Equal reports whether two snapshots hold the same entries, compared
// as per-map key/value sets so a restore's different insertion order
// does not matter.
func (s *SetSnapshot) Equal(o *SetSnapshot) bool {
	if o == nil || len(s.maps) != len(o.maps) {
		return false
	}
	for i := range s.maps {
		a, b := &s.maps[i], &o.maps[i]
		if len(a.keys) != len(b.keys) {
			return false
		}
		want := make(map[string]string, len(a.keys))
		for j := range a.keys {
			want[string(a.keys[j])] = string(a.values[j])
		}
		for j := range b.keys {
			v, ok := want[string(b.keys[j])]
			if !ok || v != string(b.values[j]) {
				return false
			}
		}
	}
	return true
}

// MapEntries is the canonical view of one map's snapshot: parallel
// key/value slices sorted bytewise by key.
type MapEntries struct {
	Keys   [][]byte
	Values [][]byte
}

// Canonical returns every map's entries sorted bytewise by key — a
// byte-stable encoding of the set state. A snapshot's own entry order
// follows each map's iteration order, which is deterministic but
// access-history-dependent (hash maps walk LRU recency); sorting
// removes the history, so two sets holding the same entries always
// canonicalise to the same bytes. This is the form the fleet journal
// digests and durable snapshots are built from.
func (s *SetSnapshot) Canonical() []MapEntries {
	out := make([]MapEntries, len(s.maps))
	for i := range s.maps {
		ms := &s.maps[i]
		idx := make([]int, len(ms.keys))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			return bytes.Compare(ms.keys[idx[a]], ms.keys[idx[b]]) < 0
		})
		e := &out[i]
		for _, j := range idx {
			e.Keys = append(e.Keys, append([]byte(nil), ms.keys[j]...))
			e.Values = append(e.Values, append([]byte(nil), ms.values[j]...))
		}
	}
	return out
}

// Entries returns the total number of entries captured.
func (s *SetSnapshot) Entries() int {
	n := 0
	for i := range s.maps {
		n += len(s.maps[i].keys)
	}
	return n
}

// Snapshot deep-copies the current contents of every map in the set.
func (s *Set) Snapshot() *SetSnapshot {
	snap := &SetSnapshot{maps: make([]mapSnapshot, len(s.byID))}
	for i, m := range s.byID {
		ms := &snap.maps[i]
		m.Iterate(func(key, value []byte) bool {
			ms.keys = append(ms.keys, append([]byte(nil), key...))
			ms.values = append(ms.values, append([]byte(nil), value...))
			return true
		})
	}
	return snap
}

// Restore rewrites every map to the snapshotted contents: entries
// created since the snapshot are deleted, surviving and quarantined
// entries are overwritten (which re-encodes protection check bits and
// lifts quarantines on Protected maps). Entry order follows the
// snapshot, so LRU recency is rebuilt deterministically.
func (s *Set) Restore(snap *SetSnapshot) error {
	if len(snap.maps) != len(s.byID) {
		return fmt.Errorf("maps: snapshot of %d maps restored into a set of %d", len(snap.maps), len(s.byID))
	}
	for i, m := range s.byID {
		ms := &snap.maps[i]
		spec := m.Spec()
		if spec.Kind != ebpf.MapArray && spec.Kind != ebpf.MapDevMap {
			// Drop entries that did not exist at checkpoint time. Keys are
			// collected first: deleting while iterating would race the
			// walk's cursor.
			var live [][]byte
			m.Iterate(func(key, _ []byte) bool {
				live = append(live, append([]byte(nil), key...))
				return true
			})
			inSnap := make(map[string]bool, len(ms.keys))
			for _, k := range ms.keys {
				inSnap[string(k)] = true
			}
			for _, k := range live {
				if !inSnap[string(k)] {
					if err := m.Delete(k); err != nil {
						return fmt.Errorf("maps: restore %s: delete: %w", spec.Name, err)
					}
				}
			}
		}
		for j := range ms.keys {
			if err := m.Update(ms.keys[j], ms.values[j], UpdateAny); err != nil {
				return fmt.Errorf("maps: restore %s: %w", spec.Name, err)
			}
		}
	}
	return nil
}
