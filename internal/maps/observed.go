package maps

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/obs"
)

// Observed wraps a map with per-operation counters, the port-level view
// of map traffic every consumer shares: the reference interpreter, the
// pipeline simulator and the host side all resolve maps through the
// set, so a wrapped map counts whoever touches it. The counters live in
// an obs.Registry under maps.<name>.<op>, next to the simulator's
// hwsim.* instruments.
//
// Counting sits outside the data path semantics — Lookup still returns
// the pointer-stable reference, Iterate still exposes raw storage — so
// an observed run stays bit-identical to an unobserved one.
type Observed struct {
	m Map

	lookups *obs.Counter
	misses  *obs.Counter
	updates *obs.Counter
	deletes *obs.Counter
}

// Observe wraps m, registering its counters under maps.<name>.*.
func Observe(m Map, reg *obs.Registry) *Observed {
	name := "maps." + m.Spec().Name
	return &Observed{
		m:       m,
		lookups: reg.Counter(name + ".lookups"),
		misses:  reg.Counter(name + ".misses"),
		updates: reg.Counter(name + ".updates"),
		deletes: reg.Counter(name + ".deletes"),
	}
}

// AsObserved reports whether a map is observation-wrapped.
func AsObserved(m Map) (*Observed, bool) {
	o, ok := m.(*Observed)
	return o, ok
}

// Unwrap returns the wrapped map (protection wrappers compose: an
// Observed may wrap a Protected).
func (o *Observed) Unwrap() Map { return o.m }

// Spec implements Map.
func (o *Observed) Spec() ebpf.MapSpec { return o.m.Spec() }

// Lookup implements Map, counting hits and misses.
func (o *Observed) Lookup(key []byte) ([]byte, bool) {
	v, ok := o.m.Lookup(key)
	o.lookups.Inc()
	if !ok {
		o.misses.Inc()
	}
	return v, ok
}

// Update implements Map.
func (o *Observed) Update(key, value []byte, flag UpdateFlag) error {
	o.updates.Inc()
	return o.m.Update(key, value, flag)
}

// Delete implements Map.
func (o *Observed) Delete(key []byte) error {
	o.deletes.Inc()
	return o.m.Delete(key)
}

// Iterate implements Map, passing the raw storage through uncounted
// (it is the debug/host walk, not a port operation).
func (o *Observed) Iterate(fn func(key, value []byte) bool) { o.m.Iterate(fn) }

// Len implements Map.
func (o *Observed) Len() int { return o.m.Len() }

// ObserveSet wraps every map of a set, swapping the wrappers into both
// indexes exactly like ProtectSet, and returns them in mapID order.
// Maps already wrapped are returned as-is.
func ObserveSet(s *Set, reg *obs.Registry) []*Observed {
	out := make([]*Observed, 0, len(s.byID))
	for i, m := range s.byID {
		o, ok := AsObserved(m)
		if !ok {
			o = Observe(m, reg)
			s.byID[i] = o
			s.byName[o.Spec().Name] = o
		}
		out = append(out, o)
	}
	return out
}
