package maps

import (
	"container/list"

	"ehdl/internal/ebpf"
)

// hashEntry is one live key/value pair. The value buffer is allocated
// once and reused in place by updates, so references returned by Lookup
// stay valid until the entry is deleted or evicted.
type hashEntry struct {
	key   string
	value []byte
	lru   *list.Element // position in the recency list (LRU maps only)
}

// hashMap is BPF_MAP_TYPE_HASH and, with evict set,
// BPF_MAP_TYPE_LRU_HASH. The LRU variant evicts the least recently used
// entry instead of failing when full, matching the kernel's behaviour
// closely enough for the evaluation workloads (connection tables that
// must not reject new flows).
type hashMap struct {
	spec    ebpf.MapSpec
	entries map[string]*hashEntry
	order   *list.List // front = most recently used
	evict   bool
}

func newHash(spec ebpf.MapSpec, evict bool) *hashMap {
	return &hashMap{
		spec:    spec,
		entries: make(map[string]*hashEntry, spec.MaxEntries),
		order:   list.New(),
		evict:   evict,
	}
}

func (h *hashMap) Spec() ebpf.MapSpec { return h.spec }

func (h *hashMap) touch(e *hashEntry) {
	if h.evict {
		h.order.MoveToFront(e.lru)
	}
}

func (h *hashMap) Lookup(key []byte) ([]byte, bool) {
	if err := checkKey(h.spec, key); err != nil {
		return nil, false
	}
	e, ok := h.entries[string(key)]
	if !ok {
		return nil, false
	}
	h.touch(e)
	return e.value, true
}

func (h *hashMap) Update(key, value []byte, flag UpdateFlag) error {
	if err := checkKey(h.spec, key); err != nil {
		return err
	}
	if err := checkValue(h.spec, value); err != nil {
		return err
	}
	k := string(key)
	if e, ok := h.entries[k]; ok {
		if flag == UpdateNoExist {
			return ErrKeyExist
		}
		copy(e.value, value)
		h.touch(e)
		return nil
	}
	if flag == UpdateExist {
		return ErrKeyNotExist
	}
	if len(h.entries) >= h.spec.MaxEntries {
		if !h.evict {
			return ErrMapFull
		}
		// Evict the least recently used entry.
		back := h.order.Back()
		if back == nil {
			return ErrMapFull
		}
		victim := back.Value.(*hashEntry)
		h.order.Remove(back)
		delete(h.entries, victim.key)
	}
	e := &hashEntry{key: k, value: append([]byte(nil), value...)}
	e.lru = h.order.PushFront(e)
	h.entries[k] = e
	return nil
}

func (h *hashMap) Delete(key []byte) error {
	if err := checkKey(h.spec, key); err != nil {
		return err
	}
	e, ok := h.entries[string(key)]
	if !ok {
		return ErrKeyNotExist
	}
	h.order.Remove(e.lru)
	delete(h.entries, e.key)
	return nil
}

func (h *hashMap) Iterate(fn func(key, value []byte) bool) {
	// Walk in recency order, which is deterministic, unlike Go map
	// iteration.
	for el := h.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*hashEntry)
		if !fn([]byte(e.key), e.value) {
			return
		}
	}
}

func (h *hashMap) Len() int { return len(h.entries) }
