// Package maps implements the eBPF map substrate: the persistent memory
// that lives across program executions (Section 2.2 of the eHDL paper).
//
// Maps are created from ebpf.MapSpec declarations when a program is
// loaded. The same objects are shared by the reference virtual machine,
// the hardware pipeline simulator (as the backing store of eHDLmap
// blocks) and the "host" side of an application, mirroring how a real
// deployment shares map memory between the NIC and userspace tools.
//
// Lookup returns a reference to the stored value, not a copy: eBPF
// programs write through the pointer returned by bpf_map_lookup_elem,
// so value buffers are pointer-stable from insert until delete.
package maps

import (
	"fmt"
	"sync"

	"ehdl/internal/ebpf"
)

// UpdateFlag mirrors the kernel's bpf_map_update_elem flags.
type UpdateFlag int

// Update flags.
const (
	UpdateAny     UpdateFlag = 0 // create or overwrite
	UpdateNoExist UpdateFlag = 1 // create only
	UpdateExist   UpdateFlag = 2 // overwrite only
)

// Map is the common behaviour of all map kinds.
type Map interface {
	// Spec returns the declaration the map was created from.
	Spec() ebpf.MapSpec
	// Lookup returns a pointer-stable reference to the value stored
	// under key, or false if the key is absent.
	Lookup(key []byte) ([]byte, bool)
	// Update stores value under key subject to flag semantics.
	Update(key, value []byte, flag UpdateFlag) error
	// Delete removes key. It is an error to delete an absent key.
	Delete(key []byte) error
	// Iterate visits entries until fn returns false. The visited
	// slices alias map storage.
	Iterate(fn func(key, value []byte) bool)
	// Len returns the number of live entries.
	Len() int
}

// ErrKeyNotExist is returned when an operation requires a present key.
var ErrKeyNotExist = fmt.Errorf("maps: key does not exist")

// ErrKeyExist is returned by Update with UpdateNoExist on a present key.
var ErrKeyExist = fmt.Errorf("maps: key already exists")

// ErrMapFull is returned when the map is at MaxEntries.
var ErrMapFull = fmt.Errorf("maps: map is full")

// New creates a map object for the declaration.
func New(spec ebpf.MapSpec) (Map, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case ebpf.MapArray, ebpf.MapDevMap:
		return newArray(spec), nil
	case ebpf.MapHash:
		return newHash(spec, false), nil
	case ebpf.MapLRUHash:
		return newHash(spec, true), nil
	case ebpf.MapLPMTrie:
		return newLPM(spec), nil
	}
	return nil, fmt.Errorf("maps: unsupported kind %v", spec.Kind)
}

// Set groups the maps of a loaded program, indexed both by name and by
// position (the map identifier used by the compiler and simulators).
type Set struct {
	byName map[string]Map
	byID   []Map
}

// NewSet instantiates every map a program declares.
func NewSet(prog *ebpf.Program) (*Set, error) {
	s := &Set{byName: make(map[string]Map, len(prog.Maps))}
	for _, spec := range prog.Maps {
		m, err := New(spec)
		if err != nil {
			return nil, fmt.Errorf("maps: program %q: %w", prog.Name, err)
		}
		s.byName[spec.Name] = m
		s.byID = append(s.byID, m)
	}
	return s, nil
}

// SetOf assembles a set from pre-built maps in declaration order. The
// multi-queue RSS engine uses it to compose per-replica sets that mix
// shared read-only instances with per-queue banks, and to expose the
// merged host view, without re-instantiating maps from the program.
func SetOf(ms ...Map) *Set {
	s := &Set{byName: make(map[string]Map, len(ms))}
	for _, m := range ms {
		s.byName[m.Spec().Name] = m
		s.byID = append(s.byID, m)
	}
	return s
}

// ByName returns the named map.
func (s *Set) ByName(name string) (Map, bool) {
	m, ok := s.byName[name]
	return m, ok
}

// ByID returns the map with the given identifier (position in the
// program's declaration order).
func (s *Set) ByID(id int) (Map, bool) {
	if id < 0 || id >= len(s.byID) {
		return nil, false
	}
	return s.byID[id], true
}

// Len returns the number of maps in the set.
func (s *Set) Len() int { return len(s.byID) }

// Synchronized wraps a map with a mutex for concurrent host/data-plane
// access (Section 6: the host reads statistics while the NIC writes).
type Synchronized struct {
	mu sync.Mutex
	m  Map
}

// Synchronize wraps m.
func Synchronize(m Map) *Synchronized { return &Synchronized{m: m} }

// Spec implements Map.
func (s *Synchronized) Spec() ebpf.MapSpec { return s.m.Spec() }

// Lookup implements Map. The returned reference aliases map storage;
// callers that need a consistent snapshot should copy under LookupCopy.
func (s *Synchronized) Lookup(key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Lookup(key)
}

// LookupCopy returns a private copy of the value under key.
func (s *Synchronized) LookupCopy(key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m.Lookup(key)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Update implements Map.
func (s *Synchronized) Update(key, value []byte, flag UpdateFlag) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Update(key, value, flag)
}

// Delete implements Map.
func (s *Synchronized) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Delete(key)
}

// Iterate implements Map. Unlike the raw maps, the visited slices are
// private snapshots, not aliases of map storage: the walk copies every
// entry under the lock and invokes fn only after releasing it, so fn
// may re-enter the same Synchronized map (Lookup, Update, Delete,
// another Iterate) without deadlocking on the non-reentrant mutex.
// Mutations made by fn are consequently not visible through the slices
// it was handed, and entries updated concurrently after the snapshot
// may be visited with their pre-snapshot values.
func (s *Synchronized) Iterate(fn func(key, value []byte) bool) {
	type entry struct{ key, value []byte }
	s.mu.Lock()
	var snap []entry
	s.m.Iterate(func(key, value []byte) bool {
		snap = append(snap, entry{
			key:   append([]byte(nil), key...),
			value: append([]byte(nil), value...),
		})
		return true
	})
	s.mu.Unlock()
	for _, e := range snap {
		if !fn(e.key, e.value) {
			return
		}
	}
}

// Len implements Map.
func (s *Synchronized) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Len()
}

func checkKey(spec ebpf.MapSpec, key []byte) error {
	if len(key) != spec.KeySize {
		return fmt.Errorf("maps: %s: key size %d, want %d", spec.Name, len(key), spec.KeySize)
	}
	return nil
}

func checkValue(spec ebpf.MapSpec, value []byte) error {
	if len(value) != spec.ValueSize {
		return fmt.Errorf("maps: %s: value size %d, want %d", spec.Name, len(value), spec.ValueSize)
	}
	return nil
}
