package maps

import (
	"testing"

	"ehdl/internal/ebpf"
	"ehdl/internal/obs"
)

func TestObservedCounts(t *testing.T) {
	m, err := New(ebpf.MapSpec{Name: "ctr", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	o := Observe(m, reg)

	key := []byte{1, 2, 3, 4}
	if _, ok := o.Lookup(key); ok {
		t.Fatal("lookup hit on empty map")
	}
	if err := o.Update(key, make([]byte, 8), UpdateAny); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Lookup(key); !ok {
		t.Fatal("lookup miss after update")
	}
	if err := o.Delete(key); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]uint64{
		"maps.ctr.lookups": 2,
		"maps.ctr.misses":  1,
		"maps.ctr.updates": 1,
		"maps.ctr.deletes": 1,
	} {
		if got, ok := reg.CounterValue(name); !ok || got != want {
			t.Errorf("%s = %d (present %v), want %d", name, got, ok, want)
		}
	}
	if o.Len() != 0 {
		t.Fatalf("len %d after delete", o.Len())
	}
	if u := o.Unwrap(); u != m {
		t.Fatal("Unwrap did not return the inner map")
	}
}

func TestObserveSetSwapsAndIsIdempotent(t *testing.T) {
	prog := &ebpf.Program{Name: "p", Maps: []ebpf.MapSpec{
		{Name: "a", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 4},
		{Name: "b", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 4, MaxEntries: 4},
	}}
	s, err := NewSet(prog)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	wrapped := ObserveSet(s, reg)
	if len(wrapped) != 2 {
		t.Fatalf("wrapped %d maps", len(wrapped))
	}
	for i, o := range wrapped {
		byID, _ := s.ByID(i)
		if byID != Map(o) {
			t.Fatalf("map %d: set does not resolve to the wrapper", i)
		}
		byName, _ := s.ByName(o.Spec().Name)
		if byName != Map(o) {
			t.Fatalf("map %q: name index does not resolve to the wrapper", o.Spec().Name)
		}
	}
	again := ObserveSet(s, reg)
	for i := range wrapped {
		if again[i] != wrapped[i] {
			t.Fatal("ObserveSet re-wrapped an observed map")
		}
	}
}
