package maps

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/protect"
)

// Protected wraps a map with a per-word protection codec, modelling the
// ECC/parity bits an FPGA map block stores alongside every BRAM word
// (Xilinx parts carry 8 spare bits per 64 data bits for exactly this).
//
//   - Update (and host-side restores) encode check bits for the stored
//     value — the write-port encoder.
//   - Lookup checks every word of the value against its code before
//     handing out the reference — the read-port syndrome decoder.
//     Single-bit upsets are corrected in place under LevelECC; any
//     detected-but-uncorrectable word quarantines the entry, and the
//     lookup reports a miss rather than serving poisoned data.
//   - ScrubWord implements protect.Scrubbable: the background scrubber
//     sweeps one word per call under a deterministic cursor.
//   - Writes that bypass Update (the data plane storing through a
//     lookup pointer) must be followed by Reencode, exactly as the
//     hardware write port re-encodes on every store.
//
// Iterate deliberately passes the raw storage through unchecked: it is
// the debug/host port the fault injector and the scrubber's own
// bookkeeping use, and checking there would hide the very upsets the
// protection path is supposed to be measured against.
type Protected struct {
	m     Map
	codec protect.Codec
	check map[string][]byte
	quar  map[string]bool
	ctr   protect.Counters

	// Scrub cursor: the key list snapshotted at pass start and the
	// entry/word position within it. A nil passKeys means no pass is in
	// flight.
	passKeys  []string
	passEntry int
	passWord  int
	inPass    bool
}

// Protect wraps m, encoding check bits for every entry it already
// holds (array maps exist in full from creation, so their whole
// backing store is covered immediately).
func Protect(m Map, codec protect.Codec) *Protected {
	p := &Protected{
		m:     m,
		codec: codec,
		check: make(map[string][]byte),
		quar:  make(map[string]bool),
	}
	m.Iterate(func(key, value []byte) bool {
		p.encode(string(key), value)
		return true
	})
	return p
}

// AsProtected reports whether a map is protection-wrapped.
func AsProtected(m Map) (*Protected, bool) {
	p, ok := m.(*Protected)
	return p, ok
}

// Level returns the wrapper's protection level.
func (p *Protected) Level() protect.Level { return p.codec.Level() }

// Counters returns a snapshot of the check outcomes so far.
func (p *Protected) Counters() protect.Counters { return p.ctr }

// Quarantined returns the number of entries currently quarantined.
func (p *Protected) Quarantined() int { return len(p.quar) }

// Spec implements Map.
func (p *Protected) Spec() ebpf.MapSpec { return p.m.Spec() }

// encode (re)computes the check bits for a stored value.
func (p *Protected) encode(key string, value []byte) {
	n := protect.Words(len(value)) * p.codec.CheckBytesPerWord()
	chk := p.check[key]
	if len(chk) != n {
		chk = make([]byte, n)
		p.check[key] = chk
	}
	p.codec.Encode(value, chk)
	delete(p.quar, key)
}

// checkEntry verifies every word of a stored value, correcting what the
// codec can and quarantining the entry on an uncorrectable word. It
// returns false when the entry is (now) quarantined.
func (p *Protected) checkEntry(key string, value []byte) bool {
	chk, ok := p.check[key]
	if !ok {
		// No code stored (an entry that predates protection, or an LRU
		// slot recycled outside Update): encode now so the next upset is
		// caught.
		p.encode(key, value)
		return true
	}
	poisoned := false
	for w := 0; w < protect.Words(len(value)); w++ {
		st := p.codec.CheckWord(value, chk, w)
		p.ctr.Note(st)
		if st == protect.WordUncorrectable {
			poisoned = true
		}
	}
	if poisoned {
		p.quar[key] = true
		return false
	}
	return true
}

// Lookup implements Map: the value is checked (and corrected in place
// when the codec allows) before the reference escapes. A quarantined
// entry reports a miss until it is rewritten.
func (p *Protected) Lookup(key []byte) ([]byte, bool) {
	k := string(key)
	if p.quar[k] {
		return nil, false
	}
	v, ok := p.m.Lookup(key)
	if !ok {
		// Lazy cleanup of codes orphaned by LRU eviction.
		delete(p.check, k)
		return nil, false
	}
	if !p.checkEntry(k, v) {
		return nil, false
	}
	return v, true
}

// Update implements Map, re-encoding the stored value (the write-port
// encoder) and lifting any quarantine on the key.
func (p *Protected) Update(key, value []byte, flag UpdateFlag) error {
	k := string(key)
	if p.quar[k] && flag == UpdateNoExist {
		// The poisoned entry still occupies the slot; creating over it
		// is an overwrite in disguise. Allow it: recovery rewrites
		// quarantined entries this way.
		flag = UpdateAny
	}
	if err := p.m.Update(key, value, flag); err != nil {
		return err
	}
	if v, ok := p.m.Lookup(key); ok {
		p.encode(k, v)
	}
	return nil
}

// Delete implements Map.
func (p *Protected) Delete(key []byte) error {
	k := string(key)
	if err := p.m.Delete(key); err != nil {
		return err
	}
	delete(p.check, k)
	delete(p.quar, k)
	return nil
}

// Iterate implements Map, exposing raw unchecked storage (see the type
// comment).
func (p *Protected) Iterate(fn func(key, value []byte) bool) { p.m.Iterate(fn) }

// Len implements Map.
func (p *Protected) Len() int { return p.m.Len() }

// Reencode recomputes the check bits of one entry after a write that
// bypassed Update — the data plane storing through a lookup pointer.
func (p *Protected) Reencode(key []byte) {
	if v, ok := p.m.Lookup(key); ok {
		p.encode(string(key), v)
	}
}

// CheckKey verifies (and corrects) one entry on demand without handing
// out the value — the read-port decode the simulator runs before a
// pointer-relative load. It reports false when the entry is
// quarantined.
func (p *Protected) CheckKey(key []byte) bool {
	k := string(key)
	if p.quar[k] {
		return false
	}
	v, ok := p.m.Lookup(key)
	if !ok {
		return true
	}
	return p.checkEntry(k, v)
}

// ScrubWord implements protect.Scrubbable: check one word under the
// pass cursor. The pass key list is snapshotted when a pass begins, in
// the map's deterministic iteration order; entries deleted mid-pass are
// skipped.
func (p *Protected) ScrubWord() (protect.WordStatus, bool) {
	if !p.inPass {
		p.passKeys = p.passKeys[:0]
		p.m.Iterate(func(key, _ []byte) bool {
			p.passKeys = append(p.passKeys, string(key))
			return true
		})
		p.passEntry, p.passWord = 0, 0
		if len(p.passKeys) == 0 {
			return protect.WordOK, true
		}
		p.inPass = true
	}
	for p.passEntry < len(p.passKeys) {
		key := p.passKeys[p.passEntry]
		if p.quar[key] {
			p.passEntry, p.passWord = p.passEntry+1, 0
			continue
		}
		v, ok := p.m.Lookup([]byte(key))
		if !ok {
			p.passEntry, p.passWord = p.passEntry+1, 0
			continue
		}
		chk, ok := p.check[key]
		if !ok {
			p.encode(key, v)
			chk = p.check[key]
		}
		st := p.codec.CheckWord(v, chk, p.passWord)
		p.ctr.Note(st)
		if st == protect.WordUncorrectable {
			p.quar[key] = true
			p.passEntry, p.passWord = p.passEntry+1, 0
		} else {
			p.passWord++
			if p.passWord >= protect.Words(len(v)) {
				p.passEntry, p.passWord = p.passEntry+1, 0
			}
		}
		if p.passEntry >= len(p.passKeys) {
			p.inPass = false
			return st, true
		}
		return st, false
	}
	p.inPass = false
	return protect.WordOK, true
}

// ProtectSet wraps every map of a set at the given level and returns
// the wrappers (nil for LevelNone). Maps already wrapped are returned
// as-is.
func ProtectSet(s *Set, level protect.Level) []*Protected {
	codec := protect.ForLevel(level)
	if codec == nil {
		return nil
	}
	out := make([]*Protected, 0, len(s.byID))
	for i, m := range s.byID {
		p, ok := AsProtected(m)
		if !ok {
			p = Protect(m, codec)
			s.byID[i] = p
			s.byName[p.Spec().Name] = p
		}
		out = append(out, p)
	}
	return out
}
