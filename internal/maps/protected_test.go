package maps

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"ehdl/internal/ebpf"
	"ehdl/internal/protect"
)

func hashSpec(name string, max int) ebpf.MapSpec {
	return ebpf.MapSpec{Name: name, Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: max}
}

func key32(v uint32) []byte {
	k := make([]byte, 4)
	binary.LittleEndian.PutUint32(k, v)
	return k
}

func val64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func newProtectedHash(t *testing.T, level protect.Level) *Protected {
	t.Helper()
	m, err := New(hashSpec("t", 64))
	if err != nil {
		t.Fatal(err)
	}
	return Protect(m, protect.ForLevel(level))
}

// flipStoredBit damages the raw backing store of one entry, as the SEU
// injector does, bypassing the protected write path.
func flipStoredBit(t *testing.T, p *Protected, key []byte, bit int) {
	t.Helper()
	found := false
	p.Iterate(func(k, v []byte) bool {
		if bytes.Equal(k, key) {
			v[bit/8] ^= 1 << (bit % 8)
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatalf("entry %x not found for fault injection", key)
	}
}

func TestProtectedECCCorrectsOnLookup(t *testing.T) {
	p := newProtectedHash(t, protect.LevelECC)
	if err := p.Update(key32(1), val64(0xdeadbeef), UpdateAny); err != nil {
		t.Fatal(err)
	}
	flipStoredBit(t, p, key32(1), 13)
	v, ok := p.Lookup(key32(1))
	if !ok {
		t.Fatal("lookup missed after a single-bit upset")
	}
	if got := binary.LittleEndian.Uint64(v); got != 0xdeadbeef {
		t.Fatalf("value %x after correction, want deadbeef", got)
	}
	ctr := p.Counters()
	if ctr.Corrected != 1 || ctr.Uncorrectable != 0 {
		t.Fatalf("counters %+v", ctr)
	}
}

func TestProtectedECCQuarantinesDoubleFlip(t *testing.T) {
	p := newProtectedHash(t, protect.LevelECC)
	if err := p.Update(key32(1), val64(7), UpdateAny); err != nil {
		t.Fatal(err)
	}
	flipStoredBit(t, p, key32(1), 3)
	flipStoredBit(t, p, key32(1), 44)
	if _, ok := p.Lookup(key32(1)); ok {
		t.Fatal("lookup served a double-bit-corrupted value")
	}
	if p.Counters().Uncorrectable == 0 || p.Quarantined() != 1 {
		t.Fatalf("counters %+v quarantined %d", p.Counters(), p.Quarantined())
	}
	// Still missing until rewritten; then healthy again.
	if _, ok := p.Lookup(key32(1)); ok {
		t.Fatal("quarantined entry resurfaced")
	}
	if err := p.Update(key32(1), val64(9), UpdateAny); err != nil {
		t.Fatal(err)
	}
	v, ok := p.Lookup(key32(1))
	if !ok || binary.LittleEndian.Uint64(v) != 9 {
		t.Fatalf("rewrite did not lift quarantine: %v %v", v, ok)
	}
	if p.Quarantined() != 0 {
		t.Fatal("quarantine count did not drop after rewrite")
	}
}

func TestProtectedParityDetectsOnly(t *testing.T) {
	p := newProtectedHash(t, protect.LevelParity)
	if err := p.Update(key32(2), val64(1), UpdateAny); err != nil {
		t.Fatal(err)
	}
	flipStoredBit(t, p, key32(2), 0)
	if _, ok := p.Lookup(key32(2)); ok {
		t.Fatal("parity level served a corrupted value")
	}
	ctr := p.Counters()
	if ctr.Corrected != 0 || ctr.Uncorrectable == 0 {
		t.Fatalf("parity counters %+v", ctr)
	}
}

func TestProtectedArrayCoveredFromCreation(t *testing.T) {
	// Array entries exist (zero-filled) from creation and are rarely
	// Updated; Protect must encode the whole backing store immediately.
	m, err := New(ebpf.MapSpec{Name: "a", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := Protect(m, protect.SECDED{})
	flipStoredBit(t, p, key32(3), 17)
	v, ok := p.Lookup(key32(3))
	if !ok || binary.LittleEndian.Uint64(v) != 0 {
		t.Fatalf("zero-init array entry not corrected: %v %v", v, ok)
	}
	if p.Counters().Corrected != 1 {
		t.Fatalf("counters %+v", p.Counters())
	}
}

func TestProtectedReencodeAfterPointerWrite(t *testing.T) {
	p := newProtectedHash(t, protect.LevelECC)
	if err := p.Update(key32(1), val64(5), UpdateAny); err != nil {
		t.Fatal(err)
	}
	// The data plane writes through the lookup pointer: mutate raw
	// storage, then re-encode like the hardware write port.
	v, _ := p.Lookup(key32(1))
	binary.LittleEndian.PutUint64(v, 1234)
	p.Reencode(key32(1))
	got, ok := p.Lookup(key32(1))
	if !ok || binary.LittleEndian.Uint64(got) != 1234 {
		t.Fatalf("re-encoded value lost: %v %v", got, ok)
	}
	if c := p.Counters(); c.Corrected != 0 && c.Uncorrectable != 0 {
		t.Fatalf("pointer write misread as an upset: %+v", c)
	}
}

func TestProtectedScrubWordHealsIdleEntries(t *testing.T) {
	p := newProtectedHash(t, protect.LevelECC)
	for i := uint32(0); i < 8; i++ {
		if err := p.Update(key32(i), val64(uint64(i)*3), UpdateAny); err != nil {
			t.Fatal(err)
		}
	}
	flipStoredBit(t, p, key32(5), 22)
	// One full pass: 8 entries x 1 word.
	for i := 0; i < 8; i++ {
		_, wrapped := p.ScrubWord()
		if wrapped != (i == 7) {
			t.Fatalf("word %d wrapped=%v", i, wrapped)
		}
	}
	if c := p.Counters(); c.Corrected != 1 || c.Uncorrectable != 0 {
		t.Fatalf("scrub counters %+v", c)
	}
	// The entry is healed without ever being looked up.
	v, ok := p.Lookup(key32(5))
	if !ok || binary.LittleEndian.Uint64(v) != 15 {
		t.Fatalf("scrub did not heal the entry: %v %v", v, ok)
	}
}

func TestProtectedScrubSkipsEntriesDeletedMidPass(t *testing.T) {
	p := newProtectedHash(t, protect.LevelECC)
	for i := uint32(0); i < 4; i++ {
		if err := p.Update(key32(i), val64(1), UpdateAny); err != nil {
			t.Fatal(err)
		}
	}
	if _, wrapped := p.ScrubWord(); wrapped {
		t.Fatal("pass wrapped after one of four words")
	}
	// Delete the rest mid-pass; the cursor must skip them and wrap.
	for i := uint32(1); i < 4; i++ {
		if err := p.Delete(key32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, wrapped := p.ScrubWord(); !wrapped {
		t.Fatal("pass did not wrap over deleted entries")
	}
}

func TestProtectSetWrapsEveryMap(t *testing.T) {
	prog := &ebpf.Program{Name: "p", Maps: []ebpf.MapSpec{
		hashSpec("h", 8),
		{Name: "a", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 4, MaxEntries: 2},
	}}
	set, err := NewSet(prog)
	if err != nil {
		t.Fatal(err)
	}
	ps := ProtectSet(set, protect.LevelECC)
	if len(ps) != 2 {
		t.Fatalf("wrapped %d maps, want 2", len(ps))
	}
	for id := 0; id < set.Len(); id++ {
		m, _ := set.ByID(id)
		if _, ok := AsProtected(m); !ok {
			t.Fatalf("map %d not wrapped in the set", id)
		}
	}
	if byName, _ := set.ByName("h"); byName != Map(ps[0]) {
		t.Fatal("ByName does not resolve to the wrapper")
	}
	// Idempotent: wrapping again returns the same wrappers.
	again := ProtectSet(set, protect.LevelECC)
	if again[0] != ps[0] || again[1] != ps[1] {
		t.Fatal("re-protecting rewrapped the maps")
	}
	if ProtectSet(set, protect.LevelNone) != nil {
		t.Fatal("LevelNone must be a no-op")
	}
}

func TestSnapshotRestore(t *testing.T) {
	prog := &ebpf.Program{Name: "p", Maps: []ebpf.MapSpec{
		hashSpec("h", 8),
		{Name: "a", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 3},
		{Name: "lru", Kind: ebpf.MapLRUHash, KeySize: 4, ValueSize: 8, MaxEntries: 4},
	}}
	set, err := NewSet(prog)
	if err != nil {
		t.Fatal(err)
	}
	ProtectSet(set, protect.LevelECC)
	h, _ := set.ByName("h")
	a, _ := set.ByName("a")
	lru, _ := set.ByName("lru")
	for i := uint32(0); i < 3; i++ {
		mustUpdate(t, h, key32(i), val64(uint64(i)))
		mustUpdate(t, a, key32(i), val64(uint64(i)+10))
		mustUpdate(t, lru, key32(i), val64(uint64(i)+20))
	}

	snap := set.Snapshot()
	if snap.Entries() != 3+3+3 {
		t.Fatalf("snapshot captured %d entries", snap.Entries())
	}

	// Diverge: mutate, create, delete, and corrupt.
	mustUpdate(t, h, key32(0), val64(99))
	mustUpdate(t, h, key32(7), val64(77))
	if err := h.Delete(key32(2)); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, a, key32(1), val64(1000))
	p, _ := AsProtected(h)
	mustUpdate(t, h, key32(1), val64(1))
	flipStoredBit(t, p, key32(1), 2)
	flipStoredBit(t, p, key32(1), 9)
	if _, ok := h.Lookup(key32(1)); ok {
		t.Fatal("corrupted entry not quarantined")
	}

	if err := set.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 3; i++ {
		checkVal(t, h, key32(i), uint64(i))
		checkVal(t, a, key32(i), uint64(i)+10)
		checkVal(t, lru, key32(i), uint64(i)+20)
	}
	if _, ok := h.Lookup(key32(7)); ok {
		t.Fatal("entry created after the snapshot survived the restore")
	}
	if h.Len() != 3 {
		t.Fatalf("hash has %d entries after restore, want 3", h.Len())
	}
	if p.Quarantined() != 0 {
		t.Fatal("restore did not lift the quarantine")
	}
}

func mustUpdate(t *testing.T, m Map, key, val []byte) {
	t.Helper()
	if err := m.Update(key, val, UpdateAny); err != nil {
		t.Fatal(err)
	}
}

func checkVal(t *testing.T, m Map, key []byte, want uint64) {
	t.Helper()
	v, ok := m.Lookup(key)
	if !ok {
		t.Fatalf("key %x missing after restore", key)
	}
	if got := binary.LittleEndian.Uint64(v); got != want {
		t.Fatalf("key %x = %d after restore, want %d", key, got, want)
	}
}

// TestSynchronizedIterateIsReentrant is the regression test for the
// lock-across-callback hazard: Iterate used to hold the mutex while
// invoking fn, so any map operation from inside the callback
// self-deadlocked. The walk now snapshots first; every re-entrant call
// must return.
func TestSynchronizedIterateIsReentrant(t *testing.T) {
	m, err := New(hashSpec("s", 16))
	if err != nil {
		t.Fatal(err)
	}
	s := Synchronize(m)
	for i := uint32(0); i < 4; i++ {
		mustUpdate(t, s, key32(i), val64(uint64(i)))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		visited := 0
		s.Iterate(func(k, v []byte) bool {
			visited++
			// Every operation class re-enters the same Synchronized map.
			if _, ok := s.Lookup(k); !ok {
				t.Errorf("re-entrant Lookup missed %x", k)
			}
			if err := s.Update(key32(100), val64(1), UpdateAny); err != nil {
				t.Errorf("re-entrant Update: %v", err)
			}
			s.Iterate(func([]byte, []byte) bool { return false })
			_ = s.Len()
			return true
		})
		if visited != 4 {
			t.Errorf("visited %d entries, want the 4 snapshotted ones", visited)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Synchronized.Iterate deadlocked on re-entrant map access")
	}
	if err := s.Delete(key32(100)); err != nil {
		t.Fatalf("entry added during iteration is missing: %v", err)
	}
}

func TestSynchronizedIterateSnapshotIsPrivate(t *testing.T) {
	m, err := New(hashSpec("s", 4))
	if err != nil {
		t.Fatal(err)
	}
	s := Synchronize(m)
	mustUpdate(t, s, key32(1), val64(42))
	s.Iterate(func(k, v []byte) bool {
		v[0] = 0xff // scribbling on the snapshot must not reach the map
		return true
	})
	v, ok := s.Lookup(key32(1))
	if !ok || binary.LittleEndian.Uint64(v) != 42 {
		t.Fatal("Iterate snapshot aliases map storage")
	}
}

func ExampleProtected() {
	m, _ := New(ebpf.MapSpec{Name: "ctrs", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 1})
	p := Protect(m, protect.SECDED{})
	_ = p.Update(key32(0), val64(41), UpdateAny)
	// An SEU flips a stored bit...
	p.Iterate(func(_, v []byte) bool { v[0] ^= 0x04; return false })
	// ...and the read port corrects it transparently.
	v, _ := p.Lookup(key32(0))
	fmt.Println(binary.LittleEndian.Uint64(v), p.Counters().Corrected)
	// Output: 41 1
}
