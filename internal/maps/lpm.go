package maps

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
)

// lpmMap is BPF_MAP_TYPE_LPM_TRIE, the longest-prefix-match map used by
// routing applications. Keys follow the kernel layout: a 4-byte
// little-endian prefix length followed by the address bytes
// (KeySize - 4 of them). Lookup matches the stored entry with the
// longest prefix that covers the queried address; the queried prefix
// length acts as an upper bound.
type lpmMap struct {
	spec ebpf.MapSpec
	root *lpmNode
	n    int
}

type lpmNode struct {
	children [2]*lpmNode
	entry    *hashEntry // nil for interior nodes
}

func newLPM(spec ebpf.MapSpec) *lpmMap {
	return &lpmMap{spec: spec, root: &lpmNode{}}
}

func (t *lpmMap) Spec() ebpf.MapSpec { return t.spec }

// addrBits returns the number of address bits in a key.
func (t *lpmMap) addrBits() int { return (t.spec.KeySize - 4) * 8 }

func (t *lpmMap) splitKey(key []byte) (prefixLen int, addr []byte, err error) {
	if err := checkKey(t.spec, key); err != nil {
		return 0, nil, err
	}
	prefixLen = int(binary.LittleEndian.Uint32(key[:4]))
	if prefixLen > t.addrBits() {
		return 0, nil, fmt.Errorf("maps: %s: prefix length %d exceeds %d bits", t.spec.Name, prefixLen, t.addrBits())
	}
	return prefixLen, key[4:], nil
}

func bitAt(addr []byte, i int) int {
	return int(addr[i/8]>>(7-i%8)) & 1
}

func (t *lpmMap) Lookup(key []byte) ([]byte, bool) {
	prefixLen, addr, err := t.splitKey(key)
	if err != nil {
		return nil, false
	}
	var best *hashEntry
	node := t.root
	for depth := 0; node != nil; depth++ {
		if node.entry != nil {
			best = node.entry
		}
		if depth >= prefixLen {
			break
		}
		node = node.children[bitAt(addr, depth)]
	}
	if best == nil {
		return nil, false
	}
	return best.value, true
}

func (t *lpmMap) Update(key, value []byte, flag UpdateFlag) error {
	prefixLen, addr, err := t.splitKey(key)
	if err != nil {
		return err
	}
	if err := checkValue(t.spec, value); err != nil {
		return err
	}
	node := t.root
	for depth := 0; depth < prefixLen; depth++ {
		b := bitAt(addr, depth)
		if node.children[b] == nil {
			node.children[b] = &lpmNode{}
		}
		node = node.children[b]
	}
	if node.entry != nil {
		if flag == UpdateNoExist {
			return ErrKeyExist
		}
		copy(node.entry.value, value)
		return nil
	}
	if flag == UpdateExist {
		return ErrKeyNotExist
	}
	if t.n >= t.spec.MaxEntries {
		return ErrMapFull
	}
	node.entry = &hashEntry{key: string(key), value: append([]byte(nil), value...)}
	t.n++
	return nil
}

func (t *lpmMap) Delete(key []byte) error {
	prefixLen, addr, err := t.splitKey(key)
	if err != nil {
		return err
	}
	node := t.root
	for depth := 0; depth < prefixLen && node != nil; depth++ {
		node = node.children[bitAt(addr, depth)]
	}
	if node == nil || node.entry == nil {
		return ErrKeyNotExist
	}
	node.entry = nil
	t.n--
	return nil
}

func (t *lpmMap) Iterate(fn func(key, value []byte) bool) {
	var walk func(n *lpmNode) bool
	walk = func(n *lpmNode) bool {
		if n == nil {
			return true
		}
		if n.entry != nil && !fn([]byte(n.entry.key), n.entry.value) {
			return false
		}
		return walk(n.children[0]) && walk(n.children[1])
	}
	walk(t.root)
}

func (t *lpmMap) Len() int { return t.n }
