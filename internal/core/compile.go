package core

import (
	"fmt"

	"ehdl/internal/cfg"
	"ehdl/internal/ddg"
	"ehdl/internal/ebpf"
)

// Compile turns an eBPF/XDP program into a hardware pipeline.
func Compile(prog *ebpf.Program, opts Options) (*Pipeline, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}

	unrolled, err := cfg.Unroll(prog)
	if err != nil {
		return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
	}
	a, err := analyze(unrolled)
	if err != nil {
		return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
	}

	elided := 0
	if !opts.DisableBoundsElision {
		next, n, err := elideBoundsChecks(a)
		if err != nil {
			return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
		}
		if n > 0 {
			if a, err = analyze(next); err != nil {
				return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
			}
		}
		elided = n
	}

	final, removed, err := deadCodeElim(a)
	if err != nil {
		return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
	}
	if a, err = analyze(final); err != nil {
		return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
	}

	wiring := wiringSet(a)
	fused := map[int]int{}
	if !opts.DisableFusion {
		fused = fusePairs(a, wiring)
	}

	stages, blocks, err := schedule(a, opts, fused, wiring)
	if err != nil {
		return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
	}

	p := &Pipeline{
		Prog:                prog,
		Transformed:         a.prog,
		Info:                a.info,
		Options:             opts,
		Stages:              stages,
		Blocks:              blocks,
		ElidedBoundsChecks:  elided,
		RemovedInstructions: removed + len(wiring),
		FusedPairs:          len(fused),
	}

	if err := p.buildMapBlocks(); err != nil {
		return nil, fmt.Errorf("core: %q: %w", prog.Name, err)
	}
	p.applyFraming()
	p.applyPruning()
	return p, nil
}

// buildMapBlocks creates one eHDLmap block per map with its hazard
// geometry (Section 4.1).
func (p *Pipeline) buildMapBlocks() error {
	type acc struct {
		reads, writes, atomics []int
	}
	byMap := map[int]*acc{}
	get := func(id int) *acc {
		if byMap[id] == nil {
			byMap[id] = &acc{}
		}
		return byMap[id]
	}

	for s := range p.Stages {
		for i := range p.Stages[s].Ops {
			op := &p.Stages[s].Ops[i]
			if op.MapID < 0 || op.Kind == OpLDDW {
				continue
			}
			a := get(op.MapID)
			switch op.Kind {
			case OpMapCall:
				if op.Helper.WritesMap() {
					a.writes = append(a.writes, s)
				} else {
					a.reads = append(a.reads, s)
				}
			case OpLoad:
				a.reads = append(a.reads, s)
			case OpStore:
				a.writes = append(a.writes, s)
			case OpAtomic:
				if p.Options.DisableAtomics {
					// Lowered to a read-modify-write pair protected by
					// flushing (the Section 5.3 ablation).
					a.reads = append(a.reads, s)
					a.writes = append(a.writes, s)
				} else {
					a.atomics = append(a.atomics, s)
				}
			}
		}
	}

	// Commit stages across all maps, for elastic-buffer placement.
	var commits []int
	for _, a := range byMap {
		commits = append(commits, a.writes...)
		commits = append(commits, a.atomics...)
	}

	for id := 0; id < len(p.Transformed.Maps); id++ {
		a := byMap[id]
		if a == nil {
			continue
		}
		mb := MapBlock{MapID: id, Spec: p.Transformed.Maps[id]}
		mb.ReadStages = a.reads
		mb.WriteStages = a.writes
		mb.AtomicStages = a.atomics
		mb.UsesAtomics = len(a.atomics) > 0

		// WAR: a write stage earlier in the pipeline than a read stage
		// would clobber the value an older packet is yet to read; the
		// write is delayed by the distance to the last such read.
		for _, w := range a.writes {
			for _, r := range a.reads {
				if r > w && r-w > mb.WARDepth {
					mb.WARDepth = r - w
				}
			}
		}

		// RAW: a read stage earlier than a write stage observes stale
		// data when a younger packet follows closely; protected by the
		// Flush Evaluation Block.
		minRead, maxWrite := -1, -1
		for _, r := range a.reads {
			if minRead < 0 || r < minRead {
				minRead = r
			}
		}
		for _, w := range a.writes {
			if w > maxWrite {
				maxWrite = w
			}
		}
		if minRead >= 0 && maxWrite > minRead {
			mb.NeedsFlush = true
			mb.L = maxWrite - minRead
			// Elastic buffer: never re-execute a stage that already
			// committed state (Appendix A.2).
			from := 0
			for _, c := range commits {
				if c < maxWrite && c >= from && c != maxWrite {
					if c < minRead {
						from = c + 1
					} else if c > minRead && !contains(a.writes, c) && !contains(a.atomics, c) {
						return fmt.Errorf("map %q: commit stage %d lies inside the flush window [%d,%d]",
							mb.Spec.Name, c, minRead, maxWrite)
					}
				}
			}
			mb.FlushFromStage = from
			mb.K = maxWrite - from
		}
		p.Maps = append(p.Maps, mb)
	}
	return nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// applyFraming computes per-stage frame requirements and inserts the
// leading NOP stages that guarantee every frame a stage touches is
// already inside the pipeline (Section 4.2).
func (p *Pipeline) applyFraming() {
	frame := p.Options.frameBytes()
	maxPkt := p.Options.maxPacketBytes()

	needNops := 0
	for s := range p.Stages {
		st := &p.Stages[s]
		need := 0
		for i := range st.Ops {
			op := &st.Ops[i]
			n := packetBytesNeeded(op, maxPkt)
			if n > need {
				need = n
			}
		}
		st.MaxPacketOff = need
		if need == 0 {
			st.FrameBypass = 0
			continue
		}
		frameIdx := (need - 1) / frame
		st.FrameBypass = frameIdx
		if frameIdx > s && frameIdx-s > needNops {
			needNops = frameIdx - s
		}
	}
	if needNops == 0 {
		return
	}
	// Prepend NOP stages and shift all stage indices.
	nops := make([]Stage, needNops)
	for i := range nops {
		nops[i] = Stage{Kind: StageNOP}
	}
	p.Stages = append(nops, p.Stages...)
	p.FramingNOPs = needNops
	for i := range p.Blocks {
		p.Blocks[i].FirstStage += needNops
		p.Blocks[i].LastStage += needNops
	}
	for i := range p.Maps {
		mb := &p.Maps[i]
		shift := func(s []int) {
			for j := range s {
				s[j] += needNops
			}
		}
		shift(mb.ReadStages)
		shift(mb.WriteStages)
		shift(mb.AtomicStages)
		if mb.NeedsFlush {
			if mb.FlushFromStage > 0 {
				mb.FlushFromStage += needNops
			}
			mb.K = maxInt(mb.WriteStages) - mb.FlushFromStage
		}
	}
}

func maxInt(s []int) int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// packetBytesNeeded returns the highest packet byte (exclusive) op needs
// at a static offset, or the full packet bound for dynamic offsets and
// geometry-changing helpers.
func packetBytesNeeded(op *Op, maxPkt int) int {
	if op.Kind == OpHelper && op.Helper.WritesPacket() {
		return maxPkt
	}
	acc := op.Access
	if acc == nil || acc.Area != ddg.AreaPacket {
		return 0
	}
	if !acc.OffKnown || acc.Off < 0 {
		return maxPkt
	}
	return int(acc.Off) + acc.Size
}

// applyPruning computes the registers and stack bytes each stage must
// carry (Section 4.3), using reaching definitions so values are dropped
// both after their last use and before their first definition.
func (p *Pipeline) applyPruning() {
	n := len(p.Stages)
	if p.Options.DisablePruning {
		for s := range p.Stages {
			p.Stages[s].CarryRegs = (1 << ebpf.NumRegisters) - 1
			p.Stages[s].CarryStackLo = 0
			p.Stages[s].CarryStackHi = ebpf.StackSize
		}
		return
	}

	stageOf := make(map[int]int) // instruction index -> stage
	for s := range p.Stages {
		for i := range p.Stages[s].Ops {
			op := &p.Stages[s].Ops[i]
			stageOf[op.Index] = s
			for _, f := range op.FusedIdx {
				stageOf[f] = s
			}
		}
	}

	rd := p.reachingDefs()

	// carried[r] per stage via the reaching-definition rule.
	for s := 0; s < n; s++ {
		var mask uint16
		for r := ebpf.R0; r <= ebpf.R10; r++ {
			if p.carriedReg(rd, stageOf, r, s) {
				mask |= 1 << r
			}
		}
		p.Stages[s].CarryRegs = mask
	}

	// Stack: bytes written at an earlier stage and read at this stage or
	// later.
	reads := make([]stackBits, n)
	writes := make([]stackBits, n)
	for s := range p.Stages {
		for i := range p.Stages[s].Ops {
			op := &p.Stages[s].Ops[i]
			r, w := p.stackEffect(op)
			reads[s] = reads[s].or(r)
			writes[s] = writes[s].or(w)
		}
	}
	suffixReads := make([]stackBits, n+1)
	for s := n - 1; s >= 0; s-- {
		suffixReads[s] = suffixReads[s+1].or(reads[s])
	}
	var prefixWrites stackBits
	for s := 0; s < n; s++ {
		carry := prefixWrites.and(suffixReads[s])
		lo, hi := carry.bounds()
		p.Stages[s].CarryStackLo = lo
		p.Stages[s].CarryStackHi = hi
		prefixWrites = prefixWrites.or(writes[s])
	}
}

// defSite is one register definition in the transformed program.
type defSite struct {
	index int // instruction index; -1 for the entry pseudo-definition
	reg   ebpf.Register
}

// reachingInfo holds reaching-definition sets per instruction.
type reachingInfo struct {
	sites []defSite
	in    [][]uint64 // per instruction, bitset over sites
}

func (p *Pipeline) reachingDefs() *reachingInfo {
	prog := p.Transformed
	g := p.Info.Graph
	n := len(prog.Instructions)

	var sites []defSite
	siteIdx := map[[2]int]int{}
	addSite := func(index int, reg ebpf.Register) int {
		key := [2]int{index, int(reg)}
		if i, ok := siteIdx[key]; ok {
			return i
		}
		sites = append(sites, defSite{index: index, reg: reg})
		siteIdx[key] = len(sites) - 1
		return len(sites) - 1
	}
	// Entry definitions for the architectural inputs.
	addSite(-1, ebpf.R1)
	addSite(-1, ebpf.R10)
	for i := 0; i < n; i++ {
		for _, r := range prog.Instructions[i].Defs() {
			addSite(i, r)
		}
	}
	words := (len(sites) + 63) / 64

	set := func(b []uint64, i int) { b[i/64] |= 1 << (i % 64) }
	clear := func(b []uint64, i int) { b[i/64] &^= 1 << (i % 64) }
	has := func(b []uint64, i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

	// Per-register kill masks.
	killOf := make([][]uint64, ebpf.NumRegisters)
	for r := range killOf {
		killOf[r] = make([]uint64, words)
	}
	for i, s := range sites {
		set(killOf[s.reg], i)
	}

	in := make([][]uint64, n)
	for i := range in {
		in[i] = make([]uint64, words)
	}
	blockOut := make([][]uint64, len(g.Blocks))
	for b := range blockOut {
		blockOut[b] = make([]uint64, words)
	}
	entry := make([]uint64, words)
	set(entry, siteIdx[[2]int{-1, int(ebpf.R1)}])
	set(entry, siteIdx[[2]int{-1, int(ebpf.R10)}])

	changed := true
	for changed {
		changed = false
		for b := range g.Blocks {
			blk := g.Blocks[b]
			cur := make([]uint64, words)
			if b == 0 {
				copy(cur, entry)
			}
			for _, pred := range blk.Preds {
				for w := range cur {
					cur[w] |= blockOut[pred][w]
				}
			}
			for i := blk.Start; i < blk.End; i++ {
				if !bitsEqual(in[i], cur) {
					copy(in[i], cur)
					changed = true
				}
				for _, r := range prog.Instructions[i].Defs() {
					for w := range cur {
						cur[w] &^= killOf[r][w]
					}
					set(cur, siteIdx[[2]int{i, int(r)}])
					_ = clear
					_ = has
				}
			}
			if !bitsEqual(blockOut[b], cur) {
				copy(blockOut[b], cur)
				changed = true
			}
		}
	}
	return &reachingInfo{sites: sites, in: in}
}

func bitsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// carriedReg reports whether register r must be latched into stage s:
// some instruction at stage >= s uses r, and one of its reaching
// definitions lies at a stage < s (or is an architectural input).
func (p *Pipeline) carriedReg(rd *reachingInfo, stageOf map[int]int, r ebpf.Register, s int) bool {
	prog := p.Transformed
	for i := range prog.Instructions {
		us, ok := stageOf[i]
		if !ok || us < s {
			continue
		}
		usesR := false
		for _, u := range effectiveUses(p.Info, i) {
			if u == r {
				usesR = true
			}
		}
		if !usesR {
			continue
		}
		for siteID, site := range rd.sites {
			if site.reg != r {
				continue
			}
			if rd.in[i][siteID/64]&(1<<(siteID%64)) == 0 {
				continue
			}
			defStage := -1
			if site.index >= 0 {
				ds, ok := stageOf[site.index]
				if !ok {
					continue
				}
				defStage = ds
			}
			if defStage < s {
				return true
			}
		}
	}
	return false
}

// stackBits is a 512-bit set over stack bytes.
type stackBits [8]uint64

func (a stackBits) or(b stackBits) stackBits {
	for i := range a {
		a[i] |= b[i]
	}
	return a
}

func (a stackBits) and(b stackBits) stackBits {
	for i := range a {
		a[i] &= b[i]
	}
	return a
}

func (a stackBits) bounds() (lo, hi int) {
	lo, hi = 0, 0
	first := true
	for b := 0; b < ebpf.StackSize; b++ {
		if a[b/64]&(1<<(b%64)) == 0 {
			continue
		}
		if first {
			lo = b
			first = false
		}
		hi = b + 1
	}
	return lo, hi
}

func setStackRange(s *stackBits, off int64, size int) {
	lo := int(off) + ebpf.StackSize
	hi := lo + size
	if lo < 0 {
		lo = 0
	}
	if hi > ebpf.StackSize {
		hi = ebpf.StackSize
	}
	for b := lo; b < hi; b++ {
		s[b/64] |= 1 << (b % 64)
	}
}

func fullStackBits() stackBits {
	var s stackBits
	for i := range s {
		s[i] = ^uint64(0)
	}
	return s
}

// stackEffect returns the stack bytes an op reads and writes.
func (p *Pipeline) stackEffect(op *Op) (reads, writes stackBits) {
	consider := func(idx int, ins ebpf.Instruction) {
		acc := p.Info.Accesses[idx]
		if ins.IsCall() {
			helper := ebpf.HelperID(ins.Imm)
			if !helper.AccessesMap() || p.Info.CallMap[idx] < 0 {
				return
			}
			spec := p.Transformed.Maps[p.Info.CallMap[idx]]
			if p.Info.CallKey[idx].Known {
				setStackRange(&reads, p.Info.CallKey[idx].Off, spec.KeySize)
			} else {
				reads = fullStackBits()
			}
			if helper == ebpf.HelperMapUpdateElem {
				if p.Info.CallVal[idx].Known {
					setStackRange(&reads, p.Info.CallVal[idx].Off, spec.ValueSize)
				} else {
					reads = fullStackBits()
				}
			}
			return
		}
		if acc == nil || acc.Area != ddg.AreaStack {
			return
		}
		if !acc.OffKnown {
			if acc.Read {
				reads = fullStackBits()
			}
			return
		}
		if acc.Read {
			setStackRange(&reads, acc.Off, acc.Size)
		}
		if acc.Write {
			setStackRange(&writes, acc.Off, acc.Size)
		}
	}
	consider(op.Index, op.Ins)
	for k, f := range op.Fused {
		consider(op.FusedIdx[k], f)
	}
	return reads, writes
}
