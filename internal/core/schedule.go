package core

import (
	"fmt"

	"ehdl/internal/ddg"
	"ehdl/internal/ebpf"
)

// fusePairs finds adjacent instruction pairs that combine into a single
// three-operand hardware operation (Section 3.2): a constant or register
// move immediately followed by an ALU operation on the same destination,
// e.g. "r2 = r10; r2 += -4" becomes the single primitive
// "r2 = r10 + -4" of Figure 3.
//
// The result maps the second instruction's index to the first's; fused
// instructions evaluate combinationally inside one stage.
func fusePairs(a *analysis, wiring map[int]bool) map[int]int {
	fused := map[int]int{}
	for b := range a.g.Blocks {
		blk := a.g.Blocks[b]
		for i := blk.Start; i+1 < blk.End; i++ {
			if _, taken := fused[i]; taken {
				continue
			}
			if wiring[i] || wiring[i+1] {
				continue
			}
			head := a.prog.Instructions[i]
			next := a.prog.Instructions[i+1]
			if !isFusableHead(head) || !isFusableTail(head, next) {
				continue
			}
			fused[i+1] = i
		}
	}
	return fused
}

// isFusableHead accepts 64-bit moves (register or immediate).
func isFusableHead(ins ebpf.Instruction) bool {
	return ins.Class() == ebpf.ClassALU64 && ins.ALUOp() == ebpf.ALUMov
}

// isFusableTail accepts a plain ALU operation whose destination is the
// head's destination, forming dst = src <op> operand.
func isFusableTail(head, tail ebpf.Instruction) bool {
	if tail.Class() != ebpf.ClassALU64 || tail.Dst != head.Dst {
		return false
	}
	switch tail.ALUOp() {
	case ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUAnd, ebpf.ALUOr, ebpf.ALUXor, ebpf.ALULsh, ebpf.ALURsh:
	default:
		return false
	}
	// A register source must not be the destination being built, unless
	// the head was a register move (pure wiring either way).
	if tail.Source() == ebpf.SourceX && tail.Src == head.Dst {
		return false
	}
	return true
}

// scheduleUnit is one schedulable item: a head instruction plus any
// instructions fused into it.
type scheduleUnit struct {
	head  int
	fused []int
	ends  bool // fires the block's successor enables
}

func (u *scheduleUnit) members() []int {
	return append([]int{u.head}, u.fused...)
}

// schedule lays the program out as pipeline stages: each reachable block
// is list-scheduled into rows of independent units (Section 3.3), the
// rows of all blocks are concatenated in topological order, and helper
// calls expand into their block's pipeline depth.
func schedule(a *analysis, opts Options, fused map[int]int, wiring map[int]bool) ([]Stage, []BlockInfo, error) {
	order, err := a.g.TopologicalBlocks()
	if err != nil {
		return nil, nil, err
	}

	// Group instructions into units per block, skipping pure wiring.
	unitsOf := make(map[int][]scheduleUnit, len(order))
	for _, b := range order {
		blk := a.g.Blocks[b]
		var units []scheduleUnit
		for i := blk.Start; i < blk.End; i++ {
			if wiring[i] {
				continue
			}
			if head, isFused := fused[i]; isFused {
				// Attach to its head unit.
				for k := range units {
					if units[k].head == head {
						units[k].fused = append(units[k].fused, i)
					}
				}
				continue
			}
			units = append(units, scheduleUnit{head: i})
		}
		if len(units) == 0 {
			// A block of pure address plumbing still owns a pipeline
			// position so its enable propagates; keep its last
			// instruction as a zero-logic op.
			units = append(units, scheduleUnit{head: blk.End - 1})
		}
		unitsOf[b] = units
	}

	conflicts := func(u, v *scheduleUnit) bool {
		for _, i := range u.members() {
			for _, j := range v.members() {
				lo, hi := i, j
				if lo > hi {
					lo, hi = hi, lo
				}
				if a.info.Conflicts(lo, hi) {
					return true
				}
			}
		}
		return false
	}

	var stages []Stage
	var blocks []BlockInfo

	for _, b := range order {
		units := unitsOf[b]
		// Exactly one unit fires the block's successor enables: the one
		// holding the terminator, or the last unit when the terminator
		// was pure wiring.
		endsIdx := len(units) - 1
		for k := range units {
			if units[k].head == a.g.Blocks[b].End-1 {
				endsIdx = k
			}
			for _, f := range units[k].fused {
				if f == a.g.Blocks[b].End-1 {
					endsIdx = k
				}
			}
		}
		units[endsIdx].ends = true
		// Greedy list scheduling into rows.
		rowOf := make([]int, len(units))
		nRows := 0
		for i := range units {
			row := 0
			switch {
			case opts.DisableILP:
				row = i
			case a.prog.Instructions[units[i].head].IsExit():
				// The verdict latch closes the packet: it must come after
				// every other operation of its block, sharing the last
				// row only when nothing there conflicts with it.
				if nRows > 0 {
					row = nRows - 1
					for j := 0; j < i; j++ {
						if rowOf[j] == row && conflicts(&units[j], &units[i]) {
							row = nRows
							break
						}
					}
				}
			default:
				for j := 0; j < i; j++ {
					if rowOf[j] >= row && conflicts(&units[j], &units[i]) {
						row = rowOf[j] + 1
					}
				}
			}
			rowOf[i] = row
			if row+1 > nRows {
				nRows = row + 1
			}
		}

		info := BlockInfo{ID: b, FirstStage: len(stages)}
		rows := make([][]*scheduleUnit, nRows)
		for i := range units {
			rows[rowOf[i]] = append(rows[rowOf[i]], &units[i])
		}
		for _, row := range rows {
			stage := Stage{Kind: StageNormal, MaxPacketOff: 0}
			helperDepth := 0
			for _, u := range row {
				op, err := a.buildOp(u, b)
				if err != nil {
					return nil, nil, err
				}
				if op.Kind == OpMapCall || op.Kind == OpHelper {
					if d := op.Helper.PipelineDepth(); d > helperDepth {
						helperDepth = d
					}
				}
				stage.Ops = append(stage.Ops, op)
			}
			stages = append(stages, stage)
			// A pipelined helper block occupies additional stages between
			// its inputs and its R0 output (Section 3.4.2).
			for d := 1; d < helperDepth; d++ {
				stages = append(stages, Stage{Kind: StageHelperWait})
			}
		}
		info.LastStage = len(stages) - 1
		blocks = append(blocks, info)
	}
	return stages, blocks, nil
}

// buildOp lowers one schedule unit to a pipeline op.
func (a *analysis) buildOp(u *scheduleUnit, blockID int) (Op, error) {
	prog := a.prog
	ins := prog.Instructions[u.head]
	op := Op{
		Ins:        ins,
		Index:      u.head,
		BlockID:    blockID,
		MapID:      -1,
		TakenBlock: -1,
		FallBlock:  -1,
	}
	for _, f := range u.fused {
		op.Fused = append(op.Fused, prog.Instructions[f])
		op.FusedIdx = append(op.FusedIdx, f)
	}
	op.Access = a.info.Accesses[u.head]

	switch cls := ins.Class(); {
	case cls.IsALU():
		op.Kind = OpALU
	case cls == ebpf.ClassLD:
		op.Kind = OpLDDW
		if ins.IsLoadOfMapFD() {
			op.MapID = a.info.MapIDOfLDDW[u.head]
		}
	case cls == ebpf.ClassLDX:
		op.Kind = OpLoad
	case cls == ebpf.ClassST, cls == ebpf.ClassSTX:
		op.Kind = OpStore
		if ins.IsAtomic() {
			op.Kind = OpAtomic
		}
	case ins.IsExit():
		op.Kind = OpExit
	case ins.IsCall():
		helper := ebpf.HelperID(ins.Imm)
		op.Helper = helper
		if helper.AccessesMap() {
			op.Kind = OpMapCall
			op.MapID = a.info.CallMap[u.head]
			op.KeyStackOff, op.KeyOffKnown = a.info.CallKey[u.head].Off, a.info.CallKey[u.head].Known
			op.ValStackOff, op.ValOffKnown = a.info.CallVal[u.head].Off, a.info.CallVal[u.head].Known
		} else {
			op.Kind = OpHelper
		}
	case ins.IsBranch():
		op.Kind = OpBranch
	default:
		return Op{}, fmt.Errorf("core: instruction %d (%s): no hardware template", u.head, ins)
	}

	if op.Access != nil && op.Access.Area == ddg.AreaMap && op.Kind != OpMapCall {
		op.MapID = op.Access.MapID
	}
	if op.Access != nil && op.Access.OffKnown {
		op.BaseElided = true
	}

	// Block-end bookkeeping: the designated unit fires the successor
	// enables derived from the block's real terminator.
	blk := a.g.Blocks[blockID]
	if u.ends {
		op.EndsBlock = true
		last := prog.Instructions[blk.End-1]
		switch {
		case last.IsExit():
			// no successors
		case last.IsBranch():
			t, _ := prog.BranchTarget(blk.End - 1)
			op.TakenBlock = a.g.BlockOf(t)
			if last.IsConditional() && blk.End < len(prog.Instructions) {
				op.FallBlock = a.g.BlockOf(blk.End)
			}
		default:
			if blk.End < len(prog.Instructions) {
				op.FallBlock = a.g.BlockOf(blk.End)
			}
		}
	}
	return op, nil
}
