package core

import (
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
)

func analyzeSrc(t *testing.T, src string) *analysis {
	t.Helper()
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRewriteDropsAndRetargets(t *testing.T) {
	prog, err := asm.Assemble("r", `
r0 = 0
r1 = 1
if r0 == 0 goto target
r2 = 2
target:
r0 = 3
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// Drop instruction 1 (r1 = 1): the branch at (old) index 2 must
	// still reach "target".
	out, err := rewrite(prog, map[int]bool{1: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Instructions) != len(prog.Instructions)-1 {
		t.Fatalf("rewrite kept %d instructions", len(out.Instructions))
	}
	target, ok := out.BranchTarget(1)
	if !ok || out.Instructions[target].String() != "r0 = 3" {
		t.Fatalf("branch retargeted to %d (%s)", target, out.Instructions[target])
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteDroppedBranchTarget(t *testing.T) {
	prog, err := asm.Assemble("r", `
r0 = 0
if r0 == 0 goto target
r1 = 1
target:
r2 = 2
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping the target instruction moves the branch to the next
	// surviving one.
	out, err := rewrite(prog, map[int]bool{3: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	target, ok := out.BranchTarget(1)
	if !ok || !out.Instructions[target].IsExit() {
		t.Fatalf("branch lands on %v", out.Instructions[target])
	}
}

func TestRewriteReplaceWithJa(t *testing.T) {
	prog, err := asm.Assemble("r", `
r0 = 0
if r0 == 7 goto target
r1 = 1
target:
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rewrite(prog, nil, map[int]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	ins := out.Instructions[1]
	if !ins.IsBranch() || ins.IsConditional() {
		t.Fatalf("instruction 1 = %v, want an unconditional jump", ins)
	}
}

// The four orientations of a packet bounds check must all be elided.
func TestElisionOrientations(t *testing.T) {
	cases := []struct {
		name string
		cond string // comparison line; r3 = pkt+14, r2 = data_end
		oob  string // where the OOB verdict lives
	}{
		{"pkt > end, taken drop", "if r3 > r2 goto drop", "taken"},
		{"pkt >= end, taken drop", "if r3 >= r2 goto drop", "taken"},
		{"end < pkt, taken drop", "if r2 < r3 goto drop", "taken"},
		{"end <= pkt, taken drop", "if r2 <= r3 goto drop", "taken"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := `
r2 = *(u32 *)(r1 + 4)
r1 = *(u32 *)(r1 + 0)
r3 = r1
r3 += 14
` + c.cond + `
r0 = *(u8 *)(r1 + 0)
exit
drop:
r0 = 1
exit
`
			a := analyzeSrc(t, src)
			_, n, err := elideBoundsChecks(a)
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Errorf("elided %d checks, want 1", n)
			}
		})
	}
}

func TestElisionKeepsNonTrivialDropPaths(t *testing.T) {
	// The failing side does real work (a counter bump): the check must
	// stay.
	a := analyzeSrc(t, `
map m array key=4 value=8 entries=1

r2 = *(u32 *)(r1 + 4)
r1 = *(u32 *)(r1 + 0)
r3 = r1
r3 += 14
if r3 > r2 goto drop
r0 = *(u8 *)(r1 + 0)
exit
drop:
*(u32 *)(r10 - 4) = 0
r1 = map[m] ll
r2 = r10
r2 += -4
call 1
r0 = 1
exit
`)
	_, n, err := elideBoundsChecks(a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("elided %d checks from a side-effecting drop path", n)
	}
}

func TestElisionIgnoresOrdinaryComparisons(t *testing.T) {
	a := analyzeSrc(t, `
r2 = *(u32 *)(r1 + 0)
r3 = *(u32 *)(r2 + 0)
r4 = *(u32 *)(r2 + 4)
if r3 > r4 goto other
r0 = 2
exit
other:
r0 = 1
exit
`)
	_, n, err := elideBoundsChecks(a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("elided %d scalar comparisons", n)
	}
}

func TestWiringDissolvesAddressChains(t *testing.T) {
	a := analyzeSrc(t, `
map m hash key=4 value=8 entries=16

r2 = *(u32 *)(r1 + 0)
r3 = *(u32 *)(r2 + 8)
*(u32 *)(r10 - 4) = r3
r1 = map[m] ll
r2 = r10
r2 += -4
call 1
r0 = 2
exit
`)
	wiring := wiringSet(a)
	wantWired := map[string]bool{
		"r2 = *(u32 *)(r1 + 0)": true, // packet base: all uses elided
		"r2 = r10":              true, // key pointer chain
		"r2 += -4":              true,
	}
	for i, ins := range a.prog.Instructions {
		if wantWired[ins.String()] && !wiring[i] {
			t.Errorf("instruction %d (%s) not classified as wiring", i, ins)
		}
	}
	// The value-producing load must stay.
	for i, ins := range a.prog.Instructions {
		if ins.String() == "r3 = *(u32 *)(r2 + 8)" && wiring[i] {
			t.Errorf("data load wrongly classified as wiring")
		}
	}
}

func TestWiringKeepsDynamicBases(t *testing.T) {
	// A variable packet offset keeps its base register and the chain
	// feeding it.
	a := analyzeSrc(t, `
r2 = *(u32 *)(r1 + 0)
r3 = *(u8 *)(r2 + 0)
r2 += r3
r0 = *(u8 *)(r2 + 1)
exit
`)
	wiring := wiringSet(a)
	for i, ins := range a.prog.Instructions {
		if ins.String() == "r2 = *(u32 *)(r1 + 0)" && wiring[i] {
			t.Error("dynamic access base wrongly dissolved")
		}
	}
}

func TestDCERemovesUnreachableBlocks(t *testing.T) {
	prog, err := asm.Assemble("dead", `
r0 = 2
goto out
r5 = 99
r5 += 1
out:
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	out, removed, err := deadCodeElim(a)
	if err != nil {
		t.Fatal(err)
	}
	if removed < 2 {
		t.Errorf("removed %d instructions, want the unreachable block", removed)
	}
	for _, ins := range out.Instructions {
		if ins.Class().IsALU() && ins.Imm == 99 {
			t.Error("unreachable instruction survived DCE")
		}
	}
}

func TestCompileRejectsUntrackedPointers(t *testing.T) {
	prog, err := asm.Assemble("bad", `
r2 = 4096
r0 = *(u32 *)(r2 + 0)
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog, Options{}); err == nil {
		t.Fatal("compiled a dereference of an arbitrary scalar")
	}
}

func TestOptionsValidation(t *testing.T) {
	prog, err := asm.Assemble("p", "r0 = 2\nexit")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog, Options{FrameBytes: 8}); err == nil {
		t.Error("accepted an 8-byte frame")
	}
	if _, err := Compile(prog, Options{FrameBytes: 32}); err != nil {
		t.Errorf("rejected a 32-byte frame: %v", err)
	}
}

func TestHelperWaitStagesFollowDepth(t *testing.T) {
	pl := compileToy(t, Options{})
	waits := 0
	for i := range pl.Stages {
		if pl.Stages[i].Kind == StageHelperWait {
			waits++
		}
	}
	// One lookup with PipelineDepth 2 -> one interior wait stage.
	if waits != ebpf.HelperMapLookupElem.PipelineDepth()-1 {
		t.Errorf("helper wait stages = %d", waits)
	}
}
