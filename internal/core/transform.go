package core

import (
	"fmt"

	"ehdl/internal/cfg"
	"ehdl/internal/ddg"
	"ehdl/internal/ebpf"
)

// analysis bundles the per-round program view used by the transform
// passes.
type analysis struct {
	prog       *ebpf.Program
	g          *cfg.Graph
	info       *ddg.Info
	kindsCache [][ebpf.NumRegisters]provKindT
}

func analyze(prog *ebpf.Program) (*analysis, error) {
	g, err := cfg.Build(prog)
	if err != nil {
		return nil, err
	}
	info, err := ddg.Analyze(g)
	if err != nil {
		return nil, err
	}
	return &analysis{prog: prog, g: g, info: info}, nil
}

// rewrite removes the instructions in drop (a set of indices) and
// redirects branches whose target was removed to the next surviving
// instruction. replaceWithJa maps instruction indices to "rewrite this
// conditional branch as an unconditional jump to its taken target".
func rewrite(prog *ebpf.Program, drop map[int]bool, replaceWithJa map[int]bool) (*ebpf.Program, error) {
	n := len(prog.Instructions)
	// Resolve all branch targets in index space first.
	targets := make([]int, n)
	for i, ins := range prog.Instructions {
		targets[i] = -1
		if ins.IsBranch() {
			t, ok := prog.BranchTarget(i)
			if !ok {
				return nil, fmt.Errorf("core: unresolvable branch at %d", i)
			}
			targets[i] = t
		}
	}
	// newIndex[i] = position of instruction i in the output, or the
	// position of the next surviving instruction when i is dropped.
	newIndex := make([]int, n+1)
	kept := 0
	for i := 0; i < n; i++ {
		newIndex[i] = kept
		if !drop[i] {
			kept++
		}
	}
	newIndex[n] = kept

	out := &ebpf.Program{Name: prog.Name, Maps: prog.Maps}
	outTargets := make([]int, 0, kept)
	for i, ins := range prog.Instructions {
		if drop[i] {
			continue
		}
		t := -1
		if targets[i] >= 0 {
			t = newIndex[targets[i]]
		}
		if replaceWithJa[i] {
			ins = ebpf.Ja(0)
		}
		out.Instructions = append(out.Instructions, ins)
		outTargets = append(outTargets, t)
	}
	// Re-emit slot offsets.
	offs := out.SlotOffsets()
	for i := range out.Instructions {
		if outTargets[i] < 0 {
			continue
		}
		delta := offs[outTargets[i]] - (offs[i] + out.Instructions[i].Slots())
		if delta < -(1<<15) || delta >= 1<<15 {
			return nil, fmt.Errorf("core: rewritten branch at %d out of range", i)
		}
		out.Instructions[i].Off = int16(delta)
	}
	return out, nil
}

// isTrivialVerdictBlock reports whether block b only sets a constant
// verdict and exits — the shape of the drop path of a packet bounds
// check.
func isTrivialVerdictBlock(a *analysis, b int) (ebpf.XDPAction, bool) {
	blk := a.g.Blocks[b]
	verdict := ebpf.XDPAction(0xffffffff) // sentinel: R0 set elsewhere
	for i := blk.Start; i < blk.End; i++ {
		ins := a.prog.Instructions[i]
		switch {
		case ins.IsExit():
			return verdict, true
		case ins.Class().IsALU() && ins.ALUOp() == ebpf.ALUMov &&
			ins.Source() == ebpf.SourceK && ins.Dst == ebpf.R0:
			verdict = ebpf.XDPAction(uint32(ins.Imm))
		default:
			return 0, false
		}
	}
	return 0, false
}

// packetVsEnd reports whether the conditional branch at i compares a
// packet-derived pointer against data_end, and if so whether the taken
// path is the out-of-bounds side.
func packetVsEnd(a *analysis, i int) (oobIsTaken bool, ok bool) {
	ins := a.prog.Instructions[i]
	if !ins.IsConditional() || ins.Source() != ebpf.SourceX || ins.Class() != ebpf.ClassJMP {
		return false, false
	}
	dst, src := a.provKind(i, ins.Dst), a.provKind(i, ins.Src)
	var pktLeft bool
	switch {
	case dst == pvPacketKind && src == pvPacketEndKind:
		pktLeft = true
	case dst == pvPacketEndKind && src == pvPacketKind:
		pktLeft = false
	default:
		return false, false
	}
	switch ins.JumpOp() {
	case ebpf.JumpGT, ebpf.JumpGE: // taken when left > right
		return pktLeft, true // pkt+k > end  => OOB taken
	case ebpf.JumpLT, ebpf.JumpLE: // taken when left < right
		return !pktLeft, true // end < pkt+k => OOB taken
	}
	return false, false
}

// Exported-ish provenance kinds for the elision pass without leaking the
// ddg lattice: recomputed locally from the access/pointer analysis.
type provKindT int

const (
	pvOtherKind provKindT = iota
	pvPacketKind
	pvPacketEndKind
)

// provKind classifies the value of reg before instruction i by re-running
// a tiny provenance query through ddg: we reconstruct it from the
// instruction stream with a forward scan inside the ddg package's
// abstraction via Info (the Access labels expose packet provenance only
// for memory operands), so the compiler carries its own lightweight
// pass here.
func (a *analysis) provKind(i int, reg ebpf.Register) provKindT {
	kinds := a.pointerKinds()
	return kinds[i][reg]
}

// pointerKinds caches a minimal forward provenance pass (packet /
// packet-end / other) per instruction.
func (a *analysis) pointerKinds() [][ebpf.NumRegisters]provKindT {
	if a.kindsCache != nil {
		return a.kindsCache
	}
	n := len(a.prog.Instructions)
	kinds := make([][ebpf.NumRegisters]provKindT, n)

	join := func(x, y [ebpf.NumRegisters]provKindT) [ebpf.NumRegisters]provKindT {
		var out [ebpf.NumRegisters]provKindT
		for r := range out {
			if x[r] == y[r] {
				out[r] = x[r]
			} else {
				out[r] = pvOtherKind
			}
		}
		return out
	}

	// ctxRegs tracks which registers hold the xdp_md pointer.
	type state struct {
		kinds [ebpf.NumRegisters]provKindT
		ctx   [ebpf.NumRegisters]bool
	}
	blockState := make([]state, len(a.g.Blocks))
	blockState[0].ctx[ebpf.R1] = true

	work := []int{0}
	visited := make([]bool, len(a.g.Blocks))
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st := blockState[b]
		blk := a.g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			kinds[i] = st.kinds
			ins := a.prog.Instructions[i]
			switch cls := ins.Class(); {
			case cls == ebpf.ClassLDX:
				srcIsCtx := st.ctx[ins.Src] // read before clobbering dst: src may be dst
				st.kinds[ins.Dst] = pvOtherKind
				st.ctx[ins.Dst] = false
				if srcIsCtx {
					switch int(ins.Off) {
					case ebpf.XDPMDData, ebpf.XDPMDDataMeta:
						st.kinds[ins.Dst] = pvPacketKind
					case ebpf.XDPMDDataEnd:
						st.kinds[ins.Dst] = pvPacketEndKind
					}
				}
			case cls.IsALU():
				op := ins.ALUOp()
				switch {
				case op == ebpf.ALUMov && ins.Source() == ebpf.SourceX && cls == ebpf.ClassALU64:
					st.kinds[ins.Dst] = st.kinds[ins.Src]
					st.ctx[ins.Dst] = st.ctx[ins.Src]
				case (op == ebpf.ALUAdd || op == ebpf.ALUSub) && cls == ebpf.ClassALU64:
					// Pointer arithmetic keeps packet provenance.
					st.ctx[ins.Dst] = false
				default:
					st.kinds[ins.Dst] = pvOtherKind
					st.ctx[ins.Dst] = false
				}
			case ins.IsCall():
				for r := ebpf.R0; r <= ebpf.R5; r++ {
					st.kinds[r] = pvOtherKind
					st.ctx[r] = false
				}
			case cls == ebpf.ClassLD:
				st.kinds[ins.Dst] = pvOtherKind
				st.ctx[ins.Dst] = false
			}
		}
		for _, s := range blk.Succs {
			next := st
			if visited[s] {
				next.kinds = join(blockState[s].kinds, st.kinds)
				for r := range next.ctx {
					next.ctx[r] = blockState[s].ctx[r] && st.ctx[r]
				}
			}
			if !visited[s] || next != blockState[s] {
				blockState[s] = next
				visited[s] = true
				work = append(work, s)
			}
		}
	}
	a.kindsCache = kinds
	return kinds
}

// elideBoundsChecks removes data_end comparisons whose failing side is a
// trivial verdict block. The hardware performs the equivalent check on
// every frame access (Section 4.4: "this check is readily implemented in
// hardware ... and can therefore be safely skipped").
func elideBoundsChecks(a *analysis) (*ebpf.Program, int, error) {
	drop := map[int]bool{}
	ja := map[int]bool{}
	count := 0
	for i, ins := range a.prog.Instructions {
		if !ins.IsConditional() {
			continue
		}
		oobTaken, ok := packetVsEnd(a, i)
		if !ok {
			continue
		}
		takenBlk, _ := a.prog.BranchTarget(i)
		fallIdx := i + 1
		var oobBlock int
		if oobTaken {
			oobBlock = a.g.BlockOf(takenBlk)
		} else {
			if fallIdx >= len(a.prog.Instructions) {
				continue
			}
			oobBlock = a.g.BlockOf(fallIdx)
		}
		if _, trivial := isTrivialVerdictBlock(a, oobBlock); !trivial {
			continue
		}
		count++
		if oobTaken {
			drop[i] = true // never taken: fall through
		} else {
			ja[i] = true // always taken: continue at the target
		}
	}
	if count == 0 {
		return a.prog, 0, nil
	}
	out, err := rewrite(a.prog, drop, ja)
	return out, count, err
}

// effectiveUses drops register uses the hardware does not need: the base
// register of statically addressed loads/stores, and the pointer
// arguments of map helpers whose key/value stack slots are static.
func effectiveUses(info *ddg.Info, i int) []ebpf.Register {
	ins := info.Prog.Instructions[i]
	uses := info.UsesOf(i)
	dropReg := func(r ebpf.Register) {
		out := uses[:0:len(uses)]
		for _, u := range uses {
			if u != r {
				out = append(out, u)
			}
		}
		uses = out
	}
	if ins.IsCall() {
		helper := ebpf.HelperID(ins.Imm)
		if helper.AccessesMap() && info.CallMap[i] >= 0 {
			dropReg(ebpf.R1) // the map pointer is static per call site
			if info.CallKey[i].Known {
				dropReg(ebpf.R2)
			}
			if helper == ebpf.HelperMapUpdateElem && info.CallVal[i].Known {
				dropReg(ebpf.R3)
			}
		}
		return uses
	}
	acc := info.Accesses[i]
	if acc == nil || !acc.OffKnown {
		return uses
	}
	switch ins.Class() {
	case ebpf.ClassLDX:
		dropReg(ins.Src)
	case ebpf.ClassST, ebpf.ClassSTX:
		dropReg(ins.Dst)
	}
	return uses
}

// hasSideEffects reports whether removing instruction i could change
// observable behaviour even when its register results are dead.
func hasSideEffects(ins ebpf.Instruction) bool {
	switch cls := ins.Class(); {
	case cls == ebpf.ClassST, cls == ebpf.ClassSTX:
		return true
	case cls.IsJump():
		return true // branches shape control flow; exit ends the program
	default:
		return false
	}
}

// wiringSet classifies the instructions that produce no hardware at all:
// side-effect-free definitions whose every use was elided because the
// consuming access resolves to a static address. These are the address
// computations of Figure 8 that never appear as pipeline stages — in the
// generated design they are wires, not logic. The instructions stay in
// the transformed program (the provenance analysis still reads them) but
// are not scheduled.
func wiringSet(a *analysis) map[int]bool {
	wiring := map[int]bool{}
	for {
		// Wiring instructions consume nothing themselves, so whole
		// address-computation chains dissolve across iterations.
		_, effLiveOut, _ := a.info.Liveness(func(i int) []ebpf.Register {
			if wiring[i] {
				return nil
			}
			return effectiveUses(a.info, i)
		})
		changed := false
		for i, ins := range a.prog.Instructions {
			if wiring[i] || hasSideEffects(ins) {
				continue
			}
			defs := ins.Defs()
			if len(defs) == 0 {
				continue
			}
			dead := true
			for _, d := range defs {
				if effLiveOut[i]&(1<<d) != 0 {
					dead = false
				}
			}
			if dead {
				wiring[i] = true
				changed = true
			}
		}
		if !changed {
			return wiring
		}
	}
}

// deadCodeElim iteratively removes side-effect-free instructions whose
// results are dead (under the full register uses, so the provenance
// analysis stays valid), plus unreachable blocks.
func deadCodeElim(a *analysis) (*ebpf.Program, int, error) {
	removedTotal := 0
	cur := a
	for {
		_, liveOut, _ := cur.info.Liveness(cur.info.UsesOf)
		drop := map[int]bool{}
		reach := cur.g.Reachable()
		for b := range cur.g.Blocks {
			if reach[b] {
				continue
			}
			for i := cur.g.Blocks[b].Start; i < cur.g.Blocks[b].End; i++ {
				drop[i] = true
			}
		}
		for i, ins := range cur.prog.Instructions {
			if drop[i] || hasSideEffects(ins) {
				continue
			}
			defs := ins.Defs()
			if len(defs) == 0 {
				continue
			}
			dead := true
			for _, d := range defs {
				if liveOut[i]&(1<<d) != 0 {
					dead = false
				}
			}
			if dead {
				drop[i] = true
			}
		}
		if len(drop) == 0 {
			return cur.prog, removedTotal, nil
		}
		removedTotal += len(drop)
		next, err := rewrite(cur.prog, drop, nil)
		if err != nil {
			return nil, 0, err
		}
		cur, err = analyzeWithCache(next)
		if err != nil {
			return nil, 0, err
		}
	}
}

func analyzeWithCache(prog *ebpf.Program) (*analysis, error) {
	return analyze(prog)
}

// EffectiveUses exposes the hardware-level register uses of an
// instruction (base registers of statically addressed accesses elided)
// for the simulator's pruning-soundness checks.
func EffectiveUses(info *ddg.Info, i int) []ebpf.Register {
	return effectiveUses(info, i)
}
