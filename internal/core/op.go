// Package core implements the eHDL compiler: it turns an unmodified
// eBPF/XDP program into a strictly forward-feeding hardware pipeline
// (Sections 3 and 4 of the paper).
//
// The compilation pipeline is:
//
//  1. bounded-loop unrolling (cfg.Unroll) so the CFG is acyclic;
//  2. provenance labeling of every memory access (ddg.Analyze);
//  3. packet bounds-check elision — the hardware checks bounds on every
//     frame access, so explicit data_end comparisons are removed;
//  4. dead-code elimination with pointer-use dropping: accesses at
//     compile-time-known offsets do not consume their base register in
//     hardware, which lets whole address-computation chains disappear;
//  5. instruction fusion (three-operand combining, Section 3.2);
//  6. ILP scheduling of each control block into stage rows (Section 3.3);
//  7. template primitive mapping and helper-block expansion (Section 3.4);
//  8. map-block construction with WAR delay buffers and RAW Flush
//     Evaluation Blocks (Section 4.1);
//  9. packet framing with bypass and NOP insertion (Section 4.2);
//  10. state pruning of carried registers and stack bytes (Section 4.3).
//
// The result is a Pipeline, consumed by the cycle-accurate simulator
// (internal/hwsim) and the VHDL backend (internal/hdl).
package core

import (
	"fmt"

	"ehdl/internal/ddg"
	"ehdl/internal/ebpf"
)

// OpKind classifies a pipeline micro-operation by the template hardware
// primitive that implements it (Section 3.4).
type OpKind int

// Op kinds.
const (
	OpALU     OpKind = iota // register-to-register primitive
	OpLDDW                  // 64-bit constant (wiring only)
	OpLoad                  // memory-to-register connection
	OpStore                 // register-to-memory connection
	OpAtomic                // atomic read-modify-write primitive on a map or local memory
	OpBranch                // predicate definition driving stage-enable signals
	OpMapCall               // eHDLmap block access (lookup/update/delete helpers)
	OpHelper                // dedicated helper-function block
	OpExit                  // verdict latch
)

func (k OpKind) String() string {
	switch k {
	case OpALU:
		return "alu"
	case OpLDDW:
		return "lddw"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	case OpBranch:
		return "branch"
	case OpMapCall:
		return "mapcall"
	case OpHelper:
		return "helper"
	case OpExit:
		return "exit"
	}
	return "op?"
}

// Op is one micro-operation placed in a pipeline stage.
type Op struct {
	Kind OpKind
	// Ins is the primary instruction; Index its position in the
	// transformed program.
	Ins   ebpf.Instruction
	Index int
	// Fused holds instructions combined into this operation by
	// instruction fusion; they evaluate combinationally after Ins within
	// the same stage.
	Fused    []ebpf.Instruction
	FusedIdx []int
	// Access is the labeled memory behaviour (nil for pure ALU ops).
	Access *ddg.Access
	// MapID identifies the eHDLmap block for map operations (-1 none).
	MapID int
	// Helper identifies the helper block for OpHelper/OpMapCall.
	Helper ebpf.HelperID
	// KeyStackOff/ValStackOff locate helper arguments in the stack frame
	// when their pointers resolve to compile-time constants.
	KeyStackOff, ValStackOff int64
	KeyOffKnown, ValOffKnown bool
	// BlockID is the control block whose enable signal gates this op.
	BlockID int
	// EndsBlock marks the op after which the block's successor enables
	// fire.
	EndsBlock bool
	// TakenBlock/FallBlock are the successor block IDs activated when a
	// branch is taken / not taken (or unconditionally for fallthrough
	// ends). -1 when absent.
	TakenBlock, FallBlock int
	// BaseElided records that the access's base register was dropped
	// because the offset is static (the hardware wires the address).
	BaseElided bool
}

// InstructionCount returns the number of original eBPF instructions the
// op carries (1 + fused).
func (o *Op) InstructionCount() int { return 1 + len(o.Fused) }

// StageKind distinguishes functional stages from structural ones.
type StageKind int

// Stage kinds.
const (
	StageNormal     StageKind = iota
	StageNOP                  // framing delay (Section 4.2)
	StageHelperWait           // interior stage of a pipelined helper block
)

func (k StageKind) String() string {
	switch k {
	case StageNormal:
		return "normal"
	case StageNOP:
		return "nop"
	case StageHelperWait:
		return "helper-wait"
	}
	return "stage?"
}

// Stage is one pipeline stage: the ops that execute in it and the state
// it must carry to the next stage.
type Stage struct {
	Kind StageKind
	Ops  []Op

	// CarryRegs is the bitmask of registers latched into this stage
	// after state pruning (all eleven when pruning is disabled).
	CarryRegs uint16
	// CarryStackLo/CarryStackHi bound the live stack byte range carried
	// into this stage, as offsets from the frame base (0..512);
	// Lo == Hi means no stack memory.
	CarryStackLo, CarryStackHi int
	// MaxPacketOff is the highest packet byte offset (exclusive) this
	// stage touches at a compile-time-known offset; -1 when it needs the
	// whole packet.
	MaxPacketOff int
	// FrameBypass is how many stages upstream the farthest frame this
	// stage reads sits (Section 4.2 stage bypassing).
	FrameBypass int
}

// InstructionCount counts the original instructions in the stage.
func (s *Stage) InstructionCount() int {
	n := 0
	for i := range s.Ops {
		n += s.Ops[i].InstructionCount()
	}
	return n
}

// CarryStackBytes is the number of stack bytes the stage carries.
func (s *Stage) CarryStackBytes() int { return s.CarryStackHi - s.CarryStackLo }

// CarryRegCount is the number of registers the stage carries.
func (s *Stage) CarryRegCount() int {
	n := 0
	for m := s.CarryRegs; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// BlockInfo describes one control block's place in the pipeline.
type BlockInfo struct {
	ID         int
	FirstStage int
	LastStage  int
}

// MapBlock is one eHDLmap hardware block: the single memory interface
// shared by every access to one map (Section 4.1).
type MapBlock struct {
	MapID int
	Spec  ebpf.MapSpec

	// Stage indices of the accesses.
	ReadStages   []int
	WriteStages  []int
	AtomicStages []int

	// UsesAtomics marks global-state style access handled by the atomic
	// primitive instead of flushing.
	UsesAtomics bool
	// NeedsFlush marks per-flow-state RAW hazards: a non-atomic write
	// stage later in the pipeline than a read stage.
	NeedsFlush bool
	// L is the stage distance between the (first) read and the (last)
	// non-atomic write — the hazard window of Appendix A.1.
	L int
	// K is the number of stages a flush discards: from the elastic
	// buffer (after the last earlier side effect) up to the write stage.
	K int
	// FlushFromStage is where flushed packets re-enter (0 = pipeline
	// input; >0 = elastic buffer per Appendix A.2).
	FlushFromStage int
	// WARDepth is the write-delay buffer length that defers writes until
	// in-flight older reads have completed (Section 4.1.1): the distance
	// from a write stage back to the last read stage that must still
	// observe the old value.
	WARDepth int
}

// Pipeline is a compiled hardware design.
type Pipeline struct {
	// Prog is the original input program; Transformed is the program the
	// pipeline actually lays out (unrolled, elided, DCE'd).
	Prog        *ebpf.Program
	Transformed *ebpf.Program
	Info        *ddg.Info

	Options Options

	Stages []Stage
	Blocks []BlockInfo
	Maps   []MapBlock

	// ElidedBoundsChecks counts removed data_end comparisons.
	ElidedBoundsChecks int
	// RemovedInstructions counts instructions eliminated by DCE.
	RemovedInstructions int
	// FusedPairs counts instruction fusions performed.
	FusedPairs int
	// FramingNOPs counts stages inserted for packet framing.
	FramingNOPs int
}

// NumStages returns the pipeline depth.
func (p *Pipeline) NumStages() int { return len(p.Stages) }

// ILP reports the maximum and average instruction-level parallelism over
// stages that execute at least one instruction (Appendix A.3).
func (p *Pipeline) ILP() (max int, avg float64) {
	total, stages := 0, 0
	for i := range p.Stages {
		n := p.Stages[i].InstructionCount()
		if n == 0 {
			continue
		}
		stages++
		total += n
		if n > max {
			max = n
		}
	}
	if stages == 0 {
		return 0, 0
	}
	return max, float64(total) / float64(stages)
}

// MapBlockFor returns the map block for a map ID.
func (p *Pipeline) MapBlockFor(id int) *MapBlock {
	for i := range p.Maps {
		if p.Maps[i].MapID == id {
			return &p.Maps[i]
		}
	}
	return nil
}

// Latency returns the forwarding latency in clock cycles: one per stage
// plus the I/O queue crossings.
func (p *Pipeline) Latency(extraCycles int) int {
	return len(p.Stages) + extraCycles
}

// Options control the compiler; the zero value enables everything with a
// 64-byte frame, matching the paper's prototype.
type Options struct {
	// FrameBytes is the packet framing width (Section 4.2). 0 means 64.
	FrameBytes int
	// MaxPacketBytes bounds packet size for framing of variable-offset
	// accesses. 0 means 1514.
	MaxPacketBytes int
	// DisableILP schedules one instruction per stage.
	DisableILP bool
	// DisablePruning carries the full architectural state in every stage
	// (the Section 5.4 ablation).
	DisablePruning bool
	// DisableFusion turns off instruction fusion.
	DisableFusion bool
	// DisableBoundsElision keeps explicit packet bounds checks.
	DisableBoundsElision bool
	// DisableAtomics lowers atomic map operations to flush-protected
	// read-modify-writes (the Section 5.3 single-flow ablation).
	DisableAtomics bool
}

func (o Options) frameBytes() int {
	if o.FrameBytes <= 0 {
		return 64
	}
	return o.FrameBytes
}

func (o Options) maxPacketBytes() int {
	if o.MaxPacketBytes <= 0 {
		return 1514
	}
	return o.MaxPacketBytes
}

func (o Options) validate() error {
	if o.FrameBytes < 0 || (o.FrameBytes > 0 && o.FrameBytes < 16) {
		return fmt.Errorf("core: frame size %d is below the 16-byte minimum", o.FrameBytes)
	}
	return nil
}
