package core

import (
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
)

// toySource is the running example of the paper (Listing 1/2) with the
// explicit packet bounds check the C compiler emits.
const toySource = `
map stats array key=4 value=8 entries=4

r2 = *(u32 *)(r1 + 4)      ; data_end
r1 = *(u32 *)(r1 + 0)      ; data
r3 = r1
r3 += 14
if r3 > r2 goto drop       ; bounds check, elided in hardware
r3 = 0
*(u32 *)(r10 - 4) = r3
r2 = *(u8 *)(r1 + 13)
r1 = *(u8 *)(r1 + 12)
r1 <<= 8
r1 |= r2
if r1 == 34525 goto ipv6
if r1 == 2054 goto arp
if r1 != 2048 goto lookup
r1 = 1
goto store
ipv6:
r1 = 2
goto store
arp:
r1 = 3
store:
*(u32 *)(r10 - 4) = r1
lookup:
r2 = r10
r2 += -4
r1 = map[stats] ll
call 1
r1 = r0
r0 = 3
if r1 == 0 goto out
r2 = 1
lock *(u64 *)(r1 + 0) += r2
out:
exit
drop:
r0 = 1
exit
`

func compileToy(t *testing.T, opts Options) *Pipeline {
	t.Helper()
	prog, err := asm.Assemble("toy", toySource)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileToyShape(t *testing.T) {
	p := compileToy(t, Options{})

	if p.ElidedBoundsChecks != 1 {
		t.Errorf("elided bounds checks = %d, want 1", p.ElidedBoundsChecks)
	}
	// The data_end load, the pointer copies and the drop block must all
	// be gone.
	if p.RemovedInstructions == 0 {
		t.Error("dead-code elimination removed nothing")
	}
	for _, ins := range p.Transformed.Instructions {
		if ins.Class() == ebpf.ClassLDX && ins.Off == 4 && ins.MemSize() == ebpf.SizeW && ins.Src == ebpf.R1 {
			// Only flag actual ctx reads (the first instruction pattern).
		}
	}
	// Pipeline depth close to the paper's 20 stages (exact layout depends
	// on scheduling details; the order of magnitude must hold).
	if n := p.NumStages(); n < 10 || n > 30 {
		t.Errorf("stage count = %d, want roughly 20", n)
	}
	// ILP exists but is modest (the program is control-heavy): max 2-3.
	max, avg := p.ILP()
	if max < 2 {
		t.Errorf("max ILP = %d, want >= 2", max)
	}
	if avg < 1.0 || avg > 2.5 {
		t.Errorf("avg ILP = %.2f, out of plausible range", avg)
	}
	// One map block handling the stats array with an atomic primitive
	// and no flushing.
	if len(p.Maps) != 1 {
		t.Fatalf("map blocks = %d, want 1", len(p.Maps))
	}
	mb := p.Maps[0]
	if !mb.UsesAtomics {
		t.Error("stats map does not use the atomic primitive")
	}
	if mb.NeedsFlush {
		t.Error("stats map wrongly requires flushing")
	}
	if len(mb.ReadStages) != 1 {
		t.Errorf("read stages = %v, want one lookup", mb.ReadStages)
	}
}

func TestCompileToyPruning(t *testing.T) {
	p := compileToy(t, Options{})

	// Pruned state: most stages carry very few registers (the paper: 9
	// stages with 1 register, at most 3 anywhere), and the stack is only
	// 4 bytes where present.
	maxRegs, maxStack := 0, 0
	for i := range p.Stages {
		if n := p.Stages[i].CarryRegCount(); n > maxRegs {
			maxRegs = n
		}
		if n := p.Stages[i].CarryStackBytes(); n > maxStack {
			maxStack = n
		}
	}
	if maxRegs > 5 {
		t.Errorf("max carried registers = %d, want <= 5 after pruning", maxRegs)
	}
	if maxStack != 4 {
		t.Errorf("max carried stack bytes = %d, want 4 (the lookup key)", maxStack)
	}

	// Without pruning every stage carries the full state.
	u := compileToy(t, Options{DisablePruning: true})
	for i := range u.Stages {
		if u.Stages[i].CarryRegCount() != 11 || u.Stages[i].CarryStackBytes() != ebpf.StackSize {
			t.Fatalf("stage %d pruning-disabled carry = %d regs / %d bytes",
				i, u.Stages[i].CarryRegCount(), u.Stages[i].CarryStackBytes())
		}
	}
}

func TestCompileToyNoILP(t *testing.T) {
	base := compileToy(t, Options{})
	serial := compileToy(t, Options{DisableILP: true})
	if serial.NumStages() <= base.NumStages() {
		t.Errorf("ILP-disabled stages = %d, want more than %d", serial.NumStages(), base.NumStages())
	}
	max, _ := serial.ILP()
	// Fusion still packs pairs, so a stage may hold up to 2 instructions.
	if max > 2 {
		t.Errorf("ILP-disabled max per-stage instructions = %d", max)
	}
}

func TestCompileFusion(t *testing.T) {
	// "r6 = r7; r6 += 100" with a live r6 fuses into one three-operand
	// primitive (Figure 3); in the toy program the equivalent pair is
	// pure address wiring and vanishes instead.
	src := `
r7 = *(u32 *)(r1 + 8)
r6 = r7
r6 += 100
r0 = r6
exit
`
	prog, err := asm.Assemble("fuse", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(prog, Options{DisableBoundsElision: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.FusedPairs != 1 {
		t.Errorf("fused pairs = %d, want 1", p.FusedPairs)
	}
	nf, err := Compile(prog, Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if nf.FusedPairs != 0 {
		t.Error("fusion ran while disabled")
	}
	if nf.NumStages() <= p.NumStages() {
		t.Errorf("fusion did not shorten the pipeline: %d vs %d stages", p.NumStages(), nf.NumStages())
	}
}

func TestCompileKeepsBoundsCheckWhenDisabled(t *testing.T) {
	p := compileToy(t, Options{DisableBoundsElision: true})
	if p.ElidedBoundsChecks != 0 {
		t.Error("bounds elision ran while disabled")
	}
	// The comparison against data_end must survive.
	found := false
	for _, ins := range p.Transformed.Instructions {
		if ins.IsConditional() && ins.Source() == ebpf.SourceX {
			found = true
		}
	}
	if !found {
		t.Error("register-register bounds branch missing from the kept-checks pipeline")
	}
}

func TestCompileAtomicsLowering(t *testing.T) {
	p := compileToy(t, Options{DisableAtomics: true})
	mb := p.Maps[0]
	if mb.UsesAtomics {
		t.Error("atomics still in use while disabled")
	}
	if !mb.NeedsFlush {
		t.Error("lowered atomic does not require flushing")
	}
	if mb.K <= 0 {
		t.Errorf("flush depth K = %d, want > 0", mb.K)
	}
}

const flowSource = `
map conn hash key=4 value=8 entries=1024

r2 = *(u32 *)(r1 + 0)       ; data
r3 = *(u32 *)(r2 + 26)      ; src ip as the flow key
*(u32 *)(r10 - 4) = r3
r1 = map[conn] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto miss
r0 = 2
exit
miss:
*(u64 *)(r10 - 16) = 1
r1 = map[conn] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -16
r4 = 0
call 2
r0 = 2
exit
`

func TestCompileFlowStateHazards(t *testing.T) {
	prog, err := asm.Assemble("flow", flowSource)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Maps) != 1 {
		t.Fatalf("map blocks = %d, want 1", len(p.Maps))
	}
	mb := p.Maps[0]
	if !mb.NeedsFlush {
		t.Error("read-then-update flow map does not flush")
	}
	if mb.L <= 0 || mb.K < mb.L {
		t.Errorf("hazard geometry L=%d K=%d", mb.L, mb.K)
	}
	if mb.UsesAtomics {
		t.Error("flow map wrongly uses atomics")
	}
}

func TestCompileFramingNOPs(t *testing.T) {
	// A deep packet access at the very start of the program requires the
	// corresponding frame to already be inside the pipeline: the
	// compiler inserts synthetic NOP stages (Section 4.2).
	prog, err := asm.Assemble("deep", `
r2 = *(u32 *)(r1 + 0)
r0 = *(u8 *)(r2 + 400)
r0 &= 1
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.FramingNOPs == 0 {
		t.Fatal("no NOP stages inserted for a deep early access")
	}
	// Frame of byte 400 with 64-byte frames is index 6; the access must
	// sit at a stage >= its frame index.
	for s := range p.Stages {
		for _, op := range p.Stages[s].Ops {
			if op.Access != nil && op.Access.OffKnown && op.Access.Off == 400 {
				if s < 6 {
					t.Errorf("deep access at stage %d, before its frame arrives", s)
				}
			}
		}
	}
	// With 32-byte frames the NOP count roughly doubles.
	p32, err := Compile(prog, Options{FrameBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if p32.FramingNOPs <= p.FramingNOPs {
		t.Errorf("32B-frame NOPs = %d, want more than %d", p32.FramingNOPs, p.FramingNOPs)
	}
}

func TestCompileTopologicalStageOrder(t *testing.T) {
	p := compileToy(t, Options{})
	// Property: an op's block successors must start at strictly later
	// stages than the op itself (forward-feeding pipeline).
	firstStage := map[int]int{}
	for _, b := range p.Blocks {
		firstStage[b.ID] = b.FirstStage
	}
	for s := range p.Stages {
		for _, op := range p.Stages[s].Ops {
			for _, succ := range []int{op.TakenBlock, op.FallBlock} {
				if succ < 0 {
					continue
				}
				if firstStage[succ] <= s {
					t.Errorf("stage %d enables block %d starting at stage %d (not forward)",
						s, succ, firstStage[succ])
				}
			}
		}
	}
}

func TestCompileSchedulerInvariants(t *testing.T) {
	p := compileToy(t, Options{})
	// No two ops in one stage may conflict (same-stage parallel
	// execution requires independence).
	for s := range p.Stages {
		ops := p.Stages[s].Ops
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				for _, a := range append([]int{ops[i].Index}, ops[i].FusedIdx...) {
					for _, b := range append([]int{ops[j].Index}, ops[j].FusedIdx...) {
						lo, hi := a, b
						if lo > hi {
							lo, hi = hi, lo
						}
						if p.Info.Conflicts(lo, hi) {
							t.Errorf("stage %d holds conflicting instructions %d and %d", s, a, b)
						}
					}
				}
			}
		}
	}
	// Every reachable instruction appears exactly once.
	seen := map[int]int{}
	for s := range p.Stages {
		for _, op := range p.Stages[s].Ops {
			seen[op.Index]++
			for _, f := range op.FusedIdx {
				seen[f]++
			}
		}
	}
	for idx, count := range seen {
		if count != 1 {
			t.Errorf("instruction %d scheduled %d times", idx, count)
		}
	}
	// Unscheduled instructions must be pure address plumbing: no side
	// effects, and every register they define consumed only by
	// statically addressed accesses.
	for idx, ins := range p.Transformed.Instructions {
		if seen[idx] > 0 {
			continue
		}
		if hasSideEffects(ins) {
			t.Errorf("side-effecting instruction %d (%s) was not scheduled", idx, ins)
		}
	}
	if len(seen) == len(p.Transformed.Instructions) {
		t.Error("no instruction became pure wiring; pointer-use elision is not working")
	}
}

func TestCompileLatency(t *testing.T) {
	p := compileToy(t, Options{})
	if p.Latency(8) != p.NumStages()+8 {
		t.Error("latency arithmetic broken")
	}
}
