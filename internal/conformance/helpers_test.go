package conformance

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/obs"
)

// newTestObs builds a tracer over an in-memory sink plus a registry,
// the standard observability rig of this suite.
func newTestObs() (*obs.Tracer, *obs.Registry) {
	return obs.NewTracer(0, obs.NewMemSink()), obs.NewRegistry()
}

// memTracer builds a tracer and returns the sink for event assertions.
func memTracer() (*obs.Tracer, *obs.MemSink) {
	sink := obs.NewMemSink()
	return obs.NewTracer(0, sink), sink
}

func mustApp(t *testing.T, name string) *apps.App {
	t.Helper()
	a, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	return a
}
