package conformance

import (
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/pktgen"
)

// TestThreeWayApps runs every evaluation application over its seeded
// traffic through all three engines — reference interpreter,
// cycle-accurate simulator and compiled fast path — asserting identical
// verdicts, packet bytes and final map state between every pair.
func TestThreeWayApps(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 80
	}
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := app.Traffic
			cfg.Seed = 0xC0FFEE
			packets := pktgen.NewGenerator(cfg).Batch(n)
			if err := DiffAppThreeWay(app, packets, Config{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestThreeWaySingleFlow drives every app with a single flow — the
// hazard worst case, where the interpreter's flush machinery is
// constantly busy — and demands the fast path still matches bit for
// bit: the proof that hazard handling is invisible in the final
// verdicts and map state the fast path reproduces.
func TestThreeWaySingleFlow(t *testing.T) {
	n := 250
	if testing.Short() {
		n = 60
	}
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := app.Traffic
			cfg.Flows = 1
			cfg.Seed = 7
			packets := pktgen.NewGenerator(cfg).Batch(n)
			if err := DiffAppThreeWay(app, packets, Config{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestThreeWayAblations re-runs the three-way differential under every
// compiler ablation: each reshapes the pipeline the fast path is
// compiled from and must not change its semantics.
func TestThreeWayAblations(t *testing.T) {
	ablations := map[string]core.Options{
		"no-ilp":     {DisableILP: true},
		"no-pruning": {DisablePruning: true},
		"no-fusion":  {DisableFusion: true},
		"no-elision": {DisableBoundsElision: true},
		"no-atomics": {DisableAtomics: true},
	}
	for name, opts := range ablations {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, appName := range []string{"firewall", "router", "tunnel"} {
				app := mustApp(t, appName)
				cfg := app.Traffic
				cfg.Seed = 99
				packets := pktgen.NewGenerator(cfg).Batch(120)
				if err := DiffAppThreeWay(app, packets, Config{Opts: opts}); err != nil {
					t.Fatalf("%s: %v", appName, err)
				}
			}
		})
	}
}

// TestThreeWayMalformed feeds truncated and corrupted frames through
// the interpreter and the fast path: the hardware bounds check must
// fire identically on both (the vm reference cannot judge bounds-
// elided malformed frames, so this pair is the exact oracle).
func TestThreeWayMalformed(t *testing.T) {
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := app.Program()
			if err != nil {
				t.Fatal(err)
			}
			packets := fuzzSeedCorpus(0xDEAD)
			if err := DiffProgramFastPath(prog, app.SetupHost, packets, Config{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
