package conformance

import (
	"testing"

	"ehdl/internal/hwsim"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
)

// tracedEvents runs one app's seeded traffic through the pipeline
// simulator with an in-memory tracer attached and returns the event
// stream. The differential outcome itself is checked elsewhere; these
// tests replay the stream and assert the cycle-accounting invariants of
// DESIGN.md hold over it.
func tracedEvents(t *testing.T, name string, flows, n int, sim hwsim.Config) []obs.Event {
	t.Helper()
	app := mustApp(t, name)
	cfg := app.Traffic
	if flows > 0 {
		cfg.Flows = flows
	}
	cfg.Seed = 0x1417
	packets := pktgen.NewGenerator(cfg).Batch(n)
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	tr, sink := memTracer()
	sim.Trace = tr
	if _, _, err := runPipeline(prog, app.SetupHost, packets, Config{Sim: sim}); err != nil {
		t.Fatal(err)
	}
	return sink.Events()
}

// TestInvariantOneStagePerCycle replays the stage_enter/stage_exit
// stream of a hazard-dense run and proves the structural pipeline
// invariant: a frame occupies exactly one stage at a time, no stage
// holds two frames, and a frame advances at most one stage per cycle —
// across shifts, flush recalls and elastic-buffer re-entries alike.
func TestInvariantOneStagePerCycle(t *testing.T) {
	evs := tracedEvents(t, "firewall", 2, 40, hwsim.Config{})

	stageOf := map[int64]int{}   // seq -> occupied stage
	occupant := map[int]int64{}  // stage -> seq
	lastEnter := map[int64]uint64{}
	entered := false
	for _, ev := range evs {
		switch ev.Kind {
		case obs.KindStageEnter:
			entered = true
			if cur, ok := stageOf[ev.Seq]; ok {
				t.Fatalf("cycle %d: frame %d enters stage %d while still in stage %d", ev.Cycle, ev.Seq, ev.Stage, cur)
			}
			if occ, ok := occupant[ev.Stage]; ok {
				t.Fatalf("cycle %d: frame %d enters stage %d already occupied by frame %d", ev.Cycle, ev.Seq, ev.Stage, occ)
			}
			if last, ok := lastEnter[ev.Seq]; ok && ev.Cycle <= last {
				t.Fatalf("cycle %d: frame %d enters two stages in one cycle", ev.Cycle, ev.Seq)
			}
			stageOf[ev.Seq] = ev.Stage
			occupant[ev.Stage] = ev.Seq
			lastEnter[ev.Seq] = ev.Cycle
		case obs.KindStageExit:
			cur, ok := stageOf[ev.Seq]
			if !ok {
				t.Fatalf("cycle %d: frame %d exits stage %d without being in flight", ev.Cycle, ev.Seq, ev.Stage)
			}
			if cur != ev.Stage {
				t.Fatalf("cycle %d: frame %d exits stage %d but occupies stage %d", ev.Cycle, ev.Seq, ev.Stage, cur)
			}
			delete(stageOf, ev.Seq)
			delete(occupant, ev.Stage)
		}
	}
	if !entered {
		t.Fatal("no stage_enter events recorded")
	}
	if len(stageOf) != 0 {
		t.Fatalf("%d frames never exited after the drain: %v", len(stageOf), stageOf)
	}
}

// TestInvariantFlushPenalty checks the flush cost model of DESIGN.md:
// the Flush Evaluation Block charges the configured reload dead time
// (the paper's K = 4 overhead) plus one re-entry cycle per recalled
// victim, so an isolated flush episode releases after exactly
// reload + victims + 1 cycles.
func TestInvariantFlushPenalty(t *testing.T) {
	for _, reload := range []int{4, 7} {
		evs := tracedEvents(t, "firewall", 1, 2, hwsim.Config{FlushReloadCycles: reload})

		type episode struct {
			begins  int
			victims uint64
			penalty uint64
		}
		var eps []episode
		open := false
		var cur episode
		for _, ev := range evs {
			switch ev.Kind {
			case obs.KindFlushBegin:
				if !open {
					open = true
					cur = episode{}
				}
				cur.begins++
				cur.victims += ev.Aux
			case obs.KindFlushEnd:
				if !open {
					t.Fatalf("cycle %d: flush_end without an open episode", ev.Cycle)
				}
				cur.penalty = ev.Aux
				eps = append(eps, cur)
				open = false
			}
		}
		if open {
			t.Fatal("flush episode never closed")
		}
		if len(eps) == 0 {
			t.Fatalf("reload=%d: two same-flow packets back to back produced no flush", reload)
		}
		isolated := 0
		for _, ep := range eps {
			if ep.victims == 0 {
				t.Fatalf("reload=%d: flush episode recalled no victims", reload)
			}
			if ep.begins == 1 {
				isolated++
				want := uint64(reload) + ep.victims + 1
				if ep.penalty != want {
					t.Fatalf("reload=%d: isolated flush with %d victims cost %d cycles, want reload+victims+1 = %d",
						reload, ep.victims, ep.penalty, want)
				}
			}
		}
		if isolated == 0 {
			t.Fatalf("reload=%d: no isolated flush episode to check exactly", reload)
		}
	}
}

// TestInvariantBypassedStagesQuiet proves that a frame whose verdict
// has latched (stage_enter with the done flag) flows through the
// remaining stages with every block bypassed: no predicate evaluates
// and no map port fires for it until a flush replay rewinds it to a
// live state.
func TestInvariantBypassedStagesQuiet(t *testing.T) {
	evs := tracedEvents(t, "firewall", 2, 40, hwsim.Config{})

	done := map[int64]bool{}
	sawDone := false
	for _, ev := range evs {
		switch ev.Kind {
		case obs.KindStageEnter:
			if ev.Aux == 1 {
				done[ev.Seq] = true
				sawDone = true
			} else {
				done[ev.Seq] = false // flush replay re-enters live
			}
		case obs.KindPredicate, obs.KindMapAccess:
			if ev.Seq != obs.NoSeq && done[ev.Seq] {
				t.Fatalf("cycle %d: %s for frame %d at stage %d after its verdict latched",
					ev.Cycle, ev.Kind, ev.Seq, ev.Stage)
			}
		case obs.KindVerdict:
			delete(done, ev.Seq)
		}
	}
	if !sawDone {
		t.Fatal("no done-flagged stage_enter observed; the bypass path never exercised")
	}
}

// TestInvariantVerdictLatency ties the verdict events to the injection
// events: every injected frame retires exactly once, and the latency
// the verdict carries equals the cycle distance from its injection.
func TestInvariantVerdictLatency(t *testing.T) {
	evs := tracedEvents(t, "firewall", 2, 40, hwsim.Config{})

	injectedAt := map[int64]uint64{}
	verdicts := map[int64]int{}
	for _, ev := range evs {
		switch ev.Kind {
		case obs.KindInject:
			injectedAt[ev.Seq] = ev.Cycle
		case obs.KindVerdict:
			verdicts[ev.Seq]++
			in, ok := injectedAt[ev.Seq]
			if !ok {
				t.Fatalf("cycle %d: verdict for frame %d with no inject event", ev.Cycle, ev.Seq)
			}
			if got, want := ev.Aux2, ev.Cycle-in; got != want {
				t.Fatalf("frame %d: verdict latency %d, but injected at %d and retired at %d (want %d)",
					ev.Seq, got, in, ev.Cycle, want)
			}
		}
	}
	if len(injectedAt) == 0 {
		t.Fatal("no inject events recorded")
	}
	for seq := range injectedAt {
		if verdicts[seq] != 1 {
			t.Fatalf("frame %d retired %d times, want exactly once", seq, verdicts[seq])
		}
	}
}
