package conformance

import (
	"math/rand"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/pktgen"
)

// fuzzSeedCorpus is the malformed-packet seed set: every structured
// malformation the generator knows, header-boundary truncations, and
// random byte soup — the traffic the hardware bounds check must turn
// into clean verdicts on both engines.
func fuzzSeedCorpus(seed int64) [][]byte {
	base := pktgen.Build(pktgen.PacketSpec{
		Flow:     pktgen.Flow{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 4242, DstPort: 8080, Proto: 17},
		TotalLen: 64,
	})
	r := rand.New(rand.NewSource(seed))
	var out [][]byte
	for _, kind := range pktgen.MalformKinds() {
		for i := 0; i < 3; i++ {
			out = append(out, pktgen.Malform(base, kind, r))
		}
	}
	for _, n := range []int{0, 1, 13, 14, 33, 39, 40, 41, 48, len(base)} {
		out = append(out, append([]byte(nil), base[:n]...))
	}
	for i := 0; i < 10; i++ {
		pkt := make([]byte, 40+r.Intn(72))
		r.Read(pkt)
		out = append(out, pkt)
	}
	return out
}

// FuzzDifferential feeds arbitrary (mostly malformed) packets to the
// firewall on both engines, sandwiched between two well-formed packets
// of one established flow so the fuzz input interacts with live map
// state. Two oracles per input:
//
//  1. With bounds-check elision disabled the pipeline executes the
//     program's own checks, so verdicts, bytes and final map state must
//     match the reference exactly, whatever the fuzzer invents.
//  2. With elision on (the paper's default) the hardware per-access
//     bounds check replaces the firewall's elided 42-byte guard, so
//     packets shorter than the guard span may legally diverge: the
//     hardware drops on a faulting access, or runs the program to its
//     verdict when every live access happens to land in bounds. At or
//     beyond the guard span, verdicts must match exactly.
func FuzzDifferential(f *testing.F) {
	for _, pkt := range fuzzSeedCorpus(0xF022) {
		f.Add(pkt)
	}
	app, ok := apps.ByName("firewall")
	if !ok {
		f.Fatal("unknown app firewall")
	}
	prog, err := app.Program()
	if err != nil {
		f.Fatal(err)
	}
	well := pktgen.Build(pktgen.PacketSpec{
		Flow:     pktgen.Flow{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 4242, DstPort: 8080, Proto: 17},
		TotalLen: 64,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("oversized fuzz input")
		}
		packets := [][]byte{well, data, well}

		exact := Config{Opts: core.Options{DisableBoundsElision: true}, MaxCycles: 1 << 18}
		if err := DiffProgram(prog, app.SetupHost, packets, exact); err != nil {
			t.Fatal(err)
		}

		refs, _, err := runReference(prog, app.SetupHost, packets)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		outs, _, err := runPipeline(prog, app.SetupHost, packets, Config{MaxCycles: 1 << 18})
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		// The span the firewall's elided bounds check guards:
		// eth(14) + ip(20) + udp(8).
		const guardSpan = 42
		for i := range packets {
			if outs[i].Action == refs[i].Action {
				continue
			}
			if len(packets[i]) >= guardSpan {
				t.Fatalf("packet %d (%dB, inside the elided guard span): action %v, reference %v",
					i, len(packets[i]), outs[i].Action, refs[i].Action)
			}
		}
	})
}

// FuzzFastPath is the interpreter-vs-compiled differential fuzzer:
// arbitrary (mostly malformed) packets run through the cycle-accurate
// simulator and the compiled fast path, sandwiched between two
// well-formed packets of one established flow so the fuzz input
// interacts with live map state. Unlike FuzzDifferential's vm oracle,
// this pair is exact for every input: both engines execute the same
// specialized pipeline including the hardware per-access bounds check
// that stands in for bounds-elided program checks, so verdicts,
// rewritten bytes and final map state must match bit for bit even on
// truncated frames where the vm reference legally diverges.
func FuzzFastPath(f *testing.F) {
	for _, pkt := range fuzzSeedCorpus(0xFA57) {
		f.Add(pkt)
	}
	app, ok := apps.ByName("firewall")
	if !ok {
		f.Fatal("unknown app firewall")
	}
	prog, err := app.Program()
	if err != nil {
		f.Fatal(err)
	}
	well := pktgen.Build(pktgen.PacketSpec{
		Flow:     pktgen.Flow{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 4242, DstPort: 8080, Proto: 17},
		TotalLen: 64,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("oversized fuzz input")
		}
		packets := [][]byte{well, data, well}
		if err := DiffProgramFastPath(prog, app.SetupHost, packets, Config{MaxCycles: 1 << 18}); err != nil {
			t.Fatal(err)
		}
		// And with the compiler's bounds elision off, so the fuzzer also
		// exercises closures specialized from the unpruned check chain.
		noElide := Config{Opts: core.Options{DisableBoundsElision: true}, MaxCycles: 1 << 18}
		if err := DiffProgramFastPath(prog, app.SetupHost, packets, noElide); err != nil {
			t.Fatal(err)
		}
	})
}
