package conformance

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/asm"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
	"ehdl/internal/protect"
)

// tracedEventsApp is tracedEvents over an already-resolved app.
func tracedEventsApp(t *testing.T, app *apps.App, flows, n int, sim hwsim.Config) []obs.Event {
	t.Helper()
	cfg := app.Traffic
	if flows > 0 {
		cfg.Flows = flows
	}
	cfg.Seed = 0x1417
	packets := pktgen.NewGenerator(cfg).Batch(n)
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	tr, sink := memTracer()
	sim.Trace = tr
	if _, _, err := runPipeline(prog, app.SetupHost, packets, Config{Sim: sim}); err != nil {
		t.Fatal(err)
	}
	return sink.Events()
}

// TestEventClassCoverage proves the tracer's taxonomy is live end to
// end: across a small set of engineered runs — every app under
// single-flow hazard pressure, a one-slot ingress queue, an SEU
// campaign with ECC and scrubbing, and a hair-trigger watchdog — every
// event class the observability layer defines is actually emitted by
// the simulator.
func TestEventClassCoverage(t *testing.T) {
	seen := map[obs.Kind]bool{}
	collect := func(evs []obs.Event) {
		for _, ev := range evs {
			seen[ev.Kind] = true
		}
	}

	// Single-flow hazard pressure on every app: frame movement,
	// predicates, map ports, verdicts, RAW flushes, WAR shadows.
	for _, app := range AllApps() {
		collect(tracedEventsApp(t, app, 1, 40, hwsim.Config{}))
	}

	// A one-slot ingress queue refusing a back-to-back burst.
	collect(queueDropEvents(t))

	// A write-before-read program (the Figure 6 WAR geometry none of the
	// evaluation apps exhibits): every map write captures a shadow.
	collect(warShadowEvents(t))

	// SEU map-entry campaign under ECC with an every-cycle scrubber:
	// faults, scrub passes, checkpoints.
	collect(tracedEventsApp(t, mustApp(t, "firewall"), 0, 400, hwsim.Config{
		Faults:             faults.New(faults.Single(faults.SEUMapEntry, 0.005, 11)),
		Protection:         protect.LevelECC,
		ScrubCyclesPerWord: 1,
	}))

	// A hair-trigger watchdog under protection: the trip converts into a
	// drain-and-restart recovery instead of an error.
	collect(tracedEventsApp(t, mustApp(t, "toy"), 1, 4, hwsim.Config{
		Protection:            protect.LevelECC,
		WatchdogCycles:        2,
		MaxRecoveries:         -1,
		RecoveryBackoffCycles: 16,
	}))

	// A traced multi-queue dispatcher: RSS queue-steer decisions.
	collect(queueSteerEvents(t))

	for _, k := range obs.Kinds() {
		switch k {
		case obs.KindUpdatePhase, obs.KindCanaryDiverge:
			// Emitted by the live-update controller, not the simulator;
			// internal/liveupdate's TestUpdateEventCoverage owns them
			// (liveupdate imports this package, so the runs cannot live
			// here without a cycle).
			continue
		case obs.KindRolloutPhase, obs.KindRebalance:
			// Emitted by the fleet controller; internal/fleet's
			// TestFleetEventCoverage owns them (fleet imports this
			// package for its verdict-divergence gate, same cycle).
			continue
		case obs.KindTenantAdmit, obs.KindTenantReject, obs.KindTenantThrottle:
			// Emitted by the multi-tenant device; internal/tenant's
			// TestTenantEventCoverage owns them (tenant's tests import
			// this package for CompareMaps, same cycle).
			continue
		case obs.KindJournalCommit, obs.KindStateSnapshot, obs.KindReplayEpoch:
			// Emitted by the journaled fleet controller; internal/fleet's
			// TestFleetDurableEventCoverage owns them (same import cycle
			// as the rollout kinds above).
			continue
		}
		if !seen[k] {
			t.Errorf("event class %q never emitted by any engineered run", k)
		}
	}
}

// warShadowSource writes per-flow state before reading it back later in
// the same program, forcing a WARDepth > 0 map block whose every write
// captures a write-delay shadow.
const warShadowSource = `
map seen hash key=4 value=8 entries=64

r2 = *(u32 *)(r1 + 0)
r3 = *(u32 *)(r2 + 26)
*(u32 *)(r10 - 4) = r3
*(u64 *)(r10 - 16) = 7

r1 = map[seen] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -16
r4 = 0
call 2

r1 = map[seen] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto miss
r0 = 3
exit
miss:
r0 = 1
exit
`

// warShadowEvents drives same-flow packets through the WAR program.
func warShadowEvents(t *testing.T) []obs.Event {
	t.Helper()
	prog, err := asm.Assemble("war-shadow", warShadowSource)
	if err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 1, PacketLen: 64, Proto: ebpf.IPProtoUDP, Seed: 3})
	tr, sink := memTracer()
	if _, _, err := runPipeline(prog, nil, gen.Batch(8), Config{Sim: hwsim.Config{Trace: tr}}); err != nil {
		t.Fatal(err)
	}
	return sink.Events()
}

// queueDropEvents overflows a one-slot ingress queue.
func queueDropEvents(t *testing.T) []obs.Event {
	t.Helper()
	app := mustApp(t, "toy")
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, sink := memTracer()
	sim, err := hwsim.New(pl, hwsim.Config{InputQueuePackets: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetClock(func() uint64 { return 0 })
	if err := app.Setup(sim.Maps()); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	if !sim.Inject(gen.Next()) {
		t.Fatal("first packet refused by an empty queue")
	}
	if sim.Inject(gen.Next()) {
		t.Fatal("second packet accepted by a full one-slot queue")
	}
	if err := sim.RunToCompletion(1 << 16); err != nil {
		t.Fatal(err)
	}
	return sink.Events()
}
