package conformance

import (
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/hwsim"
	"ehdl/internal/pktgen"
)

// TestDifferentialApps runs every evaluation application over its own
// seeded traffic through the reference interpreter and the pipeline
// simulator, asserting identical verdicts, packet bytes and final map
// state (the table-driven heart of the conformance suite).
func TestDifferentialApps(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 80
	}
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := app.Traffic
			cfg.Seed = 0xC0FFEE
			packets := pktgen.NewGenerator(cfg).Batch(n)
			if err := DiffApp(app, packets, Config{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialStrictCarry re-runs the suite with run-time pruning
// verification on, proving the carried state is sufficient for every
// app (not just the fuzz programs).
func TestDifferentialStrictCarry(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 40
	}
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := app.Traffic
			cfg.Seed = 0xBEEF
			packets := pktgen.NewGenerator(cfg).Batch(n)
			err := DiffApp(app, packets, Config{Sim: hwsim.Config{StrictCarryCheck: true}})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialStallPolicy diffs the stall-based hazard handling the
// paper evaluates and rejects: slower, but it must still be correct.
func TestDifferentialStallPolicy(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 50
	}
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := app.Traffic
			cfg.Seed = 0xFACE
			packets := pktgen.NewGenerator(cfg).Batch(n)
			err := DiffApp(app, packets, Config{Sim: hwsim.Config{Policy: hwsim.PolicyStall}})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialSingleFlow drives every app with a single flow — the
// paper's hazard worst case (Section 5.3), maximising RAW flushes and
// WAR shadows — and still demands bit-identical results.
func TestDifferentialSingleFlow(t *testing.T) {
	n := 250
	if testing.Short() {
		n = 60
	}
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := app.Traffic
			cfg.Flows = 1
			cfg.Seed = 7
			packets := pktgen.NewGenerator(cfg).Batch(n)
			if err := DiffApp(app, packets, Config{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialTracedRunIsIdentical proves the zero-interference
// contract of the observability layer: a traced, metered pipeline run
// produces exactly the same verdicts, bytes and map state as the
// reference — instrumentation observes, never perturbs.
func TestDifferentialTracedRunIsIdentical(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 40
	}
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := app.Traffic
			cfg.Seed = 0xC0FFEE
			packets := pktgen.NewGenerator(cfg).Batch(n)
			tr, reg := newTestObs()
			err := DiffApp(app, packets, Config{Sim: hwsim.Config{Trace: tr, Metrics: reg}})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Emitted() == 0 {
				t.Fatal("traced run emitted no events")
			}
		})
	}
}

// TestDifferentialAblations diffs the firewall under the compiler
// ablations of Section 5.4 — each one reshapes the pipeline and must
// not change its semantics.
func TestDifferentialAblations(t *testing.T) {
	ablations := map[string]core.Options{
		"no-ilp":     {DisableILP: true},
		"no-pruning": {DisablePruning: true},
		"no-fusion":  {DisableFusion: true},
		"no-elision": {DisableBoundsElision: true},
		"no-atomics": {DisableAtomics: true},
	}
	for name, opts := range ablations {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app := mustApp(t, "firewall")
			cfg := app.Traffic
			cfg.Seed = 99
			packets := pktgen.NewGenerator(cfg).Batch(120)
			if err := DiffApp(app, packets, Config{Opts: opts}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
