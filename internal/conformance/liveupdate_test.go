// Differential coverage of the live-update path, in the external test
// package: internal/liveupdate imports conformance's comparators, so
// these runs cannot live in package conformance without a cycle.
//
// The scenario is the paper's motivating one — replace the running NIC
// function with a different program without dropping a packet: the UDP
// firewall is swapped for the leaky-bucket rate limiter mid-run. The
// two programs share no maps, so the swap exercises the cross-program
// path: empty migration, canary against a reference interpreter running
// the NEW program, and the erasure of the canary's side effects on the
// new program's maps at cutover. Every post-cutover verdict is diffed
// against the reference (the full remaining traffic, not a sample).
package conformance_test

import (
	"errors"
	"reflect"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/conformance"
	"ehdl/internal/core"
	"ehdl/internal/faults"
	"ehdl/internal/liveupdate"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

// crossUpdateShell builds a firewall shell with a leakybucket update
// armed after `after` packets, post-verifying `verify` verdicts.
func crossUpdateShell(t *testing.T, after, verify int, mutate func(*liveupdate.Config)) *nic.Shell {
	t.Helper()
	fw, _ := apps.ByName("firewall")
	prog, err := fw.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := nic.New(pl, nic.ShellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Pin helper time like every conformance run: the leaky bucket reads
	// bpf_ktime, and the pipelined engine executes it cycles after the
	// reference does — a pinned clock makes the diff about pipelining
	// and migration, never about time skew.
	sh.PinClock(0)

	lb, _ := apps.ByName("leakybucket")
	lbProg, err := lb.Program()
	if err != nil {
		t.Fatal(err)
	}
	ucfg := liveupdate.Config{
		Prog:                lbProg,
		Setup:               lb.SetupHost,
		CanaryFrac:          1,
		CanaryPackets:       8,
		CanaryDeadlineTicks: 20000,
		PostVerifyPackets:   verify,
	}
	if mutate != nil {
		mutate(&ucfg)
	}
	if err := sh.ScheduleUpdate(after, ucfg); err != nil {
		t.Fatal(err)
	}
	return sh
}

func crossTraffic() *pktgen.Generator {
	// Few flows: the firewall sees established hits, the rate limiter
	// sees same-source bucket pressure (its hazard worst case).
	return pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 321})
}

// TestCrossProgramUpdateConformance swaps the firewall for the rate
// limiter mid-run and requires the swap to be differentially clean:
// zero packets dropped, and every one of the 200 post-cutover verdicts
// bit-for-bit equal to the reference interpreter running the new
// program from the same (here: freshly set up) state.
func TestCrossProgramUpdateConformance(t *testing.T) {
	sh := crossUpdateShell(t, 100, 200, nil)
	rep, err := sh.RunLoad(crossTraffic().Next, 500, 250e6/8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesCompleted != 1 {
		t.Fatalf("cross-program update did not complete: stage=%q failure=%q",
			rep.UpdateStage, rep.UpdateFailure)
	}
	if rep.Lost != 0 || rep.Received != rep.Sent {
		t.Fatalf("swap dropped packets: lost=%d received=%d sent=%d", rep.Lost, rep.Received, rep.Sent)
	}
	if rep.MigratedEntries != 0 {
		t.Fatalf("no maps are shared, yet %d entries migrated", rep.MigratedEntries)
	}
	if rep.CanariedPackets < 8 || rep.CanaryDivergences != 0 {
		t.Fatalf("canary: %d packets, %d divergences", rep.CanariedPackets, rep.CanaryDivergences)
	}
	if rep.PostVerifyChecked != 200 || rep.PostVerifyDivergences != 0 {
		t.Fatalf("post-cutover conformance: %d checked, %d diverged",
			rep.PostVerifyChecked, rep.PostVerifyDivergences)
	}
	// The serving pipeline is now the rate limiter: its maps must exist
	// and the firewall's must be gone.
	if _, ok := sh.Maps().ByName("bucket"); !ok {
		t.Fatal("new pipeline lacks the rate limiter's bucket map")
	}
	if _, ok := sh.Maps().ByName("conn"); ok {
		t.Fatal("old pipeline's conn map survived the swap")
	}
}

// TestCrossProgramRollbackKeepsOldVerdicts forces the canary to refute
// the corrupted shadow (an SEU campaign on the rate limiter's maps) and
// requires the firewall's data path to be untouched: verdict for
// verdict and map entry for map entry, the run equals one that never
// attempted the update.
func TestCrossProgramRollbackKeepsOldVerdicts(t *testing.T) {
	sh := crossUpdateShell(t, 100, 200, func(c *liveupdate.Config) {
		c.Sim.Faults = faults.New(faults.Single(faults.SEUMapEntry, 0.5, 13))
	})
	rep, err := sh.RunLoad(crossTraffic().Next, 500, 250e6/8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesRolledBack != 1 {
		t.Fatalf("corrupted shadow not rolled back: stage=%q", rep.UpdateStage)
	}
	if !errors.Is(sh.Update().Err(), liveupdate.ErrCanaryDiverged) {
		t.Fatalf("rollback cause %v, want ErrCanaryDiverged", sh.Update().Err())
	}

	// Control: the same traffic with no update armed.
	fw, _ := apps.ByName("firewall")
	prog, err := fw.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := nic.New(pl, nic.ShellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctl.PinClock(0)
	crep, err := ctl.RunLoad(crossTraffic().Next, 500, 250e6/8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Actions, crep.Actions) {
		t.Fatalf("rolled-back run verdicts %v, control %v", rep.Actions, crep.Actions)
	}
	if err := conformance.CompareMaps(ctl.Maps(), sh.Maps()); err != nil {
		t.Fatalf("rolled-back run map state diverged from control: %v", err)
	}
}
