package conformance

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ehdl/internal/hwsim"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
)

var update = flag.Bool("update", false, "rewrite the golden trace files under testdata/")

// TestGoldenTraces pins the exact cycle-level event stream of two
// canonical runs — the toy example and the firewall, eight packets each
// — as JSONL golden files. A diff here means the pipeline's cycle
// behaviour changed: event ordering, stage timing, hazard handling or
// the trace encoding itself. Regenerate deliberately with
//
//	go test ./internal/conformance -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	for _, name := range []string{"toy", "firewall"} {
		name := name
		t.Run(name, func(t *testing.T) {
			app := mustApp(t, name)
			cfg := app.Traffic
			cfg.Flows = 2 // hazard-dense: same-flow packets back to back
			cfg.Seed = 0x60D
			packets := pktgen.NewGenerator(cfg).Batch(8)

			var buf bytes.Buffer
			sink := obs.NewJSONLSink(&buf)
			tr := obs.NewTracer(0, sink)
			if err := DiffApp(app, packets, Config{Sim: hwsim.Config{Trace: tr}}); err != nil {
				t.Fatal(err)
			}
			if err := tr.Flush(); err != nil {
				t.Fatal(err)
			}

			golden := filepath.Join("testdata", name+".trace.jsonl")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				line := firstDiffLine(buf.Bytes(), want)
				t.Fatalf("trace diverges from %s at line %d:\n got: %s\nwant: %s",
					golden, line, lineAt(buf.Bytes(), line), lineAt(want, line))
			}

			// The committed trace must round-trip through the parser.
			evs, err := obs.ParseJSONL(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden trace does not parse: %v", err)
			}
			if uint64(len(evs)) != tr.Emitted() {
				t.Fatalf("golden trace has %d events, tracer emitted %d", len(evs), tr.Emitted())
			}
		})
	}
}

func firstDiffLine(a, b []byte) int {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return i + 1
		}
	}
	return n + 1
}

func lineAt(b []byte, line int) string {
	ls := bytes.Split(b, []byte("\n"))
	if line-1 < len(ls) {
		return string(ls[line-1])
	}
	return "<eof>"
}
