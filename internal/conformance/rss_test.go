package conformance

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
	"ehdl/internal/rss"
)

// multiQueueRun pushes packets through an rss.Engine at the given queue
// count with the helper clock pinned to zero (matching the rest of the
// suite) and payload retention on, and returns the outcomes indexed by
// global arrival sequence plus the session stats and the merged host
// map view. With fastPath set, every replica must actually run the
// compiled engine — a silent fallback would make the differential
// vacuous, so it fails the test.
func multiQueueRun(t *testing.T, app *apps.App, packets [][]byte, queues int, fastPath bool) ([]Outcome, rss.RunStats, *maps.Set) {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rss.NewEngine(pl, rss.Config{Queues: queues, FastPath: fastPath})
	if err != nil {
		t.Fatal(err)
	}
	if fastPath && !e.FastPath() {
		t.Fatalf("%d queues: engine fell back to the interpreter on an eligible config", queues)
	}
	e.SetClock(func() uint64 { return 0 })
	e.KeepData(true)
	if app.SetupHost != nil {
		if err := app.SetupHost(e.HostMaps()); err != nil {
			t.Fatal(err)
		}
	}

	outs := make([]Outcome, len(packets))
	seen := make([]bool, len(packets))
	completed := 0
	err = e.Start(1, func(c rss.Completion) {
		if c.Seq < uint64(len(outs)) && !seen[c.Seq] {
			seen[c.Seq] = true
			outs[c.Seq] = Outcome{
				Action:          c.Res.Action,
				RedirectIfindex: c.Res.RedirectIfindex,
				Data:            c.Res.Data,
			}
			completed++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packets {
		e.Offer(p)
	}
	rs, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if completed != len(packets) {
		t.Fatalf("%d queues: %d of %d packets completed", queues, completed, len(packets))
	}
	return outs, rs, e.HostMaps()
}

// TestRSSFlowConformance is the scale-out contract: for every
// application, the multi-queue engine at 1, 2, 4 and 8 queues must be
// observationally identical to the single-pipeline simulator on the
// same traffic — per-packet verdicts, redirect targets and rewritten
// bytes match arrival by arrival (which subsumes per-flow sequence
// identity, since flows are pinned to queues and per-queue order is
// preserved), and the merged per-CPU-style map state equals the
// single-pipeline final state entry for entry: counters sum to equal
// totals, flow tables union without conflict.
func TestRSSFlowConformance(t *testing.T) {
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			cfg := app.Traffic
			if cfg.Flows < 32 {
				// Enough distinct 5-tuples that every indirection bucket
				// class is exercised and all queues see traffic.
				cfg.Flows = 32
			}
			cfg.Seed = 0x55aa
			packets := pktgen.NewGenerator(cfg).Batch(240)

			prog, err := app.Program()
			if err != nil {
				t.Fatal(err)
			}
			base, baseMaps, err := runPipeline(prog, app.SetupHost, packets, Config{})
			if err != nil {
				t.Fatal(err)
			}

			for _, queues := range []int{1, 2, 4, 8} {
				outs, rs, merged := multiQueueRun(t, app, packets, queues, false)
				if rs.MergeConflicts != 0 {
					t.Fatalf("%d queues: %d merge conflicts (flow pinning violated)", queues, rs.MergeConflicts)
				}
				var steered uint64
				active := 0
				for _, qs := range rs.PerQueue {
					steered += qs.Steered
					if qs.Steered > 0 {
						active++
					}
				}
				if steered != uint64(len(packets)) {
					t.Fatalf("%d queues: steered %d of %d arrivals", queues, steered, len(packets))
				}
				if queues > 1 && active < 2 {
					t.Fatalf("%d queues: traffic collapsed onto %d queue(s)", queues, active)
				}
				for i := range packets {
					if err := CompareOutcome(outs[i], base[i]); err != nil {
						flow, _ := pktgen.ParseFlow(packets[i])
						t.Fatalf("%d queues: packet %d (flow %+v): %v", queues, i, flow, err)
					}
				}
				if err := CompareMaps(baseMaps, merged); err != nil {
					t.Fatalf("%d queues: merged state: %v", queues, err)
				}
			}
		})
	}
}

// TestRSSFastPathConformance is the multi-queue leg of the three-way
// differential: for every application at 1, 2, 4 and 8 queues, a fleet
// of compiled replicas must be observationally identical both to the
// interpreted fleet on the same traffic and to the single-pipeline
// reference — per-arrival verdicts, redirect targets and rewritten
// bytes, and the merged host map state entry for entry. Run under
// -race (the Makefile test gate does) this also exercises concurrent
// compiled replicas sharing read-only maps across worker goroutines.
func TestRSSFastPathConformance(t *testing.T) {
	for _, app := range AllApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			cfg := app.Traffic
			if cfg.Flows < 32 {
				cfg.Flows = 32
			}
			cfg.Seed = 0x55aa
			packets := pktgen.NewGenerator(cfg).Batch(240)

			prog, err := app.Program()
			if err != nil {
				t.Fatal(err)
			}
			base, baseMaps, err := runPipeline(prog, app.SetupHost, packets, Config{})
			if err != nil {
				t.Fatal(err)
			}

			for _, queues := range []int{1, 2, 4, 8} {
				fastOuts, _, fastMerged := multiQueueRun(t, app, packets, queues, true)
				interpOuts, _, interpMerged := multiQueueRun(t, app, packets, queues, false)
				for i := range packets {
					if err := CompareOutcome(fastOuts[i], base[i]); err != nil {
						t.Fatalf("%d queues: packet %d vs reference: %v", queues, i, err)
					}
					if err := CompareOutcome(fastOuts[i], interpOuts[i]); err != nil {
						t.Fatalf("%d queues: packet %d vs interpreted fleet: %v", queues, i, err)
					}
				}
				if err := CompareMaps(baseMaps, fastMerged); err != nil {
					t.Fatalf("%d queues: merged state vs reference: %v", queues, err)
				}
				if err := CompareMaps(interpMerged, fastMerged); err != nil {
					t.Fatalf("%d queues: merged state vs interpreted fleet: %v", queues, err)
				}
			}
		})
	}
}

// queueSteerEvents drives a short multi-queue load with a traced
// dispatcher: every arrival emits one KindQueueSteer event, including
// the queue-0 fallback for a malformed frame.
func queueSteerEvents(t *testing.T) []obs.Event {
	t.Helper()
	app := mustApp(t, "toy")
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, sink := memTracer()
	e, err := rss.NewEngine(pl, rss.Config{Queues: 2, Sim: hwsim.Config{Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetClock(func() uint64 { return 0 })
	if app.SetupHost != nil {
		if err := app.SetupHost(e.HostMaps()); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Start(1, nil); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 21})
	for i := 0; i < 16; i++ {
		e.Offer(gen.Next())
	}
	e.Offer([]byte{1, 2, 3}) // malformed: queue-0 fallback, hash 0
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	return sink.Events()
}

// TestQueueSteerEvents checks the steer event contract: one event per
// arrival, sequential global Seq, queue in range in Aux, and the
// malformed fallback recorded as queue 0 with hash 0.
func TestQueueSteerEvents(t *testing.T) {
	var steers []obs.Event
	for _, ev := range queueSteerEvents(t) {
		if ev.Kind == obs.KindQueueSteer {
			steers = append(steers, ev)
		}
	}
	if len(steers) != 17 {
		t.Fatalf("%d steer events, want 17 (one per arrival)", len(steers))
	}
	for i, ev := range steers {
		if ev.Seq != int64(i) {
			t.Fatalf("steer %d carries Seq %d, want the global arrival index", i, ev.Seq)
		}
		if ev.Aux >= 2 {
			t.Fatalf("steer %d names queue %d of a 2-queue engine", i, ev.Aux)
		}
	}
	last := steers[len(steers)-1]
	if last.Aux != 0 || last.Aux2 != 0 {
		t.Fatalf("malformed frame steered to queue %d hash %#x, want the queue-0/hash-0 fallback", last.Aux, last.Aux2)
	}
}
