// Package conformance is the differential test surface across the three
// execution engines: every evaluation application runs the same seeded
// traffic through the reference interpreter (internal/vm), the
// cycle-accurate pipeline simulator (internal/hwsim) and the compiled
// host fast path (internal/fastpath), and all of them must agree bit
// for bit on verdicts, packet bytes and final map state.
//
// The architectural contract that makes this possible: the engines
// share the instruction semantics (vm.ExecALU and friends), the map
// substrate (internal/maps) and the helper surface, and all pin the
// helper-visible clock to zero here, so a divergence is always a
// pipelining or specialization bug (hazard handling, state pruning,
// predication, closure compilation), never an environmental artefact.
package conformance

import (
	"bytes"
	"fmt"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/fastpath"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/vm"
)

// Config parameterises one differential run.
type Config struct {
	// Opts is the compiler configuration for the pipeline side.
	Opts core.Options
	// Sim is the simulator configuration. The clock is pinned to zero
	// regardless, matching the reference side.
	Sim hwsim.Config
	// MaxCycles bounds the pipeline drain. 0 means 1<<22.
	MaxCycles uint64
}

func (c Config) maxCycles() uint64 {
	if c.MaxCycles == 0 {
		return 1 << 22
	}
	return c.MaxCycles
}

// Outcome is one packet's result on one engine.
type Outcome struct {
	Action          ebpf.XDPAction
	RedirectIfindex uint32
	Data            []byte
}

// DiffApp assembles an application and diffs it on the given traffic.
func DiffApp(a *apps.App, packets [][]byte, cfg Config) error {
	prog, err := a.Program()
	if err != nil {
		return err
	}
	return DiffProgram(prog, a.SetupHost, packets, cfg)
}

// DiffAppThreeWay assembles an application and runs the three-way
// vm <-> interpreter <-> fastpath differential on the given traffic.
func DiffAppThreeWay(a *apps.App, packets [][]byte, cfg Config) error {
	prog, err := a.Program()
	if err != nil {
		return err
	}
	return DiffProgramThreeWay(prog, a.SetupHost, packets, cfg)
}

// DiffProgramThreeWay runs packets through the reference interpreter,
// the cycle-accurate simulator and the compiled fast path, and returns
// an error describing the first divergence between any pair: verdicts,
// redirect targets, packet bytes and the final map state must all be
// identical on all three engines.
func DiffProgramThreeWay(prog *ebpf.Program, setup func(*maps.Set) error, packets [][]byte, cfg Config) error {
	refs, refMaps, err := runReference(prog, setup, packets)
	if err != nil {
		return fmt.Errorf("conformance: reference: %w", err)
	}
	outs, simMaps, err := runPipeline(prog, setup, packets, cfg)
	if err != nil {
		return fmt.Errorf("conformance: pipeline: %w", err)
	}
	fasts, fastMaps, err := runFastPath(prog, setup, packets, cfg)
	if err != nil {
		return fmt.Errorf("conformance: fastpath: %w", err)
	}
	for i := range packets {
		if err := CompareOutcome(outs[i], refs[i]); err != nil {
			return fmt.Errorf("conformance: pipeline vs reference: packet %d (%dB): %w", i, len(packets[i]), err)
		}
		if err := CompareOutcome(fasts[i], refs[i]); err != nil {
			return fmt.Errorf("conformance: fastpath vs reference: packet %d (%dB): %w", i, len(packets[i]), err)
		}
		if err := CompareOutcome(fasts[i], outs[i]); err != nil {
			return fmt.Errorf("conformance: fastpath vs pipeline: packet %d (%dB): %w", i, len(packets[i]), err)
		}
	}
	if err := CompareMaps(refMaps, simMaps); err != nil {
		return fmt.Errorf("pipeline vs reference: %w", err)
	}
	if err := CompareMaps(refMaps, fastMaps); err != nil {
		return fmt.Errorf("fastpath vs reference: %w", err)
	}
	return CompareMaps(simMaps, fastMaps)
}

// DiffProgramFastPath runs packets through the cycle-accurate
// interpreter and the compiled fast path only (no vm reference). The
// fuzzer uses it as an exact oracle: both engines implement the
// hardware bounds check identically, so they must agree on every input,
// including malformed frames the elision-aware vm oracle cannot judge.
func DiffProgramFastPath(prog *ebpf.Program, setup func(*maps.Set) error, packets [][]byte, cfg Config) error {
	outs, simMaps, err := runPipeline(prog, setup, packets, cfg)
	if err != nil {
		return fmt.Errorf("conformance: pipeline: %w", err)
	}
	fasts, fastMaps, err := runFastPath(prog, setup, packets, cfg)
	if err != nil {
		return fmt.Errorf("conformance: fastpath: %w", err)
	}
	for i := range packets {
		if err := CompareOutcome(fasts[i], outs[i]); err != nil {
			return fmt.Errorf("conformance: fastpath vs pipeline: packet %d (%dB): %w", i, len(packets[i]), err)
		}
	}
	return CompareMaps(simMaps, fastMaps)
}

// DiffProgram runs packets through the reference interpreter and the
// pipeline simulator and returns an error describing the first
// divergence: verdicts, redirect targets, packet bytes, and the final
// map state must all be identical.
func DiffProgram(prog *ebpf.Program, setup func(*maps.Set) error, packets [][]byte, cfg Config) error {
	refs, refMaps, err := runReference(prog, setup, packets)
	if err != nil {
		return fmt.Errorf("conformance: reference: %w", err)
	}
	outs, simMaps, err := runPipeline(prog, setup, packets, cfg)
	if err != nil {
		return fmt.Errorf("conformance: pipeline: %w", err)
	}

	for i := range packets {
		if err := CompareOutcome(outs[i], refs[i]); err != nil {
			return fmt.Errorf("conformance: packet %d (%dB): %w", i, len(packets[i]), err)
		}
	}
	return CompareMaps(refMaps, simMaps)
}

// CompareOutcome diffs one packet's result against the reference:
// verdict, redirect target and final packet bytes must all match. The
// live-update canary uses it packet by packet to judge the shadow
// pipeline against a reference interpreter running the new program.
func CompareOutcome(got, ref Outcome) error {
	if got.Action != ref.Action {
		return fmt.Errorf("action %v, reference %v", got.Action, ref.Action)
	}
	if got.RedirectIfindex != ref.RedirectIfindex {
		return fmt.Errorf("redirect ifindex %d, reference %d", got.RedirectIfindex, ref.RedirectIfindex)
	}
	if !bytes.Equal(got.Data, ref.Data) {
		return fmt.Errorf("packet bytes diverge")
	}
	return nil
}

// runReference executes every packet on the interpreter, in order, over
// one shared environment (maps persist across packets, as on the NIC).
func runReference(prog *ebpf.Program, setup func(*maps.Set) error, packets [][]byte) ([]Outcome, *maps.Set, error) {
	env, err := vm.NewEnv(prog)
	if err != nil {
		return nil, nil, err
	}
	env.Now = func() uint64 { return 0 }
	if setup != nil {
		if err := setup(env.Maps); err != nil {
			return nil, nil, err
		}
	}
	machine, err := vm.New(prog, env)
	if err != nil {
		return nil, nil, err
	}
	outs := make([]Outcome, len(packets))
	for i, data := range packets {
		p := vm.NewPacket(data)
		res, err := machine.Run(p)
		if err != nil {
			return nil, nil, fmt.Errorf("packet %d: %w", i, err)
		}
		outs[i] = Outcome{
			Action:          res.Action,
			RedirectIfindex: res.RedirectIfindex,
			Data:            append([]byte(nil), p.Bytes()...),
		}
	}
	return outs, env.Maps, nil
}

// runPipeline compiles and executes every packet on the cycle-accurate
// simulator, injecting with input backpressure like a paced generator.
func runPipeline(prog *ebpf.Program, setup func(*maps.Set) error, packets [][]byte, cfg Config) ([]Outcome, *maps.Set, error) {
	pl, err := core.Compile(prog, cfg.Opts)
	if err != nil {
		return nil, nil, fmt.Errorf("compile: %w", err)
	}
	sim, err := hwsim.New(pl, cfg.Sim)
	if err != nil {
		return nil, nil, err
	}
	return runEngine(sim, setup, packets, cfg.maxCycles())
}

// runFastPath compiles and executes every packet on the compiled host
// fast path, driven through the same paced-generator loop as the
// interpreter so the two runs see identical injection schedules.
func runFastPath(prog *ebpf.Program, setup func(*maps.Set) error, packets [][]byte, cfg Config) ([]Outcome, *maps.Set, error) {
	pl, err := core.Compile(prog, cfg.Opts)
	if err != nil {
		return nil, nil, fmt.Errorf("compile: %w", err)
	}
	m, err := fastpath.New(pl, cfg.Sim)
	if err != nil {
		return nil, nil, err
	}
	return runEngine(m, setup, packets, cfg.maxCycles())
}

// runEngine drives one execution engine — interpreter or fast path —
// over the traffic with input backpressure like a paced generator.
func runEngine(eng hwsim.Core, setup func(*maps.Set) error, packets [][]byte, maxCycles uint64) ([]Outcome, *maps.Set, error) {
	eng.SetClock(func() uint64 { return 0 })
	eng.KeepData(true)
	if setup != nil {
		if err := setup(eng.Maps()); err != nil {
			return nil, nil, err
		}
	}
	outs := make([]Outcome, len(packets))
	seen := make([]bool, len(packets))
	completed := 0
	eng.OnComplete(func(res hwsim.Result) {
		if res.Seq < uint64(len(outs)) && !seen[res.Seq] {
			seen[res.Seq] = true
			outs[res.Seq] = Outcome{
				Action:          res.Action,
				RedirectIfindex: res.RedirectIfindex,
				Data:            res.Data,
			}
			completed++
		}
	})
	for i, data := range packets {
		for !eng.InputFree() {
			if err := eng.Step(); err != nil {
				return nil, nil, fmt.Errorf("packet %d: %w", i, err)
			}
		}
		eng.Inject(data)
		if err := eng.Step(); err != nil {
			return nil, nil, fmt.Errorf("packet %d: %w", i, err)
		}
	}
	if err := eng.RunToCompletion(maxCycles); err != nil {
		return nil, nil, err
	}
	if completed != len(packets) {
		return nil, nil, fmt.Errorf("%d of %d packets completed", completed, len(packets))
	}
	return outs, eng.Maps(), nil
}

// CompareMaps compares two map sets entry by entry, got against ref.
func CompareMaps(ref, got *maps.Set) error {
	if ref.Len() != got.Len() {
		return fmt.Errorf("conformance: %d maps, reference %d", got.Len(), ref.Len())
	}
	for id := 0; id < ref.Len(); id++ {
		rm, _ := ref.ByID(id)
		gm, _ := got.ByID(id)
		if rm.Len() != gm.Len() {
			return fmt.Errorf("conformance: map %d (%s): %d entries, reference %d",
				id, rm.Spec().Name, gm.Len(), rm.Len())
		}
		var diff error
		rm.Iterate(func(k, v []byte) bool {
			gv, ok := gm.Lookup(k)
			if !ok || !bytes.Equal(gv, v) {
				diff = fmt.Errorf("conformance: map %d (%s) key %x: %x, reference %x",
					id, rm.Spec().Name, k, gv, v)
				return false
			}
			return true
		})
		if diff != nil {
			return diff
		}
	}
	return nil
}

// AllApps returns the full conformance surface: the paper's five
// evaluation applications plus the toy example, the leaky bucket and
// the load balancer.
func AllApps() []*apps.App {
	names := []string{"toy", "leakybucket", "loadbalancer"}
	out := apps.All()
	for _, n := range names {
		a, ok := apps.ByName(n)
		if !ok {
			panic("conformance: unknown app " + n)
		}
		out = append(out, a)
	}
	return out
}
