// Chaos harness: every evaluation app under every fault class at once.
// The properties proved here are the robustness contract of the design:
// the NIC shell never errors or panics under fault injection, every
// verdict stays a legal XDP action, every fault is counted, the same
// seed reproduces the same campaign bit for bit, and with faults
// disabled the pipeline remains bit-for-bit equivalent to the reference
// VM.
package faults_test

import (
	"bytes"
	"reflect"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

func chaosApps() []*apps.App {
	return append(apps.All(), apps.Toy(), apps.LeakyBucket())
}

// chaosRun drives one campaign through the NIC shell and returns the
// traffic report plus the injector's final counters.
func chaosRun(t *testing.T, app *apps.App, fc faults.Config, packets int) (nic.Report, faults.Counters, hwsim.Stats) {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := nic.ShellConfig{Faults: fc}
	// A generous watchdog: it must never fire on survivable fault
	// campaigns, but it bounds the damage if injection ever wedges the
	// pipeline.
	cfg.Sim.WatchdogCycles = 100000
	sh, err := nic.New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sh.Maps()); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, packets, sh.LineRateMpps(64)*1e6)
	if err != nil {
		t.Fatalf("%s: campaign errored instead of degrading: %v", app.Name, err)
	}
	var ctr faults.Counters
	if sh.Injector() != nil {
		ctr = sh.Injector().Counters()
	}
	return rep, ctr, sh.Sim().Stats()
}

func checkLegalActions(t *testing.T, name string, rep nic.Report) {
	t.Helper()
	for action, n := range rep.Actions {
		if action > ebpf.XDPRedirect && n > 0 {
			t.Errorf("%s: %d packets retired with illegal verdict %d", name, n, action)
		}
	}
}

func TestChaosSmokeEveryApp(t *testing.T) {
	// The always-on smoke slice of the campaign: every app, full chaos
	// profile, enough packets for every class to fire.
	for _, app := range chaosApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			rep, ctr, _ := chaosRun(t, app, faults.Profile(1.0, 11), 1500)
			checkLegalActions(t, app.Name, rep)
			if rep.Received == 0 {
				t.Fatal("pipeline answered nothing under chaos")
			}
			if ctr.Total() == 0 {
				t.Fatal("chaos profile injected no faults")
			}
			// Every fault the injector recorded is visible in the report:
			// pipeline faults, damaged frames and ingress bursts add up.
			if got := rep.FaultsInjected + rep.MalformedSent + rep.OverflowBursts; got != ctr.Total() {
				t.Errorf("report accounts %d faults, injector recorded %d (%s)", got, ctr.Total(), ctr)
			}
			if rep.WatchdogTrips != 0 {
				t.Errorf("watchdog tripped %d times on a survivable campaign", rep.WatchdogTrips)
			}
		})
	}
}

func TestChaosCampaignIntensitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign sweep skipped in short mode")
	}
	for _, intensity := range []float64{0.25, 0.5, 1.0} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, app := range chaosApps() {
				rep, ctr, _ := chaosRun(t, app, faults.Profile(intensity, seed), 2500)
				checkLegalActions(t, app.Name, rep)
				if rep.Received == 0 {
					t.Errorf("%s: intensity %.2f seed %d: pipeline answered nothing",
						app.Name, intensity, seed)
				}
				if got := rep.FaultsInjected + rep.MalformedSent + rep.OverflowBursts; got != ctr.Total() {
					t.Errorf("%s: intensity %.2f seed %d: %d faults reported, %d recorded",
						app.Name, intensity, seed, got, ctr.Total())
				}
			}
		}
	}
}

func TestChaosSameSeedReproducesBitForBit(t *testing.T) {
	// The acceptance property of the subsystem: an identical seed
	// reproduces identical fault sites, so the final simulator stats,
	// traffic report and per-class fault counters all match exactly.
	for _, app := range []*apps.App{apps.Firewall(), apps.DNAT()} {
		rep1, ctr1, st1 := chaosRun(t, app, faults.Profile(1.0, 99), 2000)
		rep2, ctr2, st2 := chaosRun(t, app, faults.Profile(1.0, 99), 2000)
		if !reflect.DeepEqual(rep1, rep2) {
			t.Errorf("%s: reports diverged across same-seed runs:\n%+v\n%+v", app.Name, rep1, rep2)
		}
		if ctr1 != ctr2 {
			t.Errorf("%s: fault counters diverged: %s vs %s", app.Name, ctr1, ctr2)
		}
		if !reflect.DeepEqual(st1, st2) {
			t.Errorf("%s: simulator stats diverged:\n%+v\n%+v", app.Name, st1, st2)
		}
		// And a different seed takes a different trajectory (sanity that
		// the comparison above can fail at all).
		rep3, _, _ := chaosRun(t, app, faults.Profile(1.0, 100), 2000)
		if reflect.DeepEqual(rep1, rep3) {
			t.Errorf("%s: different seeds produced identical reports", app.Name)
		}
	}
}

func TestChaosDisabledIsBitForBitEquivalent(t *testing.T) {
	// With every fault rate zero the injector must be inert end to end:
	// the pipeline stays bit-for-bit equivalent to the reference VM in
	// verdicts, redirect targets and output bytes.
	for _, app := range chaosApps() {
		prog, err := app.Program()
		if err != nil {
			t.Fatal(err)
		}
		refEnv, err := vm.NewEnv(prog)
		if err != nil {
			t.Fatal(err)
		}
		refEnv.Now = func() uint64 { return 0 }
		if err := app.Setup(refEnv.Maps); err != nil {
			t.Fatal(err)
		}
		machine, err := vm.New(prog, refEnv)
		if err != nil {
			t.Fatal(err)
		}
		cfg := app.Traffic
		cfg.Seed = 31
		packets := pktgen.NewGenerator(cfg).Batch(400)

		type refOut struct {
			action ebpf.XDPAction
			data   []byte
		}
		refs := make([]refOut, len(packets))
		for i, data := range packets {
			pkt := vm.NewPacket(data)
			res, err := machine.Run(pkt)
			if err != nil {
				t.Fatalf("%s: reference packet %d: %v", app.Name, i, err)
			}
			refs[i] = refOut{action: res.Action, data: append([]byte(nil), pkt.Bytes()...)}
		}

		pl, err := core.Compile(prog, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Disabled faults, but the whole plumbing configured: a zero-rate
		// config and an armed watchdog must not perturb execution.
		shCfg := nic.ShellConfig{Faults: faults.Config{Seed: 5}}
		shCfg.Sim.WatchdogCycles = 100000
		sh, err := nic.New(pl, shCfg)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Injector() != nil {
			t.Fatalf("%s: zero-rate config built an injector", app.Name)
		}
		if err := app.Setup(sh.Maps()); err != nil {
			t.Fatal(err)
		}
		sim := sh.Sim()
		sim.KeepData(true)
		sh.PinClock(0)
		var results []hwsim.Result
		sim.OnComplete(func(r hwsim.Result) { results = append(results, r) })
		for _, data := range packets {
			for !sim.InputFree() {
				if err := sim.Step(); err != nil {
					t.Fatal(err)
				}
			}
			sim.Inject(data)
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.RunToCompletion(1 << 22); err != nil {
			t.Fatal(err)
		}
		if len(results) != len(packets) {
			t.Fatalf("%s: completed %d of %d", app.Name, len(results), len(packets))
		}
		for _, r := range results {
			if r.Action != refs[r.Seq].action {
				t.Fatalf("%s: packet %d action %v, reference %v", app.Name, r.Seq, r.Action, refs[r.Seq].action)
			}
			if !bytes.Equal(r.Data, refs[r.Seq].data) {
				t.Fatalf("%s: packet %d bytes diverged with faults disabled", app.Name, r.Seq)
			}
		}
		st := sim.Stats()
		if st.FaultsInjected != 0 || st.MalformedDropped != 0 || st.AbortedFaults != 0 || st.WatchdogTrips != 0 {
			t.Errorf("%s: resilience counters moved with faults disabled: %+v", app.Name, st)
		}
	}
}

func TestChaosPerClassEveryApp(t *testing.T) {
	// Each fault class alone, against every app: isolates a regression to
	// the class that caused it.
	if testing.Short() {
		t.Skip("per-class chaos matrix skipped in short mode")
	}
	rates := map[faults.Class]float64{
		faults.SEURegister:      0.02,
		faults.SEUStack:         0.02,
		faults.SEUPacket:        0.02,
		faults.SEUMapEntry:      0.01,
		faults.MalformedTraffic: 0.2,
		faults.QueueOverflow:    0.002,
		faults.FlushStorm:       0.01,
	}
	for _, class := range faults.Classes() {
		for _, app := range chaosApps() {
			rep, ctr, _ := chaosRun(t, app, faults.Single(class, rates[class], 17), 1200)
			checkLegalActions(t, app.Name, rep)
			if rep.Received == 0 {
				t.Errorf("%s/%s: pipeline answered nothing", app.Name, class)
			}
			for _, other := range faults.Classes() {
				if other != class && ctr.ByClass[other] != 0 {
					t.Errorf("%s/%s: class %s fired in a single-class campaign", app.Name, class, other)
				}
			}
			// Flush storms need a flush-protected map; the other classes
			// must actually fire everywhere at these rates.
			if class != faults.FlushStorm && ctr.ByClass[class] == 0 {
				t.Errorf("%s/%s: class never fired", app.Name, class)
			}
		}
	}
}
