// Package faults is the deterministic fault-injection subsystem of the
// simulated NIC: a seeded source of hardware and traffic faults that
// the pipeline simulator (internal/hwsim), the NIC shell (internal/nic)
// and the packet generator accept via configuration.
//
// Real FPGA pipelines treat soft errors as first-class events: single
// event upsets flip bits in live registers and BRAM, the MAC delivers
// truncated and oversize frames, and ingress queues overflow under
// bursts. The injector models those classes with per-cycle (or
// per-packet) probabilities drawn from one seeded PRNG, so a fault
// campaign is bit-reproducible: the same seed produces the same fault
// sites and the same final counters on every run.
//
// The injector only decides; the subsystem that owns the state applies
// the fault and records it with Note, which keeps this package free of
// simulator dependencies and keeps every applied fault visible in a
// counter.
package faults

import (
	"fmt"
	"math/rand"
	"strings"

	"ehdl/internal/pktgen"
)

// Class identifies one fault class.
type Class int

// Fault classes.
const (
	// SEURegister flips one bit of a live packet-frame register.
	SEURegister Class = iota
	// SEUStack flips one bit of an in-flight packet's stack frame.
	SEUStack
	// SEUPacket flips one bit of in-flight packet data.
	SEUPacket
	// SEUMapEntry flips one bit of a stored map value.
	SEUMapEntry
	// MalformedTraffic replaces a generated frame with a malformed one
	// (truncated headers, bogus length fields, runt/jumbo frames).
	MalformedTraffic
	// QueueOverflow injects an ingress burst sized to overflow the
	// input queue.
	QueueOverflow
	// FlushStorm forces a spurious flush-evaluation verdict, recalling
	// and replaying the packets in the hazard window.
	FlushStorm
	// NumClasses is the number of fault classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case SEURegister:
		return "seu-register"
	case SEUStack:
		return "seu-stack"
	case SEUPacket:
		return "seu-packet"
	case SEUMapEntry:
		return "seu-map"
	case MalformedTraffic:
		return "malformed"
	case QueueOverflow:
		return "overflow"
	case FlushStorm:
		return "flush-storm"
	}
	return "fault-?"
}

// Classes returns every fault class in a stable order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Config parameterises an injector. All rates are probabilities in
// [0, 1]: per simulated clock cycle for the SEU, overflow and
// flush-storm classes, per generated packet for MalformedTraffic.
type Config struct {
	// Seed drives every random decision. Two injectors with the same
	// Config produce the same fault sequence. Every class derives its
	// own stream from this one seed (see Injector).
	Seed int64

	SEURegisterRate float64
	SEUStackRate    float64
	SEUPacketRate   float64
	SEUMapEntryRate float64
	MalformRate     float64
	OverflowRate    float64
	FlushStormRate  float64

	// OverflowBurstLen is the number of frames per injected ingress
	// burst. 0 means 64.
	OverflowBurstLen int
}

// Rate returns the configured probability for a class.
func (c Config) Rate(class Class) float64 {
	switch class {
	case SEURegister:
		return c.SEURegisterRate
	case SEUStack:
		return c.SEUStackRate
	case SEUPacket:
		return c.SEUPacketRate
	case SEUMapEntry:
		return c.SEUMapEntryRate
	case MalformedTraffic:
		return c.MalformRate
	case QueueOverflow:
		return c.OverflowRate
	case FlushStorm:
		return c.FlushStormRate
	}
	return 0
}

// Enabled reports whether any fault class has a non-zero rate.
func (c Config) Enabled() bool {
	for _, class := range Classes() {
		if c.Rate(class) > 0 {
			return true
		}
	}
	return false
}

// BurstLen returns the ingress burst size.
func (c Config) BurstLen() int {
	if c.OverflowBurstLen <= 0 {
		return 64
	}
	return c.OverflowBurstLen
}

// Fork derives a configuration whose injector draws streams unrelated
// to this one's while staying a pure function of the original seed: the
// shell hands a forked campaign to a shadow pipeline during a live
// update, so the shadow faces the same fault classes and rates without
// perturbing (or copying) the serving pipeline's fault sites. Distinct
// tags give distinct streams.
func (c Config) Fork(tag int64) Config {
	const phi = int64(-0x61c8864680b583eb) // golden-ratio increment as int64
	c.Seed = splitmix(c.Seed ^ (tag+1)*phi)
	return c
}

// Profile returns the canonical chaos profile scaled by intensity in
// (0, 1]: at 1.0 roughly one SEU per few hundred cycles per class, one
// malformed frame per ~30 packets, and occasional overflow bursts and
// flush storms. Intensity 0 (or below) disables everything.
func Profile(intensity float64, seed int64) Config {
	if intensity < 0 {
		intensity = 0
	}
	return Config{
		Seed:            seed,
		SEURegisterRate: 0.004 * intensity,
		SEUStackRate:    0.004 * intensity,
		SEUPacketRate:   0.004 * intensity,
		SEUMapEntryRate: 0.002 * intensity,
		MalformRate:     0.03 * intensity,
		OverflowRate:    0.0005 * intensity,
		FlushStormRate:  0.001 * intensity,
	}
}

// Single returns a configuration exercising exactly one fault class at
// the given rate, for per-class resilience campaigns.
func Single(class Class, rate float64, seed int64) Config {
	c := Config{Seed: seed}
	switch class {
	case SEURegister:
		c.SEURegisterRate = rate
	case SEUStack:
		c.SEUStackRate = rate
	case SEUPacket:
		c.SEUPacketRate = rate
	case SEUMapEntry:
		c.SEUMapEntryRate = rate
	case MalformedTraffic:
		c.MalformRate = rate
	case QueueOverflow:
		c.OverflowRate = rate
	case FlushStorm:
		c.FlushStormRate = rate
	}
	return c
}

// Counters aggregates the faults an injector's owners applied.
type Counters struct {
	ByClass [NumClasses]uint64
}

// Total returns the number of applied faults across all classes.
func (c Counters) Total() uint64 {
	var n uint64
	for _, v := range c.ByClass {
		n += v
	}
	return n
}

func (c Counters) String() string {
	var parts []string
	for _, class := range Classes() {
		if n := c.ByClass[class]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", class, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Injector is one seeded fault source. It is not safe for concurrent
// use; the cycle-driven simulator consults it from a single goroutine.
//
// Every fault class owns an independent PRNG stream derived from the
// single configured seed. That makes a campaign byte-for-byte
// reproducible at the granularity of one class: a class's decision and
// fault-site sequence depends only on how often that class was
// consulted, never on how its draws interleave with other classes or
// other consumers (the NIC shell rolls for ingress bursts and malformed
// frames while the pipeline simulator rolls for SEUs and flush storms,
// and a live update adds a second pipeline mid-run — none of them can
// shift another's fault sites).
type Injector struct {
	cfg Config
	rng [NumClasses]*rand.Rand
	ctr Counters
}

// splitmix is the SplitMix64 finalizer, used to spread correlated seeds
// (consecutive integers, per-class offsets) into unrelated PRNG seeds.
func splitmix(v int64) int64 {
	z := uint64(v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// New builds an injector for the configuration.
func New(cfg Config) *Injector {
	i := &Injector{cfg: cfg}
	for class := range i.rng {
		i.rng[class] = rand.New(rand.NewSource(splitmix(cfg.Seed + 1 + int64(class))))
	}
	return i
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// Fork builds a new injector over Config.Fork(tag): same classes and
// rates, unrelated streams, fully determined by this injector's seed.
func (i *Injector) Fork(tag int64) *Injector { return New(i.cfg.Fork(tag)) }

// Roll decides whether to inject one fault of the class now. Disabled
// classes never draw from the PRNG, so the decision stream for the
// enabled classes is independent of which others are switched off.
func (i *Injector) Roll(class Class) bool {
	rate := i.cfg.Rate(class)
	if rate <= 0 {
		return false
	}
	return i.rng[class].Float64() < rate
}

// Intn draws a fault-site index in [0, n) from the class's stream;
// owners use it to pick the victim register, bit, byte or entry
// deterministically after a successful Roll of the same class.
func (i *Injector) Intn(class Class, n int) int {
	if n <= 1 {
		return 0
	}
	return i.rng[class].Intn(n)
}

// Rand exposes the class's stream for owners that need more than an
// index (the malformed-traffic damage functions take a *rand.Rand).
func (i *Injector) Rand(class Class) *rand.Rand { return i.rng[class] }

// Note records one applied fault of the class.
func (i *Injector) Note(class Class) { i.ctr.ByClass[class]++ }

// Counters returns a snapshot of the applied-fault counters.
func (i *Injector) Counters() Counters { return i.ctr }

// BurstLen returns the configured ingress burst size.
func (i *Injector) BurstLen() int { return i.cfg.BurstLen() }

// WrapTraffic wraps a packet source with malformed-traffic injection:
// each generated frame is replaced, with probability MalformRate, by a
// deterministically damaged copy. With a nil injector or a zero rate
// the source is returned unchanged.
func (i *Injector) WrapTraffic(next func() []byte) func() []byte {
	if i == nil || i.cfg.MalformRate <= 0 {
		return next
	}
	return func() []byte {
		pkt := next()
		if !i.Roll(MalformedTraffic) {
			return pkt
		}
		kind := pktgen.MalformKind(i.Intn(MalformedTraffic, int(pktgen.NumMalformKinds)))
		i.Note(MalformedTraffic)
		return pktgen.Malform(pkt, kind, i.rng[MalformedTraffic])
	}
}
