package faults

import (
	"bytes"
	"strings"
	"testing"

	"ehdl/internal/pktgen"
)

func TestRollDeterministic(t *testing.T) {
	cfg := Profile(1.0, 42)
	a, b := New(cfg), New(cfg)
	for i := 0; i < 5000; i++ {
		class := Class(i % int(NumClasses))
		if a.Roll(class) != b.Roll(class) {
			t.Fatalf("draw %d diverged between two injectors with the same seed", i)
		}
		if a.Intn(class, 64) != b.Intn(class, 64) {
			t.Fatalf("site draw %d diverged between two injectors with the same seed", i)
		}
	}
}

func TestDisabledClassesDoNotPerturbTheStream(t *testing.T) {
	// Rolling a disabled class must not consume randomness, so the
	// decision stream for an enabled class is the same whether the other
	// classes are configured or not.
	only := New(Single(SEURegister, 0.5, 9))
	mixed := New(Single(SEURegister, 0.5, 9))
	var a, b []bool
	for i := 0; i < 2000; i++ {
		a = append(a, only.Roll(SEURegister))
		mixed.Roll(FlushStorm) // rate 0: must be a pure no
		if mixed.Roll(FlushStorm) {
			t.Fatal("disabled class fired")
		}
		b = append(b, mixed.Roll(SEURegister))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d changed when disabled classes were interleaved", i)
		}
	}
}

func TestSeedChangesTheStream(t *testing.T) {
	a, b := New(Single(SEUPacket, 0.5, 1)), New(Single(SEUPacket, 0.5, 2))
	same := true
	for i := 0; i < 200; i++ {
		if a.Roll(SEUPacket) != b.Roll(SEUPacket) {
			same = false
		}
	}
	if same {
		t.Error("200 draws identical across different seeds")
	}
}

func TestRollRespectsRates(t *testing.T) {
	inj := New(Single(MalformedTraffic, 0.25, 7))
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if inj.Roll(MalformedTraffic) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("rate 0.25 produced %.3f over %d draws", got, n)
	}
	if New(Config{}).Roll(MalformedTraffic) {
		t.Error("zero-rate class fired")
	}
}

func TestConfigEnabledAndProfiles(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("empty config reports enabled")
	}
	if Profile(0, 1).Enabled() || Profile(-3, 1).Enabled() {
		t.Error("zero/negative intensity must disable everything")
	}
	full := Profile(1.0, 1)
	if !full.Enabled() {
		t.Error("full profile reports disabled")
	}
	half := Profile(0.5, 1)
	for _, class := range Classes() {
		if full.Rate(class) <= 0 {
			t.Errorf("%s: full profile leaves the class off", class)
		}
		if got, want := half.Rate(class), full.Rate(class)/2; got != want {
			t.Errorf("%s: half intensity rate %v, want %v", class, got, want)
		}
	}
	for _, class := range Classes() {
		cfg := Single(class, 0.1, 1)
		for _, other := range Classes() {
			want := 0.0
			if other == class {
				want = 0.1
			}
			if cfg.Rate(other) != want {
				t.Errorf("Single(%s): rate for %s = %v", class, other, cfg.Rate(other))
			}
		}
	}
}

func TestBurstLenDefault(t *testing.T) {
	if got := (Config{}).BurstLen(); got != 64 {
		t.Errorf("default burst = %d", got)
	}
	if got := (Config{OverflowBurstLen: 7}).BurstLen(); got != 7 {
		t.Errorf("configured burst = %d", got)
	}
	if got := New(Config{OverflowBurstLen: 7}).BurstLen(); got != 7 {
		t.Errorf("injector burst = %d", got)
	}
}

func TestIntnBounds(t *testing.T) {
	inj := New(Profile(1, 3))
	for _, n := range []int{-1, 0, 1} {
		if got := inj.Intn(SEURegister, n); got != 0 {
			t.Errorf("Intn(%d) = %d", n, got)
		}
	}
	for i := 0; i < 1000; i++ {
		if got := inj.Intn(SEUPacket, 8); got < 0 || got >= 8 {
			t.Fatalf("Intn(8) = %d", got)
		}
	}
}

func TestClassStreamsAreIndependent(t *testing.T) {
	// Drawing heavily on one class must not shift another class's
	// sequence: the serving pipeline's fault sites stay put no matter
	// how often other consumers (shell, shadow pipeline) roll.
	cfg := Profile(1.0, 11)
	quiet, noisy := New(cfg), New(cfg)
	for i := 0; i < 5000; i++ {
		noisy.Roll(QueueOverflow)
		noisy.Intn(MalformedTraffic, 64)
	}
	for i := 0; i < 2000; i++ {
		if quiet.Roll(SEURegister) != noisy.Roll(SEURegister) {
			t.Fatalf("draw %d: register-SEU stream shifted by unrelated classes", i)
		}
		if quiet.Intn(SEUMapEntry, 64) != noisy.Intn(SEUMapEntry, 64) {
			t.Fatalf("site %d: map-SEU stream shifted by unrelated classes", i)
		}
	}
}

func TestForkDivergesButStaysDeterministic(t *testing.T) {
	cfg := Profile(1.0, 42)
	forked := cfg.Fork(1)
	if forked.Seed == cfg.Seed {
		t.Fatal("fork kept the seed")
	}
	if forked.SEURegisterRate != cfg.SEURegisterRate || forked.FlushStormRate != cfg.FlushStormRate {
		t.Fatal("fork changed the rates")
	}
	if cfg.Fork(1) != forked {
		t.Fatal("same tag forked to a different configuration")
	}
	if cfg.Fork(2).Seed == forked.Seed {
		t.Fatal("distinct tags forked to the same seed")
	}

	base, other := New(cfg), New(cfg).Fork(1)
	same := true
	for i := 0; i < 200; i++ {
		if base.Roll(SEURegister) != other.Roll(SEURegister) {
			same = false
		}
	}
	if same {
		t.Error("200 draws identical between an injector and its fork")
	}
}

func TestCounters(t *testing.T) {
	inj := New(Config{})
	if s := inj.Counters().String(); s != "none" {
		t.Errorf("fresh counters stringify as %q", s)
	}
	inj.Note(SEUStack)
	inj.Note(SEUStack)
	inj.Note(FlushStorm)
	ctr := inj.Counters()
	if ctr.ByClass[SEUStack] != 2 || ctr.ByClass[FlushStorm] != 1 || ctr.Total() != 3 {
		t.Errorf("counters = %+v", ctr)
	}
	s := ctr.String()
	if !strings.Contains(s, "seu-stack=2") || !strings.Contains(s, "flush-storm=1") {
		t.Errorf("counter string = %q", s)
	}
}

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for _, class := range Classes() {
		name := class.String()
		if name == "" || strings.Contains(name, "?") || seen[name] {
			t.Errorf("class %d has a bad or duplicate name %q", class, name)
		}
		seen[name] = true
	}
	if len(Classes()) != int(NumClasses) {
		t.Fatalf("Classes() returned %d of %d", len(Classes()), NumClasses)
	}
}

func TestWrapTraffic(t *testing.T) {
	payload := pktgen.Build(pktgen.PacketSpec{
		Flow:     pktgen.Flow{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
		TotalLen: 64,
	})
	src := func() []byte { return append([]byte(nil), payload...) }

	var nilInj *Injector
	if got := nilInj.WrapTraffic(src); got == nil {
		t.Fatal("nil injector must pass the source through")
	}
	clean := New(Single(SEURegister, 1, 1))
	for i := 0; i < 10; i++ {
		if !bytes.Equal(clean.WrapTraffic(src)(), payload) {
			t.Fatal("zero malform rate changed traffic")
		}
	}

	always := New(Single(MalformedTraffic, 1, 5))
	damaged := 0
	for i := 0; i < 200; i++ {
		if !bytes.Equal(always.WrapTraffic(src)(), payload) {
			damaged++
		}
	}
	// Some malformations (e.g. a bogus length field) keep the frame
	// length but every draw must be counted.
	if always.Counters().ByClass[MalformedTraffic] != 200 {
		t.Errorf("malform counter = %d, want 200", always.Counters().ByClass[MalformedTraffic])
	}
	if damaged < 150 {
		t.Errorf("only %d/200 frames visibly damaged at rate 1", damaged)
	}

	// Same seed, same campaign: identical byte streams.
	a := New(Profile(1, 77)).WrapTraffic(src)
	b := New(Profile(1, 77)).WrapTraffic(src)
	for i := 0; i < 500; i++ {
		if !bytes.Equal(a(), b()) {
			t.Fatalf("frame %d diverged between same-seed campaigns", i)
		}
	}
}
