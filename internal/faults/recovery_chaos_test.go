// Chaos recovery suite: the self-healing acceptance campaign. Every
// evaluation app runs under a seeded SEU map-flip barrage with ECC and
// scrubbing armed; the contract is that no corruption survives
// uncorrected, the final map state is bit-for-bit the fault-free
// state, the same seed reproduces the same campaign exactly — and that
// with protection off the very same seeds do corrupt the maps, so the
// equality above is the protection working and not the campaign being
// toothless.
package faults_test

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
	"ehdl/internal/protect"
)

// seuCampaign is the map-flip barrage of the acceptance criteria: only
// SEUMapEntry fires, at a rate that lands many upsets per run but stays
// below the point where two flips pile into the same 64-bit word before
// the scrubber's next visit (which would exceed SECDED and rightly
// trigger a state-losing recovery — that path has its own tests in
// hwsim).
func seuCampaign(seed int64) faults.Config {
	return faults.Single(faults.SEUMapEntry, 0.002, seed)
}

// recoveryRun drives one protected (or unprotected) campaign and
// returns the report, the final stats and the decoded final map state.
func recoveryRun(t *testing.T, app *apps.App, fc faults.Config, level protect.Level, packets int) (nic.Report, hwsim.Stats, string) {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := nic.ShellConfig{Faults: fc}
	cfg.Sim.Protection = level
	cfg.Sim.ScrubCyclesPerWord = 1
	cfg.Sim.WatchdogCycles = 200000
	sh, err := nic.New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sh.Maps()); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, packets, sh.LineRateMpps(64)*1e6)
	if err != nil {
		t.Fatalf("%s: campaign errored instead of healing: %v", app.Name, err)
	}
	return rep, sh.Sim().Stats(), dumpMaps(sh.Maps())
}

// dumpMaps renders the full map state as sorted key=value lines, read
// through Lookup so Protected maps hand back the decoded (corrected)
// words rather than raw storage the scrubber has not reached yet.
func dumpMaps(set *maps.Set) string {
	var b strings.Builder
	for id := 0; id < set.Len(); id++ {
		m, _ := set.ByID(id)
		var keys [][]byte
		m.Iterate(func(key, _ []byte) bool {
			keys = append(keys, append([]byte(nil), key...))
			return true
		})
		sort.Slice(keys, func(i, j int) bool { return string(keys[i]) < string(keys[j]) })
		for _, k := range keys {
			v, ok := m.Lookup(k)
			if !ok {
				// Quarantined or vanished mid-dump: render the miss itself,
				// so states with and without the entry never compare equal.
				b.WriteString(m.Spec().Name + "/" + string(k) + "=<missing>\n")
				continue
			}
			b.WriteString(m.Spec().Name + "/" + string(k) + "=" + string(v) + "\n")
		}
	}
	return b.String()
}

// TestChaosRecoveryHealsEveryApp is the acceptance campaign: under the
// SEU map-flip barrage with ECC + scrubbing, every upset is corrected
// (none uncorrectable, none silently resident), and the final map state
// equals the fault-free run of the same traffic bit for bit.
func TestChaosRecoveryHealsEveryApp(t *testing.T) {
	const packets = 1500
	for _, app := range chaosApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			// Fault-free protected baseline: what the maps must end as.
			_, _, want := recoveryRun(t, app, faults.Config{}, protect.LevelECC, packets)

			rep, st, got := recoveryRun(t, app, seuCampaign(7), protect.LevelECC, packets)
			if rep.FaultsInjected == 0 {
				t.Skipf("%s: campaign found no populated map entry to flip", app.Name)
			}
			if rep.CorrectedWords == 0 {
				t.Errorf("%d upsets injected, none corrected", rep.FaultsInjected)
			}
			if rep.UncorrectableWords != 0 {
				t.Errorf("%d upsets escaped correction (%d recoveries)", rep.UncorrectableWords, rep.Recoveries)
			}
			if st.ScrubPasses == 0 {
				t.Error("scrubber never completed a pass")
			}
			if got != want {
				t.Errorf("final map state differs from the fault-free run:\nfault-free:\n%s\ncampaign:\n%s",
					want, got)
			}
		})
	}
}

// TestChaosRecoveryProtectionOffStillCorrupts closes the loop on the
// healing test: the same seeds with protection disabled leave the maps
// visibly corrupted, proving the campaign really damages state and the
// bit-for-bit equality above is earned by the ECC path.
func TestChaosRecoveryProtectionOffStillCorrupts(t *testing.T) {
	const packets = 1500
	corruptedSomewhere := false
	for _, app := range chaosApps() {
		_, _, want := recoveryRun(t, app, faults.Config{}, protect.LevelNone, packets)
		rep, _, got := recoveryRun(t, app, seuCampaign(7), protect.LevelNone, packets)
		if rep.FaultsInjected == 0 {
			continue
		}
		if got != want {
			corruptedSomewhere = true
		}
	}
	if !corruptedSomewhere {
		t.Fatal("no app's final state changed under the unprotected campaign: the barrage is toothless")
	}
}

// TestChaosRecoverySameSeedReproduces extends the determinism contract
// to the protection machinery: identical seeds with ECC + scrubbing
// reproduce identical reports, stats and final decoded map state.
func TestChaosRecoverySameSeedReproduces(t *testing.T) {
	for _, app := range []*apps.App{apps.Firewall(), apps.DNAT()} {
		rep1, st1, dump1 := recoveryRun(t, app, seuCampaign(99), protect.LevelECC, 1200)
		rep2, st2, dump2 := recoveryRun(t, app, seuCampaign(99), protect.LevelECC, 1200)
		if !reflect.DeepEqual(rep1, rep2) {
			t.Errorf("%s: reports diverged across same-seed protected runs:\n%+v\n%+v", app.Name, rep1, rep2)
		}
		if !reflect.DeepEqual(st1, st2) {
			t.Errorf("%s: stats diverged across same-seed protected runs", app.Name)
		}
		if dump1 != dump2 {
			t.Errorf("%s: final map state diverged across same-seed protected runs", app.Name)
		}
	}
}

// TestChaosRecoveryFullProfile arms the complete chaos profile (every
// fault class at once) on top of ECC + scrubbing: the shell must still
// degrade gracefully, and every single-bit map upset the campaign lands
// must be corrected or escalated into a recovery — never silent.
func TestChaosRecoveryFullProfile(t *testing.T) {
	for _, app := range chaosApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			rep, st, _ := recoveryRun(t, app, faults.Profile(1.0, 23), protect.LevelECC, 1500)
			checkLegalActions(t, app.Name, rep)
			if rep.Received == 0 {
				t.Fatal("pipeline answered nothing under full chaos with protection on")
			}
			if st.WordsChecked == 0 {
				t.Error("protection configured but no word was ever checked")
			}
			if rep.UncorrectableWords > 0 && rep.Recoveries == 0 {
				t.Errorf("%d uncorrectable words but no recovery fired", rep.UncorrectableWords)
			}
		})
	}
}
