package liveupdate

import (
	"errors"
	"fmt"

	"ehdl/internal/ebpf"
)

// Stage identifies one phase of the live-update state machine.
type Stage int

// Update stages, in the order a successful update traverses them.
const (
	// StageIdle: no update in progress.
	StageIdle Stage = iota
	// StageShadow: the new pipeline is being instantiated and warmed up
	// alongside the old one.
	StageShadow
	// StageMigrate: map state is being copied from the old pipeline
	// through the compatibility checker, with concurrent writes captured
	// in the delta log.
	StageMigrate
	// StageCanary: a fraction of live traffic is mirrored to the shadow
	// pipeline and diffed against a reference interpreter running the
	// new program.
	StageCanary
	// StageCutover: ingress is held, the old pipeline drains to a
	// deadline, and the shadow takes over atomically.
	StageCutover
	// StagePostVerify: the new pipeline serves all traffic while a
	// bounded window of verdicts is still checked against the reference
	// (divergences are counted, not fatal).
	StagePostVerify
	// StageDone: the update committed; the controller is inert.
	StageDone
	// StageRolledBack: the update failed; the old pipeline kept serving.
	StageRolledBack

	numStages
)

var stageNames = [numStages]string{
	StageIdle:       "idle",
	StageShadow:     "shadow",
	StageMigrate:    "migrate",
	StageCanary:     "canary",
	StageCutover:    "cutover",
	StagePostVerify: "post-verify",
	StageDone:       "done",
	StageRolledBack: "rolled-back",
}

// String returns the canonical stage name.
func (s Stage) String() string {
	if s >= 0 && int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Sentinel failures. Every rollback reports an *UpdateError wrapping
// one of these (or a *CompatError, which wraps ErrIncompatible).
var (
	// ErrIncompatible marks a map schema the migration checker refuses:
	// mismatched key/value widths, a different map kind, or shrunk
	// capacity. Test with errors.Is.
	ErrIncompatible = errors.New("liveupdate: incompatible map schema")
	// ErrDeltaOverflow marks a migration whose bounded delta log filled
	// before the bulk copy finished: the old pipeline wrote faster than
	// the migration budget copied.
	ErrDeltaOverflow = errors.New("liveupdate: delta log overflow")
	// ErrCanaryDiverged marks a shadow pipeline whose verdicts, packet
	// bytes or map effects diverged from the reference interpreter.
	ErrCanaryDiverged = errors.New("liveupdate: canary diverged from reference")
	// ErrCanaryDeadline marks a canary that did not reach its packet
	// target before the deadline expired.
	ErrCanaryDeadline = errors.New("liveupdate: canary deadline expired")
	// ErrDrainTimeout marks an old pipeline that did not drain within the
	// cutover deadline (or the bounded backoff attempts).
	ErrDrainTimeout = errors.New("liveupdate: cutover drain timed out")
	// ErrShadowFault marks a shadow pipeline that errored while stepping
	// (e.g. its recovery budget exhausted under fault injection).
	ErrShadowFault = errors.New("liveupdate: shadow pipeline fault")
)

// UpdateError reports a failed (rolled back) update: which stage failed
// and why. The old pipeline keeps serving; nothing about the data path
// changed.
type UpdateError struct {
	// Stage is the stage that failed.
	Stage Stage
	// Err is the underlying failure.
	Err error
}

func (e *UpdateError) Error() string {
	return fmt.Sprintf("liveupdate: %s stage failed: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *UpdateError) Unwrap() error { return e.Err }

// CompatError describes one incompatible map schema between the old and
// new programs. It wraps ErrIncompatible.
type CompatError struct {
	// Map is the shared map name.
	Map string
	// Field names the mismatched property: "key_size", "value_size",
	// "kind" or "max_entries".
	Field string
	// Old and New are the mismatched values (ebpf.MapKind for "kind").
	Old, New int
}

func (e *CompatError) Error() string {
	if e.Field == "kind" {
		return fmt.Sprintf("liveupdate: map %q: kind %v, new program declares %v",
			e.Map, ebpf.MapKind(e.Old), ebpf.MapKind(e.New))
	}
	return fmt.Sprintf("liveupdate: map %q: %s %d, new program declares %d",
		e.Map, e.Field, e.Old, e.New)
}

// Unwrap makes errors.Is(err, ErrIncompatible) hold.
func (e *CompatError) Unwrap() error { return ErrIncompatible }
