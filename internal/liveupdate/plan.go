package liveupdate

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
)

// CheckCompat decides whether state stored under the old declaration
// can migrate into the new one. Maps are matched by name; a matched map
// must keep its kind and its exact key and value widths (the hardware
// layout of the BRAM words), and may not shrink below the old capacity
// (live entries could not be guaranteed to fit). Widening capacity is
// allowed — the double-buffered BRAM of the new design simply has more
// rows.
func CheckCompat(old, new ebpf.MapSpec) error {
	if old.Kind != new.Kind {
		return &CompatError{Map: old.Name, Field: "kind", Old: int(old.Kind), New: int(new.Kind)}
	}
	if old.KeySize != new.KeySize {
		return &CompatError{Map: old.Name, Field: "key_size", Old: old.KeySize, New: new.KeySize}
	}
	if old.ValueSize != new.ValueSize {
		return &CompatError{Map: old.Name, Field: "value_size", Old: old.ValueSize, New: new.ValueSize}
	}
	if new.MaxEntries < old.MaxEntries {
		return &CompatError{Map: old.Name, Field: "max_entries", Old: old.MaxEntries, New: new.MaxEntries}
	}
	return nil
}

// CheckPrograms runs the compatibility check over every map the two
// programs share by name and returns the first incompatibility. Maps
// only the old program declares are dropped with their state; maps only
// the new program declares start fresh from the host's setup.
func CheckPrograms(old, new *ebpf.Program) error {
	byName := make(map[string]ebpf.MapSpec, len(new.Maps))
	for _, spec := range new.Maps {
		byName[spec.Name] = spec
	}
	for _, spec := range old.Maps {
		if ns, ok := byName[spec.Name]; ok {
			if err := CheckCompat(spec, ns); err != nil {
				return err
			}
		}
	}
	return nil
}

// pair is one name-matched map migrating from the old pipeline into the
// shadow (and its reference twin).
type pair struct {
	oldID  int
	src    maps.Map
	shadow maps.Map
	ref    maps.Map
}

// plan is the compiled migration: which old maps land where.
type plan struct {
	pairs  []pair
	byOld  map[int]*pair // old mapID -> pair, for delta-log replay
	shared int           // matched maps
}

// buildPlan matches old maps by name into the shadow and reference sets
// and runs the compatibility check on every match.
func buildPlan(old, shadow, ref *maps.Set) (*plan, error) {
	p := &plan{byOld: map[int]*pair{}}
	for id := 0; id < old.Len(); id++ {
		src, _ := old.ByID(id)
		name := src.Spec().Name
		dst, ok := shadow.ByName(name)
		if !ok {
			continue // dropped by the new program: state is discarded
		}
		if err := CheckCompat(src.Spec(), dst.Spec()); err != nil {
			return nil, err
		}
		rdst, _ := ref.ByName(name)
		p.pairs = append(p.pairs, pair{oldID: id, src: src, shadow: dst, ref: rdst})
	}
	for i := range p.pairs {
		p.byOld[p.pairs[i].oldID] = &p.pairs[i]
	}
	p.shared = len(p.pairs)
	return p, nil
}

// entry is one captured key/value destined for the shadow.
type entry struct {
	pair *pair
	key  []byte
	val  []byte
}

// capture deep-copies every matched entry in a deterministic order; the
// bulk copy then drains this list under the per-tick budget while the
// old pipeline keeps running.
func (p *plan) capture() []entry {
	var out []entry
	for i := range p.pairs {
		pr := &p.pairs[i]
		pr.src.Iterate(func(k, v []byte) bool {
			out = append(out, entry{
				pair: pr,
				key:  append([]byte(nil), k...),
				val:  append([]byte(nil), v...),
			})
			return true
		})
	}
	return out
}

// apply writes one entry into both destinations.
func (e entry) apply() error {
	if err := e.pair.shadow.Update(e.key, e.val, maps.UpdateAny); err != nil {
		return err
	}
	if e.pair.ref != nil {
		return e.pair.ref.Update(e.key, e.val, maps.UpdateAny)
	}
	return nil
}

// delta is one write the old pipeline committed while the bulk copy was
// in flight: the key is re-read from the live map at replay time, so
// several writes to one key collapse into the final value.
type delta struct {
	mapID   int
	key     string
	deleted bool
}

// replay applies one logged delta against the current old-map contents.
func (p *plan) replay(d delta) error {
	pr, ok := p.byOld[d.mapID]
	if !ok {
		return nil // unmatched map: its state does not migrate
	}
	key := []byte(d.key)
	if v, live := pr.src.Lookup(key); live {
		e := entry{pair: pr, key: key, val: append([]byte(nil), v...)}
		return e.apply()
	}
	// Deleted (or deleted after a logged update): remove downstream.
	for _, dst := range []maps.Map{pr.shadow, pr.ref} {
		if dst == nil {
			continue
		}
		if err := dst.Delete(key); err != nil && err != maps.ErrKeyNotExist {
			return err
		}
	}
	_ = d.deleted // the live lookup, not the logged kind, decides
	return nil
}

// resync makes every matched destination map bit-identical to the
// drained old pipeline's final state: stale destination entries are
// deleted (array kinds are fully overwritten instead), then every
// source entry is copied. This runs at cutover, after the old pipeline
// drained, so the copied state is the authoritative final state.
func (p *plan) resync() error {
	for i := range p.pairs {
		pr := &p.pairs[i]
		for _, dst := range []maps.Map{pr.shadow, pr.ref} {
			if dst == nil {
				continue
			}
			if err := copyMap(pr.src, dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// copyMap overwrites dst with src's contents, entry for entry.
func copyMap(src, dst maps.Map) error {
	spec := dst.Spec()
	if spec.Kind != ebpf.MapArray && spec.Kind != ebpf.MapDevMap {
		var stale [][]byte
		dst.Iterate(func(k, _ []byte) bool {
			if _, ok := src.Lookup(k); !ok {
				stale = append(stale, append([]byte(nil), k...))
			}
			return true
		})
		for _, k := range stale {
			if err := dst.Delete(k); err != nil {
				return err
			}
		}
	}
	var copyErr error
	src.Iterate(func(k, v []byte) bool {
		if err := dst.Update(k, v, maps.UpdateAny); err != nil {
			copyErr = err
			return false
		}
		return true
	})
	return copyErr
}
