// The acceptance surface of the hitless live update (external package:
// the NIC shell imports liveupdate, so shell-level tests must sit
// outside it):
//
//   - a mid-run update drops zero packets and the post-update data path
//     is bit-for-bit the no-update control;
//   - the migrated map state at the cutover point equals a reference
//     interpreter fed exactly the packets the old pipeline served;
//   - a corrupted shadow (SEU campaign) diverges in the canary and
//     rolls back with the old pipeline's verdicts untouched;
//   - schema incompatibilities and delta-log overflows roll back with
//     typed errors;
//   - a full chaos campaign with an update in the middle is
//     byte-reproducible from its seed.
package liveupdate_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/asm"
	"ehdl/internal/conformance"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

const testRate = 250e6 / 8 // one packet every 8 cycles at the default clock

func firewallProg(t *testing.T) *ebpf.Program {
	t.Helper()
	app, ok := apps.ByName("firewall")
	if !ok {
		t.Fatal("firewall app missing")
	}
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// firewallVariant reassembles the firewall with its conn declaration
// rewritten.
func firewallVariant(t *testing.T, oldDecl, newDecl string) *ebpf.Program {
	t.Helper()
	app, _ := apps.ByName("firewall")
	src := strings.Replace(app.Source, oldDecl, newDecl, 1)
	if src == app.Source {
		t.Fatalf("declaration %q not found in firewall source", oldDecl)
	}
	prog, err := asm.Assemble("firewall-v2", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func firewallShell(t *testing.T, cfg nic.ShellConfig) *nic.Shell {
	t.Helper()
	pl, err := core.Compile(firewallProg(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := nic.New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// testTraffic returns a fresh, deterministic generator: few flows, so
// the connection table sees both misses and established hits.
func testTraffic() *pktgen.Generator {
	return pktgen.NewGenerator(pktgen.GeneratorConfig{
		Flows: 24, PacketLen: 64, Proto: ebpf.IPProtoUDP, Seed: 99,
	})
}

// updateCfg is the baseline update: the same firewall recompiled, an
// aggressive canary so short runs reach cutover quickly.
func updateCfg(t *testing.T) liveupdate.Config {
	return liveupdate.Config{
		Prog:                firewallProg(t),
		CanaryFrac:          1,
		CanaryPackets:       8,
		CanaryDeadlineTicks: 20000,
		PostVerifyPackets:   32,
	}
}

// runFirewall drives one 400-packet load, optionally with an update
// scheduled after 100 packets.
func runFirewall(t *testing.T, cfg nic.ShellConfig, upd *liveupdate.Config) (nic.Report, *nic.Shell) {
	t.Helper()
	sh := firewallShell(t, cfg)
	if upd != nil {
		if err := sh.ScheduleUpdate(100, *upd); err != nil {
			t.Fatal(err)
		}
	}
	gen := testTraffic()
	rep, err := sh.RunLoad(gen.Next, 400, testRate)
	if err != nil {
		t.Fatal(err)
	}
	return rep, sh
}

// TestHitlessUpdateZeroLoss is the hitless proof: a mid-run self-update
// (the firewall recompiled and swapped in) loses no packet, every
// post-cutover verdict matches the reference interpreter, and the final
// data-path state is bit-for-bit the no-update control run's.
func TestHitlessUpdateZeroLoss(t *testing.T) {
	ucfg := updateCfg(t)
	repU, shU := runFirewall(t, nic.ShellConfig{}, &ucfg)
	repC, shC := runFirewall(t, nic.ShellConfig{}, nil)

	if repU.UpdatesAttempted != 1 || repU.UpdatesCompleted != 1 || repU.UpdatesRolledBack != 0 {
		t.Fatalf("update outcome: attempted=%d completed=%d rolledback=%d (failure %q)",
			repU.UpdatesAttempted, repU.UpdatesCompleted, repU.UpdatesRolledBack, repU.UpdateFailure)
	}
	if repU.UpdateStage != "done" {
		t.Fatalf("final stage %q", repU.UpdateStage)
	}
	if repU.Lost != 0 {
		t.Fatalf("update dropped %d packets", repU.Lost)
	}
	if repU.Received != repU.Sent {
		t.Fatalf("received %d of %d sent", repU.Received, repU.Sent)
	}
	if repU.MigratedEntries == 0 {
		t.Fatal("no map entries migrated")
	}
	if repU.CanariedPackets < 8 {
		t.Fatalf("canaried %d packets, want >= 8", repU.CanariedPackets)
	}
	if repU.CanaryDivergences != 0 || repU.PostVerifyDivergences != 0 {
		t.Fatalf("divergences: canary=%d post=%d", repU.CanaryDivergences, repU.PostVerifyDivergences)
	}
	if repU.PostVerifyChecked != 32 {
		t.Fatalf("post-verify checked %d verdicts, want 32", repU.PostVerifyChecked)
	}
	if repU.HeldPackets == 0 {
		t.Fatal("cutover held no packets (drain window never exercised)")
	}

	// The update must be invisible to the data path: same verdict
	// distribution and bit-identical final map state as the control.
	if !reflect.DeepEqual(repU.Actions, repC.Actions) {
		t.Fatalf("verdicts diverged from control: %v vs %v", repU.Actions, repC.Actions)
	}
	if err := conformance.CompareMaps(shC.Maps(), shU.Maps()); err != nil {
		t.Fatalf("final map state diverged from no-update control: %v", err)
	}
	if repC.Lost != 0 || repC.Received != repC.Sent {
		t.Fatalf("control run unexpectedly lossy: lost=%d", repC.Lost)
	}
}

// TestMigrationBitForBitAtCutover drives the controller by hand and
// stops at the switch instant: the new pipeline's map state must equal
// a reference interpreter fed exactly the packets the old pipeline
// accepted — the migration (bulk copy + delta replay + cutover resync)
// is exact, not approximate.
func TestMigrationBitForBitAtCutover(t *testing.T) {
	prog := firewallProg(t)
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	old, err := hwsim.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	old.SetClock(func() uint64 { return 0 })

	gen := testTraffic()
	var accepted [][]byte
	inject := func(pkt []byte) {
		if old.Inject(pkt) {
			accepted = append(accepted, pkt)
		}
	}

	// Warm up the connection table.
	for i := 0; i < 64; i++ {
		for !old.InputFree() {
			if err := old.Step(); err != nil {
				t.Fatal(err)
			}
		}
		inject(gen.Next())
		if err := old.Step(); err != nil {
			t.Fatal(err)
		}
	}

	ctrl, err := liveupdate.Begin(old, liveupdate.Config{
		Prog:          firewallProg(t),
		CanaryFrac:    1,
		CanaryPackets: 4,
	}, func() uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}

	// Keep traffic flowing while the update runs, exactly like the
	// shell: offer to the controller first, inject otherwise.
	var newSim *hwsim.Sim
	for i := 0; ctrl.Active() && i < 1<<17; i++ {
		pkt := gen.Next()
		if !ctrl.OfferPacket(pkt) && old.Inject(pkt) {
			accepted = append(accepted, pkt)
			ctrl.NoteInjected(pkt)
		}
		if err := old.Step(); err != nil {
			t.Fatal(err)
		}
		res := ctrl.Tick()
		if res.Failed != nil {
			t.Fatalf("update rolled back: %v", res.Failed)
		}
		if res.Switched != nil {
			newSim = res.Switched
			break
		}
	}
	if newSim == nil {
		t.Fatalf("update never cut over (stage %v)", ctrl.Stage())
	}

	// Control: the reference interpreter over exactly the accepted
	// packets. vm <-> hwsim conformance makes it the authority for the
	// old pipeline's drained state; migration exactness makes the new
	// pipeline match it.
	env, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	env.Now = func() uint64 { return 0 }
	machine, err := vm.New(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	for i, pkt := range accepted {
		if _, err := machine.Run(vm.NewPacket(append([]byte(nil), pkt...))); err != nil {
			t.Fatalf("reference packet %d: %v", i, err)
		}
	}
	if err := conformance.CompareMaps(env.Maps, newSim.Maps()); err != nil {
		t.Fatalf("migrated state at cutover diverges from reference: %v", err)
	}
	if st := ctrl.Stats(); st.MigratedEntries == 0 {
		t.Fatal("bulk copy migrated nothing")
	}
}

// TestCanaryDivergenceRollsBack corrupts the shadow with an SEU
// campaign: the canary must catch the divergence, roll back with a
// typed error, and leave the old pipeline's verdicts and map state
// exactly as a run that never attempted the update.
func TestCanaryDivergenceRollsBack(t *testing.T) {
	ucfg := updateCfg(t)
	ucfg.Sim.Faults = faults.New(faults.Single(faults.SEUMapEntry, 0.5, 7))
	repU, shU := runFirewall(t, nic.ShellConfig{}, &ucfg)
	repC, shC := runFirewall(t, nic.ShellConfig{}, nil)

	if repU.UpdatesRolledBack != 1 || repU.UpdatesCompleted != 0 {
		t.Fatalf("outcome: completed=%d rolledback=%d stage=%q",
			repU.UpdatesCompleted, repU.UpdatesRolledBack, repU.UpdateStage)
	}
	ctrl := shU.Update()
	if ctrl == nil || ctrl.Err() == nil {
		t.Fatal("no rollback report")
	}
	if !errors.Is(ctrl.Err(), liveupdate.ErrCanaryDiverged) {
		t.Fatalf("rollback cause %v, want ErrCanaryDiverged", ctrl.Err())
	}
	if ctrl.Err().Stage != liveupdate.StageCanary {
		t.Fatalf("failing stage %v, want canary", ctrl.Err().Stage)
	}
	if repU.UpdateFailure == "" {
		t.Fatal("report carries no failure description")
	}

	// The rolled-back update must be invisible: the old pipeline served
	// everything, bit-for-bit like the control.
	if repU.Lost != 0 || repU.Received != repU.Sent {
		t.Fatalf("rollback lost packets: lost=%d received=%d sent=%d",
			repU.Lost, repU.Received, repU.Sent)
	}
	if !reflect.DeepEqual(repU.Actions, repC.Actions) {
		t.Fatalf("verdicts diverged from control: %v vs %v", repU.Actions, repC.Actions)
	}
	if err := conformance.CompareMaps(shC.Maps(), shU.Maps()); err != nil {
		t.Fatalf("old pipeline state diverged after rollback: %v", err)
	}
}

// TestIncompatibleSchemaRollsBack widens conn's value width in the new
// program: migration must refuse with a typed CompatError before
// anything changes, and the run keeps serving on the old pipeline.
func TestIncompatibleSchemaRollsBack(t *testing.T) {
	ucfg := updateCfg(t)
	ucfg.Prog = firewallVariant(t,
		"map conn hash key=12 value=8", "map conn hash key=12 value=16")
	rep, sh := runFirewall(t, nic.ShellConfig{}, &ucfg)

	if rep.UpdatesAttempted != 1 || rep.UpdatesRolledBack != 1 {
		t.Fatalf("outcome: attempted=%d rolledback=%d", rep.UpdatesAttempted, rep.UpdatesRolledBack)
	}
	if !strings.Contains(rep.UpdateFailure, "value_size") {
		t.Fatalf("failure %q does not name the incompatible field", rep.UpdateFailure)
	}
	if rep.Lost != 0 || rep.Received != rep.Sent {
		t.Fatalf("serving disturbed: lost=%d", rep.Lost)
	}
	if sh.Update() != nil {
		t.Fatal("controller installed despite Begin failure")
	}
}

// TestCompatTyped pins the typed-error contract of the schema checker.
func TestCompatTyped(t *testing.T) {
	base := ebpf.MapSpec{Name: "m", Kind: ebpf.MapHash, KeySize: 12, ValueSize: 8, MaxEntries: 64}
	cases := []struct {
		name  string
		mut   func(s ebpf.MapSpec) ebpf.MapSpec
		field string
	}{
		{"kind", func(s ebpf.MapSpec) ebpf.MapSpec { s.Kind = ebpf.MapLRUHash; return s }, "kind"},
		{"key", func(s ebpf.MapSpec) ebpf.MapSpec { s.KeySize = 16; return s }, "key_size"},
		{"value", func(s ebpf.MapSpec) ebpf.MapSpec { s.ValueSize = 16; return s }, "value_size"},
		{"shrink", func(s ebpf.MapSpec) ebpf.MapSpec { s.MaxEntries = 32; return s }, "max_entries"},
	}
	for _, tc := range cases {
		err := liveupdate.CheckCompat(base, tc.mut(base))
		if !errors.Is(err, liveupdate.ErrIncompatible) {
			t.Fatalf("%s: %v is not ErrIncompatible", tc.name, err)
		}
		var ce *liveupdate.CompatError
		if !errors.As(err, &ce) || ce.Field != tc.field || ce.Map != "m" {
			t.Fatalf("%s: CompatError %+v, want field %q", tc.name, ce, tc.field)
		}
	}
	// Widening capacity is explicitly allowed.
	wide := base
	wide.MaxEntries = 128
	if err := liveupdate.CheckCompat(base, wide); err != nil {
		t.Fatalf("widened capacity refused: %v", err)
	}
	// Program-level sweep finds the same incompatibility.
	if err := liveupdate.CheckPrograms(
		mustProg(t, firewallProg(t)),
		firewallVariant(t, "map conn hash key=12 value=8", "map conn lru_hash key=12 value=8"),
	); !errors.Is(err, liveupdate.ErrIncompatible) {
		t.Fatalf("CheckPrograms missed the kind change: %v", err)
	}
	if err := liveupdate.CheckPrograms(
		mustProg(t, firewallProg(t)),
		firewallVariant(t, "entries=16384", "entries=32768"),
	); err != nil {
		t.Fatalf("CheckPrograms refused a widened table: %v", err)
	}
}

func mustProg(t *testing.T, p *ebpf.Program) *ebpf.Program {
	t.Helper()
	return p
}

// TestDeltaOverflowRollsBack starves the migration (one entry per tick,
// a one-slot delta log) under live writes: the bounded log must
// overflow and the update roll back without touching the data path.
func TestDeltaOverflowRollsBack(t *testing.T) {
	sh := firewallShell(t, nic.ShellConfig{})
	gen := testTraffic()
	// Build connection state first, without an update armed.
	if _, err := sh.RunLoad(gen.Next, 64, testRate); err != nil {
		t.Fatal(err)
	}
	ucfg := updateCfg(t)
	ucfg.MigrateEntriesPerTick = 1
	ucfg.DeltaLogCap = 1
	if err := sh.ScheduleUpdate(0, ucfg); err != nil {
		t.Fatal(err)
	}
	rep, err := sh.RunLoad(gen.Next, 200, 250e6/4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesRolledBack != 1 {
		t.Fatalf("outcome: rolledback=%d stage=%q failure=%q",
			rep.UpdatesRolledBack, rep.UpdateStage, rep.UpdateFailure)
	}
	if !errors.Is(sh.Update().Err(), liveupdate.ErrDeltaOverflow) {
		t.Fatalf("rollback cause %v, want ErrDeltaOverflow", sh.Update().Err())
	}
	if rep.Received != rep.Sent {
		t.Fatalf("serving disturbed: received %d of %d", rep.Received, rep.Sent)
	}
}

// TestChaosReplayDeterministic runs a full fault campaign — SEU,
// malformed frames, overflow bursts, flush storms — with an update in
// the middle, twice from the same seed: the reports and the final map
// state must be byte-identical. This is the end-to-end proof of the
// per-class RNG streams: the shadow's forked campaign cannot perturb
// the serving pipeline's fault sites.
func TestChaosReplayDeterministic(t *testing.T) {
	run := func() (nic.Report, *nic.Shell) {
		cfg := nic.ShellConfig{Faults: faults.Config{
			Seed:            41,
			SEURegisterRate: 0.0005,
			SEUMapEntryRate: 0.001,
			MalformRate:     0.01,
			OverflowRate:    0.002,
			FlushStormRate:  0.002,
		}}
		ucfg := updateCfg(t)
		return runFirewall(t, cfg, &ucfg)
	}
	rep1, sh1 := run()
	rep2, sh2 := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("chaos replay diverged:\n  run1: %+v\n  run2: %+v", rep1, rep2)
	}
	if err := conformance.CompareMaps(sh1.Maps(), sh2.Maps()); err != nil {
		t.Fatalf("chaos replay map state diverged: %v", err)
	}
}

// TestUpdateEventCoverage owns the two event classes the simulator
// never emits itself (see conformance.TestEventClassCoverage): a clean
// update emits KindUpdatePhase for every stage it traverses, and a
// corrupted shadow emits KindCanaryDiverge before the rollback phase
// event.
func TestUpdateEventCoverage(t *testing.T) {
	collect := func(mutate func(*liveupdate.Config)) []obs.Event {
		sink := obs.NewMemSink()
		ucfg := updateCfg(t)
		ucfg.Trace = obs.NewTracer(1<<12, sink)
		if mutate != nil {
			mutate(&ucfg)
		}
		runFirewall(t, nic.ShellConfig{}, &ucfg)
		return sink.Events()
	}

	stages := map[liveupdate.Stage]bool{}
	for _, ev := range collect(nil) {
		if ev.Kind == obs.KindUpdatePhase {
			stages[liveupdate.Stage(ev.Aux)] = true
		}
	}
	for _, want := range []liveupdate.Stage{
		liveupdate.StageShadow, liveupdate.StageMigrate, liveupdate.StageCanary,
		liveupdate.StageCutover, liveupdate.StagePostVerify, liveupdate.StageDone,
	} {
		if !stages[want] {
			t.Errorf("clean update never emitted phase event for %v (saw %v)", want, stages)
		}
	}

	diverged, rolledBack := false, false
	for _, ev := range collect(func(c *liveupdate.Config) {
		c.Sim.Faults = faults.New(faults.Single(faults.SEUMapEntry, 0.5, 7))
	}) {
		switch ev.Kind {
		case obs.KindCanaryDiverge:
			diverged = true
		case obs.KindUpdatePhase:
			if liveupdate.Stage(ev.Aux) == liveupdate.StageRolledBack {
				rolledBack = true
			}
		}
	}
	if !diverged {
		t.Error("SEU canary never emitted KindCanaryDiverge")
	}
	if !rolledBack {
		t.Error("rollback never emitted its phase event")
	}
}

// TestUpdateMetrics asserts the liveupdate.* instruments register and
// count when a registry is attached.
func TestUpdateMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ucfg := updateCfg(t)
	ucfg.Metrics = reg
	rep, _ := runFirewall(t, nic.ShellConfig{}, &ucfg)
	if rep.UpdatesCompleted != 1 {
		t.Fatalf("update did not complete: %q", rep.UpdateFailure)
	}
	for name, want := range map[string]uint64{
		liveupdate.MetricMigrated: rep.MigratedEntries,
		liveupdate.MetricCanaried: rep.CanariedPackets,
		liveupdate.MetricHeld:     rep.HeldPackets,
	} {
		if got, ok := reg.CounterValue(name); !ok || got != want {
			t.Errorf("%s = %d (registered %v), report says %d", name, got, ok, want)
		}
	}
	if h, ok := reg.HistogramByName(liveupdate.MetricMigrationTicks); !ok || h.Mean() <= 0 {
		t.Error("migration-latency histogram never observed")
	}
}
