package liveupdate_test

import (
	"bytes"
	"errors"
	"testing"

	"ehdl/internal/ebpf"
	"ehdl/internal/liveupdate"
	"ehdl/internal/maps"
)

// fuzzSpec derives a map declaration from fuzz bytes.
func fuzzSpec(kind, keySize, valSize, entries uint8) ebpf.MapSpec {
	kinds := []ebpf.MapKind{ebpf.MapArray, ebpf.MapHash, ebpf.MapLRUHash, ebpf.MapLPMTrie, ebpf.MapDevMap}
	return ebpf.MapSpec{
		Name:       "m",
		Kind:       kinds[int(kind)%len(kinds)],
		KeySize:    int(keySize)%32 + 1,
		ValueSize:  int(valSize)%64 + 1,
		MaxEntries: int(entries)%128 + 1,
	}
}

// FuzzMigrate drives the schema checker and the entry-copy path of the
// migration over arbitrary map shapes and contents:
//
//   - CheckCompat must accept exactly the compatible shapes (same kind,
//     exact key/value widths, capacity not shrunk) and refuse the rest
//     with a typed CompatError wrapping ErrIncompatible;
//   - for every accepted shape, state copied entry by entry (the bulk
//     migration) must read back bit-for-bit from the new map.
func FuzzMigrate(f *testing.F) {
	f.Add(uint8(1), uint8(11), uint8(7), uint8(63), uint8(1), uint8(11), uint8(7), uint8(63),
		[]byte("\x01\x02\x03\x04\x05\x06\x07\x08some keys and values"))
	f.Add(uint8(0), uint8(3), uint8(7), uint8(3), uint8(1), uint8(3), uint8(7), uint8(3), []byte{})
	f.Add(uint8(3), uint8(7), uint8(15), uint8(31), uint8(3), uint8(7), uint8(15), uint8(63),
		bytes.Repeat([]byte{0xa5}, 64))
	f.Fuzz(func(t *testing.T, k1, ks1, vs1, me1, k2, ks2, vs2, me2 uint8, blob []byte) {
		oldSpec := fuzzSpec(k1, ks1, vs1, me1)
		newSpec := fuzzSpec(k2, ks2, vs2, me2)
		if oldSpec.Validate() != nil || newSpec.Validate() != nil {
			t.Skip()
		}

		err := liveupdate.CheckCompat(oldSpec, newSpec)
		compatible := oldSpec.Kind == newSpec.Kind &&
			oldSpec.KeySize == newSpec.KeySize &&
			oldSpec.ValueSize == newSpec.ValueSize &&
			newSpec.MaxEntries >= oldSpec.MaxEntries
		if compatible != (err == nil) {
			t.Fatalf("CheckCompat(%+v, %+v) = %v, compatibility is %v", oldSpec, newSpec, err, compatible)
		}
		if err != nil {
			if !errors.Is(err, liveupdate.ErrIncompatible) {
				t.Fatalf("incompatibility %v is not ErrIncompatible", err)
			}
			var ce *liveupdate.CompatError
			if !errors.As(err, &ce) || ce.Map != "m" || ce.Field == "" {
				t.Fatalf("incompatibility %v carries no usable CompatError", err)
			}
			return
		}

		src, err := maps.New(oldSpec)
		if err != nil {
			t.Skip() // shape the substrate refuses (e.g. LPM width rules)
		}
		dst, err := maps.New(newSpec)
		if err != nil {
			t.Skip()
		}
		// Populate the source from the fuzz blob; entries the kind
		// refuses (bad LPM prefixes, out-of-range array indices) are
		// simply not part of the state to migrate.
		stride := oldSpec.KeySize + oldSpec.ValueSize
		for off := 0; off+stride <= len(blob); off += stride {
			key := blob[off : off+oldSpec.KeySize]
			val := blob[off+oldSpec.KeySize : off+stride]
			_ = src.Update(key, val, maps.UpdateAny)
		}

		// The bulk-copy path of the migration plan.
		var copyErr error
		src.Iterate(func(k, v []byte) bool {
			if err := dst.Update(k, v, maps.UpdateAny); err != nil {
				copyErr = err
				return false
			}
			return true
		})
		if copyErr != nil {
			t.Fatalf("copy into compatible map failed: %v", copyErr)
		}
		src.Iterate(func(k, v []byte) bool {
			gv, ok := dst.Lookup(k)
			if !ok || !bytes.Equal(gv, v) {
				t.Fatalf("key %x: migrated %x, source %x (found %v)", k, gv, v, ok)
			}
			return true
		})
	})
}
