// Package liveupdate is the hitless-update controller of the simulated
// NIC: it installs a freshly compiled pipeline behind a running one
// without dropping a packet or losing map state, the "update the NIC
// function like software" workflow that motivates partial
// reconfiguration on real SmartNIC deployments.
//
// The update is a staged state machine driven by the NIC shell's clock
// loop:
//
//	shadow   — compile the new program and instantiate its pipeline
//	           alongside the serving one, host setup included;
//	migrate  — copy the old pipeline's map state through a schema
//	           compatibility check under a per-tick budget, while a
//	           bounded delta log captures writes the data plane commits
//	           mid-copy (replayed against the live values at the end);
//	canary   — mirror a seeded fraction of live traffic to the shadow
//	           and diff every verdict, packet byte and the final map
//	           effects against a reference interpreter running the new
//	           program from the same migrated state;
//	cutover  — hold ingress, drain the old pipeline to a deadline with
//	           exponential backoff, resynchronise the shared maps from
//	           the drained final state, switch atomically, release the
//	           held packets into the new pipeline;
//	verify   — keep diffing a bounded window of post-cutover verdicts
//	           against the reference (counted, never fatal).
//
// Any failure — an incompatible schema, a delta-log overflow, a canary
// divergence, a shadow fault, an expired deadline — rolls back: the old
// pipeline keeps serving, held packets are returned to it, and the
// controller reports a typed *UpdateError naming the failing stage.
package liveupdate

import (
	"fmt"
	"math/rand"

	"ehdl/internal/conformance"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
	"ehdl/internal/vm"
)

// Metric names registered when Config.Metrics is set.
const (
	MetricCanaried       = "liveupdate.canaried_packets"
	MetricDivergences    = "liveupdate.canary_divergences"
	MetricMigrated       = "liveupdate.migrated_entries"
	MetricDeltaReplayed  = "liveupdate.delta_replayed"
	MetricHeld           = "liveupdate.held_packets"
	MetricMigrationTicks = "liveupdate.migration_ticks"
)

// Mismatch classes carried in KindCanaryDiverge events (Aux).
const (
	// MismatchOutcome: a mirrored packet's verdict, redirect target or
	// final bytes differed from the reference.
	MismatchOutcome uint64 = iota
	// MismatchMaps: the shadow's map state at canary end differed from
	// the reference's.
	MismatchMaps
	// MismatchPostVerify: a post-cutover verdict differed (counted, not
	// fatal — e.g. time-helper skew between the pipelined and the
	// sequential engine).
	MismatchPostVerify
)

// Config parameterises one update attempt.
type Config struct {
	// Prog is the new program to install.
	Prog *ebpf.Program
	// Opts is the compiler configuration for the new pipeline.
	Opts core.Options
	// Sim configures the shadow pipeline (clock, hazard policy,
	// protection, and — for chaos campaigns — its own fault injector;
	// the shell forks the serving campaign by default so the shadow
	// never perturbs the old pipeline's fault sites).
	Sim hwsim.Config
	// Setup populates the new program's maps host-side before migration
	// (defaults, static table entries). Nil skips setup.
	Setup func(*maps.Set) error

	// CanaryFrac is the fraction of live traffic mirrored to the shadow
	// in (0, 1]. 0 means 0.25.
	CanaryFrac float64
	// CanaryPackets is the number of cleanly diffed mirrored packets
	// required to pass the canary. 0 means 32.
	CanaryPackets int
	// CanaryDeadlineTicks bounds the canary stage. 0 means 1<<16.
	CanaryDeadlineTicks uint64
	// DrainDeadlineTicks bounds the cutover drain. 0 means 1<<14.
	DrainDeadlineTicks uint64
	// DrainAttempts bounds the exponentially backed-off drain checks.
	// 0 means 8.
	DrainAttempts int
	// DrainBackoffTicks is the base of the drain-check backoff schedule
	// (base << attempt-1, the recovery schedule). 0 means 16.
	DrainBackoffTicks int
	// MigrateEntriesPerTick is the bulk-copy budget. 0 means 64.
	MigrateEntriesPerTick int
	// DeltaLogCap bounds writes captured during migration. 0 means 4096.
	DeltaLogCap int
	// PostVerifyPackets is the post-cutover conformance window. 0 means
	// 64; negative disables the window.
	PostVerifyPackets int
	// Seed drives the canary mirroring decision. 0 means 1.
	Seed int64

	// Trace, when non-nil, receives KindUpdatePhase and
	// KindCanaryDiverge events.
	Trace *obs.Tracer
	// Metrics, when non-nil, accumulates the liveupdate.* instruments.
	Metrics *obs.Registry
}

func (c Config) canaryFrac() float64 {
	if c.CanaryFrac <= 0 {
		return 0.25
	}
	if c.CanaryFrac > 1 {
		return 1
	}
	return c.CanaryFrac
}

func (c Config) canaryPackets() int {
	if c.CanaryPackets <= 0 {
		return 32
	}
	return c.CanaryPackets
}

func (c Config) canaryDeadline() uint64 {
	if c.CanaryDeadlineTicks == 0 {
		return 1 << 16
	}
	return c.CanaryDeadlineTicks
}

func (c Config) drainDeadline() uint64 {
	if c.DrainDeadlineTicks == 0 {
		return 1 << 14
	}
	return c.DrainDeadlineTicks
}

func (c Config) drainAttempts() int {
	if c.DrainAttempts <= 0 {
		return 8
	}
	return c.DrainAttempts
}

func (c Config) drainBackoff() int {
	if c.DrainBackoffTicks <= 0 {
		return 16
	}
	return c.DrainBackoffTicks
}

func (c Config) migrateBudget() int {
	if c.MigrateEntriesPerTick <= 0 {
		return 64
	}
	return c.MigrateEntriesPerTick
}

func (c Config) deltaCap() int {
	if c.DeltaLogCap <= 0 {
		return 4096
	}
	return c.DeltaLogCap
}

func (c Config) postVerify() int {
	switch {
	case c.PostVerifyPackets < 0:
		return 0
	case c.PostVerifyPackets == 0:
		return 64
	}
	return c.PostVerifyPackets
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Stats is the controller's measurement surface, folded into the NIC
// shell's Report.
type Stats struct {
	// Stage is the current (or final) stage.
	Stage Stage
	// MigratedEntries counts bulk-copied map entries.
	MigratedEntries uint64
	// DeltaReplayed counts delta-log writes replayed after the bulk copy.
	DeltaReplayed uint64
	// CanariedPackets counts mirrored packets diffed against the
	// reference.
	CanariedPackets uint64
	// CanaryDivergences counts canary mismatches (at most 1 before the
	// rollback fires, unless several completions land in one tick).
	CanaryDivergences uint64
	// HeldPackets counts ingress packets held during the cutover drain.
	HeldPackets uint64
	// ReleasedPackets counts held packets released after the switch (or
	// back into the old pipeline on rollback).
	ReleasedPackets uint64
	// PostVerifyChecked counts post-cutover verdicts diffed.
	PostVerifyChecked uint64
	// PostVerifyDivergences counts post-cutover mismatches (non-fatal).
	PostVerifyDivergences uint64
	// MigrationTicks is the length of the migrate stage in shell ticks.
	MigrationTicks uint64
	// CutoverTicks is the length of the cutover stage in shell ticks.
	CutoverTicks uint64
}

// TickResult is what one controller tick asks of the shell.
type TickResult struct {
	// Switched, when non-nil, is the new serving pipeline: the shell
	// must atomically swap its ingress to it and re-register its
	// completion dispatcher.
	Switched *hwsim.Sim
	// Release holds packets the controller buffered during the cutover
	// drain; the shell must inject them — into the new pipeline after a
	// switch, back into the old one after a rollback — before offering
	// new arrivals.
	Release [][]byte
	// Failed, when non-nil, reports the rollback. The old pipeline is
	// already resumed and keeps serving.
	Failed *UpdateError
}

// Controller drives one update attempt. It is driven synchronously by
// the NIC shell's clock loop and is not safe for concurrent use.
type Controller struct {
	cfg   Config
	old   *hwsim.Sim
	clock func() uint64 // the shell's master nanosecond clock

	shadow *hwsim.Sim
	refEnv *vm.Env
	refM   *vm.Machine

	stage     Stage
	failure   *UpdateError
	ticks     uint64
	stageTick uint64

	plan           *plan
	bulk           []entry
	bulkPos        int
	deltas         []delta
	deltaOverflow  bool
	shadowBaseline *maps.SetSnapshot
	refBaseline    *maps.SetSnapshot

	rng *rand.Rand
	// expected keys reference outcomes by the pipeline sequence number of
	// the packet they predict. Flush recall can retire packets out of
	// injection order, so FIFO matching would diff the wrong pairs.
	expected  map[uint64]conformance.Outcome
	mirrored  int
	canaryErr error

	held           [][]byte
	drainAttempt   int
	nextDrainCheck uint64

	postInjected int

	// pending results for the current tick
	switched *hwsim.Sim
	release  [][]byte

	stats Stats
}

// Begin compiles the new program, instantiates the shadow pipeline and
// the reference interpreter, checks map-schema compatibility, captures
// the migration snapshot, and hooks the old pipeline's write stream.
// clock is the shell's master nanosecond clock; the controller latches
// it for the shadow and the reference until cutover so time-dependent
// helpers cannot diverge from pipelining alone. An error here means
// nothing was installed; the old pipeline is untouched.
func Begin(old *hwsim.Sim, cfg Config, clock func() uint64) (*Controller, error) {
	if cfg.Prog == nil {
		return nil, &UpdateError{Stage: StageShadow, Err: fmt.Errorf("liveupdate: no program")}
	}
	if clock == nil {
		clock = old.Now
	}
	c := &Controller{
		cfg:   cfg,
		old:   old,
		clock: clock,
		stage:    StageShadow,
		rng:      rand.New(rand.NewSource(cfg.seed())),
		expected: make(map[uint64]conformance.Outcome),
	}
	c.event(StageShadow, 0)

	pl, err := core.Compile(cfg.Prog, cfg.Opts)
	if err != nil {
		return nil, &UpdateError{Stage: StageShadow, Err: err}
	}
	shadow, err := hwsim.New(pl, cfg.Sim)
	if err != nil {
		return nil, &UpdateError{Stage: StageShadow, Err: err}
	}
	shadow.KeepData(true)
	latch := clock()
	shadow.SetClock(func() uint64 { return latch })
	if cfg.Setup != nil {
		if err := cfg.Setup(shadow.Maps()); err != nil {
			return nil, &UpdateError{Stage: StageShadow, Err: err}
		}
	}

	refEnv, err := vm.NewEnv(cfg.Prog)
	if err != nil {
		return nil, &UpdateError{Stage: StageShadow, Err: err}
	}
	refEnv.Now = func() uint64 { return latch }
	if cfg.Setup != nil {
		if err := cfg.Setup(refEnv.Maps); err != nil {
			return nil, &UpdateError{Stage: StageShadow, Err: err}
		}
	}
	refM, err := vm.New(cfg.Prog, refEnv)
	if err != nil {
		return nil, &UpdateError{Stage: StageShadow, Err: err}
	}
	c.shadow, c.refEnv, c.refM = shadow, refEnv, refM
	c.shadowBaseline = shadow.Maps().Snapshot()
	c.refBaseline = refEnv.Maps.Snapshot()

	plan, err := buildPlan(old.Maps(), shadow.Maps(), refEnv.Maps)
	if err != nil {
		return nil, &UpdateError{Stage: StageMigrate, Err: err}
	}
	c.plan = plan
	c.bulk = plan.capture()
	old.OnMapWrite(c.logDelta)
	shadow.OnComplete(c.onShadowComplete)
	c.enter(StageMigrate, uint64(len(c.bulk)))
	return c, nil
}

// Active reports whether an update is still in flight.
func (c *Controller) Active() bool {
	return c.stage != StageIdle && c.stage != StageDone && c.stage != StageRolledBack
}

// Stage returns the current stage.
func (c *Controller) Stage() Stage { return c.stage }

// Err returns the rollback report, nil unless StageRolledBack.
func (c *Controller) Err() *UpdateError { return c.failure }

// Stats returns the measurement snapshot.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Stage = c.stage
	return s
}

// Shadow exposes the shadow pipeline (tests inspect its maps).
func (c *Controller) Shadow() *hwsim.Sim { return c.shadow }

// OfferPacket gives the controller first claim on an arriving packet.
// It returns true when the packet was consumed (held during the cutover
// drain); the shell must then NOT inject it. Held packets come back via
// TickResult.Release, in arrival order.
func (c *Controller) OfferPacket(pkt []byte) bool {
	if c.stage != StageCutover {
		return false
	}
	c.held = append(c.held, append([]byte(nil), pkt...))
	c.stats.HeldPackets++
	c.counter(MetricHeld)
	return true
}

// NoteInjected tells the controller the shell injected (and the serving
// pipeline accepted) a packet. During canary a seeded fraction is
// mirrored to the shadow and pre-run on the reference; during
// post-verify every packet in the window is pre-run on the reference.
func (c *Controller) NoteInjected(pkt []byte) {
	switch c.stage {
	case StageCanary:
		if c.mirrored >= c.cfg.canaryPackets() {
			return
		}
		if c.rng.Float64() >= c.cfg.canaryFrac() {
			return
		}
		if !c.shadow.InputFree() {
			return
		}
		want, err := c.runReference(pkt)
		if err != nil {
			c.canaryErr = fmt.Errorf("%w: reference: %v", ErrShadowFault, err)
			return
		}
		seq := c.shadow.NextSeq()
		if !c.shadow.Inject(append([]byte(nil), pkt...)) {
			return
		}
		c.expected[seq] = want
		c.mirrored++
	case StagePostVerify:
		if c.postInjected >= c.cfg.postVerify() {
			return
		}
		want, err := c.runReference(pkt)
		if err != nil {
			// The reference erroring post-cutover cannot fail the update
			// (the switch already committed); count it as a divergence.
			c.stats.PostVerifyDivergences++
			return
		}
		// The shell notifies immediately after a successful Inject into
		// the serving pipeline (the former shadow), so the packet carries
		// the sequence number just consumed.
		c.expected[c.shadow.NextSeq()-1] = want
		c.postInjected++
	}
}

// NoteCompletion tells the controller a packet retired from the serving
// pipeline. Only the post-verify window consumes it: the verdict is
// diffed against the reference outcome recorded under the packet's
// sequence number at injection.
func (c *Controller) NoteCompletion(r hwsim.Result) {
	if c.stage != StagePostVerify {
		return
	}
	want, ok := c.expected[r.Seq]
	if !ok {
		return
	}
	delete(c.expected, r.Seq)
	got := conformance.Outcome{Action: r.Action, RedirectIfindex: r.RedirectIfindex, Data: r.Data}
	if err := conformance.CompareOutcome(got, want); err != nil {
		c.stats.PostVerifyDivergences++
		c.diverge(int64(r.Seq), MismatchPostVerify)
	}
	c.stats.PostVerifyChecked++
	if c.stats.PostVerifyChecked >= uint64(c.cfg.postVerify()) {
		c.finish()
	}
}

// Tick advances the controller by one shell clock iteration. The shell
// calls it after stepping the serving pipeline and must honour the
// returned TickResult in order: adopt Switched, inject Release, record
// Failed.
func (c *Controller) Tick() TickResult {
	if !c.Active() {
		return TickResult{}
	}
	c.ticks++
	c.switched, c.release = nil, nil
	switch c.stage {
	case StageMigrate:
		c.tickMigrate()
	case StageCanary:
		c.tickCanary()
	case StageCutover:
		c.tickCutover()
	case StagePostVerify:
		if c.ticks-c.stageTick > c.cfg.canaryDeadline() {
			// Traffic ended before the window filled; commit what we have.
			c.finish()
		}
	}
	res := TickResult{Switched: c.switched, Release: c.release, Failed: nil}
	if c.stage == StageRolledBack {
		res.Failed = c.failure
	}
	return res
}

// tickMigrate drains the bulk-copy cursor under the per-tick budget,
// then replays the delta log against the live old maps.
func (c *Controller) tickMigrate() {
	if c.deltaOverflow {
		c.fail(StageMigrate, ErrDeltaOverflow)
		return
	}
	budget := c.cfg.migrateBudget()
	for budget > 0 && c.bulkPos < len(c.bulk) {
		if err := c.bulk[c.bulkPos].apply(); err != nil {
			c.fail(StageMigrate, err)
			return
		}
		c.bulkPos++
		c.stats.MigratedEntries++
		c.counter(MetricMigrated)
		budget--
	}
	if c.bulkPos < len(c.bulk) {
		return
	}
	// Bulk copy complete: replay every write the data plane committed
	// while it ran. The shell steps the old pipeline only between ticks,
	// so no new delta can land during the replay.
	for _, d := range c.deltas {
		if err := c.plan.replay(d); err != nil {
			c.fail(StageMigrate, err)
			return
		}
		c.stats.DeltaReplayed++
		c.counter(MetricDeltaReplayed)
	}
	c.deltas = nil
	c.old.OnMapWrite(nil)
	c.bulk = nil
	c.stats.MigrationTicks = c.ticks
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Histogram(MetricMigrationTicks, obs.ExpBuckets(1, 4, 12)).Observe(c.ticks)
	}
	c.enter(StageCanary, c.stats.MigratedEntries)
}

// tickCanary steps the shadow one cycle and checks progress: a
// divergence or shadow fault rolls back, the packet target passing the
// final map diff enters cutover, the deadline expiring rolls back.
func (c *Controller) tickCanary() {
	if err := c.shadow.Step(); err != nil {
		c.fail(StageCanary, fmt.Errorf("%w: %v", ErrShadowFault, err))
		return
	}
	if c.canaryErr != nil {
		c.fail(StageCanary, c.canaryErr)
		return
	}
	if c.stats.CanariedPackets >= uint64(c.cfg.canaryPackets()) && c.shadow.Drained() {
		// Every mirrored verdict matched; the map effects must too.
		if err := conformance.CompareMaps(c.refEnv.Maps, c.shadow.Maps()); err != nil {
			c.diverge(obs.NoSeq, MismatchMaps)
			c.stats.CanaryDivergences++
			c.counter(MetricDivergences)
			c.fail(StageCanary, fmt.Errorf("%w: map effects: %v", ErrCanaryDiverged, err))
			return
		}
		c.old.Quiesce()
		c.drainAttempt = 1
		c.nextDrainCheck = c.ticks + hwsim.RecoveryBackoff(1, c.cfg.drainBackoff())
		c.enter(StageCutover, c.stats.CanariedPackets)
		return
	}
	if c.ticks-c.stageTick > c.cfg.canaryDeadline() {
		c.fail(StageCanary, ErrCanaryDeadline)
	}
}

// tickCutover holds ingress (via OfferPacket) while the old pipeline
// drains, checking at exponentially backed-off intervals, then commits
// the switch.
func (c *Controller) tickCutover() {
	if c.shadow.Busy() {
		if err := c.shadow.Step(); err != nil {
			c.fail(StageCutover, fmt.Errorf("%w: %v", ErrShadowFault, err))
			return
		}
	}
	if c.ticks-c.stageTick > c.cfg.drainDeadline() {
		c.fail(StageCutover, ErrDrainTimeout)
		return
	}
	if c.ticks < c.nextDrainCheck {
		return
	}
	if !c.old.Drained() || c.shadow.Busy() {
		c.drainAttempt++
		if c.drainAttempt > c.cfg.drainAttempts() {
			c.fail(StageCutover, ErrDrainTimeout)
			return
		}
		c.nextDrainCheck = c.ticks + hwsim.RecoveryBackoff(c.drainAttempt, c.cfg.drainBackoff())
		return
	}
	c.commit()
}

// commit is the atomic switch: wipe the canary's map effects back to
// the post-setup baseline, resynchronise every shared map from the old
// pipeline's drained final state, unlatch the clocks, and hand the
// shadow to the shell with the held packets.
func (c *Controller) commit() {
	if err := c.shadow.Maps().Restore(c.shadowBaseline); err != nil {
		c.fail(StageCutover, err)
		return
	}
	if err := c.refEnv.Maps.Restore(c.refBaseline); err != nil {
		c.fail(StageCutover, err)
		return
	}
	if err := c.plan.resync(); err != nil {
		c.fail(StageCutover, err)
		return
	}
	c.shadow.SetClock(c.clock)
	c.refEnv.Now = c.clock
	c.expected = make(map[uint64]conformance.Outcome)
	c.shadow.OnComplete(nil) // the shell re-registers its dispatcher
	c.stats.CutoverTicks = c.ticks - c.stageTick
	c.switched = c.shadow
	c.release = c.held
	c.stats.ReleasedPackets += uint64(len(c.held))
	c.held = nil
	if c.cfg.postVerify() > 0 {
		c.enter(StagePostVerify, c.stats.ReleasedPackets)
	} else {
		c.finish()
	}
}

// finish commits the update terminally.
func (c *Controller) finish() {
	c.shadow.KeepData(false)
	c.expected = nil
	c.enter(StageDone, c.stats.PostVerifyChecked)
}

// fail rolls the update back: the old pipeline resumes (its write hook
// removed, its ingress reopened), held packets are queued for release
// back into it, and the shadow is abandoned.
func (c *Controller) fail(stage Stage, err error) {
	c.failure = &UpdateError{Stage: stage, Err: err}
	c.old.OnMapWrite(nil)
	c.old.Resume()
	if c.shadow != nil {
		c.shadow.OnComplete(nil)
	}
	c.release = append(c.release, c.held...)
	c.stats.ReleasedPackets += uint64(len(c.held))
	c.held = nil
	c.stage = StageRolledBack
	c.event(StageRolledBack, uint64(stage))
}

// logDelta is the old pipeline's OnMapWrite hook during migration.
func (c *Controller) logDelta(mapID int, key string, deleted bool) {
	if _, migrates := c.plan.byOld[mapID]; !migrates {
		return
	}
	if len(c.deltas) >= c.cfg.deltaCap() {
		c.deltaOverflow = true
		return
	}
	c.deltas = append(c.deltas, delta{mapID: mapID, key: key, deleted: deleted})
}

// onShadowComplete diffs one mirrored packet against the reference
// outcome recorded under its sequence number at injection.
func (c *Controller) onShadowComplete(r hwsim.Result) {
	if c.stage != StageCanary {
		return
	}
	want, ok := c.expected[r.Seq]
	if !ok {
		return
	}
	delete(c.expected, r.Seq)
	got := conformance.Outcome{Action: r.Action, RedirectIfindex: r.RedirectIfindex, Data: r.Data}
	if err := conformance.CompareOutcome(got, want); err != nil {
		c.stats.CanaryDivergences++
		c.counter(MetricDivergences)
		c.diverge(int64(r.Seq), MismatchOutcome)
		if c.canaryErr == nil {
			c.canaryErr = fmt.Errorf("%w: packet %d: %v", ErrCanaryDiverged, r.Seq, err)
		}
		return
	}
	c.stats.CanariedPackets++
	c.counter(MetricCanaried)
}

// runReference executes one packet on the reference interpreter.
func (c *Controller) runReference(pkt []byte) (conformance.Outcome, error) {
	p := vm.NewPacket(append([]byte(nil), pkt...))
	res, err := c.refM.Run(p)
	if err != nil {
		return conformance.Outcome{}, err
	}
	return conformance.Outcome{
		Action:          res.Action,
		RedirectIfindex: res.RedirectIfindex,
		Data:            append([]byte(nil), p.Bytes()...),
	}, nil
}

// enter transitions to a stage and emits the phase event.
func (c *Controller) enter(stage Stage, detail uint64) {
	c.stage = stage
	c.stageTick = c.ticks
	c.event(stage, detail)
}

// event emits one KindUpdatePhase event.
func (c *Controller) event(stage Stage, detail uint64) {
	if c.cfg.Trace == nil {
		return
	}
	c.cfg.Trace.Emit(obs.Event{
		Cycle: c.old.Cycle(),
		Kind:  obs.KindUpdatePhase,
		Seq:   obs.NoSeq,
		Stage: obs.NoStage,
		Map:   obs.NoMap,
		Aux:   uint64(stage),
		Aux2:  detail,
	})
}

// diverge emits one KindCanaryDiverge event.
func (c *Controller) diverge(seq int64, mismatch uint64) {
	if c.cfg.Trace == nil {
		return
	}
	c.cfg.Trace.Emit(obs.Event{
		Cycle: c.old.Cycle(),
		Kind:  obs.KindCanaryDiverge,
		Seq:   seq,
		Stage: obs.NoStage,
		Map:   obs.NoMap,
		Aux:   mismatch,
	})
}

// counter bumps one named metric when a registry is attached.
func (c *Controller) counter(name string) {
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Counter(name).Inc()
	}
}
