// Package asm assembles eBPF programs from the textual form used by the
// Linux verifier and throughout the eHDL paper, e.g.
//
//	; toy packet counter
//	map stats array key=4 value=8 entries=4
//
//	r2 = *(u8 *)(r1 + 12)
//	r1 = *(u8 *)(r1 + 13)
//	r1 <<= 8
//	r1 |= r2
//	if r1 == 34525 goto ipv6
//	...
//	ipv6:
//	r1 = 2
//	exit
//
// Jump targets may be numeric slot deltas ("goto +4") or labels. Map
// references are written "r1 = map[stats] ll" and resolved against the
// map declarations.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"ehdl/internal/ebpf"
)

// SyntaxError describes an assembly failure with its source line.
type SyntaxError struct {
	Line int
	Text string
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Assemble parses source into a validated Program named name.
func Assemble(name, source string) (*ebpf.Program, error) {
	p := &parser{prog: &ebpf.Program{Name: name}}
	if err := p.run(source); err != nil {
		return nil, err
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type pendingRef struct {
	insIndex int
	label    string
	line     int
	text     string
}

type parser struct {
	prog    *ebpf.Program
	labels  map[string]int // label -> slot offset
	pending []pendingRef
	slot    int
}

func (p *parser) run(source string) error {
	p.labels = make(map[string]int)
	for lineNo, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := p.line(lineNo+1, line); err != nil {
			return err
		}
	}
	return p.resolve()
}

func stripComment(line string) string {
	for _, marker := range []string{";", "//", "#"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return strings.TrimSpace(line)
}

func (p *parser) errf(line int, text, format string, args ...any) error {
	return &SyntaxError{Line: line, Text: text, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) emit(ins ebpf.Instruction) {
	p.prog.Instructions = append(p.prog.Instructions, ins)
	p.slot += ins.Slots()
}

func (p *parser) line(lineNo int, line string) error {
	// Label definition.
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t=*") {
		label := strings.TrimSuffix(line, ":")
		if !isIdent(label) {
			return p.errf(lineNo, line, "invalid label %q", label)
		}
		if _, dup := p.labels[label]; dup {
			return p.errf(lineNo, line, "duplicate label %q", label)
		}
		p.labels[label] = p.slot
		return nil
	}
	// Map declaration.
	if strings.HasPrefix(line, "map ") {
		spec, err := parseMapDecl(line)
		if err != nil {
			return p.errf(lineNo, line, "%v", err)
		}
		p.prog.Maps = append(p.prog.Maps, spec)
		return nil
	}
	ins, label, err := parseInstruction(line)
	if err != nil {
		return p.errf(lineNo, line, "%v", err)
	}
	if label != "" {
		p.pending = append(p.pending, pendingRef{
			insIndex: len(p.prog.Instructions), label: label, line: lineNo, text: line,
		})
	}
	p.emit(ins)
	return nil
}

func (p *parser) resolve() error {
	offs := p.prog.SlotOffsets()
	for _, ref := range p.pending {
		target, ok := p.labels[ref.label]
		if !ok {
			return p.errf(ref.line, ref.text, "undefined label %q", ref.label)
		}
		ins := &p.prog.Instructions[ref.insIndex]
		delta := target - (offs[ref.insIndex] + ins.Slots())
		if delta < -(1<<15) || delta >= 1<<15 {
			return p.errf(ref.line, ref.text, "jump to %q out of 16-bit range", ref.label)
		}
		ins.Off = int16(delta)
	}
	return nil
}

// parseMapDecl parses "map <name> <kind> key=<n> value=<n> entries=<n>".
func parseMapDecl(line string) (ebpf.MapSpec, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return ebpf.MapSpec{}, fmt.Errorf("map declaration needs a name and a kind")
	}
	spec := ebpf.MapSpec{Name: fields[1]}
	switch fields[2] {
	case "array":
		spec.Kind = ebpf.MapArray
	case "hash":
		spec.Kind = ebpf.MapHash
	case "lru_hash":
		spec.Kind = ebpf.MapLRUHash
	case "lpm_trie":
		spec.Kind = ebpf.MapLPMTrie
	case "devmap":
		spec.Kind = ebpf.MapDevMap
	default:
		return ebpf.MapSpec{}, fmt.Errorf("unknown map kind %q", fields[2])
	}
	for _, kv := range fields[3:] {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return ebpf.MapSpec{}, fmt.Errorf("malformed map attribute %q", kv)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return ebpf.MapSpec{}, fmt.Errorf("malformed map attribute %q: %v", kv, err)
		}
		switch key {
		case "key":
			spec.KeySize = n
		case "value":
			spec.ValueSize = n
		case "entries":
			spec.MaxEntries = n
		default:
			return ebpf.MapSpec{}, fmt.Errorf("unknown map attribute %q", key)
		}
	}
	return spec, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
