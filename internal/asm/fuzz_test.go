package asm

import "testing"

// FuzzAssemble feeds arbitrary text to the assembler: it must either
// produce a valid program or fail cleanly, never panic.
func FuzzAssemble(f *testing.F) {
	f.Add("r0 = 2\nexit")
	f.Add(toySource)
	f.Add("map m hash key=4 value=8 entries=16\nr1 = map[m] ll\ncall 1\nexit")
	f.Add("if r1 == 5 goto x\nx:\nexit")
	f.Add("lock *(u64 *)(r1 + 0) += r2\nexit")
	f.Add("*(u32 *)(r10 - 4) = 0\nr0 = be16 r0\nexit")
	f.Add("goto +32767\nexit")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		// Anything accepted must validate and disassemble.
		if err := prog.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v", err)
		}
	})
}
