package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ehdl/internal/ebpf"
)

// toySource is the bytecode from Listing 2 of the paper, expressed in
// the assembler syntax with labels.
const toySource = `
; Toy packet counter from Listing 1/2 of the eHDL paper.
map stats array key=4 value=8 entries=4

r2 = *(u32 *)(r1 + 4)     ; data_end
r1 = *(u32 *)(r1 + 0)     ; data
r3 = 0
*(u32 *)(r10 - 4) = r3
r2 = *(u8 *)(r1 + 12)
r1 = *(u8 *)(r1 + 13)
r1 <<= 8
r1 |= r2
if r1 == 34525 goto ipv6
if r1 == 2054 goto arp
if r1 != 2048 goto lookup
r1 = 1
goto store
ipv6:
r1 = 2
goto store
arp:
r1 = 3
store:
*(u32 *)(r10 - 4) = r1
lookup:
r2 = r10
r2 += -4
r1 = map[stats] ll
call 1
r1 = r0
r0 = 3
if r1 == 0 goto out
r2 = 1
lock *(u64 *)(r1 + 0) += r2
out:
exit
`

func TestAssembleToy(t *testing.T) {
	prog, err := Assemble("toy", toySource)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Maps) != 1 || prog.Maps[0].Name != "stats" {
		t.Fatalf("maps = %+v", prog.Maps)
	}
	if got := prog.Maps[0]; got.Kind != ebpf.MapArray || got.KeySize != 4 || got.ValueSize != 8 || got.MaxEntries != 4 {
		t.Fatalf("stats spec = %+v", got)
	}
	if prog.Instructions[0].String() != "r2 = *(u32 *)(r1 + 4)" {
		t.Errorf("instruction 0 = %s", prog.Instructions[0])
	}
	// The branch at "if r1 == 34525" must skip to the ipv6 label.
	var ipv6Branch ebpf.Instruction
	for _, ins := range prog.Instructions {
		if ins.IsConditional() && ins.Imm == 34525 {
			ipv6Branch = ins
		}
	}
	if ipv6Branch.Off == 0 {
		t.Error("label ipv6 did not resolve to a forward offset")
	}
	// Atomic increment must round-trip.
	found := false
	for _, ins := range prog.Instructions {
		if ins.IsAtomic() && ins.AtomicOp() == ebpf.AtomicAdd {
			found = true
		}
	}
	if !found {
		t.Error("lock += did not assemble to an atomic add")
	}
}

func TestAssembleSingleLines(t *testing.T) {
	cases := []struct {
		src  string
		want ebpf.Instruction
	}{
		{"r1 = 5", ebpf.Mov64Imm(ebpf.R1, 5)},
		{"r1 = -5", ebpf.Mov64Imm(ebpf.R1, -5)},
		{"r1 = r2", ebpf.Mov64Reg(ebpf.R1, ebpf.R2)},
		{"w3 = 9", ebpf.Mov32Imm(ebpf.R3, 9)},
		{"w3 = w4", ebpf.Mov32Reg(ebpf.R3, ebpf.R4)},
		{"r1 += 7", ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, 7)},
		{"r1 -= r2", ebpf.ALU64Reg(ebpf.ALUSub, ebpf.R1, ebpf.R2)},
		{"r1 *= 3", ebpf.ALU64Imm(ebpf.ALUMul, ebpf.R1, 3)},
		{"r1 /= 2", ebpf.ALU64Imm(ebpf.ALUDiv, ebpf.R1, 2)},
		{"r1 %= 10", ebpf.ALU64Imm(ebpf.ALUMod, ebpf.R1, 10)},
		{"r1 &= 255", ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R1, 255)},
		{"r1 |= r2", ebpf.ALU64Reg(ebpf.ALUOr, ebpf.R1, ebpf.R2)},
		{"r1 ^= r1", ebpf.ALU64Reg(ebpf.ALUXor, ebpf.R1, ebpf.R1)},
		{"r1 <<= 8", ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R1, 8)},
		{"r1 >>= 4", ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R1, 4)},
		{"r1 s>>= 4", ebpf.ALU64Imm(ebpf.ALUArsh, ebpf.R1, 4)},
		{"w1 += w2", ebpf.ALU32Reg(ebpf.ALUAdd, ebpf.R1, ebpf.R2)},
		{"r1 = -r1", ebpf.Neg64(ebpf.R1)},
		{"r1 = be16 r1", ebpf.Swap(ebpf.R1, ebpf.SourceX, 16)},
		{"r1 = le64 r1", ebpf.Swap(ebpf.R1, ebpf.SourceK, 64)},
		{"r2 = *(u8 *)(r1 + 12)", ebpf.LoadMem(ebpf.SizeB, ebpf.R2, ebpf.R1, 12)},
		{"r2 = *(u64 *)(r10 - 16)", ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R10, -16)},
		{"*(u16 *)(r3 + 2) = r4", ebpf.StoreMem(ebpf.SizeH, ebpf.R3, 2, ebpf.R4)},
		{"*(u32 *)(r10 - 4) = 0", ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -4, 0)},
		{"r1 = 4294967296 ll", ebpf.LoadImm64(ebpf.R1, 1<<32)},
		{"r1 = 0x10 ll", ebpf.LoadImm64(ebpf.R1, 16)},
		{"lock *(u32 *)(r1 + 0) += r2", ebpf.Atomic(ebpf.SizeW, ebpf.R1, 0, ebpf.R2, ebpf.AtomicAdd)},
		{"lock *(u64 *)(r1 + 8) |= r2", ebpf.Atomic(ebpf.SizeDW, ebpf.R1, 8, ebpf.R2, ebpf.AtomicOr)},
		{"lock *(u64 *)(r1 + 0) += r2 fetch", ebpf.Atomic(ebpf.SizeDW, ebpf.R1, 0, ebpf.R2, ebpf.AtomicAdd|ebpf.AtomicFetch)},
		{"goto +3", ebpf.Ja(3)},
		{"if r1 == 2048 goto +2", ebpf.JumpImmOp(ebpf.JumpEq, ebpf.R1, 2048, 2)},
		{"if r1 != r2 goto -4", ebpf.JumpRegOp(ebpf.JumpNE, ebpf.R1, ebpf.R2, -4)},
		{"if r3 s> -1 goto +1", ebpf.JumpImmOp(ebpf.JumpSGT, ebpf.R3, -1, 1)},
		{"if w1 == 7 goto +1", ebpf.Jump32ImmOp(ebpf.JumpEq, ebpf.R1, 7, 1)},
		{"if r2 & 1 goto +1", ebpf.JumpImmOp(ebpf.JumpSet, ebpf.R2, 1, 1)},
		{"call 1", ebpf.Call(ebpf.HelperMapLookupElem)},
		{"call bpf_ktime_get_ns", ebpf.Call(ebpf.HelperKtimeGetNs)},
		{"exit", ebpf.Exit()},
	}
	for _, c := range cases {
		ins, label, err := parseInstruction(c.src)
		if err != nil {
			t.Errorf("parse(%q): %v", c.src, err)
			continue
		}
		if label != "" {
			t.Errorf("parse(%q) produced unexpected label %q", c.src, label)
		}
		if ins != c.want {
			t.Errorf("parse(%q) = %+v, want %+v", c.src, ins, c.want)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"r1 =",
		"r11 = 5",
		"r1 = *(u24 *)(r2 + 0)",
		"r1 = *(u32 *)(w2 + 0)",
		"if r1 == 5",
		"if r1 ~ 5 goto +1",
		"goto nowhere\nexit", // undefined label
		"x: \nx:\nexit",      // duplicate label (parsed as labels)
		"map m array key=4",  // missing attributes (caught by validate)
		"map m funky key=4 value=4 entries=1",
		"lock *(u64 *)(r1 + 0) ~= r2",
		"r1 = be24 r1",
		"call not_a_helper",
		"w1 = 1 ll",
		"r1 = map[oops ll",
		"*(u32 *)(r10 - 4)",
	}
	for _, src := range cases {
		if _, err := Assemble("t", src+"\nexit"); err == nil {
			t.Errorf("Assemble(%q) unexpectedly succeeded", src)
		}
	}
}

func TestCommentStyles(t *testing.T) {
	prog, err := Assemble("c", `
r0 = 1 ; semicolon
r0 = 2 // slashes
r0 = 3 # hash
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Instructions) != 4 {
		t.Fatalf("got %d instructions, want 4", len(prog.Instructions))
	}
}

func TestBuilder(t *testing.T) {
	prog, err := NewBuilder("b").
		DeclareMap(ebpf.MapSpec{Name: "m", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 4, MaxEntries: 16}).
		Emit(ebpf.Mov64Imm(ebpf.R0, 1)).
		JumpTo(ebpf.JumpEq, ebpf.R0, 1, "done").
		Emit(ebpf.Mov64Imm(ebpf.R0, 2)).
		Label("done").
		Emit(ebpf.Exit()).
		Program()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Instructions[1].Off != 1 {
		t.Errorf("builder branch offset = %d, want 1", prog.Instructions[1].Off)
	}
	if _, err := NewBuilder("bad").GotoLabel("missing").Emit(ebpf.Exit()).Program(); err == nil {
		t.Error("builder accepted an undefined label")
	}
	if _, err := NewBuilder("dup").Label("x").Label("x").Emit(ebpf.Exit()).Program(); err == nil {
		t.Error("builder accepted a duplicate label")
	}
}

// TestPropertyDisassembleReassemble checks that the disassembler output
// for label-free programs reassembles to the identical instruction
// stream.
func TestPropertyDisassembleReassemble(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomStraightLineProgram(r)
		text := ebpf.Disassemble(prog.Instructions)
		// Strip the "  N: " prefixes.
		var cleaned []string
		for _, line := range strings.Split(text, "\n") {
			if _, rest, found := strings.Cut(line, ": "); found {
				cleaned = append(cleaned, rest)
			}
		}
		got, err := Assemble(prog.Name, strings.Join(cleaned, "\n"))
		if err != nil {
			t.Logf("seed %d: reassembly failed: %v\n%s", seed, err, text)
			return false
		}
		if len(got.Instructions) != len(prog.Instructions) {
			return false
		}
		for i := range got.Instructions {
			if got.Instructions[i] != prog.Instructions[i] {
				t.Logf("seed %d: instruction %d: got %v want %v", seed, i, got.Instructions[i], prog.Instructions[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomStraightLineProgram builds a small valid branch-free program.
func randomStraightLineProgram(r *rand.Rand) *ebpf.Program {
	reg := func() ebpf.Register { return ebpf.Register(r.Intn(10)) } // avoid r10 writes
	n := 1 + r.Intn(20)
	insns := make([]ebpf.Instruction, 0, n+1)
	aluOps := []ebpf.ALUOp{ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUMul, ebpf.ALUOr, ebpf.ALUAnd, ebpf.ALULsh, ebpf.ALURsh, ebpf.ALUXor, ebpf.ALUMov, ebpf.ALUArsh}
	sizes := []ebpf.Size{ebpf.SizeB, ebpf.SizeH, ebpf.SizeW, ebpf.SizeDW}
	for i := 0; i < n; i++ {
		switch r.Intn(8) {
		case 0:
			insns = append(insns, ebpf.ALU64Imm(aluOps[r.Intn(len(aluOps))], reg(), int32(r.Intn(1000)-500)))
		case 1:
			insns = append(insns, ebpf.ALU64Reg(aluOps[r.Intn(len(aluOps))], reg(), reg()))
		case 2:
			insns = append(insns, ebpf.LoadMem(sizes[r.Intn(4)], reg(), reg(), int16(r.Intn(64))))
		case 3:
			insns = append(insns, ebpf.StoreMem(sizes[r.Intn(4)], ebpf.R10, int16(-8*(1+r.Intn(8))), reg()))
		case 4:
			insns = append(insns, ebpf.StoreImm(sizes[r.Intn(4)], ebpf.R10, int16(-8*(1+r.Intn(8))), int32(r.Intn(256))))
		case 5:
			insns = append(insns, ebpf.LoadImm64(reg(), int64(r.Uint64()>>1)))
		case 6:
			insns = append(insns, ebpf.Atomic([]ebpf.Size{ebpf.SizeW, ebpf.SizeDW}[r.Intn(2)], reg(), int16(r.Intn(32)), reg(), ebpf.AtomicAdd))
		case 7:
			insns = append(insns, ebpf.Call(ebpf.HelperKtimeGetNs))
		}
	}
	insns = append(insns, ebpf.Exit())
	return &ebpf.Program{Name: "random", Instructions: insns}
}

func TestAssembleExchangeForms(t *testing.T) {
	cases := []struct {
		src  string
		want ebpf.Instruction
	}{
		{"lock xchg *(u64 *)(r3 + 0) r2", ebpf.Atomic(ebpf.SizeDW, ebpf.R3, 0, ebpf.R2, ebpf.AtomicXchg)},
		{"lock cmpxchg *(u32 *)(r1 - 8) r5", ebpf.Atomic(ebpf.SizeW, ebpf.R1, -8, ebpf.R5, ebpf.AtomicCmpXchg)},
	}
	for _, c := range cases {
		ins, _, err := parseInstruction(c.src)
		if err != nil {
			t.Fatalf("parse(%q): %v", c.src, err)
		}
		if ins != c.want {
			t.Errorf("parse(%q) = %+v, want %+v", c.src, ins, c.want)
		}
		if ins.String() != c.src {
			t.Errorf("round trip: %q -> %q", c.src, ins.String())
		}
	}
	if _, _, err := parseInstruction("lock xchg *(u64 *)(r3 + 0) w2"); err == nil {
		t.Error("accepted a 32-bit exchange source register")
	}
}
