package asm

import (
	"fmt"

	"ehdl/internal/ebpf"
)

// Builder constructs eBPF programs programmatically with symbolic jump
// targets, as an alternative to the textual assembler.
type Builder struct {
	name    string
	insns   []ebpf.Instruction
	maps    []ebpf.MapSpec
	labels  map[string]int // label -> slot offset
	fixups  []builderFixup
	slot    int
	failure error
}

type builderFixup struct {
	insIndex int
	label    string
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.failure == nil {
		b.failure = fmt.Errorf("asm: builder %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// DeclareMap adds a map declaration.
func (b *Builder) DeclareMap(spec ebpf.MapSpec) *Builder {
	b.maps = append(b.maps, spec)
	return b
}

// Label defines a jump target at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = b.slot
	return b
}

// Emit appends instructions verbatim.
func (b *Builder) Emit(insns ...ebpf.Instruction) *Builder {
	for _, ins := range insns {
		b.insns = append(b.insns, ins)
		b.slot += ins.Slots()
	}
	return b
}

// JumpTo appends "if dst <op> imm goto label".
func (b *Builder) JumpTo(op ebpf.JumpOp, dst ebpf.Register, imm int32, label string) *Builder {
	b.fixups = append(b.fixups, builderFixup{insIndex: len(b.insns), label: label})
	return b.Emit(ebpf.JumpImmOp(op, dst, imm, 0))
}

// JumpRegTo appends "if dst <op> src goto label".
func (b *Builder) JumpRegTo(op ebpf.JumpOp, dst, src ebpf.Register, label string) *Builder {
	b.fixups = append(b.fixups, builderFixup{insIndex: len(b.insns), label: label})
	return b.Emit(ebpf.JumpRegOp(op, dst, src, 0))
}

// GotoLabel appends an unconditional jump to label.
func (b *Builder) GotoLabel(label string) *Builder {
	b.fixups = append(b.fixups, builderFixup{insIndex: len(b.insns), label: label})
	return b.Emit(ebpf.Ja(0))
}

// Program resolves all labels and validates the result.
func (b *Builder) Program() (*ebpf.Program, error) {
	if b.failure != nil {
		return nil, b.failure
	}
	prog := &ebpf.Program{Name: b.name, Instructions: b.insns, Maps: b.maps}
	offs := prog.SlotOffsets()
	for _, fix := range b.fixups {
		target, ok := b.labels[fix.label]
		if !ok {
			return nil, fmt.Errorf("asm: builder %q: undefined label %q", b.name, fix.label)
		}
		ins := &prog.Instructions[fix.insIndex]
		delta := target - (offs[fix.insIndex] + ins.Slots())
		if delta < -(1<<15) || delta >= 1<<15 {
			return nil, fmt.Errorf("asm: builder %q: jump to %q out of range", b.name, fix.label)
		}
		ins.Off = int16(delta)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}
