package asm

import (
	"fmt"
	"strconv"
	"strings"

	"ehdl/internal/ebpf"
)

// operand is a parsed register or immediate.
type operand struct {
	reg    ebpf.Register
	isReg  bool
	is32   bool
	imm    int64
	mapRef string
	isMap  bool
}

// parseInstruction parses one instruction line. When the instruction is
// a branch to a label, the label is returned for later resolution and
// the emitted offset is zero.
func parseInstruction(line string) (ebpf.Instruction, string, error) {
	switch {
	case line == "exit":
		return ebpf.Exit(), "", nil
	case strings.HasPrefix(line, "call "):
		return parseCall(strings.TrimSpace(line[5:]))
	case strings.HasPrefix(line, "goto "):
		return parseGoto(strings.TrimSpace(line[5:]))
	case strings.HasPrefix(line, "if "):
		return parseBranch(strings.TrimSpace(line[3:]))
	case strings.HasPrefix(line, "lock "):
		return parseAtomic(strings.TrimSpace(line[5:]))
	case strings.HasPrefix(line, "*("):
		return parseStore(line)
	}
	return parseAssign(line)
}

func parseCall(arg string) (ebpf.Instruction, string, error) {
	if n, err := strconv.ParseInt(arg, 0, 32); err == nil {
		return ebpf.Call(ebpf.HelperID(n)), "", nil
	}
	if id, ok := ebpf.HelperByName(arg); ok {
		return ebpf.Call(id), "", nil
	}
	return ebpf.Instruction{}, "", fmt.Errorf("unknown helper %q", arg)
}

func parseGoto(arg string) (ebpf.Instruction, string, error) {
	if off, ok := parseJumpDelta(arg); ok {
		return ebpf.Ja(off), "", nil
	}
	if isIdent(arg) {
		return ebpf.Ja(0), arg, nil
	}
	return ebpf.Instruction{}, "", fmt.Errorf("malformed jump target %q", arg)
}

func parseJumpDelta(arg string) (int16, bool) {
	if !strings.HasPrefix(arg, "+") && !strings.HasPrefix(arg, "-") {
		return 0, false
	}
	n, err := strconv.ParseInt(arg, 10, 16)
	if err != nil {
		return 0, false
	}
	return int16(n), true
}

// branch comparison operators, longest first so prefix matching works.
var cmpOps = []struct {
	tok string
	op  ebpf.JumpOp
}{
	{"s>=", ebpf.JumpSGE},
	{"s<=", ebpf.JumpSLE},
	{"==", ebpf.JumpEq},
	{"!=", ebpf.JumpNE},
	{">=", ebpf.JumpGE},
	{"<=", ebpf.JumpLE},
	{"s>", ebpf.JumpSGT},
	{"s<", ebpf.JumpSLT},
	{">", ebpf.JumpGT},
	{"<", ebpf.JumpLT},
	{"&", ebpf.JumpSet},
}

func parseBranch(arg string) (ebpf.Instruction, string, error) {
	cond, target, found := strings.Cut(arg, " goto ")
	if !found {
		return ebpf.Instruction{}, "", fmt.Errorf("conditional branch without goto")
	}
	cond = strings.TrimSpace(cond)
	target = strings.TrimSpace(target)

	fields := strings.Fields(cond)
	if len(fields) != 3 {
		return ebpf.Instruction{}, "", fmt.Errorf("malformed condition %q", cond)
	}
	lhs, err := parseOperand(fields[0])
	if err != nil {
		return ebpf.Instruction{}, "", err
	}
	if !lhs.isReg {
		return ebpf.Instruction{}, "", fmt.Errorf("condition left side must be a register: %q", cond)
	}
	var op ebpf.JumpOp
	opFound := false
	for _, c := range cmpOps {
		if fields[1] == c.tok {
			op, opFound = c.op, true
			break
		}
	}
	if !opFound {
		return ebpf.Instruction{}, "", fmt.Errorf("unknown comparison %q", fields[1])
	}
	rhs, err := parseOperand(fields[2])
	if err != nil {
		return ebpf.Instruction{}, "", err
	}

	cls := ebpf.ClassJMP
	if lhs.is32 {
		cls = ebpf.ClassJMP32
	}
	var ins ebpf.Instruction
	if rhs.isReg {
		if rhs.is32 != lhs.is32 {
			return ebpf.Instruction{}, "", fmt.Errorf("mixed 32/64-bit comparison %q", cond)
		}
		ins = ebpf.Instruction{Op: uint8(cls) | uint8(ebpf.SourceX) | uint8(op), Dst: lhs.reg, Src: rhs.reg}
	} else {
		if rhs.imm < -(1<<31) || rhs.imm >= 1<<31 {
			return ebpf.Instruction{}, "", fmt.Errorf("comparison immediate %d out of 32-bit range", rhs.imm)
		}
		ins = ebpf.Instruction{Op: uint8(cls) | uint8(ebpf.SourceK) | uint8(op), Dst: lhs.reg, Imm: int32(rhs.imm)}
	}
	if off, ok := parseJumpDelta(target); ok {
		ins.Off = off
		return ins, "", nil
	}
	if isIdent(target) {
		return ins, target, nil
	}
	return ebpf.Instruction{}, "", fmt.Errorf("malformed jump target %q", target)
}

// parseMemRef parses "*(u32 *)(r1 + 4)" returning size, base and offset,
// plus the remainder of the line after the closing parenthesis.
func parseMemRef(s string) (ebpf.Size, ebpf.Register, int16, string, error) {
	rest, found := strings.CutPrefix(s, "*(")
	if !found {
		return 0, 0, 0, "", fmt.Errorf("malformed memory reference %q", s)
	}
	sizeStr, rest, found := strings.Cut(rest, "*)")
	if !found {
		return 0, 0, 0, "", fmt.Errorf("malformed memory reference %q", s)
	}
	var size ebpf.Size
	switch strings.TrimSpace(sizeStr) {
	case "u8":
		size = ebpf.SizeB
	case "u16":
		size = ebpf.SizeH
	case "u32":
		size = ebpf.SizeW
	case "u64":
		size = ebpf.SizeDW
	default:
		return 0, 0, 0, "", fmt.Errorf("unknown access size %q", strings.TrimSpace(sizeStr))
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "(") {
		return 0, 0, 0, "", fmt.Errorf("malformed address in %q", s)
	}
	addr, rest, found := strings.Cut(rest[1:], ")")
	if !found {
		return 0, 0, 0, "", fmt.Errorf("unterminated address in %q", s)
	}
	base, off, err := parseAddress(strings.TrimSpace(addr))
	if err != nil {
		return 0, 0, 0, "", err
	}
	return size, base, off, strings.TrimSpace(rest), nil
}

// parseAddress parses "r1 + 4", "r10 - 8" or "r2".
func parseAddress(addr string) (ebpf.Register, int16, error) {
	var sign int64 = 1
	regStr, offStr := addr, ""
	if i := strings.IndexAny(addr, "+-"); i >= 0 {
		if addr[i] == '-' {
			sign = -1
		}
		regStr = strings.TrimSpace(addr[:i])
		offStr = strings.TrimSpace(addr[i+1:])
	}
	reg, is32, ok := parseRegister(regStr)
	if !ok || is32 {
		return 0, 0, fmt.Errorf("malformed base register %q", regStr)
	}
	if offStr == "" {
		return reg, 0, nil
	}
	n, err := strconv.ParseInt(offStr, 0, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("malformed offset %q: %v", offStr, err)
	}
	return reg, int16(sign * n), nil
}

func parseStore(line string) (ebpf.Instruction, string, error) {
	size, base, off, rest, err := parseMemRef(line)
	if err != nil {
		return ebpf.Instruction{}, "", err
	}
	val, found := strings.CutPrefix(rest, "=")
	if !found {
		return ebpf.Instruction{}, "", fmt.Errorf("store without value: %q", line)
	}
	op, err := parseOperand(strings.TrimSpace(val))
	if err != nil {
		return ebpf.Instruction{}, "", err
	}
	if op.isReg {
		return ebpf.StoreMem(size, base, off, op.reg), "", nil
	}
	if op.imm < -(1<<31) || op.imm >= 1<<31 {
		return ebpf.Instruction{}, "", fmt.Errorf("store immediate %d out of 32-bit range", op.imm)
	}
	return ebpf.StoreImm(size, base, off, int32(op.imm)), "", nil
}

func parseAtomic(arg string) (ebpf.Instruction, string, error) {
	// Exchange forms: "lock xchg *(u64 *)(r1 + 0) r2" and
	// "lock cmpxchg *(u64 *)(r1 + 0) r2" (cmpxchg compares against R0).
	for _, x := range []struct {
		prefix string
		op     ebpf.AtomicOp
	}{{"xchg ", ebpf.AtomicXchg}, {"cmpxchg ", ebpf.AtomicCmpXchg}} {
		memAndSrc, found := strings.CutPrefix(arg, x.prefix)
		if !found {
			continue
		}
		size, base, off, rest, err := parseMemRef(strings.TrimSpace(memAndSrc))
		if err != nil {
			return ebpf.Instruction{}, "", err
		}
		src, is32, ok := parseRegister(strings.TrimSpace(rest))
		if !ok || is32 {
			return ebpf.Instruction{}, "", fmt.Errorf("malformed %s source %q", strings.TrimSpace(x.prefix), rest)
		}
		return ebpf.Atomic(size, base, off, src, x.op), "", nil
	}

	size, base, off, rest, err := parseMemRef(arg)
	if err != nil {
		return ebpf.Instruction{}, "", err
	}
	var op ebpf.AtomicOp
	var opTok string
	for _, c := range []struct {
		tok string
		op  ebpf.AtomicOp
	}{{"+=", ebpf.AtomicAdd}, {"|=", ebpf.AtomicOr}, {"&=", ebpf.AtomicAnd}, {"^=", ebpf.AtomicXor}} {
		if strings.HasPrefix(rest, c.tok) {
			op, opTok = c.op, c.tok
			break
		}
	}
	if opTok == "" {
		return ebpf.Instruction{}, "", fmt.Errorf("unknown atomic operation in %q", arg)
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, opTok))
	if fetchless, found := strings.CutSuffix(rest, " fetch"); found {
		op |= ebpf.AtomicFetch
		rest = strings.TrimSpace(fetchless)
	}
	src, is32, ok := parseRegister(rest)
	if !ok || is32 {
		return ebpf.Instruction{}, "", fmt.Errorf("malformed atomic source %q", rest)
	}
	return ebpf.Atomic(size, base, off, src, op), "", nil
}

// alu compound-assignment operators, longest first.
var aluOps = []struct {
	tok string
	op  ebpf.ALUOp
}{
	{"s>>=", ebpf.ALUArsh},
	{"<<=", ebpf.ALULsh},
	{">>=", ebpf.ALURsh},
	{"+=", ebpf.ALUAdd},
	{"-=", ebpf.ALUSub},
	{"*=", ebpf.ALUMul},
	{"/=", ebpf.ALUDiv},
	{"%=", ebpf.ALUMod},
	{"&=", ebpf.ALUAnd},
	{"|=", ebpf.ALUOr},
	{"^=", ebpf.ALUXor},
}

func parseAssign(line string) (ebpf.Instruction, string, error) {
	// Destination register first.
	var dstStr string
	var rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		dstStr, rest = line[:i], strings.TrimSpace(line[i:])
	} else {
		return ebpf.Instruction{}, "", fmt.Errorf("malformed statement %q", line)
	}
	dst, is32, ok := parseRegister(dstStr)
	if !ok {
		return ebpf.Instruction{}, "", fmt.Errorf("expected destination register, got %q", dstStr)
	}
	cls := ebpf.ClassALU64
	if is32 {
		cls = ebpf.ClassALU
	}

	// Compound assignment: "rX += ...".
	for _, c := range aluOps {
		if rhs, found := strings.CutPrefix(rest, c.tok+" "); found {
			return parseALURHS(cls, c.op, dst, strings.TrimSpace(rhs), is32)
		}
	}

	rhs, found := strings.CutPrefix(rest, "= ")
	if !found {
		return ebpf.Instruction{}, "", fmt.Errorf("malformed statement %q", line)
	}
	rhs = strings.TrimSpace(rhs)

	switch {
	case strings.HasPrefix(rhs, "*("): // load
		size, base, off, trailing, err := parseMemRef(rhs)
		if err != nil {
			return ebpf.Instruction{}, "", err
		}
		if trailing != "" {
			return ebpf.Instruction{}, "", fmt.Errorf("trailing input %q", trailing)
		}
		if is32 {
			return ebpf.Instruction{}, "", fmt.Errorf("loads target 64-bit registers: %q", line)
		}
		return ebpf.LoadMem(size, dst, base, off), "", nil

	case strings.HasPrefix(rhs, "-"): // negation of a register, or negative immediate
		if src, srcIs32, ok := parseRegister(strings.TrimSpace(rhs[1:])); ok {
			if src != dst || srcIs32 != is32 {
				return ebpf.Instruction{}, "", fmt.Errorf("negation must be in place: %q", line)
			}
			return ebpf.Instruction{Op: uint8(cls) | uint8(ebpf.ALUNeg), Dst: dst}, "", nil
		}

	case strings.HasPrefix(rhs, "be") || strings.HasPrefix(rhs, "le"): // byte swap
		if ins, ok, err := parseSwap(cls, dst, rhs, is32); ok || err != nil {
			return ins, "", err
		}

	case strings.HasSuffix(rhs, " ll"): // 64-bit immediate or map reference
		if is32 {
			return ebpf.Instruction{}, "", fmt.Errorf("lddw targets 64-bit registers: %q", line)
		}
		return parseLDDW(dst, strings.TrimSpace(strings.TrimSuffix(rhs, " ll")))
	}

	return parseALURHS(cls, ebpf.ALUMov, dst, rhs, is32)
}

func parseSwap(cls ebpf.Class, dst ebpf.Register, rhs string, is32 bool) (ebpf.Instruction, bool, error) {
	fields := strings.Fields(rhs)
	if len(fields) != 2 {
		return ebpf.Instruction{}, false, nil
	}
	dir := fields[0][:2]
	width, err := strconv.Atoi(fields[0][2:])
	if err != nil {
		return ebpf.Instruction{}, false, nil
	}
	src, srcIs32, ok := parseRegister(fields[1])
	if !ok {
		return ebpf.Instruction{}, false, nil
	}
	if src != dst || srcIs32 || is32 {
		return ebpf.Instruction{}, true, fmt.Errorf("byte swap must be in place on a 64-bit register")
	}
	_ = cls
	source := ebpf.SourceK
	if dir == "be" {
		source = ebpf.SourceX
	}
	ins := ebpf.Swap(dst, source, int32(width))
	if err := ins.Validate(); err != nil {
		return ebpf.Instruction{}, true, err
	}
	return ins, true, nil
}

func parseLDDW(dst ebpf.Register, arg string) (ebpf.Instruction, string, error) {
	if name, found := strings.CutPrefix(arg, "map["); found {
		name, closed := strings.CutSuffix(name, "]")
		if !closed || !isIdent(name) {
			return ebpf.Instruction{}, "", fmt.Errorf("malformed map reference %q", arg)
		}
		return ebpf.LoadMapRef(dst, name), "", nil
	}
	n, err := strconv.ParseInt(arg, 0, 64)
	if err != nil {
		return ebpf.Instruction{}, "", fmt.Errorf("malformed 64-bit immediate %q: %v", arg, err)
	}
	return ebpf.LoadImm64(dst, n), "", nil
}

func parseALURHS(cls ebpf.Class, op ebpf.ALUOp, dst ebpf.Register, rhs string, is32 bool) (ebpf.Instruction, string, error) {
	o, err := parseOperand(rhs)
	if err != nil {
		return ebpf.Instruction{}, "", err
	}
	if o.isReg {
		if o.is32 != is32 {
			return ebpf.Instruction{}, "", fmt.Errorf("mixed 32/64-bit operands in %q", rhs)
		}
		return ebpf.Instruction{Op: uint8(cls) | uint8(ebpf.SourceX) | uint8(op), Dst: dst, Src: o.reg}, "", nil
	}
	if o.imm < -(1<<31) || o.imm >= 1<<31 {
		return ebpf.Instruction{}, "", fmt.Errorf("immediate %d out of 32-bit range (use 'll')", o.imm)
	}
	return ebpf.Instruction{Op: uint8(cls) | uint8(ebpf.SourceK) | uint8(op), Dst: dst, Imm: int32(o.imm)}, "", nil
}

func parseOperand(s string) (operand, error) {
	if reg, is32, ok := parseRegister(s); ok {
		return operand{reg: reg, isReg: true, is32: is32}, nil
	}
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return operand{}, fmt.Errorf("malformed operand %q", s)
	}
	return operand{imm: n}, nil
}

func parseRegister(s string) (reg ebpf.Register, is32, ok bool) {
	if len(s) < 2 || len(s) > 3 {
		return 0, false, false
	}
	switch s[0] {
	case 'r':
	case 'w':
		is32 = true
	default:
		return 0, false, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 10 {
		return 0, false, false
	}
	return ebpf.Register(n), is32, true
}
