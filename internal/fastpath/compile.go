// Package fastpath executes compiled eHDL pipelines at host speed.
//
// The cycle-accurate simulator (internal/hwsim) advances a design one
// stage per clock and models the map-consistency machinery — WAR write
// shadows, RAW flush evaluation, stalls — in full. That fidelity costs
// microseconds per packet on the host, which BENCH_baseline.json shows
// is now the real bottleneck. This package is the second execution
// mode: Compile specializes a design once into a per-stage closure
// chain (constants folded, map handles captured, predicate bits wired),
// and Machine runs each packet through the chain with no per-packet
// heap allocation on the happy path.
//
// The compiled path is sequential: a packet fully executes at ingress,
// and a lightweight timing skeleton reproduces the interpreter's
// hazard-free injection pacing, pipeline-depth latency and queue
// accounting. The existing differential suite proves the pipelined
// interpreter equivalent to the sequential reference on verdicts, map
// effects and packet bytes, so the fast path is bit-identical to both
// wherever it is eligible to run; the interpreter remains the oracle
// (internal/conformance runs vm, hwsim and fastpath three ways). Fault
// injection, memory protection, stall policy, strict carry checking and
// cycle-level observability keep the interpreter (see Eligible and the
// fallback matrix in DESIGN.md).
package fastpath

import (
	"errors"
	"fmt"

	"ehdl/internal/core"
	"ehdl/internal/ddg"
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/vm"
)

// errNoLookup mirrors the interpreter's error for a statically wired map
// access whose lookup missed (or never ran); it propagates as a run
// error exactly like hwsim's.
var errNoLookup = errors.New("map access without a preceding lookup hit")

// compiledOp is one specialized micro-operation: the block-enable bit
// that gates it and the fused closure that executes it. The infallible
// register-only kinds (ALU chains, constant loads, branch predicates)
// carry their closure in a dedicated field so the dispatch loop calls
// them directly — no wrapper closure, no error check on ops that
// cannot fail.
type compiledOp struct {
	blockID  int
	stage    int32                   // originating pipeline stage (done-ness boundary)
	skip     int                     // index after this op's contiguous block run
	fall     int                     // successor enabled after alu (-1: none)
	alu      func(st *vm.State)      // register-only op; nil → pred or run
	pred     func(st *vm.State) bool // branch predicate; nil → run
	taken    int
	notTaken int
	run      func(m *Machine) error // everything that can touch memory or fail
}

// Prog is a design compiled for host-speed execution. It is immutable
// after Compile and safe to share across Machines (each replica of a
// multi-queue engine binds the same Prog to its own map environment).
// The ops of every stage live in one flat slice — the dispatch loop
// detects stage boundaries by the op's stage field, where exit/fault
// done-ness takes effect (ops within a stage run "in parallel").
type Prog struct {
	pl  *core.Pipeline
	ops []compiledOp

	depth      int // full pipeline depth, framing NOPs included
	numBlocks  int // entries in the per-block enable epoch array
	frameBytes int
	numMaps    int

	// [stackLo, stackHi) is the union of stack bytes any packet can
	// write: every other stack byte stays zero forever, so the
	// per-packet reset only clears this span. A store whose target is
	// not statically known widens it to the whole frame.
	stackLo, stackHi int
}

// Pipeline returns the design the program was compiled from.
func (p *Prog) Pipeline() *core.Pipeline { return p.pl }

// Depth returns the pipeline depth the timing skeleton models.
func (p *Prog) Depth() int { return p.depth }

// Compile specializes a design into per-stage closure chains. Every op
// constant — immediates, static addresses, map identifiers, stack slots
// of helper arguments, successor block bits — is folded at compile time
// so the per-packet path only moves data.
func Compile(pl *core.Pipeline) (*Prog, error) {
	if len(pl.Stages) == 0 {
		return nil, fmt.Errorf("fastpath: empty pipeline")
	}
	p := &Prog{
		pl:         pl,
		depth:      len(pl.Stages),
		numBlocks:  len(pl.Blocks) + 1,
		frameBytes: pl.Options.FrameBytes,
		numMaps:    len(pl.Transformed.Maps),
	}
	if p.frameBytes <= 0 {
		p.frameBytes = 64
	}
	p.stackLo, p.stackHi = stackWriteExtent(pl)
	for t := range pl.Stages {
		stage := &pl.Stages[t]
		if stage.Kind != core.StageNormal || len(stage.Ops) == 0 {
			continue
		}
		for i := range stage.Ops {
			op := &stage.Ops[i]
			co, err := compileOp(pl, op)
			if err != nil {
				return nil, fmt.Errorf("fastpath: stage %d (%s): %w", t, op.Ins, err)
			}
			co.blockID = op.BlockID
			co.stage = int32(t)
			p.ops = append(p.ops, co)
		}
	}
	// A disabled block is skipped in one hop: each op records the index
	// just past its contiguous same-block run. Nothing executes inside
	// such a run, so a block observed disabled at its head cannot become
	// enabled before the run ends.
	for i := len(p.ops) - 1; i >= 0; i-- {
		if i+1 < len(p.ops) && p.ops[i+1].blockID == p.ops[i].blockID {
			p.ops[i].skip = p.ops[i+1].skip
		} else {
			p.ops[i].skip = i + 1
		}
	}
	return p, nil
}

// stackWriteExtent statically bounds the stack bytes the pipeline can
// write. Stores and atomics with an elided static base either hit a
// known stack slot (extending the extent) or a non-stack area (no
// stack effect); a register-relative store could land anywhere, so it
// widens the extent to the full frame. Helpers and map calls read the
// stack but never write it.
func stackWriteExtent(pl *core.Pipeline) (lo, hi int) {
	lo, hi = ebpf.StackSize, 0
	extend := func(a, b int) {
		if a < lo {
			lo = a
		}
		if b > hi {
			hi = b
		}
	}
	for t := range pl.Stages {
		for i := range pl.Stages[t].Ops {
			op := &pl.Stages[t].Ops[i]
			if op.Kind != core.OpStore && op.Kind != core.OpAtomic {
				continue
			}
			if op.BaseElided && op.Access != nil {
				if op.Access.Area == ddg.AreaStack {
					slot := ebpf.StackSize + int(op.Access.Off)
					extend(slot, slot+op.Ins.MemSize().Bytes())
				}
				continue
			}
			return 0, ebpf.StackSize
		}
	}
	if hi < lo {
		lo, hi = 0, 0
	}
	return lo, hi
}

// fallBlock resolves the fallthrough successor a non-branch op enables
// when it ends its block (-1 when none fires).
func fallBlock(op *core.Op) int {
	if op.EndsBlock && op.Kind != core.OpBranch && op.Kind != core.OpExit && op.FallBlock >= 0 {
		return op.FallBlock
	}
	return -1
}

// compileOp specializes one micro-operation. The semantics replicate
// hwsim's execOp exactly, minus the hazard, fault and protection
// machinery the fast path is never eligible to run with. Register-only
// ops come back in the direct alu/pred fields; everything else as a
// run closure.
func compileOp(pl *core.Pipeline, op *core.Op) (compiledOp, error) {
	fall := fallBlock(op)
	co := compiledOp{fall: fall, taken: -1, notTaken: -1}
	run, err := compileRun(pl, op, fall, &co)
	if err != nil {
		return compiledOp{}, err
	}
	co.run = run
	return co, nil
}

func compileRun(pl *core.Pipeline, op *core.Op, fall int, co *compiledOp) (func(m *Machine) error, error) {
	switch op.Kind {
	case core.OpALU:
		fn, err := aluFn(op.Ins)
		if err != nil {
			return nil, err
		}
		if len(op.Fused) == 0 {
			co.alu = fn
			return nil, nil
		}
		// The fused tail is specialized too: the whole op chain becomes a
		// straight run of direct closures.
		fused := make([]func(st *vm.State), 0, len(op.Fused))
		for _, f := range op.Fused {
			ffn, err := aluFn(f)
			if err != nil {
				return nil, err
			}
			fused = append(fused, ffn)
		}
		co.alu = func(st *vm.State) {
			fn(st)
			for _, f := range fused {
				f(st)
			}
		}
		return nil, nil

	case core.OpLDDW:
		// The constant (or map pointer) is folded here, at compile time.
		v := uint64(op.Ins.Imm64)
		if op.MapID >= 0 {
			v = vm.MapPointer(op.MapID)
		}
		dst := op.Ins.Dst
		co.alu = func(st *vm.State) { st.Regs[dst] = v }
		return nil, nil

	case core.OpLoad:
		if fn := specializeLoad(pl, op, fall); fn != nil {
			return fn, nil
		}
		addrFn, err := compileAddr(op)
		if err != nil {
			return nil, err
		}
		ins := op.Ins
		size := ins.MemSize().Bytes()
		dst := ins.Dst
		isPacket := op.Access != nil && op.Access.Area == ddg.AreaPacket
		return func(m *Machine) error {
			addr, err := addrFn(m)
			if err != nil {
				return err
			}
			v, err := m.mem.LoadAt(&m.st, addr, size)
			if err != nil {
				if isPacket {
					m.fault()
					return nil
				}
				return err
			}
			m.st.Regs[dst] = v
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}, nil

	case core.OpStore, core.OpAtomic:
		if fn := specializeStore(pl, op, fall); fn != nil {
			return fn, nil
		}
		if fn := specializeAtomic(pl, op, fall); fn != nil {
			return fn, nil
		}
		addrFn, err := compileAddr(op)
		if err != nil {
			return nil, err
		}
		ins := op.Ins
		isPacket := op.Access != nil && op.Access.Area == ddg.AreaPacket
		return func(m *Machine) error {
			addr, err := addrFn(m)
			if err != nil {
				return err
			}
			if err := m.mem.StoreAt(&m.st, ins, addr); err != nil {
				if isPacket {
					m.fault()
					return nil
				}
				return err
			}
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}, nil

	case core.OpBranch:
		pred, err := branchFn(op.Ins)
		if err != nil {
			return nil, err
		}
		co.pred = pred
		co.taken, co.notTaken = op.TakenBlock, op.FallBlock
		return nil, nil

	case core.OpExit:
		return func(m *Machine) error {
			m.done = true
			m.action = ebpf.XDPAction(uint32(m.st.Regs[ebpf.R0]))
			return nil
		}, nil

	case core.OpMapCall:
		return compileMapCall(pl, op, fall)

	case core.OpHelper:
		if op.Helper.CPUOnly() {
			// Stubbed as a constant block, like the interpreter.
			return func(m *Machine) error {
				for r := ebpf.R0; r <= ebpf.R5; r++ {
					m.st.Regs[r] = 0
				}
				if fall >= 0 {
					m.enable(fall)
				}
				return nil
			}, nil
		}
		h := op.Helper
		return func(m *Machine) error {
			redirect, err := m.exec.CallHelper(&m.st, h)
			if err != nil {
				return err
			}
			if redirect != 0 {
				m.redirect = redirect
			}
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("unknown op kind %v", op.Kind)
}

// compileAddr specializes an op's address computation: statically wired
// for elided bases (folded to a constant where possible), register-
// relative otherwise. Mirrors hwsim's addrOf.
func compileAddr(op *core.Op) (func(m *Machine) (uint64, error), error) {
	ins := op.Ins
	if !op.BaseElided || op.Access == nil {
		base := ins.Src
		if cls := ins.Class(); cls == ebpf.ClassST || cls == ebpf.ClassSTX {
			base = ins.Dst
		}
		off := uint64(int64(ins.Off))
		return func(m *Machine) (uint64, error) {
			return m.st.Regs[base] + off, nil
		}, nil
	}
	acc := op.Access
	off := uint64(acc.Off)
	switch acc.Area {
	case ddg.AreaStack:
		addr := vm.StackTopAddr + off
		return func(*Machine) (uint64, error) { return addr, nil }, nil
	case ddg.AreaPacket:
		return func(m *Machine) (uint64, error) {
			return vm.PacketBase + uint64(m.st.Pkt.HeadIndex()) + off, nil
		}, nil
	case ddg.AreaCtx:
		addr := vm.CtxBase + off
		return func(*Machine) (uint64, error) { return addr, nil }, nil
	case ddg.AreaMap:
		id := op.MapID
		return func(m *Machine) (uint64, error) {
			base := m.lookupAddr[id]
			if base == 0 {
				return 0, errNoLookup
			}
			return base + off, nil
		}, nil
	}
	return nil, fmt.Errorf("unresolvable access area %v", acc.Area)
}

// compileMapCall specializes a map helper: the key (and value) come
// from their static stack slots as aliasing slices — no copy — or
// through the argument registers; the handle registration reuses the
// interpreter's address table so R0 is bit-identical to hwsim's.
func compileMapCall(pl *core.Pipeline, op *core.Op, fall int) (func(m *Machine) error, error) {
	if op.MapID < 0 || op.MapID >= len(pl.Transformed.Maps) {
		return nil, fmt.Errorf("map call references undeclared map %d", op.MapID)
	}
	spec := pl.Transformed.Maps[op.MapID]
	id := op.MapID
	name := spec.Name

	keyFn, err := compileHelperArg(op.KeyOffKnown, op.KeyStackOff, ebpf.R2, spec.KeySize)
	if err != nil {
		return nil, fmt.Errorf("map %q key: %w", name, err)
	}

	switch op.Helper {
	case ebpf.HelperMapLookupElem:
		if op.KeyOffKnown {
			// The key sits in a static stack slot: the fetch is an
			// aliasing slice with compile-time bounds, no closure call
			// and no error path on the per-packet lookup.
			lo := int(op.KeyStackOff) + ebpf.StackSize
			ks := spec.KeySize
			if lo < 0 || lo+ks > ebpf.StackSize {
				return nil, fmt.Errorf("map %q key: static stack slot [%d,%d) out of frame",
					name, op.KeyStackOff, op.KeyStackOff+int64(ks))
			}
			return func(m *Machine) error {
				key := m.st.Stack[lo : lo+ks : lo+ks]
				var addr uint64
				var val []byte
				if v, ok := m.mapsByID[id].Lookup(key); ok {
					addr = m.valueAddr(id, key, v)
					val = v
				}
				m.lookupAddr[id] = addr
				m.lookupVal[id] = val
				m.st.Regs[ebpf.R0] = addr
				m.scratchArgs()
				if fall >= 0 {
					m.enable(fall)
				}
				return nil
			}, nil
		}
		return func(m *Machine) error {
			key, err := keyFn(m)
			if err != nil {
				return fmt.Errorf("map %q key: %w", name, err)
			}
			var addr uint64
			var val []byte
			if v, ok := m.mapsByID[id].Lookup(key); ok {
				addr = m.valueAddr(id, key, v)
				val = v
			}
			m.lookupAddr[id] = addr
			m.lookupVal[id] = val
			m.st.Regs[ebpf.R0] = addr
			m.scratchArgs()
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}, nil

	case ebpf.HelperMapUpdateElem:
		valFn, err := compileHelperArg(op.ValOffKnown, op.ValStackOff, ebpf.R3, spec.ValueSize)
		if err != nil {
			return nil, fmt.Errorf("map %q value: %w", name, err)
		}
		return func(m *Machine) error {
			key, err := keyFn(m)
			if err != nil {
				return fmt.Errorf("map %q key: %w", name, err)
			}
			val, err := valFn(m)
			if err != nil {
				return fmt.Errorf("map %q value: %w", name, err)
			}
			flags := maps.UpdateFlag(m.st.Regs[ebpf.R4])
			var r0 uint64
			if err := m.mapsByID[id].Update(key, val, flags); err != nil {
				r0 = ^uint64(0)
			}
			m.st.Regs[ebpf.R0] = r0
			m.scratchArgs()
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}, nil

	case ebpf.HelperMapDeleteElem:
		return func(m *Machine) error {
			key, err := keyFn(m)
			if err != nil {
				return fmt.Errorf("map %q key: %w", name, err)
			}
			var r0 uint64
			if err := m.mapsByID[id].Delete(key); err != nil {
				r0 = ^uint64(0)
			}
			m.st.Regs[ebpf.R0] = r0
			m.scratchArgs()
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("unsupported map helper %s", op.Helper.Name())
}

// compileHelperArg builds the fetch of a helper pointer argument. The
// static-slot case is validated here and becomes a bounds-check-free
// aliasing slice of the stack frame; maps copy what they retain, so the
// alias never escapes a call.
func compileHelperArg(known bool, off int64, reg ebpf.Register, size int) (func(m *Machine) ([]byte, error), error) {
	if known {
		lo := int(off) + ebpf.StackSize
		if lo < 0 || lo+size > ebpf.StackSize {
			return nil, fmt.Errorf("static stack slot [%d,%d) out of frame", off, off+int64(size))
		}
		return func(m *Machine) ([]byte, error) {
			return m.st.Stack[lo : lo+size : lo+size], nil
		}, nil
	}
	return func(m *Machine) ([]byte, error) {
		return m.bytesAt(m.st.Regs[reg], size)
	}, nil
}
