package fastpath

import (
	"math/bits"

	"ehdl/internal/core"
	"ehdl/internal/ddg"
	"ehdl/internal/ebpf"
	"ehdl/internal/vm"
)

// aluFn specializes one ALU instruction into an error-free closure:
// the operand routing (register vs folded immediate), the operation
// and the width truncation are all decided here, so the per-packet
// path is a single direct call with no instruction decoding. The
// instruction is validated against vm.EvalALU at compile time; the
// un-specialized tail delegates to it with the source already routed,
// which keeps every op bit-identical to the interpreter by
// construction.
func aluFn(ins ebpf.Instruction) (func(st *vm.State), error) {
	if _, err := vm.EvalALU(ins, 0, 1); err != nil {
		return nil, err
	}
	is64 := ins.Class() == ebpf.ClassALU64
	op := ins.ALUOp()
	dst := ins.Dst
	src := ins.Src
	imm := uint64(int64(ins.Imm))
	fromReg := ins.Source() == ebpf.SourceX

	if op == ebpf.ALUEnd {
		// Byte-order conversion: width and direction folded. The host
		// model is little-endian, so to-LE is a pure truncation.
		toBE := ins.Source() == ebpf.SourceX
		switch {
		case ins.Imm == 16 && toBE:
			return func(st *vm.State) { st.Regs[dst] = uint64(bits.ReverseBytes16(uint16(st.Regs[dst]))) }, nil
		case ins.Imm == 16:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint16(st.Regs[dst])) }, nil
		case ins.Imm == 32 && toBE:
			return func(st *vm.State) { st.Regs[dst] = uint64(bits.ReverseBytes32(uint32(st.Regs[dst]))) }, nil
		case ins.Imm == 32:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst])) }, nil
		case ins.Imm == 64 && toBE:
			return func(st *vm.State) { st.Regs[dst] = bits.ReverseBytes64(st.Regs[dst]) }, nil
		}
	} else {
		switch {
		case op == ebpf.ALUMov && is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] = imm }, nil
		case op == ebpf.ALUMov && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] = st.Regs[src] }, nil
		case op == ebpf.ALUMov && !is64 && !fromReg:
			v := uint64(uint32(imm))
			return func(st *vm.State) { st.Regs[dst] = v }, nil
		case op == ebpf.ALUMov && !is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[src])) }, nil
		case op == ebpf.ALUAdd && is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] += imm }, nil
		case op == ebpf.ALUAdd && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] += st.Regs[src] }, nil
		case op == ebpf.ALUAdd && !is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst]) + uint32(imm)) }, nil
		case op == ebpf.ALUAdd && !is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst]) + uint32(st.Regs[src])) }, nil
		case op == ebpf.ALUSub && is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] -= imm }, nil
		case op == ebpf.ALUSub && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] -= st.Regs[src] }, nil
		case op == ebpf.ALUSub && !is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst]) - uint32(imm)) }, nil
		case op == ebpf.ALUSub && !is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst]) - uint32(st.Regs[src])) }, nil
		case op == ebpf.ALUAnd && is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] &= imm }, nil
		case op == ebpf.ALUAnd && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] &= st.Regs[src] }, nil
		case op == ebpf.ALUAnd && !is64 && !fromReg:
			v := uint64(uint32(imm))
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst])) & v }, nil
		case op == ebpf.ALUAnd && !is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst]) & uint32(st.Regs[src])) }, nil
		case op == ebpf.ALUOr && is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] |= imm }, nil
		case op == ebpf.ALUOr && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] |= st.Regs[src] }, nil
		case op == ebpf.ALUOr && !is64 && !fromReg:
			v := uint64(uint32(imm))
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst])) | v }, nil
		case op == ebpf.ALUOr && !is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] = uint64(uint32(st.Regs[dst]) | uint32(st.Regs[src])) }, nil
		case op == ebpf.ALUXor && is64 && !fromReg:
			return func(st *vm.State) { st.Regs[dst] ^= imm }, nil
		case op == ebpf.ALUXor && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] ^= st.Regs[src] }, nil
		case op == ebpf.ALULsh && is64 && !fromReg:
			sh := imm & 63
			return func(st *vm.State) { st.Regs[dst] <<= sh }, nil
		case op == ebpf.ALULsh && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] <<= st.Regs[src] & 63 }, nil
		case op == ebpf.ALURsh && is64 && !fromReg:
			sh := imm & 63
			return func(st *vm.State) { st.Regs[dst] >>= sh }, nil
		case op == ebpf.ALURsh && is64 && fromReg:
			return func(st *vm.State) { st.Regs[dst] >>= st.Regs[src] & 63 }, nil
		case op == ebpf.ALUArsh && is64 && !fromReg:
			sh := imm & 63
			return func(st *vm.State) { st.Regs[dst] = uint64(int64(st.Regs[dst]) >> sh) }, nil
		case op == ebpf.ALUNeg && is64:
			return func(st *vm.State) { st.Regs[dst] = -st.Regs[dst] }, nil
		}
	}
	if fromReg {
		return func(st *vm.State) {
			out, _ := vm.EvalALU(ins, st.Regs[dst], st.Regs[src])
			st.Regs[dst] = out
		}, nil
	}
	return func(st *vm.State) {
		out, _ := vm.EvalALU(ins, st.Regs[dst], imm)
		st.Regs[dst] = out
	}, nil
}

// specializeLoad compiles a statically addressed load into a direct
// memory access, skipping the virtual-address round trip through
// MemSpace.Resolve. Only cases whose semantics provably match the
// generic path are specialized — anything else (register-relative
// base, out-of-frame static slot, odd xdp_md field, huge offset)
// returns nil and keeps the generic closure with its exact runtime
// error behaviour.
func specializeLoad(pl *core.Pipeline, op *core.Op, fall int) func(m *Machine) error {
	if !op.BaseElided || op.Access == nil {
		return nil
	}
	ins := op.Ins
	size := ins.MemSize().Bytes()
	dst := ins.Dst
	// Stack offsets are frame-relative and negative; the other areas
	// index forward from their base, so a negative or absurd offset
	// keeps the generic path and its runtime error.
	off := int(op.Access.Off)
	if op.Access.Area != ddg.AreaStack && (off < 0 || off > 1<<20) {
		return nil
	}
	switch op.Access.Area {
	case ddg.AreaMap:
		// A value load through the preceding lookup's cached slice: the
		// offset is static and the map's value size bounds it at compile
		// time, so the virtual-address round trip through Resolve is
		// unnecessary. A missed (or absent) lookup errors like the
		// generic path.
		id := op.MapID
		if id < 0 || id >= len(pl.Transformed.Maps) ||
			off+size > pl.Transformed.Maps[id].ValueSize {
			return nil
		}
		return func(m *Machine) error {
			val := m.lookupVal[id]
			if val == nil {
				return errNoLookup
			}
			m.st.Regs[dst] = vm.ReadUint(val[off:], size)
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}
	case ddg.AreaStack:
		lo := ebpf.StackSize + int(op.Access.Off)
		if lo < 0 || lo+size > ebpf.StackSize {
			return nil
		}
		return func(m *Machine) error {
			m.st.Regs[dst] = vm.ReadUint(m.st.Stack[lo:], size)
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}
	case ddg.AreaPacket:
		// The hardware bounds check: an access past the data end latches
		// the OOB verdict, exactly like the generic path's fault on a
		// Resolve error (off is data-relative and non-negative, so the
		// below-head case cannot arise).
		return func(m *Machine) error {
			b := m.st.Pkt.Bytes()
			if off+size > len(b) {
				m.fault()
				return nil
			}
			m.st.Regs[dst] = vm.ReadUint(b[off:], size)
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}
	case ddg.AreaCtx:
		if size != 4 {
			return nil
		}
		switch off {
		case ebpf.XDPMDData, ebpf.XDPMDDataMeta:
			return func(m *Machine) error {
				m.st.Regs[dst] = vm.PacketBase + uint64(m.st.Pkt.HeadIndex())
				if fall >= 0 {
					m.enable(fall)
				}
				return nil
			}
		case ebpf.XDPMDDataEnd:
			return func(m *Machine) error {
				pkt := m.st.Pkt
				m.st.Regs[dst] = vm.PacketBase + uint64(pkt.HeadIndex()+pkt.Len())
				if fall >= 0 {
					m.enable(fall)
				}
				return nil
			}
		}
	}
	return nil
}

// specializeStore is specializeLoad's store-side twin. Atomics and
// xdp_md stores keep the generic path (the former for execAtomic's
// fetch/xchg register effects, the latter for its permission error).
func specializeStore(pl *core.Pipeline, op *core.Op, fall int) func(m *Machine) error {
	if !op.BaseElided || op.Access == nil || op.Ins.IsAtomic() {
		return nil
	}
	ins := op.Ins
	size := ins.MemSize().Bytes()
	off := int(op.Access.Off)
	if op.Access.Area != ddg.AreaStack && (off < 0 || off > 1<<20) {
		return nil
	}
	fromImm := ins.Class() == ebpf.ClassST
	imm := uint64(int64(ins.Imm))
	src := ins.Src
	switch op.Access.Area {
	case ddg.AreaMap:
		id := op.MapID
		if id < 0 || id >= len(pl.Transformed.Maps) ||
			off+size > pl.Transformed.Maps[id].ValueSize {
			return nil
		}
		return func(m *Machine) error {
			val := m.lookupVal[id]
			if val == nil {
				return errNoLookup
			}
			v := imm
			if !fromImm {
				v = m.st.Regs[src]
			}
			vm.WriteUint(val[off:], size, v)
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}
	case ddg.AreaStack:
		lo := ebpf.StackSize + int(op.Access.Off)
		if lo < 0 || lo+size > ebpf.StackSize {
			return nil
		}
		if fromImm {
			return func(m *Machine) error {
				vm.WriteUint(m.st.Stack[lo:], size, imm)
				if fall >= 0 {
					m.enable(fall)
				}
				return nil
			}
		}
		return func(m *Machine) error {
			vm.WriteUint(m.st.Stack[lo:], size, m.st.Regs[src])
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}
	case ddg.AreaPacket:
		return func(m *Machine) error {
			b := m.st.Pkt.Bytes()
			if off+size > len(b) {
				m.fault()
				return nil
			}
			v := imm
			if !fromImm {
				v = m.st.Regs[src]
			}
			vm.WriteUint(b[off:], size, v)
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}
	}
	return nil
}

// specializeAtomic compiles the hot non-fetch atomic forms (the
// per-flow counter update every stateful app leans on) against the
// value slice cached by the preceding lookup: the op kind, access
// width and operand register are folded and the map's declared value
// size bounds the offset at compile time, so the read-modify-write
// touches the bytes directly. Fetch/exchange variants and non-map
// areas keep the generic path for execAtomic's register effects.
func specializeAtomic(pl *core.Pipeline, op *core.Op, fall int) func(m *Machine) error {
	if !op.BaseElided || op.Access == nil || op.Access.Area != ddg.AreaMap {
		return nil
	}
	ins := op.Ins
	if !ins.IsAtomic() || ins.AtomicOp()&ebpf.AtomicFetch != 0 {
		return nil
	}
	aop := ins.AtomicOp()
	switch aop {
	case ebpf.AtomicAdd, ebpf.AtomicOr, ebpf.AtomicAnd, ebpf.AtomicXor:
	default:
		return nil
	}
	size := ins.MemSize().Bytes()
	id := op.MapID
	off := int(op.Access.Off)
	src := ins.Src
	if id < 0 || id >= len(pl.Transformed.Maps) ||
		off < 0 || off+size > pl.Transformed.Maps[id].ValueSize {
		return nil
	}
	// The 8-byte add — the canonical per-flow counter — gets a direct
	// unencoded read-modify-write; the rest share a width-generic form.
	if aop == ebpf.AtomicAdd && size == 8 {
		return func(m *Machine) error {
			val := m.lookupVal[id]
			if val == nil {
				return errNoLookup
			}
			b := val[off:]
			vm.WriteUint(b, 8, vm.ReadUint(b, 8)+m.st.Regs[src])
			if fall >= 0 {
				m.enable(fall)
			}
			return nil
		}
	}
	return func(m *Machine) error {
		val := m.lookupVal[id]
		if val == nil {
			return errNoLookup
		}
		b := val[off:]
		old := vm.ReadUint(b, size)
		s := m.st.Regs[src]
		var upd uint64
		switch aop {
		case ebpf.AtomicAdd:
			upd = old + s
		case ebpf.AtomicOr:
			upd = old | s
		case ebpf.AtomicAnd:
			upd = old & s
		case ebpf.AtomicXor:
			upd = old ^ s
		}
		vm.WriteUint(b, size, upd)
		if fall >= 0 {
			m.enable(fall)
		}
		return nil
	}
}

// branchFn specializes one conditional branch into an error-free
// predicate closure, with the comparison op, operand routing and width
// folded at compile time. Validated against vm.Compare; the generic
// tail delegates to it, bit-identical to vm.EvalBranch.
func branchFn(ins ebpf.Instruction) (func(st *vm.State) bool, error) {
	is32 := ins.Class() == ebpf.ClassJMP32
	jop := ins.JumpOp()
	if _, err := vm.Compare(jop, 0, 0, is32); err != nil {
		return nil, err
	}
	dst := ins.Dst
	src := ins.Src
	imm := uint64(int64(ins.Imm))
	fromReg := ins.Source() == ebpf.SourceX

	if !is32 {
		switch {
		case jop == ebpf.JumpEq && !fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] == imm }, nil
		case jop == ebpf.JumpEq && fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] == st.Regs[src] }, nil
		case jop == ebpf.JumpNE && !fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] != imm }, nil
		case jop == ebpf.JumpNE && fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] != st.Regs[src] }, nil
		case jop == ebpf.JumpGT && !fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] > imm }, nil
		case jop == ebpf.JumpGE && !fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] >= imm }, nil
		case jop == ebpf.JumpLT && !fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] < imm }, nil
		case jop == ebpf.JumpLE && !fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] <= imm }, nil
		case jop == ebpf.JumpSGT && !fromReg:
			rhs := int64(ins.Imm)
			return func(st *vm.State) bool { return int64(st.Regs[dst]) > rhs }, nil
		case jop == ebpf.JumpSLT && !fromReg:
			rhs := int64(ins.Imm)
			return func(st *vm.State) bool { return int64(st.Regs[dst]) < rhs }, nil
		case jop == ebpf.JumpSet && !fromReg:
			return func(st *vm.State) bool { return st.Regs[dst]&imm != 0 }, nil
		case jop == ebpf.JumpGT && fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] > st.Regs[src] }, nil
		case jop == ebpf.JumpLT && fromReg:
			return func(st *vm.State) bool { return st.Regs[dst] < st.Regs[src] }, nil
		}
	}
	rhsOf := func(st *vm.State) uint64 {
		if fromReg {
			return st.Regs[src]
		}
		return imm
	}
	return func(st *vm.State) bool {
		lhs := st.Regs[dst]
		rhs := rhsOf(st)
		if is32 {
			lhs = uint64(uint32(lhs))
			rhs = uint64(uint32(rhs))
		}
		ok, _ := vm.Compare(jop, lhs, rhs, is32)
		return ok
	}, nil
}
