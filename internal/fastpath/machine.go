package fastpath

import (
	"fmt"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/protect"
	"ehdl/internal/vm"
)

// Eligible reports whether a simulator configuration can run on the
// compiled fast path, and names the feature that forces the interpreter
// when it cannot. The fallback matrix is documented in DESIGN.md.
func Eligible(cfg hwsim.Config) (bool, string) {
	switch {
	case cfg.Faults != nil:
		return false, "fault injection"
	case cfg.Protection != protect.LevelNone:
		return false, "map memory protection"
	case cfg.WatchdogCycles > 0:
		return false, "livelock watchdog"
	case cfg.Policy == hwsim.PolicyStall:
		return false, "stall hazard policy"
	case cfg.StrictCarryCheck:
		return false, "strict carry checking"
	case cfg.Trace != nil:
		return false, "cycle-level tracing"
	case cfg.Metrics != nil:
		return false, "pipeline metrics"
	}
	return true, ""
}

// pkt is one packet's ledger entry in the timing skeleton. The verdict
// is computed at ingress; the entry then flows through the queue and
// flight rings so completion timing, latency and queue accounting match
// the interpreter's hazard-free schedule.
type pkt struct {
	seq        uint64
	injectedAt uint64
	retireAt   uint64
	frames     int
	action     ebpf.XDPAction
	redirect   uint32
	data       []byte // final packet bytes, only under KeepData
}

// ring is a fixed-capacity FIFO of ledger entries; it never reallocates
// after construction, keeping the per-packet path heap-free.
type ring struct {
	buf  []pkt
	head int
	n    int
}

func newRing(capacity int) ring { return ring{buf: make([]pkt, capacity)} }

// push and pop wrap by comparison, not modulo: an integer division per
// packet is measurable at these per-op budgets.
func (r *ring) push(p pkt) {
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = p
	r.n++
}

func (r *ring) pop() pkt {
	p := r.buf[r.head]
	r.buf[r.head].data = nil // drop the reference so KeepData copies are collectable
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return p
}

func (r *ring) peek() *pkt { return &r.buf[r.head] }

// Machine binds a compiled Prog to one map environment and executes
// packets with no per-packet heap allocation on the happy path. Its
// surface mirrors hwsim.Sim (both satisfy hwsim.Core) so the NIC shell
// and the RSS engine drive either interchangeably.
type Machine struct {
	prog *Prog
	cfg  hwsim.Config
	env  *vm.Env
	exec *vm.ExecContext
	mem  *vm.MemSpace

	// mapsByID indexes the environment's maps by pipeline map ID for
	// direct handle capture (no name lookup on the packet path).
	mapsByID []maps.Map

	// Per-packet scratch, reused across packets. Block enablement is
	// epoch-stamped: blockOn[i] == epoch means block i is enabled for
	// the current packet, so the per-packet reset is one counter bump
	// instead of clearing a bitmap, and the probe is a load+compare.
	st         vm.State
	pktBuf     *vm.Packet
	blockOn    []uint32
	epoch      uint32
	lookupAddr []uint64
	lookupVal  [][]byte // value slice behind lookupAddr, for direct access
	done       bool
	action     ebpf.XDPAction
	redirect   uint32

	// Last registered value address per map: repeated lookups of one
	// entry (the steady state) skip the registration hash. Invalidated
	// by backing-pointer identity, so an entry that moves re-registers.
	memoKey  [][]byte
	memoVal  [][]byte
	memoAddr []uint64

	// Timing skeleton.
	cycle      uint64
	seq        uint64
	injectGap  int
	queueDepth int
	frameBytes int
	oob        ebpf.XDPAction
	queueFull  bool
	quiesced   bool
	keepData   bool
	queue      ring
	flight     ring

	stats hwsim.Stats
	// actionHist counts the common verdict values without a map access
	// per retire; out-of-range actions (a program returning an arbitrary
	// R0) fall through to the stats.Actions map. Stats() merges the two.
	actionHist [8]uint64
	onComplete func(hwsim.Result)
	err        error
}

// The Machine presents the same engine surface as the interpreter.
var _ hwsim.Core = (*Machine)(nil)

// New compiles a design and binds it to fresh maps.
func New(pl *core.Pipeline, cfg hwsim.Config) (*Machine, error) {
	env, err := vm.NewEnv(pl.Transformed)
	if err != nil {
		return nil, err
	}
	return NewWithEnv(pl, cfg, env)
}

// NewWithEnv compiles a design and binds it to an existing environment
// (shared maps, custom clock).
func NewWithEnv(pl *core.Pipeline, cfg hwsim.Config, env *vm.Env) (*Machine, error) {
	prog, err := Compile(pl)
	if err != nil {
		return nil, err
	}
	return prog.NewMachine(cfg, env)
}

// NewMachine binds a compiled program to an environment. A Prog may be
// bound many times (one Machine per RSS replica); the Machines share
// the closures but nothing mutable.
func (p *Prog) NewMachine(cfg hwsim.Config, env *vm.Env) (*Machine, error) {
	if ok, why := Eligible(cfg); !ok {
		return nil, fmt.Errorf("fastpath: configuration requires the interpreter: %s", why)
	}
	if env.Maps.Len() < p.numMaps {
		return nil, fmt.Errorf("fastpath: environment has %d maps, design needs %d", env.Maps.Len(), p.numMaps)
	}
	m := &Machine{
		prog:       p,
		cfg:        cfg,
		env:        env,
		mem:        vm.NewMemSpace(p.pl.Transformed, env.Maps),
		pktBuf:     vm.NewPacket(make([]byte, 1514)),
		blockOn:    make([]uint32, p.numBlocks),
		lookupAddr: make([]uint64, p.numMaps),
		lookupVal:  make([][]byte, p.numMaps),
		memoKey:    make([][]byte, p.numMaps),
		memoVal:    make([][]byte, p.numMaps),
		memoAddr:   make([]uint64, p.numMaps),
		frameBytes: p.frameBytes,
	}
	for id := range m.memoKey {
		m.memoKey[id] = make([]byte, 0, p.pl.Transformed.Maps[id].KeySize)
	}
	m.exec = &vm.ExecContext{Env: env, Mem: m.mem}
	m.mapsByID = make([]maps.Map, p.numMaps)
	for id := 0; id < p.numMaps; id++ {
		mp, ok := env.Maps.ByID(id)
		if !ok {
			return nil, fmt.Errorf("fastpath: environment is missing map %d", id)
		}
		m.mapsByID[id] = mp
	}
	// Defaults replicated from hwsim.Config so the two execution modes
	// agree on geometry without exporting the accessors.
	m.queueDepth = cfg.InputQueuePackets
	if m.queueDepth <= 0 {
		m.queueDepth = 4096
	}
	m.oob = cfg.OOBAction
	if m.oob == 0 {
		m.oob = ebpf.XDPDrop
	}
	clock := cfg.ClockHz
	if clock <= 0 {
		clock = 250e6
	}
	if env.Now == nil {
		// The hardware clock: cycle count scaled to nanoseconds.
		env.Now = func() uint64 {
			return uint64(float64(m.cycle) / clock * 1e9)
		}
	}
	m.queue = newRing(m.queueDepth)
	m.flight = newRing(p.depth + 1)
	m.stats.Actions = map[ebpf.XDPAction]uint64{}
	return m, nil
}

// enable marks a successor block runnable for the current packet.
func (m *Machine) enable(i int) { m.blockOn[i] = m.epoch }

// valueAddr returns the interpreter-identical virtual address for a map
// value, memoizing the last (key, backing) pair per map so the steady
// state — every packet hitting the same entry — skips the registration
// hash. The memo keys on backing-slice identity: an update that moves
// the entry misses and re-registers, and re-registering an unchanged
// key returns the same address by construction (vm.MemSpace handles
// are append-only), so the address stream is bit-identical either way.
func (m *Machine) valueAddr(id int, key, v []byte) uint64 {
	if len(v) > 0 {
		if mv := m.memoVal[id]; len(mv) == len(v) && mv != nil && &mv[0] == &v[0] &&
			string(key) == string(m.memoKey[id]) {
			return m.memoAddr[id]
		}
	}
	addr := m.mem.ValueAddressBytes(id, key, v)
	if len(v) > 0 {
		m.memoVal[id] = v
		m.memoKey[id] = append(m.memoKey[id][:0], key...)
		m.memoAddr[id] = addr
	}
	return addr
}

// fault applies the hardware bounds check's verdict to the in-flight
// packet: done, OOB action, one malformed-drop counted per occurrence.
func (m *Machine) fault() {
	m.done = true
	m.action = m.oob
	m.stats.MalformedDropped++
}

// scratchArgs clears R1-R5 after a helper, per the calling convention.
func (m *Machine) scratchArgs() {
	for r := ebpf.R1; r <= ebpf.R5; r++ {
		m.st.Regs[r] = 0
	}
}

// bytesAt returns an aliasing view of n bytes at a virtual address, for
// helper arguments whose pointer is not statically resolvable.
func (m *Machine) bytesAt(addr uint64, n int) ([]byte, error) {
	kind, b, off, err := m.mem.Resolve(&m.st, addr, n)
	if err != nil {
		return nil, err
	}
	if kind == vm.RegionCtx {
		return nil, fmt.Errorf("helper argument points into xdp_md")
	}
	return b[off : off+n : off+n], nil
}

// runPacket resets the scratch state and runs the closure chain.
func (m *Machine) runPacket(data []byte, p *pkt) {
	st := &m.st
	for i := range st.Regs {
		st.Regs[i] = 0
	}
	st.Regs[ebpf.R1] = vm.CtxBase
	st.Regs[ebpf.R10] = vm.StackTopAddr
	// Only the statically writable span can be dirty; everything else
	// has stayed zero since the machine was built.
	for i := m.prog.stackLo; i < m.prog.stackHi; i++ {
		st.Stack[i] = 0
	}
	m.pktBuf.Reset(data)
	st.Pkt = m.pktBuf
	m.epoch++
	if m.epoch == 0 { // wrapped: stale stamps could alias, rewind them
		for i := range m.blockOn {
			m.blockOn[i] = 0
		}
		m.epoch = 1
	}
	m.blockOn[0] = m.epoch // the entry block is always enabled
	for i := range m.lookupAddr {
		m.lookupAddr[i] = 0
		m.lookupVal[i] = nil
	}
	m.done = false
	m.action = 0
	m.redirect = 0

	// Enable bits are only ever set, never cleared, within one packet:
	// a block observed enabled stays enabled, so consecutive ops of the
	// same block skip the bitset probe (a disabled block re-probes, in
	// case an op in between just enabled it). Ops of one stage execute
	// "in parallel": an exit or bounds fault latches the verdict without
	// suppressing its neighbours, so done-ness applies at the stage
	// boundaries the flat op slice carries.
	lastBlock, lastOn := -1, false
	lastStage := int32(-1)
	epoch := m.epoch
	ops := m.prog.ops
	for ci := 0; ci < len(ops); {
		c := &ops[ci]
		if c.stage != lastStage {
			if m.done {
				break
			}
			lastStage = c.stage
		}
		if c.blockID != lastBlock || !lastOn {
			lastBlock, lastOn = c.blockID, m.blockOn[c.blockID] == epoch
			if !lastOn {
				// The whole contiguous run of this block is dead:
				// nothing inside it executes, so nothing can enable it
				// before the run ends. One hop skips it.
				ci = c.skip
				continue
			}
		}
		ci++
		// Infallible register-only ops dispatch without the error
		// check; anything touching memory or helpers goes through run.
		if c.alu != nil {
			c.alu(st)
			if c.fall >= 0 {
				m.blockOn[c.fall] = epoch
			}
			continue
		}
		if c.pred != nil {
			t := c.notTaken
			if c.pred(st) {
				t = c.taken
			}
			if t >= 0 {
				m.blockOn[t] = epoch
			}
			continue
		}
		if err := c.run(m); err != nil {
			m.err = fmt.Errorf("fastpath: seq %d stage %d: %w", p.seq, c.stage, err)
			return
		}
	}
	p.action = m.action
	p.redirect = m.redirect
	if m.keepData {
		p.data = append([]byte(nil), st.Pkt.Bytes()...)
	}
}

// Inject accepts a packet, executes it immediately, and enters its
// ledger entry into the timing skeleton. Refusal semantics (quiesce,
// queue bound, overflow episodes) are identical to the interpreter's.
func (m *Machine) Inject(data []byte) bool {
	if m.quiesced {
		return false
	}
	if !m.InputFree() {
		m.stats.QueueDrops++
		if !m.queueFull {
			m.queueFull = true
			m.stats.QueueOverflows++
		}
		return false
	}
	m.queueFull = false
	// Single-frame packets (the common case at 64-byte frames) skip the
	// division.
	frames := 1
	if len(data) > m.frameBytes {
		frames = (len(data) + m.frameBytes - 1) / m.frameBytes
	}
	p := pkt{seq: m.seq, injectedAt: m.cycle, frames: frames}
	m.seq++
	m.stats.Injected++
	if m.err == nil {
		m.runPacket(data, &p)
	}
	m.queue.push(p)
	return true
}

// Step advances the skeleton by one clock cycle: retire the entry
// leaving the last stage, then feed the input honouring multi-frame
// pacing — the same order and arithmetic as the interpreter's
// hazard-free schedule.
func (m *Machine) Step() error {
	if m.err != nil {
		return m.err
	}
	m.cycle++
	m.stats.Cycles++
	if m.flight.n > 0 && m.flight.peek().retireAt <= m.cycle {
		m.retire(m.flight.pop())
	}
	if m.injectGap > 0 {
		m.injectGap--
	} else if m.queue.n > 0 {
		p := m.queue.pop()
		p.retireAt = m.cycle + uint64(m.prog.depth)
		m.flight.push(p)
		m.injectGap = p.frames - 1
	}
	return nil
}

// retire completes one ledger entry.
func (m *Machine) retire(p pkt) {
	latency := m.cycle - p.injectedAt
	m.stats.Completed++
	m.stats.LatencySum += latency
	if latency > m.stats.LatencyMax {
		m.stats.LatencyMax = latency
	}
	if int(p.action) < len(m.actionHist) {
		m.actionHist[p.action]++
	} else {
		m.stats.Actions[p.action]++
	}
	if m.onComplete != nil {
		m.onComplete(hwsim.Result{
			Seq:             p.seq,
			Action:          p.action,
			RedirectIfindex: p.redirect,
			Data:            p.data,
			LatencyCycles:   latency,
		})
	}
}

// RunToCompletion steps the clock until the skeleton drains.
func (m *Machine) RunToCompletion(maxCycles uint64) error {
	for n := uint64(0); m.Busy(); n++ {
		if n >= maxCycles {
			return fmt.Errorf("fastpath: pipeline did not drain within %d cycles", maxCycles)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return m.err
}

// Busy reports whether any ledger entries remain queued or in flight.
func (m *Machine) Busy() bool { return m.queue.n > 0 || m.flight.n > 0 }

// Drained reports whether the skeleton has fully drained.
func (m *Machine) Drained() bool { return !m.Busy() }

// InputFree reports whether the ingress can accept a packet this cycle.
func (m *Machine) InputFree() bool { return m.queue.n < m.queueDepth }

// Quiesce closes the ingress without counting drops, like hwsim.
func (m *Machine) Quiesce() { m.quiesced = true }

// Resume reopens a quiesced ingress.
func (m *Machine) Resume() { m.quiesced = false }

// Quiesced reports whether the ingress is closed.
func (m *Machine) Quiesced() bool { return m.quiesced }

// Cycle returns the current clock cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Now returns the nanosecond clock visible to time helpers.
func (m *Machine) Now() uint64 { return m.env.Now() }

// NextSeq returns the sequence number the next accepted packet carries.
func (m *Machine) NextSeq() uint64 { return m.seq }

// OnComplete registers a callback invoked as packets retire.
func (m *Machine) OnComplete(fn func(hwsim.Result)) { m.onComplete = fn }

// KeepData makes results carry the final packet bytes (this path
// allocates one copy per packet; benchmarks leave it off).
func (m *Machine) KeepData(keep bool) { m.keepData = keep }

// SetClock overrides the nanosecond clock visible to time helpers.
func (m *Machine) SetClock(fn func() uint64) { m.env.Now = fn }

// Maps exposes the bound map set (the host interface).
func (m *Machine) Maps() *maps.Set { return m.env.Maps }

// Stats returns a copy of the counters so far, Actions deep-copied
// (the histogram fast-lane folded back in).
func (m *Machine) Stats() hwsim.Stats {
	out := m.stats
	out.Actions = make(map[ebpf.XDPAction]uint64, len(m.stats.Actions)+len(m.actionHist))
	for a, n := range m.stats.Actions {
		out.Actions[a] = n
	}
	for a, n := range m.actionHist {
		if n > 0 {
			out.Actions[ebpf.XDPAction(a)] += n
		}
	}
	return out
}
