//go:build !race

// AllocsPerRun interacts badly with the race detector's instrumented
// allocator, so this file sits outside the -race test gate; the same
// code paths run (with allocation untested) in the regular suite.

package fastpath

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/hwsim"
	"ehdl/internal/pktgen"
)

// TestZeroAllocsPerPacket is the fast path's defining performance
// contract: after warm-up (map entries inserted, value handles bound,
// packet buffer grown to the largest frame) the per-packet happy path
// — inject, execute every fused stage closure, retire — performs zero
// heap allocations. Toy is the minimal pipeline; firewall exercises
// map lookups, conditional state updates and the full parser chain.
func TestZeroAllocsPerPacket(t *testing.T) {
	for _, name := range []string{"toy", "firewall"} {
		t.Run(name, func(t *testing.T) {
			app, ok := apps.ByName(name)
			if !ok {
				t.Fatalf("unknown app %s", name)
			}
			prog, err := app.Program()
			if err != nil {
				t.Fatal(err)
			}
			pl, err := core.Compile(prog, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(pl, hwsim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if app.SetupHost != nil {
				if err := app.SetupHost(m.Maps()); err != nil {
					t.Fatal(err)
				}
			}
			cfg := app.Traffic
			cfg.Seed = 1
			packets := pktgen.NewGenerator(cfg).Batch(64)

			// Warm up: every flow inserts its map state and handle-table
			// entries on first sight; those one-time costs are setup, not
			// per-packet work.
			for _, p := range packets {
				m.Inject(p)
			}
			if err := m.RunToCompletion(1 << 20); err != nil {
				t.Fatal(err)
			}

			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				m.Inject(packets[i%len(packets)])
				if err := m.Step(); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if err := m.RunToCompletion(1 << 20); err != nil {
				t.Fatal(err)
			}
			if allocs != 0 {
				t.Errorf("%s: %.1f allocs per packet on the happy path, want 0", name, allocs)
			}
		})
	}
}
