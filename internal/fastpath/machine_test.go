package fastpath_test

import (
	"strings"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/asm"
	"ehdl/internal/conformance"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/fastpath"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
	"ehdl/internal/protect"
	"ehdl/internal/vm"
)

// verdict is the externally visible outcome of one packet.
type verdict struct {
	seq      uint64
	action   ebpf.XDPAction
	redirect uint32
	data     string
}

func compilePipeline(t *testing.T, name, src string) *core.Pipeline {
	t.Helper()
	prog, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return pl
}

// runDiff drives the same batch through the compiled machine and the
// cycle-accurate interpreter and demands the verdict stream, the final
// map state and the packet ledger agree exactly. With timing true the
// cycle counters must match too (only valid for hazard-free designs:
// the fast path never models flush or stall cycles).
func runDiff(t *testing.T, pl *core.Pipeline, setup func(*fastpath.Machine) error, batch [][]byte, keepData, timing bool) (hwsim.Stats, hwsim.Stats) {
	t.Helper()
	m, err := fastpath.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hwsim.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		if err := setup(m); err != nil {
			t.Fatal(err)
		}
	}
	var fastOut, simOut []verdict
	m.SetClock(func() uint64 { return 0 })
	s.SetClock(func() uint64 { return 0 })
	m.KeepData(keepData)
	s.KeepData(keepData)
	m.OnComplete(func(r hwsim.Result) {
		fastOut = append(fastOut, verdict{r.Seq, r.Action, r.RedirectIfindex, string(r.Data)})
	})
	s.OnComplete(func(r hwsim.Result) {
		simOut = append(simOut, verdict{r.Seq, r.Action, r.RedirectIfindex, string(r.Data)})
	})
	for _, p := range batch {
		fa := m.Inject(p)
		sa := s.Inject(p)
		if fa != sa {
			t.Fatalf("inject acceptance diverged: fast %v, interp %v", fa, sa)
		}
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RunToCompletion(1 << 22); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(1 << 22); err != nil {
		t.Fatal(err)
	}
	if len(fastOut) != len(simOut) {
		t.Fatalf("completions: fast %d, interp %d", len(fastOut), len(simOut))
	}
	for i := range fastOut {
		if fastOut[i] != simOut[i] {
			t.Fatalf("packet %d: fast %+v, interp %+v", i, fastOut[i], simOut[i])
		}
	}
	if err := conformance.CompareMaps(s.Maps(), m.Maps()); err != nil {
		t.Fatal(err)
	}
	fs, ss := m.Stats(), s.Stats()
	if fs.Injected != ss.Injected || fs.Completed != ss.Completed ||
		fs.MalformedDropped != ss.MalformedDropped || fs.QueueDrops != ss.QueueDrops {
		t.Fatalf("ledger: fast %+v, interp %+v", fs, ss)
	}
	for a, n := range ss.Actions {
		if fs.Actions[a] != n {
			t.Fatalf("action %v: fast %d, interp %d", a, fs.Actions[a], n)
		}
	}
	if timing {
		if fs.Cycles != ss.Cycles || fs.LatencySum != ss.LatencySum || fs.LatencyMax != ss.LatencyMax {
			t.Fatalf("hazard-free timing diverged: fast cycles=%d lat=%d/%d, interp cycles=%d lat=%d/%d",
				fs.Cycles, fs.LatencySum, fs.LatencyMax, ss.Cycles, ss.LatencySum, ss.LatencyMax)
		}
	}
	return fs, ss
}

// TestCompiledAppsMatchInterpreter is the in-package differential: all
// eight applications, seeded traffic, verdicts and map effects
// bit-identical to the interpreter (the conformance package runs the
// same comparison three ways; this one pins it where the closures
// live).
func TestCompiledAppsMatchInterpreter(t *testing.T) {
	for _, app := range append(apps.All(), apps.Toy(), apps.LeakyBucket(), apps.LoadBalancer()) {
		t.Run(app.Name, func(t *testing.T) {
			prog, err := app.Program()
			if err != nil {
				t.Fatal(err)
			}
			pl, err := core.Compile(prog, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			tcfg := app.Traffic
			tcfg.Seed = 7
			batch := pktgen.NewGenerator(tcfg).Batch(512)
			runDiffWithSetup(t, pl, app, batch)
		})
	}
}

// runDiffWithSetup mirrors runDiff but applies the app's host-side map
// setup to both engines before traffic.
func runDiffWithSetup(t *testing.T, pl *core.Pipeline, app *apps.App, batch [][]byte) {
	t.Helper()
	m, err := fastpath.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hwsim.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetClock(func() uint64 { return 0 })
	s.SetClock(func() uint64 { return 0 })
	if err := app.Setup(m.Maps()); err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(s.Maps()); err != nil {
		t.Fatal(err)
	}
	var fastOut, simOut []verdict
	m.OnComplete(func(r hwsim.Result) {
		fastOut = append(fastOut, verdict{r.Seq, r.Action, r.RedirectIfindex, ""})
	})
	s.OnComplete(func(r hwsim.Result) {
		simOut = append(simOut, verdict{r.Seq, r.Action, r.RedirectIfindex, ""})
	})
	for _, p := range batch {
		m.Inject(p)
		s.Inject(p)
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RunToCompletion(1 << 22); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(1 << 22); err != nil {
		t.Fatal(err)
	}
	if len(fastOut) != len(simOut) {
		t.Fatalf("completions: fast %d, interp %d", len(fastOut), len(simOut))
	}
	for i := range fastOut {
		if fastOut[i] != simOut[i] {
			t.Fatalf("packet %d: fast %+v, interp %+v", i, fastOut[i], simOut[i])
		}
	}
	if err := conformance.CompareMaps(s.Maps(), m.Maps()); err != nil {
		t.Fatal(err)
	}
}

// aluZooSource exercises every ALU form the specializer carries — both
// widths, immediate and register operands, the byte-order conversions —
// plus the generic tail (mul/div/mod) and a sample of every comparison
// the branch specializer knows, in both JMP and JMP32 classes.
const aluZooSource = `
r6 = 1000
r7 = 7
w8 = 300
r9 = -5
r6 += 5
r6 += r7
w6 += 3
w6 += w7
r6 -= 2
r6 -= r7
w6 -= w7
w6 -= 1
r6 &= 4095
r6 &= r7
w6 &= w7
w6 &= 15
r6 |= 256
r6 |= r7
w6 |= w7
w6 |= 3
r6 ^= 85
r6 ^= r7
w6 ^= w7
w6 ^= 9
r6 <<= 3
r6 <<= r7
r6 >>= 2
r6 >>= r7
r6 s>>= 1
r9 s>>= 2
r6 *= 3
r6 *= r7
r6 /= 3
r6 /= r7
r6 %= 1001
r6 %= r7
w6 *= w7
w6 /= w7
w6 %= w7
r9 = -r9
r8 = be16 r8
r8 = be32 r8
r8 = be64 r8
r8 = le16 r8
r8 = le32 r8
r8 = le64 r8
w6 <<= 2
w6 >>= 1
r6 ^= r8
r6 ^= r9
r5 = 0
if r6 == 0 goto b1
r5 += 1
b1:
if r6 != 1 goto b2
r5 += 1
b2:
if r6 > 100 goto b3
r5 += 1
b3:
if r6 < 100 goto b4
r5 += 1
b4:
if r6 >= r7 goto b5
r5 += 1
b5:
if r6 <= r7 goto b6
r5 += 1
b6:
if r9 s> -1 goto b7
r5 += 1
b7:
if r9 s< r7 goto b8
r5 += 1
b8:
if r9 s>= 0 goto b9
r5 += 1
b9:
if r9 s<= r6 goto b10
r5 += 1
b10:
if r6 & 1 goto b11
r5 += 1
b11:
if w6 == 12 goto b12
r5 += 1
b12:
if w6 != w7 goto b13
r5 += 1
b13:
if w6 > w7 goto b14
r5 += 1
b14:
if w9 s< 0 goto b15
r5 += 1
b15:
r0 = r5
r0 &= 3
exit
`

// TestALUZooMatchesInterpreter runs the synthetic ALU/branch program
// differentially. The design touches no map and no packet byte, so it
// is hazard-free by construction and the timing skeleton must agree
// with the interpreter cycle for cycle.
func TestALUZooMatchesInterpreter(t *testing.T) {
	pl := compilePipeline(t, "alu_zoo", aluZooSource)
	batch := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 16, PacketLen: 64, Seed: 3}).Batch(64)
	runDiff(t, pl, nil, batch, false, true)
}

// memZooSource exercises the memory specializations: packet loads of
// every width, stack stores and loads of every width, a stack atomic
// (the generic path), map value loads/stores through the cached lookup
// slice, map atomics of both widths, the update and delete helpers,
// and a packet store.
const memZooSource = `
map scratch array key=4 value=16 entries=4

r2 = *(u32 *)(r1 + 4)
r1 = *(u32 *)(r1 + 0)
r3 = r1
r3 += 20
if r3 > r2 goto drop
r4 = *(u8 *)(r1 + 0)
r5 = *(u16 *)(r1 + 2)
r6 = *(u32 *)(r1 + 4)
r7 = *(u64 *)(r1 + 6)
*(u8 *)(r10 - 1) = r4
*(u16 *)(r10 - 4) = r5
*(u32 *)(r10 - 8) = r6
*(u64 *)(r10 - 16) = r7
r4 = *(u8 *)(r10 - 1)
r5 = *(u16 *)(r10 - 4)
r6 = *(u32 *)(r10 - 8)
r7 = *(u64 *)(r10 - 16)
lock *(u64 *)(r10 - 16) += r4
*(u8 *)(r1 + 1) = r4
r3 = 0
*(u32 *)(r10 - 24) = r3
r2 = r10
r2 += -24
r1 = map[scratch] ll
call 1
if r0 == 0 goto miss
r1 = r0
r2 = *(u64 *)(r1 + 0)
r2 += 1
*(u64 *)(r1 + 8) = r2
lock *(u64 *)(r1 + 0) += r2
r3 = 5
lock *(u32 *)(r1 + 8) |= r3
lock *(u32 *)(r1 + 12) &= r3
lock *(u32 *)(r1 + 12) ^= r3
r0 = 2
exit
miss:
r2 = r10
r2 += -24
r3 = r10
r3 += -16
r1 = map[scratch] ll
r4 = 0
call 2
r0 = 2
exit
drop:
r0 = 1
exit
`

// TestMemZooMatchesInterpreter runs the memory/atomic program
// differentially with the final packet bytes compared too (the program
// writes one packet byte).
func TestMemZooMatchesInterpreter(t *testing.T) {
	pl := compilePipeline(t, "mem_zoo", memZooSource)
	batch := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 5}).Batch(128)
	runDiff(t, pl, nil, batch, true, false)
}

// TestTruncatedFrameFaults: a frame shorter than the parser's bounds
// check takes the hardware OOB verdict on both engines and counts one
// malformed drop.
func TestTruncatedFrameFaults(t *testing.T) {
	pl := compilePipeline(t, "mem_zoo_trunc", memZooSource)
	short := [][]byte{make([]byte, 10), make([]byte, 64)}
	for i := range short[1] {
		short[1][i] = byte(i)
	}
	fs, _ := runDiff(t, pl, nil, short, false, false)
	if fs.MalformedDropped != 1 {
		t.Fatalf("malformed drops %d, want 1", fs.MalformedDropped)
	}
}

// TestEligibleMatrix pins the fallback matrix: each interpreter-only
// feature is named, and the empty configuration is eligible.
func TestEligibleMatrix(t *testing.T) {
	if ok, why := fastpath.Eligible(hwsim.Config{}); !ok {
		t.Fatalf("default config ineligible: %s", why)
	}
	cases := []struct {
		cfg  hwsim.Config
		want string
	}{
		{hwsim.Config{Faults: new(faults.Injector)}, "fault"},
		{hwsim.Config{Protection: protect.LevelECC}, "protection"},
		{hwsim.Config{WatchdogCycles: 5}, "watchdog"},
		{hwsim.Config{Policy: hwsim.PolicyStall}, "stall"},
		{hwsim.Config{StrictCarryCheck: true}, "carry"},
		{hwsim.Config{Trace: new(obs.Tracer)}, "tracing"},
		{hwsim.Config{Metrics: new(obs.Registry)}, "metrics"},
	}
	for _, tc := range cases {
		ok, why := fastpath.Eligible(tc.cfg)
		if ok || !strings.Contains(why, tc.want) {
			t.Errorf("config %+v: eligible=%v reason=%q, want reason containing %q", tc.cfg, ok, why, tc.want)
		}
	}
	if _, err := fastpath.New(compilePipeline(t, "toy_elig", aluZooSource), hwsim.Config{WatchdogCycles: 5}); err == nil {
		t.Error("New accepted an ineligible configuration")
	}
}

// TestQueueOverflowEpisodes: a bounded ingress queue refuses the
// overflowing packet, counts every drop, and counts episodes on the
// full edge only — exactly like the interpreter.
func TestQueueOverflowEpisodes(t *testing.T) {
	pl := compilePipeline(t, "zoo_q", aluZooSource)
	m, err := fastpath.New(pl, hwsim.Config{InputQueuePackets: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 64)
	if !m.InputFree() {
		t.Fatal("fresh machine refuses input")
	}
	if !m.Inject(p) || !m.Inject(p) {
		t.Fatal("queue refused within its bound")
	}
	if m.Inject(p) {
		t.Fatal("queue accepted past its bound")
	}
	if m.Inject(p) {
		t.Fatal("queue accepted past its bound")
	}
	st := m.Stats()
	if st.QueueDrops != 2 || st.QueueOverflows != 1 {
		t.Fatalf("drops=%d episodes=%d, want 2/1", st.QueueDrops, st.QueueOverflows)
	}
	// Drain one slot: the full episode ends, the next overflow is a new
	// episode.
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if !m.Inject(p) {
		t.Fatal("queue refused after draining a slot")
	}
	if m.Inject(p) {
		t.Fatal("queue accepted past its bound after refill")
	}
	st = m.Stats()
	if st.QueueDrops != 3 || st.QueueOverflows != 2 {
		t.Fatalf("drops=%d episodes=%d, want 3/2", st.QueueDrops, st.QueueOverflows)
	}
	if err := m.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	if !m.Drained() {
		t.Fatal("machine busy after RunToCompletion")
	}
}

// TestMultiFrameInjectPacing: frames larger than one flit hold the
// pipeline entrance for one cycle per flit; the timing must match the
// interpreter exactly (the design is hazard-free).
func TestMultiFrameInjectPacing(t *testing.T) {
	pl := compilePipeline(t, "zoo_mf", aluZooSource)
	batch := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 4, PacketLen: 200, Seed: 2}).Batch(32)
	runDiff(t, pl, nil, batch, false, true)
}

// TestQuiesceResume covers the ingress gate and the clock surface.
func TestQuiesceResume(t *testing.T) {
	pl := compilePipeline(t, "zoo_qr", aluZooSource)
	m, err := fastpath.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 64)
	m.Quiesce()
	if !m.Quiesced() {
		t.Fatal("Quiesced()=false after Quiesce")
	}
	if m.Inject(p) {
		t.Fatal("quiesced ingress accepted a packet")
	}
	if st := m.Stats(); st.QueueDrops != 0 {
		t.Fatal("quiesce counted a drop")
	}
	m.Resume()
	if m.Quiesced() {
		t.Fatal("Quiesced()=true after Resume")
	}
	if !m.Inject(p) {
		t.Fatal("resumed ingress refused a packet")
	}
	if m.NextSeq() != 1 {
		t.Fatalf("NextSeq %d, want 1", m.NextSeq())
	}
	before := m.Cycle()
	if err := m.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() <= before {
		t.Fatal("clock did not advance")
	}
	if m.Now() == 0 {
		t.Fatal("nanosecond clock stuck at zero after cycles advanced")
	}
	m.SetClock(func() uint64 { return 42 })
	if m.Now() != 42 {
		t.Fatalf("pinned clock reads %d, want 42", m.Now())
	}
	if m.Maps() == nil {
		t.Fatal("Maps() nil")
	}
}

// TestRunToCompletionBound: a busy machine with an exhausted cycle
// budget errors instead of spinning.
func TestRunToCompletionBound(t *testing.T) {
	pl := compilePipeline(t, "zoo_bound", aluZooSource)
	m, err := fastpath.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(make([]byte, 64))
	if err := m.RunToCompletion(0); err == nil || !strings.Contains(err.Error(), "drain") {
		t.Fatalf("bound exhaustion: %v", err)
	}
}

// TestProgSurface covers the compiled-program accessors and the
// replica-binding error path: an environment that does not carry the
// design's maps is refused.
func TestProgSurface(t *testing.T) {
	pl := compilePipeline(t, "mem_zoo_surface", memZooSource)
	prog, err := fastpath.Compile(pl)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Pipeline() != pl {
		t.Fatal("Pipeline() does not return the compiled design")
	}
	if prog.Depth() <= 0 {
		t.Fatalf("Depth() = %d", prog.Depth())
	}
	bare := compilePipeline(t, "zoo_bare", aluZooSource)
	env, err := vm.NewEnv(bare.Transformed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.NewMachine(hwsim.Config{}, env); err == nil {
		t.Fatal("NewMachine accepted an environment without the design's maps")
	}
	if _, err := fastpath.NewWithEnv(pl, hwsim.Config{}, env); err == nil {
		t.Fatal("NewWithEnv accepted an environment without the design's maps")
	}
}

// TestActionHistogramOverflow: a program returning a verdict outside
// the common range still lands in the Stats histogram.
func TestActionHistogramOverflow(t *testing.T) {
	pl := compilePipeline(t, "odd_verdict", "r0 = 42\nexit\n")
	m, err := fastpath.New(pl, hwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(make([]byte, 64))
	if err := m.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	if n := m.Stats().Actions[ebpf.XDPAction(42)]; n != 1 {
		t.Fatalf("verdict 42 counted %d times, want 1", n)
	}
}

// genericZooSource steers around the specializer on purpose: a
// register-relative packet walk (the base register is not statically
// elidable), a map lookup keyed by a packet pointer (the key fetch goes
// through the virtual-address resolver), an immediate store of each
// area, a fetch atomic, a CPU-only helper stub, and the branch forms
// the first zoo leaves to the generic comparator.
const genericZooSource = `
map gmap array key=4 value=16 entries=4

r9 = *(u32 *)(r1 + 0)
r2 = *(u32 *)(r1 + 4)
r3 = r9
r3 += 24
if r3 > r2 goto drop
r5 = *(u8 *)(r9 + 0)
r5 &= 7
r4 = r9
r4 += r5
r6 = *(u8 *)(r4 + 0)
r7 = *(u16 *)(r4 + 2)
*(u8 *)(r4 + 1) = r6
*(u32 *)(r10 - 8) = 7
*(u16 *)(r10 - 12) = 9
*(u64 *)(r10 - 24) = 1
r2 = r9
r1 = map[gmap] ll
call 1
if r0 == 0 goto upd
r1 = r0
*(u32 *)(r1 + 0) = 3
lock *(u64 *)(r1 + 8) += r6 fetch
r6 += r0
lock *(u32 *)(r1 + 4) += r7
call 8
r0 = r6
r0 &= 3
exit
upd:
r2 = r9
r3 = r9
r1 = map[gmap] ll
r4 = 0
call 2
r2 = r9
r1 = map[gmap] ll
call 3
r0 = 2
exit
drop:
r0 = 1
exit
`

// TestGenericPathsMatchInterpreter runs the anti-specializer program
// differentially, including final packet bytes.
func TestGenericPathsMatchInterpreter(t *testing.T) {
	pl := compilePipeline(t, "generic_zoo", genericZooSource)
	batch := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 11}).Batch(256)
	runDiff(t, pl, nil, batch, true, false)
}

// branchZooSource completes the comparison matrix: the 64-bit
// register forms of eq/ne/gt/lt and the immediate forms of ge/le that
// the first zoo covers only through registers.
const branchZooSource = `
r6 = 40
r7 = 41
r5 = 0
if r6 == r7 goto c1
r5 += 1
c1:
if r6 != r7 goto c2
r5 += 1
c2:
if r6 > r7 goto c3
r5 += 1
c3:
if r6 < r7 goto c4
r5 += 1
c4:
if r6 >= 40 goto c5
r5 += 1
c5:
if r6 <= 40 goto c6
r5 += 1
c6:
if r6 s> r7 goto c7
r5 += 1
c7:
if r6 s>= r7 goto c8
r5 += 1
c8:
if r6 & r7 goto c9
r5 += 1
c9:
r0 = r5
r0 &= 3
exit
`

// TestBranchZooMatchesInterpreter: hazard-free, so timing must agree.
func TestBranchZooMatchesInterpreter(t *testing.T) {
	pl := compilePipeline(t, "branch_zoo", branchZooSource)
	batch := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 4, PacketLen: 64, Seed: 13}).Batch(32)
	runDiff(t, pl, nil, batch, false, true)
}
