package power

import "testing"

func TestBands(t *testing.T) {
	for _, design := range []string{"eHDL", "hXDP", "SDNet"} {
		p := U50Host(design)
		if p.MinWatts != 80 || p.MaxWatts != 85 {
			t.Errorf("U50 band = [%v,%v]", p.MinWatts, p.MaxWatts)
		}
	}
	bf2 := Bf2Host()
	if bf2.Watts() <= U50Host("eHDL").Watts() {
		t.Error("the Bluefield-2 host must draw more than the U50 host")
	}
	if NICWatts(Bf2Host()) <= NICWatts(U50Host("eHDL")) {
		t.Error("DPU-only draw must exceed FPGA-only draw")
	}
}

func TestEnergyPerPacket(t *testing.T) {
	// At 148 Mpps the FPGA host spends well under a microjoule per
	// packet; a 3 Mpps processor spends ~30x more.
	fpga := EnergyPerPacketNanojoules(U50Host("eHDL"), 148)
	dpu := EnergyPerPacketNanojoules(Bf2Host(), 3)
	if fpga <= 0 || dpu <= 0 {
		t.Fatal("degenerate energy figures")
	}
	if dpu/fpga < 20 {
		t.Errorf("energy ratio DPU/FPGA = %.1f, want large", dpu/fpga)
	}
	if EnergyPerPacketNanojoules(Bf2Host(), 0) != 0 {
		t.Error("zero rate must yield zero energy")
	}
}
