// Package power models the wall-power measurements of Section 5.2: the
// test machine's consumption with its CPU idle in the lowest power
// state, hosting either the Alveo U50 (80-85 W regardless of which
// design is flashed) or the Bluefield-2 (100-105 W).
package power

// Profile is one host + NIC combination.
type Profile struct {
	Host string
	NIC  string
	// MinWatts/MaxWatts bound the measured band.
	MinWatts, MaxWatts float64
}

// Watts returns the centre of the band.
func (p Profile) Watts() float64 { return (p.MinWatts + p.MaxWatts) / 2 }

// hostIdleWatts is the server with no accelerator, CPU in its lowest
// power state.
const hostIdleWatts = 64

// U50Host returns the Alveo U50 host profile. The FPGA's draw varies
// little across the flashed designs (eHDL, hXDP or SDNet): the paper
// measured the same 80-85 W band for all three.
func U50Host(design string) Profile {
	return Profile{
		Host:     "idle server",
		NIC:      "Alveo U50 (" + design + ")",
		MinWatts: 80,
		MaxWatts: 85,
	}
}

// Bf2Host returns the Bluefield-2 host profile: the DPU's Arm complex
// and switch silicon add roughly 20 W over the FPGA.
func Bf2Host() Profile {
	return Profile{
		Host:     "idle server",
		NIC:      "Bluefield-2",
		MinWatts: 100,
		MaxWatts: 105,
	}
}

// NICWatts estimates the accelerator-only draw by subtracting the idle
// host.
func NICWatts(p Profile) float64 { return p.Watts() - hostIdleWatts }

// EnergyPerPacketNanojoules divides wall power by a packet rate: the
// "rough estimate of energy requirements" of Section 5.2.
func EnergyPerPacketNanojoules(p Profile, mpps float64) float64 {
	if mpps <= 0 {
		return 0
	}
	return p.Watts() / (mpps * 1e6) * 1e9
}
