package hdl

import (
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/protect"
)

// Protection hardware pricing: what the self-healing subsystem of
// internal/hwsim costs on the FPGA. The estimates follow the same
// calibrated-primitive approach as the rest of the package:
//
//   - Check-bit storage rides in BRAM beside the data words: 8 bits per
//     64 under Hamming(72,64) SECDED (exactly the spare bits UltraScale+
//     BRAMs provide), 1 bit per 64 under parity.
//   - Every write-capable map channel gains an encoder (XOR tree over
//     64 data bits); every read-capable channel gains a syndrome
//     decoder (second XOR tree, a 72-way corrector mux under ECC, a
//     single comparator under parity).
//   - One scrubber FSM per design walks the protected blocks through a
//     dedicated port: address counter, budget divider, word buffer.
//   - The drain-and-restart recovery rides with any protection level:
//     a checkpoint controller and per-map DMA channels that stream the
//     known-good copy to and from the card's HBM (keeping the shadow
//     off-chip, where it does not double the BRAM budget), plus the
//     backoff/drain sequencer.
type protectionCost struct {
	encoderLUTs         int // write-port encoder per write channel
	decoderLUTs         int // read-port syndrome decoder per read channel
	decoderFFs          int
	checkBitsPerWord    int // extra storage per 64 data bits
	needsShadowAndScrub bool
}

func costOfLevel(level protect.Level) (protectionCost, bool) {
	switch level {
	case protect.LevelParity:
		return protectionCost{
			encoderLUTs:         24, // parity tree
			decoderLUTs:         26, // parity tree + mismatch flag
			decoderFFs:          8,
			checkBitsPerWord:    1,
			needsShadowAndScrub: true,
		}, true
	case protect.LevelECC:
		return protectionCost{
			encoderLUTs:         180, // seven 36-input XOR trees + overall parity
			decoderLUTs:         260, // syndrome trees + 72-way corrector mux
			decoderFFs:          80,
			checkBitsPerWord:    8,
			needsShadowAndScrub: true,
		}, true
	}
	return protectionCost{}, false
}

// EstimateProtection returns the incremental resources of protecting a
// pipeline's map memory at the given level: zero at LevelNone.
func EstimateProtection(p *core.Pipeline, level protect.Level) Resources {
	cost, on := costOfLevel(level)
	if !on || len(p.Maps) == 0 {
		return Resources{}
	}

	var r Resources
	for i := range p.Maps {
		mb := &p.Maps[i]
		spec := mb.Spec

		entryBits := (spec.KeySize + spec.ValueSize) * 8
		if spec.Kind == ebpf.MapArray || spec.Kind == ebpf.MapDevMap {
			entryBits = spec.ValueSize * 8
		}
		dataBits := entryBits * spec.MaxEntries

		// Check-bit storage beside the data words.
		checkBits := (dataBits + 63) / 64 * cost.checkBitsPerWord
		r.BRAM36 += (checkBits + 36*1024 - 1) / (36 * 1024)

		// Encoders on write-capable channels (the host port always
		// writes), decoders on read-capable ones (the host port and the
		// scrubber always read).
		writePorts := len(mb.WriteStages) + len(mb.AtomicStages) + 1
		readPorts := len(mb.ReadStages) + len(mb.AtomicStages) + 2
		r.LUTs += cost.encoderLUTs * writePorts
		r.LUTs += cost.decoderLUTs * readPorts
		r.FFs += cost.decoderFFs * readPorts

		// Checkpoint shadow channel. The known-good copy itself lives in
		// the card's HBM behind the shell's memory interface (duplicating
		// every protected BRAM on-chip would double the dominant resource
		// of map-heavy designs); what the fabric pays is the per-map
		// copy-out/copy-back DMA channel.
		r.LUTs += 110
		r.FFs += 90
	}

	// One scrubber FSM walking every protected block.
	r.LUTs += 150
	r.FFs += 110

	// Checkpoint/recovery controller: drain sequencer, retry counter,
	// backoff timer, restore engine.
	r.LUTs += 400
	r.FFs += 300

	return r
}

// EstimateDesignProtected returns pipeline + shell + protection: the
// quantity the protection-vs-resources ablation tabulates.
func EstimateDesignProtected(p *core.Pipeline, level protect.Level) Resources {
	return EstimateDesign(p).Add(EstimateProtection(p, level))
}
