// Package hdl is the hardware backend of the compiler: it renders a
// compiled pipeline as VHDL source ready for an FPGA NIC shell
// (Section 3: "takes as input unmodified eBPF bytecode and outputs
// VHDL"), and it estimates the FPGA resources of the generated design.
//
// The resource estimator replaces the Vivado synthesis reports of the
// paper's testbed: each template primitive (Section 3.4) carries a
// calibrated LUT/FF/BRAM cost, so relative comparisons — across
// applications, against the hXDP and SDNet baselines (Figure 10), and
// between pruning on/off (Section 5.4) — are preserved.
package hdl

import (
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
)

// Resources is an FPGA resource vector.
type Resources struct {
	LUTs   int
	FFs    int
	BRAM36 int
	DSPs   int
}

// Add accumulates another vector.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUTs + o.LUTs, r.FFs + o.FFs, r.BRAM36 + o.BRAM36, r.DSPs + o.DSPs}
}

// Scale multiplies a vector by n.
func (r Resources) Scale(n int) Resources {
	return Resources{r.LUTs * n, r.FFs * n, r.BRAM36 * n, r.DSPs * n}
}

// Device describes an FPGA part.
type Device struct {
	Name   string
	LUTs   int
	FFs    int
	BRAM36 int
	DSPs   int
}

// AlveoU50 is the Xilinx Alveo U50 of the paper's testbed.
func AlveoU50() Device {
	return Device{Name: "xcu50-fsvh2104-2-e", LUTs: 872_000, FFs: 1_743_000, BRAM36: 1344, DSPs: 5952}
}

// Percent expresses the vector as fractions of a device (0-100).
type Percent struct {
	LUT, FF, BRAM float64
}

// PercentOf computes utilisation on a device.
func (r Resources) PercentOf(d Device) Percent {
	return Percent{
		LUT:  100 * float64(r.LUTs) / float64(d.LUTs),
		FF:   100 * float64(r.FFs) / float64(d.FFs),
		BRAM: 100 * float64(r.BRAM36) / float64(d.BRAM36),
	}
}

// Max returns the dominant utilisation fraction, the figure the paper
// quotes as "6.5%-13.3% of the FPGA".
func (p Percent) Max() float64 {
	m := p.LUT
	if p.FF > m {
		m = p.FF
	}
	if p.BRAM > m {
		m = p.BRAM
	}
	return m
}

// CorundumShell is the cost of the open-source 100 Gbps NIC shell the
// designs are embedded in (Section 4.5). Numbers follow the published
// Corundum utilisation on UltraScale+ parts.
func CorundumShell() Resources {
	return Resources{LUTs: 42_000, FFs: 70_000, BRAM36: 120}
}

// bramThresholdBytes is the carried-state size above which the shifter
// register of a stage is mapped to block RAM instead of flip-flops
// (Section 6 discusses exactly this trade-off).
const bramThresholdBytes = 192

// EstimatePipeline returns the resources of the generated pipeline
// alone (no shell), the quantity the Section 5.4 pruning ablation
// reports.
func EstimatePipeline(p *core.Pipeline) Resources {
	r := estimateStageLogic(p)
	for i := range p.Maps {
		r = r.Add(mapBlockCost(&p.Maps[i]))
	}
	return r
}

// estimateStageLogic prices the per-stage datapath — everything except
// the map blocks. This is the part a multi-queue deployment stamps out
// once per replica, while maps follow their sharing class (replicate.go).
func estimateStageLogic(p *core.Pipeline) Resources {
	var r Resources

	frame := p.Options.FrameBytes
	if frame <= 0 {
		frame = 64
	}

	stackBRAMBits := 0
	for i := range p.Stages {
		st := &p.Stages[i]
		// Stage skeleton: enable logic, valid/done/verdict latches and
		// pipeline control.
		r.LUTs += 100
		r.FFs += 16

		// Carried architectural state: registers and live stack bytes.
		stateBits := st.CarryRegCount()*64 + st.CarryStackBytes()*8
		if st.CarryStackBytes() >= bramThresholdBytes {
			// Large stack segments fall out of the shifter register into
			// indirectly indexed block RAM (the Section 6 trade-off);
			// the pool is shared across stages.
			stackBRAMBits += st.CarryStackBytes() * 8
			stateBits = st.CarryRegCount() * 64
		}
		r.FFs += stateBits
		r.LUTs += stateBits / 3 // routing and write-enables

		// Packet frame registers: one frame plus the bypass window.
		frameBits := frame * 8 * (1 + st.FrameBypass)
		r.FFs += frameBits
		r.LUTs += frameBits / 4

		for k := range st.Ops {
			r = r.Add(opCost(&st.Ops[k]))
		}
	}
	r.BRAM36 += (stackBRAMBits + 36*1024 - 1) / (36 * 1024)
	return r
}

// EstimateDesign returns pipeline plus shell: the Figure 10 quantity.
func EstimateDesign(p *core.Pipeline) Resources {
	return EstimatePipeline(p).Add(CorundumShell())
}

// opCost prices one template primitive.
func opCost(op *core.Op) Resources {
	var r Resources
	price := func(ins ebpf.Instruction) {
		switch {
		case ins.Class().IsALU():
			r = r.Add(aluCost(ins))
		case ins.IsExit():
			r.LUTs += 12 // verdict latch
		case ins.IsBranch():
			r.LUTs += 44 // 64-bit compare + enable fan-out
		case ins.Class() == ebpf.ClassLD:
			// Constants and map handles are wiring.
		case ins.Class().IsLoad() || ins.Class().IsStore():
			if ins.IsAtomic() {
				r.LUTs += 160 // read-modify-write primitive
				return
			}
			if op.BaseElided {
				r.LUTs += 10 // statically wired byte lanes
			} else {
				r.LUTs += 220 // dynamic offset: byte-lane multiplexer
			}
		}
	}
	price(op.Ins)
	for _, f := range op.Fused {
		price(f)
	}

	switch op.Kind {
	case core.OpMapCall:
		// The per-call-site channel interface; the shared block itself
		// is priced in mapBlockCost.
		r.LUTs += 120
		r.FFs += 160
	case core.OpHelper:
		r = r.Add(helperCost(op.Helper))
	}
	return r
}

func aluCost(ins ebpf.Instruction) Resources {
	var r Resources
	is64 := ins.Class() == ebpf.ClassALU64
	w := 32
	if is64 {
		w = 64
	}
	switch ins.ALUOp() {
	case ebpf.ALUMov:
		// wiring
	case ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUNeg:
		r.LUTs += w
	case ebpf.ALUAnd, ebpf.ALUOr, ebpf.ALUXor:
		r.LUTs += w / 2
	case ebpf.ALUMul:
		r.DSPs += w / 16
		r.LUTs += w
	case ebpf.ALUDiv, ebpf.ALUMod:
		r.LUTs += w * 20 // iterative divider, rare in network code
	case ebpf.ALULsh, ebpf.ALURsh, ebpf.ALUArsh:
		if ins.Source() == ebpf.SourceK {
			// constant shifts are wiring
		} else {
			r.LUTs += w * 4 // barrel shifter
		}
	case ebpf.ALUEnd:
		// byte swaps are wiring
	}
	return r
}

func helperCost(h ebpf.HelperID) Resources {
	switch h {
	case ebpf.HelperXDPAdjustHead, ebpf.HelperXDPAdjustTail:
		return Resources{LUTs: 2100, FFs: 1200} // frame realignment shifter
	case ebpf.HelperKtimeGetNs, ebpf.HelperKtimeGetBootNs, ebpf.HelperKtimeGetCoarseNs, ebpf.HelperJiffies64:
		return Resources{LUTs: 90, FFs: 64} // free-running counter sample
	case ebpf.HelperGetPrandomU32:
		return Resources{LUTs: 120, FFs: 96} // xorshift block
	case ebpf.HelperRedirect, ebpf.HelperRedirectMap:
		return Resources{LUTs: 60, FFs: 32}
	case ebpf.HelperL3CsumReplace, ebpf.HelperL4CsumReplace, ebpf.HelperCsumDiff:
		return Resources{LUTs: 320, FFs: 128}
	default:
		return Resources{LUTs: 50, FFs: 16} // stubbed CPU-only helpers
	}
}

// mapBlockCost prices one eHDLmap block: the memory itself plus the
// lookup engine, consistency hardware and host interface (Section 4.1).
func mapBlockCost(mb *core.MapBlock) Resources {
	var r Resources
	spec := mb.Spec

	entryBits := (spec.KeySize + spec.ValueSize) * 8
	if spec.Kind == ebpf.MapArray || spec.Kind == ebpf.MapDevMap {
		entryBits = spec.ValueSize * 8
	}
	totalBits := entryBits * spec.MaxEntries
	r.BRAM36 += (totalBits + 36*1024 - 1) / (36 * 1024)

	switch spec.Kind {
	case ebpf.MapHash, ebpf.MapLRUHash:
		r.LUTs += 520 // hash function + probe engine
		r.FFs += 300
	case ebpf.MapLPMTrie:
		r.LUTs += 760 // trie walker
		r.FFs += 420
	default:
		r.LUTs += 120 // direct index
		r.FFs += 80
	}

	// Host interface (userspace map access, Section 4.1).
	r.LUTs += 180
	r.FFs += 150

	// One channel per distinct accessing stage.
	channels := len(mb.ReadStages) + len(mb.WriteStages) + len(mb.AtomicStages)
	r.LUTs += 90 * channels
	r.FFs += 70 * channels

	if len(mb.AtomicStages) > 0 {
		r.LUTs += 150 // atomic update primitive
	}
	if mb.NeedsFlush {
		// Flush Evaluation Block: address CAM over the hazard window.
		r.LUTs += 280 + 24*mb.L
		r.FFs += 64 * mb.L
	}
	if mb.WARDepth > 0 {
		// Write-delay registers (Figure 6).
		width := (spec.KeySize + spec.ValueSize) * 8
		r.FFs += width * mb.WARDepth
		r.LUTs += 60
	}
	return r
}
