package hdl

import (
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
)

// Live-update hardware pricing: what the hitless-update subsystem of
// internal/liveupdate costs on the FPGA. The estimates follow the same
// calibrated-primitive approach as the rest of the package:
//
//   - During the overlap window the old and the new pipeline both hold
//     their map state on-chip, so every map's data words are
//     double-buffered: a second BRAM copy per map, the dominant term of
//     map-heavy designs.
//   - Each map gains a migration DMA channel: a bulk-copy cursor that
//     streams entries old-to-new under a per-cycle budget, plus the
//     write tap that feeds the delta log.
//   - One delta-log FIFO per design captures data-plane writes landing
//     mid-copy (map tag + key digest per entry, replayed at the end).
//   - The canary needs an ingress mirror tap and an outcome comparator
//     diffing the shadow's verdict/bytes against the reference.
//   - The reconfiguration controller sequences the stages: the update
//     FSM, the drain sequencer with its backoff timer, and the atomic
//     ingress switch mux in front of both pipelines.
const (
	migrateChannelLUTs = 140 // per-map bulk cursor + delta write tap
	migrateChannelFFs  = 120

	deltaLogEntries = 4096 // matches the controller's default DeltaLogCap
	deltaLogBits    = 96   // 32-bit map tag + 64-bit key digest per entry

	canaryLUTs = 480 // mirror tap + verdict/byte comparator
	canaryFFs  = 260

	reconfLUTs = 520 // update FSM + drain sequencer + ingress switch mux
	reconfFFs  = 380
)

// EstimateLiveUpdate returns the incremental resources of making a
// pipeline hot-swappable: double-buffered map storage, per-map
// migration channels, the delta log, the canary tap and the
// reconfiguration controller. A map-less pipeline still pays for the
// controller and the canary path — swapping it is exactly the ingress
// mux flip — but nothing per map.
func EstimateLiveUpdate(p *core.Pipeline) Resources {
	var r Resources
	for i := range p.Maps {
		mb := &p.Maps[i]
		spec := mb.Spec

		entryBits := (spec.KeySize + spec.ValueSize) * 8
		if spec.Kind == ebpf.MapArray || spec.Kind == ebpf.MapDevMap {
			entryBits = spec.ValueSize * 8
		}
		dataBits := entryBits * spec.MaxEntries

		// The shadow pipeline's copy of the data words.
		r.BRAM36 += (dataBits + 36*1024 - 1) / (36 * 1024)

		r.LUTs += migrateChannelLUTs
		r.FFs += migrateChannelFFs
	}
	if len(p.Maps) > 0 {
		// The shared delta-log FIFO.
		r.BRAM36 += (deltaLogEntries*deltaLogBits + 36*1024 - 1) / (36 * 1024)
	}

	r.LUTs += canaryLUTs + reconfLUTs
	r.FFs += canaryFFs + reconfFFs
	return r
}

// EstimateDesignUpdatable returns pipeline + shell + live-update
// support: the price of a NIC whose function can be replaced without
// dropping a packet.
func EstimateDesignUpdatable(p *core.Pipeline) Resources {
	return EstimateDesign(p).Add(EstimateLiveUpdate(p))
}
