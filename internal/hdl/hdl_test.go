package hdl

import (
	"strings"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/asm"
	"ehdl/internal/core"
	"ehdl/internal/protect"
)

func compileApp(t *testing.T, name string, opts core.Options) *core.Pipeline {
	t.Helper()
	app, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestResourceVectorArithmetic(t *testing.T) {
	a := Resources{LUTs: 1, FFs: 2, BRAM36: 3, DSPs: 4}
	b := a.Add(a)
	if b != a.Scale(2) {
		t.Errorf("Add/Scale disagree: %+v vs %+v", b, a.Scale(2))
	}
	p := Resources{LUTs: 87_200}.PercentOf(AlveoU50())
	if p.LUT < 9.9 || p.LUT > 10.1 {
		t.Errorf("87200 LUTs on a U50 = %.2f%%, want 10%%", p.LUT)
	}
	if (Percent{LUT: 1, FF: 5, BRAM: 3}).Max() != 5 {
		t.Error("Percent.Max broken")
	}
}

func TestUtilizationBand(t *testing.T) {
	// Section 5: "the generated pipelines use only 6.5%-13.3% of the
	// FPGA hardware resources". The calibrated model must land every
	// application's LUT utilisation (including the Corundum shell) in a
	// band of that order.
	dev := AlveoU50()
	for _, app := range apps.All() {
		pl := compileApp(t, app.Name, core.Options{})
		pct := EstimateDesign(pl).PercentOf(dev)
		if pct.LUT < 5 || pct.LUT > 14 {
			t.Errorf("%s: LUT utilisation %.2f%% outside the calibrated band", app.Name, pct.LUT)
		}
		if pct.FF <= 0 || pct.BRAM <= 0 {
			t.Errorf("%s: degenerate utilisation %+v", app.Name, pct)
		}
	}
}

func TestShellDominatesSmallPrograms(t *testing.T) {
	pl := compileApp(t, "toy", core.Options{})
	design := EstimateDesign(pl)
	pipe := EstimatePipeline(pl)
	shell := CorundumShell()
	if design != pipe.Add(shell) {
		t.Error("EstimateDesign != pipeline + shell")
	}
	if pipe.LUTs >= shell.LUTs {
		t.Error("the 20-stage toy pipeline should be smaller than the shell")
	}
}

func TestPruningAblationShape(t *testing.T) {
	// Section 5.4: without pruning the pipeline needs 46%/66%/123% more
	// LUT/FF/BRAM. The model must reproduce the shape: all three grow,
	// and the ordering BRAM > FF > LUT holds.
	pruned := EstimatePipeline(compileApp(t, "toy", core.Options{}))
	unpruned := EstimatePipeline(compileApp(t, "toy", core.Options{DisablePruning: true}))

	dLUT := float64(unpruned.LUTs-pruned.LUTs) / float64(pruned.LUTs)
	dFF := float64(unpruned.FFs-pruned.FFs) / float64(pruned.FFs)
	dBRAM := float64(unpruned.BRAM36-pruned.BRAM36) / float64(max(pruned.BRAM36, 1))

	if dLUT < 0.2 {
		t.Errorf("LUT delta = %.0f%%, want a substantial increase", 100*dLUT)
	}
	if dFF <= dLUT {
		t.Errorf("FF delta (%.0f%%) should exceed LUT delta (%.0f%%)", 100*dFF, 100*dLUT)
	}
	if dBRAM <= dFF {
		t.Errorf("BRAM delta (%.0f%%) should exceed FF delta (%.0f%%)", 100*dBRAM, 100*dFF)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestILPAblationShrinksPipelineResources(t *testing.T) {
	base := EstimatePipeline(compileApp(t, "firewall", core.Options{}))
	serial := EstimatePipeline(compileApp(t, "firewall", core.Options{DisableILP: true}))
	// More stages means more carried state and frame registers.
	if serial.FFs <= base.FFs {
		t.Errorf("serial pipeline FFs = %d, want more than %d", serial.FFs, base.FFs)
	}
}

func TestFrameSizeAblation(t *testing.T) {
	f64 := EstimatePipeline(compileApp(t, "toy", core.Options{FrameBytes: 64}))
	f32 := EstimatePipeline(compileApp(t, "toy", core.Options{FrameBytes: 32}))
	if f32.FFs >= f64.FFs {
		t.Errorf("32B frames (%d FFs) should carry less frame state than 64B (%d FFs)", f32.FFs, f64.FFs)
	}
}

func TestVHDLGeneration(t *testing.T) {
	for _, name := range []string{"toy", "firewall", "router", "tunnel", "dnat", "suricata"} {
		pl := compileApp(t, name, core.Options{})
		src := Generate(pl)

		checks := []string{
			"entity ehdl_" + name + "_pipeline is",
			"end entity ehdl_" + name + "_pipeline;",
			"architecture pipeline of",
			"end architecture pipeline;",
			"library ieee;",
			"use ieee.numeric_std.all;",
			"s_axis_tdata",
			"m_axis_tdest",
			"host_map_rdata",
			"component ehdl_map is",
		}
		for _, want := range checks {
			if !strings.Contains(src, want) {
				t.Errorf("%s: generated VHDL missing %q", name, want)
			}
		}
		// One process per stage plus the input process.
		if got := strings.Count(src, "rising_edge(clk)"); got != pl.NumStages()+1 {
			t.Errorf("%s: %d clocked processes, want %d", name, got, pl.NumStages()+1)
		}
		// One eHDLmap instance per map block.
		if got := strings.Count(src, ": ehdl_map"); got != len(pl.Maps) {
			t.Errorf("%s: %d map instances, want %d", name, got, len(pl.Maps))
		}
		// Structural balance.
		if strings.Count(src, "process(clk)") != strings.Count(src, "end process;") {
			t.Errorf("%s: unbalanced process blocks", name)
		}
		if strings.Count(src, "if rising_edge") != strings.Count(src, "end if;\n  end process;") {
			t.Errorf("%s: unbalanced clocked bodies", name)
		}
	}
}

func TestVHDLDeterministic(t *testing.T) {
	pl := compileApp(t, "toy", core.Options{})
	if Generate(pl) != Generate(pl) {
		t.Error("generator output is not deterministic")
	}
}

func TestVHDLFlushBlockPresence(t *testing.T) {
	pl := compileApp(t, "leakybucket", core.Options{})
	src := Generate(pl)
	if !strings.Contains(src, "FLUSH_EVAL => true") {
		t.Error("leaky bucket VHDL does not instantiate a Flush Evaluation Block")
	}
	toy := Generate(compileApp(t, "toy", core.Options{}))
	if strings.Contains(toy, "FLUSH_EVAL => true") {
		t.Error("toy VHDL instantiates a flush block despite atomic-only access")
	}
}

func TestVHDLMentionsEveryInstruction(t *testing.T) {
	pl := compileApp(t, "toy", core.Options{})
	src := Generate(pl)
	scheduled := 0
	for s := range pl.Stages {
		for i := range pl.Stages[s].Ops {
			scheduled += pl.Stages[s].Ops[i].InstructionCount()
		}
	}
	// Every scheduled op appears as a "-- [kind] instr" comment.
	if got := strings.Count(src, "-- ["); got < scheduled-len(pl.Stages) {
		t.Errorf("only %d op annotations for %d scheduled instructions", got, scheduled)
	}
}

func TestTestbenchGeneration(t *testing.T) {
	pl := compileApp(t, "toy", core.Options{})
	stimuli := []Stimulus{
		{Packet: make([]byte, 64), Verdict: 3},
		{Packet: make([]byte, 200), Verdict: 3},
	}
	tb := GenerateTestbench(pl, stimuli)
	for _, want := range []string{
		"entity ehdl_toy_pipeline_tb is",
		"dut : entity work.ehdl_toy_pipeline",
		"CLK_PERIOD : time := 4 ns",
		"when 0 => assert m_tdest = \"011\"",
		"when 1 => assert m_tdest = \"011\"",
		"end architecture sim;",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	// A 200-byte packet at 64-byte frames is 4 frames: 4 data beats for
	// stimulus 1 plus 1 for stimulus 0.
	if got := strings.Count(tb, "s_tdata <= x\""); got != 5 {
		t.Errorf("data beats = %d, want 5", got)
	}
	// The final beat of each packet raises tlast.
	if got := strings.Count(tb, "s_tlast <= '1'"); got != 2 {
		t.Errorf("tlast beats = %d, want 2", got)
	}
}

func TestTestbenchFrameHexWidth(t *testing.T) {
	pl := compileApp(t, "toy", core.Options{})
	tb := GenerateTestbench(pl, []Stimulus{{Packet: []byte{0xaa, 0xbb}, Verdict: 1}})
	// One 64-byte frame = 128 hex digits, with the first packet byte in
	// the low lanes.
	idx := strings.Index(tb, "s_tdata <= x\"")
	if idx < 0 {
		t.Fatal("no data beat")
	}
	lit := tb[idx+len("s_tdata <= x\""):]
	lit = lit[:strings.Index(lit, "\"")]
	if len(lit) != 128 {
		t.Fatalf("frame literal is %d digits, want 128", len(lit))
	}
	if !strings.HasSuffix(lit, "bbaa") {
		t.Errorf("low lanes = ...%s, want ...bbaa", lit[len(lit)-4:])
	}
}

func TestProtectionCostShape(t *testing.T) {
	// The protection-vs-resources contract: none is free, parity is
	// cheaper than ECC, and the full ECC + scrub + checkpoint premium
	// stays a small fraction of the design — within 2 percentage points
	// of device utilisation on top of the paper's 6.5%-13.3% band.
	dev := AlveoU50()
	for _, app := range apps.All() {
		pl := compileApp(t, app.Name, core.Options{})
		none := EstimateProtection(pl, protect.LevelNone)
		parity := EstimateProtection(pl, protect.LevelParity)
		ecc := EstimateProtection(pl, protect.LevelECC)
		if none != (Resources{}) {
			t.Errorf("%s: LevelNone costs %+v, want zero", app.Name, none)
		}
		if parity.LUTs <= 0 || ecc.LUTs <= parity.LUTs {
			t.Errorf("%s: cost ordering broken: parity %+v, ecc %+v", app.Name, parity, ecc)
		}
		if ecc.BRAM36 < parity.BRAM36 {
			t.Errorf("%s: ECC stores fewer check bits than parity: %+v vs %+v", app.Name, ecc, parity)
		}
		base := EstimateDesign(pl).PercentOf(dev).Max()
		prot := EstimateDesignProtected(pl, protect.LevelECC).PercentOf(dev).Max()
		premium := prot - base
		if premium <= 0 {
			t.Errorf("%s: ECC premium %.3f points, want positive", app.Name, premium)
		}
		if premium > 2.0 {
			t.Errorf("%s: ECC premium %.2f utilisation points exceeds the 2-point bound", app.Name, premium)
		}
	}
}

func TestProtectionCostlessWithoutMaps(t *testing.T) {
	// A pipeline with no maps has nothing to protect: no scrubber, no
	// checkpoint controller, no check bits.
	prog, err := asm.Assemble("nomap", "r0 = 2\nexit\n")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := EstimateProtection(pl, protect.LevelECC); got != (Resources{}) {
		t.Errorf("map-less pipeline prices protection at %+v", got)
	}
}
