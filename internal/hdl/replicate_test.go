package hdl

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/rss"
)

// TestReplicatedMatchesSingleAtOne: a one-queue deployment is exactly
// the single pipeline — no front end, no extra ports, one copy of every
// map. This is what keeps every app inside the paper's utilisation band
// at N=1 by construction.
func TestReplicatedMatchesSingleAtOne(t *testing.T) {
	for _, app := range apps.All() {
		pl := compileApp(t, app.Name, core.Options{})
		if got, want := EstimateReplicated(pl, 1), EstimatePipeline(pl); got != want {
			t.Errorf("%s: EstimateReplicated(1) %+v != EstimatePipeline %+v", app.Name, got, want)
		}
		if got, want := EstimateDesignReplicated(pl, 1), EstimateDesign(pl); got != want {
			t.Errorf("%s: EstimateDesignReplicated(1) %+v != EstimateDesign %+v", app.Name, got, want)
		}
	}
}

// TestReplicatedBandAtOne re-states the Section 5 claim through the
// replicated entry point: at one queue every evaluation application
// stays in the calibrated 6.5%-13.3%-order band.
func TestReplicatedBandAtOne(t *testing.T) {
	dev := AlveoU50()
	for _, app := range apps.All() {
		pl := compileApp(t, app.Name, core.Options{})
		pct := EstimateDesignReplicated(pl, 1).PercentOf(dev)
		if pct.LUT < 5 || pct.LUT > 14 {
			t.Errorf("%s: LUT utilisation %.2f%% outside the calibrated band", app.Name, pct.LUT)
		}
	}
}

// TestLogicScalesLinearly: the stage datapath is stamped out once per
// replica, exactly.
func TestLogicScalesLinearly(t *testing.T) {
	pl := compileApp(t, "firewall", core.Options{})
	p1 := EstimateReplicatedParts(pl, 1)
	for _, n := range []int{2, 4, 8} {
		pn := EstimateReplicatedParts(pl, n)
		if pn.PerReplicaLogic != p1.PerReplicaLogic {
			t.Fatalf("%d queues: per-replica logic changed: %+v vs %+v", n, pn.PerReplicaLogic, p1.PerReplicaLogic)
		}
		if pn.Logic != p1.Logic.Scale(n) {
			t.Fatalf("%d queues: logic %+v, want %d x %+v", n, pn.Logic, n, p1.Logic)
		}
	}
}

// TestSharedMapMemoryConstant: the router's LPM table is read-only for
// the data plane, so its memory is instantiated once no matter the
// queue count — only ports and arbitration grow.
func TestSharedMapMemoryConstant(t *testing.T) {
	pl := compileApp(t, "router", core.Options{})
	shared := false
	for i := range pl.Maps {
		if rss.ClassifyMap(pl, pl.Maps[i].MapID) == rss.SharingShared {
			shared = true
		}
	}
	if !shared {
		t.Fatal("router has no shared map; the test premise is gone")
	}
	p1 := EstimateReplicatedParts(pl, 1)
	for _, n := range []int{2, 4, 8} {
		pn := EstimateReplicatedParts(pl, n)
		if pn.SharedMaps.BRAM36 != p1.SharedMaps.BRAM36 {
			t.Fatalf("%d queues: shared-map BRAM %d, want the single-instance %d",
				n, pn.SharedMaps.BRAM36, p1.SharedMaps.BRAM36)
		}
		if pn.SharedMaps.LUTs <= p1.SharedMaps.LUTs {
			t.Fatalf("%d queues: shared-map port logic did not grow", n)
		}
	}
}

// TestBankedMapsScaleWithQueues: per-flow and counter maps pay a full
// block per replica, per-CPU style.
func TestBankedMapsScaleWithQueues(t *testing.T) {
	pl := compileApp(t, "firewall", core.Options{})
	p1 := EstimateReplicatedParts(pl, 1)
	if p1.BankedMaps == (Resources{}) {
		t.Fatal("firewall has no banked maps; the test premise is gone")
	}
	for _, n := range []int{2, 4, 8} {
		pn := EstimateReplicatedParts(pl, n)
		if pn.BankedMaps != p1.BankedMaps.Scale(n) {
			t.Fatalf("%d queues: banked maps %+v, want %d x %+v", n, pn.BankedMaps, n, p1.BankedMaps)
		}
	}
}

// TestFrontEndShape: no classifier at one queue; above that, a fixed
// hash-and-table base plus a constant per-queue increment (the
// crossbar, FIFOs and collector ports are O(n)).
func TestFrontEndShape(t *testing.T) {
	if rssFrontEndCost(1) != (Resources{}) {
		t.Fatal("single-queue front end should be free")
	}
	slope := rssFrontEndCost(3).LUTs - rssFrontEndCost(2).LUTs
	if slope <= 0 {
		t.Fatal("front end does not grow with queues")
	}
	for n := 3; n < 8; n++ {
		if got := rssFrontEndCost(n+1).LUTs - rssFrontEndCost(n).LUTs; got != slope {
			t.Fatalf("per-queue LUT slope changed at %d queues: %d vs %d", n, got, slope)
		}
	}
	if rssFrontEndCost(4).BRAM36 != 4 {
		t.Fatalf("4-queue front end carries %d BRAM, want one ingress FIFO per queue", rssFrontEndCost(4).BRAM36)
	}
}

// TestReplicatedFitsDevice: the scale-out story only matters if it is
// realisable — all five evaluation apps at 8 queues, shell included,
// must fit the testbed's Alveo U50.
func TestReplicatedFitsDevice(t *testing.T) {
	dev := AlveoU50()
	for _, app := range apps.All() {
		pl := compileApp(t, app.Name, core.Options{})
		if util := EstimateDesignReplicated(pl, 8).PercentOf(dev).Max(); util >= 100 {
			t.Errorf("%s: 8-queue deployment needs %.1f%% of the device", app.Name, util)
		}
	}
}

// TestPartsSumToTotal keeps the breakdown honest against the headline
// number.
func TestPartsSumToTotal(t *testing.T) {
	pl := compileApp(t, "suricata", core.Options{})
	for _, n := range []int{1, 2, 4, 8} {
		parts := EstimateReplicatedParts(pl, n)
		if parts.Total() != EstimateReplicated(pl, n) {
			t.Fatalf("%d queues: parts do not sum to the total", n)
		}
	}
}
