package hdl

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/asm"
	"ehdl/internal/core"
)

func TestLiveUpdateCostShape(t *testing.T) {
	// The hot-swap contract: every app prices positive (the controller
	// and canary path are unconditional), map-bearing designs pay the
	// double buffer in BRAM, and the whole updatable design still fits
	// the target device.
	dev := AlveoU50()
	for _, app := range apps.All() {
		pl := compileApp(t, app.Name, core.Options{})
		upd := EstimateLiveUpdate(pl)
		if upd.LUTs <= 0 || upd.FFs <= 0 {
			t.Errorf("%s: live-update logic prices at %+v, want positive", app.Name, upd)
		}
		if len(pl.Maps) > 0 && upd.BRAM36 <= 0 {
			t.Errorf("%s: maps present but no double-buffer BRAM priced: %+v", app.Name, upd)
		}
		whole := EstimateDesignUpdatable(pl)
		if got, want := whole, EstimateDesign(pl).Add(upd); got != want {
			t.Errorf("%s: EstimateDesignUpdatable %+v != design+update %+v", app.Name, got, want)
		}
		if util := whole.PercentOf(dev).Max(); util >= 100 {
			t.Errorf("%s: updatable design does not fit the U50: %.1f%% utilisation", app.Name, util)
		}
	}
}

func TestLiveUpdateDoubleBufferDominates(t *testing.T) {
	// For a map-heavy design the double-buffered storage must be the
	// dominant term: at least as many BRAMs as the per-map data copies,
	// and strictly more than the shared delta log alone.
	pl := compileApp(t, "firewall", core.Options{})
	upd := EstimateLiveUpdate(pl)
	deltaOnly := (deltaLogEntries*deltaLogBits + 36*1024 - 1) / (36 * 1024)
	if upd.BRAM36 <= deltaOnly {
		t.Fatalf("firewall double buffer prices %d BRAMs, delta log alone is %d", upd.BRAM36, deltaOnly)
	}
}

func TestLiveUpdateMaplessPaysControllerOnly(t *testing.T) {
	// Swapping a map-less pipeline is an ingress mux flip: no double
	// buffer, no migration channels, no delta log — but the controller
	// and the canary tap are still there.
	prog, err := asm.Assemble("nomap", "r0 = 2\nexit\n")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	upd := EstimateLiveUpdate(pl)
	if upd.BRAM36 != 0 {
		t.Errorf("map-less pipeline prices %d double-buffer BRAMs, want 0", upd.BRAM36)
	}
	if want := (Resources{LUTs: canaryLUTs + reconfLUTs, FFs: canaryFFs + reconfFFs}); upd != want {
		t.Errorf("map-less update cost %+v, want controller+canary %+v", upd, want)
	}
}
