package hdl

import (
	"ehdl/internal/core"
	"ehdl/internal/rss"
)

// ReplicatedParts breaks a multi-queue deployment's resource bill into
// the pieces that scale differently with the replica count: the stage
// datapath is stamped out once per queue, banked maps multiply with it,
// shared maps pay only for extra read ports, and the RSS front end
// (hash, distributor, collector) grows linearly but from a small base.
type ReplicatedParts struct {
	// Queues is the replica count the estimate was built for.
	Queues int
	// PerReplicaLogic is one copy of the stage datapath, maps excluded.
	PerReplicaLogic Resources
	// Logic is PerReplicaLogic stamped out Queues times.
	Logic Resources
	// SharedMaps covers maps the data plane never writes: one memory
	// block regardless of the replica count, plus a port and an arbiter
	// per extra replica.
	SharedMaps Resources
	// BankedMaps covers per-flow and counter maps: a full block per
	// replica, the hardware analogue of the kernel's per-CPU maps.
	BankedMaps Resources
	// FrontEnd is the RSS machinery itself: Toeplitz hash, indirection
	// table, distributor crossbar, per-queue ingress FIFOs and the
	// completion collector. Zero for a single queue — the classifier
	// only exists when there is a choice to make.
	FrontEnd Resources
}

// Total sums the parts.
func (p ReplicatedParts) Total() Resources {
	return p.Logic.Add(p.SharedMaps).Add(p.BankedMaps).Add(p.FrontEnd)
}

// EstimateReplicatedParts prices an n-queue deployment of a compiled
// pipeline part by part. At n=1 the total is exactly EstimatePipeline:
// no front end, no extra ports, one copy of everything.
func EstimateReplicatedParts(p *core.Pipeline, queues int) ReplicatedParts {
	if queues < 1 {
		queues = 1
	}
	parts := ReplicatedParts{Queues: queues}
	parts.PerReplicaLogic = estimateStageLogic(p)
	parts.Logic = parts.PerReplicaLogic.Scale(queues)

	for i := range p.Maps {
		mb := &p.Maps[i]
		block := mapBlockCost(mb)
		if rss.ClassifyMap(p, mb.MapID) == rss.SharingShared {
			parts.SharedMaps = parts.SharedMaps.Add(block)
			if queues > 1 {
				parts.SharedMaps = parts.SharedMaps.Add(sharedPortCost(mb, queues))
			}
			continue
		}
		parts.BankedMaps = parts.BankedMaps.Add(block.Scale(queues))
	}

	parts.FrontEnd = rssFrontEndCost(queues)
	return parts
}

// EstimateReplicated returns the total pipeline resources of an n-queue
// deployment (no shell).
func EstimateReplicated(p *core.Pipeline, queues int) Resources {
	return EstimateReplicatedParts(p, queues).Total()
}

// EstimateDesignReplicated is EstimateReplicated plus the NIC shell —
// the multi-queue analogue of the Figure 10 quantity. The shell is paid
// once: Corundum already terminates all queues of the 100 Gbps MAC.
func EstimateDesignReplicated(p *core.Pipeline, queues int) Resources {
	return EstimateReplicated(p, queues).Add(CorundumShell())
}

// sharedPortCost prices the extra access hardware a shared map needs
// when more than one replica reads it: a duplicated channel interface
// per extra replica (the block's own channels are in mapBlockCost) and
// a round-robin arbiter sized to the port count. The memory itself is
// not duplicated — that is the point of sharing.
func sharedPortCost(mb *core.MapBlock, queues int) Resources {
	channels := len(mb.ReadStages) + len(mb.WriteStages) + len(mb.AtomicStages)
	var r Resources
	r.LUTs += 90 * channels * (queues - 1)
	r.FFs += 70 * channels * (queues - 1)
	r.LUTs += 40 * queues // arbitration tree over the widened port set
	return r
}

// rssFrontEndCost prices the scale-out machinery of Section 5's
// replicated deployment: one Toeplitz hash over the 12-byte tuple, the
// 128-entry indirection table, and per-queue distribution/collection.
// A single-queue design carries none of it.
func rssFrontEndCost(queues int) Resources {
	if queues <= 1 {
		return Resources{}
	}
	var r Resources
	// Pipelined Toeplitz XOR tree plus the 320-bit key schedule.
	r.LUTs += 1850
	r.FFs += 640
	// Indirection table: 128 entries of log2(n) bits fit in LUTRAM.
	r.LUTs += 60
	// Distributor crossbar: steering muxes and valid fan-out per queue.
	r.LUTs += 90 * queues
	r.FFs += 48 * queues
	// Per-queue ingress FIFO: one frame-wide BRAM burst buffer each.
	r.LUTs += 220 * queues
	r.FFs += 180 * queues
	r.BRAM36 += queues
	// Completion collector: per-queue egress arbitration plus the
	// shared reorder-free merge point.
	r.LUTs += 120*queues + 200
	r.FFs += 60 * queues
	return r
}
