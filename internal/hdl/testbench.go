package hdl

import (
	"fmt"
	"strings"

	"ehdl/internal/core"
)

// GenerateTestbench renders a self-checking VHDL testbench for the
// design Generate produces: it instantiates the pipeline, drives the
// clock and reset, streams the supplied packets through the AXI-Stream
// input frame by frame, and asserts the expected XDP verdicts at the
// output — the artifact an FPGA engineer would hand to a simulator
// before synthesis.
//
// Each stimulus pairs a packet with the verdict the reference
// interpreter produced, so the testbench encodes the same golden-model
// expectations the Go test suite checks cycle-accurately.
func GenerateTestbench(p *core.Pipeline, stimuli []Stimulus) string {
	var b strings.Builder
	g := &generator{p: p, w: &b}
	tb := &tbGen{generator: g, stimuli: stimuli}
	tb.emit()
	return b.String()
}

// Stimulus is one testbench vector.
type Stimulus struct {
	// Packet bytes streamed into s_axis, padded to whole frames.
	Packet []byte
	// Verdict expected on m_axis_tdest (the XDP action).
	Verdict uint8
}

type tbGen struct {
	*generator
	stimuli []Stimulus
}

func (g *tbGen) emit() {
	name := g.entityName()
	frameBytes := g.frameBits() / 8

	g.pf("-- %s_tb: self-checking testbench (%d stimuli)\n", name, len(g.stimuli))
	g.pf("\nlibrary ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n")
	g.pf("entity %s_tb is\nend entity %s_tb;\n\n", name, name)
	g.pf("architecture sim of %s_tb is\n\n", name)
	g.pf("  constant CLK_PERIOD : time := 4 ns; -- 250 MHz\n")
	g.pf("  constant FRAME_BITS : integer := %d;\n\n", g.frameBits())

	g.pf("  signal clk, rst        : std_logic := '0';\n")
	g.pf("  signal s_tdata         : std_logic_vector(FRAME_BITS-1 downto 0) := (others => '0');\n")
	g.pf("  signal s_tkeep         : std_logic_vector(FRAME_BITS/8-1 downto 0) := (others => '1');\n")
	g.pf("  signal s_tvalid, s_tlast, s_tready : std_logic := '0';\n")
	g.pf("  signal m_tdata         : std_logic_vector(FRAME_BITS-1 downto 0);\n")
	g.pf("  signal m_tkeep         : std_logic_vector(FRAME_BITS/8-1 downto 0);\n")
	g.pf("  signal m_tvalid, m_tlast : std_logic;\n")
	g.pf("  signal m_tdest         : std_logic_vector(2 downto 0);\n\n")

	g.pf("begin\n\n")
	g.pf("  clk <= not clk after CLK_PERIOD / 2;\n\n")

	g.pf("  dut : entity work.%s\n", name)
	g.pf("    generic map (FRAME_BITS => FRAME_BITS)\n")
	g.pf("    port map (\n")
	g.pf("      clk => clk, rst => rst,\n")
	g.pf("      s_axis_tdata => s_tdata, s_axis_tkeep => s_tkeep,\n")
	g.pf("      s_axis_tvalid => s_tvalid, s_axis_tlast => s_tlast, s_axis_tready => s_tready,\n")
	g.pf("      m_axis_tdata => m_tdata, m_axis_tkeep => m_tkeep,\n")
	g.pf("      m_axis_tvalid => m_tvalid, m_axis_tlast => m_tlast, m_axis_tready => '1',\n")
	g.pf("      m_axis_tdest => m_tdest,\n")
	g.pf("      host_map_sel => (others => '0'), host_map_addr => (others => '0'),\n")
	g.pf("      host_map_wdata => (others => '0'), host_map_wen => '0',\n")
	g.pf("      host_map_rdata => open\n")
	g.pf("    );\n\n")

	g.pf("  p_stimulus : process\n  begin\n")
	g.pf("    rst <= '1';\n    wait for 5 * CLK_PERIOD;\n    rst <= '0';\n")
	for i, st := range g.stimuli {
		frames := (len(st.Packet) + frameBytes - 1) / frameBytes
		if frames == 0 {
			frames = 1
		}
		g.pf("\n    -- packet %d: %d bytes, %d frame(s), expect verdict %d\n",
			i, len(st.Packet), frames, st.Verdict)
		for f := 0; f < frames; f++ {
			frame := make([]byte, frameBytes)
			copy(frame, tail(st.Packet, f*frameBytes))
			g.pf("    s_tdata <= x\"%s\";\n", hexBE(frame))
			last := "'0'"
			if f == frames-1 {
				last = "'1'"
			}
			g.pf("    s_tvalid <= '1'; s_tlast <= %s;\n", last)
			g.pf("    wait for CLK_PERIOD;\n")
		}
		g.pf("    s_tvalid <= '0';\n")
	}
	g.pf("\n    wait for %d * CLK_PERIOD; -- drain the %d-stage pipeline\n",
		len(g.p.Stages)+8, len(g.p.Stages))
	g.pf("    wait;\n  end process;\n\n")

	g.pf("  p_check : process(clk)\n")
	g.pf("    variable received : integer := 0;\n")
	g.pf("  begin\n")
	g.pf("    if rising_edge(clk) and m_tvalid = '1' and m_tlast = '1' then\n")
	g.pf("      case received is\n")
	for i, st := range g.stimuli {
		g.pf("        when %d => assert m_tdest = \"%03b\" report \"packet %d: wrong verdict\" severity error;\n",
			i, st.Verdict&7, i)
	}
	g.pf("        when others => report \"unexpected extra packet\" severity error;\n")
	g.pf("      end case;\n")
	g.pf("      received := received + 1;\n")
	g.pf("    end if;\n")
	g.pf("  end process;\n\n")
	g.pf("end architecture sim;\n")
}

func tail(b []byte, off int) []byte {
	if off >= len(b) {
		return nil
	}
	return b[off:]
}

// hexBE renders a frame as the VHDL hex literal with byte 0 in the low
// lanes (little-endian AXI data).
func hexBE(frame []byte) string {
	var b strings.Builder
	for i := len(frame) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%02x", frame[i])
	}
	return b.String()
}
