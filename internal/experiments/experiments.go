// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and the appendix) from the systems built in this
// repository. Each experiment returns a Table that the ehdl-bench
// binary prints and the benchmark suite asserts on.
//
// Absolute numbers come from the calibrated simulator and cost models
// (see DESIGN.md for the substitutions); the assertions and the paper
// comparison target the shape of each result: who wins, by what order,
// where the crossovers fall.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ehdl/internal/analytic"
	"ehdl/internal/apps"
	"ehdl/internal/baseline/bluefield"
	"ehdl/internal/baseline/hxdp"
	"ehdl/internal/baseline/sdnet"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hdl"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
	"ehdl/internal/power"
	"ehdl/internal/protect"
)

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales the experiments.
type Config struct {
	// Packets per measurement point. 0 means 4000.
	Packets int
	// FastPath serves eligible measurement points from the compiled
	// host engine instead of the cycle-accurate interpreter. Points
	// whose configuration the fast path cannot run bit-identically
	// (fault campaigns, protection, stall policy) fall back silently,
	// exactly as the library does.
	FastPath bool
}

func (c Config) packets() int {
	if c.Packets <= 0 {
		return 4000
	}
	return c.Packets
}

// Runner is an experiment generator.
type Runner func(Config) (Table, error)

// All returns every experiment keyed by its identifier.
func All() map[string]Runner {
	return map[string]Runner{
		"table1":      Table1,
		"fig8":        Fig8,
		"fig9a":       Fig9aThroughput,
		"fig9b":       Fig9bLatency,
		"fig9c":       Fig9cStages,
		"fig10":       Fig10Resources,
		"table2":      Table2Flushing,
		"single-flow": SingleFlowDegradation,
		"pruning":     PruningAblation,
		"power":       PowerMeasurement,
		"table3":      Table3Analytic,
		"table4":      Table4Analytic,
		"table5":      Table5ILP,
		"hazard":      HazardPolicyAblation,
		"framing":     FramingAblation,
		"lb":          LoadBalancerDemo,
		"resilience":  Resilience,
		"protection":  ProtectionAblation,
		"liveupdate":  LiveUpdateUnderLoad,
		"scaling":     Scaling,
		"tenancy":     Tenancy,
	}
}

// IDs returns the experiment identifiers in a stable order.
func IDs() []string {
	var ids []string
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func istr(v int) string    { return fmt.Sprintf("%d", v) }
func u64s(v uint64) string { return fmt.Sprintf("%d", v) }

func compileApp(app *apps.App, opts core.Options) (*core.Pipeline, error) {
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	return core.Compile(prog, opts)
}

// Table1 reproduces the application inventory.
func Table1(Config) (Table, error) {
	t := Table{ID: "table1", Title: "Applications used for evaluation",
		Columns: []string{"Program", "Description"}}
	for _, app := range apps.All() {
		t.Rows = append(t.Rows, []string{app.Name, app.Description})
	}
	return t, nil
}

// Fig8 lays out the toy pipeline like Figure 8: stages, their ops and
// the pruned per-stage state.
func Fig8(Config) (Table, error) {
	pl, err := compileApp(apps.Toy(), core.Options{})
	if err != nil {
		return Table{}, err
	}
	t := Table{ID: "fig8", Title: "Generated pipeline for the toy program (Figure 8)",
		Columns: []string{"Stage", "Kind", "Regs", "Stack B", "Ops"}}
	oneReg, twoReg, threePlus := 0, 0, 0
	for s := range pl.Stages {
		st := &pl.Stages[s]
		var ops []string
		for i := range st.Ops {
			ops = append(ops, st.Ops[i].Ins.String())
			for _, f := range st.Ops[i].Fused {
				ops = append(ops, "{fused "+f.String()+"}")
			}
		}
		switch n := st.CarryRegCount(); {
		case n == 1:
			oneReg++
		case n == 2:
			twoReg++
		case n >= 3:
			threePlus++
		}
		t.Rows = append(t.Rows, []string{
			istr(s), st.Kind.String(), istr(st.CarryRegCount()),
			istr(st.CarryStackBytes()), strings.Join(ops, " | "),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d stages; carried registers: %d stages with 1, %d with 2, %d with 3+; paper: 20 stages, 9/6/1",
			pl.NumStages(), oneReg, twoReg, threePlus),
		fmt.Sprintf("stack carried only where live (max %dB vs 512B unpruned); bounds checks elided: %d",
			maxStack(pl), pl.ElidedBoundsChecks))
	return t, nil
}

func maxStack(pl *core.Pipeline) int {
	m := 0
	for i := range pl.Stages {
		if n := pl.Stages[i].CarryStackBytes(); n > m {
			m = n
		}
	}
	return m
}

// Fig9aThroughput measures throughput for the five applications across
// all systems at 148 Mpps offered (64-byte packets, 10k flows).
func Fig9aThroughput(cfg Config) (Table, error) {
	t := Table{ID: "fig9a", Title: "Throughput, Mpps at 100 Gbps / 64B (Figure 9a, log scale in the paper)",
		Columns: []string{"Program", "eHDL", "SDNet", "hXDP", "Bf2 1c", "Bf2 4c"}}
	n := cfg.packets()
	for _, app := range apps.All() {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		sh, err := nic.New(pl, nic.ShellConfig{FastPath: cfg.FastPath})
		if err != nil {
			return t, err
		}
		if err := app.Setup(sh.Maps()); err != nil {
			return t, err
		}
		gen := pktgen.NewGenerator(app.Traffic)
		line := sh.LineRateMpps(64)
		rep, err := sh.RunLoad(gen.Next, n, line*1e6)
		if err != nil {
			return t, err
		}
		ehdlCell := f1(rep.AchievedMpps)
		if rep.Lost > 0 {
			ehdlCell += fmt.Sprintf(" (%d lost)", rep.Lost)
		}

		sdnetCell := "n/a"
		if d, err := sdnet.Compile(app); err == nil {
			sdnetCell = f1(d.ThroughputMpps(100, 64))
		}

		prog, err := app.Program()
		if err != nil {
			return t, err
		}
		hx, err := hxdp.New().RunApp(prog, app.SetupHost, pktgen.NewGenerator(app.Traffic), min(n, 600))
		if err != nil {
			return t, err
		}
		bf1, err := bluefield.New(1).RunApp(prog, app.SetupHost, pktgen.NewGenerator(app.Traffic), min(n, 600))
		if err != nil {
			return t, err
		}
		bf4, err := bluefield.New(4).RunApp(prog, app.SetupHost, pktgen.NewGenerator(app.Traffic), min(n, 600))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{app.Name, ehdlCell, sdnetCell, f2(hx.Mpps), f2(bf1.Mpps), f2(bf4.Mpps)})
	}
	t.Notes = append(t.Notes, "paper: eHDL and SDNet at 148 (SDNet cannot express DNAT); hXDP 0.9-5.4; Bf2 grows linearly with cores")
	return t, nil
}

// Fig9bLatency measures forwarding latency for eHDL and hXDP.
func Fig9bLatency(cfg Config) (Table, error) {
	t := Table{ID: "fig9b", Title: "Forwarding latency, nanoseconds (Figure 9b)",
		Columns: []string{"Program", "eHDL avg", "eHDL max", "hXDP"}}
	for _, app := range apps.All() {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		sh, err := nic.New(pl, nic.ShellConfig{FastPath: cfg.FastPath})
		if err != nil {
			return t, err
		}
		if err := app.Setup(sh.Maps()); err != nil {
			return t, err
		}
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, min(cfg.packets(), 1000), 50e6)
		if err != nil {
			return t, err
		}
		prog, err := app.Program()
		if err != nil {
			return t, err
		}
		hx, err := hxdp.New().RunApp(prog, app.SetupHost, pktgen.NewGenerator(app.Traffic), 300)
		if err != nil {
			return t, err
		}
		// hXDP latency includes the same shell FIFOs.
		hxNs := hx.AvgLatencyNs + 160.0/250e6*1e9
		t.Rows = append(t.Rows, []string{app.Name, f1(rep.AvgLatencyNs), f1(rep.MaxLatencyNs), f1(hxNs)})
	}
	t.Notes = append(t.Notes, "paper: about 1 microsecond for both systems; variation follows pipeline depth (Figure 9c)")
	return t, nil
}

// Fig9cStages compares pipeline depth against hXDP bundles and the
// original instruction count.
func Fig9cStages(Config) (Table, error) {
	t := Table{ID: "fig9c", Title: "Pipeline stages vs instructions (Figure 9c)",
		Columns: []string{"Program", "eHDL stages", "hXDP instr", "Original instr"}}
	m := hxdp.New()
	for _, app := range apps.All() {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		prog, err := app.Program()
		if err != nil {
			return t, err
		}
		bundles, err := m.StaticBundles(prog)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			app.Name, istr(pl.NumStages()), istr(bundles), istr(len(pl.Prog.Instructions)),
		})
	}
	t.Notes = append(t.Notes, "paper: both systems compress the original count, sometimes by ~50%; eHDL adds stages for in-line helpers")
	return t, nil
}

// Fig10Resources reports FPGA utilisation for the three systems.
func Fig10Resources(Config) (Table, error) {
	t := Table{ID: "fig10", Title: "FPGA resources on the Alveo U50, % (Figure 10, incl. Corundum)",
		Columns: []string{"Program", "eHDL LUT", "eHDL FF", "eHDL BRAM", "hXDP LUT", "hXDP FF", "hXDP BRAM", "SDNet LUT", "SDNet FF", "SDNet BRAM"}}
	dev := hdl.AlveoU50()
	hx := hxdp.New().Resources().PercentOf(dev)
	for _, app := range apps.All() {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		eh := hdl.EstimateDesign(pl).PercentOf(dev)
		sdLUT, sdFF, sdBRAM := "n/a", "n/a", "n/a"
		if d, err := sdnet.Compile(app); err == nil {
			sd := d.Resources().PercentOf(dev)
			sdLUT, sdFF, sdBRAM = f2(sd.LUT), f2(sd.FF), f2(sd.BRAM)
		}
		t.Rows = append(t.Rows, []string{app.Name,
			f2(eh.LUT), f2(eh.FF), f2(eh.BRAM),
			f2(hx.LUT), f2(hx.FF), f2(hx.BRAM),
			sdLUT, sdFF, sdBRAM})
	}
	t.Notes = append(t.Notes, "paper: eHDL comparable to hXDP, 2-4x below SDNet; hXDP constant across programs (processor)")
	return t, nil
}

// Table2Flushing replays the synthetic CAIDA/MAWI traces through the
// leaky bucket and counts losses and flush events.
func Table2Flushing(cfg Config) (Table, error) {
	t := Table{ID: "table2", Title: "Leaky bucket on real-world trace profiles (Table 2)",
		Columns: []string{"Trace", "# lost packets", "# flushes/sec", "mean pkt B", "offered Mpps"}}
	app := apps.LeakyBucket()
	for _, profile := range []pktgen.TraceProfile{pktgen.CAIDAProfile(), pktgen.MAWIProfile()} {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		sh, err := nic.New(pl, nic.ShellConfig{FastPath: cfg.FastPath})
		if err != nil {
			return t, err
		}
		trace := pktgen.NewTrace(profile)
		offered := pktgen.LineRatePPS(100e9, profile.MeanPacketLen)
		rep, err := sh.RunLoad(trace.Next, cfg.packets(), offered)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			profile.Name, u64s(rep.Lost), f1(rep.FlushesPerS), f1(trace.MeanLen()), f1(offered / 1e6),
		})
	}
	t.Notes = append(t.Notes, "paper (real traces): CAIDA 0 lost / 350k flushes/s; MAWI 0 lost / 124k flushes/s")
	return t, nil
}

// SingleFlowDegradation forces every packet onto one map key
// (Section 5.3): the flush-protected pipeline degrades while the
// realistic trace sustains its line rate.
func SingleFlowDegradation(cfg Config) (Table, error) {
	t := Table{ID: "single-flow", Title: "Max sustained rate, CAIDA profile vs single-flow (Section 5.3)",
		Columns: []string{"Workload", "Sustained Mpps"}}
	app := apps.LeakyBucket()

	// Realistic trace at its line rate.
	pl, err := compileApp(app, core.Options{})
	if err != nil {
		return t, err
	}
	sh, err := nic.New(pl, nic.ShellConfig{FastPath: cfg.FastPath})
	if err != nil {
		return t, err
	}
	trace := pktgen.NewTrace(pktgen.CAIDAProfile())
	offered := pktgen.LineRatePPS(100e9, pktgen.CAIDAProfile().MeanPacketLen)
	rep, err := sh.RunLoad(trace.Next, cfg.packets(), offered)
	if err != nil {
		return t, err
	}
	traceMpps := rep.AchievedMpps
	t.Rows = append(t.Rows, []string{"CAIDA profile (all flows)", f1(traceMpps)})

	// Single flow: every packet hits the same bucket entry.
	single := &apps.App{Name: "leakybucket_single", Source: singleKeySource(app.Source), Traffic: app.Traffic}
	pl2, err := compileApp(single, core.Options{})
	if err != nil {
		return t, err
	}
	sh2, err := nic.New(pl2, nic.ShellConfig{FastPath: cfg.FastPath, Sim: hwsim.Config{InputQueuePackets: 64}})
	if err != nil {
		return t, err
	}
	gen := func() []byte {
		return pktgen.Build(pktgen.PacketSpec{Flow: pktgen.Flow{SrcIP: 1, DstIP: 2, Proto: ebpf.IPProtoUDP}, TotalLen: 411})
	}
	sat, err := sh2.SaturationMpps(gen, min(cfg.packets(), 2000), 2, 2, 40)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"single flow (same map key)", f1(sat)})
	t.Notes = append(t.Notes, "paper: 29 Mpps -> 12 Mpps when all packets share one key")
	return t, nil
}

// singleKeySource rewrites the leaky bucket to use a constant key.
func singleKeySource(src string) string {
	return strings.Replace(src,
		"r4 = *(u32 *)(r7 + 26)         ; source address is the bucket key",
		"r4 = 7                         ; constant key: every packet collides", 1)
}

// PruningAblation reproduces the Section 5.4 numbers: pipeline-only
// resources with and without state pruning.
func PruningAblation(Config) (Table, error) {
	t := Table{ID: "pruning", Title: "State pruning ablation, pipeline only (Section 5.4)",
		Columns: []string{"Variant", "LUTs", "FFs", "BRAM36"}}
	pruned, err := compileApp(apps.Toy(), core.Options{})
	if err != nil {
		return t, err
	}
	unpruned, err := compileApp(apps.Toy(), core.Options{DisablePruning: true})
	if err != nil {
		return t, err
	}
	a, b := hdl.EstimatePipeline(pruned), hdl.EstimatePipeline(unpruned)
	t.Rows = append(t.Rows,
		[]string{"pruned", istr(a.LUTs), istr(a.FFs), istr(a.BRAM36)},
		[]string{"unpruned", istr(b.LUTs), istr(b.FFs), istr(b.BRAM36)},
		[]string{"delta %",
			f1(100 * float64(b.LUTs-a.LUTs) / float64(a.LUTs)),
			f1(100 * float64(b.FFs-a.FFs) / float64(a.FFs)),
			f1(100 * float64(b.BRAM36-a.BRAM36) / float64(max(a.BRAM36, 1)))})
	t.Notes = append(t.Notes, "paper: +46% LUTs, +66% FFs, +123% BRAM without pruning")
	return t, nil
}

// PowerMeasurement reports the Section 5.2 wall-power bands.
func PowerMeasurement(Config) (Table, error) {
	t := Table{ID: "power", Title: "Wall power of the system under test (Section 5.2)",
		Columns: []string{"Host + NIC", "Watts", "nJ/packet at measured rate"}}
	for _, design := range []string{"eHDL", "hXDP", "SDNet"} {
		p := power.U50Host(design)
		rate := 148.0
		if design == "hXDP" {
			rate = 3
		}
		t.Rows = append(t.Rows, []string{p.NIC, fmt.Sprintf("%.0f-%.0f", p.MinWatts, p.MaxWatts),
			f1(power.EnergyPerPacketNanojoules(p, rate))})
	}
	bf := power.Bf2Host()
	t.Rows = append(t.Rows, []string{bf.NIC, fmt.Sprintf("%.0f-%.0f", bf.MinWatts, bf.MaxWatts),
		f1(power.EnergyPerPacketNanojoules(bf, 3))})
	return t, nil
}

// Table3Analytic evaluates the Appendix A.1 model on the compiled
// hazard geometries.
func Table3Analytic(Config) (Table, error) {
	t := Table{ID: "table3", Title: "Analytic pipeline throughput at 50k Zipfian flows (Table 3)",
		Columns: []string{"Program", "K", "L", "Tp Mpps"}}
	var inputs []struct {
		Name       string
		K, L       int
		NeedsFlush bool
	}
	for _, app := range append(apps.All(), apps.LeakyBucket()) {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		in := struct {
			Name       string
			K, L       int
			NeedsFlush bool
		}{Name: app.Name}
		for i := range pl.Maps {
			mb := &pl.Maps[i]
			if mb.NeedsFlush {
				in.NeedsFlush = true
				if mb.K > in.K {
					in.K = mb.K
				}
				if mb.L > in.L {
					in.L = mb.L
				}
			}
		}
		inputs = append(inputs, in)
	}
	for _, row := range analytic.Table3(inputs) {
		tp := "N/A"
		if row.TpMpps > 0 {
			tp = f1(row.TpMpps)
		}
		t.Rows = append(t.Rows, []string{row.Program, istr(row.K), istr(row.L), tp})
	}
	t.Notes = append(t.Notes, "K/L come from this compiler's pipelines; the paper's Table 3 lists its own geometry (e.g. leaky K=39, L=5)")
	return t, nil
}

// Table4Analytic evaluates equation (3) for the paper's parameters.
func Table4Analytic(Config) (Table, error) {
	t := Table{ID: "table4", Title: "Max flushable stages sustaining 148 Mpps, Zipf 50k flows (Table 4)",
		Columns: []string{"L", "Pf^Z %", "Kmax"}}
	for _, row := range analytic.Table4() {
		t.Rows = append(t.Rows, []string{istr(row.L), f2(row.PfZ * 100), f1(row.KMax)})
	}
	t.Notes = append(t.Notes, "paper: L=2 -> 1%/61; L=3 -> 3%/21; L=4 -> 6%/11; L=5 -> 10%/7")
	return t, nil
}

// Table5ILP reports the scheduler's instruction-level parallelism.
func Table5ILP(Config) (Table, error) {
	t := Table{ID: "table5", Title: "Instruction-level parallelism (Table 5 / Appendix A.3)",
		Columns: []string{"Program", "max ILP", "avg ILP"}}
	for _, app := range apps.All() {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		maxILP, avgILP := pl.ILP()
		t.Rows = append(t.Rows, []string{app.Name, istr(maxILP), f2(avgILP)})
	}
	t.Notes = append(t.Notes, "paper: max 3-15 (tunnel widest), avg 1.42-2.37")
	return t, nil
}

// HazardPolicyAblation compares flushing with conservative stalling —
// the design decision of Section 4.1.2.
func HazardPolicyAblation(cfg Config) (Table, error) {
	t := Table{ID: "hazard", Title: "RAW hazard handling: flush vs conservative stall (Section 4.1.2)",
		Columns: []string{"Policy", "Cycles", "Flushes", "Stall cycles", "Mpps"}}
	app := apps.LeakyBucket()
	traffic := app.Traffic
	traffic.Flows = 100000
	n := min(cfg.packets(), 3000)
	for _, policy := range []hwsim.HazardPolicy{hwsim.PolicyFlush, hwsim.PolicyStall} {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		sim, err := hwsim.New(pl, hwsim.Config{Policy: policy})
		if err != nil {
			return t, err
		}
		gen := pktgen.NewGenerator(traffic)
		for _, pkt := range gen.Batch(n) {
			for !sim.InputFree() {
				if err := sim.Step(); err != nil {
					return t, err
				}
			}
			if !sim.Inject(pkt) {
				return t, fmt.Errorf("experiments: input queue rejected a packet despite InputFree")
			}
			if err := sim.Step(); err != nil {
				return t, err
			}
		}
		if err := sim.RunToCompletion(1 << 24); err != nil {
			return t, err
		}
		st := sim.Stats()
		name := "flush"
		if policy == hwsim.PolicyStall {
			name = "stall"
		}
		t.Rows = append(t.Rows, []string{name, u64s(st.Cycles), u64s(st.Flushes), u64s(st.StallCycles), f1(st.Mpps(250e6))})
	}
	t.Notes = append(t.Notes, "the paper rejects stalling: it costs throughput regardless of actual hazards")
	return t, nil
}

// FramingAblation sweeps the frame size (Section 4.2).
func FramingAblation(Config) (Table, error) {
	t := Table{ID: "framing", Title: "Packet frame size ablation (Section 4.2)",
		Columns: []string{"Frame bytes", "Stages", "NOPs", "Pipeline FFs"}}
	for _, frame := range []int{32, 64, 128} {
		pl, err := compileApp(apps.Tunnel(), core.Options{FrameBytes: frame})
		if err != nil {
			return t, err
		}
		r := hdl.EstimatePipeline(pl)
		t.Rows = append(t.Rows, []string{istr(frame), istr(pl.NumStages()), istr(pl.FramingNOPs), istr(r.FFs)})
	}
	t.Notes = append(t.Notes, "smaller frames need more NOP stages for deep accesses but carry less state per stage")
	return t, nil
}

// LoadBalancerDemo runs the beyond-paper Katran-style balancer at line
// rate and reports the backend distribution — the introduction's
// motivating use case, compiled by the same toolchain.
func LoadBalancerDemo(cfg Config) (Table, error) {
	t := Table{ID: "lb", Title: "Katran-style load balancer at line rate (beyond the paper's five programs)",
		Columns: []string{"Backend", "Packets", "Share %"}}
	app, _ := apps.ByName("loadbalancer")
	pl, err := compileApp(app, core.Options{})
	if err != nil {
		return t, err
	}
	sh, err := nic.New(pl, nic.ShellConfig{FastPath: cfg.FastPath})
	if err != nil {
		return t, err
	}
	if err := app.Setup(sh.Maps()); err != nil {
		return t, err
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, cfg.packets(), sh.LineRateMpps(64)*1e6)
	if err != nil {
		return t, err
	}
	hits := apps.LBBackendHits(sh.Maps())
	var total uint64
	for _, h := range hits {
		total += h
	}
	for i, h := range hits {
		be := apps.LBBackends[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d.%d.%d.%d", be[0], be[1], be[2], be[3]),
			u64s(h), f1(100 * float64(h) / float64(max(int(total), 1))),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("achieved %.1f Mpps at line rate, %d stages, lost %d",
		rep.AchievedMpps, pl.NumStages(), rep.Lost))
	return t, nil
}

// Resilience runs one fault-injection campaign per fault class against
// the firewall pipeline (which carries a flush-protected map, so every
// class has a target) and tabulates how the design degrades: faults
// applied, packets still answered, packets retired as XDP_ABORTED, and
// frames the hardware bounds check disposed of. The shell must survive
// every campaign without an error — graceful degradation is the result
// being a table at all.
func Resilience(cfg Config) (Table, error) {
	t := Table{ID: "resilience", Title: "Fault injection: graceful degradation by fault class",
		Columns: []string{"Fault class", "Faults", "Sent", "Received", "Aborted", "HW drops", "Lost", "Watchdog"}}
	app := apps.Firewall()
	n := min(cfg.packets(), 2000)

	campaigns := []struct {
		name string
		fc   faults.Config
	}{
		{"none", faults.Config{}},
		{faults.SEURegister.String(), faults.Single(faults.SEURegister, 0.02, 7)},
		{faults.SEUStack.String(), faults.Single(faults.SEUStack, 0.02, 7)},
		{faults.SEUPacket.String(), faults.Single(faults.SEUPacket, 0.02, 7)},
		{faults.SEUMapEntry.String(), faults.Single(faults.SEUMapEntry, 0.01, 7)},
		{faults.MalformedTraffic.String(), faults.Single(faults.MalformedTraffic, 0.2, 7)},
		{faults.QueueOverflow.String(), faults.Single(faults.QueueOverflow, 0.002, 7)},
		{faults.FlushStorm.String(), faults.Single(faults.FlushStorm, 0.01, 7)},
	}
	for _, c := range campaigns {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		shCfg := nic.ShellConfig{Faults: c.fc}
		shCfg.Sim.WatchdogCycles = 200000
		// A bounded ingress queue, so injected bursts genuinely overflow
		// and the losses show up as counted drops.
		shCfg.Sim.InputQueuePackets = 64
		sh, err := nic.New(pl, shCfg)
		if err != nil {
			return t, err
		}
		if err := app.Setup(sh.Maps()); err != nil {
			return t, err
		}
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, n, sh.LineRateMpps(64)*1e6)
		if err != nil {
			return t, fmt.Errorf("campaign %s did not degrade gracefully: %w", c.name, err)
		}
		total := rep.FaultsInjected + rep.MalformedSent + rep.OverflowBursts
		aborted := rep.Actions[ebpf.XDPAborted]
		t.Rows = append(t.Rows, []string{
			c.name, u64s(total), u64s(rep.Sent), u64s(rep.Received), u64s(aborted),
			u64s(rep.MalformedDropped), u64s(rep.Lost), u64s(rep.WatchdogTrips),
		})
	}
	t.Notes = append(t.Notes,
		"seeded campaigns: identical seeds reproduce identical fault sites and counters",
		"corrupted verdicts retire as XDP_ABORTED; malformed frames resolve via the hardware bounds check; overflow bursts are counted drops")
	return t, nil
}

// ProtectionAblation tabulates what the self-healing subsystem costs on
// the Alveo U50: every evaluation app at every protection level, with
// the utilisation premium over the unprotected design. The paper's
// unprotected designs land in a 6.5%-13.3% utilisation band; the stated
// bound is that full ECC + scrubbing + checkpointing adds at most 2
// percentage points of device utilisation on top of that.
func ProtectionAblation(Config) (Table, error) {
	t := Table{ID: "protection", Title: "Map-memory protection vs FPGA resources (Alveo U50)",
		Columns: []string{"Program", "Protect", "LUT %", "FF %", "BRAM %", "Max %", "Premium pts"}}
	dev := hdl.AlveoU50()
	levels := []protect.Level{protect.LevelNone, protect.LevelParity, protect.LevelECC}
	for _, app := range apps.All() {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		base := hdl.EstimateDesign(pl).PercentOf(dev)
		for _, level := range levels {
			pct := hdl.EstimateDesignProtected(pl, level).PercentOf(dev)
			t.Rows = append(t.Rows, []string{
				app.Name, level.String(),
				f2(pct.LUT), f2(pct.FF), f2(pct.BRAM),
				f2(pct.Max()), f2(pct.Max() - base.Max()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"premium = max-utilisation(protected) - max-utilisation(none); stated bound: ECC adds <= 2 points over the paper's 6.5%-13.3% band",
		"the checkpoint shadow copy lives in HBM behind the shell; the fabric pays codecs, check-bit BRAM, the scrubber FSM and per-map DMA channels")
	return t, nil
}

// LiveUpdateUnderLoad runs the maintenance scenario the hitless-update
// subsystem exists for: replace the serving firewall with the
// leaky-bucket rate limiter mid-run — shadow warm-up, state migration,
// canary, atomic cutover — without dropping a packet, then force the
// same swap to fail (an SEU campaign corrupting the shadow's maps) and
// show the rollback leaving the old pipeline serving untouched.
func LiveUpdateUnderLoad(cfg Config) (Table, error) {
	t := Table{ID: "liveupdate", Title: "Hitless live update under load (firewall -> leaky bucket)",
		Columns: []string{"Scenario", "Sent", "Lost", "Held", "Canaried", "Diverged", "Post-verified", "Outcome"}}
	app := apps.Firewall()
	lb, _ := apps.ByName("leakybucket")
	n := max(cfg.packets(), 1000)

	scenarios := []struct {
		name string
		fc   faults.Config
	}{
		{"clean swap", faults.Config{}},
		{"SEU-corrupted shadow", faults.Single(faults.SEUMapEntry, 0.5, 13)},
	}
	for _, sc := range scenarios {
		pl, err := compileApp(app, core.Options{})
		if err != nil {
			return t, err
		}
		sh, err := nic.New(pl, nic.ShellConfig{FastPath: cfg.FastPath})
		if err != nil {
			return t, err
		}
		// Pinned helper time: the canary diffs the pipelined shadow
		// against a sequential reference, and the rate limiter reads
		// bpf_ktime.
		sh.PinClock(0)
		if err := app.Setup(sh.Maps()); err != nil {
			return t, err
		}
		lbProg, err := lb.Program()
		if err != nil {
			return t, err
		}
		ucfg := liveupdate.Config{
			Prog:                lbProg,
			Setup:               lb.SetupHost,
			CanaryFrac:          1,
			CanaryPackets:       8,
			CanaryDeadlineTicks: 40000,
			PostVerifyPackets:   64,
		}
		if sc.fc.Enabled() {
			ucfg.Sim.Faults = faults.New(sc.fc)
		}
		if err := sh.ScheduleUpdate(n/5, ucfg); err != nil {
			return t, err
		}
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, n, sh.LineRateMpps(64)*1e6/8)
		if err != nil {
			return t, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		outcome := "hitless"
		if rep.UpdatesRolledBack > 0 {
			outcome = "rolled back, old pipeline serving"
		} else if rep.UpdatesCompleted != 1 {
			outcome = fmt.Sprintf("stuck at %s", rep.UpdateStage)
		}
		t.Rows = append(t.Rows, []string{
			sc.name, u64s(rep.Sent), u64s(rep.Lost), u64s(rep.HeldPackets),
			u64s(rep.CanariedPackets), u64s(rep.CanaryDivergences),
			u64s(rep.PostVerifyChecked), outcome,
		})
	}

	pl, err := compileApp(app, core.Options{})
	if err != nil {
		return t, err
	}
	dev := hdl.AlveoU50()
	base := hdl.EstimateDesign(pl).PercentOf(dev)
	upd := hdl.EstimateDesignUpdatable(pl).PercentOf(dev)
	t.Notes = append(t.Notes,
		"held packets are buffered during the cutover drain and released into the new pipeline: zero loss is the hitless proof",
		fmt.Sprintf("updatable firewall prices %.2f%% max utilisation on the U50, +%.2f pts over the static design (double-buffered maps + reconfiguration controller)",
			upd.Max(), upd.Max()-base.Max()))
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
