package experiments

import (
	"fmt"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/hdl"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

// ScalingQueues is the sweep of the multi-queue experiment.
var ScalingQueues = []int{1, 2, 4, 8}

// Scaling sweeps the RSS multi-queue shell: each point offers 85% of
// the replica fleet's aggregate capacity (a single 250 MHz pipeline
// forwards at most one packet per cycle, 250 Mpps) and reports whether
// the fleet absorbs it, alongside the FPGA cost of stamping out that
// many firewall replicas.
func Scaling(cfg Config) (Table, error) {
	t := Table{ID: "scaling", Title: "Multi-queue RSS scale-out (toy pipeline, 85% aggregate load)",
		Columns: []string{"Queues", "Offered Mpps", "Achieved Mpps", "Speedup", "Lost", "Active", "fw LUT%"}}
	app := apps.Toy()
	pl, err := compileApp(app, core.Options{})
	if err != nil {
		return t, err
	}
	fw, err := compileApp(apps.Firewall(), core.Options{})
	if err != nil {
		return t, err
	}
	dev := hdl.AlveoU50()
	n := cfg.packets()
	var base float64
	for _, q := range ScalingQueues {
		sh, err := nic.New(pl, nic.ShellConfig{Queues: q, FastPath: cfg.FastPath, Sim: hwsim.Config{InputQueuePackets: 64}})
		if err != nil {
			return t, err
		}
		if err := app.Setup(sh.Maps()); err != nil {
			return t, err
		}
		gen := pktgen.NewGenerator(app.Traffic)
		offered := 0.85 * 250e6 * float64(q)
		rep, err := sh.RunLoad(gen.Next, n, offered)
		if err != nil {
			return t, err
		}
		if base == 0 {
			base = rep.AchievedMpps
		}
		active := 0
		for _, qr := range rep.PerQueue {
			if qr.Steered > 0 {
				active++
			}
		}
		if q == 1 {
			active = 1
		}
		lut := hdl.EstimateDesignReplicated(fw, q).PercentOf(dev).LUT
		t.Rows = append(t.Rows, []string{
			istr(q), f1(offered / 1e6), f1(rep.AchievedMpps),
			fmt.Sprintf("%.2fx", rep.AchievedMpps/base), u64s(rep.Lost),
			istr(active), f1(lut),
		})
	}
	t.Notes = append(t.Notes,
		"100GbE at 64B is 148.8 Mpps: one 250 MHz replica covers it; the sweep sizes 200/400GbE deployments",
		"fw LUT% is the firewall design replicated N ways on an Alveo U50 (shared maps kept single-instance)")
	return t, nil
}
