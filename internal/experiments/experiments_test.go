package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quickCfg = Config{Packets: 1500}

func run(t *testing.T, id string) Table {
	t.Helper()
	runner, ok := All()[id]
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	tab, err := runner(quickCfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Errorf("%s: table reports ID %q", id, tab.ID)
	}
	return tab
}

func cell(t *testing.T, tab Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("%s: no column %q", tab.ID, col)
	return ""
}

func cellF(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	s := cell(t, tab, row, col)
	s = strings.Fields(s)[0] // strip "(N lost)" suffixes
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell %q is not numeric: %v", tab.ID, s, err)
	}
	return v
}

func TestIDsCoverAllExperiments(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(All()))
	}
	for _, want := range []string{"fig8", "fig9a", "fig9b", "fig9c", "fig10", "table2", "table3", "table4", "table5", "pruning", "single-flow", "power", "hazard"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing", want)
		}
	}
}

func TestFig9aShape(t *testing.T) {
	tab := run(t, "fig9a")
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		name := row[0]
		ehdl := cellF(t, tab, i, "eHDL")
		hx := cellF(t, tab, i, "hXDP")
		bf1 := cellF(t, tab, i, "Bf2 1c")
		bf4 := cellF(t, tab, i, "Bf2 4c")
		if ehdl < 140 {
			t.Errorf("%s: eHDL %.1f Mpps, want line rate (~148)", name, ehdl)
		}
		if strings.Contains(row[1], "lost") {
			t.Errorf("%s: eHDL lost packets at line rate", name)
		}
		if gap := ehdl / hx; gap < 10 || gap > 300 {
			t.Errorf("%s: eHDL/hXDP gap %.0fx outside 10-100x order", name, gap)
		}
		if bf4 <= 3*bf1 {
			t.Errorf("%s: Bf2 cores do not scale (%.2f vs %.2f)", name, bf4, bf1)
		}
		if name == "dnat" {
			if cell(t, tab, i, "SDNet") != "n/a" {
				t.Error("SDNet must not implement DNAT")
			}
		} else if cellF(t, tab, i, "SDNet") < 148 {
			t.Errorf("%s: SDNet below line rate", name)
		}
	}
}

func TestFig9bShape(t *testing.T) {
	tab := run(t, "fig9b")
	for i, row := range tab.Rows {
		e := cellF(t, tab, i, "eHDL avg")
		h := cellF(t, tab, i, "hXDP")
		if e < 400 || e > 1500 {
			t.Errorf("%s: eHDL latency %.0f ns, want ~1us", row[0], e)
		}
		if h < 400 || h > 2000 {
			t.Errorf("%s: hXDP latency %.0f ns, want ~1us", row[0], h)
		}
	}
}

func TestFig9cShape(t *testing.T) {
	tab := run(t, "fig9c")
	for i, row := range tab.Rows {
		stages := cellF(t, tab, i, "eHDL stages")
		bundles := cellF(t, tab, i, "hXDP instr")
		orig := cellF(t, tab, i, "Original instr")
		if stages >= orig {
			t.Errorf("%s: %v stages vs %v instructions: no compression", row[0], stages, orig)
		}
		if bundles >= orig {
			t.Errorf("%s: hXDP bundles did not compress", row[0])
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab := run(t, "fig10")
	for i, row := range tab.Rows {
		eh := cellF(t, tab, i, "eHDL LUT")
		hx := cellF(t, tab, i, "hXDP LUT")
		if eh < 5 || eh > 14 {
			t.Errorf("%s: eHDL LUT %.2f%% outside the paper band", row[0], eh)
		}
		if ratio := eh / hx; ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: eHDL/hXDP not comparable (%.2f)", row[0], ratio)
		}
		if row[0] == "dnat" {
			continue
		}
		sd := cellF(t, tab, i, "SDNet LUT")
		if ratio := sd / eh; ratio < 1.8 || ratio > 4.5 {
			t.Errorf("%s: SDNet/eHDL LUT ratio %.2f, want 2-4x", row[0], ratio)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tab := run(t, "table2")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	caida := cellF(t, tab, 0, "# flushes/sec")
	mawi := cellF(t, tab, 1, "# flushes/sec")
	if cell(t, tab, 0, "# lost packets") != "0" || cell(t, tab, 1, "# lost packets") != "0" {
		t.Error("trace replay lost packets; the paper reports zero loss")
	}
	if caida <= mawi {
		t.Errorf("flush ordering: CAIDA %.0f/s <= MAWI %.0f/s; paper has CAIDA higher", caida, mawi)
	}
	// Order of magnitude: hundreds of thousands per second.
	if caida < 5e4 || caida > 5e6 {
		t.Errorf("CAIDA flush rate %.0f/s outside the plausible decade", caida)
	}
}

func TestSingleFlowDegrades(t *testing.T) {
	tab := run(t, "single-flow")
	trace := cellF(t, tab, 0, "Sustained Mpps")
	single := cellF(t, tab, 1, "Sustained Mpps")
	if trace < 25 {
		t.Errorf("CAIDA-profile rate %.1f Mpps, want ~29", trace)
	}
	if single >= trace {
		t.Errorf("single-flow rate %.1f did not degrade from %.1f", single, trace)
	}
}

func TestPruningShape(t *testing.T) {
	tab := run(t, "pruning")
	dLUT := cellF(t, tab, 2, "LUTs")
	dFF := cellF(t, tab, 2, "FFs")
	dBRAM := cellF(t, tab, 2, "BRAM36")
	if dLUT < 20 || dFF <= dLUT || dBRAM <= dFF {
		t.Errorf("pruning deltas %.0f/%.0f/%.0f%%: want growing LUT<FF<BRAM like the paper's 46/66/123", dLUT, dFF, dBRAM)
	}
}

func TestTable4Shape(t *testing.T) {
	tab := run(t, "table4")
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prevK := 1e9
	for i := range tab.Rows {
		k := cellF(t, tab, i, "Kmax")
		if k >= prevK {
			t.Error("Kmax must shrink as L grows")
		}
		prevK = k
	}
}

func TestTable5Shape(t *testing.T) {
	tab := run(t, "table5")
	maxSeen := 0.0
	for i, row := range tab.Rows {
		avg := cellF(t, tab, i, "avg ILP")
		m := cellF(t, tab, i, "max ILP")
		if avg < 1 || avg > 3 {
			t.Errorf("%s: avg ILP %.2f outside the paper's 1.4-2.4 order", row[0], avg)
		}
		if m > maxSeen {
			maxSeen = m
		}
		if row[0] == "tunnel" && m < 6 {
			t.Errorf("tunnel max ILP %.0f: the encapsulation stores should parallelise widely", m)
		}
	}
	if maxSeen < 5 {
		t.Errorf("max ILP %f: no program reaches wide parallelism", maxSeen)
	}
}

func TestHazardAblation(t *testing.T) {
	tab := run(t, "hazard")
	flushCycles := cellF(t, tab, 0, "Cycles")
	stallCycles := cellF(t, tab, 1, "Cycles")
	if stallCycles <= flushCycles {
		t.Errorf("stall (%v cycles) should be slower than flush (%v) on hazard-free traffic", stallCycles, flushCycles)
	}
}

func TestFramingAblation(t *testing.T) {
	tab := run(t, "framing")
	nops32 := cellF(t, tab, 0, "NOPs")
	nops64 := cellF(t, tab, 1, "NOPs")
	if nops32 <= nops64 {
		t.Error("32-byte frames should need more framing NOPs")
	}
	ff64 := cellF(t, tab, 1, "Pipeline FFs")
	ff128 := cellF(t, tab, 2, "Pipeline FFs")
	if ff128 <= ff64 {
		t.Error("wider frames should carry more state")
	}
}

func TestTableRendering(t *testing.T) {
	tab := run(t, "table1")
	out := tab.String()
	if !strings.Contains(out, "table1") || !strings.Contains(out, "dnat") {
		t.Errorf("rendered table malformed:\n%s", out)
	}
}

func TestFig8MatchesPaperScale(t *testing.T) {
	tab := run(t, "fig8")
	if len(tab.Rows) < 15 || len(tab.Rows) > 25 {
		t.Errorf("toy pipeline has %d stages; the paper's Figure 8 has 20", len(tab.Rows))
	}
}

func TestResilienceShape(t *testing.T) {
	tab := run(t, "resilience")
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want a baseline plus one per fault class", len(tab.Rows))
	}
	if tab.Rows[0][0] != "none" {
		t.Fatalf("first row %q, want the fault-free baseline", tab.Rows[0][0])
	}
	if got := cellF(t, tab, 0, "Faults"); got != 0 {
		t.Errorf("baseline row injected %v faults", got)
	}
	if cellF(t, tab, 0, "Aborted") != 0 || cellF(t, tab, 0, "Watchdog") != 0 {
		t.Error("fault-free baseline shows aborts or watchdog trips")
	}
	for i, row := range tab.Rows {
		sent := cellF(t, tab, i, "Sent")
		recv := cellF(t, tab, i, "Received")
		if sent == 0 {
			t.Errorf("%s: campaign sent nothing", row[0])
		}
		if recv == 0 {
			t.Errorf("%s: pipeline answered nothing — degradation was not graceful", row[0])
		}
		if cellF(t, tab, i, "Watchdog") != 0 {
			t.Errorf("%s: watchdog tripped during a survivable campaign", row[0])
		}
		if i > 0 && cellF(t, tab, i, "Faults") == 0 {
			t.Errorf("%s: campaign injected no faults", row[0])
		}
	}
}

func TestProtectionAblationShape(t *testing.T) {
	tab := run(t, "protection")
	if len(tab.Rows)%3 != 0 || len(tab.Rows) == 0 {
		t.Fatalf("rows = %d, want three levels per app", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 3 {
		name := tab.Rows[i][0]
		if tab.Rows[i][1] != "none" || tab.Rows[i+1][1] != "parity" || tab.Rows[i+2][1] != "ecc" {
			t.Fatalf("%s: level order %q/%q/%q, want none/parity/ecc",
				name, tab.Rows[i][1], tab.Rows[i+1][1], tab.Rows[i+2][1])
		}
		if got := cellF(t, tab, i, "Premium pts"); got != 0 {
			t.Errorf("%s: unprotected premium %.2f, want 0", name, got)
		}
		parity := cellF(t, tab, i+1, "Premium pts")
		ecc := cellF(t, tab, i+2, "Premium pts")
		// ECC never undercuts parity; the two can tie when a small map's
		// check bits fit one BRAM block either way.
		if parity <= 0 || ecc < parity {
			t.Errorf("%s: premium ordering broken: parity %.2f, ecc %.2f", name, parity, ecc)
		}
		// The stated bound of the ablation: full ECC protection costs at
		// most 2 utilisation points on top of the unprotected design.
		if ecc > 2.0 {
			t.Errorf("%s: ECC premium %.2f points exceeds the stated 2-point bound", name, ecc)
		}
	}
}

func TestLiveUpdateUnderLoadShape(t *testing.T) {
	tab := run(t, "liveupdate")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want a clean swap and a forced rollback", len(tab.Rows))
	}
	if got := cell(t, tab, 0, "Outcome"); got != "hitless" {
		t.Fatalf("clean swap outcome %q", got)
	}
	if lost := cellF(t, tab, 0, "Lost"); lost != 0 {
		t.Errorf("clean swap lost %v packets — not hitless", lost)
	}
	if cellF(t, tab, 0, "Canaried") < 8 || cellF(t, tab, 0, "Diverged") != 0 {
		t.Errorf("clean swap canary row broken: %v", tab.Rows[0])
	}
	if got := cell(t, tab, 1, "Outcome"); !strings.Contains(got, "rolled back") {
		t.Fatalf("corrupted shadow outcome %q, want a rollback", got)
	}
	if lost := cellF(t, tab, 1, "Lost"); lost != 0 {
		t.Errorf("rollback lost %v packets — the old pipeline must keep serving", lost)
	}
}

func TestLoadBalancerDemo(t *testing.T) {
	tab := run(t, "lb")
	if len(tab.Rows) != 4 {
		t.Fatalf("backends = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		share := cellF(t, tab, i, "Share %")
		if share < 10 || share > 45 {
			t.Errorf("backend %d share %.1f%%: distribution skewed", i, share)
		}
	}
}

func TestScalingShape(t *testing.T) {
	tab := run(t, "scaling")
	if len(tab.Rows) != len(ScalingQueues) {
		t.Fatalf("rows = %d, want %d queue points", len(tab.Rows), len(ScalingQueues))
	}
	base := cellF(t, tab, 0, "Achieved Mpps")
	baseLUT := cellF(t, tab, 0, "fw LUT%")
	for i, q := range ScalingQueues {
		if got := cellF(t, tab, i, "Queues"); got != float64(q) {
			t.Fatalf("row %d covers %v queues, want %d", i, got, q)
		}
		if lost := cellF(t, tab, i, "Lost"); lost != 0 {
			t.Errorf("q%d: lost %v packets at 85%% aggregate load", q, lost)
		}
		if lut := cellF(t, tab, i, "fw LUT%"); lut < baseLUT {
			t.Errorf("q%d: replicated design costs %.1f%% LUTs, below the single-queue %.1f%%", q, lut, baseLUT)
		}
	}
	if sp := cellF(t, tab, 2, "Achieved Mpps") / base; sp < 2.5 {
		t.Errorf("4-queue speedup %.2fx in simulated time, want >= 2.5x", sp)
	}
	if active := cellF(t, tab, 3, "Active"); active < 2 {
		t.Errorf("8 queues but only %v active", active)
	}
}
