package experiments

import (
	"fmt"

	"ehdl/internal/apps"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/protect"
	"ehdl/internal/tenant"
)

// Tenancy runs the noisy-neighbor ablation for the multi-tenant device:
// an aggressor tenant offering 3x its share under a full-menu fault
// campaign, beside a clean victim, with per-tenant isolation on and
// off. With isolation (per-tenant token buckets, per-tenant fault
// forks), the aggressor's overload is shed from its own budget and the
// victim's service is untouched; with the NoIsolation ablation (one
// shared admission pool, one shared fault injector), the aggressor
// starves and perturbs the victim. The victim's bit-identical-beside-a-
// noisy-neighbor guarantee is asserted by the tenant package's chaos
// gate; this table quantifies what the isolation machinery buys.
func Tenancy(cfg Config) (Table, error) {
	t := Table{ID: "tenancy", Title: "Noisy-neighbor ablation: per-tenant isolation on vs off",
		Columns: []string{"Isolation", "Tenant", "Steered", "Admitted", "Throttled", "Received", "Lost", "Faults", "Mpps"}}

	const seed = 0x7e11
	aggressor := tenant.Spec{
		Name: "aggressor", App: apps.Toy(), Share: 0.5, VLAN: 100,
		Shell: nic.ShellConfig{
			Faults: faults.Profile(0.6, seed),
			Sim: hwsim.Config{
				Protection:    protect.LevelECC,
				MaxRecoveries: -1,
			},
		},
	}
	victim := tenant.Spec{Name: "victim", App: apps.Firewall(), Share: 0.5, VLAN: 200}

	// The aggressor offers 3x its fair share of the arrival stream.
	muxSpecs := []tenant.Spec{aggressor, victim}
	muxSpecs[0].Share = 0.75
	muxSpecs[1].Share = 0.25

	n := min(cfg.packets(), 2048)
	for _, noIso := range []bool{false, true} {
		d := tenant.NewDevice(tenant.DeviceConfig{
			Seed:         seed,
			EpochPackets: 128,
			EpochBudget:  64,
			NoIsolation:  noIso,
		})
		for _, sp := range []tenant.Spec{aggressor, victim} {
			if _, err := d.AdmitTenant(sp); err != nil {
				return t, err
			}
		}
		mux := tenant.NewTrafficMux(muxSpecs, seed)
		rep, err := d.RunLoad(mux.Next, n, 50e6)
		if err != nil {
			return t, err
		}
		if !rep.Accounted() {
			return t, fmt.Errorf("experiments: tenancy ledger does not balance (noIso=%v)", noIso)
		}
		mode := "on"
		if noIso {
			mode = "off (shared pool)"
		}
		for _, sl := range rep.PerTenant {
			t.Rows = append(t.Rows, []string{
				mode, sl.Name, u64s(sl.Steered), u64s(sl.Admitted), u64s(sl.Throttled),
				u64s(sl.Received), u64s(sl.Lost), u64s(sl.FaultsInjected), f2(sl.AchievedMpps),
			})
		}
	}

	util := admissionFootnote()
	t.Notes = append(t.Notes,
		"aggressor offers 3x its share under a 0.6-intensity fault campaign; the epoch admission budget is half the arrival batch",
		"isolation on: per-tenant token buckets shed the aggressor's own overload; off: one FCFS pool the aggressor drains first, starving the victim",
		"the ablation also replaces per-tenant fault forks with the device-shared injector, so the off rows run the policing ablation without the fault campaign",
		util,
		"bit-identical victim verdicts and map state beside the noisy neighbor are asserted by internal/tenant's TestTenantNoisyNeighborChaosGate")
	return t, nil
}

// admissionFootnote prices the scenario's two tenants through the real
// admission gate so the table records what the budget bookkeeping says.
func admissionFootnote() string {
	d := tenant.NewDevice(tenant.DeviceConfig{})
	for i, app := range []*apps.App{apps.Toy(), apps.Firewall()} {
		if _, err := d.AdmitTenant(tenant.Spec{
			Name: fmt.Sprintf("t%d", i), App: app, Share: 0.5, VLAN: uint16(100 * (i + 1)),
		}); err != nil {
			return fmt.Sprintf("admission pricing failed: %v", err)
		}
	}
	u := d.Used()
	return fmt.Sprintf("admission gate prices the pair at %d LUTs / %d BRAM36 with the Corundum shell, %.2f%% of the Alveo U50",
		u.LUTs, u.BRAM36, d.Utilisation())
}
