package ebpf

import (
	"strings"
	"testing"
)

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{ClassLD.String(), "ld"}, {ClassLDX.String(), "ldx"}, {ClassST.String(), "st"},
		{ClassSTX.String(), "stx"}, {ClassALU.String(), "alu32"}, {ClassJMP.String(), "jmp"},
		{ClassJMP32.String(), "jmp32"}, {ClassALU64.String(), "alu64"},
		{ModeIMM.String(), "imm"}, {ModeABS.String(), "abs"}, {ModeIND.String(), "ind"},
		{ModeMEM.String(), "mem"}, {ModeATOMIC.String(), "atomic"},
		{SizeB.String(), "u8"}, {SizeH.String(), "u16"}, {SizeW.String(), "u32"}, {SizeDW.String(), "u64"},
		{XDPAborted.String(), "XDP_ABORTED"}, {XDPDrop.String(), "XDP_DROP"},
		{XDPPass.String(), "XDP_PASS"}, {XDPTx.String(), "XDP_TX"}, {XDPRedirect.String(), "XDP_REDIRECT"},
		{XDPAction(9).String(), "XDP_?"},
		{AtomicAdd.String(), "add"}, {(AtomicAdd | AtomicFetch).String(), "fetch_add"},
		{AtomicXchg.String(), "xchg"}, {AtomicCmpXchg.String(), "cmpxchg"},
		{MapArray.String(), "BPF_MAP_TYPE_ARRAY"}, {MapLPMTrie.String(), "BPF_MAP_TYPE_LPM_TRIE"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	for _, op := range []ALUOp{ALUAdd, ALUSub, ALUMul, ALUDiv, ALUOr, ALUAnd, ALULsh, ALURsh, ALUNeg, ALUMod, ALUXor, ALUMov, ALUArsh, ALUEnd} {
		if op.String() == "alu?" {
			t.Errorf("ALU op %#x has no name", uint8(op))
		}
	}
	for _, op := range []JumpOp{JumpAlways, JumpEq, JumpGT, JumpGE, JumpSet, JumpNE, JumpSGT, JumpSGE, JumpCall, JumpExit, JumpLT, JumpLE, JumpSLT, JumpSLE} {
		if op.String() == "jmp?" {
			t.Errorf("jump op %#x has no name", uint8(op))
		}
	}
}

func TestDisasmAtomicVariants(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Atomic(SizeW, R1, 4, R2, AtomicOr), "lock *(u32 *)(r1 + 4) |= r2"},
		{Atomic(SizeDW, R1, -8, R2, AtomicAnd), "lock *(u64 *)(r1 - 8) &= r2"},
		{Atomic(SizeDW, R1, 0, R2, AtomicXor|AtomicFetch), "lock *(u64 *)(r1 + 0) ^= r2 fetch"},
		{Atomic(SizeDW, R1, 0, R2, AtomicXchg), "lock xchg *(u64 *)(r1 + 0) r2"},
		{Atomic(SizeDW, R1, 0, R2, AtomicCmpXchg), "lock cmpxchg *(u64 *)(r1 + 0) r2"},
		{Swap(R3, SourceK, 32), "r3 = le32 r3"},
		{Neg64(R4), "r4 = -r4"},
		{ALU64Reg(ALUArsh, R1, R2), "r1 s>>= r2"},
		{Jump32ImmOp(JumpSLE, R1, -4, 2), "if w1 s<= -4 goto +2"},
		{LoadImm64(R2, -1), "r2 = -1 ll"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestXDPMDFieldNames(t *testing.T) {
	for off, want := range map[int]string{
		0: "data", 4: "data_end", 8: "data_meta",
		12: "ingress_ifindex", 16: "rx_queue_index", 20: "egress_ifindex",
	} {
		if got := XDPMDFieldName(off); got != want {
			t.Errorf("field at %d = %q, want %q", off, got, want)
		}
	}
	if XDPMDFieldName(2) != "" {
		t.Error("misaligned offset named a field")
	}
}

func TestSizeOf(t *testing.T) {
	for n, want := range map[int]Size{1: SizeB, 2: SizeH, 4: SizeW, 8: SizeDW} {
		got, ok := SizeOf(n)
		if !ok || got != want {
			t.Errorf("SizeOf(%d) = %v, %v", n, got, ok)
		}
	}
	if _, ok := SizeOf(3); ok {
		t.Error("SizeOf(3) succeeded")
	}
}

func TestTokenTables(t *testing.T) {
	if ALUAdd.Token() != "+=" || ALUMov.Token() != "=" || ALUArsh.Token() != "s>>=" {
		t.Error("ALU tokens broken")
	}
	if JumpEq.Token() != "==" || JumpSLE.Token() != "s<=" || JumpSet.Token() != "&" {
		t.Error("jump tokens broken")
	}
	if !strings.Contains(Disassemble([]Instruction{Exit()}), "exit") {
		t.Error("Disassemble lost the exit")
	}
}
