package ebpf

import (
	"strings"
	"testing"
)

func statsMap() MapSpec {
	return MapSpec{Name: "stats", Kind: MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 4}
}

func validProgram() *Program {
	return &Program{
		Name: "toy",
		Maps: []MapSpec{statsMap()},
		Instructions: []Instruction{
			LoadMem(SizeW, R2, R1, 4),
			LoadMem(SizeW, R1, R1, 0),
			Mov64Imm(R3, 0),
			StoreMem(SizeW, R10, -4, R3),
			JumpImmOp(JumpEq, R2, 0, 1),
			Mov64Imm(R0, 1),
			Exit(),
		},
	}
}

func TestProgramValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

func TestProgramValidateRejects(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		p := &Program{Name: "empty"}
		if err := p.Validate(); err == nil {
			t.Error("accepted an empty program")
		}
	})
	t.Run("fall off end", func(t *testing.T) {
		p := validProgram()
		p.Instructions = p.Instructions[:len(p.Instructions)-1]
		if err := p.Validate(); err == nil {
			t.Error("accepted a program without a trailing exit")
		}
	})
	t.Run("jump out of range", func(t *testing.T) {
		p := validProgram()
		p.Instructions[4] = JumpImmOp(JumpEq, R2, 0, 100)
		if err := p.Validate(); err == nil {
			t.Error("accepted an out-of-range jump")
		}
	})
	t.Run("jump into lddw", func(t *testing.T) {
		p := &Program{
			Name: "bad",
			Instructions: []Instruction{
				Ja(1), // lands on the second slot of the lddw
				LoadImm64(R1, 7),
				Exit(),
			},
		}
		if err := p.Validate(); err == nil {
			t.Error("accepted a jump into the middle of a lddw")
		}
	})
	t.Run("writes r10", func(t *testing.T) {
		p := validProgram()
		p.Instructions[2] = Mov64Imm(R10, 0)
		if err := p.Validate(); err == nil {
			t.Error("accepted a write to r10")
		}
	})
	t.Run("undeclared map", func(t *testing.T) {
		p := validProgram()
		p.Instructions[2] = LoadMapRef(R3, "nope")
		if err := p.Validate(); err == nil {
			t.Error("accepted an undeclared map reference")
		}
	})
	t.Run("duplicate map", func(t *testing.T) {
		p := validProgram()
		p.Maps = append(p.Maps, statsMap())
		if err := p.Validate(); err == nil {
			t.Error("accepted duplicate map names")
		}
	})
	t.Run("bad map spec", func(t *testing.T) {
		p := validProgram()
		p.Maps[0].KeySize = 0
		if err := p.Validate(); err == nil {
			t.Error("accepted a zero key size")
		}
	})
	t.Run("array map key size", func(t *testing.T) {
		p := validProgram()
		p.Maps[0].KeySize = 8
		if err := p.Validate(); err == nil {
			t.Error("accepted an array map with 8-byte keys")
		}
	})
}

func TestSlotOffsetsWithLDDW(t *testing.T) {
	p := &Program{
		Name: "lddw",
		Instructions: []Instruction{
			Mov64Imm(R0, 0),              // slot 0
			LoadImm64(R1, 1),             // slots 1-2
			Mov64Imm(R2, 2),              // slot 3
			JumpImmOp(JumpEq, R2, 2, -4), // slot 4, target slot 1
			Exit(),                       // slot 5
		},
	}
	offs := p.SlotOffsets()
	want := []int{0, 1, 3, 4, 5, 6}
	for i := range want {
		if offs[i] != want[i] {
			t.Errorf("slot offset[%d] = %d, want %d", i, offs[i], want[i])
		}
	}
	target, ok := p.BranchTarget(3)
	if !ok || target != 1 {
		t.Errorf("BranchTarget(3) = %d, %v; want 1, true", target, ok)
	}
	if _, ok := p.BranchTarget(0); ok {
		t.Error("BranchTarget accepted a non-branch")
	}
}

func TestDisassembleToy(t *testing.T) {
	p := validProgram()
	text := Disassemble(p.Instructions)
	for _, want := range []string{
		"0: r2 = *(u32 *)(r1 + 4)",
		"1: r1 = *(u32 *)(r1 + 0)",
		"3: *(u32 *)(r10 - 4) = r3",
		"6: exit",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestMapIndex(t *testing.T) {
	p := validProgram()
	idx, ok := p.MapIndex("stats")
	if !ok || idx != 0 {
		t.Errorf("MapIndex(stats) = %d, %v", idx, ok)
	}
	if _, ok := p.MapIndex("absent"); ok {
		t.Error("MapIndex found an absent map")
	}
}
