package ebpf

// XDPAction is the verdict returned by an XDP program.
type XDPAction uint32

// XDP verdicts, matching the Linux UAPI.
const (
	XDPAborted  XDPAction = 0
	XDPDrop     XDPAction = 1
	XDPPass     XDPAction = 2
	XDPTx       XDPAction = 3
	XDPRedirect XDPAction = 4
)

func (a XDPAction) String() string {
	switch a {
	case XDPAborted:
		return "XDP_ABORTED"
	case XDPDrop:
		return "XDP_DROP"
	case XDPPass:
		return "XDP_PASS"
	case XDPTx:
		return "XDP_TX"
	case XDPRedirect:
		return "XDP_REDIRECT"
	}
	return "XDP_?"
}

// Offsets of the fields of struct xdp_md, the context passed to an XDP
// program in R1. All fields are 32-bit.
const (
	XDPMDData           = 0
	XDPMDDataEnd        = 4
	XDPMDDataMeta       = 8
	XDPMDIngressIfindex = 12
	XDPMDRxQueueIndex   = 16
	XDPMDEgressIfindex  = 20
	XDPMDSize           = 24
)

// XDPMDFieldName returns the struct xdp_md field name at the given byte
// offset, or "" if the offset does not start a field.
func XDPMDFieldName(off int) string {
	switch off {
	case XDPMDData:
		return "data"
	case XDPMDDataEnd:
		return "data_end"
	case XDPMDDataMeta:
		return "data_meta"
	case XDPMDIngressIfindex:
		return "ingress_ifindex"
	case XDPMDRxQueueIndex:
		return "rx_queue_index"
	case XDPMDEgressIfindex:
		return "egress_ifindex"
	}
	return ""
}

// Well-known EtherType values used across the example programs.
const (
	EthPIP   = 0x0800
	EthPARP  = 0x0806
	EthPIPV6 = 0x86DD
	EthPVLAN = 0x8100
)

// IP protocol numbers used across the example programs.
const (
	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17
	IPProtoIPIP = 4
)
