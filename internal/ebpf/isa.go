// Package ebpf implements the eBPF instruction-set architecture: the
// 64-bit instruction encoding, registers, opcode classes, helper function
// identifiers and the XDP program context layout.
//
// The package is the foundation the rest of the repository builds on: the
// assembler (internal/asm) produces ebpf.Program values, the reference
// virtual machine (internal/vm) interprets them, and the eHDL compiler
// (internal/core) turns them into hardware pipelines.
package ebpf

// Register identifies one of the eleven eBPF general purpose registers.
//
// The eBPF calling convention fixes the roles: R0 holds return values,
// R1-R5 are arguments (scratched by calls), R6-R9 are callee-saved, and
// R10 is the read-only frame pointer to the 512-byte stack.
type Register uint8

// The eBPF register file.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10

	// NumRegisters is the size of the eBPF register file.
	NumRegisters = 11
	// PseudoReg is a sentinel for "no register" in textual forms.
	PseudoReg Register = 0xff
)

// StackSize is the size in bytes of the per-invocation eBPF stack frame
// addressed through R10 with negative offsets.
const StackSize = 512

// WordSize is the size in bytes of one eBPF instruction slot. LDDW
// occupies two consecutive slots.
const WordSize = 8

// Class is the low three bits of an opcode and selects the instruction
// family.
type Class uint8

// Instruction classes.
const (
	ClassLD    Class = 0x00 // non-standard loads (LDDW, legacy ABS/IND)
	ClassLDX   Class = 0x01 // load from memory into register
	ClassST    Class = 0x02 // store immediate into memory
	ClassSTX   Class = 0x03 // store register into memory
	ClassALU   Class = 0x04 // 32-bit arithmetic
	ClassJMP   Class = 0x05 // 64-bit jumps, call, exit
	ClassJMP32 Class = 0x06 // 32-bit compare-and-jump
	ClassALU64 Class = 0x07 // 64-bit arithmetic
)

// IsLoad reports whether the class reads from memory.
func (c Class) IsLoad() bool { return c == ClassLD || c == ClassLDX }

// IsStore reports whether the class writes to memory.
func (c Class) IsStore() bool { return c == ClassST || c == ClassSTX }

// IsALU reports whether the class performs register arithmetic.
func (c Class) IsALU() bool { return c == ClassALU || c == ClassALU64 }

// IsJump reports whether the class transfers control.
func (c Class) IsJump() bool { return c == ClassJMP || c == ClassJMP32 }

func (c Class) String() string {
	switch c {
	case ClassLD:
		return "ld"
	case ClassLDX:
		return "ldx"
	case ClassST:
		return "st"
	case ClassSTX:
		return "stx"
	case ClassALU:
		return "alu32"
	case ClassJMP:
		return "jmp"
	case ClassJMP32:
		return "jmp32"
	case ClassALU64:
		return "alu64"
	}
	return "class?"
}

// Source is the operand-source bit of ALU and JMP opcodes: K selects the
// 32-bit immediate, X selects the source register.
type Source uint8

// Operand sources.
const (
	SourceK Source = 0x00
	SourceX Source = 0x08
)

// ALUOp is the operation selector (high four bits) of an ALU/ALU64
// opcode.
type ALUOp uint8

// ALU operations.
const (
	ALUAdd  ALUOp = 0x00
	ALUSub  ALUOp = 0x10
	ALUMul  ALUOp = 0x20
	ALUDiv  ALUOp = 0x30
	ALUOr   ALUOp = 0x40
	ALUAnd  ALUOp = 0x50
	ALULsh  ALUOp = 0x60
	ALURsh  ALUOp = 0x70
	ALUNeg  ALUOp = 0x80
	ALUMod  ALUOp = 0x90
	ALUXor  ALUOp = 0xa0
	ALUMov  ALUOp = 0xb0
	ALUArsh ALUOp = 0xc0
	ALUEnd  ALUOp = 0xd0 // byte-order conversion
)

func (op ALUOp) String() string {
	switch op {
	case ALUAdd:
		return "add"
	case ALUSub:
		return "sub"
	case ALUMul:
		return "mul"
	case ALUDiv:
		return "div"
	case ALUOr:
		return "or"
	case ALUAnd:
		return "and"
	case ALULsh:
		return "lsh"
	case ALURsh:
		return "rsh"
	case ALUNeg:
		return "neg"
	case ALUMod:
		return "mod"
	case ALUXor:
		return "xor"
	case ALUMov:
		return "mov"
	case ALUArsh:
		return "arsh"
	case ALUEnd:
		return "end"
	}
	return "alu?"
}

// Token returns the assembler operator for a compound assignment, e.g.
// "+=" for ALUAdd. ALUMov yields "=".
func (op ALUOp) Token() string {
	switch op {
	case ALUAdd:
		return "+="
	case ALUSub:
		return "-="
	case ALUMul:
		return "*="
	case ALUDiv:
		return "/="
	case ALUOr:
		return "|="
	case ALUAnd:
		return "&="
	case ALULsh:
		return "<<="
	case ALURsh:
		return ">>="
	case ALUMod:
		return "%="
	case ALUXor:
		return "^="
	case ALUMov:
		return "="
	case ALUArsh:
		return "s>>="
	}
	return "?="
}

// JumpOp is the operation selector (high four bits) of a JMP/JMP32
// opcode.
type JumpOp uint8

// Jump operations.
const (
	JumpAlways JumpOp = 0x00
	JumpEq     JumpOp = 0x10
	JumpGT     JumpOp = 0x20
	JumpGE     JumpOp = 0x30
	JumpSet    JumpOp = 0x40
	JumpNE     JumpOp = 0x50
	JumpSGT    JumpOp = 0x60
	JumpSGE    JumpOp = 0x70
	JumpCall   JumpOp = 0x80
	JumpExit   JumpOp = 0x90
	JumpLT     JumpOp = 0xa0
	JumpLE     JumpOp = 0xb0
	JumpSLT    JumpOp = 0xc0
	JumpSLE    JumpOp = 0xd0
)

func (op JumpOp) String() string {
	switch op {
	case JumpAlways:
		return "ja"
	case JumpEq:
		return "jeq"
	case JumpGT:
		return "jgt"
	case JumpGE:
		return "jge"
	case JumpSet:
		return "jset"
	case JumpNE:
		return "jne"
	case JumpSGT:
		return "jsgt"
	case JumpSGE:
		return "jsge"
	case JumpCall:
		return "call"
	case JumpExit:
		return "exit"
	case JumpLT:
		return "jlt"
	case JumpLE:
		return "jle"
	case JumpSLT:
		return "jslt"
	case JumpSLE:
		return "jsle"
	}
	return "jmp?"
}

// Token returns the assembler comparison operator, e.g. "==" for JumpEq.
// Signed comparisons carry an "s" prefix as in the kernel verifier
// output.
func (op JumpOp) Token() string {
	switch op {
	case JumpEq:
		return "=="
	case JumpGT:
		return ">"
	case JumpGE:
		return ">="
	case JumpSet:
		return "&"
	case JumpNE:
		return "!="
	case JumpSGT:
		return "s>"
	case JumpSGE:
		return "s>="
	case JumpLT:
		return "<"
	case JumpLE:
		return "<="
	case JumpSLT:
		return "s<"
	case JumpSLE:
		return "s<="
	}
	return "?"
}

// Size is the access width selector (bits 3-4) of load/store opcodes.
type Size uint8

// Memory access sizes.
const (
	SizeW  Size = 0x00 // 4 bytes
	SizeH  Size = 0x08 // 2 bytes
	SizeB  Size = 0x10 // 1 byte
	SizeDW Size = 0x18 // 8 bytes
)

// Bytes returns the width of the access in bytes.
func (s Size) Bytes() int {
	switch s {
	case SizeB:
		return 1
	case SizeH:
		return 2
	case SizeW:
		return 4
	case SizeDW:
		return 8
	}
	return 0
}

// SizeOf returns the Size constant for an access of n bytes.
func SizeOf(n int) (Size, bool) {
	switch n {
	case 1:
		return SizeB, true
	case 2:
		return SizeH, true
	case 4:
		return SizeW, true
	case 8:
		return SizeDW, true
	}
	return 0, false
}

func (s Size) String() string {
	switch s {
	case SizeB:
		return "u8"
	case SizeH:
		return "u16"
	case SizeW:
		return "u32"
	case SizeDW:
		return "u64"
	}
	return "u?"
}

// Mode is the addressing mode selector (high three bits) of load/store
// opcodes.
type Mode uint8

// Addressing modes.
const (
	ModeIMM    Mode = 0x00 // 64-bit immediate (LDDW)
	ModeABS    Mode = 0x20 // legacy packet access, absolute
	ModeIND    Mode = 0x40 // legacy packet access, indirect
	ModeMEM    Mode = 0x60 // regular load/store
	ModeATOMIC Mode = 0xc0 // atomic read-modify-write
)

func (m Mode) String() string {
	switch m {
	case ModeIMM:
		return "imm"
	case ModeABS:
		return "abs"
	case ModeIND:
		return "ind"
	case ModeMEM:
		return "mem"
	case ModeATOMIC:
		return "atomic"
	}
	return "mode?"
}

// AtomicOp encodes the operation of a ModeATOMIC instruction in the
// immediate field.
type AtomicOp int32

// Atomic operations. Combining with AtomicFetch makes the operation
// return the previous value in the source register.
const (
	AtomicAdd     AtomicOp = 0x00
	AtomicOr      AtomicOp = 0x40
	AtomicAnd     AtomicOp = 0x50
	AtomicXor     AtomicOp = 0xa0
	AtomicFetch   AtomicOp = 0x01
	AtomicXchg    AtomicOp = 0xe1
	AtomicCmpXchg AtomicOp = 0xf1
)

func (a AtomicOp) String() string {
	switch a {
	case AtomicAdd:
		return "add"
	case AtomicOr:
		return "or"
	case AtomicAnd:
		return "and"
	case AtomicXor:
		return "xor"
	case AtomicAdd | AtomicFetch:
		return "fetch_add"
	case AtomicOr | AtomicFetch:
		return "fetch_or"
	case AtomicAnd | AtomicFetch:
		return "fetch_and"
	case AtomicXor | AtomicFetch:
		return "fetch_xor"
	case AtomicXchg:
		return "xchg"
	case AtomicCmpXchg:
		return "cmpxchg"
	}
	return "atomic?"
}

// Valid reports whether the atomic operation is one this implementation
// supports.
func (a AtomicOp) Valid() bool {
	switch a &^ AtomicFetch {
	case AtomicAdd, AtomicOr, AtomicAnd, AtomicXor:
		return true
	}
	return a == AtomicXchg || a == AtomicCmpXchg
}

// Pseudo source-register values used by LDDW to mark relocations.
const (
	// PseudoMapFD marks a LDDW whose immediate is a map file
	// descriptor to be relocated at load time.
	PseudoMapFD Register = 1
	// PseudoMapValue marks a LDDW that yields a pointer to a map value.
	PseudoMapValue Register = 2
)
