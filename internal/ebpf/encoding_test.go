package ebpf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	insns := []Instruction{
		Mov64Imm(R1, -7),
		LoadMem(SizeW, R2, R1, 4),
		LoadImm64(R3, 0x1234_5678_9abc_def0),
		LoadImm64(R4, -1),
		JumpImmOp(JumpEq, R1, 34525, 4),
		Atomic(SizeDW, R1, 0, R2, AtomicAdd),
		Call(HelperMapLookupElem),
		Exit(),
	}
	data := MarshalInstructions(insns)
	wantLen := 0
	for _, ins := range insns {
		wantLen += ins.Slots() * WordSize
	}
	if len(data) != wantLen {
		t.Fatalf("encoded length %d, want %d", len(data), wantLen)
	}
	got, err := UnmarshalInstructions(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insns) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(insns))
	}
	for i := range insns {
		want := insns[i]
		want.MapRef = "" // not part of the wire format
		if got[i] != want {
			t.Errorf("instruction %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalInstructions(make([]byte, 7)); err == nil {
		t.Error("UnmarshalInstructions accepted a 7-byte stream")
	}
	// LDDW truncated to a single slot.
	data := LoadImm64(R1, 1).Marshal(nil)[:8]
	if _, err := UnmarshalInstructions(data); err == nil {
		t.Error("UnmarshalInstructions accepted a truncated lddw")
	}
	// LDDW with a corrupted second slot opcode.
	data = LoadImm64(R1, 1).Marshal(nil)
	data[8] = 0x07
	if _, _, err := Unmarshal(data); err == nil {
		t.Error("Unmarshal accepted a lddw with a non-zero second opcode")
	}
}

// randomValidInstruction draws instructions from the constructor space so
// that every generated value is encodable.
func randomValidInstruction(r *rand.Rand) Instruction {
	reg := func() Register { return Register(r.Intn(11)) }
	off := func() int16 { return int16(r.Intn(1<<16) - 1<<15) }
	imm := func() int32 { return int32(r.Uint32()) }
	aluOps := []ALUOp{ALUAdd, ALUSub, ALUMul, ALUDiv, ALUOr, ALUAnd, ALULsh, ALURsh, ALUMod, ALUXor, ALUMov, ALUArsh}
	jmpOps := []JumpOp{JumpEq, JumpGT, JumpGE, JumpSet, JumpNE, JumpSGT, JumpSGE, JumpLT, JumpLE, JumpSLT, JumpSLE}
	sizes := []Size{SizeB, SizeH, SizeW, SizeDW}
	switch r.Intn(12) {
	case 0:
		return ALU64Imm(aluOps[r.Intn(len(aluOps))], reg(), imm())
	case 1:
		return ALU64Reg(aluOps[r.Intn(len(aluOps))], reg(), reg())
	case 2:
		return ALU32Imm(aluOps[r.Intn(len(aluOps))], reg(), imm())
	case 3:
		return LoadMem(sizes[r.Intn(len(sizes))], reg(), reg(), off())
	case 4:
		return StoreMem(sizes[r.Intn(len(sizes))], reg(), off(), reg())
	case 5:
		return StoreImm(sizes[r.Intn(len(sizes))], reg(), off(), imm())
	case 6:
		return JumpImmOp(jmpOps[r.Intn(len(jmpOps))], reg(), imm(), off())
	case 7:
		return JumpRegOp(jmpOps[r.Intn(len(jmpOps))], reg(), reg(), off())
	case 8:
		return LoadImm64(reg(), int64(r.Uint64()))
	case 9:
		return Atomic([]Size{SizeW, SizeDW}[r.Intn(2)], reg(), off(), reg(), AtomicAdd)
	case 10:
		return Call(HelperID(r.Intn(128)))
	default:
		return Exit()
	}
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomValidInstruction(r)
		data := ins.Marshal(nil)
		got, n, err := Unmarshal(data)
		if err != nil || n != len(data) {
			return false
		}
		return got == ins
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyStreamRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		insns := make([]Instruction, n)
		for i := range insns {
			insns[i] = randomValidInstruction(r)
		}
		data := MarshalInstructions(insns)
		got, err := UnmarshalInstructions(data)
		if err != nil || len(got) != len(insns) {
			return false
		}
		for i := range insns {
			if got[i] != insns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyValidInstructionsValidate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomValidInstruction(r)
		// Division immediates of zero are structurally valid at the
		// instruction level; the VM rejects them at run time.
		return ins.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
