package ebpf

import "testing"

// FuzzUnmarshal decodes arbitrary byte streams: truncated or malformed
// input must error, and everything accepted must re-encode to the same
// bytes.
func FuzzUnmarshal(f *testing.F) {
	f.Add(MarshalInstructions([]Instruction{Mov64Imm(R0, 2), Exit()}))
	f.Add(MarshalInstructions([]Instruction{LoadImm64(R1, 1<<40), Exit()}))
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		insns, err := UnmarshalInstructions(data)
		if err != nil {
			return
		}
		out := MarshalInstructions(insns)
		if string(out) != string(data) {
			t.Fatalf("re-encode mismatch: %x vs %x", out, data)
		}
	})
}
