package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Marshal appends the little-endian on-wire encoding of the instruction
// to buf and returns the extended slice. LDDW emits two slots.
func (ins Instruction) Marshal(buf []byte) []byte {
	var slot [WordSize]byte
	slot[0] = ins.Op
	slot[1] = uint8(ins.Src&0x0f)<<4 | uint8(ins.Dst&0x0f)
	binary.LittleEndian.PutUint16(slot[2:4], uint16(ins.Off))
	if ins.IsLoadImm64() {
		binary.LittleEndian.PutUint32(slot[4:8], uint32(ins.Imm64))
		buf = append(buf, slot[:]...)
		var hi [WordSize]byte
		binary.LittleEndian.PutUint32(hi[4:8], uint32(ins.Imm64>>32))
		return append(buf, hi[:]...)
	}
	binary.LittleEndian.PutUint32(slot[4:8], uint32(ins.Imm))
	return append(buf, slot[:]...)
}

// Unmarshal decodes one instruction from the start of data, returning
// the instruction and the number of bytes consumed (8 or 16).
func Unmarshal(data []byte) (Instruction, int, error) {
	if len(data) < WordSize {
		return Instruction{}, 0, fmt.Errorf("ebpf: truncated instruction: %d bytes", len(data))
	}
	ins := Instruction{
		Op:  data[0],
		Dst: Register(data[1] & 0x0f),
		Src: Register(data[1] >> 4),
		Off: int16(binary.LittleEndian.Uint16(data[2:4])),
		Imm: int32(binary.LittleEndian.Uint32(data[4:8])),
	}
	if ins.IsLoadImm64() {
		if len(data) < 2*WordSize {
			return Instruction{}, 0, fmt.Errorf("ebpf: truncated lddw: %d bytes", len(data))
		}
		// The second slot carries only the upper immediate: opcode,
		// registers and offset must be zero, as the kernel requires.
		if data[8] != 0 || data[9] != 0 || data[10] != 0 || data[11] != 0 {
			return Instruction{}, 0, fmt.Errorf("ebpf: malformed lddw second slot %x", data[8:12])
		}
		hi := int64(int32(binary.LittleEndian.Uint32(data[12:16])))
		ins.Imm64 = int64(uint32(ins.Imm)) | hi<<32
		return ins, 2 * WordSize, nil
	}
	return ins, WordSize, nil
}

// MarshalInstructions encodes a whole instruction stream.
func MarshalInstructions(insns []Instruction) []byte {
	buf := make([]byte, 0, len(insns)*WordSize)
	for _, ins := range insns {
		buf = ins.Marshal(buf)
	}
	return buf
}

// UnmarshalInstructions decodes a whole instruction stream. The input
// length must be a multiple of the slot size.
func UnmarshalInstructions(data []byte) ([]Instruction, error) {
	if len(data)%WordSize != 0 {
		return nil, fmt.Errorf("ebpf: bytecode length %d is not a multiple of %d", len(data), WordSize)
	}
	insns := make([]Instruction, 0, len(data)/WordSize)
	for off := 0; off < len(data); {
		ins, n, err := Unmarshal(data[off:])
		if err != nil {
			return nil, fmt.Errorf("ebpf: at byte offset %d: %w", off, err)
		}
		insns = append(insns, ins)
		off += n
	}
	return insns, nil
}
