package ebpf

import (
	"fmt"
)

// Instruction is one decoded eBPF instruction.
//
// The on-wire format packs Op, the two register nibbles, a signed 16-bit
// offset and a signed 32-bit immediate into eight bytes. LDDW (load
// 64-bit immediate) occupies two consecutive eight-byte slots; it is
// represented here as a single Instruction whose Imm64 field carries the
// full constant and whose Size (in slots) is two.
type Instruction struct {
	Op    uint8
	Dst   Register
	Src   Register
	Off   int16
	Imm   int32
	Imm64 int64 // only meaningful for LDDW

	// MapRef optionally names the map a PseudoMapFD LDDW refers to.
	// It is resolved to a concrete map identifier at load time.
	MapRef string
}

// Class returns the instruction class encoded in the opcode.
func (ins Instruction) Class() Class { return Class(ins.Op & 0x07) }

// ALUOp returns the ALU operation; meaningful only for ALU classes.
func (ins Instruction) ALUOp() ALUOp { return ALUOp(ins.Op & 0xf0) }

// JumpOp returns the jump operation; meaningful only for JMP classes.
func (ins Instruction) JumpOp() JumpOp { return JumpOp(ins.Op & 0xf0) }

// Source returns whether the second operand is the immediate (K) or the
// source register (X); meaningful for ALU and JMP classes.
func (ins Instruction) Source() Source { return Source(ins.Op & 0x08) }

// MemSize returns the access width; meaningful for load/store classes.
func (ins Instruction) MemSize() Size { return Size(ins.Op & 0x18) }

// Mode returns the addressing mode; meaningful for load/store classes.
func (ins Instruction) Mode() Mode { return Mode(ins.Op & 0xe0) }

// IsLoadImm64 reports whether the instruction is LDDW.
func (ins Instruction) IsLoadImm64() bool {
	return ins.Class() == ClassLD && ins.Mode() == ModeIMM && ins.MemSize() == SizeDW
}

// IsLoadOfMapFD reports whether the instruction loads a map reference.
func (ins Instruction) IsLoadOfMapFD() bool {
	return ins.IsLoadImm64() && ins.Src == PseudoMapFD
}

// IsAtomic reports whether the instruction is an atomic read-modify-write.
func (ins Instruction) IsAtomic() bool {
	return ins.Class() == ClassSTX && ins.Mode() == ModeATOMIC
}

// AtomicOp returns the atomic operation selector from the immediate.
func (ins Instruction) AtomicOp() AtomicOp { return AtomicOp(ins.Imm) }

// IsCall reports whether the instruction is a helper call.
func (ins Instruction) IsCall() bool {
	return ins.Class() == ClassJMP && ins.JumpOp() == JumpCall
}

// IsExit reports whether the instruction terminates the program.
func (ins Instruction) IsExit() bool {
	return ins.Class() == ClassJMP && ins.JumpOp() == JumpExit
}

// IsBranch reports whether the instruction is a (conditional or
// unconditional) branch, excluding call and exit.
func (ins Instruction) IsBranch() bool {
	if !ins.Class().IsJump() {
		return false
	}
	op := ins.JumpOp()
	return op != JumpCall && op != JumpExit
}

// IsConditional reports whether the instruction is a conditional branch.
func (ins Instruction) IsConditional() bool {
	return ins.IsBranch() && ins.JumpOp() != JumpAlways
}

// Slots returns the number of eight-byte instruction slots the
// instruction occupies: two for LDDW, one otherwise.
func (ins Instruction) Slots() int {
	if ins.IsLoadImm64() {
		return 2
	}
	return 1
}

// Constant returns the immediate operand widened to 64 bits, using Imm64
// for LDDW.
func (ins Instruction) Constant() int64 {
	if ins.IsLoadImm64() {
		return ins.Imm64
	}
	return int64(ins.Imm)
}

// Validate checks the structural well-formedness of a single instruction
// (register ranges, known opcodes, supported modes). It does not perform
// program-level checks such as jump-target validity; see Program.Validate.
func (ins Instruction) Validate() error {
	if ins.Dst > R10 {
		return fmt.Errorf("ebpf: invalid destination register r%d", ins.Dst)
	}
	switch cls := ins.Class(); cls {
	case ClassALU, ClassALU64:
		op := ins.ALUOp()
		switch op {
		case ALUAdd, ALUSub, ALUMul, ALUDiv, ALUOr, ALUAnd, ALULsh, ALURsh,
			ALUNeg, ALUMod, ALUXor, ALUMov, ALUArsh, ALUEnd:
		default:
			return fmt.Errorf("ebpf: invalid ALU op %#x", ins.Op)
		}
		if ins.Source() == SourceX && ins.Src > R10 {
			return fmt.Errorf("ebpf: invalid source register r%d", ins.Src)
		}
		if op == ALUEnd {
			switch ins.Imm {
			case 16, 32, 64:
			default:
				return fmt.Errorf("ebpf: invalid byte-swap width %d", ins.Imm)
			}
		}
	case ClassJMP, ClassJMP32:
		op := ins.JumpOp()
		switch op {
		case JumpAlways, JumpEq, JumpGT, JumpGE, JumpSet, JumpNE, JumpSGT,
			JumpSGE, JumpLT, JumpLE, JumpSLT, JumpSLE:
			if ins.Source() == SourceX && ins.Src > R10 {
				return fmt.Errorf("ebpf: invalid source register r%d", ins.Src)
			}
		case JumpCall:
			if cls == ClassJMP32 {
				return fmt.Errorf("ebpf: call is invalid in the jmp32 class")
			}
		case JumpExit:
			if cls == ClassJMP32 {
				return fmt.Errorf("ebpf: exit is invalid in the jmp32 class")
			}
		default:
			return fmt.Errorf("ebpf: invalid jump op %#x", ins.Op)
		}
	case ClassLD:
		if !ins.IsLoadImm64() {
			return fmt.Errorf("ebpf: unsupported ld mode %v (legacy ABS/IND loads are not supported)", ins.Mode())
		}
	case ClassLDX:
		if ins.Mode() != ModeMEM {
			return fmt.Errorf("ebpf: unsupported ldx mode %v", ins.Mode())
		}
		if ins.Src > R10 {
			return fmt.Errorf("ebpf: invalid source register r%d", ins.Src)
		}
	case ClassST:
		if ins.Mode() != ModeMEM {
			return fmt.Errorf("ebpf: unsupported st mode %v", ins.Mode())
		}
	case ClassSTX:
		switch ins.Mode() {
		case ModeMEM:
		case ModeATOMIC:
			if s := ins.MemSize(); s != SizeW && s != SizeDW {
				return fmt.Errorf("ebpf: atomic operations require 4- or 8-byte width, got %v", s)
			}
			if !ins.AtomicOp().Valid() {
				return fmt.Errorf("ebpf: invalid atomic op %#x", ins.Imm)
			}
		default:
			return fmt.Errorf("ebpf: unsupported stx mode %v", ins.Mode())
		}
		if ins.Src > R10 {
			return fmt.Errorf("ebpf: invalid source register r%d", ins.Src)
		}
	default:
		return fmt.Errorf("ebpf: invalid class %#x", ins.Op)
	}
	return nil
}

// --- constructors -----------------------------------------------------

// aluOpcode assembles an ALU opcode byte.
func aluOpcode(cls Class, op ALUOp, src Source) uint8 {
	return uint8(cls) | uint8(src) | uint8(op)
}

// Mov64Imm returns dst = imm (sign extended to 64 bits).
func Mov64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: aluOpcode(ClassALU64, ALUMov, SourceK), Dst: dst, Imm: imm}
}

// Mov64Reg returns dst = src.
func Mov64Reg(dst, src Register) Instruction {
	return Instruction{Op: aluOpcode(ClassALU64, ALUMov, SourceX), Dst: dst, Src: src}
}

// Mov32Imm returns w(dst) = imm, zeroing the upper half.
func Mov32Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: aluOpcode(ClassALU, ALUMov, SourceK), Dst: dst, Imm: imm}
}

// Mov32Reg returns w(dst) = w(src), zeroing the upper half.
func Mov32Reg(dst, src Register) Instruction {
	return Instruction{Op: aluOpcode(ClassALU, ALUMov, SourceX), Dst: dst, Src: src}
}

// ALU64Imm returns dst = dst <op> imm on 64 bits.
func ALU64Imm(op ALUOp, dst Register, imm int32) Instruction {
	return Instruction{Op: aluOpcode(ClassALU64, op, SourceK), Dst: dst, Imm: imm}
}

// ALU64Reg returns dst = dst <op> src on 64 bits.
func ALU64Reg(op ALUOp, dst, src Register) Instruction {
	return Instruction{Op: aluOpcode(ClassALU64, op, SourceX), Dst: dst, Src: src}
}

// ALU32Imm returns w(dst) = w(dst) <op> imm on 32 bits.
func ALU32Imm(op ALUOp, dst Register, imm int32) Instruction {
	return Instruction{Op: aluOpcode(ClassALU, op, SourceK), Dst: dst, Imm: imm}
}

// ALU32Reg returns w(dst) = w(dst) <op> w(src) on 32 bits.
func ALU32Reg(op ALUOp, dst, src Register) Instruction {
	return Instruction{Op: aluOpcode(ClassALU, op, SourceX), Dst: dst, Src: src}
}

// Neg64 returns dst = -dst.
func Neg64(dst Register) Instruction {
	return Instruction{Op: aluOpcode(ClassALU64, ALUNeg, SourceK), Dst: dst}
}

// Swap returns a byte-order conversion of dst. Source X selects
// conversion to big-endian ("be"), K to little-endian ("le"); width is
// 16, 32 or 64.
func Swap(dst Register, src Source, width int32) Instruction {
	return Instruction{Op: aluOpcode(ClassALU, ALUEnd, src), Dst: dst, Imm: width}
}

// LoadMem returns dst = *(size *)(src + off).
func LoadMem(size Size, dst, src Register, off int16) Instruction {
	return Instruction{Op: uint8(ClassLDX) | uint8(ModeMEM) | uint8(size), Dst: dst, Src: src, Off: off}
}

// StoreMem returns *(size *)(dst + off) = src.
func StoreMem(size Size, dst Register, off int16, src Register) Instruction {
	return Instruction{Op: uint8(ClassSTX) | uint8(ModeMEM) | uint8(size), Dst: dst, Src: src, Off: off}
}

// StoreImm returns *(size *)(dst + off) = imm.
func StoreImm(size Size, dst Register, off int16, imm int32) Instruction {
	return Instruction{Op: uint8(ClassST) | uint8(ModeMEM) | uint8(size), Dst: dst, Off: off, Imm: imm}
}

// Atomic returns an atomic read-modify-write: op is combined with
// AtomicFetch by the caller when the previous value is wanted.
func Atomic(size Size, dst Register, off int16, src Register, op AtomicOp) Instruction {
	return Instruction{Op: uint8(ClassSTX) | uint8(ModeATOMIC) | uint8(size), Dst: dst, Src: src, Off: off, Imm: int32(op)}
}

// LoadImm64 returns dst = imm (full 64 bits, two slots).
func LoadImm64(dst Register, imm int64) Instruction {
	return Instruction{Op: uint8(ClassLD) | uint8(ModeIMM) | uint8(SizeDW), Dst: dst, Imm: int32(imm), Imm64: imm}
}

// LoadMapRef returns dst = &map (a LDDW with a symbolic map reference to
// be resolved at load time).
func LoadMapRef(dst Register, name string) Instruction {
	ins := LoadImm64(dst, 0)
	ins.Src = PseudoMapFD
	ins.MapRef = name
	return ins
}

// JumpImmOp returns "if dst <op> imm goto off".
func JumpImmOp(op JumpOp, dst Register, imm int32, off int16) Instruction {
	return Instruction{Op: uint8(ClassJMP) | uint8(SourceK) | uint8(op), Dst: dst, Imm: imm, Off: off}
}

// JumpRegOp returns "if dst <op> src goto off".
func JumpRegOp(op JumpOp, dst, src Register, off int16) Instruction {
	return Instruction{Op: uint8(ClassJMP) | uint8(SourceX) | uint8(op), Dst: dst, Src: src, Off: off}
}

// Jump32ImmOp returns "if w(dst) <op> imm goto off".
func Jump32ImmOp(op JumpOp, dst Register, imm int32, off int16) Instruction {
	return Instruction{Op: uint8(ClassJMP32) | uint8(SourceK) | uint8(op), Dst: dst, Imm: imm, Off: off}
}

// Ja returns an unconditional "goto off".
func Ja(off int16) Instruction {
	return Instruction{Op: uint8(ClassJMP) | uint8(JumpAlways), Off: off}
}

// Call returns a helper function call.
func Call(helper HelperID) Instruction {
	return Instruction{Op: uint8(ClassJMP) | uint8(JumpCall), Imm: int32(helper)}
}

// Exit returns the program-terminating instruction.
func Exit() Instruction {
	return Instruction{Op: uint8(ClassJMP) | uint8(JumpExit)}
}
