package ebpf

import (
	"fmt"
)

// MapKind enumerates the eBPF map types the toolchain supports.
type MapKind int

// Supported map kinds. The numbering is internal; the textual names
// match the kernel map type names.
const (
	MapArray MapKind = iota + 1
	MapHash
	MapLRUHash
	MapLPMTrie
	MapDevMap
)

func (k MapKind) String() string {
	switch k {
	case MapArray:
		return "BPF_MAP_TYPE_ARRAY"
	case MapHash:
		return "BPF_MAP_TYPE_HASH"
	case MapLRUHash:
		return "BPF_MAP_TYPE_LRU_HASH"
	case MapLPMTrie:
		return "BPF_MAP_TYPE_LPM_TRIE"
	case MapDevMap:
		return "BPF_MAP_TYPE_DEVMAP"
	}
	return "BPF_MAP_TYPE_?"
}

// MapSpec declares a map statically created when the program is loaded
// (Section 4.1). The eHDL compiler reads the parameters to size the
// eHDLmap hardware block.
type MapSpec struct {
	Name       string
	Kind       MapKind
	KeySize    int
	ValueSize  int
	MaxEntries int
}

// Validate checks that the declaration is well formed.
func (s MapSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("ebpf: map with empty name")
	}
	switch s.Kind {
	case MapArray, MapHash, MapLRUHash, MapLPMTrie, MapDevMap:
	default:
		return fmt.Errorf("ebpf: map %q: unknown kind %d", s.Name, s.Kind)
	}
	if s.KeySize <= 0 || s.KeySize > 64 {
		return fmt.Errorf("ebpf: map %q: invalid key size %d", s.Name, s.KeySize)
	}
	if s.ValueSize <= 0 || s.ValueSize > 4096 {
		return fmt.Errorf("ebpf: map %q: invalid value size %d", s.Name, s.ValueSize)
	}
	if s.MaxEntries <= 0 {
		return fmt.Errorf("ebpf: map %q: invalid max entries %d", s.Name, s.MaxEntries)
	}
	if (s.Kind == MapArray || s.Kind == MapDevMap) && s.KeySize != 4 {
		// DEVMAPs share the array implementation: u32 index keys.
		return fmt.Errorf("ebpf: array map %q requires 4-byte keys, got %d", s.Name, s.KeySize)
	}
	return nil
}

// Program is a complete eBPF/XDP program: the instruction stream plus
// the maps it declares.
type Program struct {
	Name         string
	Instructions []Instruction
	Maps         []MapSpec
}

// MapSpecByName returns the declaration of the named map.
func (p *Program) MapSpecByName(name string) (MapSpec, bool) {
	for _, m := range p.Maps {
		if m.Name == name {
			return m, true
		}
	}
	return MapSpec{}, false
}

// MapIndex returns the position of the named map in p.Maps, which the
// toolchain uses as the map identifier.
func (p *Program) MapIndex(name string) (int, bool) {
	for i, m := range p.Maps {
		if m.Name == name {
			return i, true
		}
	}
	return 0, false
}

// SlotOffsets returns, for each instruction index, the slot offset at
// which the instruction starts. Branch offsets are expressed in slots,
// so this is the bridge between index space and wire space.
func (p *Program) SlotOffsets() []int {
	offs := make([]int, len(p.Instructions)+1)
	slot := 0
	for i, ins := range p.Instructions {
		offs[i] = slot
		slot += ins.Slots()
	}
	offs[len(p.Instructions)] = slot
	return offs
}

// IndexBySlot builds the inverse mapping from slot offset to instruction
// index. Slots inside the second half of a LDDW map to no instruction.
func (p *Program) IndexBySlot() map[int]int {
	m := make(map[int]int, len(p.Instructions))
	slot := 0
	for i, ins := range p.Instructions {
		m[slot] = i
		slot += ins.Slots()
	}
	return m
}

// BranchTarget resolves the instruction index targeted by the branch at
// index i. The second result is false when i is not a branch or the
// target is invalid.
func (p *Program) BranchTarget(i int) (int, bool) {
	if i < 0 || i >= len(p.Instructions) {
		return 0, false
	}
	ins := p.Instructions[i]
	if !ins.IsBranch() {
		return 0, false
	}
	offs := p.SlotOffsets()
	target := offs[i] + ins.Slots() + int(ins.Off)
	idx, ok := p.IndexBySlot()[target]
	return idx, ok
}

// Validate checks program-level invariants: per-instruction validity,
// in-range branch targets that do not land inside a LDDW, resolvable map
// references, a trailing exit on every fall-off path, and that the
// read-only frame pointer R10 is never written.
func (p *Program) Validate() error {
	if len(p.Instructions) == 0 {
		return fmt.Errorf("ebpf: program %q has no instructions", p.Name)
	}
	for _, m := range p.Maps {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	seen := make(map[string]bool, len(p.Maps))
	for _, m := range p.Maps {
		if seen[m.Name] {
			return fmt.Errorf("ebpf: duplicate map %q", m.Name)
		}
		seen[m.Name] = true
	}

	offs := p.SlotOffsets()
	bySlot := p.IndexBySlot()
	totalSlots := offs[len(p.Instructions)]

	for i, ins := range p.Instructions {
		if err := ins.Validate(); err != nil {
			return fmt.Errorf("ebpf: instruction %d (%s): %w", i, ins, err)
		}
		if writesRegister(ins, R10) {
			return fmt.Errorf("ebpf: instruction %d (%s) writes the read-only frame pointer r10", i, ins)
		}
		if ins.IsBranch() {
			target := offs[i] + ins.Slots() + int(ins.Off)
			if target < 0 || target >= totalSlots {
				return fmt.Errorf("ebpf: instruction %d (%s) jumps out of the program (slot %d of %d)", i, ins, target, totalSlots)
			}
			if _, ok := bySlot[target]; !ok {
				return fmt.Errorf("ebpf: instruction %d (%s) jumps into the middle of a lddw", i, ins)
			}
		}
		if ins.IsLoadOfMapFD() && ins.MapRef != "" {
			if _, ok := p.MapSpecByName(ins.MapRef); !ok {
				return fmt.Errorf("ebpf: instruction %d references undeclared map %q", i, ins.MapRef)
			}
		}
	}

	last := p.Instructions[len(p.Instructions)-1]
	if !last.IsExit() && !(last.IsBranch() && last.JumpOp() == JumpAlways) {
		return fmt.Errorf("ebpf: program %q falls off the end (last instruction %s)", p.Name, last)
	}
	return nil
}

// writesRegister reports whether the instruction defines reg.
func writesRegister(ins Instruction, reg Register) bool {
	switch cls := ins.Class(); {
	case cls.IsALU():
		return ins.Dst == reg
	case cls == ClassLDX:
		return ins.Dst == reg
	case cls == ClassLD:
		return ins.IsLoadImm64() && ins.Dst == reg
	case cls == ClassSTX:
		// Atomic fetch variants write back into the source register.
		if ins.Mode() == ModeATOMIC {
			op := ins.AtomicOp()
			if op&AtomicFetch != 0 || op == AtomicXchg {
				return ins.Src == reg
			}
			if op == AtomicCmpXchg {
				return reg == R0
			}
		}
		return false
	case cls == ClassJMP:
		if ins.IsCall() {
			// Calls clobber R0-R5.
			return reg <= R5
		}
		return false
	}
	return false
}

// Defs returns the registers the instruction writes.
func (ins Instruction) Defs() []Register {
	var out []Register
	for r := R0; r <= R10; r++ {
		if writesRegister(ins, r) {
			out = append(out, r)
		}
	}
	return out
}

// Uses returns the registers the instruction reads.
func (ins Instruction) Uses() []Register {
	var out []Register
	add := func(r Register) {
		for _, have := range out {
			if have == r {
				return
			}
		}
		out = append(out, r)
	}
	switch cls := ins.Class(); {
	case cls.IsALU():
		op := ins.ALUOp()
		if op != ALUMov {
			add(ins.Dst) // read-modify-write
		}
		if ins.Source() == SourceX && op != ALUNeg && op != ALUEnd {
			add(ins.Src)
		}
		if op == ALUNeg || op == ALUEnd {
			add(ins.Dst)
		}
	case cls == ClassLDX:
		add(ins.Src)
	case cls == ClassST:
		add(ins.Dst)
	case cls == ClassSTX:
		add(ins.Dst)
		add(ins.Src)
	case cls.IsJump():
		op := ins.JumpOp()
		switch op {
		case JumpAlways, JumpExit:
			if op == JumpExit {
				add(R0) // the verdict travels in R0
			}
		case JumpCall:
			// Arguments R1-R5 are conservatively live; the precise set
			// depends on the helper signature and is refined by the
			// data-dependency analysis.
			for r := R1; r <= R5; r++ {
				add(r)
			}
		default:
			add(ins.Dst)
			if ins.Source() == SourceX {
				add(ins.Src)
			}
		}
	}
	return out
}
