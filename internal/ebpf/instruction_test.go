package ebpf

import (
	"testing"
)

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		ins    Instruction
		class  Class
		load   bool
		store  bool
		alu    bool
		jump   bool
		branch bool
	}{
		{Mov64Imm(R1, 3), ClassALU64, false, false, true, false, false},
		{Mov32Reg(R1, R2), ClassALU, false, false, true, false, false},
		{LoadMem(SizeW, R2, R1, 4), ClassLDX, true, false, false, false, false},
		{StoreMem(SizeW, R10, -4, R3), ClassSTX, false, true, false, false, false},
		{StoreImm(SizeB, R10, -1, 7), ClassST, false, true, false, false, false},
		{JumpImmOp(JumpEq, R1, 34525, 4), ClassJMP, false, false, false, true, true},
		{Jump32ImmOp(JumpNE, R1, 1, 2), ClassJMP32, false, false, false, true, true},
		{Ja(3), ClassJMP, false, false, false, true, true},
		{Call(HelperMapLookupElem), ClassJMP, false, false, false, true, false},
		{Exit(), ClassJMP, false, false, false, true, false},
		{LoadImm64(R1, 1<<40), ClassLD, true, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.ins.Class(); got != c.class {
			t.Errorf("%v: class = %v, want %v", c.ins, got, c.class)
		}
		if got := c.ins.Class().IsLoad(); got != c.load {
			t.Errorf("%v: IsLoad = %v, want %v", c.ins, got, c.load)
		}
		if got := c.ins.Class().IsStore(); got != c.store {
			t.Errorf("%v: IsStore = %v, want %v", c.ins, got, c.store)
		}
		if got := c.ins.Class().IsALU(); got != c.alu {
			t.Errorf("%v: IsALU = %v, want %v", c.ins, got, c.alu)
		}
		if got := c.ins.Class().IsJump(); got != c.jump {
			t.Errorf("%v: IsJump = %v, want %v", c.ins, got, c.jump)
		}
		if got := c.ins.IsBranch(); got != c.branch {
			t.Errorf("%v: IsBranch = %v, want %v", c.ins, got, c.branch)
		}
	}
}

func TestSlots(t *testing.T) {
	if got := LoadImm64(R1, 42).Slots(); got != 2 {
		t.Errorf("lddw slots = %d, want 2", got)
	}
	if got := Mov64Imm(R1, 42).Slots(); got != 1 {
		t.Errorf("mov slots = %d, want 1", got)
	}
}

func TestConstant(t *testing.T) {
	if got := LoadImm64(R1, 1<<40|7).Constant(); got != 1<<40|7 {
		t.Errorf("lddw constant = %d", got)
	}
	if got := Mov64Imm(R1, -3).Constant(); got != -3 {
		t.Errorf("mov constant = %d", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Op: uint8(ClassALU64) | 0xe0},             // undefined ALU op
		{Op: uint8(ClassJMP) | 0xe0},               // undefined jump op
		Mov64Reg(R1, 12),                           // source register out of range
		Mov64Imm(Register(12), 0),                  // destination register out of range
		{Op: uint8(ClassLD) | uint8(ModeABS)},      // legacy packet load
		Atomic(SizeH, R1, 0, R2, AtomicAdd),        // atomic on 2 bytes
		Atomic(SizeDW, R1, 0, R2, AtomicOp(0x333)), // undefined atomic op
		Swap(R1, SourceK, 24),                      // invalid byte-swap width
	}
	for _, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("Validate(%#v) accepted an invalid instruction", ins)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	good := []Instruction{
		Mov64Imm(R0, 3),
		ALU64Reg(ALUAdd, R1, R2),
		ALU32Imm(ALULsh, R1, 8),
		LoadMem(SizeB, R2, R1, 12),
		StoreMem(SizeDW, R10, -8, R1),
		StoreImm(SizeW, R10, -4, 0),
		Atomic(SizeDW, R1, 0, R2, AtomicAdd),
		Atomic(SizeW, R1, 0, R2, AtomicAdd|AtomicFetch),
		LoadImm64(R1, 123456789012),
		LoadMapRef(R1, "stats"),
		JumpImmOp(JumpEq, R1, 0, 2),
		JumpRegOp(JumpGT, R1, R2, -4),
		Ja(0),
		Call(HelperMapLookupElem),
		Exit(),
		Swap(R1, SourceX, 16),
		Neg64(R3),
	}
	for _, ins := range good {
		if err := ins.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", ins, err)
		}
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		ins  Instruction
		defs []Register
		uses []Register
	}{
		{Mov64Imm(R1, 3), []Register{R1}, nil},
		{Mov64Reg(R1, R2), []Register{R1}, []Register{R2}},
		{ALU64Reg(ALUAdd, R1, R2), []Register{R1}, []Register{R1, R2}},
		{ALU64Imm(ALUAdd, R2, -4), []Register{R2}, []Register{R2}},
		{LoadMem(SizeW, R2, R1, 4), []Register{R2}, []Register{R1}},
		{StoreMem(SizeW, R10, -4, R3), nil, []Register{R10, R3}},
		{StoreImm(SizeW, R10, -4, 0), nil, []Register{R10}},
		{JumpImmOp(JumpEq, R1, 0, 1), nil, []Register{R1}},
		{JumpRegOp(JumpGT, R1, R5, 1), nil, []Register{R1, R5}},
		{Ja(2), nil, nil},
		{Exit(), nil, []Register{R0}},
		{Call(HelperMapLookupElem), []Register{R0, R1, R2, R3, R4, R5}, []Register{R1, R2, R3, R4, R5}},
		{Atomic(SizeDW, R1, 0, R2, AtomicAdd), nil, []Register{R1, R2}},
		{Atomic(SizeDW, R1, 0, R2, AtomicAdd|AtomicFetch), []Register{R2}, []Register{R1, R2}},
		{Neg64(R3), []Register{R3}, []Register{R3}},
	}
	for _, c := range cases {
		if got := c.ins.Defs(); !sameRegs(got, c.defs) {
			t.Errorf("%v: Defs = %v, want %v", c.ins, got, c.defs)
		}
		if got := c.ins.Uses(); !sameRegs(got, c.uses) {
			t.Errorf("%v: Uses = %v, want %v", c.ins, got, c.uses)
		}
	}
}

func sameRegs(a, b []Register) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[Register]int{}
	for _, r := range a {
		seen[r]++
	}
	for _, r := range b {
		seen[r]--
	}
	for _, n := range seen {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestDisasmMatchesPaperStyle(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{LoadMem(SizeW, R2, R1, 4), "r2 = *(u32 *)(r1 + 4)"},
		{LoadMem(SizeU8(), R2, R1, 12), "r2 = *(u8 *)(r1 + 12)"},
		{Mov64Imm(R3, 0), "r3 = 0"},
		{StoreMem(SizeW, R10, -4, R3), "*(u32 *)(r10 - 4) = r3"},
		{ALU64Imm(ALULsh, R1, 8), "r1 <<= 8"},
		{ALU64Reg(ALUOr, R1, R2), "r1 |= r2"},
		{JumpImmOp(JumpEq, R1, 34525, 4), "if r1 == 34525 goto +4"},
		{ALU64Imm(ALUAdd, R2, -4), "r2 += -4"},
		{Mov64Reg(R2, R10), "r2 = r10"},
		{Call(1), "call bpf_map_lookup_elem"},
		{JumpImmOp(JumpEq, R1, 0, 2), "if r1 == 0 goto +2"},
		{Atomic(SizeDW, R1, 0, R2, AtomicAdd), "lock *(u64 *)(r1 + 0) += r2"},
		{Exit(), "exit"},
		{Ja(3), "goto +3"},
		{Ja(-2), "goto -2"},
		{Swap(R1, SourceX, 16), "r1 = be16 r1"},
		{LoadMapRef(R1, "stats"), "r1 = map[stats] ll"},
		{Mov32Imm(R1, 7), "w1 = 7"},
		{StoreImm(SizeB, R4, 3, 255), "*(u8 *)(r4 + 3) = 255"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// SizeU8 avoids a typo-prone literal in the table above.
func SizeU8() Size { return SizeB }

func TestHelperNames(t *testing.T) {
	if got := HelperMapLookupElem.Name(); got != "bpf_map_lookup_elem" {
		t.Errorf("helper 1 name = %q", got)
	}
	if got := HelperID(199).Name(); got != "helper_199" {
		t.Errorf("unknown helper name = %q", got)
	}
	id, ok := HelperByName("bpf_redirect_map")
	if !ok || id != HelperRedirectMap {
		t.Errorf("HelperByName(bpf_redirect_map) = %v, %v", id, ok)
	}
	if !HelperMapUpdateElem.WritesMap() || HelperMapLookupElem.WritesMap() {
		t.Error("WritesMap misclassifies the map helpers")
	}
	if !HelperGetSMPProcessorID.CPUOnly() {
		t.Error("bpf_get_smp_processor_id should be CPU-only")
	}
	if HelperMapLookupElem.PipelineDepth() < 1 {
		t.Error("helper blocks must occupy at least one stage")
	}
}
