package ebpf

import (
	"fmt"
	"strings"
)

// String renders the instruction in the kernel-verifier style used
// throughout the paper, e.g. "r2 = *(u32 *)(r1 + 4)" or
// "if r1 == 34525 goto +4".
func (ins Instruction) String() string {
	reg := func(r Register) string { return fmt.Sprintf("r%d", r) }
	reg32 := func(r Register) string { return fmt.Sprintf("w%d", r) }
	memRef := func(base Register, off int16) string {
		switch {
		case off > 0:
			return fmt.Sprintf("(r%d + %d)", base, off)
		case off < 0:
			return fmt.Sprintf("(r%d - %d)", base, -off)
		default:
			return fmt.Sprintf("(r%d + 0)", base)
		}
	}

	switch cls := ins.Class(); cls {
	case ClassALU, ClassALU64:
		dst := reg(ins.Dst)
		if cls == ClassALU {
			dst = reg32(ins.Dst)
		}
		op := ins.ALUOp()
		switch op {
		case ALUNeg:
			return fmt.Sprintf("%s = -%s", dst, dst)
		case ALUEnd:
			dir := "le"
			if ins.Source() == SourceX {
				dir = "be"
			}
			return fmt.Sprintf("%s = %s%d %s", reg(ins.Dst), dir, ins.Imm, reg(ins.Dst))
		}
		var rhs string
		if ins.Source() == SourceX {
			rhs = reg(ins.Src)
			if cls == ClassALU {
				rhs = reg32(ins.Src)
			}
		} else {
			rhs = fmt.Sprintf("%d", ins.Imm)
		}
		return fmt.Sprintf("%s %s %s", dst, op.Token(), rhs)

	case ClassLDX:
		return fmt.Sprintf("%s = *(%s *)%s", reg(ins.Dst), ins.MemSize(), memRef(ins.Src, ins.Off))

	case ClassST:
		return fmt.Sprintf("*(%s *)%s = %d", ins.MemSize(), memRef(ins.Dst, ins.Off), ins.Imm)

	case ClassSTX:
		if ins.Mode() == ModeATOMIC {
			op := ins.AtomicOp()
			switch op &^ AtomicFetch {
			case AtomicAdd:
				return lockToken(ins, "+=")
			case AtomicOr:
				return lockToken(ins, "|=")
			case AtomicAnd:
				return lockToken(ins, "&=")
			case AtomicXor:
				return lockToken(ins, "^=")
			}
			return fmt.Sprintf("lock %s *(%s *)(r%d %s) r%d", op, ins.MemSize(), ins.Dst, offToken(ins.Off), ins.Src)
		}
		return fmt.Sprintf("*(%s *)%s = %s", ins.MemSize(), memRef(ins.Dst, ins.Off), reg(ins.Src))

	case ClassLD:
		if ins.IsLoadImm64() {
			if ins.IsLoadOfMapFD() {
				if ins.MapRef != "" {
					return fmt.Sprintf("r%d = map[%s] ll", ins.Dst, ins.MapRef)
				}
				return fmt.Sprintf("r%d = map_fd(%d) ll", ins.Dst, ins.Imm64)
			}
			return fmt.Sprintf("r%d = %d ll", ins.Dst, ins.Imm64)
		}
		return fmt.Sprintf(".inst %#02x", ins.Op)

	case ClassJMP, ClassJMP32:
		op := ins.JumpOp()
		switch op {
		case JumpAlways:
			return fmt.Sprintf("goto %+d", ins.Off)
		case JumpCall:
			return fmt.Sprintf("call %s", HelperID(ins.Imm).Name())
		case JumpExit:
			return "exit"
		}
		lhs := reg(ins.Dst)
		if cls == ClassJMP32 {
			lhs = reg32(ins.Dst)
		}
		var rhs string
		if ins.Source() == SourceX {
			rhs = reg(ins.Src)
			if cls == ClassJMP32 {
				rhs = reg32(ins.Src)
			}
		} else {
			rhs = fmt.Sprintf("%d", ins.Imm)
		}
		return fmt.Sprintf("if %s %s %s goto %+d", lhs, op.Token(), rhs, ins.Off)
	}
	return fmt.Sprintf(".inst %#02x", ins.Op)
}

func lockToken(ins Instruction, tok string) string {
	s := fmt.Sprintf("lock *(%s *)(r%d %s) %s r%d", ins.MemSize(), ins.Dst, offToken(ins.Off), tok, ins.Src)
	if ins.AtomicOp()&AtomicFetch != 0 {
		s += " fetch"
	}
	return s
}

func offToken(off int16) string {
	if off < 0 {
		return fmt.Sprintf("- %d", -off)
	}
	return fmt.Sprintf("+ %d", off)
}

// Disassemble renders the whole program with slot-numbered lines in the
// style of Listing 2 of the paper.
func Disassemble(insns []Instruction) string {
	var b strings.Builder
	slot := 0
	for _, ins := range insns {
		fmt.Fprintf(&b, "%4d: %s\n", slot, ins)
		slot += ins.Slots()
	}
	return b.String()
}
