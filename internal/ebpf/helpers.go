package ebpf

// HelperID identifies an eBPF helper function. The numbering follows the
// Linux UAPI so bytecode produced from real kernel programs resolves to
// the same helpers.
type HelperID int32

// Helper functions the toolchain knows about. The eHDL compiler maps
// each to a template hardware block (Section 3.4.2 of the paper); map
// access helpers instead share an eHDLmap block per map (Section 4.1).
const (
	HelperUnspec             HelperID = 0
	HelperMapLookupElem      HelperID = 1
	HelperMapUpdateElem      HelperID = 2
	HelperMapDeleteElem      HelperID = 3
	HelperKtimeGetNs         HelperID = 5
	HelperGetPrandomU32      HelperID = 7
	HelperGetSMPProcessorID  HelperID = 8
	HelperL3CsumReplace      HelperID = 10
	HelperL4CsumReplace      HelperID = 11
	HelperRedirect           HelperID = 23
	HelperXDPAdjustHead      HelperID = 44
	HelperRedirectMap        HelperID = 51
	HelperFibLookup          HelperID = 69
	HelperXDPAdjustTail      HelperID = 65
	HelperCsumDiff           HelperID = 28
	HelperGetSocketCookie    HelperID = 46
	HelperSpinLock           HelperID = 93
	HelperSpinUnlock         HelperID = 94
	HelperJiffies64          HelperID = 118
	HelperKtimeGetBootNs     HelperID = 125
	HelperKtimeGetCoarseNs   HelperID = 160
	HelperLoopHelper         HelperID = 181
	HelperMapLookupPercpuEl  HelperID = 195
	helperMaxKnown           HelperID = 200
	helperNameUnknownPattern          = "helper_%d"
)

// helperNames maps helper identifiers to their kernel names.
var helperNames = map[HelperID]string{
	HelperMapLookupElem:     "bpf_map_lookup_elem",
	HelperMapUpdateElem:     "bpf_map_update_elem",
	HelperMapDeleteElem:     "bpf_map_delete_elem",
	HelperKtimeGetNs:        "bpf_ktime_get_ns",
	HelperGetPrandomU32:     "bpf_get_prandom_u32",
	HelperGetSMPProcessorID: "bpf_get_smp_processor_id",
	HelperL3CsumReplace:     "bpf_l3_csum_replace",
	HelperL4CsumReplace:     "bpf_l4_csum_replace",
	HelperRedirect:          "bpf_redirect",
	HelperXDPAdjustHead:     "bpf_xdp_adjust_head",
	HelperRedirectMap:       "bpf_redirect_map",
	HelperFibLookup:         "bpf_fib_lookup",
	HelperXDPAdjustTail:     "bpf_xdp_adjust_tail",
	HelperCsumDiff:          "bpf_csum_diff",
	HelperGetSocketCookie:   "bpf_get_socket_cookie",
	HelperSpinLock:          "bpf_spin_lock",
	HelperSpinUnlock:        "bpf_spin_unlock",
	HelperJiffies64:         "bpf_jiffies64",
	HelperKtimeGetBootNs:    "bpf_ktime_get_boot_ns",
	HelperKtimeGetCoarseNs:  "bpf_ktime_get_coarse_ns",
}

// helperIDs is the reverse of helperNames, built at init.
var helperIDs = func() map[string]HelperID {
	m := make(map[string]HelperID, len(helperNames))
	for id, name := range helperNames {
		m[name] = id
	}
	return m
}()

// Name returns the kernel name of the helper, or a synthetic
// "helper_<n>" for helpers this package does not know.
func (h HelperID) Name() string {
	if name, ok := helperNames[h]; ok {
		return name
	}
	return sprintfHelper(h)
}

// HelperByName resolves a kernel helper name to its identifier.
func HelperByName(name string) (HelperID, bool) {
	id, ok := helperIDs[name]
	return id, ok
}

// AccessesMap reports whether the helper reads or writes eBPF map
// memory. Such helpers share a per-map hardware block in the generated
// pipeline instead of being replicated per call site.
func (h HelperID) AccessesMap() bool {
	switch h {
	case HelperMapLookupElem, HelperMapUpdateElem, HelperMapDeleteElem, HelperRedirectMap:
		return true
	}
	return false
}

// WritesMap reports whether the helper mutates map memory.
func (h HelperID) WritesMap() bool {
	switch h {
	case HelperMapUpdateElem, HelperMapDeleteElem:
		return true
	}
	return false
}

// CPUOnly reports whether the helper is meaningful only on a CPU
// implementation of eBPF; the compiler stubs these with constant blocks
// (footnote 2 of the paper).
func (h HelperID) CPUOnly() bool {
	switch h {
	case HelperGetSMPProcessorID, HelperGetSocketCookie:
		return true
	}
	return false
}

// WritesPacket reports whether the helper mutates the packet buffer or
// its geometry.
func (h HelperID) WritesPacket() bool {
	switch h {
	case HelperXDPAdjustHead, HelperXDPAdjustTail, HelperL3CsumReplace, HelperL4CsumReplace:
		return true
	}
	return false
}

// PipelineDepth returns the number of pipeline stages the template
// hardware block for this helper occupies in a generated design. Complex
// helpers are themselves pipelined (Section 3.4.2).
func (h HelperID) PipelineDepth() int {
	switch h {
	case HelperMapLookupElem:
		return 2 // hash + memory read
	case HelperMapUpdateElem:
		return 2 // hash + memory write
	case HelperMapDeleteElem:
		return 2
	case HelperFibLookup:
		return 3 // longest-prefix-match walk
	case HelperL3CsumReplace, HelperL4CsumReplace, HelperCsumDiff:
		return 2 // fold + patch
	case HelperXDPAdjustHead, HelperXDPAdjustTail:
		return 1
	case HelperKtimeGetNs, HelperKtimeGetBootNs, HelperKtimeGetCoarseNs, HelperJiffies64:
		return 1 // free-running counter sample
	default:
		return 1
	}
}

func sprintfHelper(h HelperID) string {
	// Avoid importing fmt in this tiny hot path; helpers are small ints.
	if h < 0 {
		return "helper_?"
	}
	digits := [12]byte{}
	i := len(digits)
	n := int64(h)
	for {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return "helper_" + string(digits[i:])
}
