package ddg

import (
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/cfg"
	"ehdl/internal/ebpf"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

const toySource = `
map stats array key=4 value=8 entries=4

r2 = *(u32 *)(r1 + 4)
r1 = *(u32 *)(r1 + 0)
r3 = 0
*(u32 *)(r10 - 4) = r3
r2 = *(u8 *)(r1 + 13)
r1 = *(u8 *)(r1 + 12)
r1 <<= 8
r1 |= r2
if r1 == 34525 goto ipv6
if r1 == 2054 goto arp
if r1 != 2048 goto lookup
r1 = 1
goto store
ipv6:
r1 = 2
goto store
arp:
r1 = 3
store:
*(u32 *)(r10 - 4) = r1
lookup:
r2 = r10
r2 += -4
r1 = map[stats] ll
call 1
r1 = r0
r0 = 3
if r1 == 0 goto out
r2 = 1
lock *(u64 *)(r1 + 0) += r2
out:
exit
`

func TestLabelingToyProgram(t *testing.T) {
	info := analyze(t, toySource)

	// Instruction 0/1 read the context.
	for _, i := range []int{0, 1} {
		acc := info.Accesses[i]
		if acc == nil || acc.Area != AreaCtx {
			t.Errorf("instruction %d: area = %v, want ctx", i, acc)
		}
	}
	// Instruction 3 stores to the stack at R10-4.
	if acc := info.Accesses[3]; acc == nil || acc.Area != AreaStack || !acc.OffKnown || acc.Off != -4 || !acc.Write {
		t.Errorf("instruction 3 access = %+v, want stack write at -4", acc)
	}
	// Instructions 4/5 load from the packet at offsets 13 and 12.
	if acc := info.Accesses[4]; acc == nil || acc.Area != AreaPacket || acc.Off != 13 || !acc.Read {
		t.Errorf("instruction 4 access = %+v, want packet read at 13", acc)
	}
	if acc := info.Accesses[5]; acc == nil || acc.Area != AreaPacket || acc.Off != 12 {
		t.Errorf("instruction 5 access = %+v, want packet read at 12", acc)
	}
	// The call is labeled with map 0.
	callIdx := -1
	for i, ins := range info.Prog.Instructions {
		if ins.IsCall() {
			callIdx = i
		}
	}
	if callIdx < 0 || info.CallMap[callIdx] != 0 {
		t.Errorf("call map id = %d at %d, want 0", info.CallMap[callIdx], callIdx)
	}
	// The atomic add goes to map memory via the lookup result.
	atomicIdx := -1
	for i, ins := range info.Prog.Instructions {
		if ins.IsAtomic() {
			atomicIdx = i
		}
	}
	acc := info.Accesses[atomicIdx]
	if acc == nil || acc.Area != AreaMap || acc.MapID != 0 || !acc.Atomic || !acc.Write || !acc.Read {
		t.Errorf("atomic access = %+v, want atomic rmw on map 0", acc)
	}
}

func TestLabelingDerivedPointers(t *testing.T) {
	// r9 derived from r10 (the paper's "r9 = r10 + 10" style example,
	// expressed as mov + add), then used as a stack base.
	info := analyze(t, `
r9 = r10
r9 += -16
*(u64 *)(r9 + 8) = 7
r0 = 0
exit
`)
	acc := info.Accesses[2]
	if acc == nil || acc.Area != AreaStack || !acc.OffKnown || acc.Off != -8 {
		t.Errorf("derived stack access = %+v, want stack at -8", acc)
	}
}

func TestLabelingPacketVariableOffset(t *testing.T) {
	// A packet access with a run-time offset keeps its area but loses
	// the constant offset.
	info := analyze(t, `
r2 = *(u32 *)(r1 + 0)
r3 = *(u8 *)(r2 + 0)
r2 += r3
r0 = *(u8 *)(r2 + 1)
r0 = 0
exit
`)
	acc := info.Accesses[3]
	if acc == nil || acc.Area != AreaPacket || acc.OffKnown {
		t.Errorf("variable packet access = %+v, want packet with unknown offset", acc)
	}
}

func TestLabelingRejectsUntrackedPointer(t *testing.T) {
	prog, err := asm.Assemble("bad", `
r2 = 1234
r0 = *(u32 *)(r2 + 0)
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(g); err == nil {
		t.Fatal("Analyze accepted a dereference of a scalar")
	}
}

func TestProvenanceJoinAtMerge(t *testing.T) {
	// r2 is a packet pointer on both paths but with different offsets:
	// the join keeps the area and drops the offset.
	info := analyze(t, `
r2 = *(u32 *)(r1 + 0)
if r2 == 0 goto other
r2 += 4
goto join
other:
r2 += 8
join:
r0 = *(u8 *)(r2 + 0)
r0 = 0
exit
`)
	var loadIdx int
	for i, ins := range info.Prog.Instructions {
		if ins.Class() == ebpf.ClassLDX && ins.MemSize() == ebpf.SizeB {
			loadIdx = i
		}
	}
	acc := info.Accesses[loadIdx]
	if acc == nil || acc.Area != AreaPacket {
		t.Fatalf("merged access = %+v, want packet", acc)
	}
	if acc.OffKnown {
		t.Error("merged access kept a constant offset across conflicting paths")
	}
}

func TestLivenessRegisterPruning(t *testing.T) {
	// From Section 4.3: r2's value is dead between its last use and its
	// re-definition.
	info := analyze(t, `
r2 = *(u32 *)(r1 + 4)
r3 = r2
r2 = 7
r0 = r2
r0 += r3
exit
`)
	// After instruction 1 (r3 = r2), r2 is dead (it is re-assigned at 2).
	if info.LiveOut[1]&(1<<ebpf.R2) != 0 {
		t.Error("r2 live after its last use")
	}
	// r3 stays live until instruction 4.
	if info.LiveOut[2]&(1<<ebpf.R3) == 0 {
		t.Error("r3 dead while still needed")
	}
	// R0 is live at exit.
	last := len(info.Prog.Instructions) - 1
	if info.LiveIn[last]&(1<<ebpf.R0) == 0 {
		t.Error("r0 dead at exit")
	}
}

func TestStackLiveness(t *testing.T) {
	info := analyze(t, `
*(u32 *)(r10 - 4) = 7
*(u32 *)(r10 - 8) = 8
r2 = *(u32 *)(r10 - 4)
r0 = r2
exit
`)
	// Before instruction 2 the four bytes at -4 are live.
	live := info.StackBytesLive(2)
	if live != 4 {
		t.Errorf("live stack bytes before the load = %d, want 4", live)
	}
	// Before instruction 0 nothing is live (the store kills its bytes).
	if got := info.StackBytesLive(0); got != 0 {
		t.Errorf("live stack bytes at entry = %d, want 0", got)
	}
}

func TestStackLivenessAcrossCall(t *testing.T) {
	info := analyze(t, `
map m hash key=4 value=8 entries=8

*(u32 *)(r10 - 4) = 7
r1 = map[m] ll
r2 = r10
r2 += -4
call 1
r0 = 0
exit
`)
	// The call consumes the key from the stack: the frame must be live
	// before it.
	callIdx := -1
	for i, ins := range info.Prog.Instructions {
		if ins.IsCall() {
			callIdx = i
		}
	}
	if got := info.StackBytesLive(callIdx); got == 0 {
		t.Error("stack dead before a map call that reads the key from it")
	}
}

func TestConflicts(t *testing.T) {
	info := analyze(t, `
r2 = *(u32 *)(r1 + 0)
r3 = *(u8 *)(r2 + 12)
r4 = *(u8 *)(r2 + 13)
r3 <<= 8
*(u32 *)(r10 - 4) = r3
*(u32 *)(r10 - 8) = r4
r0 = 0
exit
`)
	cases := []struct {
		i, j int
		want bool
		why  string
	}{
		{0, 1, true, "RAW on r2"},
		{1, 2, false, "independent packet reads"},
		{1, 3, true, "RAW then WAW on r3"},
		{4, 5, false, "disjoint stack stores"},
		{2, 4, false, "store does not clash with unrelated load"},
		{3, 4, true, "r3 feeds the store"},
	}
	for _, c := range cases {
		if got := info.Conflicts(c.i, c.j); got != c.want {
			t.Errorf("Conflicts(%d,%d) = %v, want %v (%s)", c.i, c.j, got, c.want, c.why)
		}
	}
}

func TestConflictsOverlappingStack(t *testing.T) {
	info := analyze(t, `
*(u32 *)(r10 - 4) = 1
*(u16 *)(r10 - 2) = 2
*(u32 *)(r10 - 8) = 3
r0 = 0
exit
`)
	if !info.Conflicts(0, 1) {
		t.Error("overlapping stack stores did not conflict")
	}
	if info.Conflicts(0, 2) {
		t.Error("disjoint stack stores conflicted")
	}
}

func TestCallIsMemoryBarrier(t *testing.T) {
	info := analyze(t, `
map m hash key=4 value=8 entries=8

*(u32 *)(r10 - 4) = 7
r1 = map[m] ll
r2 = r10
r2 += -4
call 1
r0 = 0
exit
`)
	callIdx := 4
	if !info.Prog.Instructions[callIdx].IsCall() {
		t.Fatalf("instruction %d is not the call", callIdx)
	}
	if !info.Conflicts(0, callIdx) {
		t.Error("stack store did not order against the map call")
	}
}

func TestHelperUsesRefinement(t *testing.T) {
	info := analyze(t, toySource)
	for i, ins := range info.Prog.Instructions {
		if !ins.IsCall() {
			continue
		}
		uses := info.UsesOf(i)
		if len(uses) != 2 {
			t.Errorf("lookup call uses %v, want [r1 r2]", uses)
		}
	}
}

func TestRegsInMask(t *testing.T) {
	regs := RegsInMask(1<<ebpf.R0 | 1<<ebpf.R10)
	if len(regs) != 2 || regs[0] != ebpf.R0 || regs[1] != ebpf.R10 {
		t.Errorf("RegsInMask = %v", regs)
	}
}
