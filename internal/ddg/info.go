package ddg

import (
	"fmt"

	"ehdl/internal/cfg"
	"ehdl/internal/ebpf"
)

// Access describes the memory behaviour of one instruction.
type Access struct {
	Area     MemArea
	MapID    int   // meaningful when Area == AreaMap
	Off      int64 // byte offset from the region base (stack: negative, from R10)
	OffKnown bool
	Size     int
	Read     bool
	Write    bool
	Atomic   bool
}

// ArgLoc locates a helper pointer argument within the stack frame when
// the compiler can prove it constant.
type ArgLoc struct {
	Off   int64 // offset from R10
	Known bool
}

// Info is the result of analysing a program.
type Info struct {
	Prog  *ebpf.Program
	Graph *cfg.Graph

	// Accesses holds the memory access of each instruction, nil when the
	// instruction does not touch memory through a pointer.
	Accesses []*Access
	// CallMap gives, for helper calls that access a map, the map
	// identifier taken from the provenance of R1; -1 otherwise.
	CallMap []int
	// CallKey/CallVal locate the key (R2) and value (R3) stack slots of
	// map helper calls, when statically known.
	CallKey []ArgLoc
	CallVal []ArgLoc
	// MapIDOfLDDW gives the map identifier loaded by each LDDW map
	// reference; -1 otherwise.
	MapIDOfLDDW []int
	// LiveOut[i] is the bitmask of registers live after instruction i.
	LiveOut []uint16
	// LiveIn[i] is the bitmask of registers live before instruction i.
	LiveIn []uint16
	// StackLiveIn[i] marks the stack bytes live before instruction i
	// (bit k = byte at R10-512+k).
	StackLiveIn [][8]uint64
}

// Analyze runs provenance labeling and liveness over an acyclic program.
func Analyze(g *cfg.Graph) (*Info, error) {
	prog := g.Prog
	n := len(prog.Instructions)
	info := &Info{
		Prog:        prog,
		Graph:       g,
		Accesses:    make([]*Access, n),
		CallMap:     make([]int, n),
		CallKey:     make([]ArgLoc, n),
		CallVal:     make([]ArgLoc, n),
		MapIDOfLDDW: make([]int, n),
	}
	for i := range info.CallMap {
		info.CallMap[i] = -1
		info.MapIDOfLDDW[i] = -1
	}
	for i, ins := range prog.Instructions {
		if ins.IsLoadOfMapFD() {
			id, ok := prog.MapIndex(ins.MapRef)
			if !ok {
				return nil, fmt.Errorf("ddg: instruction %d references undeclared map %q", i, ins.MapRef)
			}
			info.MapIDOfLDDW[i] = id
		}
	}

	states := analyzeProvenance(g, info.MapIDOfLDDW)

	for i, ins := range prog.Instructions {
		st := states[i]
		switch cls := ins.Class(); {
		case cls == ebpf.ClassLDX:
			acc, err := accessOf(st[ins.Src], ins.Off, ins.MemSize().Bytes())
			if err != nil {
				return nil, fmt.Errorf("ddg: instruction %d (%s): %w", i, ins, err)
			}
			acc.Read = true
			info.Accesses[i] = acc
		case cls == ebpf.ClassST, cls == ebpf.ClassSTX:
			acc, err := accessOf(st[ins.Dst], ins.Off, ins.MemSize().Bytes())
			if err != nil {
				return nil, fmt.Errorf("ddg: instruction %d (%s): %w", i, ins, err)
			}
			acc.Write = true
			if ins.IsAtomic() {
				acc.Read, acc.Atomic = true, true
			}
			if acc.Area == AreaCtx {
				return nil, fmt.Errorf("ddg: instruction %d (%s): xdp_md is read-only", i, ins)
			}
			info.Accesses[i] = acc
		case ins.IsCall():
			helper := ebpf.HelperID(ins.Imm)
			if helper.AccessesMap() {
				r1 := st[ebpf.R1]
				if r1.kind != pvMapPtr {
					return nil, fmt.Errorf("ddg: instruction %d (%s): R1 does not hold a map pointer", i, ins)
				}
				info.CallMap[i] = r1.mapID
				info.Accesses[i] = &Access{
					Area:  AreaMap,
					MapID: r1.mapID,
					Size:  prog.Maps[r1.mapID].ValueSize,
					Read:  true,
					Write: helper.WritesMap(),
				}
				if r2 := st[ebpf.R2]; r2.kind == pvStack && r2.offKnown {
					info.CallKey[i] = ArgLoc{Off: r2.off, Known: true}
				}
				if helper == ebpf.HelperMapUpdateElem {
					if r3 := st[ebpf.R3]; r3.kind == pvStack && r3.offKnown {
						info.CallVal[i] = ArgLoc{Off: r3.off, Known: true}
					}
				}
			}
		}
	}

	info.computeLiveness()
	return info, nil
}

func accessOf(base pv, off int16, size int) (*Access, error) {
	area := base.kind.area()
	if area == AreaNone {
		return nil, errUntracked
	}
	return &Access{
		Area:     area,
		MapID:    base.mapID,
		Off:      base.off + int64(off),
		OffKnown: base.offKnown,
		Size:     size,
	}, nil
}

// helperUses returns the argument registers a helper actually reads,
// refining the conservative R1-R5 of Instruction.Uses.
func helperUses(id ebpf.HelperID) []ebpf.Register {
	switch id {
	case ebpf.HelperMapLookupElem, ebpf.HelperMapDeleteElem:
		return []ebpf.Register{ebpf.R1, ebpf.R2}
	case ebpf.HelperMapUpdateElem:
		return []ebpf.Register{ebpf.R1, ebpf.R2, ebpf.R3, ebpf.R4}
	case ebpf.HelperRedirect:
		return []ebpf.Register{ebpf.R1, ebpf.R2}
	case ebpf.HelperRedirectMap:
		return []ebpf.Register{ebpf.R1, ebpf.R2, ebpf.R3}
	case ebpf.HelperXDPAdjustHead, ebpf.HelperXDPAdjustTail:
		return []ebpf.Register{ebpf.R1, ebpf.R2}
	case ebpf.HelperL3CsumReplace, ebpf.HelperL4CsumReplace:
		return []ebpf.Register{ebpf.R1, ebpf.R2, ebpf.R3, ebpf.R4, ebpf.R5}
	}
	return nil
}

// UsesOf returns the registers instruction i reads, with helper-call
// argument refinement.
func (in *Info) UsesOf(i int) []ebpf.Register {
	ins := in.Prog.Instructions[i]
	if ins.IsCall() {
		return helperUses(ebpf.HelperID(ins.Imm))
	}
	return ins.Uses()
}

// DefsOf returns the registers instruction i writes.
func (in *Info) DefsOf(i int) []ebpf.Register {
	return in.Prog.Instructions[i].Defs()
}

func regMask(regs []ebpf.Register) uint16 {
	var m uint16
	for _, r := range regs {
		m |= 1 << r
	}
	return m
}

// RegsInMask expands a liveness bitmask into registers.
func RegsInMask(m uint16) []ebpf.Register {
	var out []ebpf.Register
	for r := ebpf.R0; r <= ebpf.R10; r++ {
		if m&(1<<r) != 0 {
			out = append(out, r)
		}
	}
	return out
}

type stackSet = [8]uint64

func stackRange(off int64, size int) (lo, hi int, ok bool) {
	// off is relative to R10 (the frame top); valid bytes are [-512, 0).
	lo = int(off) + ebpf.StackSize
	hi = lo + size
	if lo < 0 || hi > ebpf.StackSize {
		return 0, 0, false
	}
	return lo, hi, true
}

func stackSetBits(s *stackSet, lo, hi int) {
	for b := lo; b < hi; b++ {
		s[b/64] |= 1 << (b % 64)
	}
}

func stackClearBits(s *stackSet, lo, hi int) {
	for b := lo; b < hi; b++ {
		s[b/64] &^= 1 << (b % 64)
	}
}

func stackUnion(a, b stackSet) stackSet {
	var out stackSet
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return out
}

func fullStack() stackSet {
	var s stackSet
	for i := range s {
		s[i] = ^uint64(0)
	}
	return s
}

// computeLiveness runs backward data-flow for registers and stack bytes
// at instruction granularity.
func (in *Info) computeLiveness() {
	in.LiveIn, in.LiveOut, in.StackLiveIn = in.Liveness(in.UsesOf)
}

// Liveness runs the backward data-flow with a caller-supplied register
// use function, so the compiler can re-run it after dropping the base
// registers of statically addressed memory accesses.
func (in *Info) Liveness(uses func(i int) []ebpf.Register) (liveIn, liveOut []uint16, stackLiveIn [][8]uint64) {
	g := in.Graph
	n := len(in.Prog.Instructions)
	liveIn = make([]uint16, n)
	liveOut = make([]uint16, n)
	stackLiveIn = make([][8]uint64, n)

	blockLiveOut := make([]uint16, len(g.Blocks))
	blockStackOut := make([]stackSet, len(g.Blocks))

	changed := true
	for changed {
		changed = false
		for b := len(g.Blocks) - 1; b >= 0; b-- {
			blk := g.Blocks[b]
			live := blockLiveOut[b]
			stk := blockStackOut[b]
			for i := blk.End - 1; i >= blk.Start; i-- {
				liveOut[i] = live
				live = live&^regMask(in.DefsOf(i)) | regMask(uses(i))
				stk = in.stackStep(i, stk)
				if liveIn[i] != live {
					liveIn[i] = live
					changed = true
				}
				if stackLiveIn[i] != stk {
					stackLiveIn[i] = stk
					changed = true
				}
			}
			for _, p := range blk.Preds {
				merged := blockLiveOut[p] | live
				if merged != blockLiveOut[p] {
					blockLiveOut[p] = merged
					changed = true
				}
				ms := stackUnion(blockStackOut[p], stk)
				if ms != blockStackOut[p] {
					blockStackOut[p] = ms
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut, stackLiveIn
}

// stackStep applies one instruction's effect to the stack live set.
func (in *Info) stackStep(i int, out stackSet) stackSet {
	acc := in.Accesses[i]
	ins := in.Prog.Instructions[i]

	if ins.IsCall() {
		helper := ebpf.HelperID(ins.Imm)
		if !helper.AccessesMap() {
			return out
		}
		spec := in.Prog.Maps[in.CallMap[i]]
		// The key (and value for updates) is read through R2/R3, almost
		// always from the stack. With tracked argument offsets only those
		// slots stay live; otherwise the safe answer keeps the frame.
		if !in.CallKey[i].Known {
			return fullStack()
		}
		if lo, hi, ok := stackRange(in.CallKey[i].Off, spec.KeySize); ok {
			stackSetBits(&out, lo, hi)
		}
		if helper == ebpf.HelperMapUpdateElem {
			if !in.CallVal[i].Known {
				return fullStack()
			}
			if lo, hi, ok := stackRange(in.CallVal[i].Off, spec.ValueSize); ok {
				stackSetBits(&out, lo, hi)
			}
		}
		return out
	}
	if acc == nil || acc.Area != AreaStack {
		return out
	}
	if !acc.OffKnown {
		if acc.Read {
			return fullStack()
		}
		return out // write at an unknown offset kills nothing
	}
	lo, hi, ok := stackRange(acc.Off, acc.Size)
	if !ok {
		return out
	}
	if acc.Write && !acc.Read {
		stackClearBits(&out, lo, hi)
	}
	if acc.Read {
		stackSetBits(&out, lo, hi)
	}
	return out
}

// StackBytesLive counts the live stack bytes before instruction i.
func (in *Info) StackBytesLive(i int) int {
	count := 0
	for _, w := range in.StackLiveIn[i] {
		for ; w != 0; w &= w - 1 {
			count++
		}
	}
	return count
}

// Conflicts reports whether instructions i and j (i before j in program
// order, same control block) must stay ordered: they have a register
// dependency, overlapping memory effects, or either is a scheduling
// barrier (helper call).
func (in *Info) Conflicts(i, j int) bool {
	defsI := regMask(in.DefsOf(i))
	defsJ := regMask(in.DefsOf(j))
	usesI := regMask(in.UsesOf(i))
	usesJ := regMask(in.UsesOf(j))
	if defsI&usesJ != 0 || usesI&defsJ != 0 || defsI&defsJ != 0 {
		return true
	}

	insI, insJ := in.Prog.Instructions[i], in.Prog.Instructions[j]
	// Helper calls order against every memory access and other calls.
	if insI.IsCall() || insJ.IsCall() {
		if insI.IsCall() && insJ.IsCall() {
			return true
		}
		other := in.Accesses[i]
		if insI.IsCall() {
			other = in.Accesses[j]
		}
		return other != nil
	}

	accI, accJ := in.Accesses[i], in.Accesses[j]
	if accI == nil || accJ == nil {
		return false
	}
	if !accI.Write && !accJ.Write {
		return false // two reads commute
	}
	return accessesOverlap(accI, accJ)
}

func accessesOverlap(a, b *Access) bool {
	if a.Area != b.Area {
		return false
	}
	if a.Area == AreaMap && a.MapID != b.MapID {
		return false
	}
	if !a.OffKnown || !b.OffKnown {
		return true
	}
	return a.Off < b.Off+int64(b.Size) && b.Off < a.Off+int64(a.Size)
}
