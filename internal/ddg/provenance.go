// Package ddg performs the data-flow analyses the eHDL compiler relies
// on (Section 3.1 of the paper): pointer-provenance tracking that labels
// every load and store with the memory area it touches (stack, packet,
// or a specific map), register and stack liveness for state pruning
// (Section 4.3), and the instruction dependencies that bound
// instruction-level parallelism (Section 3.3).
package ddg

import (
	"fmt"

	"ehdl/internal/cfg"
	"ehdl/internal/ebpf"
)

// MemArea classifies the memory a load/store touches.
type MemArea int

// Memory areas.
const (
	AreaNone MemArea = iota
	AreaCtx
	AreaStack
	AreaPacket
	AreaMap
)

func (a MemArea) String() string {
	switch a {
	case AreaNone:
		return "none"
	case AreaCtx:
		return "ctx"
	case AreaStack:
		return "stack"
	case AreaPacket:
		return "packet"
	case AreaMap:
		return "map"
	}
	return "area?"
}

// pvKind is the pointer-provenance lattice.
type pvKind int

const (
	pvScalar pvKind = iota
	pvCtx
	pvPacket
	pvPacketEnd
	pvStack
	pvMapPtr
	pvMapValue
	pvUnknown // join of incompatible values
)

// pv is an abstract register value: a provenance kind plus, where
// meaningful, a constant byte offset from the region base.
type pv struct {
	kind     pvKind
	mapID    int
	off      int64
	offKnown bool
}

func scalar() pv { return pv{kind: pvScalar} }

func (a pv) equal(b pv) bool { return a == b }

// join merges two abstract values at a control-flow merge point.
func (a pv) join(b pv) pv {
	if a.equal(b) {
		return a
	}
	if a.kind == b.kind && a.mapID == b.mapID {
		// Same region, different or unknown offsets.
		return pv{kind: a.kind, mapID: a.mapID}
	}
	if a.kind == pvScalar && b.kind == pvScalar {
		return scalar()
	}
	return pv{kind: pvUnknown}
}

// addConst offsets a pointer by a compile-time constant.
func (a pv) addConst(c int64) pv {
	switch a.kind {
	case pvPacket, pvStack, pvMapValue:
		if a.offKnown {
			return pv{kind: a.kind, mapID: a.mapID, off: a.off + c, offKnown: true}
		}
		return a
	case pvScalar:
		return scalar()
	}
	return pv{kind: pvUnknown}
}

// addUnknown offsets a pointer by a run-time value.
func (a pv) addUnknown() pv {
	switch a.kind {
	case pvPacket, pvStack, pvMapValue:
		return pv{kind: a.kind, mapID: a.mapID}
	case pvScalar:
		return scalar()
	}
	return pv{kind: pvUnknown}
}

// regState is the abstract register file at one program point.
type regState [ebpf.NumRegisters]pv

func entryState() regState {
	var st regState
	for i := range st {
		st[i] = scalar()
	}
	st[ebpf.R1] = pv{kind: pvCtx, offKnown: true}
	st[ebpf.R10] = pv{kind: pvStack, offKnown: true} // offset relative to the frame top
	return st
}

func (s regState) join(o regState) regState {
	var out regState
	for i := range s {
		out[i] = s[i].join(o[i])
	}
	return out
}

// transfer applies one instruction to the abstract state. mapIDs maps
// LDDW instruction indices to map identifiers.
func transfer(st regState, ins ebpf.Instruction, mapID int) regState {
	switch cls := ins.Class(); {
	case cls.IsALU():
		op := ins.ALUOp()
		dst := ins.Dst
		switch op {
		case ebpf.ALUMov:
			if ins.Source() == ebpf.SourceX {
				st[dst] = st[ins.Src]
				if cls == ebpf.ClassALU {
					// A 32-bit move truncates pointers to scalars.
					if st[dst].kind != pvScalar {
						st[dst] = pv{kind: pvUnknown}
					}
				}
			} else {
				st[dst] = scalar()
			}
		case ebpf.ALUAdd:
			if ins.Source() == ebpf.SourceK {
				st[dst] = st[dst].addConst(int64(ins.Imm))
			} else {
				src := st[ins.Src]
				switch {
				case st[dst].kind == pvScalar && src.kind != pvScalar:
					// scalar + pointer: the pointer wins.
					st[dst] = src.addUnknown()
				case src.kind == pvScalar:
					st[dst] = st[dst].addUnknown()
				default:
					st[dst] = pv{kind: pvUnknown}
				}
			}
		case ebpf.ALUSub:
			if ins.Source() == ebpf.SourceK {
				st[dst] = st[dst].addConst(-int64(ins.Imm))
			} else if st[ins.Src].kind == pvScalar {
				st[dst] = st[dst].addUnknown()
			} else {
				// pointer - pointer yields a scalar length.
				st[dst] = scalar()
			}
		default:
			// Any other arithmetic destroys pointer provenance.
			if st[dst].kind == pvScalar {
				st[dst] = scalar()
			} else {
				st[dst] = st[dst].addUnknown()
				if op != ebpf.ALUAnd && op != ebpf.ALUOr {
					st[dst] = scalar()
				}
			}
		}
	case cls == ebpf.ClassLD: // LDDW
		if mapID >= 0 {
			st[ins.Dst] = pv{kind: pvMapPtr, mapID: mapID, offKnown: true}
		} else {
			st[ins.Dst] = scalar()
		}
	case cls == ebpf.ClassLDX:
		base := st[ins.Src]
		if base.kind == pvCtx {
			switch int(ins.Off) {
			case ebpf.XDPMDData, ebpf.XDPMDDataMeta:
				st[ins.Dst] = pv{kind: pvPacket, off: 0, offKnown: true}
			case ebpf.XDPMDDataEnd:
				st[ins.Dst] = pv{kind: pvPacketEnd, offKnown: true}
			default:
				st[ins.Dst] = scalar()
			}
		} else {
			st[ins.Dst] = scalar()
		}
	case cls == ebpf.ClassSTX && ins.Mode() == ebpf.ModeATOMIC:
		op := ins.AtomicOp()
		if op&ebpf.AtomicFetch != 0 || op == ebpf.AtomicXchg {
			st[ins.Src] = scalar()
		}
		if op == ebpf.AtomicCmpXchg {
			st[ebpf.R0] = scalar()
		}
	case cls == ebpf.ClassJMP && ins.IsCall():
		helper := ebpf.HelperID(ins.Imm)
		if helper == ebpf.HelperMapLookupElem {
			// R0 becomes a pointer into the map R1 referenced, or NULL.
			if r1 := st[ebpf.R1]; r1.kind == pvMapPtr {
				st[ebpf.R0] = pv{kind: pvMapValue, mapID: r1.mapID, off: 0, offKnown: true}
			} else {
				st[ebpf.R0] = pv{kind: pvUnknown}
			}
		} else {
			st[ebpf.R0] = scalar()
		}
		for r := ebpf.R1; r <= ebpf.R5; r++ {
			st[r] = scalar()
		}
	}
	return st
}

// analyzeProvenance computes the abstract register state before every
// instruction with a work-list fixed point over the CFG.
func analyzeProvenance(g *cfg.Graph, mapIDs []int) []regState {
	prog := g.Prog
	in := make([]regState, len(prog.Instructions))
	blockIn := make([]regState, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	blockIn[0] = entryState()
	seen[0] = true

	work := []int{0}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st := blockIn[b]
		blk := g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			in[i] = st
			st = transfer(st, prog.Instructions[i], mapIDs[i])
		}
		for _, s := range blk.Succs {
			var next regState
			if seen[s] {
				next = blockIn[s].join(st)
			} else {
				next = st
			}
			if !seen[s] || next != blockIn[s] {
				blockIn[s] = next
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

func (k pvKind) area() MemArea {
	switch k {
	case pvCtx:
		return AreaCtx
	case pvPacket:
		return AreaPacket
	case pvStack:
		return AreaStack
	case pvMapValue:
		return AreaMap
	}
	return AreaNone
}

var errUntracked = fmt.Errorf("ddg: memory access through an untracked pointer")
