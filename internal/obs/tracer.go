package obs

// Tracer is the cycle-level event stream of one pipeline. It keeps a
// bounded ring of recent events (the post-mortem view a hardware ILA
// would capture) and forwards every event to the attached sinks.
//
// A nil *Tracer is the disabled state: Emit on nil is a no-op, so
// producers thread the pointer through unconditionally and pay only a
// nil check when tracing is off.
type Tracer struct {
	ring    []Event
	next    int
	filled  bool
	sinks   []Sink
	emitted uint64
}

// DefaultRingSize bounds the in-memory event ring when the caller does
// not choose one.
const DefaultRingSize = 4096

// NewTracer builds a tracer with the given ring capacity (<= 0 selects
// DefaultRingSize) and sinks.
func NewTracer(ringSize int, sinks ...Sink) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{ring: make([]Event, ringSize), sinks: sinks}
}

// Emit records one event. Safe on a nil tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.emitted++
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	for _, s := range t.sinks {
		s.Record(ev)
	}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Emitted returns the total number of events emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// Recent returns the ring contents in emission order (oldest first).
// The ring holds the most recent min(Emitted, ring size) events.
func (t *Tracer) Recent() []Event {
	if t == nil {
		return nil
	}
	if !t.filled {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Flush flushes every sink, returning the first error.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
