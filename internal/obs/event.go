// Package obs is the observability layer of the repository: a
// cycle-level pipeline tracer, a metrics registry, and profiling hooks.
//
// The design contract is zero overhead when disabled: every producer
// holds a nil *Tracer / nil *Registry until the caller opts in, and the
// emit paths are nil-receiver safe, so an uninstrumented run pays one
// pointer comparison per probe site. When enabled, the tracer streams
// typed events — the waveform of the simulated pipeline — into
// pluggable sinks, and the registry accumulates named counters and
// histograms that reports, CLIs and experiment tables consume.
package obs

import (
	"fmt"
)

// Kind classifies a pipeline event. The taxonomy covers everything the
// differential and invariant suites assert on: frame movement through
// stages, stage-enable predicate outcomes, WAR-buffer occupancy, RAW
// flush episodes, map accesses, verdicts, and the protection/recovery
// machinery.
type Kind uint8

// Event kinds.
const (
	// KindInject marks a packet accepted by the ingress queue.
	// Aux: packet length. Aux2: frame count.
	KindInject Kind = iota
	// KindQueueDrop marks a packet refused by the full ingress queue.
	// Aux: packet length.
	KindQueueDrop
	// KindStageEnter marks a frame occupying a pipeline stage for the
	// first cycle. Aux: 1 when the frame's verdict has already latched
	// (it flows through the remaining stages with every block bypassed).
	KindStageEnter
	// KindStageExit marks a frame leaving a stage (advance, flush recall
	// or retirement).
	KindStageExit
	// KindPredicate records a stage-enable predicate outcome.
	// Aux: 1 when the branch was taken. Aux2: the block enabled by the
	// outcome (NoBlock when the edge leaves the pipeline).
	KindPredicate
	// KindWARShadow records a write-delay shadow capture.
	// Aux: shadow buffer occupancy after the capture. Aux2: WAR depth.
	KindWARShadow
	// KindFlushBegin marks a RAW flush verdict. Aux: victims recalled.
	// Aux2: the elastic-buffer stage victims re-enter from.
	KindFlushBegin
	// KindFlushEnd marks the reload window closing. Aux: penalty cycles
	// from the flush verdict to release.
	KindFlushEnd
	// KindMapAccess records one map port operation. Aux: a MapOp value.
	KindMapAccess
	// KindVerdict marks a frame retiring. Aux: the XDP action.
	// Aux2: forwarding latency in cycles.
	KindVerdict
	// KindScrub marks a completed background-scrubber pass.
	// Aux: words checked in total. Aux2: 1 when the pass was clean.
	KindScrub
	// KindCheckpoint marks a known-good map snapshot. Aux: entries.
	KindCheckpoint
	// KindRecovery marks a drain-and-restart sequence. Aux: the attempt
	// number. Aux2: backoff cycles charged.
	KindRecovery
	// KindWatchdog marks a livelock-watchdog trip. Aux: the cycle of the
	// last retirement.
	KindWatchdog
	// KindFault marks an injected hardware fault. Aux: the fault class.
	KindFault
	// KindUpdatePhase marks a live-update stage transition. Aux: the
	// stage entered (a liveupdate.Stage value). Aux2: a stage-specific
	// detail — entries migrated entering canary, packets canaried
	// entering cutover, held packets released at switch.
	KindUpdatePhase
	// KindCanaryDiverge marks a shadow-pipeline divergence from the
	// reference during a live-update canary. Seq: the diverging packet's
	// shadow sequence number. Aux: the mismatch class (verdict, packet
	// bytes, map state).
	KindCanaryDiverge
	// KindQueueSteer marks the RSS dispatcher classifying one arrival
	// to a pipeline replica. Seq: the global arrival index. Aux: the
	// queue chosen. Aux2: the Toeplitz hash (0 for non-IP frames taking
	// the queue-0 fallback). The multi-tenant classifier reuses the
	// kind for quarantine steers: Aux is the tenant the frame was
	// steered to (^0 for the device quarantine bucket), Aux2 is 1.
	KindQueueSteer
	// KindRolloutPhase marks a fleet rollout transition. Cycle: the
	// fleet epoch. Aux: the rollout phase entered (a fleet.RolloutPhase
	// value). Aux2: the device concerned (NoBlock-style ^0 when the
	// event is fleet-wide).
	KindRolloutPhase
	// KindRebalance marks a fleet ring-membership change. Cycle: the
	// fleet epoch. Aux: the device drained or re-admitted. Aux2: 1 for a
	// drain, 0 for a re-admit.
	KindRebalance
	// KindTenantAdmit marks a tenant passing the budget admission gate
	// of a multi-tenant device. Aux: the tenant id. Aux2: the device
	// utilisation after admission, in tenths of a percent.
	KindTenantAdmit
	// KindTenantReject marks the admission gate refusing a tenant whose
	// design would push the device past the utilisation band. Aux: the
	// would-be utilisation in tenths of a percent. Aux2: the band
	// ceiling in tenths of a percent.
	KindTenantReject
	// KindTenantThrottle marks per-tenant ingress policing shedding
	// overload. Cycle: the device epoch. Aux: the tenant id. Aux2: the
	// frames shed in the epoch.
	KindTenantThrottle
	// KindJournalCommit marks a fleet epoch record fsynced to the
	// write-ahead journal. Cycle: the epoch. Aux2: the journal size in
	// bytes after the commit.
	KindJournalCommit
	// KindStateSnapshot marks a full-state snapshot file written.
	// Cycle: the epoch. Aux: the snapshot payload size in bytes.
	KindStateSnapshot
	// KindReplayEpoch marks one epoch re-executed and digest-verified
	// during crash recovery. Cycle: the epoch. Aux: 1 on the epoch whose
	// journaled digest matched a loaded snapshot byte-for-byte.
	KindReplayEpoch

	numKinds
)

var kindNames = [numKinds]string{
	KindInject:     "inject",
	KindQueueDrop:  "queue_drop",
	KindStageEnter: "stage_enter",
	KindStageExit:  "stage_exit",
	KindPredicate:  "predicate",
	KindWARShadow:  "war_shadow",
	KindFlushBegin: "flush_begin",
	KindFlushEnd:   "flush_end",
	KindMapAccess:  "map_access",
	KindVerdict:    "verdict",
	KindScrub:      "scrub",
	KindCheckpoint: "checkpoint",
	KindRecovery:   "recovery",
	KindWatchdog:   "watchdog",
	KindFault:      "fault",

	KindUpdatePhase:    "update_phase",
	KindCanaryDiverge:  "canary_diverge",
	KindQueueSteer:     "queue_steer",
	KindRolloutPhase:   "rollout_phase",
	KindRebalance:      "rebalance",
	KindTenantAdmit:    "tenant_admit",
	KindTenantReject:   "tenant_reject",
	KindTenantThrottle: "tenant_throttle",
	KindJournalCommit:  "journal_commit",
	KindStateSnapshot:  "state_snapshot",
	KindReplayEpoch:    "replay_epoch",
}

// String returns the canonical event-class name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its canonical name so traces stay
// readable and stable across kind reordering.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a canonical kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("obs: malformed kind %q", b)
	}
	name := string(b[1 : len(b)-1])
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", name)
}

// Kinds returns every event class, for coverage assertions.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// MapOp enumerates map port operations for KindMapAccess events.
type MapOp uint64

// Map port operations.
const (
	MapOpLookup MapOp = iota
	MapOpUpdate
	MapOpDelete
	MapOpLoad   // load through the lookup pointer
	MapOpStore  // store through the lookup pointer
	MapOpAtomic // atomic read-modify-write through the lookup pointer
)

var mapOpNames = [...]string{"lookup", "update", "delete", "load", "store", "atomic"}

// String returns the operation name.
func (o MapOp) String() string {
	if int(o) < len(mapOpNames) {
		return mapOpNames[o]
	}
	return fmt.Sprintf("op(%d)", uint64(o))
}

// NoSeq marks an event not attributable to one frame.
const NoSeq int64 = -1

// NoStage and NoMap mark fields not applicable to an event.
const (
	NoStage = -1
	NoMap   = -1
)

// NoBlock marks a predicate edge that enables no block.
const NoBlock = ^uint64(0)

// Event is one cycle-stamped pipeline observation. The JSON field names
// are deliberately short: JSONL traces are committed as golden files.
type Event struct {
	// Cycle is the pipeline clock cycle the event occurred on.
	Cycle uint64 `json:"c"`
	// Kind classifies the event.
	Kind Kind `json:"k"`
	// Seq is the frame's injection sequence number, NoSeq when the
	// event is not tied to a frame.
	Seq int64 `json:"q"`
	// Stage is the pipeline stage, NoStage when not applicable.
	Stage int `json:"t"`
	// Map is the map identifier, NoMap when not applicable.
	Map int `json:"m"`
	// Aux and Aux2 carry kind-specific payloads (see the Kind docs).
	Aux  uint64 `json:"a"`
	Aux2 uint64 `json:"b"`
}

// String renders one compact human-readable line, the unit of the text
// sink's waveform-style dump.
func (e Event) String() string {
	s := fmt.Sprintf("%8d %-11s", e.Cycle, e.Kind)
	if e.Seq != NoSeq {
		s += fmt.Sprintf(" q%-4d", e.Seq)
	} else {
		s += "      "
	}
	if e.Stage != NoStage {
		s += fmt.Sprintf(" t%-3d", e.Stage)
	} else {
		s += "     "
	}
	if e.Map != NoMap {
		s += fmt.Sprintf(" m%d", e.Map)
	}
	switch e.Kind {
	case KindMapAccess:
		s += " " + MapOp(e.Aux).String()
	case KindPredicate:
		if e.Aux == 1 {
			s += " taken"
		} else {
			s += " fall"
		}
		if e.Aux2 != NoBlock {
			s += fmt.Sprintf(" ->b%d", e.Aux2)
		}
	case KindVerdict:
		s += fmt.Sprintf(" action=%d lat=%d", e.Aux, e.Aux2)
	default:
		if e.Aux != 0 || e.Aux2 != 0 {
			s += fmt.Sprintf(" a=%d b=%d", e.Aux, e.Aux2)
		}
	}
	return s
}
