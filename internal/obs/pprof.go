package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileConfig selects the profiling hooks a CLI run arms. Empty
// fields are disabled; the zero value is a no-op.
type ProfileConfig struct {
	// CPUFile receives a CPU profile covering the run.
	CPUFile string
	// MemFile receives a heap profile taken when the run stops.
	MemFile string
	// TraceFile receives a runtime/trace execution trace; the pipeline
	// phases show up as tasks and regions (see Task and Region).
	TraceFile string
	// HTTPAddr serves net/http/pprof (live profiling of long runs).
	HTTPAddr string
}

// Enabled reports whether any hook is armed.
func (c ProfileConfig) Enabled() bool {
	return c.CPUFile != "" || c.MemFile != "" || c.TraceFile != "" || c.HTTPAddr != ""
}

// StartProfiles arms the configured hooks and returns a stop function
// that ends profiles, writes the heap snapshot and closes everything.
// The stop function must be called exactly once.
func StartProfiles(c ProfileConfig) (stop func() error, addr string, err error) {
	var stops []func() error
	fail := func(err error) (func() error, string, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]() //nolint:errcheck // best-effort unwind
		}
		return nil, "", err
	}

	if c.HTTPAddr != "" {
		ln, err := net.Listen("tcp", c.HTTPAddr)
		if err != nil {
			return fail(fmt.Errorf("obs: pprof listener: %w", err))
		}
		addr = ln.Addr().String()
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln) //nolint:errcheck // closed by stop
		stops = append(stops, func() error {
			return srv.Close()
		})
	}

	if c.CPUFile != "" {
		f, err := os.Create(c.CPUFile)
		if err != nil {
			return fail(fmt.Errorf("obs: cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("obs: cpu profile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}

	if c.TraceFile != "" {
		f, err := os.Create(c.TraceFile)
		if err != nil {
			return fail(fmt.Errorf("obs: runtime trace: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("obs: runtime trace: %w", err))
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}

	memFile := c.MemFile
	return func() error {
		var first error
		if memFile != "" {
			if err := writeHeapProfile(memFile); err != nil {
				first = err
			}
		}
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, addr, nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // materialise the live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// Task opens a runtime/trace task annotating one pipeline phase (a
// RunLoad, an experiment). Cheap when no execution trace is running.
func Task(ctx context.Context, name string) (context.Context, func()) {
	ctx, task := trace.NewTask(ctx, name)
	return ctx, task.End
}

// Region annotates a sub-phase inside a task. Returns the closer.
func Region(ctx context.Context, name string) func() {
	return trace.StartRegion(ctx, name).End
}
