package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: unmarshal %s: %v", k, b, err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
		if strings.Contains(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no_such_kind"`), &k); err == nil {
		t.Fatal("unknown kind name accepted")
	}
	if err := json.Unmarshal([]byte(`17`), &k); err == nil {
		t.Fatal("non-string kind accepted")
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("out-of-range kind string %q", got)
	}
	if got := MapOp(99).String(); got != "op(99)" {
		t.Fatalf("out-of-range map op string %q", got)
	}
}

func TestNilTracerIsANoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindInject}) // must not panic
	if tr.Enabled() || tr.Emitted() != 0 || tr.Recent() != nil || tr.Flush() != nil {
		t.Fatal("nil tracer is not inert")
	}
}

func TestTracerRingAndSinks(t *testing.T) {
	mem := NewMemSink()
	tr := NewTracer(4, mem)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: KindStageEnter, Seq: int64(i)})
	}
	if tr.Emitted() != 10 {
		t.Fatalf("emitted %d, want 10", tr.Emitted())
	}
	// The ring keeps the last 4; the sink saw everything.
	recent := tr.Recent()
	if len(recent) != 4 || recent[0].Cycle != 6 || recent[3].Cycle != 9 {
		t.Fatalf("ring contents %v", recent)
	}
	if len(mem.Events()) != 10 {
		t.Fatalf("sink saw %d events", len(mem.Events()))
	}
	mem.Reset()
	if len(mem.Events()) != 0 {
		t.Fatal("reset did not clear the sink")
	}

	// A partially filled ring returns only what was emitted.
	tr2 := NewTracer(0)
	tr2.Emit(Event{Cycle: 1})
	tr2.Emit(Event{Cycle: 2})
	if got := tr2.Recent(); len(got) != 2 || got[0].Cycle != 1 {
		t.Fatalf("partial ring %v", got)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := []Event{
		{Cycle: 3, Kind: KindInject, Seq: 0, Stage: NoStage, Map: NoMap, Aux: 64, Aux2: 1},
		{Cycle: 4, Kind: KindMapAccess, Seq: 0, Stage: 2, Map: 1, Aux: uint64(MapOpLookup)},
		{Cycle: 9, Kind: KindVerdict, Seq: 0, Stage: 7, Map: NoMap, Aux: 2, Aux2: 6},
	}
	for _, ev := range want {
		sink.Record(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLDeterminism(t *testing.T) {
	evs := []Event{
		{Cycle: 1, Kind: KindStageEnter, Seq: 4, Stage: 0, Map: NoMap},
		{Cycle: 2, Kind: KindFlushBegin, Seq: NoSeq, Stage: 5, Map: 0, Aux: 2, Aux2: 3},
	}
	render := func() string {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		for _, ev := range evs {
			s.Record(ev)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("JSONL encoding is not deterministic")
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTextSink(&buf)
	sink.Record(Event{Cycle: 12, Kind: KindPredicate, Seq: 3, Stage: 2, Map: NoMap, Aux: 1, Aux2: 7})
	sink.Record(Event{Cycle: 13, Kind: KindPredicate, Seq: 3, Stage: 2, Map: NoMap, Aux: 0, Aux2: NoBlock})
	sink.Record(Event{Cycle: 14, Kind: KindMapAccess, Seq: 3, Stage: 4, Map: 0, Aux: uint64(MapOpAtomic)})
	sink.Record(Event{Cycle: 20, Kind: KindVerdict, Seq: 3, Stage: 9, Map: NoMap, Aux: 2, Aux2: 8})
	sink.Record(Event{Cycle: 22, Kind: KindScrub, Seq: NoSeq, Stage: NoStage, Map: NoMap, Aux: 128, Aux2: 1})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"predicate", "taken", "->b7", "fall", "atomic", "action=2 lat=8", "a=128 b=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}
