package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if same := r.Counter("x"); same != c {
		t.Fatal("get-or-create returned a different counter")
	}
	v, ok := r.CounterValue("x")
	if !ok || v != 8000 {
		t.Fatalf("CounterValue %d %v", v, ok)
	}
	if _, ok := r.CounterValue("missing"); ok {
		t.Fatal("missing counter reported present")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for v := uint64(1); v <= 200; v++ {
		h.Observe(v)
	}
	h.Observe(5000) // overflow bucket
	if h.Count() != 201 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 5000 {
		t.Fatalf("max %d", h.Max())
	}
	if got := h.Quantile(0.5); got != 1000 {
		// 100 of 201 samples are <= 100; the 101st falls in (100, 1000].
		t.Fatalf("p50 %d, want 1000", got)
	}
	if got := h.Quantile(0.01); got != 10 {
		t.Fatalf("p1 %d, want 10", got)
	}
	if got := h.Quantile(1.0); got != 5000 {
		t.Fatalf("p100 %d, want 5000 (max of overflow bucket)", got)
	}
	if got := h.Quantile(-1); got != 10 {
		t.Fatalf("clamped quantile %d", got)
	}
	if h.Mean() <= 0 {
		t.Fatal("mean not positive")
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || bounds[3] != ^uint64(0) {
		t.Fatalf("buckets %v", bounds)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 201 {
		t.Fatalf("bucket counts sum %d", total)
	}

	empty := NewHistogram([]uint64{1})
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(8, 2, 5)
	want := []uint64{8, 16, 32, 64, 128}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("exp buckets %v", exp)
		}
	}
	// A factor of 1 must still produce strictly increasing bounds.
	flat := ExpBuckets(4, 1, 3)
	if !(flat[0] < flat[1] && flat[1] < flat[2]) {
		t.Fatalf("flat-factor buckets not increasing: %v", flat)
	}
	lin := LinearBuckets(0, 0, 3)
	if !(lin[0] < lin[1] && lin[1] < lin[2]) {
		t.Fatalf("zero-step linear buckets not increasing: %v", lin)
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	h := r.Histogram("c.lat", ExpBuckets(1, 2, 8))
	h.Observe(3)
	h.Observe(200)
	if again := r.Histogram("c.lat", nil); again != h {
		t.Fatal("histogram get-or-create returned a different instance")
	}
	if _, ok := r.HistogramByName("c.lat"); !ok {
		t.Fatal("histogram not found by name")
	}

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// Sorted order: a.count, b.count, c.lat.
	if !strings.HasPrefix(lines[0], "a.count") || !strings.HasPrefix(lines[2], "c.lat") {
		t.Fatalf("render order wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "count=2") {
		t.Fatalf("histogram line %q", lines[2])
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a.count" {
		t.Fatalf("names %v", names)
	}
}
