package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Sink receives every event the tracer emits. Sinks are single-writer:
// the pipeline clock is one goroutine, and the tracer forwards events
// in emission order.
type Sink interface {
	// Record observes one event. Implementations should not block the
	// cycle loop; errors are latched and surfaced by Flush.
	Record(ev Event)
	// Flush drains buffers and returns the first error encountered.
	Flush() error
}

// MemSink retains every event in memory — the sink the test suites
// assert over.
type MemSink struct {
	evs []Event
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{} }

// Record implements Sink.
func (s *MemSink) Record(ev Event) { s.evs = append(s.evs, ev) }

// Flush implements Sink.
func (s *MemSink) Flush() error { return nil }

// Events returns the recorded events in emission order (aliasing the
// sink's storage).
func (s *MemSink) Events() []Event { return s.evs }

// Reset discards the recorded events.
func (s *MemSink) Reset() { s.evs = s.evs[:0] }

// JSONLSink writes one JSON object per event, newline-delimited — the
// interchange format of the golden-trace suite and the -trace flag.
// Encoding is deterministic: identical event streams produce
// byte-identical output.
type JSONLSink struct {
	w   *bufio.Writer
	err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Record implements Sink.
func (s *JSONLSink) Record(ev Event) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ParseJSONL decodes a JSONL trace back into events, for golden-trace
// comparison and offline analysis.
func ParseJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// TextSink renders events as aligned human-readable lines, a compact
// waveform-style dump for terminals.
type TextSink struct {
	w   *bufio.Writer
	err error
}

// NewTextSink wraps w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{w: bufio.NewWriter(w)}
}

// Record implements Sink.
func (s *TextSink) Record(ev Event) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.WriteString(ev.String() + "\n")
}

// Flush implements Sink.
func (s *TextSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
