package obs

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesDisabled(t *testing.T) {
	if (ProfileConfig{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	stop, addr, err := StartProfiles(ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "" {
		t.Fatalf("no listener requested, got addr %q", addr)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := ProfileConfig{
		CPUFile:   filepath.Join(dir, "cpu.pprof"),
		MemFile:   filepath.Join(dir, "mem.pprof"),
		TraceFile: filepath.Join(dir, "trace.out"),
	}
	if !cfg.Enabled() {
		t.Fatal("config reports disabled")
	}
	stop, _, err := StartProfiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Annotated work so the execution trace has content.
	ctx, end := Task(context.Background(), "test-task")
	func() {
		defer Region(ctx, "busy")()
		sum := 0
		for i := 0; i < 1_000_00; i++ {
			sum += i
		}
		_ = sum
	}()
	end()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cfg.CPUFile, cfg.MemFile, cfg.TraceFile} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestStartProfilesHTTP(t *testing.T) {
	stop, addr, err := StartProfiles(ProfileConfig{HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp.StatusCode)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	_, _, err := StartProfiles(ProfileConfig{CPUFile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")})
	if err == nil {
		t.Fatal("expected error for uncreatable profile file")
	}
}
