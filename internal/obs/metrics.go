package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named monotonic counter. Increments are atomic so the
// host side (reports, a live CLI) can read while the data plane writes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram accumulates a distribution over fixed bucket bounds. It is
// single-writer (the pipeline clock loop); readers that race the writer
// get approximate totals, which is what a live metrics dump wants.
type Histogram struct {
	bounds []uint64 // inclusive upper bounds; an implicit +inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram builds a histogram over the given sorted upper bounds.
func NewHistogram(bounds []uint64) *Histogram {
	h := &Histogram{bounds: append([]uint64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile: the bound of the
// bucket the quantile falls in (Max for the overflow bucket). q is
// clamped to [0, 1].
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// Buckets returns (bound, count) pairs including the +inf bucket
// (bound reported as ^uint64(0)).
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	bounds := make([]uint64, len(h.counts))
	counts := make([]uint64, len(h.counts))
	copy(bounds, h.bounds)
	bounds[len(bounds)-1] = ^uint64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start and multiplying by factor (at least 1 step per bucket).
func ExpBuckets(start uint64, factor float64, n int) []uint64 {
	out := make([]uint64, 0, n)
	cur := float64(start)
	last := uint64(0)
	for i := 0; i < n; i++ {
		b := uint64(cur)
		if b <= last {
			b = last + 1
		}
		out = append(out, b)
		last = b
		cur *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+step, ...
func LinearBuckets(start, step uint64, n int) []uint64 {
	if step == 0 {
		step = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)*step
	}
	return out
}

// Registry is a namespace of counters and histograms. Get-or-create is
// idempotent, so producers resolve their instruments once at
// initialisation and hot paths touch only the instrument.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ctrs: map[string]*Counter{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value (0, false when the
// counter was never registered).
func (r *Registry) CounterValue(name string) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		return 0, false
	}
	return c.Value(), true
}

// HistogramByName returns the named histogram if registered.
func (r *Registry) HistogramByName(name string) (*Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	return h, ok
}

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.ctrs)+len(r.hists))
	for n := range r.ctrs {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Render writes a deterministic, sorted dump of every instrument — the
// output of `ehdl-sim -metrics`.
func (r *Registry) Render(w io.Writer) error {
	for _, name := range r.Names() {
		r.mu.Lock()
		c, isCtr := r.ctrs[name]
		h := r.hists[name]
		r.mu.Unlock()
		var err error
		if isCtr {
			_, err = fmt.Fprintf(w, "%-36s %d\n", name, c.Value())
		} else {
			_, err = fmt.Fprintf(w, "%-36s count=%d mean=%.1f p50=%d p99=%d max=%d\n",
				name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
