package vm

import (
	"fmt"

	"ehdl/internal/ebpf"
)

// Exported address-space layout, shared with the hardware simulator so
// register values are bit-identical between the golden model and the
// pipeline.
const (
	CtxBase        = ctxBase
	PacketBase     = packetBase
	StackTopAddr   = stackTop
	MapPtrBase     = mapPtrBase
	MapValueBase   = mapValBase
	MapValueStride = mapStride
)

// State is the architectural state of one program execution: the
// register file, the stack frame and the packet.
type State struct {
	Regs  [ebpf.NumRegisters]uint64
	Stack [ebpf.StackSize]byte
	Pkt   *Packet
}

// NewState initialises the architectural inputs for one run over pkt.
func NewState(pkt *Packet) *State {
	st := &State{Pkt: pkt}
	st.Regs[ebpf.R1] = CtxBase
	st.Regs[ebpf.R10] = StackTopAddr
	return st
}

// Clone deep-copies the state (for pipeline flush snapshots).
func (s *State) Clone() *State {
	c := *s
	pkt := *s.Pkt
	pkt.buf = append([]byte(nil), s.Pkt.buf...)
	c.Pkt = &pkt
	return &c
}

// EvalALU computes one ALU/ALU64 instruction over explicit operand
// values, returning the new destination value. It is a pure function of
// its inputs.
func EvalALU(ins ebpf.Instruction, dst, src uint64) (uint64, error) {
	is64 := ins.Class() == ebpf.ClassALU64
	op := ins.ALUOp()
	if op == ebpf.ALUEnd {
		// Byte-order conversions read the full register regardless of
		// class and truncate to their own width.
		return byteSwap(dst, ins.Imm, ins.Source() == ebpf.SourceX), nil
	}
	if !is64 {
		src = uint64(uint32(src))
		dst = uint64(uint32(dst))
	}
	var out uint64
	switch op {
	case ebpf.ALUAdd:
		out = dst + src
	case ebpf.ALUSub:
		out = dst - src
	case ebpf.ALUMul:
		out = dst * src
	case ebpf.ALUDiv:
		if src == 0 {
			out = 0
		} else {
			out = dst / src
		}
	case ebpf.ALUMod:
		if src == 0 {
			out = dst
		} else {
			out = dst % src
		}
	case ebpf.ALUOr:
		out = dst | src
	case ebpf.ALUAnd:
		out = dst & src
	case ebpf.ALUXor:
		out = dst ^ src
	case ebpf.ALULsh:
		out = dst << (src & shiftMask(is64))
	case ebpf.ALURsh:
		out = dst >> (src & shiftMask(is64))
	case ebpf.ALUArsh:
		if is64 {
			out = uint64(int64(dst) >> (src & 63))
		} else {
			out = uint64(uint32(int32(uint32(dst)) >> (src & 31)))
		}
	case ebpf.ALUNeg:
		out = -dst
	case ebpf.ALUMov:
		out = src
	case ebpf.ALUEnd:
		return byteSwap(dst, ins.Imm, ins.Source() == ebpf.SourceX), nil
	default:
		return 0, fmt.Errorf("unsupported alu op %v", op)
	}
	if !is64 {
		out = uint64(uint32(out))
	}
	return out, nil
}

// ExecALU applies an ALU instruction to a state in place.
func ExecALU(st *State, ins ebpf.Instruction) error {
	var src uint64
	if ins.Source() == ebpf.SourceX {
		src = st.Regs[ins.Src]
	} else {
		src = uint64(int64(ins.Imm))
	}
	out, err := EvalALU(ins, st.Regs[ins.Dst], src)
	if err != nil {
		return err
	}
	st.Regs[ins.Dst] = out
	return nil
}

// EvalBranch evaluates a conditional branch against a state.
func EvalBranch(st *State, ins ebpf.Instruction) (bool, error) {
	is32 := ins.Class() == ebpf.ClassJMP32
	lhs := st.Regs[ins.Dst]
	var rhs uint64
	if ins.Source() == ebpf.SourceX {
		rhs = st.Regs[ins.Src]
	} else {
		rhs = uint64(int64(ins.Imm))
	}
	if is32 {
		lhs = uint64(uint32(lhs))
		rhs = uint64(uint32(rhs))
	}
	return Compare(ins.JumpOp(), lhs, rhs, is32)
}

// StackSlice returns the stack bytes at an R10-relative offset.
func (s *State) StackSlice(off int64, size int) ([]byte, error) {
	lo := int(off) + ebpf.StackSize
	if lo < 0 || lo+size > ebpf.StackSize {
		return nil, fmt.Errorf("vm: stack slice [%d,%d) out of frame", off, off+int64(size))
	}
	return s.Stack[lo : lo+size], nil
}
