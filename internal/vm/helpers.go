package vm

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
)

// enosys is the negative errno helpers return on failure, as a 64-bit
// register value.
const enosys = ^uint64(0) // -1

// ExecContext bundles the ambient environment a program executes in; it
// is shared between the interpreter and the pipeline simulator.
type ExecContext struct {
	Env *Env
	Mem *MemSpace
}

// CallHelper dispatches a helper function against a state. It returns a
// non-zero ifindex when the helper established a redirect target.
// R1-R5 are scratched after the call, per the eBPF calling convention.
func (c *ExecContext) CallHelper(st *State, id ebpf.HelperID) (redirect uint32, err error) {
	defer func() {
		for r := ebpf.R1; r <= ebpf.R5; r++ {
			st.Regs[r] = 0
		}
	}()

	switch id {
	case ebpf.HelperMapLookupElem:
		mapID, mp, err := c.mapArg(st)
		if err != nil {
			return 0, err
		}
		key, err := c.Mem.ReadBytes(st, st.Regs[ebpf.R2], mp.Spec().KeySize)
		if err != nil {
			return 0, fmt.Errorf("bpf_map_lookup_elem key: %w", err)
		}
		st.Regs[ebpf.R0] = c.LookupValueAddr(mapID, key)
		return 0, nil

	case ebpf.HelperMapUpdateElem:
		mapID, mp, err := c.mapArg(st)
		if err != nil {
			return 0, err
		}
		key, err := c.Mem.ReadBytes(st, st.Regs[ebpf.R2], mp.Spec().KeySize)
		if err != nil {
			return 0, fmt.Errorf("bpf_map_update_elem key: %w", err)
		}
		val, err := c.Mem.ReadBytes(st, st.Regs[ebpf.R3], mp.Spec().ValueSize)
		if err != nil {
			return 0, fmt.Errorf("bpf_map_update_elem value: %w", err)
		}
		st.Regs[ebpf.R0] = c.UpdateResult(mapID, key, val, maps.UpdateFlag(st.Regs[ebpf.R4]))
		return 0, nil

	case ebpf.HelperMapDeleteElem:
		mapID, mp, err := c.mapArg(st)
		if err != nil {
			return 0, err
		}
		key, err := c.Mem.ReadBytes(st, st.Regs[ebpf.R2], mp.Spec().KeySize)
		if err != nil {
			return 0, fmt.Errorf("bpf_map_delete_elem key: %w", err)
		}
		st.Regs[ebpf.R0] = c.DeleteResult(mapID, key)
		return 0, nil

	case ebpf.HelperKtimeGetNs, ebpf.HelperKtimeGetBootNs, ebpf.HelperKtimeGetCoarseNs:
		st.Regs[ebpf.R0] = c.Env.now()
		return 0, nil
	case ebpf.HelperJiffies64:
		st.Regs[ebpf.R0] = c.Env.now() / 4_000_000 // 250 HZ
		return 0, nil
	case ebpf.HelperGetPrandomU32:
		st.Regs[ebpf.R0] = uint64(c.Env.prandom())
		return 0, nil
	case ebpf.HelperGetSMPProcessorID:
		st.Regs[ebpf.R0] = 0
		return 0, nil
	case ebpf.HelperRedirect:
		ifindex := uint32(st.Regs[ebpf.R1])
		st.Regs[ebpf.R0] = uint64(ebpf.XDPRedirect)
		return ifindex, nil
	case ebpf.HelperRedirectMap:
		return c.redirectMap(st)
	case ebpf.HelperXDPAdjustHead:
		delta := int(int32(uint32(st.Regs[ebpf.R2])))
		if err := st.Pkt.AdjustHead(delta); err != nil {
			st.Regs[ebpf.R0] = enosys
			return 0, nil
		}
		st.Regs[ebpf.R0] = 0
		return 0, nil
	case ebpf.HelperXDPAdjustTail:
		delta := int(int32(uint32(st.Regs[ebpf.R2])))
		if err := st.Pkt.AdjustTail(delta); err != nil {
			st.Regs[ebpf.R0] = enosys
			return 0, nil
		}
		st.Regs[ebpf.R0] = 0
		return 0, nil
	}
	return 0, fmt.Errorf("unsupported helper %s", id.Name())
}

// LookupValueAddr performs a map lookup by explicit key, returning the
// stable value address (0 on miss). The pipeline simulator calls this
// directly with keys taken from static stack slots.
func (c *ExecContext) LookupValueAddr(mapID int, key []byte) uint64 {
	mp, ok := c.Env.Maps.ByID(mapID)
	if !ok {
		return 0
	}
	val, ok := mp.Lookup(key)
	if !ok {
		return 0
	}
	return c.Mem.ValueAddress(mapID, string(key), val)
}

// UpdateResult performs a map update by explicit key/value, returning
// the helper's R0 (0 on success, -1 on failure).
func (c *ExecContext) UpdateResult(mapID int, key, val []byte, flag maps.UpdateFlag) uint64 {
	mp, ok := c.Env.Maps.ByID(mapID)
	if !ok {
		return enosys
	}
	if err := mp.Update(key, val, flag); err != nil {
		return enosys
	}
	return 0
}

// DeleteResult performs a map delete by explicit key, returning R0.
func (c *ExecContext) DeleteResult(mapID int, key []byte) uint64 {
	mp, ok := c.Env.Maps.ByID(mapID)
	if !ok {
		return enosys
	}
	if err := mp.Delete(key); err != nil {
		return enosys
	}
	return 0
}

// mapArg resolves the map pointer in a helper's R1.
func (c *ExecContext) mapArg(st *State) (int, maps.Map, error) {
	ptr := st.Regs[ebpf.R1]
	if ptr < mapPtrBase || ptr >= mapPtrBase+uint64(c.Env.Maps.Len()) {
		return 0, nil, fmt.Errorf("helper R1 %#x is not a map pointer", ptr)
	}
	id := int(ptr - mapPtrBase)
	mp, _ := c.Env.Maps.ByID(id)
	return id, mp, nil
}

// redirectMap implements bpf_redirect_map over a DEVMAP: the key in R2
// selects an entry whose value is the target ifindex.
func (c *ExecContext) redirectMap(st *State) (uint32, error) {
	_, mp, err := c.mapArg(st)
	if err != nil {
		return 0, err
	}
	var key [4]byte
	binary.LittleEndian.PutUint32(key[:], uint32(st.Regs[ebpf.R2]))
	val, ok := mp.Lookup(key[:])
	if ok && len(val) >= 4 {
		if ifindex := binary.LittleEndian.Uint32(val); ifindex != 0 {
			st.Regs[ebpf.R0] = uint64(ebpf.XDPRedirect)
			return ifindex, nil
		}
	}
	// Unset slot: return the flags argument, matching the kernel's
	// "return flags on miss" behaviour.
	st.Regs[ebpf.R0] = st.Regs[ebpf.R3]
	return 0, nil
}
