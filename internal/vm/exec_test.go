package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ehdl/internal/ebpf"
)

func TestStateClone(t *testing.T) {
	st := NewState(NewPacket([]byte{1, 2, 3, 4}))
	st.Regs[ebpf.R5] = 99
	st.Stack[0] = 7

	c := st.Clone()
	c.Regs[ebpf.R5] = 1
	c.Stack[0] = 2
	c.Pkt.Bytes()[0] = 0xff

	if st.Regs[ebpf.R5] != 99 || st.Stack[0] != 7 {
		t.Error("clone aliases registers or stack")
	}
	if st.Pkt.Bytes()[0] != 1 {
		t.Error("clone aliases the packet buffer")
	}
	if c.Regs[ebpf.R1] != CtxBase || c.Regs[ebpf.R10] != StackTopAddr {
		t.Error("clone lost the architectural inputs")
	}
}

func TestStackSlice(t *testing.T) {
	st := NewState(NewPacket(make([]byte, 64)))
	b, err := st.StackSlice(-8, 8)
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 0xaa
	if st.Stack[ebpf.StackSize-8] != 0xaa {
		t.Error("StackSlice does not alias the frame")
	}
	if _, err := st.StackSlice(-520, 8); err == nil {
		t.Error("accepted a slice below the frame")
	}
	if _, err := st.StackSlice(-4, 8); err == nil {
		t.Error("accepted a slice crossing the frame top")
	}
}

// TestPropertyEvalALUMatchesInterpreter cross-checks the pure evaluator
// against direct semantics for every operation.
func TestPropertyEvalALUMatchesInterpreter(t *testing.T) {
	ops := []ebpf.ALUOp{ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUMul, ebpf.ALUDiv, ebpf.ALUMod,
		ebpf.ALUOr, ebpf.ALUAnd, ebpf.ALUXor, ebpf.ALULsh, ebpf.ALURsh, ebpf.ALUArsh, ebpf.ALUMov}
	model := func(op ebpf.ALUOp, is64 bool, dst, src uint64) uint64 {
		if !is64 {
			dst, src = uint64(uint32(dst)), uint64(uint32(src))
		}
		var out uint64
		switch op {
		case ebpf.ALUAdd:
			out = dst + src
		case ebpf.ALUSub:
			out = dst - src
		case ebpf.ALUMul:
			out = dst * src
		case ebpf.ALUDiv:
			if src == 0 {
				out = 0
			} else {
				out = dst / src
			}
		case ebpf.ALUMod:
			if src == 0 {
				out = dst
			} else {
				out = dst % src
			}
		case ebpf.ALUOr:
			out = dst | src
		case ebpf.ALUAnd:
			out = dst & src
		case ebpf.ALUXor:
			out = dst ^ src
		case ebpf.ALULsh:
			if is64 {
				out = dst << (src & 63)
			} else {
				out = dst << (src & 31)
			}
		case ebpf.ALURsh:
			if is64 {
				out = dst >> (src & 63)
			} else {
				out = dst >> (src & 31)
			}
		case ebpf.ALUArsh:
			if is64 {
				out = uint64(int64(dst) >> (src & 63))
			} else {
				out = uint64(uint32(int32(uint32(dst)) >> (src & 31)))
			}
		case ebpf.ALUMov:
			out = src
		}
		if !is64 {
			out = uint64(uint32(out))
		}
		return out
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := ops[r.Intn(len(ops))]
		is64 := r.Intn(2) == 0
		dst, src := r.Uint64(), r.Uint64()
		var ins ebpf.Instruction
		if is64 {
			ins = ebpf.ALU64Reg(op, ebpf.R1, ebpf.R2)
		} else {
			ins = ebpf.ALU32Reg(op, ebpf.R1, ebpf.R2)
		}
		got, err := EvalALU(ins, dst, src)
		return err == nil && got == model(op, is64, dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyByteSwapInvolution(t *testing.T) {
	f := func(v uint64, pick uint8) bool {
		width := []int32{16, 32, 64}[pick%3]
		ins := ebpf.Swap(ebpf.R1, ebpf.SourceX, width) // to big-endian
		once, err := EvalALU(ins, v, 0)
		if err != nil {
			return false
		}
		twice, err := EvalALU(ins, once, 0)
		if err != nil {
			return false
		}
		// Double swap truncates to the width but is otherwise identity.
		var mask uint64
		switch width {
		case 16:
			mask = 0xffff
		case 32:
			mask = 0xffffffff
		default:
			mask = ^uint64(0)
		}
		return twice == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAdjustHeadBounds(t *testing.T) {
	p := NewPacket(make([]byte, 64))
	if err := p.AdjustHead(-DefaultHeadroom - 1); err == nil {
		t.Error("grew past the headroom")
	}
	if err := p.AdjustHead(65); err == nil {
		t.Error("shrank past the data")
	}
	if err := p.AdjustHead(-16); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 80 {
		t.Errorf("len = %d, want 80", p.Len())
	}
	if err := p.AdjustTail(-80); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Errorf("len = %d after trimming everything", p.Len())
	}
	if err := p.AdjustTail(1 << 20); err == nil {
		t.Error("grew the tail past the buffer")
	}
}

func TestMapPointerValues(t *testing.T) {
	if MapPointer(0) == 0 || MapPointer(1) == MapPointer(0) {
		t.Error("map pointers must be distinct non-NULL values")
	}
}
