package vm

import (
	"encoding/binary"
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
)

func runSrc(t *testing.T, src string, fixup func(*Env)) (Result, *Env) {
	t.Helper()
	prog, err := asm.Assemble("h", src)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fixup != nil {
		fixup(env)
	}
	m, err := New(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(NewPacket(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	return res, env
}

func TestRedirectMapHelper(t *testing.T) {
	src := `
map tx devmap key=4 value=4 entries=8
r1 = map[tx] ll
r2 = 3
r3 = 0
call bpf_redirect_map
exit
`
	res, _ := runSrc(t, src, func(env *Env) {
		tx, _ := env.Maps.ByName("tx")
		key := make([]byte, 4)
		binary.LittleEndian.PutUint32(key, 3)
		val := make([]byte, 4)
		binary.LittleEndian.PutUint32(val, 9)
		if err := tx.Update(key, val, maps.UpdateAny); err != nil {
			t.Fatal(err)
		}
	})
	if res.Action != ebpf.XDPRedirect || res.RedirectIfindex != 9 {
		t.Fatalf("redirect_map result = %+v", res)
	}
	// Miss: the flags argument comes back.
	missSrc := `
map tx devmap key=4 value=4 entries=8
r1 = map[tx] ll
r2 = 7
r3 = 2
call bpf_redirect_map
exit
`
	res, _ = runSrc(t, missSrc, nil)
	if res.Action != ebpf.XDPPass {
		t.Fatalf("redirect_map miss = %v, want the flags value (XDP_PASS)", res.Action)
	}
}

func TestTimeHelpers(t *testing.T) {
	res, _ := runSrc(t, "call bpf_ktime_get_ns\nr6 = r0\ncall bpf_ktime_get_ns\nr0 -= r6\nexit", nil)
	if res.Action == 0 {
		t.Error("the logical clock did not advance between samples")
	}
	res, _ = runSrc(t, "call bpf_jiffies64\nexit", func(env *Env) {
		env.Now = func() uint64 { return 8_000_000 }
	})
	if res.Action != 2 {
		t.Errorf("jiffies at 8ms = %v, want 2 at 250 HZ", res.Action)
	}
}

func TestPrandomIsDeterministicPerEnv(t *testing.T) {
	res1, _ := runSrc(t, "call bpf_get_prandom_u32\nr0 &= 0xffff\nexit", nil)
	res2, _ := runSrc(t, "call bpf_get_prandom_u32\nr0 &= 0xffff\nexit", nil)
	if res1.Action != res2.Action {
		t.Error("fresh environments must seed prandom identically")
	}
}

func TestSMPProcessorIDStub(t *testing.T) {
	res, _ := runSrc(t, "r0 = 7\ncall bpf_get_smp_processor_id\nexit", nil)
	if res.Action != 0 {
		t.Errorf("smp id = %v, want the single-core stub 0", res.Action)
	}
}

func TestXchgAndCmpXchg(t *testing.T) {
	src := `
*(u64 *)(r10 - 8) = 5
r2 = 9
r3 = r10
r3 += -8
lock xchg *(u64 *)(r3 + 0) r2
r6 = r2                       ; old value 5
r0 = 5                        ; expected for cmpxchg... wait r0 is compare operand
r2 = 11
lock cmpxchg *(u64 *)(r3 + 0) r2
r7 = r0                       ; old value (9): no swap since 9 != 5... 
r1 = *(u64 *)(r10 - 8)
r0 = r6
r0 <<= 16
r1 &= 0xffff
r0 |= r1
exit
`
	// xchg leaves 9; cmpxchg with r0=5 (expected) vs memory 9 fails;
	// memory stays 9. Result: old(5)<<16 | mem(9).
	res, _ := runSrc(t, src, nil)
	if uint32(res.Action) != 5<<16|9 {
		t.Fatalf("atomic exchange results = %#x, want %#x", uint32(res.Action), 5<<16|9)
	}
}

func TestCmpXchgSuccess(t *testing.T) {
	src := `
*(u64 *)(r10 - 8) = 5
r0 = 5                        ; matches memory: the swap happens
r2 = 11
r3 = r10
r3 += -8
lock cmpxchg *(u64 *)(r3 + 0) r2
r0 = *(u64 *)(r10 - 8)
exit
`
	res, _ := runSrc(t, src, nil)
	if res.Action != 11 {
		t.Fatalf("cmpxchg did not swap: memory = %v", res.Action)
	}
}

func TestUnsupportedHelperErrors(t *testing.T) {
	prog, err := asm.Assemble("bad", "call 69\nexit") // fib_lookup unimplemented
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	if _, err := m.Run(NewPacket(make([]byte, 64))); err == nil {
		t.Fatal("unsupported helper did not error")
	}
}
