package vm

import (
	"encoding/binary"
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
)

const toySource = `
map stats array key=4 value=8 entries=4

r2 = *(u32 *)(r1 + 4)
r1 = *(u32 *)(r1 + 0)
r3 = 0
*(u32 *)(r10 - 4) = r3
r2 = *(u8 *)(r1 + 13)
r1 = *(u8 *)(r1 + 12)
r1 <<= 8
r1 |= r2
if r1 == 34525 goto ipv6
if r1 == 2054 goto arp
if r1 != 2048 goto lookup
r1 = 1
goto store
ipv6:
r1 = 2
goto store
arp:
r1 = 3
store:
*(u32 *)(r10 - 4) = r1
lookup:
r2 = r10
r2 += -4
r1 = map[stats] ll
call 1
r1 = r0
r0 = 3
if r1 == 0 goto out
r2 = 1
lock *(u64 *)(r1 + 0) += r2
out:
exit
`

// ethFrame builds a minimal Ethernet frame with the given EtherType.
func ethFrame(etherType uint16, payload int) []byte {
	pkt := make([]byte, 14+payload)
	binary.BigEndian.PutUint16(pkt[12:14], etherType)
	return pkt
}

func newToyMachine(t *testing.T) (*Machine, *Env) {
	t.Helper()
	prog, err := asm.Assemble("toy", toySource)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	return m, env
}

func TestToyProgramCountsProtocols(t *testing.T) {
	m, env := newToyMachine(t)

	// The toy program reads the EtherType byte-by-byte and assembles it
	// little-endian-swapped: key 1 for IPv4, 2 for IPv6, 3 for ARP,
	// 0 otherwise. Note the byte order: pkt[12]<<0 | pkt[13]<<8 after
	// the shifts in the program give the big-endian value.
	runs := []struct {
		etherType uint16
		times     int
	}{
		{ebpf.EthPIP, 3},
		{ebpf.EthPIPV6, 2},
		{ebpf.EthPARP, 1},
		{0x88cc, 4}, // LLDP falls in the default bucket
	}
	for _, r := range runs {
		for i := 0; i < r.times; i++ {
			res, err := m.Run(NewPacket(ethFrame(r.etherType, 46)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Action != ebpf.XDPTx {
				t.Fatalf("action = %v, want XDP_TX", res.Action)
			}
		}
	}

	stats, _ := env.Maps.ByName("stats")
	want := map[uint32]uint64{0: 4, 1: 3, 2: 2, 3: 1}
	for key, count := range want {
		var k [4]byte
		binary.LittleEndian.PutUint32(k[:], key)
		v, ok := stats.Lookup(k[:])
		if !ok {
			t.Fatalf("stats[%d] missing", key)
		}
		if got := binary.LittleEndian.Uint64(v); got != count {
			t.Errorf("stats[%d] = %d, want %d", key, got, count)
		}
	}
}

func TestALUSemantics(t *testing.T) {
	run := func(t *testing.T, src string) uint64 {
		t.Helper()
		prog, err := asm.Assemble("alu", src+"\nexit")
		if err != nil {
			t.Fatal(err)
		}
		env, _ := NewEnv(prog)
		m, err := New(prog, env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(NewPacket(make([]byte, 64)))
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.Action)
	}

	cases := []struct {
		name string
		src  string
		want uint32
	}{
		{"add", "r0 = 40\nr0 += 2", 42},
		{"sub wrap", "r0 = 1\nr0 -= 2\nr0 &= 0xff", 0xff},
		{"mul", "r0 = 6\nr0 *= 7", 42},
		{"div", "r0 = 85\nr0 /= 2", 42},
		{"div by zero", "r0 = 85\nr1 = 0\nr0 /= r1", 0},
		{"mod", "r0 = 85\nr0 %= 43", 42},
		{"mod by zero", "r0 = 85\nr1 = 0\nr0 %= r1", 85},
		{"lsh mask", "r0 = 1\nr1 = 65\nr0 <<= r1\nr0 &= 0xff", 2}, // 65 & 63 == 1
		{"arsh", "r0 = -8\nr0 s>>= 1\nr0 &= 0xffff", 0xfffc},
		{"neg", "r0 = 5\nr0 = -r0\nr0 &= 0xff", 0xfb},
		{"mov32 zero extends", "r0 = -1\nw0 = 7", 7},
		{"alu32 wraps", "w0 = -1\nw0 += 1", 0},
		{"be16", "r0 = 0x1234\nr0 = be16 r0", 0x3412},
		{"le16 truncates", "r0 = 0x51234 ll\nr0 = le16 r0", 0x1234},
		{"xor clears", "r0 = 99\nr0 ^= r0", 0},
		{"32bit div", "w0 = 100\nw1 = 3\nw0 /= w1", 33},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(t, c.src); uint32(got) != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestBranchSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint32
	}{
		{"taken eq", "r0 = 0\nr1 = 5\nif r1 == 5 goto +1\nr0 = 9\nexit", 0},
		{"not taken", "r0 = 0\nr1 = 4\nif r1 == 5 goto +1\nr0 = 9\nexit", 9},
		{"signed gt", "r0 = 0\nr1 = -1\nif r1 s> 0 goto +1\nr0 = 9\nexit", 9},
		{"unsigned gt", "r0 = 0\nr1 = -1\nif r1 > 0 goto +1\nr0 = 9\nexit", 0},
		{"jset", "r0 = 0\nr1 = 6\nif r1 & 2 goto +1\nr0 = 9\nexit", 0},
		{"jmp32", "r0 = 0\nr1 = 0x100000001 ll\nif w1 == 1 goto +1\nr0 = 9\nexit", 0},
		{"jmp64 differs", "r0 = 0\nr1 = 0x100000001 ll\nif r1 == 1 goto +1\nr0 = 9\nexit", 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := asm.Assemble("b", c.src)
			if err != nil {
				t.Fatal(err)
			}
			env, _ := NewEnv(prog)
			m, _ := New(prog, env)
			res, err := m.Run(NewPacket(make([]byte, 64)))
			if err != nil {
				t.Fatal(err)
			}
			if uint32(res.Action) != c.want {
				t.Errorf("r0 = %d, want %d", res.Action, c.want)
			}
		})
	}
}

func TestPacketBoundsEnforced(t *testing.T) {
	prog, err := asm.Assemble("oob", `
r1 = *(u32 *)(r1 + 0)
r0 = *(u64 *)(r1 + 60)  ; 8 bytes at offset 60 of a 64-byte packet: ok
r0 = *(u64 *)(r1 + 61)  ; crosses the end: must fault
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	if _, err := m.Run(NewPacket(make([]byte, 64))); err == nil {
		t.Fatal("out-of-bounds packet read did not fault")
	}
}

func TestStackBoundsEnforced(t *testing.T) {
	for _, src := range []string{
		"*(u64 *)(r10 - 520) = 0\nexit", // below the frame
		"*(u64 *)(r10 + 0) = 0\nexit",   // at/above the frame pointer
	} {
		prog, err := asm.Assemble("stack", "r0 = 0\n"+src)
		if err != nil {
			t.Fatal(err)
		}
		env, _ := NewEnv(prog)
		m, _ := New(prog, env)
		if _, err := m.Run(NewPacket(make([]byte, 64))); err == nil {
			t.Errorf("stack violation %q did not fault", src)
		}
	}
}

func TestCtxIsReadOnly(t *testing.T) {
	prog, err := asm.Assemble("ctxw", "r0 = 0\n*(u32 *)(r1 + 0) = 1\nexit")
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	if _, err := m.Run(NewPacket(make([]byte, 64))); err == nil {
		t.Fatal("store to xdp_md did not fault")
	}
}

func TestCallScratchesArgumentRegisters(t *testing.T) {
	prog, err := asm.Assemble("scratch", `
r1 = 7
r2 = 8
call bpf_ktime_get_ns
r0 = r1
r0 += r2
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	res, err := m.Run(NewPacket(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Errorf("R1/R2 survived a helper call: r0 = %d", res.Action)
	}
}

func TestAdjustHead(t *testing.T) {
	prog, err := asm.Assemble("adj", `
r6 = r1
r2 = -4
call bpf_xdp_adjust_head
if r0 != 0 goto fail
r1 = *(u32 *)(r6 + 0)
r2 = *(u32 *)(r6 + 4)
r0 = r2
r0 -= r1       ; new packet length
exit
fail:
r0 = 0
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	res, err := m.Run(NewPacket(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 68 {
		t.Errorf("adjusted length = %d, want 68", res.Action)
	}
}

func TestRedirect(t *testing.T) {
	prog, err := asm.Assemble("redir", `
r1 = 3
r2 = 0
call bpf_redirect
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	res, err := m.Run(NewPacket(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPRedirect {
		t.Errorf("action = %v, want XDP_REDIRECT", res.Action)
	}
	if res.RedirectIfindex != 3 {
		t.Errorf("redirect ifindex = %d, want 3", res.RedirectIfindex)
	}
}

func TestMapUpdateDeleteFromProgram(t *testing.T) {
	prog, err := asm.Assemble("upd", `
map conn hash key=4 value=8 entries=16

*(u32 *)(r10 - 4) = 77       ; key
*(u64 *)(r10 - 16) = 123     ; value
r1 = map[conn] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -16
r4 = 0
call 2                        ; update
r6 = r0
r1 = map[conn] ll
r2 = r10
r2 += -4
call 1                        ; lookup
if r0 == 0 goto miss
r0 = *(u64 *)(r0 + 0)
exit
miss:
r0 = 0
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	res, err := m.Run(NewPacket(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 123 {
		t.Errorf("lookup after update = %d, want 123", res.Action)
	}
	if res.HelperCalls != 2 {
		t.Errorf("helper calls = %d, want 2", res.HelperCalls)
	}
}

func TestWriteThroughLookupPointer(t *testing.T) {
	m, env := newToyMachine(t)
	// Two runs with the same EtherType hit the same map entry through
	// the pointer returned by lookup; the atomic add must accumulate.
	for i := 0; i < 2; i++ {
		if _, err := m.Run(NewPacket(ethFrame(ebpf.EthPIP, 46))); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ := env.Maps.ByName("stats")
	var k [4]byte
	binary.LittleEndian.PutUint32(k[:], 1)
	v, _ := stats.Lookup(k[:])
	if got := binary.LittleEndian.Uint64(v); got != 2 {
		t.Errorf("accumulated count = %d, want 2", got)
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := asm.Assemble("loop", "r0 = 0\nback:\ngoto back\nexit")
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	m.StepLimit = 100
	if _, err := m.Run(NewPacket(make([]byte, 64))); err == nil {
		t.Fatal("infinite loop did not hit the step limit")
	}
}

func TestTraceCollection(t *testing.T) {
	m, _ := newToyMachine(t)
	m.CollectTrace = true
	res, err := m.Run(NewPacket(ethFrame(ebpf.EthPARP, 46)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Steps {
		t.Errorf("trace length %d != steps %d", len(res.Trace), res.Steps)
	}
	if res.Trace[0] != 0 {
		t.Errorf("trace starts at %d, want 0", res.Trace[0])
	}
}

func TestAtomicFetchVariants(t *testing.T) {
	prog, err := asm.Assemble("atomics", `
*(u64 *)(r10 - 8) = 10
r2 = 5
r3 = r10
r3 += -8
lock *(u64 *)(r3 + 0) += r2 fetch
r0 = r2                      ; old value: 10
r1 = *(u64 *)(r10 - 8)       ; new value: 15
r0 <<= 8
r0 |= r1
exit
`)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnv(prog)
	m, _ := New(prog, env)
	res, err := m.Run(NewPacket(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res.Action) != 10<<8|15 {
		t.Errorf("fetch-add result = %#x, want %#x", uint32(res.Action), 10<<8|15)
	}
}
