package vm

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
)

// regionKind classifies a virtual address.
type regionKind int

// Memory regions of the virtual address space.
const (
	regionInvalid regionKind = iota
	RegionCtx
	RegionPacket
	RegionStack
	RegionMapValue
)

// MemSpace implements the eBPF virtual address space over a map set:
// context, packet, stack and pointer-stable map value regions. It is
// shared between the interpreter and the hardware pipeline simulator so
// both produce bit-identical register values.
type MemSpace struct {
	maps    *maps.Set
	handles []mapHandleTable
}

type mapHandleTable struct {
	byKey  map[string]int
	values [][]byte
	stride uint64
}

// NewMemSpace builds the address space for a program's declared maps.
func NewMemSpace(prog *ebpf.Program, set *maps.Set) *MemSpace {
	m := &MemSpace{maps: set}
	m.handles = make([]mapHandleTable, len(prog.Maps))
	for i, spec := range prog.Maps {
		stride := uint64((spec.ValueSize + 7) &^ 7)
		if stride == 0 {
			stride = 8
		}
		m.handles[i] = mapHandleTable{byKey: make(map[string]int), stride: stride}
	}
	return m
}

// Maps returns the underlying map set.
func (m *MemSpace) Maps() *maps.Set { return m.maps }

// Resolve classifies addr and returns the backing byte slice (nil for
// the context region) together with the offset of addr within it.
func (m *MemSpace) Resolve(st *State, addr uint64, size int) (regionKind, []byte, int, error) {
	switch {
	case addr >= ctxBase && addr+uint64(size) <= ctxBase+ebpf.XDPMDSize:
		return RegionCtx, nil, int(addr - ctxBase), nil

	case addr >= stackTop-ebpf.StackSize && addr+uint64(size) <= stackTop:
		off := int(addr - (stackTop - ebpf.StackSize))
		return RegionStack, st.Stack[:], off, nil

	case addr >= packetBase && addr < packetBase+uint64(len(st.Pkt.buf)):
		idx := int(addr - packetBase)
		if idx < st.Pkt.head || idx+size > st.Pkt.end {
			return regionInvalid, nil, 0, fmt.Errorf("packet access [%d,%d) outside data [%d,%d)",
				idx, idx+size, st.Pkt.head, st.Pkt.end)
		}
		return RegionPacket, st.Pkt.buf, idx, nil

	case addr >= mapValBase:
		rel := addr - mapValBase
		id := int(rel / mapStride)
		if id >= len(m.handles) {
			return regionInvalid, nil, 0, fmt.Errorf("map value address %#x beyond declared maps", addr)
		}
		tbl := &m.handles[id]
		inMap := rel % mapStride
		handle := int(inMap / tbl.stride)
		byteOff := int(inMap % tbl.stride)
		if handle >= len(tbl.values) {
			return regionInvalid, nil, 0, fmt.Errorf("dangling map value address %#x", addr)
		}
		val := tbl.values[handle]
		if byteOff+size > len(val) {
			return regionInvalid, nil, 0, fmt.Errorf("map value access [%d,%d) beyond value size %d",
				byteOff, byteOff+size, len(val))
		}
		return RegionMapValue, val, byteOff, nil
	}
	return regionInvalid, nil, 0, fmt.Errorf("invalid memory address %#x", addr)
}

// ValueAddress registers (or reuses) a stable virtual address for a map
// entry's value buffer.
func (m *MemSpace) ValueAddress(mapID int, key string, value []byte) uint64 {
	tbl := &m.handles[mapID]
	handle, ok := tbl.byKey[key]
	if !ok {
		handle = len(tbl.values)
		tbl.values = append(tbl.values, value)
		tbl.byKey[key] = handle
	} else {
		// Refresh in case the entry was deleted and re-created.
		tbl.values[handle] = value
	}
	return mapValBase + uint64(mapID)*mapStride + uint64(handle)*tbl.stride
}

// ValueAddressBytes is the allocation-free variant of ValueAddress for
// keys held in scratch buffers: the key is converted to a string only
// when a new handle is registered, so the steady state (every key seen
// before) performs no heap allocation. The compiled fast path depends
// on this on its per-packet happy path; the returned address is
// bit-identical to ValueAddress for the same (mapID, key).
func (m *MemSpace) ValueAddressBytes(mapID int, key, value []byte) uint64 {
	tbl := &m.handles[mapID]
	handle, ok := tbl.byKey[string(key)]
	if !ok {
		handle = len(tbl.values)
		tbl.values = append(tbl.values, value)
		tbl.byKey[string(key)] = handle
	} else {
		tbl.values[handle] = value
	}
	return mapValBase + uint64(mapID)*mapStride + uint64(handle)*tbl.stride
}

// Load executes a LDX instruction against a state.
func (m *MemSpace) Load(st *State, ins ebpf.Instruction) (uint64, error) {
	addr := st.Regs[ins.Src] + uint64(int64(ins.Off))
	return m.LoadAt(st, addr, ins.MemSize().Bytes())
}

// LoadAt reads size bytes at an explicit virtual address. The hardware
// simulator uses it for statically addressed accesses whose base
// register was elided.
func (m *MemSpace) LoadAt(st *State, addr uint64, size int) (uint64, error) {
	kind, mem, off, err := m.Resolve(st, addr, size)
	if err != nil {
		return 0, err
	}
	if kind == RegionCtx {
		return loadCtx(st, off, size)
	}
	return readUint(mem[off:], size), nil
}

// loadCtx synthesises the xdp_md fields.
func loadCtx(st *State, off, size int) (uint64, error) {
	if size != 4 {
		return 0, fmt.Errorf("xdp_md fields are 32-bit, got %d-byte access", size)
	}
	switch off {
	case ebpf.XDPMDData:
		return packetBase + uint64(st.Pkt.head), nil
	case ebpf.XDPMDDataEnd:
		return packetBase + uint64(st.Pkt.end), nil
	case ebpf.XDPMDDataMeta:
		return packetBase + uint64(st.Pkt.head), nil
	case ebpf.XDPMDIngressIfindex, ebpf.XDPMDRxQueueIndex, ebpf.XDPMDEgressIfindex:
		return 0, nil
	}
	return 0, fmt.Errorf("unaligned xdp_md access at offset %d", off)
}

// Store executes ST/STX instructions, including atomics.
func (m *MemSpace) Store(st *State, ins ebpf.Instruction) error {
	addr := st.Regs[ins.Dst] + uint64(int64(ins.Off))
	return m.StoreAt(st, ins, addr)
}

// StoreAt executes a store or atomic at an explicit virtual address.
func (m *MemSpace) StoreAt(st *State, ins ebpf.Instruction, addr uint64) error {
	size := ins.MemSize().Bytes()
	kind, mem, off, err := m.Resolve(st, addr, size)
	if err != nil {
		return err
	}
	if kind == RegionCtx {
		return fmt.Errorf("stores to xdp_md are not permitted")
	}

	if ins.IsAtomic() {
		return execAtomic(st, ins, mem[off:], size)
	}

	var v uint64
	if ins.Class() == ebpf.ClassST {
		v = uint64(int64(ins.Imm))
	} else {
		v = st.Regs[ins.Src]
	}
	writeUint(mem[off:], size, v)
	return nil
}

// execAtomic applies an atomic read-modify-write to mem in place.
func execAtomic(st *State, ins ebpf.Instruction, mem []byte, size int) error {
	op := ins.AtomicOp()
	old := readUint(mem, size)
	src := st.Regs[ins.Src]

	var updated uint64
	switch op &^ ebpf.AtomicFetch {
	case ebpf.AtomicAdd:
		updated = old + src
	case ebpf.AtomicOr:
		updated = old | src
	case ebpf.AtomicAnd:
		updated = old & src
	case ebpf.AtomicXor:
		updated = old ^ src
	default:
		switch op {
		case ebpf.AtomicXchg:
			st.Regs[ins.Src] = old
			writeUint(mem, size, src)
			return nil
		case ebpf.AtomicCmpXchg:
			expected := st.Regs[ebpf.R0]
			if size == 4 {
				expected = uint64(uint32(expected))
			}
			if old == expected {
				writeUint(mem, size, src)
			}
			st.Regs[ebpf.R0] = old
			return nil
		}
		return fmt.Errorf("unsupported atomic op %v", op)
	}
	writeUint(mem, size, updated)
	if op&ebpf.AtomicFetch != 0 {
		st.Regs[ins.Src] = old
	}
	return nil
}

// ReadBytes copies n bytes starting at addr, for helper key/value
// arguments.
func (m *MemSpace) ReadBytes(st *State, addr uint64, n int) ([]byte, error) {
	kind, mem, off, err := m.Resolve(st, addr, n)
	if err != nil {
		return nil, err
	}
	if kind == RegionCtx {
		return nil, fmt.Errorf("helper argument points into xdp_md")
	}
	out := make([]byte, n)
	copy(out, mem[off:off+n])
	return out, nil
}

// readUint reads a little-endian unsigned value of the given byte width.
func readUint(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

// writeUint writes a little-endian unsigned value of the given width.
func writeUint(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

// ReadUint and WriteUint expose the little-endian accessors for the
// simulator's map blocks.
func ReadUint(b []byte, size int) uint64     { return readUint(b, size) }
func WriteUint(b []byte, size int, v uint64) { writeUint(b, size, v) }
