package tenant

import (
	"encoding/json"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/conformance"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/protect"
)

// noisyNeighborSpecs is the shared fixture for the noisy-neighbor gate:
// tenant A (the aggressor) runs under the full fault menu at intensity
// 0.9, tenant B (the victim) runs clean. Both runs of the gate feed the
// SAME mux stream built over both specs, so the victim sees
// byte-identical arrivals whether or not the aggressor is admitted.
func noisyNeighborSpecs(seed int64) (a, b Spec) {
	a = Spec{
		Name: "noisy", App: mustAppValue("toy"), Share: 0.5, VLAN: 100,
		Shell: nic.ShellConfig{
			Faults: faults.Profile(0.9, seed),
			Sim: hwsim.Config{
				Protection:            protect.LevelECC,
				ScrubCyclesPerWord:    4,
				WatchdogCycles:        8, // hair-trigger: faults regularly escalate to drain-and-restart
				MaxRecoveries:         -1, // unbounded: the aggressor thrashes but survives
				RecoveryBackoffCycles: 32,
			},
		},
	}
	b = Spec{Name: "victim", App: mustAppValue("firewall"), Share: 0.5, VLAN: 200}
	return a, b
}

func mustAppValue(name string) *apps.App {
	a, ok := apps.ByName(name)
	if !ok {
		panic("unknown app " + name)
	}
	return a
}

// TestTenantNoisyNeighborChaosGate is the release gate for tenant
// isolation: tenant A is hammered with the full fault menu (SEUs in
// registers, stacks, packets and map words, malformed traffic, queue
// overflow bursts, flush storms) under load, and tenant B — on the same
// device, fed from the same interleaved arrival stream — must produce
// verdicts and map state bit-identical to a same-seed solo run with A
// absent. A's losses stay bounded and exactly accounted to A, and the
// whole run replays byte-identically.
func TestTenantNoisyNeighborChaosGate(t *testing.T) {
	const seed = 0x7e4a
	const packets = 512
	specA, specB := noisyNeighborSpecs(seed)

	run := func(withNoisy bool) (nic.Report, *Device) {
		d := NewDevice(DeviceConfig{Seed: seed, EpochPackets: 128})
		if withNoisy {
			if _, err := d.AdmitTenant(specA); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.AdmitTenant(specB); err != nil {
			t.Fatal(err)
		}
		mux := NewTrafficMux([]Spec{specA, specB}, seed)
		rep, err := d.RunLoad(mux.Next, packets, 50e6)
		if err != nil {
			t.Fatalf("withNoisy=%v: %v", withNoisy, err)
		}
		return rep, d
	}

	multi, dMulti := run(true)
	solo, dSolo := run(false)

	// The chaos campaign actually ran: the aggressor took faults and
	// recovered, otherwise the gate proves nothing.
	var noisy, victimMulti nic.TenantSlice
	for _, sl := range multi.PerTenant {
		switch sl.Name {
		case "noisy":
			noisy = sl
		case "victim":
			victimMulti = sl
		}
	}
	if noisy.FaultsInjected == 0 || noisy.Recoveries == 0 {
		t.Fatalf("aggressor untouched (faults %d, recoveries %d); campaign misconfigured",
			noisy.FaultsInjected, noisy.Recoveries)
	}

	// Loss is bounded and exactly accounted, per tenant and device-wide.
	if !multi.Accounted() {
		t.Errorf("multi-tenant ledger broken: %+v", multi)
	}
	for _, sl := range multi.PerTenant {
		if !sl.Accounted() {
			t.Errorf("tenant %s ledger broken: %+v", sl.Name, sl)
		}
	}
	if noisy.Lost+noisy.DownLoss > noisy.Steered+noisy.Sent {
		t.Errorf("aggressor loss unbounded: %+v", noisy)
	}
	if victimMulti.Lost != 0 || victimMulti.DownLoss != 0 {
		t.Errorf("victim charged losses under a neighbour's faults: %+v", victimMulti)
	}

	// Bit-identical victim verdicts: the victim's whole slice — counts,
	// latency, cycle counts, per-action verdicts — matches the solo run.
	var victimSolo nic.TenantSlice
	for _, sl := range solo.PerTenant {
		if sl.Name == "victim" {
			victimSolo = sl
		}
	}
	vm, err := json.Marshal(victimMulti)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := json.Marshal(victimSolo)
	if err != nil {
		t.Fatal(err)
	}
	if string(vm) != string(vs) {
		t.Errorf("victim verdicts diverge beside a noisy neighbour:\n multi %s\n solo  %s", vm, vs)
	}

	// Bit-identical victim map state.
	bMulti, _ := dMulti.TenantByName("victim")
	bSolo, _ := dSolo.TenantByName("victim")
	if err := conformance.CompareMaps(bSolo.Maps(), bMulti.Maps()); err != nil {
		t.Errorf("victim map state diverges beside a noisy neighbour: %v", err)
	}

	// In the solo run the aggressor's tagged frames hit no tenant: they
	// land in quarantine, never silently vanish.
	if solo.Quarantined == 0 || !solo.Accounted() {
		t.Errorf("solo run mis-ledgered the absent tenant's frames: %+v", solo)
	}

	// Byte-identical replay: a same-seed rerun of the full chaos run.
	replay, _ := run(true)
	rm, err := json.Marshal(multi)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := json.Marshal(replay)
	if err != nil {
		t.Fatal(err)
	}
	if string(rm) != string(rr) {
		t.Errorf("chaos run does not replay byte-identically:\n first  %s\n replay %s", rm, rr)
	}
}

// TestTenantIsolationAblation quantifies what the per-tenant token
// buckets buy: with isolation on, an oversubscribing aggressor sheds
// its own overload and the victim's grant is untouched; with the
// NoIsolation ablation (one shared FCFS pool), the aggressor drains the
// pool and starves the victim. The EXPERIMENTS.md noisy-neighbor table
// comes from this scenario.
func TestTenantIsolationAblation(t *testing.T) {
	const seed = 0xab1a
	aggressor := Spec{Name: "hog", App: mustAppValue("toy"), Share: 0.5, VLAN: 100}
	victim := Spec{Name: "victim", App: mustAppValue("firewall"), Share: 0.5, VLAN: 200}
	// The hog offers 3x its share of the stream.
	muxSpecs := []Spec{aggressor, victim}
	muxSpecs[0].Share = 0.75
	muxSpecs[1].Share = 0.25

	run := func(noIso bool) nic.Report {
		d := NewDevice(DeviceConfig{
			Seed: seed, EpochPackets: 128, EpochBudget: 64, NoIsolation: noIso,
		})
		if _, err := d.AdmitTenant(aggressor); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AdmitTenant(victim); err != nil {
			t.Fatal(err)
		}
		mux := NewTrafficMux(muxSpecs, seed)
		rep, err := d.RunLoad(mux.Next, 512, 50e6)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accounted() {
			t.Errorf("noIso=%v ledger broken: %+v", noIso, rep)
		}
		return rep
	}

	slice := func(rep nic.Report, name string) nic.TenantSlice {
		for _, sl := range rep.PerTenant {
			if sl.Name == name {
				return sl
			}
		}
		t.Fatalf("no slice for %s", name)
		return nic.TenantSlice{}
	}

	iso := run(false)
	shared := run(true)

	// Isolated: the hog is throttled to its share, the victim's smaller
	// demand fits its own bucket entirely.
	if slice(iso, "hog").Throttled == 0 {
		t.Errorf("isolated hog never throttled: %+v", slice(iso, "hog"))
	}
	if v := slice(iso, "victim"); v.Throttled != 0 || v.Received == 0 {
		t.Errorf("isolated victim shed traffic: %+v", v)
	}
	// Shared pool: the hog admitted first drains it; the victim starves.
	if v := slice(shared, "victim"); v.Throttled == 0 {
		t.Errorf("shared-pool victim was not starved: %+v", v)
	}
	isoV, sharedV := slice(iso, "victim").Received, slice(shared, "victim").Received
	if sharedV >= isoV {
		t.Errorf("ablation shows no benefit: victim served %d isolated vs %d shared", isoV, sharedV)
	}
}
