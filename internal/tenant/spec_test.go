package tenant

import (
	"math"
	"strings"
	"testing"

	"ehdl/internal/hdl"
	"ehdl/internal/nic"
)

// TestParseSpecList: the CLI spec grammar — explicit shares, share-less
// headroom splitting, naming and VLAN assignment — and every reject.
func TestParseSpecList(t *testing.T) {
	specs, err := ParseSpecList("firewall:0.5,toy:0.25,router:0.25", nic.ShellConfig{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	wantNames := []string{"firewall#0", "toy#1", "router#2"}
	wantShares := []float64{0.5, 0.25, 0.25}
	for i, sp := range specs {
		if sp.Name != wantNames[i] {
			t.Errorf("spec %d named %q, want %q", i, sp.Name, wantNames[i])
		}
		if sp.Share != wantShares[i] {
			t.Errorf("spec %d share %g, want %g", i, sp.Share, wantShares[i])
		}
		if sp.VLAN != uint16(100+i) {
			t.Errorf("spec %d VLAN %d, want %d", i, sp.VLAN, 100+i)
		}
		if sp.Shell.Queues != 2 {
			t.Errorf("spec %d lost the shell template: %+v", i, sp.Shell)
		}
	}

	// Share-less entries split the headroom the explicit share leaves.
	specs, err = ParseSpecList("firewall:0.5,toy,router", nic.ShellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs[1:] {
		if math.Abs(sp.Share-0.25) > 1e-9 {
			t.Errorf("%s got share %g, want 0.25 (half the 0.5 headroom)", sp.Name, sp.Share)
		}
	}

	for _, tc := range []struct {
		list, wantErr string
	}{
		{"", "empty entry"},
		{"firewall:0.5,,toy:0.5", "empty entry"},
		{"nosuchapp:0.5", "unknown application"},
		{"firewall:zero", "bad share"},
		{"firewall:0", "outside (0,1]"},
		{"firewall:1.5", "outside (0,1]"},
		{"firewall:1,toy", "no headroom"},
	} {
		_, err := ParseSpecList(tc.list, nic.ShellConfig{})
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSpecList(%q) = %v, want error containing %q", tc.list, err, tc.wantErr)
		}
	}
}

// TestDeviceAccessors: the small surface the CLIs and fleet controller
// read — tenant listing, epoch counter, shell handle, custom-FPGA and
// explicit-bucket configuration, the default-tenant stream tag, and the
// admission error's rendered message.
func TestDeviceAccessors(t *testing.T) {
	d := NewDevice(DeviceConfig{
		FPGA:        hdl.Device{LUTs: 200000, FFs: 400000, BRAM36: 500},
		BucketDepth: 7,
	})
	// A default tenant may omit its VLAN; its fault/jitter streams then
	// tag by admission index in the reserved >4094 space.
	tn, err := d.AdmitTenant(Spec{Name: "catchall", App: mustApp(t, "toy"), Share: 0.5, Default: true})
	if err != nil {
		t.Fatal(err)
	}
	if tag := streamTag(tn.Spec, tn.ID); tag != 4096 {
		t.Errorf("VLAN-less tenant stream tag %d, want 4096", tag)
	}
	if tn.Shell() == nil || tn.Shell().Maps() != tn.Maps() {
		t.Error("Shell() does not expose the tenant's own shell")
	}
	if tn.bucket != 7 {
		t.Errorf("explicit BucketDepth ignored: bucket starts at %g, want 7", tn.bucket)
	}
	if got := d.Tenants(); len(got) != 1 || got[0] != tn {
		t.Errorf("Tenants() = %v, want the one admitted tenant", got)
	}
	if d.Epoch() != 0 {
		t.Errorf("fresh device at epoch %d, want 0", d.Epoch())
	}
	if _, err := d.RunLoad(NewTrafficMux([]Spec{tn.Spec}, 3).Next, 64, 50e6); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Errorf("after one 64-packet load the device is at epoch %d, want 1", d.Epoch())
	}

	ae := &AdmissionError{
		Tenant: "big", Need: hdl.Resources{LUTs: 9000}, Used: hdl.Resources{LUTs: 100},
		UtilPct: 91.5, BandPct: 70,
	}
	msg := ae.Error()
	for _, frag := range []string{`"big"`, "91.5%", "70.0%", "LUT 9000", "LUT 100"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("AdmissionError message %q missing %q", msg, frag)
		}
	}
}
