package tenant

import (
	"errors"
	"fmt"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/faults"
	"ehdl/internal/hdl"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/protect"
)

func mustApp(t testing.TB, name string) *apps.App {
	t.Helper()
	a, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	return a
}

func memTracer() (*obs.Tracer, *obs.MemSink) {
	sink := obs.NewMemSink()
	return obs.NewTracer(0, sink), sink
}

// TestAdmissionGateEnforcesBudget registers identically priced tenants
// until the gate rejects: the rejection must be the typed
// *AdmissionError, the admitted set's summed hdl estimate (plus the
// Corundum shell) must stay within the configured utilisation band, and
// the rejected design's would-be utilisation must exceed it.
func TestAdmissionGateEnforcesBudget(t *testing.T) {
	const band = 40.0
	tr, sink := memTracer()
	reg := obs.NewRegistry()
	d := NewDevice(DeviceConfig{UtilisationBandPct: band, Trace: tr, Metrics: reg})

	var admitted []*Tenant
	var rejection *AdmissionError
	for i := 0; i < 24; i++ {
		// Firewall under ECC with live-update support: the most
		// expensive admission profile (protection codecs plus
		// double-buffered maps).
		tn, err := d.AdmitTenant(Spec{
			Name:      fmt.Sprintf("fw%d", i),
			App:       mustApp(t, "firewall"),
			Share:     0.04,
			VLAN:      uint16(100 + i),
			Updatable: true,
			Shell:     nic.ShellConfig{Sim: hwsim.Config{Protection: protect.LevelECC}},
		})
		if err != nil {
			if !errors.As(err, &rejection) {
				t.Fatalf("admission failure is not an *AdmissionError: %v", err)
			}
			break
		}
		admitted = append(admitted, tn)
	}
	if len(admitted) == 0 {
		t.Fatal("no tenant fit the band — gate untestable")
	}
	if rejection == nil {
		t.Fatal("the gate never rejected; band not enforced")
	}

	// The admitted set provably fits: shell + sum of charged estimates
	// equals the device's book, and its utilisation is within the band.
	sum := hdl.CorundumShell()
	for _, tn := range admitted {
		sum = sum.Add(tn.Est)
	}
	if sum != d.Used() {
		t.Errorf("resource book %+v != shell + admitted estimates %+v", d.Used(), sum)
	}
	if util := d.Utilisation(); util > band {
		t.Errorf("admitted set at %.2f%% exceeds the %.0f%% band", util, band)
	}
	if rejection.UtilPct <= band || rejection.BandPct != band {
		t.Errorf("rejection says %.2f%% vs band %.2f%%, want would-be util above %.0f",
			rejection.UtilPct, rejection.BandPct, band)
	}
	if rejection.Used != d.Used() {
		t.Errorf("rejection Used %+v != device book %+v", rejection.Used, d.Used())
	}

	// The gate is observable: admit/reject events and tenant.* metrics.
	var admits, rejects int
	for _, ev := range sink.Events() {
		switch ev.Kind {
		case obs.KindTenantAdmit:
			admits++
		case obs.KindTenantReject:
			rejects++
		}
	}
	if admits != len(admitted) || rejects != 1 {
		t.Errorf("events: %d admits, %d rejects; want %d/1", admits, rejects, len(admitted))
	}
	if n, _ := reg.CounterValue(MetricAdmitted); n != uint64(len(admitted)) {
		t.Errorf("%s = %d, want %d", MetricAdmitted, n, len(admitted))
	}
	if n, _ := reg.CounterValue(MetricRejected); n != 1 {
		t.Errorf("%s = %d, want 1", MetricRejected, n)
	}

	// A later, cheaper candidate still fits: rejection is per-design,
	// not a latch.
	if _, err := d.AdmitTenant(Spec{Name: "small", App: mustApp(t, "toy"), Share: 0.04, VLAN: 4000}); err != nil {
		t.Errorf("cheap tenant rejected after an expensive one bounced: %v", err)
	}
}

// TestAdmitTenantSpecValidation: malformed specifications fail with
// ordinary errors (not budget rejections) and leave the device book
// untouched.
func TestAdmitTenantSpecValidation(t *testing.T) {
	d := NewDevice(DeviceConfig{})
	if _, err := d.AdmitTenant(Spec{Name: "a", App: mustApp(t, "toy"), Share: 0.5, VLAN: 100, Default: true}); err != nil {
		t.Fatal(err)
	}
	used := d.Used()
	cases := []struct {
		name string
		sp   Spec
	}{
		{"empty name", Spec{App: mustApp(t, "toy"), Share: 0.1}},
		{"duplicate name", Spec{Name: "a", App: mustApp(t, "toy"), Share: 0.1, VLAN: 200}},
		{"nil app", Spec{Name: "b", Share: 0.1, VLAN: 200}},
		{"zero share", Spec{Name: "b", App: mustApp(t, "toy"), VLAN: 200}},
		{"share above one", Spec{Name: "b", App: mustApp(t, "toy"), Share: 1.5, VLAN: 200}},
		{"shares oversubscribed", Spec{Name: "b", App: mustApp(t, "toy"), Share: 0.6, VLAN: 200}},
		{"duplicate vlan", Spec{Name: "b", App: mustApp(t, "toy"), Share: 0.1, VLAN: 100}},
		{"vlan out of range", Spec{Name: "b", App: mustApp(t, "toy"), Share: 0.1, VLAN: 4095}},
		{"second default", Spec{Name: "b", App: mustApp(t, "toy"), Share: 0.1, VLAN: 200, Default: true}},
	}
	for _, tc := range cases {
		_, err := d.AdmitTenant(tc.sp)
		if err == nil {
			t.Errorf("%s: admitted", tc.name)
		}
		var ae *AdmissionError
		if errors.As(err, &ae) {
			t.Errorf("%s: spec mistake reported as a budget rejection: %v", tc.name, err)
		}
	}
	if d.Used() != used {
		t.Errorf("failed admissions changed the resource book: %+v -> %+v", used, d.Used())
	}
}

// TestTenantMapNamespaces: tenants hold disjoint map namespaces by
// construction — distinct sets, and traffic or host writes through one
// tenant never appear in another's state, even for two tenants running
// the same program.
func TestTenantMapNamespaces(t *testing.T) {
	d := NewDevice(DeviceConfig{Seed: 7})
	a, err := d.AdmitTenant(Spec{Name: "a", App: mustApp(t, "toy"), Share: 0.5, VLAN: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.AdmitTenant(Spec{Name: "b", App: mustApp(t, "toy"), Share: 0.5, VLAN: 200})
	if err != nil {
		t.Fatal(err)
	}
	if a.Maps() == b.Maps() {
		t.Fatal("tenants share a map set")
	}
	before := b.Maps().Snapshot()

	// Serve traffic only for tenant a: its counters move, b's stay put.
	mux := NewTrafficMux([]Spec{a.Spec}, 7)
	rep, err := d.Serve(mux.Batch(64), 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accounted() {
		t.Errorf("ledger identity broken: %+v", rep)
	}
	if rep.PerTenant[0].Received == 0 {
		t.Fatal("tenant a served nothing; test is vacuous")
	}
	if rep.PerTenant[1].Steered != 0 || rep.PerTenant[1].Received != 0 {
		t.Errorf("tenant b saw traffic addressed to a: %+v", rep.PerTenant[1])
	}
	if !before.Equal(b.Maps().Snapshot()) {
		t.Error("idle tenant b's map state changed while a served traffic")
	}
}

// TestTenantDeathContained: a tenant whose pipeline exhausts its
// recovery budget dies alone — Serve keeps succeeding, the dead
// tenant's frames are exactly accounted as TenantDownLoss (the unserved
// remainder at death plus every later arrival), and the surviving
// tenant keeps serving.
func TestTenantDeathContained(t *testing.T) {
	const seed = 0x5ead
	d := NewDevice(DeviceConfig{Seed: seed, EpochPackets: 128})
	_, err := d.AdmitTenant(Spec{
		Name: "flaky", App: mustApp(t, "toy"), Share: 0.5, VLAN: 100,
		Shell: nic.ShellConfig{
			// Parity detects but cannot correct, so every map upset is a
			// drain-and-restart; MaxRecoveries 1 makes the second one
			// between clean scrubs terminal.
			Faults: faults.Single(faults.SEUMapEntry, 0.02, seed),
			Sim: hwsim.Config{
				Protection:            protect.LevelParity,
				ScrubCyclesPerWord:    64,
				MaxRecoveries:         1,
				RecoveryBackoffCycles: 8,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bSpec := Spec{Name: "steady", App: mustApp(t, "firewall"), Share: 0.5, VLAN: 200}
	if _, err := d.AdmitTenant(bSpec); err != nil {
		t.Fatal(err)
	}

	mux := NewTrafficMux([]Spec{d.tenants[0].Spec, bSpec}, seed)
	rep, err := d.RunLoad(mux.Next, 1024, 50e6)
	if err != nil {
		t.Fatalf("device-level error from a tenant-local death: %v", err)
	}
	flaky, _ := d.TenantByName("flaky")
	if !flaky.Dead() {
		t.Skip("fault campaign did not kill the tenant at this seed; containment untestable")
	}
	if flaky.DeathCause() == "" {
		t.Error("dead tenant carries no cause")
	}
	if !rep.Accounted() {
		t.Errorf("ledger identity broken after a death: %+v", rep)
	}
	if rep.TenantDownLoss == 0 {
		t.Error("tenant died but no TenantDownLoss accounted")
	}
	var fl, st nic.TenantSlice
	for _, sl := range rep.PerTenant {
		switch sl.Name {
		case "flaky":
			fl = sl
		case "steady":
			st = sl
		}
	}
	if !fl.Accounted() || !st.Accounted() {
		t.Errorf("per-tenant ledgers broken: flaky %+v steady %+v", fl, st)
	}
	if fl.DownLoss == 0 || fl.DownLoss != rep.TenantDownLoss {
		t.Errorf("death loss misattributed: flaky.DownLoss %d, device %d", fl.DownLoss, rep.TenantDownLoss)
	}
	if st.DownLoss != 0 {
		t.Errorf("surviving tenant charged death loss: %+v", st)
	}
	if st.Received == 0 || st.Received != st.Sent-st.Lost {
		t.Errorf("surviving tenant stopped serving: %+v", st)
	}
}

// TestPerTenantLiveUpdate: one tenant hot-swaps mid-run while the other
// serves uninterrupted; the update outcome lands in the updating
// tenant's slice only.
func TestPerTenantLiveUpdate(t *testing.T) {
	const seed = 0x10ad
	d := NewDevice(DeviceConfig{Seed: seed, EpochPackets: 128})
	toy := mustApp(t, "toy")
	aSpec := Spec{Name: "swap", App: toy, Share: 0.5, VLAN: 100, Updatable: true}
	bSpec := Spec{Name: "keep", App: mustApp(t, "firewall"), Share: 0.5, VLAN: 200}
	if _, err := d.AdmitTenant(aSpec); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AdmitTenant(bSpec); err != nil {
		t.Fatal(err)
	}

	prog, err := toy.Program()
	if err != nil {
		t.Fatal(err)
	}
	ucfg := liveupdate.Config{
		Prog: prog, Setup: toy.SetupHost,
		CanaryPackets: 4, CanaryFrac: 0.5, Seed: seed,
	}
	if err := d.ScheduleUpdate("keep", 1, ucfg); err == nil {
		t.Error("non-updatable tenant accepted an update (its hardware was never budgeted)")
	}
	if err := d.ScheduleUpdate("swap", 1, ucfg); err != nil {
		t.Fatal(err)
	}

	mux := NewTrafficMux([]Spec{aSpec, bSpec}, seed)
	rep, err := d.RunLoad(mux.Next, 512, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	var swap, keep nic.TenantSlice
	for _, sl := range rep.PerTenant {
		switch sl.Name {
		case "swap":
			swap = sl
		case "keep":
			keep = sl
		}
	}
	if swap.UpdatesCompleted != 1 || swap.UpdatesRolledBack != 0 {
		t.Errorf("swap tenant update outcome: %d completed, %d rolled back, want 1/0",
			swap.UpdatesCompleted, swap.UpdatesRolledBack)
	}
	if keep.UpdatesCompleted != 0 || keep.UpdatesRolledBack != 0 {
		t.Errorf("idle tenant charged an update: %+v", keep)
	}
	if keep.Received == 0 || keep.Lost != 0 {
		t.Errorf("neighbour disturbed during the update: %+v", keep)
	}
	if rep.UpdatesCompleted != 1 {
		t.Errorf("device report lost the update outcome: %+v", rep.UpdatesCompleted)
	}
	if !rep.Accounted() {
		t.Errorf("ledger identity broken across the update: %+v", rep)
	}
}
