package tenant

import (
	"encoding/binary"

	"ehdl/internal/ebpf"
	"ehdl/internal/pktgen"
)

// TrafficMux interleaves the tenants' traffic profiles into one
// deterministic arrival stream, the multi-tenant stand-in for the
// testbed's DPDK generator. Each tenant's packets come from its app's
// own generator (seeded from the mux seed and the tenant's position, so
// the stream is a pure function of the spec list and the seed), tagged
// with the tenant's VLAN on the wire. Interleaving is smooth weighted
// round-robin over the shares: fully deterministic, so a same-seed
// rerun — or a solo-tenant device fed the same mux — sees byte-
// identical arrivals in the same order.
type TrafficMux struct {
	specs  []Spec
	gens   []*pktgen.Generator
	weight []float64
	credit []float64
	total  float64
}

// NewTrafficMux builds the mux over a spec list. Specs with a
// non-positive Share weigh 1.
func NewTrafficMux(specs []Spec, seed int64) *TrafficMux {
	m := &TrafficMux{
		specs:  specs,
		gens:   make([]*pktgen.Generator, len(specs)),
		weight: make([]float64, len(specs)),
		credit: make([]float64, len(specs)),
	}
	for i, sp := range specs {
		traffic := sp.App.Traffic
		traffic.Seed = mix(seed + int64(i))
		m.gens[i] = pktgen.NewGenerator(traffic)
		w := sp.Share
		if w <= 0 {
			w = 1
		}
		m.weight[i] = w
		m.total += w
	}
	return m
}

// Next builds the next arrival: smooth weighted round-robin picks the
// tenant, its generator builds the frame, the tenant's VLAN tag goes on.
func (m *TrafficMux) Next() []byte {
	best := 0
	for i := range m.credit {
		m.credit[i] += m.weight[i]
		if m.credit[i] > m.credit[best] {
			best = i
		}
	}
	m.credit[best] -= m.total
	pkt := m.gens[best].Next()
	if vlan := m.specs[best].VLAN; vlan != 0 {
		pkt = insertVLAN(pkt, vlan)
	}
	return pkt
}

// Batch builds n arrivals.
func (m *TrafficMux) Batch(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = m.Next()
	}
	return out
}

// insertVLAN inserts an 802.1Q tag with the given VID at offset 12.
func insertVLAN(pkt []byte, vid uint16) []byte {
	out := make([]byte, len(pkt)+4)
	copy(out, pkt[:12])
	binary.BigEndian.PutUint16(out[12:14], ebpf.EthPVLAN)
	binary.BigEndian.PutUint16(out[14:16], vid&0x0fff)
	copy(out[16:], pkt[12:])
	return out
}
