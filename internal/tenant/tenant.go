// Package tenant is the multi-tenancy layer of the simulated NIC: one
// device carries M tenant pipelines behind a VLAN/5-tuple classifier,
// with robustness as the organizing principle.
//
//   - Admission is budget-gated: AdmitTenant prices the candidate
//     design with the hdl estimators (pipeline, protection hardware,
//     live-update support) and rejects, with a typed *AdmissionError,
//     any tenant that would push the device past a configurable
//     LUT/FF/BRAM utilisation band. What is admitted provably fits.
//   - Isolation is by construction: every tenant gets its own compiled
//     pipeline, its own map namespace, its own forked fault-injection
//     streams and its own recovery/backoff state. There is no shared
//     mutable state between tenants to corrupt, so one tenant's SEUs,
//     flush storms or overflow bursts cannot perturb another tenant's
//     verdicts, counters or map contents (the noisy-neighbor chaos gate
//     asserts bit-identity against a solo run).
//   - Overload is shed locally: per-tenant token buckets police
//     ingress, so a tenant exceeding its share loses its own frames —
//     counted in its ledger — never a neighbour's.
//   - Failure is contained: a tenant whose pipeline dies unrecoverably
//     takes down only its own traffic (exactly accounted as
//     TenantDownLoss); the device keeps serving everyone else. A
//     per-tenant hitless live update swaps one tenant's program while
//     the others serve uninterrupted.
package tenant

import (
	"fmt"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hdl"
	"ehdl/internal/liveupdate"
	"ehdl/internal/maps"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
)

// Tenant-level metric names registered when DeviceConfig.Metrics is set.
const (
	MetricAdmitted    = "tenant.admitted"
	MetricRejected    = "tenant.rejected"
	MetricSteered     = "tenant.steered_frames"
	MetricThrottled   = "tenant.throttled_frames"
	MetricQuarantined = "tenant.quarantined_frames"
	MetricDelivered   = "tenant.delivered_frames"
	MetricLost        = "tenant.lost_frames"
)

// QuarantineBucket is the Aux value of a KindQueueSteer event for a
// frame steered to the device quarantine bucket (no owning tenant, no
// default tenant configured).
const QuarantineBucket = ^uint64(0)

// Spec describes one candidate tenant.
type Spec struct {
	// Name identifies the tenant in reports and errors. Required,
	// unique per device.
	Name string
	// App is the tenant's program and operating context. Required.
	App *apps.App
	// Opts is the compiler configuration for the tenant's pipeline.
	Opts core.Options
	// Share is the tenant's fraction of the device's ingress budget in
	// (0, 1]; the shares of all admitted tenants may not exceed 1.
	Share float64
	// VLAN steers 802.1Q-tagged frames with this VID (1-4094) to the
	// tenant; the tag is stripped before the frame enters the tenant's
	// pipeline. 0 disables VLAN steering for this tenant.
	VLAN uint16
	// SrcNet/SrcMask classify untagged IPv4 frames by source address
	// (src & SrcMask == SrcNet). SrcMask 0 disables the rule.
	SrcNet  uint32
	SrcMask uint32
	// Default marks the tenant as the catch-all for unclassifiable
	// frames. At most one tenant per device may be the default; without
	// one, unclassifiable frames land in the device quarantine bucket
	// (counted and traced, never dropped silently).
	Default bool
	// Shell is the tenant's shell template: hazard policy, protection
	// level, recovery budget and — for per-tenant chaos campaigns — its
	// own fault configuration. Sim.Trace and Sim.Metrics are cleared
	// (the device's Trace/Metrics observe the control plane; the tracer
	// is single-writer).
	Shell nic.ShellConfig
	// Updatable prices the live-update hardware (double-buffered maps,
	// migration channels, canary tap) into the admission estimate and
	// allows ScheduleUpdate for this tenant.
	Updatable bool
}

// DeviceConfig parameterises a multi-tenant device.
type DeviceConfig struct {
	// FPGA is the part the admission gate budgets against. Zero value
	// means the Alveo U50 of the paper's testbed.
	FPGA hdl.Device
	// UtilisationBandPct is the admission ceiling on the dominant
	// utilisation fraction (LUT/FF/BRAM) including the Corundum shell.
	// 0 means 70.
	UtilisationBandPct float64
	// EpochPackets is the arrivals per policing epoch when RunLoad
	// chunks a stream. 0 means 256.
	EpochPackets int
	// EpochBudget is the device's ingress-budget in frames per epoch,
	// split across tenants by Share. 0 means EpochPackets.
	EpochBudget int
	// BucketDepth caps each tenant's token bucket in frames. 0 means
	// twice the tenant's per-epoch refill.
	BucketDepth int
	// Seed derives every per-tenant stream (fault forks, recovery
	// jitter) that a Spec does not pin itself. 0 means 1.
	Seed int64
	// Chaos, when enabled, is forked per tenant (Injector.Fork
	// semantics, tagged by VLAN so a tenant's streams are stable across
	// device compositions) for tenants whose Spec carries no campaign
	// of its own.
	Chaos faults.Config
	// NoIsolation is the ablation switch: tenants share one fault
	// stream and one first-come-first-served ingress budget instead of
	// forked streams and per-tenant buckets. Exists to demonstrate in
	// the EXPERIMENTS ablation what the isolation machinery buys;
	// never use it for a real run.
	NoIsolation bool
	// Trace receives KindTenantAdmit/Reject/Throttle and quarantine
	// KindQueueSteer events. Metrics accumulates the tenant.*
	// instruments. Both optional.
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

func (c DeviceConfig) fpga() hdl.Device {
	if c.FPGA.LUTs == 0 {
		return hdl.AlveoU50()
	}
	return c.FPGA
}

func (c DeviceConfig) bandPct() float64 {
	if c.UtilisationBandPct <= 0 {
		return 70
	}
	return c.UtilisationBandPct
}

func (c DeviceConfig) epochPackets() int {
	if c.EpochPackets <= 0 {
		return 256
	}
	return c.EpochPackets
}

func (c DeviceConfig) epochBudget() int {
	if c.EpochBudget <= 0 {
		return c.epochPackets()
	}
	return c.EpochBudget
}

func (c DeviceConfig) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// AdmissionError is the typed rejection of the budget admission gate:
// the candidate design would push the device past its utilisation band.
type AdmissionError struct {
	// Tenant is the rejected candidate.
	Tenant string
	// Need is the candidate's priced resource vector; Used is what the
	// device (shell plus admitted tenants) already consumes.
	Need hdl.Resources
	Used hdl.Resources
	// UtilPct is the dominant utilisation the admission would reach;
	// BandPct is the configured ceiling it exceeds.
	UtilPct float64
	BandPct float64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf(
		"tenant: admitting %q would reach %.1f%% device utilisation (band %.1f%%): "+
			"need {LUT %d FF %d BRAM %d}, used {LUT %d FF %d BRAM %d}",
		e.Tenant, e.UtilPct, e.BandPct,
		e.Need.LUTs, e.Need.FFs, e.Need.BRAM36,
		e.Used.LUTs, e.Used.FFs, e.Used.BRAM36)
}

// Tenant is one admitted tenant: its shell, its priced estimate and its
// policing/containment state.
type Tenant struct {
	// ID is the admission index, the serving order within an epoch.
	ID int
	// Spec is the admitted specification.
	Spec Spec
	// Est is the hdl estimate the admission gate charged for the
	// tenant (pipeline + protection + live-update support).
	Est hdl.Resources

	sh   *nic.Shell
	prog *ebpf.Program

	// bucket is the token-bucket fill in frames.
	bucket float64

	dead       bool
	deathCause string

	// updateEpoch arms a hitless live update at that device epoch
	// (-1: none pending).
	updateEpoch int
	updateCfg   liveupdate.Config
}

// Shell exposes the tenant's NIC shell.
func (t *Tenant) Shell() *nic.Shell { return t.sh }

// Maps exposes the tenant's private map namespace.
func (t *Tenant) Maps() *maps.Set { return t.sh.Maps() }

// Dead reports whether the tenant's pipeline died unrecoverably;
// DeathCause carries the terminal error.
func (t *Tenant) Dead() bool         { return t.dead }
func (t *Tenant) DeathCause() string { return t.deathCause }

// Device is one multi-tenant NIC.
type Device struct {
	cfg  DeviceConfig
	fpga hdl.Device
	// used is the consumed resource vector the admission gate budgets
	// against; it starts at the Corundum shell cost.
	used hdl.Resources

	tenants []*Tenant
	byVLAN  map[uint16]*Tenant
	byName  map[string]*Tenant
	def     *Tenant

	// shared is the NoIsolation ablation's single fault stream, handed
	// to every tenant shell (nil under real isolation).
	shared *faults.Injector

	epoch    int
	shareSum float64
}

// NewDevice builds an empty multi-tenant device; AdmitTenant populates
// it.
func NewDevice(cfg DeviceConfig) *Device {
	d := &Device{
		cfg:    cfg,
		fpga:   cfg.fpga(),
		used:   hdl.CorundumShell(),
		byVLAN: map[uint16]*Tenant{},
		byName: map[string]*Tenant{},
	}
	if cfg.NoIsolation && cfg.Chaos.Enabled() {
		d.shared = faults.New(cfg.Chaos)
	}
	return d
}

// mix is the seed spreader for per-tenant derived seeds (splitmix
// finalizer, the construction the fault injector forks with).
func mix(v int64) int64 {
	z := uint64(v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// streamTag is the fork tag of a tenant's derived streams. Tagging by
// VLAN (when set) makes a tenant's fault and jitter streams a function
// of its own identity, not of which neighbours were admitted before it
// — the property the noisy-neighbor gate's solo-run comparison needs.
func streamTag(sp Spec, id int) int64 {
	if sp.VLAN != 0 {
		return int64(sp.VLAN)
	}
	return int64(4096 + id)
}

// AdmitTenant prices the candidate design and either installs it (its
// own pipeline, map namespace, fault streams and recovery state) or
// rejects it. Budget rejections are a typed *AdmissionError; malformed
// specifications fail with ordinary errors.
func (d *Device) AdmitTenant(sp Spec) (*Tenant, error) {
	if sp.Name == "" {
		return nil, fmt.Errorf("tenant: a name is required")
	}
	if _, dup := d.byName[sp.Name]; dup {
		return nil, fmt.Errorf("tenant: duplicate name %q", sp.Name)
	}
	if sp.App == nil {
		return nil, fmt.Errorf("tenant: %s: an app is required", sp.Name)
	}
	if sp.Share <= 0 || sp.Share > 1 {
		return nil, fmt.Errorf("tenant: %s: share %.3f outside (0, 1]", sp.Name, sp.Share)
	}
	if d.shareSum+sp.Share > 1+1e-9 {
		return nil, fmt.Errorf("tenant: %s: shares would sum to %.3f > 1",
			sp.Name, d.shareSum+sp.Share)
	}
	if sp.VLAN >= 4095 {
		return nil, fmt.Errorf("tenant: %s: VLAN %d outside 1-4094", sp.Name, sp.VLAN)
	}
	if sp.VLAN != 0 {
		if _, dup := d.byVLAN[sp.VLAN]; dup {
			return nil, fmt.Errorf("tenant: %s: VLAN %d already claimed", sp.Name, sp.VLAN)
		}
	}
	if sp.Default && d.def != nil {
		return nil, fmt.Errorf("tenant: %s: device already has default tenant %q",
			sp.Name, d.def.Spec.Name)
	}

	prog, err := sp.App.Program()
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", sp.Name, err)
	}
	pl, err := core.Compile(prog, sp.Opts)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: compile: %w", sp.Name, err)
	}

	// Price the design: the pipeline (replicated when the tenant runs
	// multi-queue), its protection hardware, and — when the tenant is
	// hot-swappable — the live-update support.
	est := hdl.EstimatePipeline(pl)
	if sp.Shell.Queues > 1 {
		est = hdl.EstimateReplicated(pl, sp.Shell.Queues)
	}
	est = est.Add(hdl.EstimateProtection(pl, sp.Shell.Sim.Protection))
	if sp.Updatable {
		est = est.Add(hdl.EstimateLiveUpdate(pl))
	}

	util := d.used.Add(est).PercentOf(d.fpga).Max()
	if util > d.cfg.bandPct() {
		d.count(MetricRejected, 1)
		d.event(obs.KindTenantReject, uint64(util*10), uint64(d.cfg.bandPct()*10))
		return nil, &AdmissionError{
			Tenant: sp.Name, Need: est, Used: d.used,
			UtilPct: util, BandPct: d.cfg.bandPct(),
		}
	}

	id := len(d.tenants)
	tag := streamTag(sp, id)
	shCfg := sp.Shell
	shCfg.Sim.Trace = nil
	shCfg.Sim.Metrics = nil
	if d.cfg.NoIsolation {
		// Ablation: every tenant rolls on the same stream, so one
		// tenant's fault campaign shifts its neighbours' fault sites.
		shCfg.Faults = faults.Config{}
		shCfg.Sim.Faults = d.shared
	} else if !shCfg.Faults.Enabled() && d.cfg.Chaos.Enabled() {
		shCfg.Faults = d.cfg.Chaos.Fork(tag)
	}
	if shCfg.Sim.RecoveryJitterSeed == 0 {
		shCfg.Sim.RecoveryJitterSeed = mix(d.cfg.seed() + 1000 + tag)
	}
	sh, err := nic.New(pl, shCfg)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", sp.Name, err)
	}
	if err := sp.App.Setup(sh.Maps()); err != nil {
		return nil, fmt.Errorf("tenant: %s: setup: %w", sp.Name, err)
	}

	t := &Tenant{ID: id, Spec: sp, Est: est, sh: sh, prog: prog, updateEpoch: -1}
	t.bucket = float64(d.bucketDepth(sp))
	d.tenants = append(d.tenants, t)
	d.byName[sp.Name] = t
	if sp.VLAN != 0 {
		d.byVLAN[sp.VLAN] = t
	}
	if sp.Default {
		d.def = t
	}
	d.used = d.used.Add(est)
	d.shareSum += sp.Share
	d.count(MetricAdmitted, 1)
	d.event(obs.KindTenantAdmit, uint64(id), uint64(d.Utilisation()*10))
	return t, nil
}

// refill is a tenant's per-epoch token grant in frames.
func (d *Device) refill(sp Spec) float64 {
	return sp.Share * float64(d.cfg.epochBudget())
}

// bucketDepth caps a tenant's bucket: the configured depth or twice the
// per-epoch refill, so an idle tenant banks one epoch of burst headroom
// but can never starve its neighbours later.
func (d *Device) bucketDepth(sp Spec) int {
	if d.cfg.BucketDepth > 0 {
		return d.cfg.BucketDepth
	}
	depth := int(2 * d.refill(sp))
	if depth < 1 {
		depth = 1
	}
	return depth
}

// Tenants returns the admitted tenants in serving order.
func (d *Device) Tenants() []*Tenant { return d.tenants }

// TenantByName resolves an admitted tenant.
func (d *Device) TenantByName(name string) (*Tenant, bool) {
	t, ok := d.byName[name]
	return t, ok
}

// Used returns the consumed resource vector (shell plus admitted
// tenants); Utilisation is its dominant device fraction in percent —
// by the admission invariant always within the configured band.
func (d *Device) Used() hdl.Resources { return d.used }

func (d *Device) Utilisation() float64 {
	return d.used.PercentOf(d.fpga).Max()
}

// Epoch returns the number of served epochs.
func (d *Device) Epoch() int { return d.epoch }

// ScheduleUpdate arms a hitless live update for one tenant at the given
// device epoch: the tenant's shell begins the shadow/migrate/canary/
// cutover sequence during that epoch's serving window while every other
// tenant serves uninterrupted.
func (d *Device) ScheduleUpdate(name string, epoch int, cfg liveupdate.Config) error {
	t, ok := d.byName[name]
	if !ok {
		return fmt.Errorf("tenant: no tenant %q", name)
	}
	if !t.Spec.Updatable {
		return fmt.Errorf("tenant: %s was not admitted as updatable (its live-update hardware is not budgeted)", name)
	}
	if epoch < d.epoch {
		return fmt.Errorf("tenant: %s: update epoch %d already passed (device at %d)", name, epoch, d.epoch)
	}
	t.updateEpoch = epoch
	t.updateCfg = cfg
	return nil
}

// count bumps a tenant metric (nil-registry safe).
func (d *Device) count(name string, n uint64) {
	if d.cfg.Metrics != nil && n > 0 {
		d.cfg.Metrics.Counter(name).Add(n)
	}
}

// event emits one tenant trace event with the epoch as the cycle stamp.
func (d *Device) event(kind obs.Kind, aux, aux2 uint64) {
	d.cfg.Trace.Emit(obs.Event{
		Cycle: uint64(d.epoch), Kind: kind, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: aux, Aux2: aux2,
	})
}
