package tenant

import (
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
)

// Serve drives one epoch of arrivals through the device: the classifier
// attributes every frame, per-tenant token buckets shed overload, and
// each live tenant's pipeline serves its admitted sub-batch in
// admission order. Tenant failures are contained — an unrecoverable
// pipeline death loses only that tenant's frames, exactly accounted as
// TenantDownLoss — so the returned error covers only the device's own
// invariants. The report satisfies the ledger identity
// (nic.Report.Accounted): every arrival lands in exactly one of
// Received, Lost, Throttled, Quarantined or TenantDownLoss.
func (d *Device) Serve(batch [][]byte, offeredPps float64) (nic.Report, error) {
	if offeredPps <= 0 {
		return nic.Report{}, fmt.Errorf("tenant: offered rate must be positive")
	}
	if len(d.tenants) == 0 {
		return nic.Report{}, fmt.Errorf("tenant: device has no admitted tenants")
	}

	// Classify: per-tenant sub-batches, quarantine counted and traced.
	sub := make([][][]byte, len(d.tenants))
	var dev nic.Report
	for seq, pkt := range batch {
		t, frame, matched := d.classifyFrame(pkt)
		if !matched {
			d.steerFallback(seq, t)
		}
		if t == nil {
			dev.Sent++
			dev.Quarantined++
			continue
		}
		sub[t.ID] = append(sub[t.ID], frame)
	}
	d.count(MetricQuarantined, dev.Quarantined)

	// Police: per-tenant token buckets under isolation, one shared
	// first-come-first-served pool in the NoIsolation ablation (where a
	// noisy tenant admitted earlier starves its neighbours — the
	// behaviour the ablation table quantifies).
	admitted := make([]int, len(d.tenants))
	if d.cfg.NoIsolation {
		pool := d.cfg.epochBudget()
		for _, t := range d.tenants {
			n := len(sub[t.ID])
			if n > pool {
				n = pool
			}
			admitted[t.ID] = n
			pool -= n
		}
	} else {
		for _, t := range d.tenants {
			t.bucket += d.refill(t.Spec)
			if depth := float64(d.bucketDepth(t.Spec)); t.bucket > depth {
				t.bucket = depth
			}
			n := len(sub[t.ID])
			if grant := int(t.bucket); n > grant {
				n = grant
			}
			admitted[t.ID] = n
			t.bucket -= float64(n)
		}
	}

	slices := make([]nic.TenantSlice, len(d.tenants))
	for _, t := range d.tenants {
		sl := &slices[t.ID]
		sl.Name = t.Spec.Name
		sl.VLAN = t.Spec.VLAN
		arrivals := sub[t.ID]
		sl.Steered = uint64(len(arrivals))
		d.count(MetricSteered, sl.Steered)

		if t.dead {
			// Contained failure: the dead tenant's arrivals are its own
			// exactly-accounted loss; nothing of its neighbours changes.
			sl.DownLoss = uint64(len(arrivals))
			dev.Sent += sl.DownLoss
			dev.TenantDownLoss += sl.DownLoss
			continue
		}

		adm := admitted[t.ID]
		if shed := uint64(len(arrivals) - adm); shed > 0 {
			sl.Throttled = shed
			dev.Sent += shed
			dev.Throttled += shed
			d.count(MetricThrottled, shed)
			d.event(obs.KindTenantThrottle, uint64(t.ID), shed)
		}
		if adm == 0 {
			continue
		}
		sl.Admitted = uint64(adm)

		if t.updateEpoch == d.epoch {
			t.updateEpoch = -1
			if err := t.sh.ScheduleUpdate(0, t.updateCfg); err != nil {
				return dev, fmt.Errorf("tenant: %s: %w", t.Spec.Name, err)
			}
		}

		// Overflow-burst faults make the shell pull more than adm frames;
		// extras recycle the admitted sub-batch (modulo) and every pull
		// gets a fresh copy, so in-place frame damage inside one tenant's
		// shell can never reach the classifier's batch or a neighbour.
		i := 0
		next := func() []byte {
			pkt := arrivals[i%adm]
			i++
			return append([]byte(nil), pkt...)
		}
		rep, err := t.sh.RunLoad(next, adm, offeredPps*t.Spec.Share)
		if err != nil {
			// Unrecoverable pipeline death mid-epoch (recovery budget
			// exhausted): retired frames stay delivered, the unserved
			// remainder is this tenant's bounded loss, and the tenant is
			// dead for the rest of the run. The shell's report is partial
			// on this path — only the retirement counters are final.
			t.dead = true
			t.deathCause = err.Error()
			delivered := rep.Received
			sent := uint64(adm)
			if delivered > sent {
				sent = delivered // chaos overflow extras retired pre-death
			}
			down := sent - delivered
			sl.Admitted -= down
			sl.DownLoss += down
			sl.Sent = sent - down
			sl.Received = delivered
			sl.Actions = rep.Actions
			dev.TenantDownLoss += down
			dev.Add(nic.Report{Sent: sl.Sent, Received: delivered, Actions: rep.Actions})
			dev.Sent += down
			d.count(MetricDelivered, delivered)
			continue
		}

		sl.Sent = rep.Sent
		sl.Received = rep.Received
		sl.Lost = rep.Lost
		sl.Flushes = rep.Flushes
		sl.Cycles = rep.Cycles
		sl.FaultsInjected = rep.FaultsInjected
		sl.MalformedSent = rep.MalformedSent
		sl.Recoveries = rep.Recoveries
		sl.WatchdogTrips = rep.WatchdogTrips
		sl.UpdatesCompleted = rep.UpdatesCompleted
		sl.UpdatesRolledBack = rep.UpdatesRolledBack
		sl.AchievedMpps = rep.AchievedMpps
		sl.AvgLatencyNs = rep.AvgLatencyNs
		if len(rep.Actions) > 0 {
			sl.Actions = map[ebpf.XDPAction]uint64{}
			for a, n := range rep.Actions {
				sl.Actions[a] += n
			}
		}
		dev.Add(rep)
		d.count(MetricDelivered, rep.Received)
		d.count(MetricLost, rep.Lost)
	}

	dev.PerTenant = slices
	d.epoch++
	return dev, nil
}

// RunLoad offers count arrivals from next() at offeredPps, chunked into
// policing epochs of EpochPackets, and folds the per-epoch reports
// (nic.Report.Add semantics, so the same tenant stays one PerTenant row
// across epochs).
func (d *Device) RunLoad(next func() []byte, count int, offeredPps float64) (nic.Report, error) {
	var out nic.Report
	ep := d.cfg.epochPackets()
	for off := 0; off < count; off += ep {
		n := ep
		if count-off < n {
			n = count - off
		}
		batch := make([][]byte, n)
		for i := range batch {
			batch[i] = next()
		}
		rep, err := d.Serve(batch, offeredPps)
		out.Add(rep)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
