package tenant

import (
	"testing"

	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/protect"
)

// TestTenantEventCoverage owns the tenant event classes that
// conformance's TestEventClassCoverage exempts: every tenant kind —
// admit, reject, throttle — must be emitted by a real device with its
// documented payload, and the matching tenant.* metric series must
// move. (The quarantine reuse of KindQueueSteer is covered by
// FuzzTenantClassifier's seed corpus.)
func TestTenantEventCoverage(t *testing.T) {
	tr, sink := memTracer()
	reg := obs.NewRegistry()
	d := NewDevice(DeviceConfig{
		UtilisationBandPct: 25, // one ECC+updatable firewall fits, a second does not
		EpochBudget:        16,
		Trace:              tr,
		Metrics:            reg,
	})
	ecc := nic.ShellConfig{Sim: hwsim.Config{Protection: protect.LevelECC}}
	tn, err := d.AdmitTenant(Spec{
		Name: "a", App: mustApp(t, "firewall"), Share: 0.9, VLAN: 100,
		Updatable: true, Shell: ecc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AdmitTenant(Spec{
		Name: "b", App: mustApp(t, "firewall"), Share: 0.1, VLAN: 200,
		Updatable: true, Shell: ecc,
	}); err == nil {
		t.Fatal("second firewall fit a 25% band; reject event untestable")
	}

	// Offer twice the bucket depth in one epoch so the policer sheds.
	mux := NewTrafficMux([]Spec{tn.Spec}, 3)
	rep, err := d.Serve(mux.Batch(64), 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throttled == 0 {
		t.Fatal("policer shed nothing; throttle event untestable")
	}
	if !rep.Accounted() {
		t.Errorf("ledger identity broken: %+v", rep)
	}

	seen := map[obs.Kind]obs.Event{}
	for _, ev := range sink.Events() {
		if _, ok := seen[ev.Kind]; !ok {
			seen[ev.Kind] = ev
		}
	}
	if ev, ok := seen[obs.KindTenantAdmit]; !ok {
		t.Error("no tenant_admit event")
	} else if ev.Aux != uint64(tn.ID) || ev.Aux2 == 0 {
		t.Errorf("tenant_admit payload: Aux %d (want tenant %d), Aux2 %d (want util tenths)", ev.Aux, tn.ID, ev.Aux2)
	}
	if ev, ok := seen[obs.KindTenantReject]; !ok {
		t.Error("no tenant_reject event")
	} else if ev.Aux <= ev.Aux2 || ev.Aux2 != 250 {
		t.Errorf("tenant_reject payload: would-be util %d tenths must exceed band %d tenths (want 250)", ev.Aux, ev.Aux2)
	}
	if ev, ok := seen[obs.KindTenantThrottle]; !ok {
		t.Error("no tenant_throttle event")
	} else if ev.Aux != uint64(tn.ID) || ev.Aux2 != rep.Throttled {
		t.Errorf("tenant_throttle payload: Aux %d Aux2 %d, want tenant %d shed %d", ev.Aux, ev.Aux2, tn.ID, rep.Throttled)
	}

	for name, want := range map[string]uint64{
		MetricAdmitted:  1,
		MetricRejected:  1,
		MetricThrottled: rep.Throttled,
		MetricSteered:   64,
		MetricDelivered: rep.Received,
		MetricLost:      rep.Lost,
	} {
		if got, _ := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
