package tenant

import (
	"fmt"
	"strconv"
	"strings"

	"ehdl/internal/apps"
	"ehdl/internal/nic"
)

// ParseSpecList parses a CLI tenant list — comma-separated app:share
// entries like "firewall:0.5,toy:0.25,router:0.25" — into admission
// specs. The share suffix may be omitted; share-less entries split the
// headroom the explicit shares leave equally. Tenants are named
// app#index, VLANs are assigned from 100 upward, and every tenant gets
// the same shell template.
func ParseSpecList(list string, shell nic.ShellConfig) ([]Spec, error) {
	parts := strings.Split(list, ",")
	specs := make([]Spec, 0, len(parts))
	var explicit float64
	var implicit int
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("tenant: empty entry at position %d in %q", i, list)
		}
		name, shareStr, hasShare := strings.Cut(part, ":")
		app, ok := apps.ByName(name)
		if !ok {
			return nil, fmt.Errorf("tenant: unknown application %q in %q", name, part)
		}
		sp := Spec{
			Name:  fmt.Sprintf("%s#%d", name, i),
			App:   app,
			VLAN:  uint16(100 + i),
			Shell: shell,
		}
		if hasShare {
			share, err := strconv.ParseFloat(shareStr, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant: bad share %q in %q: %v", shareStr, part, err)
			}
			if share <= 0 || share > 1 {
				return nil, fmt.Errorf("tenant: share %g in %q outside (0,1]", share, part)
			}
			sp.Share = share
			explicit += share
		} else {
			implicit++
		}
		specs = append(specs, sp)
	}
	if implicit > 0 {
		headroom := 1 - explicit
		if headroom <= 0 {
			return nil, fmt.Errorf("tenant: explicit shares sum to %g, no headroom for %d share-less entries", explicit, implicit)
		}
		each := headroom / float64(implicit)
		for i := range specs {
			if specs[i].Share == 0 {
				specs[i].Share = each
			}
		}
	}
	return specs, nil
}
