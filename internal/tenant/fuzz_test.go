package tenant

import (
	"math/rand"
	"testing"

	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
)

// classifierSeedCorpus is the classifier's malformed-frame seed set:
// the conformance corpus (every structured malformation, boundary
// truncations, byte soup) in both tagged and untagged form, plus the
// tagging mistakes only a multi-tenant device can see — unknown VIDs,
// tags truncated mid-header, and non-IP EtherTypes no steering rule
// claims.
func classifierSeedCorpus(seed int64) [][]byte {
	base := pktgen.Build(pktgen.PacketSpec{
		Flow:     pktgen.Flow{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 4242, DstPort: 8080, Proto: 17},
		TotalLen: 64,
	})
	tagged := insertVLAN(base, 100)
	r := rand.New(rand.NewSource(seed))
	var out [][]byte
	out = append(out, base, tagged, insertVLAN(base, 999))
	for _, kind := range pktgen.MalformKinds() {
		for i := 0; i < 2; i++ {
			out = append(out, pktgen.Malform(base, kind, r))
			out = append(out, pktgen.Malform(tagged, kind, r))
		}
	}
	for _, n := range []int{0, 1, 13, 14, 15, 16, 17, 18, 33, 40, len(tagged)} {
		out = append(out, append([]byte(nil), tagged[:n]...))
	}
	arp := append([]byte(nil), base...)
	arp[12], arp[13] = 0x08, 0x06
	out = append(out, arp)
	for i := 0; i < 8; i++ {
		pkt := make([]byte, 40+r.Intn(72))
		r.Read(pkt)
		out = append(out, pkt)
	}
	return out
}

// FuzzTenantClassifier: whatever frame arrives — any malformation, any
// truncation, any tag — the classifier attributes it to exactly one
// place. On a device with no default tenant, unclassifiable frames land
// in the quarantine bucket, counted and steer-traced, never dropped
// silently; on a device with a default tenant, nothing is quarantined
// and the frame is charged to exactly one tenant. In both cases Serve
// succeeds and the device ledger balances.
func FuzzTenantClassifier(f *testing.F) {
	for _, pkt := range classifierSeedCorpus(0x7c1a) {
		f.Add(pkt)
	}

	build := func(withDefault bool) (*Device, *obs.MemSink) {
		tr, sink := memTracer()
		d := NewDevice(DeviceConfig{Seed: 5, Trace: tr})
		a := Spec{Name: "a", App: mustAppValue("toy"), Share: 0.4, VLAN: 100}
		b := Spec{Name: "b", App: mustAppValue("toy"), Share: 0.4, VLAN: 200}
		b.Default = withDefault
		for _, sp := range []Spec{a, b} {
			if _, err := d.AdmitTenant(sp); err != nil {
				f.Fatal(err)
			}
		}
		return d, sink
	}
	quarantineDev, qSink := build(false)
	defaultDev, _ := build(true)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("oversized frame")
		}

		// Device without a default tenant: the frame is either steered
		// to a tenant by rule or quarantined with a trace — one or the
		// other, exactly once, and never an error.
		evBefore := len(qSink.Events())
		rep, err := quarantineDev.Serve([][]byte{append([]byte(nil), data...)}, 50e6)
		if err != nil {
			t.Fatalf("serve failed on a malformed frame: %v", err)
		}
		if !rep.Accounted() {
			t.Fatalf("ledger identity broken: %+v", rep)
		}
		var steered uint64
		for _, sl := range rep.PerTenant {
			steered += sl.Steered
		}
		if steered+rep.Quarantined != 1 {
			t.Fatalf("frame attributed %d times (steered %d, quarantined %d)", steered+rep.Quarantined, steered, rep.Quarantined)
		}
		if rep.Quarantined == 1 {
			traced := false
			for _, ev := range qSink.Events()[evBefore:] {
				if ev.Kind == obs.KindQueueSteer && ev.Aux == QuarantineBucket {
					traced = true
				}
			}
			if !traced {
				t.Fatal("quarantined frame left no steer trace")
			}
		}

		// Device with a default tenant: nothing is ever quarantined —
		// the default tenant absorbs every stray frame.
		rep, err = defaultDev.Serve([][]byte{append([]byte(nil), data...)}, 50e6)
		if err != nil {
			t.Fatalf("serve failed on a malformed frame: %v", err)
		}
		if !rep.Accounted() {
			t.Fatalf("ledger identity broken: %+v", rep)
		}
		if rep.Quarantined != 0 {
			t.Fatalf("frame quarantined despite a default tenant: %+v", rep)
		}
		steered = 0
		for _, sl := range rep.PerTenant {
			steered += sl.Steered
		}
		if steered != 1 {
			t.Fatalf("frame attributed %d times with a default tenant", steered)
		}
	})
}
