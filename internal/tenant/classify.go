package tenant

import (
	"encoding/binary"

	"ehdl/internal/ebpf"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
)

// classifyFrame attributes one arrival to a tenant. Tagged frames steer
// by VID with the 802.1Q tag stripped before injection (tenant programs
// parse plain Ethernet/IPv4, exactly what they would see behind a real
// NIC's VLAN demux). Untagged IPv4 frames steer by the tenants'
// source-network rules in admission order. Everything else — and every
// malformed frame no rule claims — falls to the default tenant, or to
// the device quarantine bucket (nil tenant) when none is configured;
// matched is false on that fallback path so the caller can trace the
// steer. The frame is never dropped here: quarantined arrivals are
// counted and traced, not discarded silently.
func (d *Device) classifyFrame(pkt []byte) (t *Tenant, frame []byte, matched bool) {
	if len(pkt) < pktgen.EthHeaderLen {
		return d.def, pkt, false
	}
	etherType := binary.BigEndian.Uint16(pkt[12:14])
	if etherType == ebpf.EthPVLAN {
		if len(pkt) < pktgen.EthHeaderLen+4 {
			// A tag with no room for the inner EtherType: unclassifiable
			// as-is, and stripping would fabricate header bytes.
			return d.def, pkt, false
		}
		vid := binary.BigEndian.Uint16(pkt[14:16]) & 0x0fff
		stripped := stripVLAN(pkt)
		if t, ok := d.byVLAN[vid]; ok {
			return t, stripped, true
		}
		// Unknown VID: the default tenant (if any) gets the frame in the
		// untagged form its pipeline can parse.
		return d.def, stripped, false
	}
	if etherType == ebpf.EthPIP && len(pkt) >= pktgen.EthHeaderLen+pktgen.IPv4HeaderLen {
		src := binary.BigEndian.Uint32(pkt[pktgen.EthHeaderLen+12 : pktgen.EthHeaderLen+16])
		for _, t := range d.tenants {
			if t.Spec.SrcMask != 0 && src&t.Spec.SrcMask == t.Spec.SrcNet {
				return t, pkt, true
			}
		}
	}
	return d.def, pkt, false
}

// stripVLAN removes the 4-byte 802.1Q tag at offset 12.
func stripVLAN(pkt []byte) []byte {
	out := make([]byte, len(pkt)-4)
	copy(out, pkt[:12])
	copy(out[12:], pkt[16:])
	return out
}

// steerFallback traces one unclassifiable arrival: KindQueueSteer with
// the quarantine bucket (or the default tenant) as the target, so a
// trace shows exactly where every stray frame went.
func (d *Device) steerFallback(seq int, to *Tenant) {
	aux := QuarantineBucket
	if to != nil {
		aux = uint64(to.ID)
	}
	d.cfg.Trace.Emit(obs.Event{
		Cycle: uint64(d.epoch), Kind: obs.KindQueueSteer, Seq: int64(seq),
		Stage: obs.NoStage, Map: obs.NoMap, Aux: aux, Aux2: 1,
	})
}
