package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ehdl/internal/obs"
)

// writeJournal builds a journal at path with the given records and
// returns the file contents.
func writeJournal(t *testing.T, path string, recs ...Record) []byte {
	t.Helper()
	j, got, torn, err := OpenJournal(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || torn != 0 {
		t.Fatalf("fresh journal scanned %d records, %d torn bytes", len(got), torn)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := []Record{
		{Type: 1, Payload: []byte(`{"seed":7}`)},
		{Type: 2, Payload: []byte("epoch-0")},
		{Type: 3, Payload: nil},
	}
	writeJournal(t, path, recs...)

	j, got, torn, err := OpenJournal(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if torn != 0 {
		t.Errorf("clean journal reported %d torn bytes", torn)
	}
	if len(got) != len(recs) {
		t.Fatalf("reopened %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Type != recs[i].Type || !bytes.Equal(r.Payload, recs[i].Payload) {
			t.Errorf("record %d = {%d, %q}, want {%d, %q}", i, r.Type, r.Payload, recs[i].Type, recs[i].Payload)
		}
	}
	// Appends after reopen extend the log.
	if err := j.Append(Record{Type: 2, Payload: []byte("epoch-1")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got, _, err = OpenJournal(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || string(got[3].Payload) != "epoch-1" {
		t.Fatalf("after reopen-append: %d records", len(got))
	}
}

// TestJournalTornTail: a partial frame at the end of the file — the
// footprint of an append that crashed mid-write — is truncated away on
// open and the journal keeps accepting appends from the good end.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	clean := writeJournal(t, path, Record{Type: 2, Payload: []byte("a")}, Record{Type: 2, Payload: []byte("bb")})

	// Three torn shapes: a cut-off length field, a full length field with
	// the payload cut off, and a whole frame missing its CRC tail.
	tails := [][]byte{
		{0x05, 0x00},
		append([]byte{0x40, 0x00, 0x00, 0x00, 0x02}, []byte("par")...),
		EncodeRecord(Record{Type: 2, Payload: []byte("torn")})[:recordOverhead+4-2],
	}
	for i, tail := range tails {
		if err := os.WriteFile(path, append(append([]byte(nil), clean...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		j, got, torn, err := OpenJournal(path, Options{Metrics: reg})
		if err != nil {
			t.Fatalf("tail %d: %v", i, err)
		}
		if torn != int64(len(tail)) {
			t.Errorf("tail %d: truncated %d bytes, want %d", i, torn, len(tail))
		}
		if len(got) != 2 {
			t.Errorf("tail %d: %d records survived, want 2", i, len(got))
		}
		if v, _ := reg.CounterValue(MetricTornBytes); v != uint64(len(tail)) {
			t.Errorf("tail %d: %s = %d, want %d", i, MetricTornBytes, v, len(tail))
		}
		if err := j.Append(Record{Type: 2, Payload: []byte("after")}); err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(); err != nil {
			t.Fatal(err)
		}
		j.Close()
		data, _ := os.ReadFile(path)
		want := append(append([]byte(nil), clean...), EncodeRecord(Record{Type: 2, Payload: []byte("after")})...)
		if !bytes.Equal(data, want) {
			t.Errorf("tail %d: file after truncate+append differs from clean append", i)
		}
	}
}

// TestJournalTornHeader: a file cut off inside the header (a torn
// creation) resets to a fresh journal instead of failing.
func TestJournalTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, EncodeHeader()[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, torn, err := OpenJournal(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(got) != 0 || torn != 5 {
		t.Fatalf("torn header: %d records, %d torn bytes", len(got), torn)
	}
	if err := j.Append(Record{Type: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCorruption: damage to fully-present data — a flipped
// payload bit, a damaged header, an impossible length field — must
// surface as a typed *CorruptRecordError, never truncate silently.
func TestJournalCorruption(t *testing.T) {
	base := func(t *testing.T) (string, []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		data := writeJournal(t, path, Record{Type: 2, Payload: []byte("first")}, Record{Type: 2, Payload: []byte("second")})
		return path, data
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		index   int
		wantSub string
	}{
		{"payload bit flip", func(d []byte) []byte { d[headerLen+5] ^= 0x01; return d }, 0, "crc mismatch"},
		{"crc bit flip", func(d []byte) []byte { d[len(d)-1] ^= 0x80; return d }, 1, "crc mismatch"},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, -1, "bad magic"},
		{"bad version", func(d []byte) []byte { d[len(JournalMagic)] = 0x7f; return d }, -1, "unsupported version"},
		{"impossible length", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[headerLen:], MaxRecordBytes+1)
			return d
		}, 0, "record limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, data := base(t)
			if err := os.WriteFile(path, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, err := OpenJournal(path, Options{})
			var ce *CorruptRecordError
			if !errors.As(err, &ce) {
				t.Fatalf("corruption returned %v, want *CorruptRecordError", err)
			}
			if ce.Index != tc.index {
				t.Errorf("Index = %d, want %d", ce.Index, tc.index)
			}
			if ce.Path != path {
				t.Errorf("Path = %q, want %q", ce.Path, path)
			}
			if !bytes.Contains([]byte(ce.Error()), []byte(tc.wantSub)) {
				t.Errorf("error %q does not mention %q", ce, tc.wantSub)
			}
		})
	}
}

// flakyFile injects transient write/sync failures, optionally leaving a
// partial transfer behind, to exercise the retry/backoff path.
type flakyFile struct {
	data      []byte
	pos       int64
	failWrite int // fail this many writes
	partial   int // bytes to land before each failed write
	failSync  int
	writes    int
	syncs     int
}

func (f *flakyFile) Write(p []byte) (int, error) {
	f.writes++
	if f.failWrite > 0 {
		f.failWrite--
		n := f.partial
		if n > len(p) {
			n = len(p)
		}
		f.apply(p[:n])
		return n, fmt.Errorf("transient write error")
	}
	f.apply(p)
	return len(p), nil
}

func (f *flakyFile) apply(p []byte) {
	end := f.pos + int64(len(p))
	if int64(len(f.data)) < end {
		f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
	}
	copy(f.data[f.pos:end], p)
	f.pos = end
}

func (f *flakyFile) Seek(off int64, whence int) (int64, error) {
	if whence != io.SeekStart {
		return 0, fmt.Errorf("unsupported whence %d", whence)
	}
	f.pos = off
	return off, nil
}

func (f *flakyFile) Sync() error {
	f.syncs++
	if f.failSync > 0 {
		f.failSync--
		return fmt.Errorf("transient sync error")
	}
	return nil
}

func (f *flakyFile) Close() error { return nil }

func (f *flakyFile) Truncate(size int64) error {
	if int64(len(f.data)) > size {
		f.data = f.data[:size]
	}
	return nil
}

// TestJournalWriteRetryBackoff: transient write errors — including ones
// that land a partial transfer — are retried with exponential backoff
// and the final file is byte-identical to a clean write.
func TestJournalWriteRetryBackoff(t *testing.T) {
	var delays []time.Duration
	reg := obs.NewRegistry()
	f := &flakyFile{failWrite: 3, partial: 2, failSync: 1}
	j := &Journal{f: f, path: "flaky", opt: Options{
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
		Metrics:   reg,
		Sleep:     func(d time.Duration) { delays = append(delays, d) },
	}}
	if err := j.reset(); err != nil {
		t.Fatal(err)
	}
	rec := Record{Type: 2, Payload: []byte("persist me")}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	want := append(EncodeHeader(), EncodeRecord(rec)...)
	if !bytes.Equal(f.data, want) {
		t.Errorf("file after flaky writes differs from clean encoding:\n%x\n%x", f.data, want)
	}
	// 3 write failures + 1 sync failure = 4 backoffs: 1ms, 2ms, 4ms
	// (capped), then the sync retry restarts its own schedule at 1ms.
	wantDelays := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, time.Millisecond}
	if len(delays) != len(wantDelays) {
		t.Fatalf("slept %v, want %v", delays, wantDelays)
	}
	for i := range delays {
		if delays[i] != wantDelays[i] {
			t.Errorf("backoff %d = %v, want %v", i, delays[i], wantDelays[i])
		}
	}
	if v, _ := reg.CounterValue(MetricRetries); v != 4 {
		t.Errorf("%s = %d, want 4", MetricRetries, v)
	}
}

// TestJournalRetryExhausted: a persistent I/O error surfaces after the
// bounded attempts, wrapping the underlying cause.
func TestJournalRetryExhausted(t *testing.T) {
	f := &flakyFile{failWrite: 100}
	slept := 0
	j := &Journal{f: f, opt: Options{
		RetryAttempts: 3,
		Sleep:         func(time.Duration) { slept++ },
	}}
	err := j.Append(Record{Type: 1, Payload: []byte("x")})
	if err == nil {
		t.Fatal("append with a dead disk succeeded")
	}
	if slept != 2 {
		t.Errorf("slept %d times before giving up, want 2 (attempts-1)", slept)
	}
	if f.writes != 3 {
		t.Errorf("attempted %d writes, want 3", f.writes)
	}
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	opt := Options{Metrics: reg}
	if err := WriteSnapshot(dir, 2, []byte("state@2"), opt); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 5, []byte("state@5"), opt); err != nil {
		t.Fatal(err)
	}
	epoch, payload, skipped, err := LoadLatestSnapshot(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 5 || string(payload) != "state@5" || skipped != 0 {
		t.Fatalf("latest = (%d, %q, %d)", epoch, payload, skipped)
	}

	// Corrupt the newest: recovery falls back to the previous one.
	p5 := filepath.Join(dir, SnapshotName(5))
	data, _ := os.ReadFile(p5)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p5, data, 0o644); err != nil {
		t.Fatal(err)
	}
	epoch, payload, skipped, err = LoadLatestSnapshot(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || string(payload) != "state@2" || skipped != 1 {
		t.Fatalf("fallback = (%d, %q, %d), want (2, state@2, 1)", epoch, payload, skipped)
	}
	if v, _ := reg.CounterValue(MetricSnapshotsSkipped); v != 1 {
		t.Errorf("%s = %d, want 1", MetricSnapshotsSkipped, v)
	}
	if _, err := ReadSnapshot(p5); err == nil {
		t.Error("corrupt snapshot read back without error")
	} else {
		var ce *CorruptRecordError
		if !errors.As(err, &ce) {
			t.Errorf("corrupt snapshot returned %v, want *CorruptRecordError", err)
		}
	}

	// Corrupt both: no valid snapshot, not an error.
	p2 := filepath.Join(dir, SnapshotName(2))
	if err := os.WriteFile(p2, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	epoch, payload, skipped, err = LoadLatestSnapshot(dir, opt)
	if err != nil || epoch != -1 || payload != nil || skipped != 2 {
		t.Fatalf("all-corrupt = (%d, %q, %d, %v), want (-1, nil, 2, nil)", epoch, payload, skipped, err)
	}
	// Empty dir.
	epoch, _, _, err = LoadLatestSnapshot(t.TempDir(), opt)
	if err != nil || epoch != -1 {
		t.Fatalf("empty dir = (%d, %v)", epoch, err)
	}
}

// TestSnapshotTruncationIsCorruption: snapshots are atomic via rename,
// so a short file can only be damage — it must error, not truncate.
func TestSnapshotTruncationIsCorruption(t *testing.T) {
	full := EncodeSnapshot([]byte("payload"))
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeSnapshot(full[:cut]); err == nil {
			t.Fatalf("snapshot cut to %d bytes decoded cleanly", cut)
		}
	}
	payload, err := DecodeSnapshot(full)
	if err != nil || string(payload) != "payload" {
		t.Fatalf("full snapshot = (%q, %v)", payload, err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.retryAttempts() != 5 || o.retryBase() != time.Millisecond || o.retryMax() != 50*time.Millisecond {
		t.Errorf("defaults: attempts=%d base=%v max=%v", o.retryAttempts(), o.retryBase(), o.retryMax())
	}
	o = Options{RetryAttempts: 2, RetryBase: time.Second, RetryMax: 2 * time.Second}
	if o.retryAttempts() != 2 || o.retryBase() != time.Second || o.retryMax() != 2*time.Second {
		t.Error("explicit options not honoured")
	}
	if name := SnapshotName(12); name != "snap-0000000012.snap" {
		t.Errorf("SnapshotName = %q", name)
	}
	if e, ok := snapshotEpoch("snap-0000000012.snap"); !ok || e != 12 {
		t.Errorf("snapshotEpoch = (%d, %v)", e, ok)
	}
	if _, ok := snapshotEpoch("other.snap"); ok {
		t.Error("foreign file name parsed as a snapshot")
	}
}

// TestJournalMaxRecord: the writer refuses oversized payloads up front,
// so a scanned length above the limit is always damage.
func TestJournalMaxRecord(t *testing.T) {
	j := &Journal{f: &flakyFile{}, opt: Options{}}
	if err := j.Append(Record{Type: 1, Payload: make([]byte, MaxRecordBytes+1)}); err == nil {
		t.Fatal("oversized record accepted")
	}
}
