package durable

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzJournalDecode throws torn tails, truncations and bit-flipped
// records at the journal decoder. The contract under fuzz: never panic,
// never silently accept damage — every failure is a typed
// *CorruptRecordError — and whatever decodes cleanly must re-encode
// byte-identically to the non-torn prefix of the input (no record is
// invented, dropped or altered).
func FuzzJournalDecode(f *testing.F) {
	header := EncodeHeader()
	full := append(append([]byte(nil), header...),
		EncodeRecord(Record{Type: 1, Payload: []byte(`{"seed":7}`)})...)
	full = append(full, EncodeRecord(Record{Type: 2, Payload: []byte("epoch-0")})...)
	full = append(full, EncodeRecord(Record{Type: 3, Payload: nil})...)

	f.Add([]byte(nil))
	f.Add(header)
	f.Add(header[:5])
	f.Add(full)
	f.Add(full[:len(full)-3])          // torn CRC tail
	f.Add(full[:len(header)+2])        // torn length field
	f.Add(append(full, 0x09, 0x00))    // torn next record
	f.Add([]byte("EHDLWAL\x02\x01\x00\x00\x00")) // wrong magic byte
	flipped := append([]byte(nil), full...)
	flipped[len(header)+6] ^= 0x20
	f.Add(flipped)
	huge := append([]byte(nil), header...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x01)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The snapshot decoder shares the never-panic / typed-error
		// contract; exercise it on the same hostile input.
		if payload, serr := DecodeSnapshot(data); serr != nil {
			var ce *CorruptRecordError
			if !errors.As(serr, &ce) {
				t.Fatalf("DecodeSnapshot error is %T, want *CorruptRecordError", serr)
			}
		} else if !bytes.Equal(EncodeSnapshot(payload), data) {
			t.Fatalf("snapshot round-trip mismatch for accepted input")
		}

		recs, torn, err := Decode(data)
		if err != nil {
			var ce *CorruptRecordError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode error is %T (%v), want *CorruptRecordError", err, err)
			}
			if torn != 0 {
				t.Fatalf("Decode reported both corruption and %d torn bytes", torn)
			}
			return
		}
		if torn < 0 || torn > int64(len(data)) {
			t.Fatalf("torn = %d outside [0, %d]", torn, len(data))
		}
		good := data[:int64(len(data))-torn]
		if len(good) == 0 {
			if len(recs) != 0 {
				t.Fatalf("empty good prefix decoded %d records", len(recs))
			}
			return
		}
		rebuilt := EncodeHeader()
		for _, r := range recs {
			rebuilt = append(rebuilt, EncodeRecord(r)...)
		}
		if !bytes.Equal(rebuilt, good) {
			t.Fatalf("re-encoding %d records does not reproduce the accepted prefix:\ngot  %x\nwant %x",
				len(recs), rebuilt, good)
		}
	})
}
