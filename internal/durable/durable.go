// Package durable is the crash-consistency layer of the repository: a
// CRC32C-framed, length-prefixed write-ahead journal plus full-state
// snapshot files, the storage substrate the fleet control plane commits
// its epoch state through so a killed controller can be reconstructed
// byte-for-byte.
//
// The journal is an append-only file: an 8-byte magic + version header
// followed by records framed as
//
//	[u32 payload length][u8 type][payload][u32 CRC32C(type ‖ payload)]
//
// with every integer little-endian. Appends go straight to the file and
// Commit fsyncs, so a record is durable exactly when Commit returns;
// both paths retry transient I/O errors with bounded exponential
// backoff. Opening a journal scans it from the start: a record cut off
// by the end of the file is a torn tail from a crashed append and is
// truncated away silently, while a fully-present record whose CRC does
// not match is damage to committed data and surfaces as a typed
// *CorruptRecordError — the decoder never panics and never silently
// accepts a damaged record.
//
// Snapshots are separate single-record files written through a
// temp-file rename, so a snapshot either exists completely or not at
// all; a reader that finds a damaged snapshot skips it and falls back
// to the previous one.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ehdl/internal/obs"
)

// Journal file format constants. The golden-fixture test pins all of
// them; changing any is an explicit on-disk format break and must bump
// Version.
const (
	// JournalMagic opens every journal file.
	JournalMagic = "EHDLWAL\x01"
	// SnapshotMagic opens every snapshot file.
	SnapshotMagic = "EHDLSNP\x01"
	// Version is the current on-disk format version, stored little-
	// endian right after the magic.
	Version = 1
	// headerLen is magic + u32 version.
	headerLen = len(JournalMagic) + 4
	// recordOverhead is the framing around a payload: u32 length, u8
	// type, u32 CRC32C.
	recordOverhead = 4 + 1 + 4
	// MaxRecordBytes bounds a single record's payload. A scanned length
	// field above it can only be damage (the writer refuses such
	// records), never a legitimate torn write.
	MaxRecordBytes = 64 << 20
)

// Metric names accumulated into Options.Metrics.
const (
	MetricAppends          = "durable.journal_appends"
	MetricCommits          = "durable.journal_commits"
	MetricRetries          = "durable.io_retries"
	MetricTornBytes        = "durable.torn_bytes_truncated"
	MetricSnapshotsWritten = "durable.snapshots_written"
	MetricSnapshotsSkipped = "durable.snapshots_skipped"
)

// castagnoli is the CRC32C polynomial table (iSCSI/ext4 castagnoli, the
// variant with hardware support on both x86 and arm).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journal entry: an application-defined type byte and an
// opaque payload.
type Record struct {
	Type    byte
	Payload []byte
}

// CorruptRecordError reports committed journal or snapshot data that no
// longer decodes: a CRC mismatch, a damaged header, or an impossible
// length field. It is distinct from a torn tail, which Decode truncates
// silently — corruption means bytes that were durably written have
// changed, and the caller must decide whether to fall back or fail.
type CorruptRecordError struct {
	// Path is the file concerned ("" when decoding from memory).
	Path string
	// Offset is the byte offset of the damaged frame.
	Offset int64
	// Index is the record index of the damaged frame (-1 for the
	// header).
	Index int
	// Reason describes the damage.
	Reason string
}

func (e *CorruptRecordError) Error() string {
	where := e.Path
	if where == "" {
		where = "journal"
	}
	return fmt.Sprintf("durable: %s: corrupt record %d at offset %d: %s", where, e.Index, e.Offset, e.Reason)
}

// Options parameterises journal and snapshot I/O.
type Options struct {
	// RetryAttempts bounds write/fsync attempts on transient errors.
	// 0 means 5.
	RetryAttempts int
	// RetryBase is the first backoff delay; it doubles per attempt.
	// 0 means 1ms.
	RetryBase time.Duration
	// RetryMax caps the backoff delay. 0 means 50ms.
	RetryMax time.Duration
	// Metrics, when non-nil, accumulates the durable.* counters.
	Metrics *obs.Registry
	// Sleep replaces time.Sleep between retries (test hook).
	Sleep func(time.Duration)
}

func (o Options) retryAttempts() int {
	if o.RetryAttempts <= 0 {
		return 5
	}
	return o.RetryAttempts
}

func (o Options) retryBase() time.Duration {
	if o.RetryBase <= 0 {
		return time.Millisecond
	}
	return o.RetryBase
}

func (o Options) retryMax() time.Duration {
	if o.RetryMax <= 0 {
		return 50 * time.Millisecond
	}
	return o.RetryMax
}

func (o Options) sleep(d time.Duration) {
	if o.Sleep != nil {
		o.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (o Options) count(name string, n uint64) {
	if o.Metrics != nil && n > 0 {
		o.Metrics.Counter(name).Add(n)
	}
}

// withRetry runs op, retrying transient failures with bounded
// exponential backoff; the returned error is the last attempt's.
func (o Options) withRetry(what string, op func() error) error {
	attempts := o.retryAttempts()
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if i < attempts-1 {
			delay := o.retryBase() << i
			if max := o.retryMax(); delay > max {
				delay = max
			}
			o.count(MetricRetries, 1)
			o.sleep(delay)
		}
	}
	return fmt.Errorf("durable: %s failed after %d attempts: %w", what, attempts, err)
}

// EncodeHeader returns the journal file header.
func EncodeHeader() []byte {
	h := make([]byte, headerLen)
	copy(h, JournalMagic)
	binary.LittleEndian.PutUint32(h[len(JournalMagic):], Version)
	return h
}

// EncodeRecord frames one record.
func EncodeRecord(rec Record) []byte {
	out := make([]byte, recordOverhead+len(rec.Payload))
	binary.LittleEndian.PutUint32(out, uint32(len(rec.Payload)))
	out[4] = rec.Type
	copy(out[5:], rec.Payload)
	crc := crc32.Checksum(out[4:5+len(rec.Payload)], castagnoli)
	binary.LittleEndian.PutUint32(out[5+len(rec.Payload):], crc)
	return out
}

// Decode parses a whole journal image (header plus records). It
// returns the decoded records and the number of torn-tail bytes the
// caller should truncate (a record or header cut off by the end of the
// image — the footprint of an append that crashed mid-write). Damage to
// fully-present data returns a *CorruptRecordError; Decode never
// panics.
func Decode(data []byte) (recs []Record, truncated int64, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	header := EncodeHeader()
	if len(data) < headerLen {
		// A file shorter than the header is a torn creation if the bytes
		// written so far agree with the header prefix, damage otherwise.
		if string(data) == string(header[:len(data)]) {
			return nil, int64(len(data)), nil
		}
		return nil, 0, &CorruptRecordError{Offset: 0, Index: -1, Reason: "damaged header"}
	}
	if string(data[:len(JournalMagic)]) != JournalMagic {
		return nil, 0, &CorruptRecordError{Offset: 0, Index: -1, Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(data[len(JournalMagic):headerLen]); v != Version {
		return nil, 0, &CorruptRecordError{Offset: int64(len(JournalMagic)), Index: -1,
			Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	off := int64(headerLen)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			// The length field itself is cut off: torn tail.
			return recs, int64(len(rest)), nil
		}
		plen := binary.LittleEndian.Uint32(rest)
		if plen > MaxRecordBytes {
			return recs, 0, &CorruptRecordError{Offset: off, Index: len(recs),
				Reason: fmt.Sprintf("payload length %d exceeds the %d-byte record limit", plen, MaxRecordBytes)}
		}
		frame := recordOverhead + int(plen)
		if len(rest) < frame {
			// The frame extends past the end of the image: torn tail.
			return recs, int64(len(rest)), nil
		}
		want := binary.LittleEndian.Uint32(rest[5+plen:])
		if got := crc32.Checksum(rest[4:5+plen], castagnoli); got != want {
			return recs, 0, &CorruptRecordError{Offset: off, Index: len(recs),
				Reason: fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", want, got)}
		}
		recs = append(recs, Record{Type: rest[4], Payload: append([]byte(nil), rest[5:5+plen]...)})
		off += int64(frame)
	}
	return recs, 0, nil
}

// journalFile is the file surface the journal writes through; *os.File
// satisfies it, and tests substitute fault-injecting stand-ins.
type journalFile interface {
	io.Writer
	io.Seeker
	Sync() error
	Close() error
	Truncate(size int64) error
}

// Journal is an open write-ahead journal positioned for append.
type Journal struct {
	f    journalFile
	path string
	opt  Options
	// off is the end of the last fully-written frame: the position every
	// append (re)starts from, so a failed write retried after a partial
	// transfer overwrites its own debris instead of appending to it.
	off int64
}

// OpenJournal opens (or creates) the journal at path, scans the
// existing records, truncates a torn tail left by a crashed append, and
// positions for append. It returns the journal, the records that
// survived the scan, and the number of torn bytes truncated. Corruption
// of fully-present data returns a *CorruptRecordError and no journal.
func OpenJournal(path string, opt Options) (*Journal, []Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("durable: open %s: %w", path, err)
	}
	recs, torn, derr := Decode(data)
	if derr != nil {
		if ce, ok := derr.(*CorruptRecordError); ok {
			ce.Path = path
		}
		return nil, nil, 0, derr
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: open %s: %w", path, err)
	}
	j := &Journal{f: f, path: path, opt: opt}
	good := int64(len(data)) - torn
	if good < int64(headerLen) {
		// Fresh file, or a creation torn even before the header finished:
		// (re)write the header from scratch.
		torn += good
		good = 0
		if err := j.reset(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	} else if torn > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("durable: truncate torn tail of %s: %w", path, err)
		}
		j.off = good
	} else {
		j.off = good
	}
	opt.count(MetricTornBytes, uint64(torn))
	return j, recs, torn, nil
}

// reset truncates the file to empty and writes a fresh header.
func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: truncate %s: %w", j.path, err)
	}
	header := EncodeHeader()
	err := j.opt.withRetry("header write", func() error {
		if _, err := j.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		_, err := j.f.Write(header)
		return err
	})
	if err != nil {
		return err
	}
	if err := j.opt.withRetry("header fsync", j.f.Sync); err != nil {
		return err
	}
	j.off = int64(headerLen)
	return nil
}

// Append writes one record to the journal. The record is not durable
// until Commit returns; a crash in between leaves at most a torn tail,
// which the next OpenJournal truncates. Transient write errors are
// retried with bounded exponential backoff, each retry re-seeking to
// the frame start so partial transfers never corrupt the framing.
func (j *Journal) Append(rec Record) error {
	if len(rec.Payload) > MaxRecordBytes {
		return fmt.Errorf("durable: record payload %d bytes exceeds the %d-byte limit", len(rec.Payload), MaxRecordBytes)
	}
	frame := EncodeRecord(rec)
	err := j.opt.withRetry("journal append", func() error {
		if _, err := j.f.Seek(j.off, io.SeekStart); err != nil {
			return err
		}
		_, err := j.f.Write(frame)
		return err
	})
	if err != nil {
		return err
	}
	j.off += int64(len(frame))
	j.opt.count(MetricAppends, 1)
	return nil
}

// Commit fsyncs the journal: every record appended so far is durable
// when it returns.
func (j *Journal) Commit() error {
	if err := j.opt.withRetry("journal fsync", j.f.Sync); err != nil {
		return err
	}
	j.opt.count(MetricCommits, 1)
	return nil
}

// Close closes the journal file without syncing.
func (j *Journal) Close() error { return j.f.Close() }

// Size returns the journal's current end-of-frame offset.
func (j *Journal) Size() int64 { return j.off }

// SnapshotName returns the file name of the snapshot for one epoch.
func SnapshotName(epoch int) string {
	return fmt.Sprintf("snap-%010d.snap", epoch)
}

// snapshotEpoch parses an epoch back out of a snapshot file name.
func snapshotEpoch(name string) (int, bool) {
	var epoch int
	if _, err := fmt.Sscanf(name, "snap-%010d.snap", &epoch); err != nil {
		return 0, false
	}
	return epoch, true
}

// EncodeSnapshot frames a snapshot payload:
// magic ‖ u32 version ‖ u32 length ‖ payload ‖ u32 CRC32C(payload).
func EncodeSnapshot(payload []byte) []byte {
	out := make([]byte, len(SnapshotMagic)+12+len(payload))
	n := copy(out, SnapshotMagic)
	binary.LittleEndian.PutUint32(out[n:], Version)
	binary.LittleEndian.PutUint32(out[n+4:], uint32(len(payload)))
	copy(out[n+8:], payload)
	binary.LittleEndian.PutUint32(out[n+8+len(payload):], crc32.Checksum(payload, castagnoli))
	return out
}

// DecodeSnapshot recovers the payload of a framed snapshot. Snapshots
// are written through a rename, so any damage — truncation included —
// is corruption, never a torn write: every failure is a typed
// *CorruptRecordError and the decoder never panics.
func DecodeSnapshot(data []byte) ([]byte, error) {
	head := len(SnapshotMagic)
	if len(data) < head+12 {
		return nil, &CorruptRecordError{Index: -1, Reason: "snapshot shorter than its header"}
	}
	if string(data[:head]) != SnapshotMagic {
		return nil, &CorruptRecordError{Index: -1, Reason: "bad snapshot magic"}
	}
	if v := binary.LittleEndian.Uint32(data[head:]); v != Version {
		return nil, &CorruptRecordError{Index: -1, Reason: fmt.Sprintf("unsupported snapshot version %d", v)}
	}
	plen := binary.LittleEndian.Uint32(data[head+4:])
	if plen > MaxRecordBytes || int(plen) != len(data)-head-12 {
		return nil, &CorruptRecordError{Index: -1, Reason: fmt.Sprintf("snapshot length %d does not match the %d-byte file", plen, len(data))}
	}
	payload := data[head+8 : head+8+int(plen)]
	want := binary.LittleEndian.Uint32(data[head+8+int(plen):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, &CorruptRecordError{Index: -1,
			Reason: fmt.Sprintf("snapshot crc mismatch (stored %08x, computed %08x)", want, got)}
	}
	return append([]byte(nil), payload...), nil
}

// WriteSnapshot atomically writes one epoch's full-state snapshot into
// dir: the framed payload goes to a temp file, is fsynced, and is
// renamed into place, so a crash at any point leaves either the
// complete snapshot or none at all.
func WriteSnapshot(dir string, epoch int, payload []byte, opt Options) error {
	enc := EncodeSnapshot(payload)
	final := filepath.Join(dir, SnapshotName(epoch))
	tmp := final + ".tmp"
	err := opt.withRetry("snapshot write", func() error {
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(enc); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	opt.count(MetricSnapshotsWritten, 1)
	return nil
}

// ReadSnapshot loads and verifies one snapshot file.
func ReadSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, derr := DecodeSnapshot(data)
	if derr != nil {
		if ce, ok := derr.(*CorruptRecordError); ok {
			ce.Path = path
		}
		return nil, derr
	}
	return payload, nil
}

// LoadLatestSnapshot returns the newest valid snapshot in dir: damaged
// snapshots are skipped (counted in skipped and the metrics) and the
// next older one is tried, so one corrupt file degrades recovery to a
// longer replay instead of failing it. epoch is -1 when no valid
// snapshot exists.
func LoadLatestSnapshot(dir string, opt Options) (epoch int, payload []byte, skipped int, err error) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return -1, nil, 0, err
	}
	type cand struct {
		epoch int
		path  string
	}
	var cands []cand
	for _, p := range names {
		if e, ok := snapshotEpoch(filepath.Base(p)); ok {
			cands = append(cands, cand{e, p})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].epoch > cands[j].epoch })
	for _, c := range cands {
		p, rerr := ReadSnapshot(c.path)
		if rerr != nil {
			skipped++
			opt.count(MetricSnapshotsSkipped, 1)
			continue
		}
		return c.epoch, p, skipped, nil
	}
	return -1, nil, skipped, nil
}
