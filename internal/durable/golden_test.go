package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// goldenRecords is the fixed record sequence committed in
// testdata/golden.wal.
var goldenRecords = []Record{
	{Type: 1, Payload: []byte(`{"schema":1,"seed":42}`)},
	{Type: 2, Payload: []byte("epoch:0")},
	{Type: 3, Payload: nil},
}

var goldenSnapshotPayload = []byte(`{"schema":1,"epoch":3}`)

// TestGoldenJournalFixture pins the on-disk journal format against the
// committed testdata/golden.wal: magic, version, length/type/CRC byte
// placement, and the exact fixture bytes. A change to any of these is an
// explicit format break — bump Version and regenerate the fixture with
//
//	EHDL_REGEN_GOLDEN=1 go test ./internal/durable/ -run Golden
func TestGoldenJournalFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden.wal")
	want := EncodeHeader()
	for _, r := range goldenRecords {
		want = append(want, EncodeRecord(r)...)
	}
	if os.Getenv("EHDL_REGEN_GOLDEN") != "" {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("current encoder no longer reproduces the committed fixture — on-disk format changed without a Version bump:\nfixture %x\nencoder %x", data, want)
	}

	// Pin the absolute byte layout, independent of the encoder.
	if string(data[:8]) != "EHDLWAL\x01" {
		t.Errorf("bytes 0..7 = %q, want magic EHDLWAL\\x01", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != 1 {
		t.Errorf("version at offset 8 = %d, want 1", v)
	}
	off := 12
	for i, r := range goldenRecords {
		plen := binary.LittleEndian.Uint32(data[off:])
		if int(plen) != len(r.Payload) {
			t.Errorf("record %d: length field at offset %d = %d, want %d", i, off, plen, len(r.Payload))
		}
		if data[off+4] != r.Type {
			t.Errorf("record %d: type byte at offset %d = %d, want %d", i, off+4, data[off+4], r.Type)
		}
		if !bytes.Equal(data[off+5:off+5+int(plen)], r.Payload) {
			t.Errorf("record %d: payload at offset %d differs", i, off+5)
		}
		crcOff := off + 5 + int(plen)
		stored := binary.LittleEndian.Uint32(data[crcOff:])
		computed := crc32.Checksum(data[off+4:crcOff], crc32.MakeTable(crc32.Castagnoli))
		if stored != computed {
			t.Errorf("record %d: CRC32C at offset %d = %08x, want %08x (over type‖payload)", i, crcOff, stored, computed)
		}
		off = crcOff + 4
	}
	if off != len(data) {
		t.Errorf("fixture has %d trailing bytes after the last record", len(data)-off)
	}

	// And the decoder agrees with the layout.
	recs, torn, err := Decode(data)
	if err != nil || torn != 0 {
		t.Fatalf("Decode(fixture) = torn %d, err %v", torn, err)
	}
	if len(recs) != len(goldenRecords) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(goldenRecords))
	}
	for i, r := range recs {
		if r.Type != goldenRecords[i].Type || !bytes.Equal(r.Payload, goldenRecords[i].Payload) {
			t.Errorf("decoded record %d = {%d, %q}", i, r.Type, r.Payload)
		}
	}
}

// TestGoldenSnapshotFixture pins the snapshot framing the same way.
func TestGoldenSnapshotFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden.snap")
	want := EncodeSnapshot(goldenSnapshotPayload)
	if os.Getenv("EHDL_REGEN_GOLDEN") != "" {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("snapshot encoder no longer reproduces the committed fixture:\nfixture %x\nencoder %x", data, want)
	}
	if string(data[:8]) != "EHDLSNP\x01" {
		t.Errorf("bytes 0..7 = %q, want magic EHDLSNP\\x01", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != 1 {
		t.Errorf("version at offset 8 = %d, want 1", v)
	}
	if plen := binary.LittleEndian.Uint32(data[12:16]); int(plen) != len(goldenSnapshotPayload) {
		t.Errorf("length at offset 12 = %d, want %d", plen, len(goldenSnapshotPayload))
	}
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	computed := crc32.Checksum(goldenSnapshotPayload, crc32.MakeTable(crc32.Castagnoli))
	if stored != computed {
		t.Errorf("trailing CRC32C = %08x, want %08x (over payload)", stored, computed)
	}
	payload, err := DecodeSnapshot(data)
	if err != nil || !bytes.Equal(payload, goldenSnapshotPayload) {
		t.Fatalf("DecodeSnapshot(fixture) = %q, %v", payload, err)
	}
}
