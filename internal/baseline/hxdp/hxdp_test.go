package hxdp

import (
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
)

func TestPackRespectsDependencies(t *testing.T) {
	// r1 += r0 depends on r0 = 1: two bundles, not one.
	prog, err := asm.Assemble("dep", "r0 = 1\nr1 += r0\nexit")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().StaticBundles(prog)
	if err != nil {
		t.Fatal(err)
	}
	if b != 3 { // two dependent ALU ops + exit
		t.Errorf("bundles = %d, want 3", b)
	}
	// Independent ops pack together.
	prog, _ = asm.Assemble("indep", "r0 = 1\nr1 = 2\nexit")
	b, _ = New().StaticBundles(prog)
	if b != 2 {
		t.Errorf("independent bundles = %d, want 2", b)
	}
}

func TestBranchesIssueAlone(t *testing.T) {
	prog, err := asm.Assemble("br", "r0 = 1\nif r0 == 1 goto +0\nr1 = 2\nexit")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New().StaticBundles(prog)
	if b != 4 {
		t.Errorf("bundles = %d, want 4 (branches issue alone and end windows)", b)
	}
}

func TestStoresShareNoMemoryPort(t *testing.T) {
	prog, err := asm.Assemble("mem", `
r7 = *(u32 *)(r1 + 0)
*(u8 *)(r7 + 0) = r7
*(u8 *)(r7 + 1) = r7
exit`)
	if err != nil {
		t.Fatal(err)
	}
	two, _ := New().StaticBundles(prog)
	wide := &Model{Lanes: 4}
	four, _ := wide.StaticBundles(prog)
	if four != two {
		t.Errorf("extra lanes changed memory-port-limited packing: %d vs %d", four, two)
	}
}

func TestHelperLatencies(t *testing.T) {
	if helperCycles(ebpf.HelperMapUpdateElem) <= helperCycles(ebpf.HelperKtimeGetNs) {
		t.Error("map updates must cost more than a counter sample")
	}
}

func TestResourcesIncludeShell(t *testing.T) {
	r := New().Resources()
	if r.LUTs < 40000 {
		t.Errorf("hXDP + shell = %d LUTs; the shell alone is 42k", r.LUTs)
	}
}
