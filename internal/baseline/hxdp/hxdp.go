// Package hxdp models hXDP [Brunella et al., OSDI'20], the FPGA soft
// processor the paper compares against: a single-core, 2-lane VLIW
// machine clocked at 250 MHz that executes eBPF programs one packet at
// a time.
//
// The model is analytic where the paper's reasoning is analytic:
// per-packet cycles are derived from the dynamically executed
// instruction stream (produced by the reference interpreter), packed
// into VLIW bundles with the same dependency rules the eHDL scheduler
// uses, plus fixed costs for helper invocations and packet movement in
// and out of the processor's local memory.
package hxdp

import (
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/hdl"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

// Model parameterises the processor.
type Model struct {
	// ClockHz is the processor clock. 0 means 250 MHz.
	ClockHz float64
	// Lanes is the VLIW width. 0 means 2, the published configuration.
	Lanes int
	// PacketMoveBytesPerCycle is the local-memory bandwidth for loading
	// and storing the packet. 0 means 8 (one 64-bit word per cycle).
	PacketMoveBytesPerCycle int
}

// New returns the published hXDP configuration.
func New() *Model { return &Model{} }

func (m *Model) clock() float64 {
	if m.ClockHz <= 0 {
		return 250e6
	}
	return m.ClockHz
}

func (m *Model) lanes() int {
	if m.Lanes <= 0 {
		return 2
	}
	return m.Lanes
}

func (m *Model) moveBW() int {
	if m.PacketMoveBytesPerCycle <= 0 {
		return 8
	}
	return m.PacketMoveBytesPerCycle
}

// helperCycles is the latency of helper function units on the soft
// processor.
func helperCycles(id ebpf.HelperID) int {
	switch id {
	case ebpf.HelperMapLookupElem:
		return 10
	case ebpf.HelperMapUpdateElem:
		return 14
	case ebpf.HelperMapDeleteElem:
		return 12
	case ebpf.HelperXDPAdjustHead, ebpf.HelperXDPAdjustTail:
		return 8
	default:
		return 4
	}
}

// Report summarises a traffic run on the model.
type Report struct {
	Packets          uint64
	TotalCycles      uint64
	CyclesPerPacket  float64
	Mpps             float64
	AvgLatencyNs     float64
	BundlesPerPacket float64
}

// StaticBundles packs the whole program into VLIW bundles, the quantity
// Figure 9c reports as "hXDP instructions". Adjacent instructions of the
// same basic block issue together when they have no register or memory
// dependency, up to the lane width; calls, branches and exits issue
// alone.
func (m *Model) StaticBundles(prog *ebpf.Program) (int, error) {
	if err := prog.Validate(); err != nil {
		return 0, err
	}
	return m.packCount(instructionWindows(prog)), nil
}

// instructionWindows splits the program into maximal branch-free runs.
func instructionWindows(prog *ebpf.Program) [][]ebpf.Instruction {
	var out [][]ebpf.Instruction
	var cur []ebpf.Instruction
	targets := map[int]bool{}
	for i, ins := range prog.Instructions {
		if ins.IsBranch() {
			if t, ok := prog.BranchTarget(i); ok {
				targets[t] = true
			}
		}
	}
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
	}
	for i, ins := range prog.Instructions {
		if targets[i] {
			flush()
		}
		cur = append(cur, ins)
		if ins.IsBranch() || ins.IsExit() || ins.IsCall() {
			flush()
		}
	}
	flush()
	return out
}

// packCount greedily packs each window into bundles of lane width.
func (m *Model) packCount(windows [][]ebpf.Instruction) int {
	lanes := m.lanes()
	bundles := 0
	for _, win := range windows {
		i := 0
		for i < len(win) {
			width := 1
			for width < lanes && i+width < len(win) && independent(win[i:i+width], win[i+width]) {
				width++
			}
			bundles++
			i += width
		}
	}
	return bundles
}

// independent reports whether next can issue alongside the instructions
// already in the bundle.
func independent(bundle []ebpf.Instruction, next ebpf.Instruction) bool {
	if next.IsBranch() || next.IsExit() || next.IsCall() {
		return false
	}
	nextUses := regMask(next.Uses())
	nextDefs := regMask(next.Defs())
	for _, b := range bundle {
		if b.IsBranch() || b.IsExit() || b.IsCall() {
			return false
		}
		bDefs := regMask(b.Defs())
		bUses := regMask(b.Uses())
		if bDefs&nextUses != 0 || bUses&nextDefs != 0 || bDefs&nextDefs != 0 {
			return false
		}
		// Two memory operations share the single local-memory port
		// unless both are loads.
		bMem := b.Class().IsLoad() || b.Class().IsStore()
		nMem := next.Class().IsLoad() || next.Class().IsStore()
		if bMem && nMem && (b.Class().IsStore() || next.Class().IsStore()) {
			return false
		}
	}
	return true
}

func regMask(regs []ebpf.Register) uint16 {
	var m uint16
	for _, r := range regs {
		m |= 1 << r
	}
	return m
}

// Run executes traffic on the model: the reference interpreter supplies
// the per-packet instruction trace, which is packed into bundles and
// priced. Packets are processed strictly one at a time — the source of
// the 10-100x gap to the eHDL pipelines.
func (m *Model) Run(prog *ebpf.Program, env *vm.Env, packets [][]byte) (Report, error) {
	machine, err := vm.New(prog, env)
	if err != nil {
		return Report{}, err
	}
	machine.CollectTrace = true

	var rep Report
	var totalBundles uint64
	for _, data := range packets {
		res, err := machine.Run(vm.NewPacket(data))
		if err != nil {
			return Report{}, fmt.Errorf("hxdp: %w", err)
		}
		cycles, bundles := m.priceTrace(prog, res.Trace)
		// Packet movement in and out of processor-local memory.
		move := 2 * ((len(data) + m.moveBW() - 1) / m.moveBW())
		rep.TotalCycles += uint64(cycles + move)
		totalBundles += uint64(bundles)
		rep.Packets++
	}
	if rep.Packets > 0 {
		rep.CyclesPerPacket = float64(rep.TotalCycles) / float64(rep.Packets)
		rep.BundlesPerPacket = float64(totalBundles) / float64(rep.Packets)
	}
	clock := m.clock()
	rep.Mpps = clock / rep.CyclesPerPacket / 1e6
	rep.AvgLatencyNs = rep.CyclesPerPacket / clock * 1e9
	return rep, nil
}

// priceTrace packs a dynamic instruction trace into bundles and adds
// helper latencies.
func (m *Model) priceTrace(prog *ebpf.Program, trace []int) (cycles, bundles int) {
	lanes := m.lanes()
	i := 0
	for i < len(trace) {
		ins := prog.Instructions[trace[i]]
		if ins.IsCall() {
			cycles += helperCycles(ebpf.HelperID(ins.Imm))
			bundles++
			i++
			continue
		}
		width := 1
		for width < lanes && i+width < len(trace) &&
			trace[i+width] == trace[i+width-1]+1 && // straight-line fetch
			independent([]ebpf.Instruction{ins}, prog.Instructions[trace[i+width]]) {
			width++
		}
		cycles++
		bundles++
		i += width
	}
	return cycles, bundles
}

// RunApp is a convenience wrapper: fresh maps, host setup, generated
// traffic.
func (m *Model) RunApp(prog *ebpf.Program, setup func(*maps.Set) error, gen *pktgen.Generator, n int) (Report, error) {
	env, err := vm.NewEnv(prog)
	if err != nil {
		return Report{}, err
	}
	env.Now = func() uint64 { return 0 }
	if setup != nil {
		if err := setup(env.Maps); err != nil {
			return Report{}, err
		}
	}
	return m.Run(prog, env, gen.Batch(n))
}

// Resources returns the synthesised footprint of the hXDP processor on
// the Alveo U50 (fixed: it is a processor, not a per-program design),
// including the Corundum shell, per Figure 10.
func (m *Model) Resources() hdl.Resources {
	return hdl.Resources{LUTs: 24_000, FFs: 32_000, BRAM36: 102}.Add(hdl.CorundumShell())
}
