// Package sdnet models the Xilinx SDNet P4 high-level-synthesis
// baseline: a PISA-style architecture with a programmable parser,
// generic match-action tables and a deparser.
//
// Two properties of the baseline matter for the paper's comparison and
// both are modelled here:
//
//  1. Expressiveness: SDNet P4 cannot update match tables from the data
//     plane, so the dynamic NAT is not implementable ("there is no
//     obvious way to define the dynamic port selection within the data
//     plane with SDNet P4", Section 5). Compile rejects such programs.
//  2. Resources: the generated designs instantiate generic programmable
//     parsers and lookup tables rather than program-tailored logic, so
//     they cost 2-4x the resources of eHDL pipelines (Figure 10).
//
// Throughput is line rate — like eHDL, a PISA pipeline forwards one
// packet per clock — so Figure 9a shows both at 148 Mpps.
package sdnet

import (
	"fmt"

	"ehdl/internal/apps"
	"ehdl/internal/ebpf"
	"ehdl/internal/hdl"
	"ehdl/internal/pktgen"
)

// Design is a synthesised P4 program for the PISA-style target.
type Design struct {
	App    *apps.App
	Tables []TableSpec
	// ParserStates approximates the parse graph size.
	ParserStates int
}

// TableSpec is one generic match-action table.
type TableSpec struct {
	Name      string
	KeyBits   int
	ValueBits int
	Entries   int
}

// ErrNotExpressible reports a program outside the P4/PISA model.
var ErrNotExpressible = fmt.Errorf("sdnet: data-plane table updates are not expressible in SDNet P4")

// Compile ports an application to the SDNet target. Applications whose
// data plane must write its own tables are rejected, reproducing the
// DNAT result of Section 5.
func Compile(app *apps.App) (*Design, error) {
	if !app.P4Expressible {
		return nil, fmt.Errorf("%w (application %q)", ErrNotExpressible, app.Name)
	}
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	d := &Design{App: app}
	for _, spec := range prog.Maps {
		d.Tables = append(d.Tables, TableSpec{
			Name:      spec.Name,
			KeyBits:   spec.KeySize * 8,
			ValueBits: spec.ValueSize * 8,
			Entries:   spec.MaxEntries,
		})
	}
	// Parse-graph size: one state per protocol layer the program
	// inspects, approximated from the packet offsets it touches.
	d.ParserStates = parserStates(prog)
	return d, nil
}

// parserStates counts protocol layers from the deepest static packet
// offset the program reads (eth=1, ip=2, l4=3, deeper=4).
func parserStates(prog *ebpf.Program) int {
	deepest := 0
	for _, ins := range prog.Instructions {
		if ins.Class() == ebpf.ClassLDX && int(ins.Off) > deepest {
			deepest = int(ins.Off)
		}
	}
	switch {
	case deepest < 14:
		return 1
	case deepest < 34:
		return 2
	case deepest < 54:
		return 3
	default:
		return 4
	}
}

// Resources prices the generated design including the shell. Generic
// parser/deparser/table engines dominate, independent of how much of
// their generality the program uses — the contrast with eHDL's tailored
// pipelines.
func (d *Design) Resources() hdl.Resources {
	r := hdl.CorundumShell()
	// Programmable parser and deparser cores.
	r = r.Add(hdl.Resources{LUTs: 52_000, FFs: 88_000, BRAM36: 48})
	r = r.Add(hdl.Resources{LUTs: 21_000, FFs: 34_000, BRAM36: 16}.Scale(d.ParserStates))
	for _, t := range d.Tables {
		// Generic CAM-backed match engines with action units.
		bits := (t.KeyBits + t.ValueBits) * t.Entries
		r = r.Add(hdl.Resources{
			LUTs:   14_000,
			FFs:    18_000,
			BRAM36: 2 * ((bits + 36*1024 - 1) / (36 * 1024)),
		})
	}
	return r
}

// ThroughputMpps is the line-rate forwarding throughput: the PISA
// pipeline accepts one packet per clock, so it saturates the port like
// eHDL does.
func (d *Design) ThroughputMpps(linkGbps float64, pktLen int) float64 {
	return pktgen.LineRatePPS(linkGbps*1e9, pktLen) / 1e6
}
