package sdnet

import (
	"errors"
	"testing"

	"ehdl/internal/apps"
)

func TestParserStatesFollowParseDepth(t *testing.T) {
	shallow, err := Compile(apps.Toy()) // EtherType only
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Compile(apps.Firewall()) // through UDP
	if err != nil {
		t.Fatal(err)
	}
	if shallow.ParserStates >= deep.ParserStates {
		t.Errorf("parser states: toy %d vs firewall %d", shallow.ParserStates, deep.ParserStates)
	}
}

func TestTablesMirrorMaps(t *testing.T) {
	d, err := Compile(apps.Router())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (routes + stats)", len(d.Tables))
	}
	if d.Tables[0].Name != "routes" || d.Tables[0].KeyBits != 64 {
		t.Errorf("table 0 = %+v", d.Tables[0])
	}
}

func TestRejectionError(t *testing.T) {
	_, err := Compile(apps.DNAT())
	if !errors.Is(err, ErrNotExpressible) {
		t.Fatalf("err = %v", err)
	}
}

func TestMoreTablesMoreResources(t *testing.T) {
	one, _ := Compile(apps.Toy())
	two, _ := Compile(apps.Suricata())
	if two.Resources().LUTs <= one.Resources().LUTs {
		t.Error("a second table should cost resources")
	}
}
