// Package baseline_test exercises the three comparison systems together
// so the Figure 9/10 relationships hold by construction.
package baseline_test

import (
	"errors"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/baseline/bluefield"
	"ehdl/internal/baseline/hxdp"
	"ehdl/internal/baseline/sdnet"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hdl"
	"ehdl/internal/pktgen"
)

func mustProgram(t *testing.T, app *apps.App) *ebpf.Program {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestHXDPThroughputBand(t *testing.T) {
	// Figure 9a: hXDP forwards 0.9-5.4 Mpps depending on the program.
	m := hxdp.New()
	for _, app := range apps.All() {
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := m.RunApp(mustProgram(t, app), app.SetupHost, gen, 300)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if rep.Mpps < 0.5 || rep.Mpps > 8 {
			t.Errorf("%s: hXDP %.2f Mpps outside the paper's 0.9-5.4 band", app.Name, rep.Mpps)
		}
		if rep.CyclesPerPacket < 30 {
			t.Errorf("%s: %.0f cycles/packet is implausibly fast", app.Name, rep.CyclesPerPacket)
		}
	}
}

func TestHXDPStaticBundleCompression(t *testing.T) {
	// Figure 9c: the VLIW compiler reduces instruction counts, sometimes
	// by about 50%.
	m := hxdp.New()
	for _, app := range apps.All() {
		prog := mustProgram(t, app)
		bundles, err := m.StaticBundles(prog)
		if err != nil {
			t.Fatal(err)
		}
		n := len(prog.Instructions)
		if bundles >= n {
			t.Errorf("%s: %d bundles for %d instructions: no compression", app.Name, bundles, n)
		}
		if bundles < n/3 {
			t.Errorf("%s: %d bundles for %d instructions: over-compression", app.Name, bundles, n)
		}
	}
}

func TestHXDPLanesMatter(t *testing.T) {
	app := apps.Tunnel()
	one := &hxdp.Model{Lanes: 1}
	two := hxdp.New()
	b1, _ := one.StaticBundles(mustProgram(t, app))
	b2, _ := two.StaticBundles(mustProgram(t, app))
	if b2 >= b1 {
		t.Errorf("2-lane bundles (%d) should undercut 1-lane (%d)", b2, b1)
	}
}

func TestBluefieldScaling(t *testing.T) {
	app := apps.Firewall()
	gen := pktgen.NewGenerator(app.Traffic)
	packets := 300

	rep1, err := bluefield.New(1).RunApp(mustProgram(t, app), app.SetupHost, gen, packets)
	if err != nil {
		t.Fatal(err)
	}
	gen = pktgen.NewGenerator(app.Traffic)
	rep4, err := bluefield.New(4).RunApp(mustProgram(t, app), app.SetupHost, gen, packets)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9a: one core in the low Mpps, four cores near-linear.
	if rep1.Mpps < 0.5 || rep1.Mpps > 8 {
		t.Errorf("Bf2 1c = %.2f Mpps, outside the plausible band", rep1.Mpps)
	}
	ratio := rep4.Mpps / rep1.Mpps
	if ratio < 3.5 || ratio > 4.05 {
		t.Errorf("4-core scaling ratio = %.2f, want near-linear", ratio)
	}
	// Latency is 10x the FPGA's (Section 5.1 keeps it off Figure 9b).
	if rep1.AvgLatencyNs < 300 {
		t.Errorf("Bf2 latency %.0f ns implausibly low", rep1.AvgLatencyNs)
	}
}

func TestSDNetRejectsDNAT(t *testing.T) {
	_, err := sdnet.Compile(apps.DNAT())
	if !errors.Is(err, sdnet.ErrNotExpressible) {
		t.Fatalf("SDNet accepted the dynamic NAT: %v", err)
	}
	for _, app := range []*apps.App{apps.Firewall(), apps.Router(), apps.Tunnel(), apps.Suricata()} {
		if _, err := sdnet.Compile(app); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
}

func TestSDNetLineRate(t *testing.T) {
	d, err := sdnet.Compile(apps.Router())
	if err != nil {
		t.Fatal(err)
	}
	mpps := d.ThroughputMpps(100, 64)
	if mpps < 148 || mpps > 150 {
		t.Errorf("SDNet line rate = %.1f Mpps, want ~148.8", mpps)
	}
}

func TestResourceOrderingAcrossSystems(t *testing.T) {
	// Figure 10: eHDL is comparable to hXDP and 2-4x below SDNet.
	hx := hxdp.New().Resources()
	for _, app := range apps.All() {
		pl, err := core.Compile(mustProgram(t, app), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eh := hdl.EstimateDesign(pl)

		// eHDL vs hXDP: same order of magnitude.
		ratio := float64(eh.LUTs) / float64(hx.LUTs)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: eHDL/hXDP LUT ratio %.2f, want comparable", app.Name, ratio)
		}

		if !app.P4Expressible {
			continue
		}
		d, err := sdnet.Compile(app)
		if err != nil {
			t.Fatal(err)
		}
		sd := d.Resources()
		sdRatio := float64(sd.LUTs) / float64(eh.LUTs)
		if sdRatio < 1.8 || sdRatio > 4.5 {
			t.Errorf("%s: SDNet/eHDL LUT ratio %.2f, want 2-4x", app.Name, sdRatio)
		}
	}
}

func TestEHDLBeatsProcessorsBy10to100x(t *testing.T) {
	// The headline comparison: eHDL forwards line rate (148 Mpps at 64B)
	// while the processor baselines manage 0.9-5.4 Mpps — a 10-100x gap.
	line := pktgen.LineRatePPS(100e9, 64) / 1e6
	m := hxdp.New()
	for _, app := range apps.All() {
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := m.RunApp(mustProgram(t, app), app.SetupHost, gen, 200)
		if err != nil {
			t.Fatal(err)
		}
		gap := line / rep.Mpps
		if gap < 10 || gap > 300 {
			t.Errorf("%s: eHDL/hXDP gap = %.0fx, want within 10-100x (order)", app.Name, gap)
		}
	}
}
