package bluefield

import (
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/vm"
)

func runTiny(t *testing.T, m *Model) Report {
	t.Helper()
	prog, err := asm.Assemble("tiny", "r0 = 2\nexit")
	if err != nil {
		t.Fatal(err)
	}
	env, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	packets := make([][]byte, 50)
	for i := range packets {
		packets[i] = make([]byte, 64)
	}
	rep, err := m.Run(prog, env, packets)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestOverheadDominatesTinyPrograms(t *testing.T) {
	rep := runTiny(t, New(1))
	// A two-instruction program is bounded by the per-packet overhead.
	if rep.NsPerPacket < 300 || rep.NsPerPacket > 340 {
		t.Errorf("ns/packet = %.0f, want ~ the 310ns driver overhead", rep.NsPerPacket)
	}
}

func TestCoreClamping(t *testing.T) {
	if New(0).cores() != 1 || New(12).cores() != 8 {
		t.Error("core count clamping broken")
	}
	r1 := runTiny(t, New(1))
	r8 := runTiny(t, New(8))
	if r8.Mpps < 7*r1.Mpps {
		t.Errorf("8 cores = %.2f Mpps vs 1 core %.2f: sub-linear beyond tolerance", r8.Mpps, r1.Mpps)
	}
	if r8.AvgLatencyNs != r1.AvgLatencyNs {
		t.Error("adding cores must not change per-packet latency")
	}
}

func TestPowerBand(t *testing.T) {
	lo, hi := New(4).HostPowerWatts()
	if lo != 100 || hi != 105 {
		t.Errorf("power band = %v-%v, paper says 100-105", lo, hi)
	}
}
