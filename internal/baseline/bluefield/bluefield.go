// Package bluefield models the NVIDIA Bluefield-2 DPU baseline of the
// paper: eBPF programs run in the XDP hook of the Arm cores' kernel,
// with the embedded switch steering packets to the CPUs.
//
// The model follows how the paper uses the platform — an
// order-of-magnitude processor baseline whose throughput grows linearly
// with cores (Figure 9a: "comparable to hXDP when using a single Arm
// core ... growing linearly to over 10Mpps when using multiple cores").
// Per-packet cost = fixed driver/steering overhead + instruction
// execution time on an A72, measured from the reference interpreter's
// dynamic counts.
package bluefield

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

// Model parameterises the DPU.
type Model struct {
	// Cores used for packet processing (1-8). 0 means 1.
	Cores int
	// ClockHz of the Arm A72 cores. 0 means 2.75 GHz.
	ClockHz float64
	// CPI is the average cycles per eBPF instruction in the kernel
	// interpreter-free (JITed) path, including L1 effects. 0 means 1.3.
	CPI float64
	// PerPacketOverheadNs covers the embedded-switch steering, the
	// receive descriptor handling and the XDP driver path. 0 means 310.
	PerPacketOverheadNs float64
	// HelperOverheadNs is the extra cost of one helper call (map
	// lookups walk kernel hash tables). 0 means 28.
	HelperOverheadNs float64
	// ScalingEfficiency discounts multi-core scaling. 0 means 0.97.
	ScalingEfficiency float64
}

// New returns the published configuration with n cores.
func New(n int) *Model { return &Model{Cores: n} }

func (m *Model) cores() int {
	if m.Cores <= 0 {
		return 1
	}
	if m.Cores > 8 {
		return 8
	}
	return m.Cores
}

func (m *Model) clock() float64 {
	if m.ClockHz <= 0 {
		return 2.75e9
	}
	return m.ClockHz
}

func (m *Model) cpi() float64 {
	if m.CPI <= 0 {
		return 1.3
	}
	return m.CPI
}

func (m *Model) overhead() float64 {
	if m.PerPacketOverheadNs <= 0 {
		return 310
	}
	return m.PerPacketOverheadNs
}

func (m *Model) helperNs() float64 {
	if m.HelperOverheadNs <= 0 {
		return 28
	}
	return m.HelperOverheadNs
}

func (m *Model) scaling() float64 {
	if m.ScalingEfficiency <= 0 {
		return 0.97
	}
	return m.ScalingEfficiency
}

// Report summarises a traffic run.
type Report struct {
	Packets      uint64
	NsPerPacket  float64
	Mpps         float64
	AvgLatencyNs float64
	Cores        int
}

// Run prices the traffic on the DPU model using the reference
// interpreter for dynamic instruction and helper counts.
func (m *Model) Run(prog *ebpf.Program, env *vm.Env, packets [][]byte) (Report, error) {
	machine, err := vm.New(prog, env)
	if err != nil {
		return Report{}, err
	}
	var totalNs float64
	var rep Report
	for _, data := range packets {
		res, err := machine.Run(vm.NewPacket(data))
		if err != nil {
			return Report{}, err
		}
		instrNs := float64(res.Steps) * m.cpi() / m.clock() * 1e9
		totalNs += m.overhead() + instrNs + float64(res.HelperCalls)*m.helperNs()
		rep.Packets++
	}
	if rep.Packets > 0 {
		rep.NsPerPacket = totalNs / float64(rep.Packets)
	}
	// Cores process independent packets in parallel; latency stays
	// per-core, throughput scales.
	scale := 1.0
	for c := 1; c < m.cores(); c++ {
		scale += m.scaling()
	}
	rep.Mpps = 1e3 / rep.NsPerPacket * scale
	rep.AvgLatencyNs = rep.NsPerPacket
	rep.Cores = m.cores()
	return rep, nil
}

// RunApp is the convenience wrapper used by the benchmarks.
func (m *Model) RunApp(prog *ebpf.Program, setup func(*maps.Set) error, gen *pktgen.Generator, n int) (Report, error) {
	env, err := vm.NewEnv(prog)
	if err != nil {
		return Report{}, err
	}
	env.Now = func() uint64 { return 0 }
	if setup != nil {
		if err := setup(env.Maps); err != nil {
			return Report{}, err
		}
	}
	return m.Run(prog, env, gen.Batch(n))
}

// HostPowerWatts is the measured wall power of the machine hosting the
// DPU (Section 5.2: 100-105 W, against 80-85 W for the U50 host).
func (m *Model) HostPowerWatts() (min, max float64) { return 100, 105 }
