// Package elf loads eBPF programs from the ELF object files emitted by
// clang -target bpf, the same artifacts the Linux loader consumes. The
// paper's workflow starts from exactly these objects ("eHDL could
// readily generate the hardware design from the cloned Suricata GIT
// repository"): program sections hold raw bytecode, the maps section
// declares bpf_map_def structures, and relocations bind LDDW
// instructions to their map symbols.
//
// Supported layout (the classic libbpf format):
//
//   - program sections: any executable section (e.g. "xdp", "prog",
//     "xdp/router");
//   - "maps" section: an array of struct bpf_map_def { u32 type,
//     key_size, value_size, max_entries, map_flags; } entries, one per
//     map symbol;
//   - REL relocations against program sections, resolving map symbols
//     into the imm field of LDDW instructions.
package elf

import (
	"debug/elf"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"ehdl/internal/ebpf"
)

// bpfMapDefSize is sizeof(struct bpf_map_def) in the classic layout.
const bpfMapDefSize = 20

// Linux BPF map type numbers (UAPI) for the kinds this toolchain
// supports.
const (
	bpfMapTypeHash    = 1
	bpfMapTypeArray   = 2
	bpfMapTypeLRUHash = 9
	bpfMapTypeLPMTrie = 11
	bpfMapTypeDevMap  = 14
)

func mapKind(t uint32) (ebpf.MapKind, error) {
	switch t {
	case bpfMapTypeHash:
		return ebpf.MapHash, nil
	case bpfMapTypeArray:
		return ebpf.MapArray, nil
	case bpfMapTypeLRUHash:
		return ebpf.MapLRUHash, nil
	case bpfMapTypeLPMTrie:
		return ebpf.MapLPMTrie, nil
	case bpfMapTypeDevMap:
		return ebpf.MapDevMap, nil
	}
	return 0, fmt.Errorf("elf: unsupported BPF map type %d", t)
}

func mapTypeOf(kind ebpf.MapKind) uint32 {
	switch kind {
	case ebpf.MapHash:
		return bpfMapTypeHash
	case ebpf.MapArray:
		return bpfMapTypeArray
	case ebpf.MapLRUHash:
		return bpfMapTypeLRUHash
	case ebpf.MapLPMTrie:
		return bpfMapTypeLPMTrie
	case ebpf.MapDevMap:
		return bpfMapTypeDevMap
	}
	return 0
}

// Object is a parsed eBPF ELF object: one or more programs sharing a
// map set.
type Object struct {
	// Programs by section name, each already carrying the shared maps.
	Programs map[string]*ebpf.Program
	// Maps in symbol order.
	Maps []ebpf.MapSpec
}

// LoadFile parses an object file from disk.
func LoadFile(path string) (*Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load parses an object from a reader.
func Load(r io.ReaderAt) (*Object, error) {
	f, err := elf.NewFile(r)
	if err != nil {
		return nil, fmt.Errorf("elf: %w", err)
	}
	defer f.Close()

	if f.Class != elf.ELFCLASS64 || f.Data != elf.ELFDATA2LSB {
		return nil, fmt.Errorf("elf: eBPF objects are little-endian ELF64")
	}
	if f.Machine != elf.EM_BPF && f.Machine != elf.EM_NONE {
		return nil, fmt.Errorf("elf: unexpected machine %v", f.Machine)
	}

	symbols, err := f.Symbols()
	if err != nil {
		return nil, fmt.Errorf("elf: symbol table: %w", err)
	}

	obj := &Object{Programs: map[string]*ebpf.Program{}}

	// Maps section: one bpf_map_def per map symbol, named by the symbol.
	mapsSection, mapsIndex := findSection(f, "maps")
	mapByOffset := map[uint64]string{}
	if mapsSection != nil {
		data, err := mapsSection.Data()
		if err != nil {
			return nil, fmt.Errorf("elf: maps section: %w", err)
		}
		var mapSyms []elf.Symbol
		for _, sym := range symbols {
			if int(sym.Section) == mapsIndex && elf.ST_TYPE(sym.Info) != elf.STT_SECTION {
				mapSyms = append(mapSyms, sym)
			}
		}
		sort.Slice(mapSyms, func(i, j int) bool { return mapSyms[i].Value < mapSyms[j].Value })
		for _, sym := range mapSyms {
			off := sym.Value
			if off+bpfMapDefSize > uint64(len(data)) {
				return nil, fmt.Errorf("elf: map %q definition out of section bounds", sym.Name)
			}
			def := data[off:]
			kind, err := mapKind(binary.LittleEndian.Uint32(def[0:4]))
			if err != nil {
				return nil, fmt.Errorf("elf: map %q: %w", sym.Name, err)
			}
			spec := ebpf.MapSpec{
				Name:       sym.Name,
				Kind:       kind,
				KeySize:    int(binary.LittleEndian.Uint32(def[4:8])),
				ValueSize:  int(binary.LittleEndian.Uint32(def[8:12])),
				MaxEntries: int(binary.LittleEndian.Uint32(def[12:16])),
			}
			if err := spec.Validate(); err != nil {
				return nil, fmt.Errorf("elf: %w", err)
			}
			mapByOffset[off] = sym.Name
			obj.Maps = append(obj.Maps, spec)
		}
	}

	// Program sections: executable PROGBITS that are not reserved names.
	for si, sec := range f.Sections {
		if sec.Type != elf.SHT_PROGBITS || sec.Flags&elf.SHF_EXECINSTR == 0 || sec.Size == 0 {
			continue
		}
		data, err := sec.Data()
		if err != nil {
			return nil, fmt.Errorf("elf: section %q: %w", sec.Name, err)
		}
		insns, err := ebpf.UnmarshalInstructions(data)
		if err != nil {
			return nil, fmt.Errorf("elf: section %q: %w", sec.Name, err)
		}
		prog := &ebpf.Program{Name: sec.Name, Instructions: insns, Maps: obj.Maps}
		if err := applyRelocations(f, si, prog, symbols, mapByOffset); err != nil {
			return nil, fmt.Errorf("elf: section %q: %w", sec.Name, err)
		}
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("elf: section %q: %w", sec.Name, err)
		}
		obj.Programs[sec.Name] = prog
	}
	if len(obj.Programs) == 0 {
		return nil, fmt.Errorf("elf: no executable program sections")
	}
	return obj, nil
}

// Program returns the object's single program, or the named one.
func (o *Object) Program(name string) (*ebpf.Program, error) {
	if name != "" {
		p, ok := o.Programs[name]
		if !ok {
			return nil, fmt.Errorf("elf: no program section %q", name)
		}
		return p, nil
	}
	if len(o.Programs) == 1 {
		for _, p := range o.Programs {
			return p, nil
		}
	}
	var names []string
	for n := range o.Programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("elf: object has %d programs %v; pick one", len(names), names)
}

func findSection(f *elf.File, name string) (*elf.Section, int) {
	for i, s := range f.Sections {
		if s.Name == name {
			return s, i
		}
	}
	return nil, -1
}

// applyRelocations binds LDDW instructions to their map symbols via the
// section's REL table.
func applyRelocations(f *elf.File, progSection int, prog *ebpf.Program,
	symbols []elf.Symbol, mapByOffset map[uint64]string) error {

	var rel *elf.Section
	for _, s := range f.Sections {
		if (s.Type == elf.SHT_REL || s.Type == elf.SHT_RELA) && int(s.Info) == progSection {
			rel = s
			break
		}
	}
	if rel == nil {
		return nil
	}
	data, err := rel.Data()
	if err != nil {
		return err
	}
	entrySize := 16
	if rel.Type == elf.SHT_RELA {
		entrySize = 24
	}
	bySlot := prog.IndexBySlot()
	for off := 0; off+entrySize <= len(data); off += entrySize {
		rOff := binary.LittleEndian.Uint64(data[off : off+8])
		rInfo := binary.LittleEndian.Uint64(data[off+8 : off+16])
		symIdx := int(rInfo >> 32)
		if symIdx == 0 || symIdx > len(symbols) {
			return fmt.Errorf("relocation references symbol %d of %d", symIdx, len(symbols))
		}
		sym := symbols[symIdx-1] // debug/elf drops the null symbol

		if rOff%ebpf.WordSize != 0 {
			return fmt.Errorf("misaligned relocation offset %d", rOff)
		}
		idx, ok := bySlot[int(rOff/ebpf.WordSize)]
		if !ok {
			return fmt.Errorf("relocation at slot %d does not start an instruction", rOff/ebpf.WordSize)
		}
		ins := &prog.Instructions[idx]
		if !ins.IsLoadImm64() {
			return fmt.Errorf("relocation targets %q, not a lddw", ins)
		}
		mapName := sym.Name
		if byOff, ok := mapByOffset[sym.Value]; ok && byOff != "" {
			mapName = byOff
		}
		if _, found := prog.MapSpecByName(mapName); !found {
			return fmt.Errorf("relocation against unknown map symbol %q", sym.Name)
		}
		ins.Src = ebpf.PseudoMapFD
		ins.MapRef = mapName
		ins.Imm = 0
		ins.Imm64 = 0
	}
	return nil
}
