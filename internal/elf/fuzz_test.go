package elf

import (
	"bytes"
	"testing"

	"ehdl/internal/apps"
)

// FuzzLoad throws mutated object files at the loader: it must never
// panic or accept something that fails program validation.
func FuzzLoad(f *testing.F) {
	for _, app := range []string{"toy", "firewall"} {
		a, _ := apps.ByName(app)
		prog, err := a.Program()
		if err != nil {
			f.Fatal(err)
		}
		if data, err := Marshal(prog, "xdp"); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("\x7fELF"))
	f.Fuzz(func(t *testing.T, data []byte) {
		obj, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		for name, prog := range obj.Programs {
			if err := prog.Validate(); err != nil {
				t.Fatalf("loaded program %q fails validation: %v", name, err)
			}
		}
	})
}
