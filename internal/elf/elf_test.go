package elf

import (
	"bytes"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/vm"
)

func mustProgram(t *testing.T, app *apps.App) *ebpf.Program {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func roundTrip(t *testing.T, prog *ebpf.Program, section string) *ebpf.Program {
	t.Helper()
	data, err := Marshal(prog, section)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj.Program(section)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripAllApps(t *testing.T) {
	for _, app := range append(apps.All(), apps.Toy(), apps.LeakyBucket()) {
		prog := mustProgram(t, app)
		got := roundTrip(t, prog, "xdp")
		if len(got.Instructions) != len(prog.Instructions) {
			t.Fatalf("%s: %d instructions after round trip, want %d",
				app.Name, len(got.Instructions), len(prog.Instructions))
		}
		for i := range prog.Instructions {
			want := prog.Instructions[i]
			if got.Instructions[i] != want {
				t.Fatalf("%s: instruction %d: %v vs %v", app.Name, i, got.Instructions[i], want)
			}
		}
		if len(got.Maps) != len(prog.Maps) {
			t.Fatalf("%s: %d maps, want %d", app.Name, len(got.Maps), len(prog.Maps))
		}
		for i := range prog.Maps {
			if got.Maps[i] != prog.Maps[i] {
				t.Fatalf("%s: map %d: %+v vs %+v", app.Name, i, got.Maps[i], prog.Maps[i])
			}
		}
	}
}

func TestLoadedObjectCompilesAndRuns(t *testing.T) {
	// The full paper workflow: object file in, pipeline out.
	prog := roundTrip(t, mustProgram(t, apps.Toy()), "xdp")
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumStages() == 0 {
		t.Fatal("empty pipeline from a loaded object")
	}
	// And it still executes.
	env, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 64)
	pkt[12], pkt[13] = 0x08, 0x00
	res, err := m.Run(vm.NewPacket(pkt))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPTx {
		t.Fatalf("action = %v", res.Action)
	}
}

func TestRelocationsAreBlankInTheObject(t *testing.T) {
	// The emitted text must carry zeroed LDDW immediates (the loader
	// fills them), and Load must restore the symbolic references.
	prog := mustProgram(t, apps.Toy())
	data, err := Marshal(prog, "xdp")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := obj.Program("")
	found := false
	for _, ins := range got.Instructions {
		if ins.IsLoadOfMapFD() {
			found = true
			if ins.MapRef != "stats" {
				t.Errorf("relocated map ref = %q", ins.MapRef)
			}
		}
	}
	if !found {
		t.Fatal("no relocated map reference in the loaded program")
	}
}

func TestProgramSelection(t *testing.T) {
	obj, err := Load(bytes.NewReader(mustMarshal(t, mustProgram(t, apps.Toy()), "xdp/main")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Program("xdp/main"); err != nil {
		t.Error(err)
	}
	if _, err := obj.Program("absent"); err == nil {
		t.Error("Program(absent) succeeded")
	}
	if _, err := obj.Program(""); err != nil {
		t.Error("single-program default selection failed")
	}
}

func mustMarshal(t *testing.T, prog *ebpf.Program, section string) []byte {
	t.Helper()
	data, err := Marshal(prog, section)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an elf file at all......."))); err == nil {
		t.Error("accepted garbage")
	}
	// A valid ELF with no executable sections.
	prog := mustProgram(t, apps.Toy())
	data := mustMarshal(t, prog, "xdp")
	// Clear the EXECINSTR flag of section 1 (flags live at shoff + 1*64 + 8).
	shoff := int(uint64(data[40]) | uint64(data[41])<<8)
	data[shoff+64+8] = 0
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("accepted an object without program sections")
	}
}
