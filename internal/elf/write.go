package elf

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
)

// Marshal emits a program as a clang-compatible ELF object: the inverse
// of Load, used by ehdl-dis to produce loader-ready artifacts and by
// the test suite to round-trip real object layouts.
func Marshal(prog *ebpf.Program, sectionName string) ([]byte, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if sectionName == "" {
		sectionName = "xdp"
	}

	le := binary.LittleEndian

	// --- section payloads ------------------------------------------------

	// Program text with map references blanked: clang emits the LDDW
	// with a zero immediate; the loader's relocation pass fills it in.
	emit := make([]ebpf.Instruction, len(prog.Instructions))
	copy(emit, prog.Instructions)
	for i := range emit {
		if emit[i].IsLoadOfMapFD() {
			emit[i].Src = 0
			emit[i].Imm = 0
			emit[i].Imm64 = 0
			emit[i].MapRef = ""
		}
	}
	text := ebpf.MarshalInstructions(emit)

	// maps section: bpf_map_def per map.
	var mapsData bytes.Buffer
	mapOffsets := map[string]uint64{}
	for _, spec := range prog.Maps {
		mapOffsets[spec.Name] = uint64(mapsData.Len())
		var def [bpfMapDefSize]byte
		le.PutUint32(def[0:4], mapTypeOf(spec.Kind))
		le.PutUint32(def[4:8], uint32(spec.KeySize))
		le.PutUint32(def[8:12], uint32(spec.ValueSize))
		le.PutUint32(def[12:16], uint32(spec.MaxEntries))
		mapsData.Write(def[:])
	}

	// String table: \0 + map names.
	var strtab bytes.Buffer
	strtab.WriteByte(0)
	strOff := func(s string) uint32 {
		off := uint32(strtab.Len())
		strtab.WriteString(s)
		strtab.WriteByte(0)
		return off
	}

	// Symbol table: null symbol + one global object symbol per map.
	const symSize = 24
	var symtab bytes.Buffer
	symtab.Write(make([]byte, symSize)) // null symbol
	symIndex := map[string]uint64{}
	const (
		mapsSectionIdx = 2
		progSectionIdx = 1
	)
	for _, spec := range prog.Maps {
		symIndex[spec.Name] = uint64(symtab.Len() / symSize)
		var sym [symSize]byte
		le.PutUint32(sym[0:4], strOff(spec.Name))
		sym[4] = byte(1<<4 | 1) // GLOBAL, OBJECT
		le.PutUint16(sym[6:8], mapsSectionIdx)
		le.PutUint64(sym[8:16], mapOffsets[spec.Name])
		le.PutUint64(sym[16:24], bpfMapDefSize)
		symtab.Write(sym[:])
	}

	// Relocations: every map-reference LDDW.
	var relData bytes.Buffer
	offs := prog.SlotOffsets()
	for i, ins := range prog.Instructions {
		if !ins.IsLoadOfMapFD() {
			continue
		}
		idx, ok := symIndex[ins.MapRef]
		if !ok {
			return nil, fmt.Errorf("elf: instruction %d references undeclared map %q", i, ins.MapRef)
		}
		var rel [16]byte
		le.PutUint64(rel[0:8], uint64(offs[i])*ebpf.WordSize)
		le.PutUint64(rel[8:16], idx<<32|1) // R_BPF_64_64
		relData.Write(rel[:])
	}

	// Section header string table.
	var shstr bytes.Buffer
	shstr.WriteByte(0)
	shName := func(s string) uint32 {
		off := uint32(shstr.Len())
		shstr.WriteString(s)
		shstr.WriteByte(0)
		return off
	}

	// --- assemble the file ------------------------------------------------

	type section struct {
		nameOff   uint32
		typ       uint32
		flags     uint64
		data      []byte
		link      uint32
		info      uint32
		addralign uint64
		entsize   uint64
	}
	sections := []section{
		{}, // SHT_NULL
		{nameOff: shName(sectionName), typ: 1 /*PROGBITS*/, flags: 0x6 /*ALLOC|EXECINSTR*/, data: text, addralign: 8},
		{nameOff: shName("maps"), typ: 1, flags: 0x3 /*WRITE|ALLOC*/, data: mapsData.Bytes(), addralign: 4},
		{nameOff: shName(".symtab"), typ: 2 /*SYMTAB*/, data: symtab.Bytes(), link: 4, info: 1, addralign: 8, entsize: symSize},
		{nameOff: shName(".strtab"), typ: 3 /*STRTAB*/, data: strtab.Bytes(), addralign: 1},
	}
	if relData.Len() > 0 {
		sections = append(sections, section{
			nameOff: shName(".rel" + sectionName), typ: 9, /*REL*/
			data: relData.Bytes(), link: 3, info: progSectionIdx, addralign: 8, entsize: 16,
		})
	}
	shstrndx := len(sections)
	sections = append(sections, section{nameOff: shName(".shstrtab"), typ: 3, data: shstr.Bytes(), addralign: 1})

	const (
		ehSize = 64
		shSize = 64
	)
	// Lay out section data after the header.
	offset := uint64(ehSize)
	dataOffsets := make([]uint64, len(sections))
	for i := range sections {
		if i == 0 || len(sections[i].data) == 0 {
			dataOffsets[i] = offset
			continue
		}
		align := sections[i].addralign
		if align > 1 {
			offset = (offset + align - 1) &^ (align - 1)
		}
		dataOffsets[i] = offset
		offset += uint64(len(sections[i].data))
	}
	shoff := (offset + 7) &^ 7

	var out bytes.Buffer
	// ELF header.
	hdr := make([]byte, ehSize)
	copy(hdr, []byte{0x7f, 'E', 'L', 'F', 2 /*64*/, 1 /*LSB*/, 1 /*version*/})
	le.PutUint16(hdr[16:18], 1)   // ET_REL
	le.PutUint16(hdr[18:20], 247) // EM_BPF
	le.PutUint32(hdr[20:24], 1)   // EV_CURRENT
	le.PutUint64(hdr[40:48], shoff)
	le.PutUint16(hdr[52:54], ehSize)
	le.PutUint16(hdr[58:60], shSize)
	le.PutUint16(hdr[60:62], uint16(len(sections)))
	le.PutUint16(hdr[62:64], uint16(shstrndx))
	out.Write(hdr)

	// Section data.
	for i := range sections {
		if len(sections[i].data) == 0 {
			continue
		}
		for uint64(out.Len()) < dataOffsets[i] {
			out.WriteByte(0)
		}
		out.Write(sections[i].data)
	}
	for uint64(out.Len()) < shoff {
		out.WriteByte(0)
	}

	// Section header table.
	for i, s := range sections {
		sh := make([]byte, shSize)
		le.PutUint32(sh[0:4], s.nameOff)
		le.PutUint32(sh[4:8], s.typ)
		le.PutUint64(sh[8:16], s.flags)
		le.PutUint64(sh[24:32], dataOffsets[i])
		le.PutUint64(sh[32:40], uint64(len(s.data)))
		le.PutUint32(sh[40:44], s.link)
		le.PutUint32(sh[44:48], s.info)
		le.PutUint64(sh[48:56], s.addralign)
		le.PutUint64(sh[56:64], s.entsize)
		if i == 0 {
			sh = make([]byte, shSize)
		}
		out.Write(sh)
	}
	return out.Bytes(), nil
}
