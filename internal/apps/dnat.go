package apps

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/pktgen"
)

// DNAT is the dynamic NAT of Table 1: the first packet of a flow
// selects a translated source port directly in the data plane and
// installs the binding in the translation table; every following packet
// of the flow is rewritten from the installed state. The data-plane map
// update is exactly the feature the SDNet P4 baseline cannot express
// (Section 5).
func DNAT() *App {
	return &App{
		Name:        "dnat",
		Description: "an application performing dynamic source NAT",
		Source:      dnatSource,
		Traffic: pktgen.GeneratorConfig{
			Flows:     10000,
			PacketLen: 64,
			Proto:     ebpf.IPProtoUDP,
		},
		P4Expressible: false,
	}
}

const dnatSource = `
; Dynamic source NAT for UDP: per-flow port binding allocated in the
; data plane on the first packet, applied to all subsequent ones.
map nat hash key=12 value=8 entries=16384
map natstats array key=4 value=8 entries=4

r6 = r1
r2 = *(u32 *)(r1 + 4)
r7 = *(u32 *)(r1 + 0)
r3 = r7
r3 += 42
if r3 > r2 goto pass

r3 = *(u8 *)(r7 + 12)
r4 = *(u8 *)(r7 + 13)
r3 <<= 8
r3 |= r4
if r3 != 2048 goto pass
r3 = *(u8 *)(r7 + 14)
r3 &= 15
if r3 != 5 goto pass
r3 = *(u8 *)(r7 + 23)
if r3 != 17 goto pass          ; UDP only

; --- flow key at r10-16 ----------------------------------------------
r6 = *(u32 *)(r7 + 26)         ; src ip
r8 = *(u32 *)(r7 + 30)         ; dst ip
r4 = *(u16 *)(r7 + 34)         ; src port
r5 = *(u16 *)(r7 + 36)         ; dst port
*(u32 *)(r10 - 16) = r6
*(u32 *)(r10 - 12) = r8
*(u16 *)(r10 - 8) = r4
*(u16 *)(r10 - 6) = r5

r1 = map[nat] ll
r2 = r10
r2 += -16
call 1
if r0 == 0 goto bind
r9 = *(u16 *)(r0 + 0)          ; existing binding
goto rewrite

bind:
; select a fresh port in the data plane: fold the 5-tuple into the
; dynamic range 0xC000-0xFFFF and install the binding.
r9 = *(u32 *)(r10 - 16)
r3 = *(u32 *)(r10 - 12)
r9 ^= r3
r3 = r9
r3 >>= 16
r9 ^= r3
r3 = *(u16 *)(r10 - 8)
r9 ^= r3
r9 &= 16383
r9 |= 49152                    ; 0xC000
*(u64 *)(r10 - 24) = 0
*(u16 *)(r10 - 24) = r9
r1 = map[nat] ll
r2 = r10
r2 += -16
r3 = r10
r3 += -24
r4 = 0
call 2                         ; install the binding (data-plane write)

rewrite:
; rewrite the source port with the binding, clear the UDP checksum
; (legal for UDP over IPv4), count, and transmit.
r3 = r9
r3 = be16 r3
*(u16 *)(r7 + 34) = r3
*(u16 *)(r7 + 40) = 0

*(u32 *)(r10 - 28) = 0
r2 = r10
r2 += -28
r1 = map[natstats] ll
call 1
if r0 == 0 goto out
r2 = 1
lock *(u64 *)(r0 + 0) += r2
out:
r0 = 3                         ; XDP_TX
exit

pass:
r0 = 2
exit
`
