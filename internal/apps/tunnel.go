package apps

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

// Tunnel is the kernel's tx_iptunnel XDP sample: parse up to L4, IPIP-
// encapsulate packets towards configured virtual addresses, and XDP_TX
// them. The outer header is built in place after bpf_xdp_adjust_head,
// with a full checksum computed in the data plane.
func Tunnel() *App {
	return &App{
		Name:        "tunnel",
		Description: "parse pkt up to L4, encapsulate and XDP_TX",
		Source:      tunnelSource,
		SetupHost:   setupTunnelEndpoints,
		Traffic: pktgen.GeneratorConfig{
			Flows:     10000,
			PacketLen: 64,
			Proto:     ebpf.IPProtoUDP,
		},
		P4Expressible: true,
	}
}

// TunnelEndpoint configures encapsulation for one virtual IP.
type TunnelEndpoint struct {
	VIP        [4]byte // packets to this destination are encapsulated
	OuterSrc   [4]byte
	OuterDst   [4]byte
	GatewayMAC [6]byte
}

// DefaultEndpoints matches the generator's 192.168.0.1 destination.
func DefaultEndpoints() []TunnelEndpoint {
	return []TunnelEndpoint{{
		VIP:        [4]byte{192, 168, 0, 1},
		OuterSrc:   [4]byte{172, 16, 0, 1},
		OuterDst:   [4]byte{172, 16, 0, 2},
		GatewayMAC: [6]byte{0x02, 0xaa, 0, 0, 0, 1},
	}}
}

func setupTunnelEndpoints(set *maps.Set) error {
	cfg, ok := set.ByName("tnlcfg")
	if !ok {
		return fmt.Errorf("tunnel: tnlcfg map missing")
	}
	for _, ep := range DefaultEndpoints() {
		val := make([]byte, 16)
		copy(val[0:4], ep.OuterSrc[:])
		copy(val[4:8], ep.OuterDst[:])
		copy(val[8:14], ep.GatewayMAC[:])
		if err := cfg.Update(ep.VIP[:], val, maps.UpdateAny); err != nil {
			return err
		}
	}
	return nil
}

// TunnelStats reads the encapsulation counter from the host side.
func TunnelStats(set *maps.Set) uint64 {
	stats, ok := set.ByName("tnstats")
	if !ok {
		return 0
	}
	v, ok := stats.Lookup([]byte{0, 0, 0, 0})
	if !ok {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

const tunnelSource = `
; tx_iptunnel: IPIP encapsulation towards configured endpoints.
; cfg value layout: [0:4] outer saddr, [4:8] outer daddr, [8:14] gw mac.
map tnlcfg hash key=4 value=16 entries=256
map tnstats array key=4 value=8 entries=4

r6 = r1                        ; ctx
r2 = *(u32 *)(r1 + 4)
r7 = *(u32 *)(r1 + 0)
r3 = r7
r3 += 34
if r3 > r2 goto pass

r3 = *(u8 *)(r7 + 12)
r4 = *(u8 *)(r7 + 13)
r3 <<= 8
r3 |= r4
if r3 != 2048 goto pass        ; IPv4 only
r3 = *(u8 *)(r7 + 14)
r3 &= 15
if r3 != 5 goto pass

; --- endpoint lookup by destination address -------------------------
r4 = *(u32 *)(r7 + 30)
*(u32 *)(r10 - 4) = r4
r1 = map[tnlcfg] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto pass           ; not a tunnelled destination
r8 = r0                        ; endpoint config

; --- statistics ------------------------------------------------------
*(u32 *)(r10 - 8) = 0
r2 = r10
r2 += -8
r1 = map[tnstats] ll
call 1
if r0 == 0 goto encap
r2 = 1
lock *(u64 *)(r0 + 0) += r2

encap:
; inner total length, host order, before the headers move
r9 = *(u16 *)(r7 + 16)
r9 = be16 r9

; --- grow 20 bytes of headroom --------------------------------------
r1 = r6
r2 = -20
call 44                        ; bpf_xdp_adjust_head
if r0 != 0 goto pass
r7 = *(u32 *)(r6 + 0)          ; reload data: everything moved

; --- new Ethernet header --------------------------------------------
; old smac (now at +26) becomes the outer smac; read it before the
; outer saddr overwrites those bytes.
r4 = *(u32 *)(r7 + 26)
r5 = *(u16 *)(r7 + 30)
r3 = *(u32 *)(r8 + 8)          ; gateway mac
*(u32 *)(r7 + 0) = r3
r3 = *(u16 *)(r8 + 12)
*(u16 *)(r7 + 4) = r3
*(u32 *)(r7 + 6) = r4
*(u16 *)(r7 + 10) = r5
*(u16 *)(r7 + 12) = 8          ; EtherType 0x0800, network order

; --- outer IPv4 header ----------------------------------------------
*(u8 *)(r7 + 14) = 69          ; version 4, IHL 5
*(u8 *)(r7 + 15) = 0           ; TOS
r3 = r9
r3 += 20                       ; outer length
r4 = r3                        ; keep host-order copy for the checksum
r3 = be16 r3
*(u16 *)(r7 + 16) = r3
*(u16 *)(r7 + 18) = 0          ; identification
*(u16 *)(r7 + 20) = 64         ; flags DF (0x4000), network order
*(u8 *)(r7 + 22) = 64          ; TTL
*(u8 *)(r7 + 23) = 4           ; protocol IPIP
r3 = *(u32 *)(r8 + 0)          ; outer saddr bytes
*(u32 *)(r7 + 26) = r3
r3 = *(u32 *)(r8 + 4)          ; outer daddr bytes
*(u32 *)(r7 + 30) = r3

; --- outer header checksum ------------------------------------------
; sum of the constant words: 0x4500 + 0x4000 + 0x4004 = 0xC504
r5 = 50436
r5 += r4                       ; + total length
r3 = *(u16 *)(r8 + 0)          ; saddr high half
r3 = be16 r3
r5 += r3
r3 = *(u16 *)(r8 + 2)
r3 = be16 r3
r5 += r3
r3 = *(u16 *)(r8 + 4)          ; daddr high half
r3 = be16 r3
r5 += r3
r3 = *(u16 *)(r8 + 6)
r3 = be16 r3
r5 += r3
r3 = r5
r3 >>= 16
r5 &= 65535
r5 += r3                       ; fold carries
r3 = r5
r3 >>= 16
r5 &= 65535
r5 += r3
r5 ^= 65535                    ; one's complement
r5 &= 65535
r5 = be16 r5
*(u16 *)(r7 + 24) = r5

r0 = 3                         ; XDP_TX
exit

pass:
r0 = 2
exit
`
