package apps

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

// LoadBalancer is a Katran-style L4 load balancer, the first XDP use
// case the paper's introduction cites ("network and service providers
// use XDP to implement load balancing [11]"). Packets for a configured
// virtual IP are hashed onto a backend pool and IPIP-encapsulated
// towards the selected backend — VIP table and backend pool are
// host-managed, selection and encapsulation run in the NIC.
//
// It is not part of the paper's five-program evaluation; it demonstrates
// that the toolchain generalises beyond them.
func LoadBalancer() *App {
	return &App{
		Name:        "loadbalancer",
		Description: "Katran-style L4 load balancer: VIP match, flow-hash backend selection, IPIP encap",
		Source:      loadBalancerSource,
		SetupHost:   setupLoadBalancer,
		Traffic: pktgen.GeneratorConfig{
			Flows:     10000,
			PacketLen: 64,
			Proto:     ebpf.IPProtoUDP,
		},
		P4Expressible: true,
	}
}

// LBBackends is the default backend pool installed by setupLoadBalancer.
var LBBackends = [][4]byte{
	{172, 16, 1, 1},
	{172, 16, 1, 2},
	{172, 16, 1, 3},
	{172, 16, 1, 4},
}

// lbVIP is the virtual address the generator's flows target.
var lbVIP = [4]byte{192, 168, 0, 1}

func setupLoadBalancer(set *maps.Set) error {
	vips, ok := set.ByName("vips")
	if !ok {
		return fmt.Errorf("loadbalancer: vips map missing")
	}
	// value: [0:4] backend count (LE), [4:8] pool base index.
	val := make([]byte, 8)
	binary.LittleEndian.PutUint32(val[0:4], uint32(len(LBBackends)))
	if err := vips.Update(lbVIP[:], val, maps.UpdateAny); err != nil {
		return err
	}
	pool, ok := set.ByName("backends")
	if !ok {
		return fmt.Errorf("loadbalancer: backends map missing")
	}
	for i, be := range LBBackends {
		key := make([]byte, 4)
		binary.LittleEndian.PutUint32(key, uint32(i))
		// value: [0:4] outer dst ip, [4:10] gateway mac, [10:14] outer src.
		v := make([]byte, 16)
		copy(v[0:4], be[:])
		copy(v[4:10], []byte{0x02, 0xbb, 0, 0, 0, byte(i + 1)})
		copy(v[10:14], []byte{172, 16, 0, 1})
		if err := pool.Update(key, v, maps.UpdateAny); err != nil {
			return err
		}
	}
	return nil
}

// LBBackendHits reads the per-backend packet counters from the host.
func LBBackendHits(set *maps.Set) []uint64 {
	stats, ok := set.ByName("lbhits")
	if !ok {
		return nil
	}
	out := make([]uint64, len(LBBackends))
	for i := range out {
		key := make([]byte, 4)
		binary.LittleEndian.PutUint32(key, uint32(i))
		if v, ok := stats.Lookup(key); ok {
			out[i] = binary.LittleEndian.Uint64(v)
		}
	}
	return out
}

const loadBalancerSource = `
; Katran-style L4 load balancer: hash the flow onto a backend pool and
; IPIP-encapsulate towards the selected backend.
map vips hash key=4 value=8 entries=64
map backends array key=4 value=16 entries=64
map lbhits array key=4 value=8 entries=64

r6 = r1                        ; ctx
r2 = *(u32 *)(r1 + 4)
r7 = *(u32 *)(r1 + 0)
r3 = r7
r3 += 42
if r3 > r2 goto pass

r3 = *(u8 *)(r7 + 12)
r4 = *(u8 *)(r7 + 13)
r3 <<= 8
r3 |= r4
if r3 != 2048 goto pass
r3 = *(u8 *)(r7 + 14)
r3 &= 15
if r3 != 5 goto pass
r3 = *(u8 *)(r7 + 23)
if r3 == 17 goto vip
if r3 != 6 goto pass           ; UDP or TCP only

vip:
; --- VIP match on the destination address ---------------------------
r4 = *(u32 *)(r7 + 30)
*(u32 *)(r10 - 4) = r4
r1 = map[vips] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto pass           ; not a VIP: to the host stack
r9 = *(u32 *)(r0 + 0)          ; backend count

; --- consistent flow hash -> backend index --------------------------
r5 = *(u32 *)(r7 + 26)         ; src ip
r4 = *(u16 *)(r7 + 34)         ; src port
r5 ^= r4
r5 *= -1640531527              ; 0x9E3779B9, golden-ratio mix
r4 = r5
r4 >>= 29
r5 ^= r4
r5 *= -2048144789              ; 0x85EBCA6B, murmur3 finaliser
r4 = r5
r4 >>= 32
r5 ^= r4
r5 %= r9                       ; pool index (runtime modulo!)
*(u32 *)(r10 - 8) = r5
*(u32 *)(r10 - 12) = r5        ; same index keys the hit counter

r1 = map[backends] ll
r2 = r10
r2 += -8
call 1
if r0 == 0 goto pass
r8 = r0                        ; backend record

; --- per-backend accounting ------------------------------------------
r1 = map[lbhits] ll
r2 = r10
r2 += -12
call 1
if r0 == 0 goto encap
r2 = 1
lock *(u64 *)(r0 + 0) += r2

encap:
; inner length before the move
r9 = *(u16 *)(r7 + 16)
r9 = be16 r9

r1 = r6
r2 = -20
call 44                        ; bpf_xdp_adjust_head
if r0 != 0 goto pass
r7 = *(u32 *)(r6 + 0)

; --- new Ethernet header ---------------------------------------------
r4 = *(u32 *)(r7 + 26)         ; old smac (low half), read before overwrite
r5 = *(u16 *)(r7 + 30)
r3 = *(u32 *)(r8 + 4)          ; backend gateway mac
*(u32 *)(r7 + 0) = r3
r3 = *(u16 *)(r8 + 8)
*(u16 *)(r7 + 4) = r3
*(u32 *)(r7 + 6) = r4
*(u16 *)(r7 + 10) = r5
*(u16 *)(r7 + 12) = 8          ; 0x0800

; --- outer IPv4 header ------------------------------------------------
*(u8 *)(r7 + 14) = 69
*(u8 *)(r7 + 15) = 0
r3 = r9
r3 += 20
r4 = r3
r3 = be16 r3
*(u16 *)(r7 + 16) = r3
*(u16 *)(r7 + 18) = 0
*(u16 *)(r7 + 20) = 64         ; DF
*(u8 *)(r7 + 22) = 64
*(u8 *)(r7 + 23) = 4           ; IPIP
r3 = *(u32 *)(r8 + 10)         ; outer src bytes
*(u32 *)(r7 + 26) = r3
r3 = *(u32 *)(r8 + 0)          ; backend address bytes
*(u32 *)(r7 + 30) = r3

; --- outer checksum ----------------------------------------------------
r5 = 50436                     ; 0x4500 + 0x4000 + 0x4004
r5 += r4
r3 = *(u16 *)(r8 + 10)
r3 = be16 r3
r5 += r3
r3 = *(u16 *)(r8 + 12)
r3 = be16 r3
r5 += r3
r3 = *(u16 *)(r8 + 0)
r3 = be16 r3
r5 += r3
r3 = *(u16 *)(r8 + 2)
r3 = be16 r3
r5 += r3
r3 = r5
r3 >>= 16
r5 &= 65535
r5 += r3
r3 = r5
r3 >>= 16
r5 &= 65535
r5 += r3
r5 ^= 65535
r5 &= 65535
r5 = be16 r5
*(u16 *)(r7 + 24) = r5

r0 = 3                         ; XDP_TX towards the backend
exit

pass:
r0 = 2
exit
`
