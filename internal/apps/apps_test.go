package apps

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

func mustProgram(t testing.TB, app *App) *ebpf.Program {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestAllAppsAssembleAndValidate(t *testing.T) {
	for _, app := range append(All(), Toy(), LeakyBucket()) {
		prog, err := app.Program()
		if err != nil {
			t.Errorf("%s: %v", app.Name, err)
			continue
		}
		if len(prog.Instructions) < 20 {
			t.Errorf("%s: only %d instructions; too small to be the real program", app.Name, len(prog.Instructions))
		}
	}
}

func TestAllAppsCompile(t *testing.T) {
	for _, app := range append(All(), Toy(), LeakyBucket()) {
		pl, err := core.Compile(mustProgram(t, app), core.Options{})
		if err != nil {
			t.Errorf("%s: %v", app.Name, err)
			continue
		}
		t.Logf("%s: %d instructions -> %d stages (ILP max/avg %v), %d maps, %d framing NOPs",
			app.Name, len(pl.Prog.Instructions), pl.NumStages(),
			func() string { m, a := pl.ILP(); return formatILP(m, a) }(), len(pl.Maps), pl.FramingNOPs)
	}
}

func formatILP(max int, avg float64) string {
	return string(rune('0'+max)) + "/" + string(rune('0'+int(avg)))
}

// differential runs an app's traffic through both the reference VM and
// the compiled pipeline and compares everything observable.
func differential(t *testing.T, app *App, packets [][]byte) hwsim.Stats {
	t.Helper()
	prog := mustProgram(t, app)

	refEnv, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	refEnv.Now = func() uint64 { return 0 }
	if err := app.Setup(refEnv.Maps); err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(prog, refEnv)
	if err != nil {
		t.Fatal(err)
	}
	type refOut struct {
		action   ebpf.XDPAction
		redirect uint32
		data     []byte
	}
	refs := make([]refOut, len(packets))
	for i, data := range packets {
		pkt := vm.NewPacket(data)
		res, err := machine.Run(pkt)
		if err != nil {
			t.Fatalf("%s: reference packet %d: %v", app.Name, i, err)
		}
		refs[i] = refOut{action: res.Action, redirect: res.RedirectIfindex, data: append([]byte(nil), pkt.Bytes()...)}
	}

	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := hwsim.New(pl, hwsim.Config{StrictCarryCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sim.Maps()); err != nil {
		t.Fatal(err)
	}
	sim.KeepData(true)
	var results []hwsim.Result
	sim.OnComplete(func(r hwsim.Result) { results = append(results, r) })
	// Pin the clock for determinism against the reference.
	pinned := uint64(0)
	sim.SetClock(func() uint64 { return pinned })

	for _, data := range packets {
		for !sim.InputFree() {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
		sim.Inject(data)
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunToCompletion(1 << 22); err != nil {
		t.Fatal(err)
	}

	if len(results) != len(packets) {
		t.Fatalf("%s: completed %d of %d packets", app.Name, len(results), len(packets))
	}
	for _, r := range results {
		ref := refs[r.Seq]
		if r.Action != ref.action {
			t.Fatalf("%s: packet %d action %v, reference %v", app.Name, r.Seq, r.Action, ref.action)
		}
		if r.Action == ebpf.XDPRedirect && r.RedirectIfindex != ref.redirect {
			t.Fatalf("%s: packet %d redirect %d, reference %d", app.Name, r.Seq, r.RedirectIfindex, ref.redirect)
		}
		if !bytes.Equal(r.Data, ref.data) {
			t.Fatalf("%s: packet %d bytes differ\npipeline:  %x\nreference: %x", app.Name, r.Seq, r.Data, ref.data)
		}
	}
	compareMaps(t, app.Name, refEnv.Maps, sim.Maps())
	return sim.Stats()
}

func compareMaps(t *testing.T, name string, ref, got *maps.Set) {
	t.Helper()
	for id := 0; id < ref.Len(); id++ {
		rm, _ := ref.ByID(id)
		gm, _ := got.ByID(id)
		if rm.Len() != gm.Len() {
			t.Fatalf("%s: map %d has %d entries, reference %d", name, id, gm.Len(), rm.Len())
		}
		rm.Iterate(func(k, v []byte) bool {
			gv, ok := gm.Lookup(k)
			if !ok {
				t.Fatalf("%s: map %d key %x missing", name, id, k)
			}
			if !bytes.Equal(gv, v) {
				t.Fatalf("%s: map %d key %x = %x, reference %x", name, id, k, gv, v)
			}
			return true
		})
	}
}

func trafficFor(app *App, n int, seed int64) [][]byte {
	cfg := app.Traffic
	cfg.Seed = seed
	gen := pktgen.NewGenerator(cfg)
	return gen.Batch(n)
}

func TestFirewallDifferential(t *testing.T) {
	app := Firewall()
	packets := trafficFor(app, 400, 3)
	// Mix in return-direction traffic so the reverse-key path runs.
	gen := pktgen.NewGenerator(app.Traffic)
	for i := 0; i < 100; i++ {
		f := gen.FlowAt(i % gen.FlowCount()).Reverse()
		packets = append(packets, pktgen.Build(pktgen.PacketSpec{Flow: f, TotalLen: 64}))
	}
	differential(t, app, packets)
}

func TestFirewallSemantics(t *testing.T) {
	app := Firewall()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	m, _ := vm.New(prog, env)

	fwd := pktgen.Flow{SrcIP: 0x0a000001, DstIP: 0xc0a80001, SrcPort: 5000, DstPort: 8080, Proto: ebpf.IPProtoUDP}
	// First packet establishes state and is forwarded.
	res, err := m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: fwd, TotalLen: 64})))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPTx {
		t.Fatalf("first packet action = %v", res.Action)
	}
	// Return traffic matches the reverse key.
	res, _ = m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: fwd.Reverse(), TotalLen: 64})))
	if res.Action != ebpf.XDPTx {
		t.Fatalf("return packet action = %v", res.Action)
	}
	// Unsolicited traffic to a privileged port is dropped.
	bad := pktgen.Flow{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 22, Proto: ebpf.IPProtoUDP}
	res, _ = m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: bad, TotalLen: 64})))
	if res.Action != ebpf.XDPDrop {
		t.Fatalf("unsolicited privileged-port packet action = %v", res.Action)
	}
	// Non-IPv4 passes to the kernel.
	res, _ = m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{EtherType: ebpf.EthPARP, TotalLen: 64})))
	if res.Action != ebpf.XDPPass {
		t.Fatalf("ARP action = %v", res.Action)
	}
}

func TestRouterDifferential(t *testing.T) {
	app := Router()
	differential(t, app, trafficFor(app, 400, 4))
}

func TestRouterSemantics(t *testing.T) {
	app := Router()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	if err := app.Setup(env.Maps); err != nil {
		t.Fatal(err)
	}
	m, _ := vm.New(prog, env)

	flow := pktgen.Flow{SrcIP: 0x0a000002, DstIP: 0xc0a80077, SrcPort: 1, DstPort: 2, Proto: ebpf.IPProtoUDP}
	pkt := vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 64, TTL: 17}))
	res, err := m.Run(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPRedirect {
		t.Fatalf("action = %v", res.Action)
	}
	if res.RedirectIfindex != 2 {
		t.Fatalf("redirect ifindex = %d, want 2 (the /16 route)", res.RedirectIfindex)
	}
	out := pkt.Bytes()
	// Destination MAC rewritten to the route's gateway.
	if !bytes.Equal(out[0:6], []byte{0x02, 0, 0, 0, 0, 2}) {
		t.Errorf("dst MAC = %x", out[0:6])
	}
	if out[22] != 16 {
		t.Errorf("TTL = %d, want 16", out[22])
	}
	// The incremental checksum update must keep the header valid.
	if !pktgen.VerifyIPChecksum(out) {
		t.Error("IP checksum invalid after TTL decrement")
	}
	// Expired TTL passes to the kernel.
	pkt = vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 64, TTL: 1}))
	res, _ = m.Run(pkt)
	if res.Action != ebpf.XDPPass {
		t.Errorf("TTL=1 action = %v", res.Action)
	}
}

func TestTunnelDifferential(t *testing.T) {
	app := Tunnel()
	differential(t, app, trafficFor(app, 300, 5))
}

func TestTunnelSemantics(t *testing.T) {
	app := Tunnel()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	if err := app.Setup(env.Maps); err != nil {
		t.Fatal(err)
	}
	m, _ := vm.New(prog, env)

	flow := pktgen.Flow{SrcIP: 0x0a000009, DstIP: 0xc0a80001, SrcPort: 1000, DstPort: 80, Proto: ebpf.IPProtoUDP}
	in := pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 100})
	pkt := vm.NewPacket(in)
	res, err := m.Run(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPTx {
		t.Fatalf("action = %v", res.Action)
	}
	out := pkt.Bytes()
	if len(out) != len(in)+20 {
		t.Fatalf("encapsulated length = %d, want %d", len(out), len(in)+20)
	}
	// Outer header: IPIP protocol, valid checksum, configured endpoints.
	if out[23] != ebpf.IPProtoIPIP {
		t.Errorf("outer protocol = %d, want IPIP", out[23])
	}
	if !pktgen.VerifyIPChecksum(out) {
		t.Error("outer IP checksum invalid")
	}
	ep := DefaultEndpoints()[0]
	if !bytes.Equal(out[26:30], ep.OuterSrc[:]) || !bytes.Equal(out[30:34], ep.OuterDst[:]) {
		t.Errorf("outer addresses = %x -> %x", out[26:30], out[30:34])
	}
	if !bytes.Equal(out[0:6], ep.GatewayMAC[:]) {
		t.Errorf("gateway MAC = %x", out[0:6])
	}
	// The inner packet is intact after the outer header.
	if !bytes.Equal(out[34:], in[14:]) {
		t.Error("inner packet corrupted by encapsulation")
	}
	// Outer length field covers inner IP + 20.
	outerLen := binary.BigEndian.Uint16(out[16:18])
	innerLen := binary.BigEndian.Uint16(in[16:18])
	if outerLen != innerLen+20 {
		t.Errorf("outer length = %d, want %d", outerLen, innerLen+20)
	}
	// Non-tunnelled destinations pass through.
	other := flow
	other.DstIP = 0x08080808
	pkt = vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: other, TotalLen: 100}))
	res, _ = m.Run(pkt)
	if res.Action != ebpf.XDPPass {
		t.Errorf("non-tunnelled action = %v", res.Action)
	}
}

func TestDNATDifferential(t *testing.T) {
	app := DNAT()
	// Few flows back to back: exercises the data-plane binding updates
	// and their flush hazards.
	cfg := app.Traffic
	cfg.Flows = 8
	cfg.Seed = 6
	gen := pktgen.NewGenerator(cfg)
	differential(t, app, gen.Batch(400))
}

func TestDNATSemantics(t *testing.T) {
	app := DNAT()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	m, _ := vm.New(prog, env)

	flow := pktgen.Flow{SrcIP: 0x0a000001, DstIP: 0x08080808, SrcPort: 5555, DstPort: 53, Proto: ebpf.IPProtoUDP}
	first := vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 64}))
	res, err := m.Run(first)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPTx {
		t.Fatalf("action = %v", res.Action)
	}
	natted, err := pktgen.ParseFlow(first.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if natted.SrcPort == flow.SrcPort {
		t.Error("source port not translated")
	}
	if natted.SrcPort < 0xC000 {
		t.Errorf("translated port %d outside the dynamic range", natted.SrcPort)
	}
	// A second packet of the same flow gets the same binding.
	second := vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 64}))
	if _, err := m.Run(second); err != nil {
		t.Fatal(err)
	}
	again, _ := pktgen.ParseFlow(second.Bytes())
	if again.SrcPort != natted.SrcPort {
		t.Errorf("binding unstable: %d then %d", natted.SrcPort, again.SrcPort)
	}
	// The UDP checksum is cleared.
	if cs := binary.BigEndian.Uint16(first.Bytes()[40:42]); cs != 0 {
		t.Errorf("UDP checksum = %#x, want 0", cs)
	}
}

func TestSuricataDifferential(t *testing.T) {
	app := Suricata()
	cfg := app.Traffic
	cfg.Flows = 64
	cfg.Seed = 7
	gen := pktgen.NewGenerator(cfg)
	packets := gen.Batch(300)
	// The differential harness applies Setup to both sides; bypass half
	// the flows there.
	app.SetupHost = func(set *maps.Set) error {
		for i := 0; i < 32; i++ {
			if err := BypassFlow(set, gen.FlowAt(i)); err != nil {
				return err
			}
		}
		return nil
	}
	differential(t, app, packets)
}

func TestSuricataSemantics(t *testing.T) {
	app := Suricata()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	m, _ := vm.New(prog, env)

	flow := pktgen.Flow{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ebpf.IPProtoTCP}
	// Unclassified flow passes to the IDS.
	res, err := m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 128})))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPPass {
		t.Fatalf("unclassified action = %v", res.Action)
	}
	// Bypass it, then packets drop with accounting.
	if err := BypassFlow(env.Maps, flow); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, _ = m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 128})))
		if res.Action != ebpf.XDPDrop {
			t.Fatalf("bypassed action = %v", res.Action)
		}
	}
	pkts, bytesSeen, ok := BypassCounters(env.Maps, flow)
	if !ok || pkts != 3 || bytesSeen != 3*128 {
		t.Errorf("bypass counters = %d pkts / %d bytes", pkts, bytesSeen)
	}
}

func TestLeakyBucketDifferential(t *testing.T) {
	app := LeakyBucket()
	cfg := app.Traffic
	cfg.Flows = 16
	cfg.Seed = 8
	gen := pktgen.NewGenerator(cfg)
	differential(t, app, gen.Batch(400))
}

func TestLeakyBucketPolices(t *testing.T) {
	app := LeakyBucket()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	env.Now = func() uint64 { return 0 } // no leak: every packet adds cost
	m, _ := vm.New(prog, env)

	flow := pktgen.Flow{SrcIP: 42, DstIP: 1, SrcPort: 1, DstPort: 1, Proto: ebpf.IPProtoUDP}
	drops := 0
	for i := 0; i < 2*LeakyBucketCapacity; i++ {
		res, err := m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 64})))
		if err != nil {
			t.Fatal(err)
		}
		if res.Action == ebpf.XDPDrop {
			drops++
		}
	}
	if drops == 0 {
		t.Error("a zero-leak bucket never policed")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"firewall", "router", "tunnel", "dnat", "suricata", "toy", "leakybucket"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestDNATNotP4Expressible(t *testing.T) {
	if DNAT().P4Expressible {
		t.Error("DNAT must be marked inexpressible in SDNet P4 (Section 5)")
	}
	for _, app := range []*App{Firewall(), Router(), Tunnel(), Suricata()} {
		if !app.P4Expressible {
			t.Errorf("%s should be P4-expressible", app.Name)
		}
	}
}

func TestLoadBalancerSemantics(t *testing.T) {
	app := LoadBalancer()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	if err := app.Setup(env.Maps); err != nil {
		t.Fatal(err)
	}
	m, _ := vm.New(prog, env)

	backendOf := func(f pktgen.Flow) [4]byte {
		t.Helper()
		pkt := vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: f, TotalLen: 80}))
		res, err := m.Run(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Action != ebpf.XDPTx {
			t.Fatalf("VIP packet action = %v", res.Action)
		}
		out := pkt.Bytes()
		if out[23] != ebpf.IPProtoIPIP {
			t.Fatalf("outer proto = %d", out[23])
		}
		if !pktgen.VerifyIPChecksum(out) {
			t.Fatal("outer checksum invalid")
		}
		var be [4]byte
		copy(be[:], out[30:34])
		return be
	}

	// Same flow always lands on the same backend; the pool is covered
	// across flows.
	seen := map[[4]byte]int{}
	for i := 0; i < 64; i++ {
		f := pktgen.Flow{SrcIP: 0x0a000000 + uint32(i), DstIP: 0xc0a80001,
			SrcPort: uint16(1000 + i), DstPort: 8080, Proto: ebpf.IPProtoUDP}
		first := backendOf(f)
		if again := backendOf(f); again != first {
			t.Fatalf("flow %d flapped between backends %v and %v", i, first, again)
		}
		seen[first]++
	}
	if len(seen) != len(LBBackends) {
		t.Errorf("flows covered %d of %d backends", len(seen), len(LBBackends))
	}
	for be := range seen {
		found := false
		for _, want := range LBBackends {
			if be == want {
				found = true
			}
		}
		if !found {
			t.Errorf("unknown backend %v selected", be)
		}
	}
	// Hit counters account one increment per run.
	hits := LBBackendHits(env.Maps)
	var total uint64
	for _, h := range hits {
		total += h
	}
	if total != 2*64 {
		t.Errorf("hit counters sum to %d, want 128", total)
	}
	// Non-VIP traffic passes.
	pkt := vm.NewPacket(pktgen.Build(pktgen.PacketSpec{
		Flow: pktgen.Flow{SrcIP: 1, DstIP: 0x08080808, Proto: ebpf.IPProtoUDP}, TotalLen: 64}))
	res, _ := m.Run(pkt)
	if res.Action != ebpf.XDPPass {
		t.Errorf("non-VIP action = %v", res.Action)
	}
}

func TestLoadBalancerDifferential(t *testing.T) {
	app := LoadBalancer()
	differential(t, app, trafficFor(app, 300, 9))
}

func TestLoadBalancerCompiles(t *testing.T) {
	pl, err := core.Compile(mustProgram(t, LoadBalancer()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The runtime modulo forces a divider block; the pipeline must still
	// be strictly forward.
	if pl.NumStages() < 40 {
		t.Errorf("stages = %d; the encapsulating balancer should be deep", pl.NumStages())
	}
}

func TestSuricataVLANPath(t *testing.T) {
	app := Suricata()
	prog := mustProgram(t, app)
	env, _ := vm.NewEnv(prog)
	m, _ := vm.New(prog, env)

	flow := pktgen.Flow{SrcIP: 7, DstIP: 8, SrcPort: 9, DstPort: 10, Proto: ebpf.IPProtoTCP}
	tagged := func() *vm.Packet {
		return vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, VLAN: 42, TotalLen: 100}))
	}
	// Unclassified tagged traffic passes.
	res, err := m.Run(tagged())
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPPass {
		t.Fatalf("tagged unclassified action = %v", res.Action)
	}
	// Bypassing the flow drops tagged packets too: both parse paths key
	// the same table.
	if err := BypassFlow(env.Maps, flow); err != nil {
		t.Fatal(err)
	}
	res, _ = m.Run(tagged())
	if res.Action != ebpf.XDPDrop {
		t.Fatalf("tagged bypassed action = %v", res.Action)
	}
	// And the untagged packet of the same flow matches the same entry.
	res, _ = m.Run(vm.NewPacket(pktgen.Build(pktgen.PacketSpec{Flow: flow, TotalLen: 100})))
	if res.Action != ebpf.XDPDrop {
		t.Fatalf("untagged bypassed action = %v", res.Action)
	}
	pkts, _, ok := BypassCounters(env.Maps, flow)
	if !ok || pkts != 2 {
		t.Errorf("bypass packets = %d, want 2", pkts)
	}
}

func TestSuricataVLANDifferential(t *testing.T) {
	app := Suricata()
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 16, Seed: 12, Proto: ebpf.IPProtoTCP})
	var packets [][]byte
	for i := 0; i < 200; i++ {
		f := gen.FlowAt(i % gen.FlowCount())
		vlan := uint16(0)
		if i%2 == 0 {
			vlan = 10
		}
		packets = append(packets, pktgen.Build(pktgen.PacketSpec{Flow: f, VLAN: vlan, TotalLen: 64 + i%128}))
	}
	app.SetupHost = func(set *maps.Set) error {
		for i := 0; i < 8; i++ {
			if err := BypassFlow(set, gen.FlowAt(i)); err != nil {
				return err
			}
		}
		return nil
	}
	differential(t, app, packets)
}
