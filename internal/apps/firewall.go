package apps

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/pktgen"
)

// Firewall is the simple UDP firewall of Table 1: it tracks
// bidirectional connectivity of UDP flows in a connection table. A flow
// in either direction of an established entry is forwarded; unsolicited
// packets towards privileged ports are dropped; everything else
// establishes state.
func Firewall() *App {
	return &App{
		Name:        "firewall",
		Description: "checks the bidirectional connectivity for UDP flows",
		Source:      firewallSource,
		Traffic: pktgen.GeneratorConfig{
			Flows:     10000,
			PacketLen: 64,
			Proto:     ebpf.IPProtoUDP,
		},
		P4Expressible: true,
	}
}

const firewallSource = `
; Simple UDP firewall: 5-tuple connection tracking with bidirectional
; match, like the paper's "Simple firewall" evaluation program.
map conn hash key=12 value=8 entries=16384
map fwstats array key=4 value=8 entries=4

r6 = r1                        ; save ctx
r2 = *(u32 *)(r1 + 4)          ; data_end
r1 = *(u32 *)(r1 + 0)          ; data
r3 = r1
r3 += 42                       ; eth(14) + ip(20) + udp(8)
if r3 > r2 goto pass           ; bounds check (hardware-elided)

; --- parse: Ethernet must carry IPv4 -------------------------------
r3 = *(u8 *)(r1 + 12)
r4 = *(u8 *)(r1 + 13)
r3 <<= 8
r3 |= r4
if r3 != 2048 goto pass        ; not IPv4: hand to the kernel

; --- parse: IPv4 header, no options, UDP ---------------------------
r3 = *(u8 *)(r1 + 14)
r3 &= 15
if r3 != 5 goto pass           ; IHL != 5
r3 = *(u8 *)(r1 + 23)
if r3 != 17 goto pass          ; not UDP

; --- global statistics: total packets seen -------------------------
*(u32 *)(r10 - 44) = 0
r2 = r10
r2 += -44
r1 = map[fwstats] ll
call 1
if r0 == 0 goto fields
r2 = 1
lock *(u64 *)(r0 + 0) += r2

fields:
r2 = *(u32 *)(r6 + 0)          ; reload data (calls scratch r1-r5)
r6 = *(u32 *)(r2 + 26)         ; src ip (raw byte order)
r7 = *(u32 *)(r2 + 30)         ; dst ip
r8 = *(u16 *)(r2 + 34)         ; src port
r9 = *(u16 *)(r2 + 36)         ; dst port

; --- forward-direction key at r10-16: src,dst,sport,dport ----------
*(u32 *)(r10 - 16) = r6
*(u32 *)(r10 - 12) = r7
*(u16 *)(r10 - 8) = r8
*(u16 *)(r10 - 6) = r9
r1 = map[conn] ll
r2 = r10
r2 += -16
call 1
if r0 == 0 goto reverse
r2 = 1
lock *(u64 *)(r0 + 0) += r2    ; established: bump flow counter
r0 = 3                         ; XDP_TX
exit

reverse:
; --- reverse-direction key at r10-32: dst,src,dport,sport ----------
*(u32 *)(r10 - 32) = r7
*(u32 *)(r10 - 28) = r6
*(u16 *)(r10 - 24) = r9
*(u16 *)(r10 - 22) = r8
r1 = map[conn] ll
r2 = r10
r2 += -32
call 1
if r0 == 0 goto newflow
r2 = 1
lock *(u64 *)(r0 + 0) += r2    ; return traffic of an established flow
r0 = 3
exit

newflow:
; unsolicited traffic to privileged ports is dropped
r3 = r9
r3 = be16 r3                   ; dst port, host order
if r3 < 1024 goto drop

; otherwise establish forward state and let it through
*(u64 *)(r10 - 40) = 1
r1 = map[conn] ll
r2 = r10
r2 += -16
r3 = r10
r3 += -40
r4 = 0
call 2                         ; bpf_map_update_elem
r0 = 3
exit

pass:
r0 = 2                         ; XDP_PASS
exit
drop:
r0 = 1                         ; XDP_DROP
exit
`
