package apps

import "ehdl/internal/pktgen"

// Toy is the running example of the paper (Listings 1 and 2): count
// received packets by EtherType in an array map and transmit them back.
func Toy() *App {
	return &App{
		Name:        "toy",
		Description: "per-EtherType packet counters (Listing 1/2)",
		Source:      toySource,
		Traffic: pktgen.GeneratorConfig{
			Flows:     1024,
			PacketLen: 64,
		},
		P4Expressible: true,
	}
}

const toySource = `
; Listing 1 of the eHDL paper, compiled to bytecode: classify the
; EtherType, bump the matching counter in the stats array, transmit.
map stats array key=4 value=8 entries=4

r2 = *(u32 *)(r1 + 4)        ; data_end
r1 = *(u32 *)(r1 + 0)        ; data
r3 = r1
r3 += 14
if r3 > r2 goto drop         ; bounds check (hardware-elided)
r3 = 0
*(u32 *)(r10 - 4) = r3       ; key = 0
r2 = *(u8 *)(r1 + 13)
r1 = *(u8 *)(r1 + 12)
r1 <<= 8
r1 |= r2                     ; EtherType, host order
if r1 == 34525 goto ipv6     ; ETH_P_IPV6
if r1 == 2054 goto arp       ; ETH_P_ARP
if r1 != 2048 goto lookup    ; ETH_P_IP
r1 = 1
goto store
ipv6:
r1 = 2
goto store
arp:
r1 = 3
store:
*(u32 *)(r10 - 4) = r1
lookup:
r2 = r10
r2 += -4
r1 = map[stats] ll
call 1                       ; bpf_map_lookup_elem
r1 = r0
r0 = 3                       ; XDP_TX
if r1 == 0 goto out
r2 = 1
lock *(u64 *)(r1 + 0) += r2  ; __sync_fetch_and_add
out:
exit
drop:
r0 = 1                       ; XDP_DROP
exit
`
