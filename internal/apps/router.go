package apps

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

// Router is the Linux kernel's router_ipv4 XDP sample: parse up to IP,
// longest-prefix-match the destination in a routing table, rewrite the
// Ethernet header, decrement the TTL (with an incremental checksum
// update) and redirect to the egress port.
func Router() *App {
	return &App{
		Name:        "router",
		Description: "parse pkt headers up to IP, look up in routing table and forward (redirect)",
		Source:      routerSource,
		SetupHost:   setupRouterRoutes,
		Traffic: pktgen.GeneratorConfig{
			Flows:     10000,
			PacketLen: 64,
			Proto:     ebpf.IPProtoUDP,
		},
		P4Expressible: true,
	}
}

// RouterRoute is one forwarding entry installed from the host.
type RouterRoute struct {
	PrefixLen int
	Prefix    [4]byte
	Ifindex   uint32
	DstMAC    [6]byte
	SrcMAC    [6]byte
}

// DefaultRoutes covers the generator's 10.0.0.0/8 sources and the
// 192.168.0.1 destination plus a default route.
func DefaultRoutes() []RouterRoute {
	return []RouterRoute{
		{PrefixLen: 16, Prefix: [4]byte{192, 168, 0, 0}, Ifindex: 2,
			DstMAC: [6]byte{0x02, 0, 0, 0, 0, 2}, SrcMAC: [6]byte{0x02, 0, 0, 0, 0, 1}},
		{PrefixLen: 8, Prefix: [4]byte{10, 0, 0, 0}, Ifindex: 3,
			DstMAC: [6]byte{0x02, 0, 0, 0, 0, 3}, SrcMAC: [6]byte{0x02, 0, 0, 0, 0, 1}},
		{PrefixLen: 0, Prefix: [4]byte{}, Ifindex: 4,
			DstMAC: [6]byte{0x02, 0, 0, 0, 0, 4}, SrcMAC: [6]byte{0x02, 0, 0, 0, 0, 1}},
	}
}

func setupRouterRoutes(set *maps.Set) error {
	routes, ok := set.ByName("routes")
	if !ok {
		return fmt.Errorf("router: routes map missing")
	}
	for _, r := range DefaultRoutes() {
		key := make([]byte, 8)
		binary.LittleEndian.PutUint32(key[:4], uint32(r.PrefixLen))
		copy(key[4:], r.Prefix[:])
		val := make([]byte, 16)
		binary.LittleEndian.PutUint32(val[0:4], r.Ifindex)
		copy(val[4:10], r.DstMAC[:])
		copy(val[10:16], r.SrcMAC[:])
		if err := routes.Update(key, val, maps.UpdateAny); err != nil {
			return err
		}
	}
	return nil
}

const routerSource = `
; router_ipv4: LPM route lookup, MAC rewrite, TTL decrement with
; RFC-1141 incremental checksum update, redirect to the egress port.
map routes lpm_trie key=8 value=16 entries=1024
map rtstats array key=4 value=8 entries=4

r6 = r1                        ; ctx
r2 = *(u32 *)(r1 + 4)          ; data_end
r7 = *(u32 *)(r1 + 0)          ; data
r3 = r7
r3 += 34                       ; eth + ip
if r3 > r2 goto pass

r3 = *(u8 *)(r7 + 12)
r4 = *(u8 *)(r7 + 13)
r3 <<= 8
r3 |= r4
if r3 != 2048 goto pass        ; IPv4 only
r3 = *(u8 *)(r7 + 14)
r3 &= 15
if r3 != 5 goto pass           ; no IP options
r3 = *(u8 *)(r7 + 22)          ; TTL
if r3 < 2 goto pass            ; expired: kernel sends the ICMP

; --- LPM key: {prefixlen=32, daddr} at r10-8 ------------------------
r4 = *(u32 *)(r7 + 30)         ; dst address bytes
*(u32 *)(r10 - 8) = 32
*(u32 *)(r10 - 4) = r4
r1 = map[routes] ll
r2 = r10
r2 += -8
call 1
if r0 == 0 goto pass           ; no route: hand to the kernel stack
r8 = r0                        ; route entry

; --- global statistics ----------------------------------------------
*(u32 *)(r10 - 12) = 0
r2 = r10
r2 += -12
r1 = map[rtstats] ll
call 1
if r0 == 0 goto rewrite
r2 = 1
lock *(u64 *)(r0 + 0) += r2

rewrite:
; destination MAC from the route entry
r3 = *(u32 *)(r8 + 4)
*(u32 *)(r7 + 0) = r3
r3 = *(u16 *)(r8 + 8)
*(u16 *)(r7 + 4) = r3
; source MAC
r3 = *(u32 *)(r8 + 10)
*(u32 *)(r7 + 6) = r3
r3 = *(u16 *)(r8 + 14)
*(u16 *)(r7 + 10) = r3

; TTL decrement
r3 = *(u8 *)(r7 + 22)
r3 -= 1
*(u8 *)(r7 + 22) = r3

; incremental header checksum (RFC 1141): HC' = HC + 0x0100
r3 = *(u16 *)(r7 + 24)
r3 = be16 r3
r3 += 256
r4 = r3
r4 >>= 16
r3 &= 65535
r3 += r4                       ; fold the carry
r3 &= 65535
r3 = be16 r3
*(u16 *)(r7 + 24) = r3

; redirect out of the route's interface
r1 = *(u32 *)(r8 + 0)
r2 = 0
call 23                        ; bpf_redirect
exit

pass:
r0 = 2
exit
`
