package apps

import (
	"bytes"
	"math/rand"
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hwsim"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

// cutSeries returns base truncated at every length: zero-length, every
// mid-Ethernet, mid-IPv4 and mid-transport offset, up to the full frame.
func cutSeries(base []byte) [][]byte {
	var out [][]byte
	for n := 0; n <= len(base); n++ {
		out = append(out, append([]byte(nil), base[:n]...))
	}
	return out
}

// refActions runs packets through the reference VM and returns the
// verdicts. Truncated frames must resolve through the programs' own
// bounds checks: an interpreter fault here is an app bug.
func refActions(t *testing.T, app *App, packets [][]byte) []ebpf.XDPAction {
	t.Helper()
	prog := mustProgram(t, app)
	env, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	env.Now = func() uint64 { return 0 }
	if err := app.Setup(env.Maps); err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]ebpf.XDPAction, len(packets))
	for i, data := range packets {
		res, err := m.Run(vm.NewPacket(data))
		if err != nil {
			t.Fatalf("%s: %d-byte cut faulted the interpreter: %v", app.Name, len(data), err)
		}
		if res.Action > ebpf.XDPRedirect {
			t.Fatalf("%s: %d-byte cut produced illegal verdict %d", app.Name, len(data), res.Action)
		}
		out[i] = res.Action
	}
	return out
}

// hwActions runs packets through the compiled pipeline and returns the
// per-packet results and final stats. Any Step error is a failure: a
// damaged frame must never wedge or fault the hardware.
func hwActions(t *testing.T, app *App, packets [][]byte, opts core.Options, cfg hwsim.Config) ([]hwsim.Result, hwsim.Stats) {
	t.Helper()
	pl, err := core.Compile(mustProgram(t, app), opts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := hwsim.New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sim.Maps()); err != nil {
		t.Fatal(err)
	}
	sim.SetClock(func() uint64 { return 0 })
	var results []hwsim.Result
	sim.OnComplete(func(r hwsim.Result) { results = append(results, r) })
	for _, data := range packets {
		for !sim.InputFree() {
			if err := sim.Step(); err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
		}
		sim.Inject(data)
		if err := sim.Step(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
	}
	if err := sim.RunToCompletion(1 << 22); err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	if len(results) != len(packets) {
		t.Fatalf("%s: completed %d of %d packets", app.Name, len(results), len(packets))
	}
	return results, sim.Stats()
}

// TestTruncatedPacketsEveryApp cuts a representative frame of each app
// at every possible length and demands bit-identical verdicts between
// the reference VM and the pipeline. Bounds-check elision is disabled so
// the programs' own checks stay in the hardware and the two
// implementations must agree on every cut, zero-length included.
func TestTruncatedPacketsEveryApp(t *testing.T) {
	for _, app := range append(All(), Toy(), LeakyBucket()) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			packets := cutSeries(trafficFor(app, 1, 21)[0])
			refs := refActions(t, app, packets)
			results, _ := hwActions(t, app, packets,
				core.Options{DisableBoundsElision: true}, hwsim.Config{StrictCarryCheck: true})
			for _, r := range results {
				if r.Action != refs[r.Seq] {
					t.Errorf("%d-byte cut: pipeline %v, reference %v",
						len(packets[r.Seq]), r.Action, refs[r.Seq])
				}
			}
		})
	}
}

// TestTruncatedOOBResolvesToConfiguredAction exercises the paper's
// Section 4.4 semantics: with bounds checks elided, a frame access past
// the packet end is caught by the hardware bounds check and the packet
// retires with the configured OOBAction — never a simulator error. The
// elided software check is conservative (it covers the longest header
// chain) while the hardware checks each actual access, so a mid-cut
// frame may legitimately complete where the reference passed it; the
// invariants that must hold for every app are pinned below.
func TestTruncatedOOBResolvesToConfiguredAction(t *testing.T) {
	for _, oob := range []ebpf.XDPAction{ebpf.XDPDrop, ebpf.XDPPass} {
		for _, app := range append(All(), Toy(), LeakyBucket()) {
			packets := cutSeries(trafficFor(app, 1, 21)[0])
			refs := refActions(t, app, packets)
			results, stats := hwActions(t, app, packets,
				core.Options{}, hwsim.Config{OOBAction: oob})
			for _, r := range results {
				n := len(packets[r.Seq])
				if r.Action > ebpf.XDPRedirect {
					t.Fatalf("%s: %d-byte cut produced illegal verdict %d", app.Name, n, r.Action)
				}
				// A frame cut inside the Ethernet header cannot satisfy the
				// EtherType access every parser starts with: the hardware
				// check must fire and dispose of it.
				if n < pktgen.EthHeaderLen && r.Action != oob {
					t.Errorf("%s: %d-byte runt retired %v, want the configured OOB action %v",
						app.Name, n, r.Action, oob)
				}
				// The untruncated frame must agree with the reference.
				if n == len(packets[len(packets)-1]) && r.Action != refs[r.Seq] {
					t.Errorf("%s: full frame retired %v, reference %v", app.Name, r.Action, refs[r.Seq])
				}
			}
			if stats.MalformedDropped < uint64(pktgen.EthHeaderLen) {
				t.Errorf("%s: hardware bounds check disposed of %d frames, want at least the %d Ethernet runts",
					app.Name, stats.MalformedDropped, pktgen.EthHeaderLen)
			}
		}
	}
}

// TestTruncatedVLANPath cuts a tagged frame through the 802.1Q parse
// path, which shifts every header offset by four bytes.
func TestTruncatedVLANPath(t *testing.T) {
	app := Suricata()
	flow := pktgen.Flow{SrcIP: 7, DstIP: 8, SrcPort: 9, DstPort: 10, Proto: ebpf.IPProtoTCP}
	packets := cutSeries(pktgen.Build(pktgen.PacketSpec{Flow: flow, VLAN: 42, TotalLen: 100}))
	refs := refActions(t, app, packets)
	results, _ := hwActions(t, app, packets,
		core.Options{DisableBoundsElision: true}, hwsim.Config{StrictCarryCheck: true})
	for _, r := range results {
		if r.Action != refs[r.Seq] {
			t.Errorf("%d-byte cut: pipeline %v, reference %v", len(packets[r.Seq]), r.Action, refs[r.Seq])
		}
	}
}

// TestMalformedKindsThroughEveryApp feeds every malformation class the
// fault injector can produce — truncations, bogus length fields, runt
// and jumbo frames — through every app's pipeline with default options.
// All of them must retire with legal verdicts and no simulator error.
func TestMalformedKindsThroughEveryApp(t *testing.T) {
	for _, app := range append(All(), Toy(), LeakyBucket()) {
		base := trafficFor(app, 1, 23)[0]
		var packets [][]byte
		rng := rand.New(rand.NewSource(23))
		for _, kind := range pktgen.MalformKinds() {
			for i := 0; i < 8; i++ {
				packets = append(packets, pktgen.Malform(base, kind, rng))
			}
		}
		results, _ := hwActions(t, app, packets, core.Options{}, hwsim.Config{})
		for _, r := range results {
			if r.Action > ebpf.XDPRedirect {
				t.Errorf("%s: malformed frame %d retired with illegal verdict %d", app.Name, r.Seq, r.Action)
			}
		}
		// The frames really were damaged: at least the truncations differ.
		damaged := 0
		for _, p := range packets {
			if !bytes.Equal(p, base) {
				damaged++
			}
		}
		if damaged < len(packets)/2 {
			t.Fatalf("%s: only %d/%d frames damaged", app.Name, damaged, len(packets))
		}
	}
}
