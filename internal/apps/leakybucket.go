package apps

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/pktgen"
)

// LeakyBucket is the Section 5.3 stress application: a per-source rate
// limiter that must read and write per-flow state (arrival time and
// bucket level) for every packet. The read-modify-write cannot be
// expressed with a single atomic operation, so every same-flow packet
// pair inside the hazard window forces a pipeline flush — the worst case
// for the Flush Evaluation Block, measured in Table 2 against the
// CAIDA/MAWI traces.
func LeakyBucket() *App {
	return &App{
		Name:        "leakybucket",
		Description: "per-source leaky-bucket rate limiter (flush stress)",
		Source:      leakyBucketSource,
		Traffic: pktgen.GeneratorConfig{
			Flows:     50000,
			PacketLen: 64,
			Proto:     ebpf.IPProtoUDP,
		},
		P4Expressible: true,
	}
}

// Leaky bucket parameters baked into the program below.
const (
	// LeakyBucketCapacity is the burst size in cost units.
	LeakyBucketCapacity = 64
	// LeakyBucketCost is the per-packet cost.
	LeakyBucketCost = 1
	// LeakyBucketLeakShift divides elapsed nanoseconds to leak units.
	LeakyBucketLeakShift = 10 // 1 unit per ~1us
)

const leakyBucketSource = `
; Leaky bucket per source address: value is {last_ts u64, level u64}.
; Every packet reads and rewrites the state: a per-flow RAW hazard on
; every same-source pair inside the pipeline window.
map bucket hash key=4 value=16 entries=32768
map lbstats array key=4 value=8 entries=4

r6 = r1
r2 = *(u32 *)(r1 + 4)
r7 = *(u32 *)(r1 + 0)
r3 = r7
r3 += 34
if r3 > r2 goto pass

r3 = *(u8 *)(r7 + 12)
r4 = *(u8 *)(r7 + 13)
r3 <<= 8
r3 |= r4
if r3 != 2048 goto pass

r4 = *(u32 *)(r7 + 26)         ; source address is the bucket key
*(u32 *)(r10 - 4) = r4

; total-packet counter: atomic on global state, before the bucket read
; so a later flush never replays it (Appendix A.2 buffer placement).
*(u32 *)(r10 - 12) = 0
r2 = r10
r2 += -12
r1 = map[lbstats] ll
call 1
if r0 == 0 goto clock
r2 = 1
lock *(u64 *)(r0 + 0) += r2
clock:
call 5                         ; bpf_ktime_get_ns
r9 = r0                        ; now

r1 = map[bucket] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto newflow

; --- read-modify-write of the bucket ---------------------------------
r3 = *(u64 *)(r0 + 0)          ; last_ts
r4 = *(u64 *)(r0 + 8)          ; level
r5 = r9
r5 -= r3                       ; elapsed
r5 >>= 10                      ; leak units
if r4 > r5 goto leak
r4 = 0
goto fill
leak:
r4 -= r5
fill:
r4 += 1                        ; per-packet cost
*(u64 *)(r0 + 0) = r9          ; write back: the hazardous store
*(u64 *)(r0 + 8) = r4
if r4 > 64 goto police         ; over capacity

r0 = 3                         ; conforming: transmit
exit

police:
r0 = 1                         ; XDP_DROP
exit

newflow:
; first sighting: install {now, cost}
*(u64 *)(r10 - 32) = 0
*(u64 *)(r10 - 24) = 1
*(u64 *)(r10 - 32) = r9
r1 = map[bucket] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -32
r4 = 0
call 2
r0 = 3
exit

pass:
r0 = 2
exit
`
