// Package apps bundles the eBPF/XDP programs of the paper's evaluation
// (Table 1): the Linux kernel's router and tunnel samples, a UDP simple
// firewall, a dynamic NAT, the Suricata bypass filter — plus the running
// toy example of Listings 1/2 and the leaky bucket of Section 5.3.
//
// Each program is written in the textual bytecode form the assembler
// accepts, structured like the original C programs compile: explicit
// packet bounds checks (elided by the compiler), stack-resident map
// keys, helper calls, and atomic operations for global statistics.
package apps

import (
	"fmt"

	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

// App is one evaluation program and its operating context.
type App struct {
	// Name is the identifier used across benchmarks and reports.
	Name string
	// Description matches Table 1 of the paper.
	Description string
	// Source is the program in assembler syntax.
	Source string
	// SetupHost populates host-managed maps (routes, ACLs, tunnel
	// endpoints) before traffic runs, mirroring the userspace eBPF
	// tooling.
	SetupHost func(set *maps.Set) error
	// Traffic returns the generator configuration the evaluation uses
	// for this program.
	Traffic pktgen.GeneratorConfig
	// P4Expressible marks whether the program can be written for the
	// SDNet P4 baseline: DNAT cannot (Section 5: no way to update the
	// translation tables from the data plane).
	P4Expressible bool
}

// Program assembles the source. The result is cached per call site by
// the callers that need it repeatedly.
func (a *App) Program() (*ebpf.Program, error) {
	prog, err := asm.Assemble(a.Name, a.Source)
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", a.Name, err)
	}
	return prog, nil
}

// Setup applies the host-side map population if any.
func (a *App) Setup(set *maps.Set) error {
	if a.SetupHost == nil {
		return nil
	}
	return a.SetupHost(set)
}

// All returns the five evaluation applications in the paper's order.
func All() []*App {
	return []*App{Firewall(), Router(), Tunnel(), DNAT(), Suricata()}
}

// ByName resolves an application, including the extras (toy,
// leakybucket, loadbalancer).
func ByName(name string) (*App, bool) {
	for _, a := range append(All(), Toy(), LeakyBucket(), LoadBalancer()) {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
