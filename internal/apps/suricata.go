package apps

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

// Suricata is the IDS bypass filter of Table 1: Suricata offloads
// per-flow bypass decisions to XDP so that packets of already-classified
// flows are dropped (bypassed) in the NIC with byte/packet accounting,
// and only unclassified traffic reaches the host IDS. VLAN-tagged and
// untagged traffic take separate parse paths, as in the generated
// Suricata filters.
func Suricata() *App {
	return &App{
		Name:        "suricata",
		Description: "an Intrusion Detection System (IDS) bypass filter",
		Source:      suricataSource,
		Traffic: pktgen.GeneratorConfig{
			Flows:     10000,
			PacketLen: 64,
			Proto:     ebpf.IPProtoTCP,
		},
		P4Expressible: true,
	}
}

// BypassFlow installs a bypass entry for a flow from the host, the way
// Suricata's userspace does once a flow is classified.
func BypassFlow(set *maps.Set, f pktgen.Flow) error {
	bypass, ok := set.ByName("bypass")
	if !ok {
		return fmt.Errorf("suricata: bypass map missing")
	}
	key := make([]byte, 12)
	binary.BigEndian.PutUint32(key[0:4], f.SrcIP)
	binary.BigEndian.PutUint32(key[4:8], f.DstIP)
	binary.BigEndian.PutUint16(key[8:10], f.SrcPort)
	binary.BigEndian.PutUint16(key[10:12], f.DstPort)
	return bypass.Update(key, make([]byte, 16), maps.UpdateAny)
}

// BypassCounters reads the accounting of a bypassed flow.
func BypassCounters(set *maps.Set, f pktgen.Flow) (pkts, bytes uint64, ok bool) {
	bypass, found := set.ByName("bypass")
	if !found {
		return 0, 0, false
	}
	key := make([]byte, 12)
	binary.BigEndian.PutUint32(key[0:4], f.SrcIP)
	binary.BigEndian.PutUint32(key[4:8], f.DstIP)
	binary.BigEndian.PutUint16(key[8:10], f.SrcPort)
	binary.BigEndian.PutUint16(key[10:12], f.DstPort)
	v, found := bypass.Lookup(key)
	if !found {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(v[0:8]), binary.LittleEndian.Uint64(v[8:16]), true
}

const suricataSource = `
; Suricata XDP bypass filter: flows the IDS has classified are dropped
; in the NIC with packet/byte accounting; the rest pass to the host.
; bypass value layout: [0:8] packets, [8:16] bytes.
map bypass hash key=12 value=16 entries=16384
map surstats array key=4 value=8 entries=8

r6 = r1
r2 = *(u32 *)(r1 + 4)
r7 = *(u32 *)(r1 + 0)
r9 = r2
r9 -= r7                       ; packet length for the byte counter

r3 = r7
r3 += 14
if r3 > r2 goto pass
r3 = *(u8 *)(r7 + 12)
r4 = *(u8 *)(r7 + 13)
r3 <<= 8
r3 |= r4
if r3 == 33024 goto vlan       ; 0x8100: tagged path
if r3 != 2048 goto pass

; --- untagged IPv4 path ----------------------------------------------
r3 = r7
r3 += 42
if r3 > r2 goto pass
r3 = *(u8 *)(r7 + 14)
r3 &= 15
if r3 != 5 goto pass
r3 = *(u8 *)(r7 + 23)
if r3 == 6 goto key0           ; TCP
if r3 != 17 goto pass          ; or UDP
key0:
r4 = *(u32 *)(r7 + 26)
*(u32 *)(r10 - 16) = r4
r4 = *(u32 *)(r7 + 30)
*(u32 *)(r10 - 12) = r4
r4 = *(u16 *)(r7 + 34)
*(u16 *)(r10 - 8) = r4
r4 = *(u16 *)(r7 + 36)
*(u16 *)(r10 - 6) = r4
goto lookup

vlan:
; --- 802.1Q path: all offsets shifted by four ------------------------
r3 = r7
r3 += 46
if r3 > r2 goto pass
r3 = *(u8 *)(r7 + 16)
r4 = *(u8 *)(r7 + 17)
r3 <<= 8
r3 |= r4
if r3 != 2048 goto pass        ; inner EtherType must be IPv4
r3 = *(u8 *)(r7 + 18)
r3 &= 15
if r3 != 5 goto pass
r3 = *(u8 *)(r7 + 27)
if r3 == 6 goto key1
if r3 != 17 goto pass
key1:
r4 = *(u32 *)(r7 + 30)
*(u32 *)(r10 - 16) = r4
r4 = *(u32 *)(r7 + 34)
*(u32 *)(r10 - 12) = r4
r4 = *(u16 *)(r7 + 38)
*(u16 *)(r10 - 8) = r4
r4 = *(u16 *)(r7 + 40)
*(u16 *)(r10 - 6) = r4

lookup:
r1 = map[bypass] ll
r2 = r10
r2 += -16
call 1
if r0 == 0 goto tohost

; bypassed flow: account packets and bytes, drop in the NIC
r2 = 1
lock *(u64 *)(r0 + 0) += r2
lock *(u64 *)(r0 + 8) += r9
*(u32 *)(r10 - 20) = 1
r2 = r10
r2 += -20
r1 = map[surstats] ll
call 1
if r0 == 0 goto dropv
r2 = 1
lock *(u64 *)(r0 + 0) += r2
dropv:
r0 = 1                         ; XDP_DROP (bypassed)
exit

tohost:
*(u32 *)(r10 - 20) = 0
r2 = r10
r2 += -20
r1 = map[surstats] ll
call 1
if r0 == 0 goto passv
r2 = 1
lock *(u64 *)(r0 + 0) += r2
passv:
r0 = 2                         ; XDP_PASS: to the host IDS
exit

pass:
r0 = 2
exit
`
