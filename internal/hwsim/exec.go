package hwsim

import (
	"fmt"

	"ehdl/internal/core"
	"ehdl/internal/ddg"
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
	"ehdl/internal/vm"
)

// execStage runs the ops of stage t for job j.
func (s *Sim) execStage(j *job, t int) error {
	stage := &s.pl.Stages[t]

	// Elastic-buffer snapshot: capture the replay state on entry to a
	// flush re-entry stage.
	for i := range s.pl.Maps {
		mb := &s.pl.Maps[i]
		if mb.NeedsFlush && mb.FlushFromStage == t && mb.FlushFromStage > 0 {
			j.snapshot = j.capture()
			break
		}
	}

	if j.done || stage.Kind != core.StageNormal {
		return nil
	}

	// PolicyStall: before anything executes, a stage reading a
	// flush-protected map conservatively waits until no packets remain
	// in the hazard window ahead (the FlowBlaze-style bubble insertion).
	if s.cfg.Policy == PolicyStall && s.stallPoint < 0 {
		if hold, drainTo := s.stallCheck(j, t); hold {
			j.execStage = t - 1 // re-execute this stage when released
			s.stallPoint = t + 1
			s.stallDrainTo = drainTo
			return nil
		}
	}

	// Ops of one stage execute in parallel in hardware: an exit op in
	// the stage latches the verdict without suppressing its neighbours,
	// so done-ness is applied after the whole stage.
	doneBefore := j.done
	for i := range stage.Ops {
		op := &stage.Ops[i]
		if !hasBit(j.enabled, op.BlockID) {
			continue
		}
		if s.cfg.StrictCarryCheck {
			s.checkCarry(j, stage, op, t)
		}
		wasDone := j.done
		j.done = doneBefore
		if err := s.execOp(j, op, t); err != nil {
			return fmt.Errorf("hwsim: cycle %d stage %d (%s): %w", s.cycle, t, op.Ins, err)
		}
		j.done = j.done || wasDone
	}
	return nil
}

// stallCheck reports whether stage t holds a read on a flush-protected
// map while older packets occupy the read-to-write window.
func (s *Sim) stallCheck(j *job, t int) (bool, int) {
	stage := &s.pl.Stages[t]
	for i := range stage.Ops {
		op := &stage.Ops[i]
		if op.MapID < 0 || !hasBit(j.enabled, op.BlockID) {
			continue
		}
		mb := s.mapBlockOf[op.MapID]
		if mb == nil || !mb.NeedsFlush {
			continue
		}
		isRead := op.Kind == core.OpMapCall && !op.Helper.WritesMap() || op.Kind == core.OpLoad
		if !isRead {
			continue
		}
		maxW := 0
		for _, w := range mb.WriteStages {
			if w > maxW {
				maxW = w
			}
		}
		for u := t + 1; u <= maxW && u < len(s.stages); u++ {
			if s.stages[u] != nil {
				return true, maxW
			}
		}
	}
	return false, -1
}

// checkCarry verifies pruning soundness: every register and stack byte
// the op reads must have been latched into this stage.
func (s *Sim) checkCarry(j *job, stage *core.Stage, op *core.Op, t int) {
	fail := func(format string, args ...any) {
		if s.strictErr == nil {
			s.strictErr = fmt.Errorf("hwsim: stage %d (%s): %s", t, op.Ins, fmt.Sprintf(format, args...))
		}
	}
	var defined uint16 // registers produced earlier within this op's chain
	checkIns := func(idx int) {
		for _, r := range core.EffectiveUses(s.pl.Info, idx) {
			if stage.CarryRegs&(1<<r) == 0 && defined&(1<<r) == 0 {
				fail("reads r%d which is not carried (mask %#x)", r, stage.CarryRegs)
			}
		}
		for _, r := range s.pl.Transformed.Instructions[idx].Defs() {
			defined |= 1 << r
		}
		acc := s.pl.Info.Accesses[idx]
		if acc != nil && acc.Area == ddg.AreaStack && acc.Read && acc.OffKnown {
			lo := int(acc.Off) + ebpf.StackSize
			hi := lo + acc.Size
			if lo < stage.CarryStackLo || hi > stage.CarryStackHi {
				fail("reads stack [%d,%d) outside carried [%d,%d)", lo, hi, stage.CarryStackLo, stage.CarryStackHi)
			}
		}
	}
	checkIns(op.Index)
	for _, f := range op.FusedIdx {
		checkIns(f)
	}
	// Framing invariant (Section 4.2): the farthest frame this stage
	// reaches must already be inside the pipeline.
	if stage.FrameBypass > t {
		fail("needs frame %d which has not entered the pipeline", stage.FrameBypass)
	}
	if op.Kind == core.OpMapCall && op.KeyOffKnown {
		spec := s.pl.Transformed.Maps[op.MapID]
		lo := int(op.KeyStackOff) + ebpf.StackSize
		if lo < stage.CarryStackLo || lo+spec.KeySize > stage.CarryStackHi {
			fail("map key stack bytes not carried")
		}
	}
	_ = j
}

// execOp executes one micro-operation.
func (s *Sim) execOp(j *job, op *core.Op, t int) error {
	st := j.st
	switch op.Kind {
	case core.OpALU:
		if err := vm.ExecALU(st, op.Ins); err != nil {
			return err
		}
		for _, f := range op.Fused {
			if err := vm.ExecALU(st, f); err != nil {
				return err
			}
		}
		return s.fireEnd(j, op, nil)

	case core.OpLDDW:
		if op.MapID >= 0 {
			st.Regs[op.Ins.Dst] = vm.MapPointer(op.MapID)
		} else {
			st.Regs[op.Ins.Dst] = uint64(op.Ins.Imm64)
		}
		return s.fireEnd(j, op, nil)

	case core.OpLoad:
		addr, err := s.addrOf(j, op)
		if err != nil {
			return err
		}
		if op.Access != nil && op.Access.Area == ddg.AreaMap {
			if s.probes != nil {
				s.probes.onMapAccess(s.cycle, j, t, op.MapID, obs.MapOpLoad)
			}
			// The BRAM read port decodes (and corrects) the looked-up
			// entry before the load observes it.
			if err := s.checkMapRead(j, op.MapID); err != nil {
				return err
			}
		}
		v, err := s.exec.Mem.LoadAt(st, addr, op.Ins.MemSize().Bytes())
		if err != nil {
			return s.memFault(j, op, err)
		}
		// A load from map memory through the lookup pointer observes the
		// WAR shadow when an older packet still owns the pre-write value.
		if op.Access != nil && op.Access.Area == ddg.AreaMap {
			if sv, ok := s.shadowValue(op.MapID, j); ok {
				off := int(op.Access.Off)
				size := op.Ins.MemSize().Bytes()
				if off >= 0 && off+size <= len(sv) {
					v = vm.ReadUint(sv[off:], size)
				}
			}
		}
		st.Regs[op.Ins.Dst] = v
		return s.fireEnd(j, op, nil)

	case core.OpStore, core.OpAtomic:
		addr, err := s.addrOf(j, op)
		if err != nil {
			return err
		}
		isMap := op.Access != nil && op.Access.Area == ddg.AreaMap
		if isMap && s.debug != nil {
			s.debug(fmt.Sprintf("cycle %d: seq %d stage %d %s (map store/atomic)", s.cycle, j.seq, t, op.Ins))
		}
		if isMap && s.probes != nil {
			mop := obs.MapOpStore
			if op.Kind == core.OpAtomic {
				mop = obs.MapOpAtomic
			}
			s.probes.onMapAccess(s.cycle, j, t, op.MapID, mop)
		}
		if isMap {
			// Stores and atomics are read-modify-write at word
			// granularity: the ECC word must decode cleanly before the
			// partial overwrite, and the write port re-encodes after.
			if err := s.checkMapRead(j, op.MapID); err != nil {
				return err
			}
			s.preWriteShadow(op.MapID, j)
		}
		if err := s.exec.Mem.StoreAt(st, op.Ins, addr); err != nil {
			return s.memFault(j, op, err)
		}
		if isMap {
			s.reencodeMapWrite(j, op.MapID)
			j.commits++
			if key, ok := j.lookupKey[op.MapID]; ok {
				s.noteMapWrite(op.MapID, key, false)
			}
			isAtomicPrimitive := op.Kind == core.OpAtomic && !s.pl.Options.DisableAtomics
			if !isAtomicPrimitive {
				s.rawHazardCheck(j, op.MapID, t)
			}
		}
		return s.fireEnd(j, op, nil)

	case core.OpBranch:
		taken, err := vm.EvalBranch(st, op.Ins)
		if err != nil {
			return err
		}
		if taken {
			if op.TakenBlock >= 0 {
				setBit(j.enabled, op.TakenBlock)
			}
			if s.probes != nil {
				s.probes.onPredicate(s.cycle, j, t, true, op.TakenBlock)
			}
		} else {
			if op.FallBlock >= 0 {
				setBit(j.enabled, op.FallBlock)
			}
			if s.probes != nil {
				s.probes.onPredicate(s.cycle, j, t, false, op.FallBlock)
			}
		}
		return nil

	case core.OpExit:
		j.done = true
		j.action = ebpf.XDPAction(uint32(st.Regs[ebpf.R0]))
		return nil

	case core.OpMapCall:
		if err := s.execMapCall(j, op, t); err != nil {
			return err
		}
		return s.fireEnd(j, op, nil)

	case core.OpHelper:
		if op.Helper.CPUOnly() {
			// Stubbed as a constant block (footnote 2 of the paper).
			st.Regs[ebpf.R0] = 0
			for r := ebpf.R1; r <= ebpf.R5; r++ {
				st.Regs[r] = 0
			}
			return s.fireEnd(j, op, nil)
		}
		redirect, err := s.exec.CallHelper(st, op.Helper)
		if err != nil {
			return err
		}
		if redirect != 0 {
			j.redirect = redirect
		}
		return s.fireEnd(j, op, nil)
	}
	return fmt.Errorf("unknown op kind %v", op.Kind)
}

// fireEnd activates the fallthrough successor when a non-branch op ends
// its block.
func (s *Sim) fireEnd(j *job, op *core.Op, _ error) error {
	if op.EndsBlock && op.Kind != core.OpBranch && op.Kind != core.OpExit {
		if op.FallBlock >= 0 {
			setBit(j.enabled, op.FallBlock)
		}
	}
	return nil
}

// addrOf resolves an op's memory address: statically wired for elided
// bases, register-relative otherwise.
func (s *Sim) addrOf(j *job, op *core.Op) (uint64, error) {
	ins := op.Ins
	if !op.BaseElided || op.Access == nil {
		base := ins.Src
		if ins.Class() == ebpf.ClassST || ins.Class() == ebpf.ClassSTX {
			base = ins.Dst
		}
		return j.st.Regs[base] + uint64(int64(ins.Off)), nil
	}
	acc := op.Access
	switch acc.Area {
	case ddg.AreaStack:
		return vm.StackTopAddr + uint64(acc.Off), nil
	case ddg.AreaPacket:
		return vm.PacketBase + uint64(j.st.Pkt.HeadIndex()) + uint64(acc.Off), nil
	case ddg.AreaCtx:
		return vm.CtxBase + uint64(acc.Off), nil
	case ddg.AreaMap:
		base, ok := j.lookupAddr[op.MapID]
		if !ok || base == 0 {
			return 0, fmt.Errorf("map access without a preceding lookup hit")
		}
		return base + uint64(acc.Off), nil
	}
	return 0, fmt.Errorf("unresolvable access area %v", acc.Area)
}

// memFault maps packet bounds violations to the hardware drop action
// and propagates everything else as a simulation error.
func (s *Sim) memFault(j *job, op *core.Op, err error) error {
	if op.Access != nil && op.Access.Area == ddg.AreaPacket {
		j.done = true
		j.action = s.cfg.oobAction()
		s.stats.MalformedDropped++
		return nil
	}
	return err
}

// execMapCall implements the eHDLmap block interface: key (and value)
// from their static stack slots or argument registers, result into R0.
func (s *Sim) execMapCall(j *job, op *core.Op, t int) error {
	st := j.st
	spec := s.pl.Transformed.Maps[op.MapID]
	mb := s.mapBlockOf[op.MapID]

	key, err := s.helperArg(st, op.KeyOffKnown, op.KeyStackOff, ebpf.R2, spec.KeySize)
	if err != nil {
		return fmt.Errorf("map %q key: %w", spec.Name, err)
	}

	if s.debug != nil {
		s.debug(fmt.Sprintf("cycle %d: seq %d stage %d %s key=%x", s.cycle, j.seq, t, op.Helper.Name(), key))
	}
	if s.probes != nil {
		var mop obs.MapOp
		switch op.Helper {
		case ebpf.HelperMapLookupElem:
			mop = obs.MapOpLookup
		case ebpf.HelperMapUpdateElem:
			mop = obs.MapOpUpdate
		case ebpf.HelperMapDeleteElem:
			mop = obs.MapOpDelete
		}
		s.probes.onMapAccess(s.cycle, j, t, op.MapID, mop)
	}
	switch op.Helper {
	case ebpf.HelperMapLookupElem:
		// Commit our own pending effects first (store-to-load ordering
		// within one packet is program order by construction).
		addr := s.exec.LookupValueAddr(op.MapID, key)
		if sv, ok := s.shadowLookup(op.MapID, string(key), j); ok {
			// An older packet must observe the pre-write value: redirect
			// the pointer at a stable shadow address.
			if sv == nil {
				addr = 0 // the entry did not exist before the younger write
			} else {
				addr = s.exec.Mem.ValueAddress(op.MapID, string(key)+"\x00shadow", sv)
			}
		}
		j.lookupAddr[op.MapID] = addr
		j.lookupKey[op.MapID] = string(key)
		if mb != nil && mb.NeedsFlush {
			// The Flush Evaluation Block stores every unconfirmed read
			// address: a program that looks up several keys (e.g. forward
			// and reverse flow entries) keeps all of them armed until the
			// packet passes the write stage or is flushed.
			if j.reads[op.MapID] == nil {
				j.reads[op.MapID] = map[string]bool{}
			}
			j.reads[op.MapID][string(key)] = true
		}
		st.Regs[ebpf.R0] = addr

	case ebpf.HelperMapUpdateElem:
		val, err := s.helperArg(st, op.ValOffKnown, op.ValStackOff, ebpf.R3, spec.ValueSize)
		if err != nil {
			return fmt.Errorf("map %q value: %w", spec.Name, err)
		}
		flags := maps.UpdateFlag(st.Regs[ebpf.R4])
		s.preWriteShadowKey(j, op.MapID, string(key))
		st.Regs[ebpf.R0] = s.exec.UpdateResult(op.MapID, key, val, flags)
		j.commits++
		s.noteMapWrite(op.MapID, string(key), false)
		s.rawHazardCheckKey(j, op.MapID, string(key), t)

	case ebpf.HelperMapDeleteElem:
		s.preWriteShadowKey(j, op.MapID, string(key))
		st.Regs[ebpf.R0] = s.exec.DeleteResult(op.MapID, key)
		j.commits++
		s.noteMapWrite(op.MapID, string(key), true)
		s.rawHazardCheckKey(j, op.MapID, string(key), t)

	default:
		return fmt.Errorf("unsupported map helper %s", op.Helper.Name())
	}

	// The helper scratches its argument registers like a real call.
	for r := ebpf.R1; r <= ebpf.R5; r++ {
		st.Regs[r] = 0
	}
	return nil
}

// helperArg fetches a helper pointer argument either from its static
// stack slot or through the argument register.
func (s *Sim) helperArg(st *vm.State, known bool, off int64, reg ebpf.Register, size int) ([]byte, error) {
	if known {
		b, err := st.StackSlice(off, size)
		if err != nil {
			return nil, err
		}
		out := make([]byte, size)
		copy(out, b)
		return out, nil
	}
	return s.exec.Mem.ReadBytes(st, st.Regs[reg], size)
}

// --- WAR shadows ------------------------------------------------------

// preWriteShadow captures the pre-write value of the entry the packet
// last looked up, when the map block needs a write-delay buffer.
func (s *Sim) preWriteShadow(mapID int, j *job) {
	key, ok := j.lookupKey[mapID]
	if !ok {
		return
	}
	s.preWriteShadowKey(j, mapID, key)
}

func (s *Sim) preWriteShadowKey(j *job, mapID int, key string) {
	mb := s.mapBlockOf[mapID]
	if mb == nil || mb.WARDepth == 0 {
		return
	}
	mp, _ := s.env.Maps.ByID(mapID)
	var old []byte
	had := false
	if v, ok := mp.Lookup([]byte(key)); ok {
		old = append([]byte(nil), v...)
		had = true
	}
	s.shadows = append(s.shadows, warShadow{
		mapID:     mapID,
		key:       key,
		oldValue:  old,
		hadEntry:  had,
		writerSeq: j.seq,
		expires:   s.cycle + uint64(mb.WARDepth),
	})
	if s.probes != nil {
		s.probes.onWARShadow(s.cycle, j, mapID, len(s.shadows), mb.WARDepth)
	}
}

// shadowLookup returns the pre-write value visible to an older packet.
// Pipeline position, not injection sequence, defines age (flush victims
// re-enter behind packets with higher sequence numbers): the shadow is
// visible only to a reader still ahead of the in-flight writer. A
// retired writer leaves no legitimate reader behind — every packet that
// was ahead of it retired first — so its shadows go dark immediately.
func (s *Sim) shadowLookup(mapID int, key string, j *job) ([]byte, bool) {
	for i := len(s.shadows) - 1; i >= 0; i-- {
		sh := &s.shadows[i]
		if sh.mapID != mapID || sh.key != key {
			continue
		}
		if ws, inFlight := s.stageOfSeq(sh.writerSeq); inFlight && j.stage > ws {
			if !sh.hadEntry {
				return nil, true
			}
			return sh.oldValue, true
		}
	}
	return nil, false
}

// stageOfSeq locates an in-flight packet by sequence number.
func (s *Sim) stageOfSeq(seq uint64) (int, bool) {
	for t := len(s.stages) - 1; t >= 0; t-- {
		if j := s.stages[t]; j != nil && j.seq == seq {
			return t, true
		}
	}
	return 0, false
}

// shadowValue returns the shadow for the entry the packet looked up.
func (s *Sim) shadowValue(mapID int, j *job) ([]byte, bool) {
	key, ok := j.lookupKey[mapID]
	if !ok {
		return nil, false
	}
	sv, ok := s.shadowLookup(mapID, key, j)
	if !ok || sv == nil {
		return nil, false
	}
	return sv, true
}

// --- RAW flush evaluation ----------------------------------------------

// rawHazardCheck fires the Flush Evaluation Block for a write through
// the lookup pointer: the written entry is the one this packet last
// looked up.
func (s *Sim) rawHazardCheck(j *job, mapID int, t int) {
	key, ok := j.lookupKey[mapID]
	if !ok {
		return
	}
	s.rawHazardCheckKey(j, mapID, key, t)
}

// rawHazardCheckKey flushes the younger in-flight packets whose
// unconfirmed read matches the written key (Section 4.1.2, Figure 7).
// The Flush Evaluation Block stores the addresses of unconfirmed reads,
// so the flush is address-precise: packets that read other map entries
// keep flowing, which also guarantees that replayed packets never carry
// committed side effects (their stale read steered them onto a path
// that commits only at or after the write stage).
func (s *Sim) rawHazardCheckKey(j *job, mapID int, key string, t int) {
	if s.cfg.Policy != PolicyFlush {
		return
	}
	mb := s.mapBlockOf[mapID]
	if mb == nil || !mb.NeedsFlush {
		return
	}
	// Pipeline position, not injection sequence, defines age here: after
	// a replay, re-injected packets sit behind packets with higher
	// sequence numbers. Every packet at an earlier stage than the writer
	// performed its (unconfirmed) read before this write committed.
	hazard := false
	for u := mb.FlushFromStage; u < t; u++ {
		v := s.stages[u]
		if v == nil || v == j {
			continue
		}
		if v.reads[mapID][key] {
			hazard = true
			break
		}
	}
	if hazard {
		if s.debug != nil {
			s.debug(fmt.Sprintf("cycle %d: seq %d writes map%d key=%x at stage %d -> flush", s.cycle, j.seq, mapID, key, t))
		}
		s.flushVictims(mb.FlushFromStage, t, mapID, key, false)
	}
}
