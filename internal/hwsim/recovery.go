package hwsim

import (
	"errors"
	"fmt"
	"math/rand"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/protect"
)

// This file is the self-healing half of the simulator: ECC/parity
// protection of the map BRAMs, the background scrubber, and the
// checkpointed drain-and-restart recovery sequence that fires on an
// uncorrectable word or a livelock. The protection codecs themselves
// live in internal/protect and the per-map wrappers in internal/maps;
// here they are scheduled against the pipeline clock and tied to the
// retirement accounting, so a protected run stays bit-reproducible.

// ErrRecoveryExhausted is the sentinel wrapped by every RecoveryError;
// callers test for it with errors.Is.
var ErrRecoveryExhausted = errors.New("hwsim: recovery budget exhausted")

// errUncorrectableAccess marks a data-plane read that hit a word beyond
// the codec's correction capability: the packet retires as XDP_ABORTED
// and the cycle ends in a recovery.
var errUncorrectableAccess = errors.New("uncorrectable protected map word")

// RecoveryError reports that the pipeline kept corrupting faster than
// drain-and-restart could heal it: MaxRecoveries resets were spent and
// another trigger arrived. On real hardware this is the point where the
// shell raises a fatal interrupt and the driver reloads the bitstream.
type RecoveryError struct {
	// Cycle is the cycle of the final, over-budget trigger.
	Cycle uint64
	// Attempts is the number of recoveries performed before giving up.
	Attempts int
	// Reason describes the final trigger (uncorrectable word, livelock).
	Reason string
}

func (e *RecoveryError) Error() string {
	return fmt.Sprintf("hwsim: cycle %d: %d recoveries exhausted, still failing: %s",
		e.Cycle, e.Attempts, e.Reason)
}

// Unwrap makes errors.Is(err, ErrRecoveryExhausted) hold.
func (e *RecoveryError) Unwrap() error { return ErrRecoveryExhausted }

// RecoveryBackoff returns the input-hold time before the attempt-th
// restart (1-based): base << (attempt-1), capped so the schedule cannot
// overflow or out-wait any realistic watchdog budget.
func RecoveryBackoff(attempt, base int) uint64 {
	if attempt < 1 {
		attempt = 1
	}
	if base <= 0 {
		base = 256
	}
	shift := attempt - 1
	if shift > 12 {
		shift = 12
	}
	const maxBackoff = 1 << 20
	b := uint64(base) << shift
	if b > maxBackoff {
		b = maxBackoff
	}
	return b
}

// RecoveryBackoffJittered is RecoveryBackoff plus a seeded jitter in
// [0, base): replicas or devices faulted on the same cycle draw
// different holds, so a fleet never re-enters service in lockstep and
// re-collides on the same contended resource. A nil rng returns the
// deterministic schedule unchanged, and the attempt clamping matches
// RecoveryBackoff exactly; the caller charges the returned (jittered)
// value to its backoff accounting, so the books stay exact.
func RecoveryBackoffJittered(attempt, base int, rng *rand.Rand) uint64 {
	b := RecoveryBackoff(attempt, base)
	if rng == nil {
		return b
	}
	if base <= 0 {
		base = 256
	}
	return b + uint64(rng.Intn(base))
}

// initProtection wraps the environment's maps at the configured level
// and builds the scrubber. Called from NewWithEnv; a no-op at
// LevelNone.
func (s *Sim) initProtection() {
	if s.cfg.Protection == protect.LevelNone {
		return
	}
	// ProtectSet returns the wrappers in declaration (mapID) order, so
	// s.protected[mapID] resolves the wrapper directly.
	s.protected = maps.ProtectSet(s.env.Maps, s.cfg.Protection)
	if len(s.protected) > 0 {
		stores := make([]protect.Scrubbable, len(s.protected))
		for i, p := range s.protected {
			stores[i] = p
		}
		s.scrubber = protect.NewScrubber(s.cfg.scrubCyclesPerWord(), stores...)
	}
}

// recoveryEnabled reports whether the drain-and-restart machinery is
// armed. It rides with the protection level: an unprotected pipeline
// has no checkpoint controller to restart from.
func (s *Sim) recoveryEnabled() bool { return s.cfg.Protection != protect.LevelNone }

// Checkpoint exposes the last known-good map checkpoint (tests verify
// restore equivalence against it). Nil before the first Step or when
// recovery is disabled.
func (s *Sim) Checkpoint() *maps.SetSnapshot { return s.checkpoint }

// takeCheckpoint records the current map contents as the restore point.
func (s *Sim) takeCheckpoint() {
	s.checkpoint = s.env.Maps.Snapshot()
	s.stats.CheckpointsTaken++
	if s.probes != nil {
		entries := 0
		for i := 0; i < s.env.Maps.Len(); i++ {
			if m, ok := s.env.Maps.ByID(i); ok {
				entries += m.Len()
			}
		}
		s.probes.onCheckpoint(s.cycle, entries)
	}
}

// tickScrubber advances the background scrubber one clock cycle. A
// completed pass that saw no uncorrectable word — and left no entry
// quarantined — proves the map state healthy: the retry budget resets
// and a fresh checkpoint is taken.
func (s *Sim) tickScrubber() {
	if s.scrubber == nil {
		return
	}
	passDone, passClean := s.scrubber.Tick()
	if passDone {
		if s.probes != nil {
			s.probes.onScrub(s.cycle, s.scrubber.Stats().Words, passClean)
		}
		if passClean && s.quarantinedEntries() == 0 {
			s.recoveryAttempts = 0
			s.takeCheckpoint()
		}
	}
}

func (s *Sim) quarantinedEntries() int {
	n := 0
	for _, p := range s.protected {
		n += p.Quarantined()
	}
	return n
}

// syncProtectionStats folds the wrapper and scrubber counters into the
// simulation stats (they accumulate out-of-band as the lookup path and
// the scrubber touch words).
func (s *Sim) syncProtectionStats() {
	if len(s.protected) == 0 {
		return
	}
	var c protect.Counters
	for _, p := range s.protected {
		c = c.Add(p.Counters())
	}
	s.stats.WordsChecked = c.Checked
	s.stats.CorrectedWords = c.Corrected
	s.stats.UncorrectableWords = c.Uncorrectable
	if s.scrubber != nil {
		sc := s.scrubber.Stats()
		s.stats.ScrubPasses = sc.Passes
		s.stats.ScrubWords = sc.Words
	}
}

// maybeRecover runs at the end of every cycle: when a new uncorrectable
// word surfaced since the last check, the pipeline drains and restarts.
func (s *Sim) maybeRecover() error {
	if !s.recoveryEnabled() {
		return nil
	}
	s.syncProtectionStats()
	if s.stats.UncorrectableWords > s.handledUncorrectable {
		s.handledUncorrectable = s.stats.UncorrectableWords
		return s.recoverNow("uncorrectable map word")
	}
	return nil
}

// recoverNow is the drain-and-restart sequence (the shell's soft reset):
//
//  1. every in-flight frame — pipeline stages and flush victims alike —
//     retires as XDP_ABORTED through the normal completion path, so the
//     external accounting stays exact (injected == retired + aborted);
//  2. the hazard machinery (stall point, reload queue, WAR shadows) and
//     the input pacing reset to power-on state;
//  3. map memory is restored from the last known-good checkpoint, which
//     re-encodes check bits and lifts quarantines;
//  4. the input holds for an exponentially growing backoff before
//     packets flow again.
//
// Ingress-queued packets never entered the pipeline and survive the
// reset. When the bounded retry budget is exhausted, a RecoveryError
// (wrapping ErrRecoveryExhausted) ends the simulation instead.
func (s *Sim) recoverNow(reason string) error {
	s.recoveryAttempts++
	s.stats.Recoveries++

	// Drain, oldest first, through the regular retirement path.
	for t := len(s.stages) - 1; t >= 0; t-- {
		if j := s.stages[t]; j != nil {
			s.stages[t] = nil
			if s.probes != nil {
				s.probes.onStageExit(s.cycle, j, t)
			}
			s.abortInFlight(j)
		}
	}
	for _, j := range s.reload {
		s.abortInFlight(j)
	}
	s.reload = nil

	s.stallPoint, s.stallDrainTo, s.reloadDelay = -1, -1, 0
	s.injectGap = 0
	s.shadows = s.shadows[:0]

	if s.checkpoint != nil {
		if err := s.env.Maps.Restore(s.checkpoint); err != nil {
			return fmt.Errorf("hwsim: recovery restore: %w", err)
		}
	}
	s.syncProtectionStats()

	if max := s.cfg.maxRecoveries(); max > 0 && s.recoveryAttempts > max {
		if s.probes != nil {
			s.probes.onRecovery(s.cycle, s.recoveryAttempts, 0)
		}
		return &RecoveryError{Cycle: s.cycle, Attempts: max, Reason: reason}
	}

	backoff := RecoveryBackoffJittered(s.recoveryAttempts, s.cfg.RecoveryBackoffCycles, s.jitterRng)
	s.recoveryHold = s.cycle + backoff
	s.stats.RecoveryBackoffCycles += backoff
	s.lastRetire = s.cycle
	if s.probes != nil {
		s.probes.onRecovery(s.cycle, s.recoveryAttempts, backoff)
	}
	return nil
}

// abortInFlight retires one drained packet as XDP_ABORTED.
func (s *Sim) abortInFlight(j *job) {
	j.done = true
	j.action = ebpf.XDPAborted
	s.stats.RecoveryAborted++
	s.complete(j)
}

// checkMapRead models the BRAM read-port syndrome decode that precedes
// every pointer-relative access to the entry a packet looked up: a
// single-bit upset is corrected in place before the load sees it; an
// uncorrectable word aborts the packet (and, via the counters, triggers
// a recovery at the end of the cycle).
func (s *Sim) checkMapRead(j *job, mapID int) error {
	if mapID < 0 || mapID >= len(s.protected) {
		return nil
	}
	key, ok := j.lookupKey[mapID]
	if !ok {
		return nil
	}
	if !s.protected[mapID].CheckKey([]byte(key)) {
		return fmt.Errorf("map %q entry %x: %w",
			s.pl.Transformed.Maps[mapID].Name, key, errUncorrectableAccess)
	}
	return nil
}

// reencodeMapWrite recomputes the check bits after a store or atomic
// that went through the lookup pointer rather than the update helper —
// the hardware write port encodes on every write, whatever its source.
func (s *Sim) reencodeMapWrite(j *job, mapID int) {
	if mapID < 0 || mapID >= len(s.protected) {
		return
	}
	if key, ok := j.lookupKey[mapID]; ok {
		s.protected[mapID].Reencode([]byte(key))
	}
}
