package hwsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/pktgen"
	"ehdl/internal/vm"
)

// progGen builds random but analysable XDP programs: packet parses at
// static offsets, stack traffic, branchy control flow, map lookups with
// stack-resident keys, atomic counters, and optional miss-path updates.
// Every generated program must compile and behave identically on the
// reference VM and the pipeline.
type progGen struct {
	r *rand.Rand
	b *asm.Builder

	label int
}

func (g *progGen) newLabel() string {
	g.label++
	return fmt.Sprintf("L%d", g.label)
}

// scratch registers the generator plays with (callee-saved, excluding
// r7 which holds the packet pointer).
var scratch = []ebpf.Register{ebpf.R6, ebpf.R8, ebpf.R9}

func (g *progGen) reg() ebpf.Register { return scratch[g.r.Intn(len(scratch))] }

func generateProgram(seed int64) (*ebpf.Program, error) {
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r, b: asm.NewBuilder(fmt.Sprintf("fuzz%d", seed))}
	b := g.b

	withMap := r.Intn(3) > 0
	withUpdate := withMap && r.Intn(2) == 0
	withCounters := r.Intn(2) == 0
	if withMap {
		b.DeclareMap(ebpf.MapSpec{Name: "m", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 8, MaxEntries: 1024})
	}
	if withCounters {
		b.DeclareMap(ebpf.MapSpec{Name: "ctr", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	}

	// Prologue: packet pointer in r7 (bounds-checked to 40 bytes).
	b.Emit(
		ebpf.Mov64Reg(ebpf.R6, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R2, ebpf.R1, 4),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R7, ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R7),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, 40),
	)
	b.JumpRegTo(ebpf.JumpGT, ebpf.R3, ebpf.R2, "drop")

	// Seed the scratch registers from the packet.
	for _, reg := range scratch {
		b.Emit(ebpf.LoadMem(randSize(r), reg, ebpf.R7, int16(r.Intn(32))))
	}

	if withCounters {
		// A global atomic counter early in the program: with a map update
		// later, this also exercises the elastic-buffer placement.
		b.Emit(
			ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -24, int32(r.Intn(4))),
			ebpf.LoadMapRef(ebpf.R1, "ctr"),
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -24),
			ebpf.Call(ebpf.HelperMapLookupElem),
		)
		skip := g.newLabel()
		b.JumpTo(ebpf.JumpEq, ebpf.R0, 0, skip)
		b.Emit(
			ebpf.Mov64Imm(ebpf.R2, 1),
			ebpf.Atomic(ebpf.SizeDW, ebpf.R0, 0, ebpf.R2, ebpf.AtomicAdd),
		)
		b.Label(skip)
	}

	// A few blocks of random ALU/branch/stack work.
	blocks := 2 + r.Intn(4)
	for i := 0; i < blocks; i++ {
		g.emitStraightLine(3 + r.Intn(6))
		if r.Intn(2) == 0 {
			skip := g.newLabel()
			b.JumpTo(randCmp(r), g.reg(), int32(r.Intn(512)), skip)
			g.emitStraightLine(1 + r.Intn(4))
			b.Label(skip)
		}
	}

	if withMap {
		// Key from a scratch register, truncated, on the stack.
		key := g.reg()
		b.Emit(
			ebpf.Mov64Reg(ebpf.R3, key),
			ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R3, int32(1+r.Intn(7))), // few distinct keys: hazards likely
			ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R3),
			ebpf.LoadMapRef(ebpf.R1, "m"),
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
			ebpf.Call(ebpf.HelperMapLookupElem),
		)
		b.JumpTo(ebpf.JumpEq, ebpf.R0, 0, "miss")
		// Hit: atomic increment (safe under flushes) and a read.
		b.Emit(
			ebpf.Mov64Imm(ebpf.R2, 1),
			ebpf.Atomic(ebpf.SizeDW, ebpf.R0, 0, ebpf.R2, ebpf.AtomicAdd),
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R8, ebpf.R0, 0),
		)
		b.GotoLabel("out")
		b.Label("miss")
		if withUpdate {
			b.Emit(
				ebpf.StoreImm(ebpf.SizeDW, ebpf.R10, -16, 1),
				ebpf.LoadMapRef(ebpf.R1, "m"),
				ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
				ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
				ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
				ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, -16),
				ebpf.Mov64Imm(ebpf.R4, 0),
				ebpf.Call(ebpf.HelperMapUpdateElem),
			)
		}
		b.Label("out")
	}

	// Verdict from a scratch register: PASS or TX.
	v := g.reg()
	b.Emit(
		ebpf.Mov64Reg(ebpf.R0, v),
		ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R0, 1),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 2), // XDP_PASS or XDP_TX
		ebpf.Exit(),
	)
	b.Label("drop")
	b.Emit(ebpf.Mov64Imm(ebpf.R0, 1), ebpf.Exit())
	return b.Program()
}

func (g *progGen) emitStraightLine(n int) {
	r, b := g.r, g.b
	ops := []ebpf.ALUOp{ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUAnd, ebpf.ALUOr, ebpf.ALUXor, ebpf.ALUMul}
	for i := 0; i < n; i++ {
		switch r.Intn(9) {
		case 0:
			b.Emit(ebpf.ALU64Imm(ops[r.Intn(len(ops))], g.reg(), int32(r.Intn(1<<12))))
		case 1:
			b.Emit(ebpf.ALU64Reg(ops[r.Intn(len(ops))], g.reg(), g.reg()))
		case 2:
			b.Emit(ebpf.ALU64Imm(ebpf.ALULsh, g.reg(), int32(1+r.Intn(8))))
		case 3:
			// Spill and reload through a distinct stack slot.
			slot := int16(-8 * (2 + r.Intn(6)))
			b.Emit(
				ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, slot, g.reg()),
				ebpf.LoadMem(ebpf.SizeDW, g.reg(), ebpf.R10, slot),
			)
		case 4:
			b.Emit(ebpf.LoadMem(randSize(r), g.reg(), ebpf.R7, int16(r.Intn(32))))
		case 5:
			// Packet write at a safe offset.
			b.Emit(ebpf.StoreMem(ebpf.SizeB, ebpf.R7, int16(r.Intn(32)), g.reg()))
		case 6:
			// 32-bit arithmetic zero-extends like the datapath must.
			b.Emit(ebpf.ALU32Imm(ops[r.Intn(len(ops))], g.reg(), int32(r.Intn(1<<12))))
		case 7:
			// Byte-order conversion (wiring in hardware).
			width := []int32{16, 32, 64}[r.Intn(3)]
			src := ebpf.SourceK
			if r.Intn(2) == 0 {
				src = ebpf.SourceX
			}
			b.Emit(ebpf.Swap(g.reg(), src, width))
		case 8:
			b.Emit(ebpf.ALU64Reg(ebpf.ALURsh, g.reg(), g.reg()))
		}
	}
}

func randSize(r *rand.Rand) ebpf.Size {
	return []ebpf.Size{ebpf.SizeB, ebpf.SizeH, ebpf.SizeW, ebpf.SizeDW}[r.Intn(4)]
}

func randCmp(r *rand.Rand) ebpf.JumpOp {
	return []ebpf.JumpOp{ebpf.JumpEq, ebpf.JumpNE, ebpf.JumpGT, ebpf.JumpLT, ebpf.JumpSGT, ebpf.JumpSet}[r.Intn(6)]
}

// fuzzDifferential verifies one generated program against the reference
// interpreter on the given traffic: verdicts, packet bytes and final
// map state must all match.
func fuzzDifferential(t *testing.T, seed int64, prog *ebpf.Program, opts core.Options, packets [][]byte) {
	t.Helper()
	pl, err := core.Compile(prog, opts)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}

	// Reference run.
	refEnv, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	refEnv.Now = func() uint64 { return 0 }
	machine, err := vm.New(prog, refEnv)
	if err != nil {
		t.Fatal(err)
	}

	type refOut struct {
		action ebpf.XDPAction
		data   []byte
	}
	refs := make([]refOut, len(packets))
	for i, data := range packets {
		p := vm.NewPacket(data)
		res, err := machine.Run(p)
		if err != nil {
			t.Fatalf("seed %d packet %d: reference: %v", seed, i, err)
		}
		refs[i] = refOut{res.Action, append([]byte(nil), p.Bytes()...)}
	}

	sim, err := New(pl, Config{StrictCarryCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetClock(func() uint64 { return 0 })
	sim.KeepData(true)
	var results []Result
	sim.OnComplete(func(res Result) { results = append(results, res) })
	for _, data := range packets {
		for !sim.InputFree() {
			if err := sim.Step(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		sim.Inject(data)
		if err := sim.Step(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if err := sim.RunToCompletion(1 << 22); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if len(results) != len(packets) {
		t.Fatalf("seed %d: %d of %d packets completed", seed, len(results), len(packets))
	}
	for _, res := range results {
		ref := refs[res.Seq]
		if res.Action != ref.action {
			t.Fatalf("seed %d packet %d (%dB): action %v vs reference %v\n%s",
				seed, res.Seq, len(packets[res.Seq]), res.Action, ref.action, ebpf.Disassemble(prog.Instructions))
		}
		if !bytes.Equal(res.Data, ref.data) {
			t.Fatalf("seed %d packet %d (%dB): packet bytes diverge\n%s",
				seed, res.Seq, len(packets[res.Seq]), ebpf.Disassemble(prog.Instructions))
		}
	}
	// Final map state.
	for id := 0; id < refEnv.Maps.Len(); id++ {
		rm, _ := refEnv.Maps.ByID(id)
		gm, _ := sim.Maps().ByID(id)
		if rm.Len() != gm.Len() {
			t.Fatalf("seed %d: map %d entries %d vs %d", seed, id, gm.Len(), rm.Len())
		}
		rm.Iterate(func(k, v []byte) bool {
			gv, ok := gm.Lookup(k)
			if !ok || !bytes.Equal(gv, v) {
				t.Fatalf("seed %d: map %d key %x mismatch (%x vs %x)", seed, id, k, gv, v)
			}
			return true
		})
	}
}

// TestFuzzDifferential compiles random programs and verifies the
// pipeline against the reference interpreter on random traffic.
func TestFuzzDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		prog, err := generateProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: generator produced an invalid program: %v", seed, err)
		}
		r := rand.New(rand.NewSource(seed * 77))
		packets := make([][]byte, 80)
		for i := range packets {
			pkt := make([]byte, 48+r.Intn(64))
			r.Read(pkt)
			packets[i] = pkt
		}
		fuzzDifferential(t, seed, prog, core.Options{}, packets)
	}
}

// malformedCorpus is the fault-model seed corpus: every malformation
// class applied to a well-formed 64-byte UDP frame, plus straight cuts
// at the boundary offsets of the generated programs' 40-byte bounds
// check, plus healthy frames so hazard machinery still engages.
func malformedCorpus(seed int64) [][]byte {
	base := pktgen.Build(pktgen.PacketSpec{
		Flow:     pktgen.Flow{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 4242, DstPort: 53, Proto: 17},
		TotalLen: 64,
	})
	r := rand.New(rand.NewSource(seed))
	var out [][]byte
	for _, kind := range pktgen.MalformKinds() {
		for i := 0; i < 5; i++ {
			out = append(out, pktgen.Malform(base, kind, r))
		}
	}
	for _, n := range []int{0, 1, 13, 14, 33, 39, 40, 41, 48, len(base)} {
		out = append(out, append([]byte(nil), base[:n]...))
	}
	for i := 0; i < 20; i++ {
		pkt := make([]byte, 48+r.Intn(64))
		r.Read(pkt)
		out = append(out, pkt)
	}
	return out
}

// TestFuzzDifferentialMalformedCorpus runs the malformed seed corpus
// through random programs with bounds-check elision disabled, so the
// programs' own 40-byte check stays in hardware and the pipeline must
// match the reference bit for bit on every damaged frame — truncated,
// zero-length and jumbo alike.
func TestFuzzDifferentialMalformedCorpus(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		prog, err := generateProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fuzzDifferential(t, seed, prog, core.Options{DisableBoundsElision: true}, malformedCorpus(seed*131))
	}
}

// TestFuzzMalformedCorpusElidedChecks runs the same corpus with elision
// enabled (the shipping configuration): here the hardware bounds check
// owns the short frames, so the properties are weaker but universal —
// no simulator error, every packet retires, every verdict is legal, and
// runts inside the Ethernet/IP headers resolve to the OOB action.
func TestFuzzMalformedCorpusElidedChecks(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		prog, err := generateProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pl, err := core.Compile(prog, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		sim, err := New(pl, Config{})
		if err != nil {
			t.Fatal(err)
		}
		sim.SetClock(func() uint64 { return 0 })
		var results []Result
		sim.OnComplete(func(res Result) { results = append(results, res) })
		packets := malformedCorpus(seed * 131)
		for _, data := range packets {
			for !sim.InputFree() {
				if err := sim.Step(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			sim.Inject(data)
			if err := sim.Step(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if err := sim.RunToCompletion(1 << 22); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(results) != len(packets) {
			t.Fatalf("seed %d: %d of %d packets completed", seed, len(results), len(packets))
		}
		for _, res := range results {
			if res.Action > ebpf.XDPRedirect {
				t.Fatalf("seed %d packet %d: illegal verdict %d", seed, res.Seq, res.Action)
			}
		}
	}
}

// TestFuzzSchedulerInvariants checks, across random programs, that no
// stage holds conflicting instructions and that control flow is
// strictly forward-feeding.
func TestFuzzSchedulerInvariants(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		prog, err := generateProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := core.Compile(prog, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		firstStage := map[int]int{}
		for _, blk := range pl.Blocks {
			firstStage[blk.ID] = blk.FirstStage
		}
		for s := range pl.Stages {
			ops := pl.Stages[s].Ops
			for i := 0; i < len(ops); i++ {
				for j := i + 1; j < len(ops); j++ {
					for _, a := range append([]int{ops[i].Index}, ops[i].FusedIdx...) {
						for _, c := range append([]int{ops[j].Index}, ops[j].FusedIdx...) {
							lo, hi := a, c
							if lo > hi {
								lo, hi = hi, lo
							}
							if pl.Info.Conflicts(lo, hi) {
								t.Fatalf("seed %d: stage %d holds conflicting instructions %d,%d", seed, s, a, c)
							}
						}
					}
				}
				for _, succ := range []int{ops[i].TakenBlock, ops[i].FallBlock} {
					if succ >= 0 && firstStage[succ] <= s {
						t.Fatalf("seed %d: stage %d enables block %d at stage %d (backwards)",
							seed, s, succ, firstStage[succ])
					}
				}
			}
		}
	}
}
