package hwsim

import (
	"errors"
	"fmt"
)

// ErrLivelock is the sentinel wrapped by every LivelockError; callers
// test for it with errors.Is.
var ErrLivelock = errors.New("hwsim: pipeline livelock")

// LivelockError is the watchdog's cycle-stamped diagnostic: work is in
// flight but no packet has retired for Config.WatchdogCycles cycles. On
// real hardware this is the condition that forces a shell-level
// pipeline reset; the simulator surfaces it as a typed error instead of
// hanging the caller.
type LivelockError struct {
	// Cycle is the cycle the watchdog tripped on.
	Cycle uint64
	// LastRetire is the cycle of the last packet retirement (0 if no
	// packet ever retired).
	LastRetire uint64
	// StallPoint is the stage the hazard machinery is holding at, or -1
	// when no stall/reload window is open.
	StallPoint int
	// Policy is the hazard policy the pipeline was configured with.
	Policy HazardPolicy
	// InFlight is the number of packets occupying pipeline stages.
	InFlight int
	// Reloading is the number of flush victims awaiting re-entry.
	Reloading int
}

func (e *LivelockError) Error() string {
	policy := "flush"
	if e.Policy == PolicyStall {
		policy = "stall"
	}
	return fmt.Sprintf(
		"hwsim: pipeline livelock: no retirement since cycle %d (now %d, policy %s, stall point %d, %d in flight, %d reloading)",
		e.LastRetire, e.Cycle, policy, e.StallPoint, e.InFlight, e.Reloading)
}

// Unwrap makes errors.Is(err, ErrLivelock) hold for every LivelockError.
func (e *LivelockError) Unwrap() error { return ErrLivelock }

// checkWatchdog runs at the end of every cycle. It trips when packets
// are in flight (or waiting to re-enter) but none has retired for more
// than WatchdogCycles cycles — the signature of a stall-policy or
// flush-reload livelock.
func (s *Sim) checkWatchdog() error {
	if s.cfg.WatchdogCycles <= 0 {
		return nil
	}
	if !s.Busy() {
		s.lastRetire = s.cycle
		return nil
	}
	if s.cycle < s.recoveryHold {
		// A post-recovery backoff hold is intentional quiescence, not a
		// livelock: the retirement clock restarts when the input does.
		s.lastRetire = s.cycle
		return nil
	}
	if s.cycle-s.lastRetire <= uint64(s.cfg.WatchdogCycles) {
		return nil
	}
	s.stats.WatchdogTrips++
	if s.probes != nil {
		s.probes.onWatchdog(s.cycle, s.lastRetire)
	}
	inFlight := 0
	for _, j := range s.stages {
		if j != nil {
			inFlight++
		}
	}
	return &LivelockError{
		Cycle:      s.cycle,
		LastRetire: s.lastRetire,
		StallPoint: s.stallPoint,
		Policy:     s.cfg.Policy,
		InFlight:   inFlight,
		Reloading:  len(s.reload),
	}
}
