package hwsim

import (
	"errors"
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
)

// wedgeStall opens an artificial stall window that can never drain: the
// stall point sits above a held packet and the reload dead time is set
// beyond the test horizon. Correct hazard machinery cannot reach this
// state (stall windows always drain), so the test plants it directly to
// prove the watchdog converts a hang into a typed error.
func (s *Sim) wedgeStall(point, drainTo, delay int) {
	s.stallPoint = point
	s.stallDrainTo = drainTo
	s.reloadDelay = delay
}

func TestWatchdogTripsOnStallLivelock(t *testing.T) {
	pl := compile(t, "flow", flowSource, core.Options{})
	sim, err := New(pl, Config{Policy: PolicyStall, WatchdogCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Inject(ipv4Packet(1, 64)) {
		t.Fatal("inject failed")
	}
	// One cycle moves the packet from the input queue into stage 0;
	// then wedge a never-draining stall window above it.
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	sim.wedgeStall(1, pl.NumStages()-1, 1<<40)

	err = sim.RunToCompletion(100000)
	if err == nil {
		t.Fatal("livelocked pipeline drained; watchdog never fired")
	}
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("error %v, want ErrLivelock", err)
	}
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("error %T does not unwrap to *LivelockError", err)
	}
	if le.Policy != PolicyStall {
		t.Errorf("diagnostic policy = %v, want PolicyStall", le.Policy)
	}
	if le.StallPoint != 1 {
		t.Errorf("diagnostic stall point = %d, want 1", le.StallPoint)
	}
	if le.InFlight != 1 {
		t.Errorf("diagnostic in-flight = %d, want 1", le.InFlight)
	}
	if le.Cycle <= le.LastRetire || le.Cycle-le.LastRetire <= 500 {
		t.Errorf("diagnostic cycles %d..%d do not span the watchdog window", le.LastRetire, le.Cycle)
	}
	if got := sim.Stats().WatchdogTrips; got != 1 {
		t.Errorf("WatchdogTrips = %d, want 1", got)
	}
}

func TestWatchdogQuietOnHealthyTraffic(t *testing.T) {
	// Hazard-heavy single-flow traffic under both policies must never
	// trip a generous watchdog: stall windows and flush reloads always
	// make forward progress.
	for _, policy := range []HazardPolicy{PolicyFlush, PolicyStall} {
		pl := compile(t, "flow", flowSource, core.Options{})
		sim, err := New(pl, Config{Policy: policy, WatchdogCycles: 10000})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			for !sim.InputFree() {
				if err := sim.Step(); err != nil {
					t.Fatalf("policy %v: %v", policy, err)
				}
			}
			sim.Inject(ipv4Packet(uint32(i%2), 64))
		}
		if err := sim.RunToCompletion(1 << 20); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		st := sim.Stats()
		if st.WatchdogTrips != 0 {
			t.Errorf("policy %v: %d watchdog trips on healthy traffic", policy, st.WatchdogTrips)
		}
		if st.Completed != 200 {
			t.Errorf("policy %v: completed %d of 200", policy, st.Completed)
		}
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sim.Inject(ethPacket(ebpf.EthPIP, 64))
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	sim.wedgeStall(1, pl.NumStages()-1, 1<<40)
	// With WatchdogCycles == 0 the wedge hangs instead of erroring; the
	// RunToCompletion bound is the only way out.
	if err := sim.RunToCompletion(2000); err == nil {
		t.Fatal("wedged pipeline drained unexpectedly")
	} else if errors.Is(err, ErrLivelock) {
		t.Fatalf("disabled watchdog still fired: %v", err)
	}
}
