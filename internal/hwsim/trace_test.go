package hwsim

import (
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/faults"
	"ehdl/internal/obs"
	"ehdl/internal/protect"
)

// runTraced drives packets through a fresh simulator with an in-memory
// tracer (and whatever else cfg arms) attached, returning the events.
func runTraced(t *testing.T, name, src string, cfg Config, packets [][]byte) []obs.Event {
	t.Helper()
	pl := compile(t, name, src, core.Options{})
	sink := obs.NewMemSink()
	cfg.Trace = obs.NewTracer(0, sink)
	sim, err := New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.env.Now = func() uint64 { return 0 }
	for _, data := range packets {
		for !sim.InputFree() {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
		sim.Inject(data)
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	if got, want := sim.Tracer(), cfg.Trace; got != want {
		t.Fatalf("Tracer() = %p, configured %p", got, want)
	}
	return sink.Events()
}

func kindsOf(evs []obs.Event) map[obs.Kind]bool {
	seen := map[obs.Kind]bool{}
	for _, ev := range evs {
		seen[ev.Kind] = true
	}
	return seen
}

// TestProbesHazardRun checks the core event classes and the metrics
// registry against a same-flow run dense in RAW hazards and flushes.
func TestProbesHazardRun(t *testing.T) {
	reg := obs.NewRegistry()
	var packets [][]byte
	for i := 0; i < 12; i++ {
		packets = append(packets, ipv4Packet(0x0a000001, 64))
	}
	evs := runTraced(t, "flow", flowSource, Config{Metrics: reg}, packets)

	seen := kindsOf(evs)
	for _, k := range []obs.Kind{
		obs.KindInject, obs.KindStageEnter, obs.KindStageExit,
		obs.KindPredicate, obs.KindMapAccess,
		obs.KindFlushBegin, obs.KindFlushEnd, obs.KindVerdict,
	} {
		if !seen[k] {
			t.Errorf("event class %q missing from a hazard-dense run", k)
		}
	}

	if n, _ := reg.CounterValue(MetricFlushes); n == 0 {
		t.Error("same-flow packets back to back produced no flushes")
	}
	if n, _ := reg.CounterValue(MetricMapPortOps); n == 0 {
		t.Error("map port ops counter never incremented")
	}
	if h, ok := reg.HistogramByName(MetricCyclesPerPacket); !ok || h.Count() != uint64(len(packets)) {
		t.Errorf("cycles-per-packet histogram has %v observations, want one per packet (%d)",
			h.Count(), len(packets))
	}
	if h, ok := reg.HistogramByName(MetricFlushPenalty); !ok || h.Count() == 0 {
		t.Error("flush penalty histogram never observed an episode")
	}
}

// TestProbesWARShadow: the write-before-read geometry captures a
// write-delay shadow on every insert.
func TestProbesWARShadow(t *testing.T) {
	var packets [][]byte
	for i := 0; i < 8; i++ {
		pkt := ipv4Packet(0x0a000001, 64)
		pkt[40] = byte(i)
		packets = append(packets, pkt)
	}
	evs := runTraced(t, "war", warSource, Config{}, packets)
	if !kindsOf(evs)[obs.KindWARShadow] {
		t.Error("WAR program emitted no war_shadow events")
	}
}

// TestProbesQueueDrop: a refused injection on a full one-slot ingress
// queue is traced.
func TestProbesQueueDrop(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sink := obs.NewMemSink()
	sim, err := New(pl, Config{InputQueuePackets: 1, Trace: obs.NewTracer(0, sink)})
	if err != nil {
		t.Fatal(err)
	}
	sim.env.Now = func() uint64 { return 0 }
	if !sim.Inject(ethPacket(2048, 64)) {
		t.Fatal("first packet refused by an empty queue")
	}
	if sim.Inject(ethPacket(2048, 64)) {
		t.Fatal("second packet accepted by a full one-slot queue")
	}
	if err := sim.RunToCompletion(1 << 16); err != nil {
		t.Fatal(err)
	}
	if !kindsOf(sink.Events())[obs.KindQueueDrop] {
		t.Error("refused injection emitted no queue_drop event")
	}
}

// TestProbesSelfHealing: an SEU campaign under parity (every detected
// flip is uncorrectable, so drain-and-restart must fire) with an
// every-cycle scrubber traces the whole recovery vocabulary.
func TestProbesSelfHealing(t *testing.T) {
	var packets [][]byte
	for i := 0; i < 300; i++ {
		packets = append(packets, ipv4Packet(0x0a000000+uint32(i%7), 64))
	}
	evs := runTraced(t, "flow", flowSource, Config{
		Faults:             faults.New(faults.Single(faults.SEUMapEntry, 0.01, 11)),
		Protection:         protect.LevelParity,
		ScrubCyclesPerWord: 1,
		MaxRecoveries:      -1,
	}, packets)

	seen := kindsOf(evs)
	for _, k := range []obs.Kind{obs.KindFault, obs.KindScrub, obs.KindCheckpoint, obs.KindRecovery} {
		if !seen[k] {
			t.Errorf("event class %q missing from the SEU campaign", k)
		}
	}
}

// TestProbesWatchdog: a hair-trigger watchdog under protection converts
// its trip into a traced drain-and-restart.
func TestProbesWatchdog(t *testing.T) {
	var packets [][]byte
	for i := 0; i < 4; i++ {
		packets = append(packets, ethPacket(2048, 64))
	}
	evs := runTraced(t, "toy", toySource, Config{
		Protection:            protect.LevelECC,
		WatchdogCycles:        2,
		MaxRecoveries:         -1,
		RecoveryBackoffCycles: 16,
	}, packets)

	seen := kindsOf(evs)
	if !seen[obs.KindWatchdog] {
		t.Error("hair-trigger watchdog emitted no watchdog event")
	}
	if !seen[obs.KindRecovery] {
		t.Error("watchdog trip under protection emitted no recovery event")
	}
}
