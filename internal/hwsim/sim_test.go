package hwsim

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/vm"
)

const toySource = `
map stats array key=4 value=8 entries=4

r2 = *(u32 *)(r1 + 4)
r1 = *(u32 *)(r1 + 0)
r3 = r1
r3 += 14
if r3 > r2 goto drop
r3 = 0
*(u32 *)(r10 - 4) = r3
r2 = *(u8 *)(r1 + 13)
r1 = *(u8 *)(r1 + 12)
r1 <<= 8
r1 |= r2
if r1 == 34525 goto ipv6
if r1 == 2054 goto arp
if r1 != 2048 goto lookup
r1 = 1
goto store
ipv6:
r1 = 2
goto store
arp:
r1 = 3
store:
*(u32 *)(r10 - 4) = r1
lookup:
r2 = r10
r2 += -4
r1 = map[stats] ll
call 1
r1 = r0
r0 = 3
if r1 == 0 goto out
r2 = 1
lock *(u64 *)(r1 + 0) += r2
out:
exit
drop:
r0 = 1
exit
`

// flowSource reads a per-flow entry and installs it on miss: the shape
// that produces RAW hazards and pipeline flushes.
const flowSource = `
map conn hash key=4 value=8 entries=4096

r2 = *(u32 *)(r1 + 0)
r3 = *(u32 *)(r2 + 26)       ; src IP
*(u32 *)(r10 - 4) = r3
r1 = map[conn] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto miss
r1 = 1
lock *(u64 *)(r0 + 0) += r1  ; hit counter (per-flow, not global)
r0 = 2
exit
miss:
*(u64 *)(r10 - 16) = 1
r1 = map[conn] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -16
r4 = 0
call 2
r0 = 2
exit
`

func ethPacket(etherType uint16, size int) []byte {
	if size < 14 {
		size = 14
	}
	pkt := make([]byte, size)
	binary.BigEndian.PutUint16(pkt[12:14], etherType)
	return pkt
}

func ipv4Packet(src uint32, size int) []byte {
	pkt := ethPacket(ebpf.EthPIP, size)
	binary.BigEndian.PutUint32(pkt[26:30], src)
	return pkt
}

func compile(t *testing.T, name, src string, opts core.Options) *core.Pipeline {
	t.Helper()
	prog, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runBoth executes the same packet sequence on the reference VM and the
// pipeline simulator and compares actions, packet bytes, and final map
// contents.
func runBoth(t *testing.T, name, src string, opts core.Options, cfg Config, packets [][]byte) (Stats, []Result) {
	t.Helper()
	pl := compile(t, name, src, opts)

	// Reference: strictly sequential execution.
	prog, _ := asm.Assemble(name, src)
	refEnv, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	refEnv.Now = func() uint64 { return 0 } // pin time for determinism
	machine, err := vm.New(prog, refEnv)
	if err != nil {
		t.Fatal(err)
	}
	type refOut struct {
		action ebpf.XDPAction
		data   []byte
	}
	refs := make([]refOut, len(packets))
	for i, data := range packets {
		pkt := vm.NewPacket(data)
		res, err := machine.Run(pkt)
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		refs[i] = refOut{action: res.Action, data: append([]byte(nil), pkt.Bytes()...)}
	}

	// Pipeline.
	cfg.StrictCarryCheck = true
	sim, err := New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Maps() // ensure constructed
	simEnv := sim.env
	simEnv.Now = func() uint64 { return 0 }
	sim.KeepData(true)
	results := make([]Result, 0, len(packets))
	sim.OnComplete(func(r Result) { results = append(results, r) })

	for _, data := range packets {
		for !sim.InputFree() {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
		sim.Inject(data)
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}

	if len(results) != len(packets) {
		t.Fatalf("pipeline completed %d of %d packets", len(results), len(packets))
	}
	for _, r := range results {
		ref := refs[r.Seq]
		if r.Action != ref.action {
			t.Fatalf("packet %d: pipeline action %v, reference %v", r.Seq, r.Action, ref.action)
		}
		if !bytes.Equal(r.Data, ref.data) {
			t.Fatalf("packet %d: pipeline bytes differ from reference", r.Seq)
		}
	}

	// Maps must match the sequential outcome.
	for id := 0; id < refEnv.Maps.Len(); id++ {
		refMap, _ := refEnv.Maps.ByID(id)
		simMap, _ := sim.Maps().ByID(id)
		if refMap.Len() != simMap.Len() {
			t.Fatalf("map %d: %d entries vs reference %d", id, simMap.Len(), refMap.Len())
		}
		refMap.Iterate(func(k, v []byte) bool {
			got, ok := simMap.Lookup(k)
			if !ok {
				t.Fatalf("map %d: key %x missing in pipeline", id, k)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("map %d key %x: pipeline %x, reference %x", id, k, got, v)
			}
			return true
		})
	}
	return sim.Stats(), results
}

func TestToyDifferential(t *testing.T) {
	var packets [][]byte
	for i := 0; i < 50; i++ {
		switch i % 4 {
		case 0:
			packets = append(packets, ethPacket(ebpf.EthPIP, 64))
		case 1:
			packets = append(packets, ethPacket(ebpf.EthPIPV6, 64))
		case 2:
			packets = append(packets, ethPacket(ebpf.EthPARP, 64))
		default:
			packets = append(packets, ethPacket(0x88cc, 64))
		}
	}
	stats, results := runBoth(t, "toy", toySource, core.Options{}, Config{}, packets)
	if stats.Flushes != 0 {
		t.Errorf("atomic-protected counters flushed %d times", stats.Flushes)
	}
	for _, r := range results {
		if r.Action != ebpf.XDPTx {
			t.Errorf("packet %d: action %v", r.Seq, r.Action)
		}
	}
}

func TestToyShortPacketDroppedByHardwareBoundsCheck(t *testing.T) {
	// A 10-byte runt cannot supply the EtherType bytes: the elided
	// bounds check is enforced by the frame access itself.
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	sim.OnComplete(func(r Result) { got = append(got, r) })
	sim.Inject(make([]byte, 10))
	if err := sim.RunToCompletion(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Action != ebpf.XDPDrop {
		t.Fatalf("runt packet result = %+v, want XDP_DROP", got)
	}
}

func TestToyThroughputOnePacketPerCycle(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if !sim.Inject(ethPacket(ebpf.EthPIP, 64)) {
			t.Fatal("input queue overflow")
		}
	}
	if err := sim.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Completed != n {
		t.Fatalf("completed %d of %d", st.Completed, n)
	}
	// One 64-byte packet per cycle plus the pipeline drain tail.
	if st.Cycles > n+uint64(pl.NumStages())+8 {
		t.Errorf("cycles = %d for %d packets over %d stages: not one per cycle",
			st.Cycles, n, pl.NumStages())
	}
	// At 250 MHz that is ~250 Mpps, comfortably above the 148 Mpps line
	// rate of the paper's 100 Gbps port.
	if mpps := st.Mpps(250e6); mpps < 200 {
		t.Errorf("throughput = %.1f Mpps, want ~250", mpps)
	}
}

func TestToyLatencyMatchesDepth(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var lat uint64
	sim.OnComplete(func(r Result) { lat = r.LatencyCycles })
	sim.Inject(ethPacket(ebpf.EthPIP, 64))
	if err := sim.RunToCompletion(10000); err != nil {
		t.Fatal(err)
	}
	if lat != uint64(pl.NumStages())+1 { // +1: input FIFO handoff
		t.Errorf("latency = %d cycles, want pipeline depth %d + 1", lat, pl.NumStages())
	}
}

func TestFlowStateDifferentialWithFlushes(t *testing.T) {
	// Many packets of few flows back to back: guaranteed RAW hazards on
	// the miss->update path; the flush machinery must still produce the
	// sequential outcome.
	r := rand.New(rand.NewSource(7))
	var packets [][]byte
	for i := 0; i < 300; i++ {
		packets = append(packets, ipv4Packet(uint32(r.Intn(4)), 64))
	}
	stats, _ := runBoth(t, "flow", flowSource, core.Options{}, Config{}, packets)
	if stats.Flushes == 0 {
		t.Error("no flushes despite back-to-back same-flow misses")
	}
}

// touchSource writes per-flow state on every packet (a read-modify-write
// of the flow counter), the access pattern whose flush probability
// follows the birthday argument of Appendix A.1.
const touchSource = `
map ts hash key=4 value=8 entries=8192

r2 = *(u32 *)(r1 + 0)
r3 = *(u32 *)(r2 + 26)       ; src IP
*(u32 *)(r10 - 4) = r3
r1 = map[ts] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto miss
r5 = *(u64 *)(r0 + 0)
r5 += 1
*(u64 *)(r0 + 0) = r5        ; non-atomic RMW: flush-protected
r0 = 2
exit
miss:
*(u64 *)(r10 - 16) = 1
r1 = map[ts] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -16
r4 = 0
call 2
r0 = 2
exit
`

func TestFlowStateManyFlowsFewFlushes(t *testing.T) {
	// With many flows the hazard probability collapses (the birthday
	// argument of Appendix A.1); with two flows nearly every packet
	// collides inside the read-to-write window.
	gen := func(flows int) [][]byte {
		r := rand.New(rand.NewSource(7))
		var packets [][]byte
		for i := 0; i < 400; i++ {
			packets = append(packets, ipv4Packet(uint32(r.Intn(flows)), 64))
		}
		return packets
	}
	statsMany, _ := runBoth(t, "touch", touchSource, core.Options{}, Config{}, gen(100000))
	statsFew, _ := runBoth(t, "touch", touchSource, core.Options{}, Config{}, gen(2))

	if statsMany.Flushes >= statsFew.Flushes {
		t.Errorf("flushes: %d with 100k flows vs %d with 2 flows; expected fewer with more flows",
			statsMany.Flushes, statsFew.Flushes)
	}
	if statsFew.Flushes == 0 {
		t.Error("two-flow write-per-packet traffic never flushed")
	}
}

func TestSingleFlowAtomicVsFlushAblation(t *testing.T) {
	// Section 5.3: forcing every packet onto one map key. With the
	// atomic primitive the pipeline sustains a packet per cycle; with
	// atomics lowered to flush-protected read-modify-writes the
	// throughput collapses.
	packets := make([][]byte, 600)
	for i := range packets {
		packets[i] = ethPacket(ebpf.EthPIP, 64) // all hit stats[1]
	}

	atomicStats, _ := runBoth(t, "toy", toySource, core.Options{}, Config{}, packets)
	flushStats, _ := runBoth(t, "toy", toySource, core.Options{DisableAtomics: true}, Config{}, packets)

	if atomicStats.Flushes != 0 {
		t.Errorf("atomic pipeline flushed %d times", atomicStats.Flushes)
	}
	if flushStats.Flushes == 0 {
		t.Error("lowered pipeline never flushed on single-key traffic")
	}
	if flushStats.Cycles <= atomicStats.Cycles*2 {
		t.Errorf("flush-lowered run took %d cycles vs %d with atomics: degradation too small",
			flushStats.Cycles, atomicStats.Cycles)
	}
}

func TestHazardPolicyStallAblation(t *testing.T) {
	// The FlowBlaze-style stall policy degrades throughput even without
	// actual key collisions (distinct flows), while flushing does not.
	r := rand.New(rand.NewSource(11))
	packets := make([][]byte, 400)
	for i := range packets {
		packets[i] = ipv4Packet(uint32(r.Intn(100000)), 64)
	}
	flushStats, _ := runBoth(t, "flow", flowSource, core.Options{}, Config{Policy: PolicyFlush}, packets)
	stallStats, _ := runBoth(t, "flow", flowSource, core.Options{}, Config{Policy: PolicyStall}, packets)

	if stallStats.Cycles <= flushStats.Cycles {
		t.Errorf("stall run %d cycles vs flush run %d: conservative stalling should be slower",
			stallStats.Cycles, flushStats.Cycles)
	}
	if stallStats.StallCycles == 0 {
		t.Error("stall policy recorded no stall cycles")
	}
}

func TestMultiFramePacketsPaceInjection(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		sim.Inject(ethPacket(ebpf.EthPIP, 512)) // 8 frames at 64B
	}
	if err := sim.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Completed != n {
		t.Fatalf("completed %d of %d", st.Completed, n)
	}
	if st.Cycles < n*8 {
		t.Errorf("cycles = %d; 8-frame packets must take at least 8 cycles each", st.Cycles)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{InputQueuePackets: 4})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 10; i++ {
		if sim.Inject(ethPacket(ebpf.EthPIP, 64)) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted %d, want 4", accepted)
	}
	if sim.Stats().QueueDrops != 6 {
		t.Errorf("drops = %d, want 6", sim.Stats().QueueDrops)
	}
}

func TestRedirectThroughPipeline(t *testing.T) {
	src := `
r1 = 7
r2 = 0
call bpf_redirect
exit
`
	pl := compile(t, "redir", src, core.Options{})
	sim, err := New(pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	sim.OnComplete(func(r Result) { got = r })
	sim.Inject(make([]byte, 64))
	if err := sim.RunToCompletion(10000); err != nil {
		t.Fatal(err)
	}
	if got.Action != ebpf.XDPRedirect || got.RedirectIfindex != 7 {
		t.Fatalf("redirect result = %+v", got)
	}
}

func TestPropertyRandomTrafficDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential property test")
	}
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		var packets [][]byte
		for i := 0; i < 120; i++ {
			flows := 1 << (1 + r.Intn(10))
			packets = append(packets, ipv4Packet(uint32(r.Intn(flows)), 60+r.Intn(200)))
		}
		runBoth(t, "flow", flowSource, core.Options{}, Config{}, packets)
		runBoth(t, "toy", toySource, core.Options{}, Config{}, packets)
	}
}
