package hwsim

import (
	"testing"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
)

// loopSource parses a bounded run of data: it sums eight packet bytes in
// a counted loop, exercising loop unrolling through the entire flow
// (compile -> pipeline -> differential execution).
const loopSource = `
map sums array key=4 value=8 entries=4

r2 = *(u32 *)(r1 + 4)
r7 = *(u32 *)(r1 + 0)
r3 = r7
r3 += 22
if r3 > r2 goto drop

r8 = 0                       ; accumulator
r9 = 0                       ; loop counter
loop:
r4 = r9
r4 += 14                     ; &pkt[14 + i]... static unrolled offsets
r5 = *(u8 *)(r7 + 14)        ; the unroller duplicates the body; the
r8 += r5                     ; varying index lives in r4 for the sum
r8 += r9
r9 += 1
if r9 != 8 goto loop

*(u32 *)(r10 - 4) = 0
r1 = map[sums] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto out
lock *(u64 *)(r0 + 0) += r8
out:
r0 = 2
exit
drop:
r0 = 1
exit
`

func TestBoundedLoopThroughPipeline(t *testing.T) {
	pl := compile(t, "looper", loopSource, core.Options{})
	// The loop must be fully unrolled: no stage may be re-entered, and
	// the transformed program must be larger than the source.
	if len(pl.Transformed.Instructions) <= 30 {
		t.Fatalf("transformed program has %d instructions; the 8-trip loop did not unroll",
			len(pl.Transformed.Instructions))
	}
	var packets [][]byte
	for i := 0; i < 40; i++ {
		pkt := make([]byte, 64)
		for b := range pkt {
			pkt[b] = byte(i + b)
		}
		packets = append(packets, pkt)
	}
	runBoth(t, "looper", loopSource, core.Options{}, Config{}, packets)
}

// warSource writes per-flow state BEFORE reading it back later in the
// same program: the write stage precedes the read stage in the
// pipeline, which is the Figure 6 WAR pattern requiring the write-delay
// shadow so older in-flight packets still observe the pre-write value.
const warSource = `
map seen hash key=4 value=8 entries=1024

r2 = *(u32 *)(r1 + 0)
r3 = *(u32 *)(r2 + 26)
*(u32 *)(r10 - 4) = r3
r9 = *(u64 *)(r2 + 40)         ; per-packet nonce, read back below

; unconditional insert/overwrite first (the write stage)
*(u64 *)(r10 - 16) = r9
r1 = map[seen] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -16
r4 = 0
call 2

; then read the entry back (the read stage, later in the pipeline)
r1 = map[seen] ll
r2 = r10
r2 += -4
call 1
if r0 == 0 goto miss
r4 = *(u64 *)(r0 + 0)
if r4 != r9 goto corrupt       ; must read back our own write
r0 = 3
exit
corrupt:
r0 = 0                         ; XDP_ABORTED marks a WAR violation
exit
miss:
r0 = 1
exit
`

func TestWARGeometryDetected(t *testing.T) {
	pl := compile(t, "war", warSource, core.Options{})
	if len(pl.Maps) != 1 {
		t.Fatalf("maps = %d", len(pl.Maps))
	}
	mb := pl.Maps[0]
	if mb.WARDepth == 0 {
		t.Fatalf("write-then-read map has WARDepth 0: %+v", mb)
	}
}

func TestWARDifferential(t *testing.T) {
	// Back-to-back same-flow packets make younger writes race with older
	// reads: without the write-delay shadow, an older packet would read
	// the younger packet's nonce instead of its own and abort.
	var packets [][]byte
	for i := 0; i < 60; i++ {
		pkt := ipv4Packet(uint32(i%3), 64)
		pkt[40] = byte(i) // the per-packet nonce the program writes and reads back
		pkt[41] = byte(i >> 8)
		packets = append(packets, pkt)
	}
	_, results := runBoth(t, "war", warSource, core.Options{}, Config{}, packets)
	for _, r := range results {
		if r.Action != ebpf.XDPTx {
			t.Fatalf("packet %d action %v: read back a foreign nonce (WAR violation)", r.Seq, r.Action)
		}
	}
}

// TestFlushRecallPreservesUnreadPackets checks the no-stale-reader path
// of the Flush Evaluation Block: a write with no matching reads must
// leave the pipeline untouched.
func TestFlushRecallPreservesUnreadPackets(t *testing.T) {
	var packets [][]byte
	// Distinct flows only: writes happen (first-packet inserts) but no
	// two same-key packets ever share the window.
	for i := 0; i < 200; i++ {
		packets = append(packets, ipv4Packet(uint32(1000+i), 64))
	}
	stats, _ := runBoth(t, "flow", flowSource, core.Options{}, Config{}, packets)
	if stats.Flushes != 0 {
		t.Errorf("distinct-flow traffic triggered %d flushes", stats.Flushes)
	}
}

// deepSource reads far into the payload right at the start of the
// program: the compiler must insert framing NOPs, and the simulator's
// bypass network must deliver the correct bytes.
const deepSource = `
r2 = *(u32 *)(r1 + 4)
r7 = *(u32 *)(r1 + 0)
r3 = r7
r3 += 408
if r3 > r2 goto drop
r0 = *(u32 *)(r7 + 400)
r0 &= 3
exit
drop:
r0 = 1
exit
`

func TestDeepAccessDifferential(t *testing.T) {
	pl := compile(t, "deep", deepSource, core.Options{})
	if pl.FramingNOPs == 0 {
		t.Fatal("no framing NOPs for a 400-byte access")
	}
	var packets [][]byte
	for i := 0; i < 30; i++ {
		pkt := make([]byte, 512)
		for b := range pkt {
			pkt[b] = byte(i * b)
		}
		packets = append(packets, pkt)
	}
	// Short packets exercise the hardware bounds drop as well.
	packets = append(packets, make([]byte, 64), make([]byte, 300))
	runBoth(t, "deep", deepSource, core.Options{}, Config{}, packets)
}
