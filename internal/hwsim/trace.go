package hwsim

import (
	"ehdl/internal/obs"
)

// probes is the simulator's observability surface: the cycle-level
// event tracer and the metric instruments, resolved once at
// construction so the hot path never touches the registry.
//
// The zero-overhead contract: s.probes stays nil unless Config.Trace or
// Config.Metrics is set, and every probe site guards with one pointer
// comparison. All bookkeeping below this line is paid only by opted-in
// runs.
type probes struct {
	tr *obs.Tracer

	occupancy    *obs.Histogram // occupied stages per cycle
	warDepth     *obs.Histogram // WAR shadow-buffer occupancy at capture
	flushPenalty *obs.Histogram // cycles from flush verdict to stall release
	cyclesPerPkt *obs.Histogram // forwarding latency distribution
	portOps      *obs.Counter   // map port operations, data plane
	contention   *obs.Counter   // cycles one map port served >1 operation
	backpressure *obs.Counter   // cycles the input held with work queued
	flushes      *obs.Counter   // flush episodes
	recoveries   *obs.Counter   // drain-and-restart sequences

	// Per-cycle working state, reset by endCycle.
	portUse  []uint32 // per-mapID operations this cycle
	portHot  []int    // mapIDs touched this cycle
	injected bool     // a packet entered stage 0 this cycle

	// Open flush episode (for the penalty measurement).
	flushActive bool
	flushStart  uint64
}

// Metric names under which the simulator registers its instruments.
const (
	MetricStageOccupancy    = "hwsim.stage_occupancy"
	MetricWARShadowDepth    = "hwsim.war_shadow_depth"
	MetricFlushPenalty      = "hwsim.flush_penalty_cycles"
	MetricCyclesPerPacket   = "hwsim.cycles_per_packet"
	MetricMapPortOps        = "hwsim.map_port_ops"
	MetricMapPortContention = "hwsim.map_port_contention_cycles"
	MetricBackpressure      = "hwsim.inject_backpressure_cycles"
	MetricFlushes           = "hwsim.flushes"
	MetricRecoveries        = "hwsim.recoveries"
)

// newProbes resolves the instruments. A nil registry (tracing without
// metrics) accumulates into a private throwaway registry so the probe
// methods stay branch-free.
func newProbes(tr *obs.Tracer, reg *obs.Registry, nMaps, nStages int) *probes {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &probes{
		tr:           tr,
		occupancy:    reg.Histogram(MetricStageOccupancy, obs.LinearBuckets(0, 1, nStages+1)),
		warDepth:     reg.Histogram(MetricWARShadowDepth, obs.LinearBuckets(0, 1, 16)),
		flushPenalty: reg.Histogram(MetricFlushPenalty, obs.ExpBuckets(2, 2, 10)),
		cyclesPerPkt: reg.Histogram(MetricCyclesPerPacket, obs.ExpBuckets(8, 2, 12)),
		portOps:      reg.Counter(MetricMapPortOps),
		contention:   reg.Counter(MetricMapPortContention),
		backpressure: reg.Counter(MetricBackpressure),
		flushes:      reg.Counter(MetricFlushes),
		recoveries:   reg.Counter(MetricRecoveries),
		portUse:      make([]uint32, nMaps),
	}
}

func (p *probes) onInject(cycle, seq uint64, pktLen, frames int) {
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindInject, Seq: int64(seq),
		Stage: obs.NoStage, Map: obs.NoMap, Aux: uint64(pktLen), Aux2: uint64(frames)})
}

func (p *probes) onQueueDrop(cycle uint64, pktLen int) {
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindQueueDrop, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: uint64(pktLen)})
}

func (p *probes) onStageEnter(cycle uint64, j *job, stage int) {
	if stage == 0 {
		p.injected = true
	}
	var done uint64
	if j.done {
		done = 1
	}
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindStageEnter, Seq: int64(j.seq),
		Stage: stage, Map: obs.NoMap, Aux: done})
}

func (p *probes) onStageExit(cycle uint64, j *job, stage int) {
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindStageExit, Seq: int64(j.seq),
		Stage: stage, Map: obs.NoMap})
}

func (p *probes) onPredicate(cycle uint64, j *job, stage int, taken bool, block int) {
	var aux uint64
	if taken {
		aux = 1
	}
	blk := obs.NoBlock
	if block >= 0 {
		blk = uint64(block)
	}
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindPredicate, Seq: int64(j.seq),
		Stage: stage, Map: obs.NoMap, Aux: aux, Aux2: blk})
}

func (p *probes) onWARShadow(cycle uint64, j *job, mapID, shadows, depth int) {
	p.warDepth.Observe(uint64(shadows))
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindWARShadow, Seq: int64(j.seq),
		Stage: obs.NoStage, Map: mapID, Aux: uint64(shadows), Aux2: uint64(depth)})
}

func (p *probes) onMapAccess(cycle uint64, j *job, stage, mapID int, op obs.MapOp) {
	p.portOps.Inc()
	if mapID >= 0 && mapID < len(p.portUse) {
		if p.portUse[mapID] == 0 {
			p.portHot = append(p.portHot, mapID)
		}
		p.portUse[mapID]++
	}
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindMapAccess, Seq: int64(j.seq),
		Stage: stage, Map: mapID, Aux: uint64(op)})
}

func (p *probes) onFlushBegin(cycle uint64, writeStage, from, mapID, victims int) {
	p.flushes.Inc()
	if !p.flushActive {
		p.flushActive = true
		p.flushStart = cycle
	}
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindFlushBegin, Seq: obs.NoSeq,
		Stage: writeStage, Map: mapID, Aux: uint64(victims), Aux2: uint64(from)})
}

// onFlushEnd closes the open flush episode when the stall releases.
// PolicyStall bubbles release through the same path but never open an
// episode, so the call is a no-op for them.
func (p *probes) onFlushEnd(cycle uint64) {
	if !p.flushActive {
		return
	}
	p.flushActive = false
	penalty := cycle - p.flushStart
	p.flushPenalty.Observe(penalty)
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindFlushEnd, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: penalty})
}

func (p *probes) onVerdict(cycle uint64, j *job, latency uint64) {
	p.cyclesPerPkt.Observe(latency)
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindVerdict, Seq: int64(j.seq),
		Stage: j.stage, Map: obs.NoMap, Aux: uint64(j.action), Aux2: latency})
}

func (p *probes) onScrub(cycle, words uint64, clean bool) {
	var aux2 uint64
	if clean {
		aux2 = 1
	}
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindScrub, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: words, Aux2: aux2})
}

func (p *probes) onCheckpoint(cycle uint64, entries int) {
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindCheckpoint, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: uint64(entries)})
}

// onRecovery also abandons any open flush episode: the drain-and-restart
// sequence resets the stall machinery, so no FlushEnd will arrive.
func (p *probes) onRecovery(cycle uint64, attempt int, backoff uint64) {
	p.recoveries.Inc()
	p.flushActive = false
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindRecovery, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: uint64(attempt), Aux2: backoff})
}

func (p *probes) onWatchdog(cycle, lastRetire uint64) {
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindWatchdog, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: lastRetire})
}

func (p *probes) onFault(cycle uint64, class int) {
	p.tr.Emit(obs.Event{Cycle: cycle, Kind: obs.KindFault, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: uint64(class)})
}

// endCycle folds the per-cycle working state into the metrics: stage
// occupancy, map-port contention (a port serving more than one
// operation in one cycle would need arbitration in hardware) and
// injection backpressure (work queued but nothing entered stage 0).
func (p *probes) endCycle(occupied, queued int) {
	p.occupancy.Observe(uint64(occupied))
	for _, id := range p.portHot {
		if p.portUse[id] > 1 {
			p.contention.Inc()
		}
		p.portUse[id] = 0
	}
	p.portHot = p.portHot[:0]
	if queued > 0 && !p.injected {
		p.backpressure.Inc()
	}
	p.injected = false
}
