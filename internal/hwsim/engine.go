package hwsim

import "ehdl/internal/maps"

// Core is the execution-engine surface shared by the cycle-accurate
// interpreter (*Sim) and the compiled host fast path
// (*fastpath.Machine). The NIC shell and the RSS engine drive a Core,
// so single-queue and multi-queue paths run either mode
// interchangeably; the interpreter remains the conformance oracle.
type Core interface {
	// Inject queues a packet for processing; false means refused
	// (queue full, counted as a drop, or quiesced, not counted).
	Inject(data []byte) bool
	// Step advances the engine by one clock cycle.
	Step() error
	// RunToCompletion steps until the engine drains, bounded.
	RunToCompletion(maxCycles uint64) error

	// Cycle returns the current clock cycle.
	Cycle() uint64
	// Busy reports whether work remains queued or in flight.
	Busy() bool
	// Drained reports the opposite of Busy.
	Drained() bool
	// InputFree reports whether the ingress accepts a packet now.
	InputFree() bool

	// Quiesce closes the ingress without counting drops; Resume
	// reopens it; Quiesced reports the state.
	Quiesce()
	Resume()
	Quiesced() bool

	// NextSeq returns the sequence number of the next accepted packet.
	NextSeq() uint64
	// OnComplete registers the retirement callback.
	OnComplete(fn func(Result))
	// KeepData makes results carry the final packet bytes.
	KeepData(keep bool)
	// SetClock overrides the nanosecond clock time helpers see.
	SetClock(fn func() uint64)
	// Now returns the nanosecond clock.
	Now() uint64
	// Maps exposes the engine's map memory (the host interface).
	Maps() *maps.Set
	// Stats returns a snapshot of the run counters.
	Stats() Stats
}

// Compile-time check that the interpreter satisfies the shared surface.
var _ Core = (*Sim)(nil)
