package hwsim

import (
	"math/rand"
	"testing"
)

// TestRecoveryBackoffJitterBounds pins the jitter window: the jittered
// hold is never below the deterministic schedule and always strictly
// less than one base above it, for every attempt including the clamped
// ones at either end.
func TestRecoveryBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, base := range []int{0, 1, 64, 256, 4096} {
		for attempt := -1; attempt <= 16; attempt++ {
			det := RecoveryBackoff(attempt, base)
			effBase := base
			if effBase <= 0 {
				effBase = 256
			}
			for i := 0; i < 32; i++ {
				j := RecoveryBackoffJittered(attempt, base, rng)
				if j < det || j >= det+uint64(effBase) {
					t.Fatalf("attempt %d base %d: jittered %d outside [%d, %d)",
						attempt, base, j, det, det+uint64(effBase))
				}
			}
		}
	}
}

// TestRecoveryBackoffJitterNilRng: without an rng the function is
// RecoveryBackoff exactly — legacy callers see no behavior change.
func TestRecoveryBackoffJitterNilRng(t *testing.T) {
	for attempt := -1; attempt <= 16; attempt++ {
		for _, base := range []int{0, 1, 256, 1024} {
			if got, want := RecoveryBackoffJittered(attempt, base, nil), RecoveryBackoff(attempt, base); got != want {
				t.Fatalf("attempt %d base %d: nil rng gave %d, want deterministic %d", attempt, base, got, want)
			}
		}
	}
}

// TestRecoveryBackoffJitterDeterminism: two rngs built from the same
// seed draw the same jitter sequence, so a fleet chaos run replays
// byte-identically; different seeds diverge somewhere in the sequence.
func TestRecoveryBackoffJitterDeterminism(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	c := rand.New(rand.NewSource(8))
	same, diff := true, false
	for i := 0; i < 64; i++ {
		attempt := 1 + i%6
		ja := RecoveryBackoffJittered(attempt, 256, a)
		jb := RecoveryBackoffJittered(attempt, 256, b)
		jc := RecoveryBackoffJittered(attempt, 256, c)
		if ja != jb {
			same = false
		}
		if ja != jc {
			diff = true
		}
	}
	if !same {
		t.Error("same-seed rngs drew different jitter sequences")
	}
	if !diff {
		t.Error("distinct seeds never diverged in 64 draws")
	}
}
