package hwsim

import (
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
)

// applyFaults lets the configured injector strike the live pipeline
// state at the top of a cycle: single-event upsets in packet-frame
// registers, stack bytes, in-flight packet data and map entries, plus
// forced flush storms. Every applied fault is recorded both in the
// injector's per-class counters and in Stats.FaultsInjected, so a
// campaign's effect is fully visible from the outside.
//
// All decisions draw from the injector's seeded PRNG and the pipeline
// advances deterministically, so a campaign with a fixed seed hits the
// same fault sites on every run.
func (s *Sim) applyFaults() {
	inj := s.cfg.Faults
	if inj == nil {
		return
	}

	// In-flight packets, oldest first, as deterministic SEU targets.
	var jobs []*job
	for t := len(s.stages) - 1; t >= 0; t-- {
		if s.stages[t] != nil {
			jobs = append(jobs, s.stages[t])
		}
	}

	if inj.Roll(faults.SEURegister) && len(jobs) > 0 {
		j := jobs[inj.Intn(faults.SEURegister, len(jobs))]
		// R0-R9 are carried pipeline registers; R10 is synthesised
		// wiring, not a flip-flop.
		reg := ebpf.Register(inj.Intn(faults.SEURegister, 10))
		j.st.Regs[reg] ^= 1 << inj.Intn(faults.SEURegister, 64)
		s.noteFault(inj, faults.SEURegister)
	}

	if inj.Roll(faults.SEUStack) && len(jobs) > 0 {
		j := jobs[inj.Intn(faults.SEUStack, len(jobs))]
		j.st.Stack[inj.Intn(faults.SEUStack, ebpf.StackSize)] ^= 1 << inj.Intn(faults.SEUStack, 8)
		s.noteFault(inj, faults.SEUStack)
	}

	if inj.Roll(faults.SEUPacket) && len(jobs) > 0 {
		j := jobs[inj.Intn(faults.SEUPacket, len(jobs))]
		if data := j.st.Pkt.Bytes(); len(data) > 0 {
			data[inj.Intn(faults.SEUPacket, len(data))] ^= 1 << inj.Intn(faults.SEUPacket, 8)
			s.noteFault(inj, faults.SEUPacket)
		}
	}

	if inj.Roll(faults.SEUMapEntry) && s.env.Maps.Len() > 0 {
		m, _ := s.env.Maps.ByID(inj.Intn(faults.SEUMapEntry, s.env.Maps.Len()))
		if n := m.Len(); n > 0 {
			victim := inj.Intn(faults.SEUMapEntry, n)
			i := 0
			m.Iterate(func(_, v []byte) bool {
				if i == victim {
					if len(v) > 0 {
						v[inj.Intn(faults.SEUMapEntry, len(v))] ^= 1 << inj.Intn(faults.SEUMapEntry, 8)
						s.noteFault(inj, faults.SEUMapEntry)
					}
					return false
				}
				i++
				return true
			})
		}
	}

	if inj.Roll(faults.FlushStorm) && s.stallPoint < 0 {
		s.forceFlushStorm(inj)
	}
}

func (s *Sim) noteFault(inj *faults.Injector, class faults.Class) {
	inj.Note(class)
	s.stats.FaultsInjected++
	if s.probes != nil {
		s.probes.onFault(s.cycle, int(class))
	}
}

// forceFlushStorm fires a spurious Flush Evaluation verdict on one
// flush-protected map: the packets in the hazard window are recalled
// and replayed (when safe) and the reload dead time is charged, exactly
// as if a stale read had been detected. Pipelines without a
// flush-protected map are immune.
func (s *Sim) forceFlushStorm(inj *faults.Injector) {
	var ids []int
	for i := range s.pl.Maps {
		if s.pl.Maps[i].NeedsFlush {
			ids = append(ids, i)
		}
	}
	if len(ids) == 0 {
		return
	}
	mb := &s.pl.Maps[ids[inj.Intn(faults.FlushStorm, len(ids))]]
	writeStage := 0
	for _, w := range mb.WriteStages {
		if w > writeStage {
			writeStage = w
		}
	}
	if writeStage <= mb.FlushFromStage {
		return
	}
	// An empty key matches no unconfirmed read; force selects the safe
	// victims regardless.
	s.flushVictims(mb.FlushFromStage, writeStage, mb.MapID, "", true)
	s.noteFault(inj, faults.FlushStorm)
}
